// The paper's flagship case study as a worked example: optimize the GaAs
// MIPS datapath model, refine the schedule, write an SVG timing diagram,
// and study how the optimum moves as the D-cache gets slower (the kind of
// what-if loop the authors describe running "throughout the design
// process").
#include <cstdio>
#include <fstream>

#include "base/strings.h"
#include "base/table.h"
#include "circuits/gaas.h"
#include "opt/mlp.h"
#include "opt/parametric.h"
#include "sta/analysis.h"
#include "viz/svg.h"
#include "viz/timing_diagram.h"

using namespace mintc;

int main() {
  std::printf("== GaAs MIPS datapath case study ==\n\n");
  const Circuit c = circuits::gaas_datapath();

  const auto r = opt::minimize_cycle_time(c);
  if (!r) {
    std::printf("optimization failed: %s\n", r.error().to_string().c_str());
    return 1;
  }
  std::printf("optimal Tc = %s ns -> %.0f MHz (target: 4 ns / 250 MHz)\n",
              fmt_time(r->min_cycle, 3).c_str(), 1000.0 / r->min_cycle);

  // Pick the minimum-duty schedule among the optima and anchor phi1.
  const auto refined =
      opt::refine_schedule(c, r->min_cycle, opt::SecondaryObjective::kMinTotalWidth);
  if (!refined) {
    std::printf("refinement failed: %s\n", refined.error().to_string().c_str());
    return 1;
  }
  ClockSchedule sch = refined->schedule;
  sch.width[0] += sch.start[0];
  sch.start[0] = 0.0;
  const sta::TimingReport rep = sta::check_schedule(c, sch);
  std::printf("refined schedule (%s): %s\n\n", rep.feasible ? "verified" : "FAILED",
              sch.to_string().c_str());

  // Write the SVG timing diagram next to the binary.
  const std::string svg = viz::svg_timing_diagram(c, sch, rep.fixpoint.departure);
  std::ofstream("gaas_schedule.svg") << svg;
  std::printf("wrote gaas_schedule.svg (%zu bytes)\n\n", svg.size());

  // What-if: slow down the D-cache and watch the optimum drift. Find the
  // DCache path index first.
  int dcache = -1;
  for (int p = 0; p < c.num_paths(); ++p) {
    if (c.path(p).label == "DCache") dcache = p;
  }
  if (dcache >= 0) {
    const double nominal = c.path(dcache).delay;
    std::printf("what-if: D-cache access time sweep (nominal %s ns)\n",
                fmt_time(nominal, 3).c_str());
    const auto sweep = opt::sweep_path_delay(c, dcache, nominal * 0.8, nominal * 1.6, 9);
    TextTable table({"DCache delay [ns]", "Tc* [ns]", "freq [MHz]"});
    for (const auto& p : sweep.points) {
      table.add_row({fmt_time(p.theta, 3), fmt_time(p.objective, 3),
                     fmt_time(1000.0 / p.objective, 1)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("recovered sensitivity segments (dTc*/dDCache):\n");
    for (const auto& s : sweep.segments) {
      std::printf("  [%s, %s] slope %s\n", fmt_time(s.theta_begin, 3).c_str(),
                  fmt_time(s.theta_end, 3).c_str(), fmt_time(s.slope, 3).c_str());
    }
  }
  return 0;
}
