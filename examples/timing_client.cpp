// timing_client — protocol client and load generator for timing_serve.
//
// One-shot mode (print the response for a single request):
//   timing_client --connect unix:/tmp/mintc.sock --req '{"verb":"stats"}'
//   timing_client --connect 127.0.0.1:7317 --stats
//
// Load-generator mode (the latency-SLO measurement rig):
//   timing_client --connect unix:/tmp/mintc.sock --streams 64 --rounds 10
//       --circuits 8 --threads 8 --verify --out client_bench.json
//
// Each logical stream owns its own circuit key on the server: it loads a
// synthetic circuit (one of --circuits base shapes), then runs --rounds of
// edit_batch (a deterministic path-delay perturbation) + analyze. Threads
// each hold one connection and drive their share of streams; every round
// trip is timed client-side and the run reports exact p50/p95/p99 over all
// requests. --verify replays each stream's edits on a local mirror circuit
// and bit-compares the served analysis against a direct sta::check_schedule
// — the service's core correctness contract, checked over the real socket.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "circuits/synthetic.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "parser/lct.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "sta/analysis.h"

using namespace mintc;
using serve::Json;

namespace {

struct LoadGenConfig {
  std::string address;
  int streams = 64;
  int rounds = 10;
  int circuits = 8;
  int threads = 8;
  bool verify = false;
  /// Attach a trace id to every Nth request (0 = none, 1 = all). Ids are
  /// deterministic functions of the global request sequence number.
  int trace_sample = 0;
  /// Request the cost-attribution block on every Nth request (0 = none,
  /// 1 = all). With --verify, every cost-bearing analyze is re-issued
  /// without the block and the result payloads are byte-compared — the
  /// envelope-only contract for attribution, checked over the real socket.
  int cost_sample = 0;
  std::string out_path;
  std::string trace_out;
};

/// Global request sequence for --trace-sample: every Nth request across all
/// threads carries a trace id derived from its sequence number.
std::atomic<long> g_request_seq{0};

struct ThreadResult {
  std::vector<double> latencies_us;
  std::map<std::string, std::vector<double>> verb_latencies_us;
  long requests = 0;
  long errors = 0;
  long cache_hits = 0;
  long traced = 0;
  long verify_failures = 0;
  long costed = 0;             // responses carrying a cost block
  long cost_cpu_us = 0;        // attributed CPU summed over them
  long cost_relaxations = 0;   // attributed engine work summed over them
  std::string first_error;
};

std::uint64_t trace_id_for(long seq) {
  const std::uint64_t id = obs::Fnv1a().u64(static_cast<std::uint64_t>(seq)).digest();
  return id != 0 ? id : 1;  // 0 is not a valid trace id
}

Circuit base_circuit(int which) {
  circuits::SyntheticParams params;
  params.num_phases = 2 + which % 3;
  params.num_stages = 4 + which % 4;
  params.latches_per_stage = 2 + which % 2;
  params.fanin = 2;
  params.extra_long_edges = which % 5;
  return circuits::synthetic_circuit(params, 1000 + static_cast<uint64_t>(which));
}

ClockSchedule schedule_from_json(const Json& s) {
  ClockSchedule out;
  out.cycle = s.num_or("cycle", 0.0);
  for (const Json& v : s.get("start").items()) out.start.push_back(v.as_number());
  for (const Json& v : s.get("width").items()) out.width.push_back(v.as_number());
  return out;
}

/// Bit-compare the served analysis payload against a direct check_schedule
/// of the mirror circuit. Returns a description of the first mismatch, or "".
std::string verify_against_local(const Json& result, const Circuit& mirror,
                                 const ClockSchedule& schedule) {
  sta::AnalysisOptions options;
  options.check_hold = true;
  const sta::TimingReport local = sta::check_schedule(mirror, schedule, options);
  if (result.bool_or("feasible", !local.feasible) != local.feasible) {
    return "feasible mismatch";
  }
  if (result.num_or("worst_setup_slack", local.worst_setup_slack + 1.0) !=
      local.worst_setup_slack) {
    return "worst_setup_slack not bit-identical";
  }
  const Json& elements = result.get("elements");
  if (static_cast<size_t>(elements.size()) != local.elements.size()) {
    return "element count mismatch";
  }
  for (size_t i = 0; i < local.elements.size(); ++i) {
    const Json& e = elements.at(i);
    if (e.num_or("departure", local.elements[i].departure + 1.0) !=
        local.elements[i].departure) {
      return "departure[" + std::to_string(i) + "] not bit-identical";
    }
    if (e.num_or("setup_slack", local.elements[i].setup_slack + 1.0) !=
        local.elements[i].setup_slack) {
      return "setup_slack[" + std::to_string(i) + "] not bit-identical";
    }
  }
  return "";
}

void run_stream(serve::Client& client, const LoadGenConfig& config, int stream,
                ThreadResult& tr) {
  // Returns the whole response envelope (null on error) so callers can see
  // the envelope-level trace echo and cost block next to the result.
  const auto timed_call = [&](Json request) -> Json {
    const std::string verb = request.str_or("verb");
    if (config.trace_sample > 0 || config.cost_sample > 0) {
      const long seq = g_request_seq.fetch_add(1);
      if (config.trace_sample > 0 && seq % config.trace_sample == 0) {
        request.set("trace", Json(serve::trace_id_hex(trace_id_for(seq))));
      }
      if (config.cost_sample > 0 && seq % config.cost_sample == 0 &&
          !request.get("cost").is_bool()) {  // an explicit false stays false
        request.set("cost", Json(true));
      }
    }
    const auto start = std::chrono::steady_clock::now();
    Expected<Json> response = client.call(std::move(request));
    const double us =
        std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start)
            .count();
    tr.latencies_us.push_back(us);
    tr.verb_latencies_us[verb].push_back(us);
    ++tr.requests;
    if (!response) {
      ++tr.errors;
      if (tr.first_error.empty()) tr.first_error = response.error().message;
      return Json();
    }
    if (!response->get("ok").as_bool(false)) {
      ++tr.errors;
      if (tr.first_error.empty()) tr.first_error = response->get("error").dump();
      return Json();
    }
    if (response->get("cached").as_bool(false)) ++tr.cache_hits;
    if (response->get("trace").is_string()) ++tr.traced;
    if (response->get("cost").is_object()) {
      ++tr.costed;
      tr.cost_cpu_us += response->get("cost").long_or("cpu_us", 0);
      tr.cost_relaxations += response->get("cost").long_or("relaxations", 0);
    }
    return std::move(*response);
  };

  const std::string key = "stream-" + std::to_string(stream);
  // The mirror must be the circuit AS THE SERVER SEES IT — i.e. parsed back
  // from the shipped .lct text (whose fixed-precision delay formatting need
  // not round-trip the synthetic doubles bit-exactly).
  const std::string text = parser::write_circuit(base_circuit(stream % config.circuits));
  Expected<Circuit> reparsed = parser::parse_circuit(text);
  if (!reparsed) {
    ++tr.errors;
    if (tr.first_error.empty()) tr.first_error = reparsed.error().to_string();
    return;
  }
  Circuit mirror = std::move(*reparsed);

  Json load = Json::object();
  load.set("verb", Json("load"));
  load.set("circuit", Json(key));
  load.set("text", Json(text));
  const Json loaded = timed_call(std::move(load));
  if (loaded.is_null()) return;
  const ClockSchedule schedule =
      schedule_from_json(loaded.get("result").get("schedule"));

  for (int round = 0; round < config.rounds; ++round) {
    // Deterministic perturbation: bump one path's max delay by a
    // binary-exact increment (mirrored locally for --verify).
    const int p = (stream * 7 + round * 13) % mirror.num_paths();
    const double delay = mirror.path(p).delay + 0.125;
    Json edit = Json::object();
    edit.set("op", Json("set_path_delay"));
    edit.set("path", Json(static_cast<long>(p)));
    edit.set("delay", Json(delay));
    Json edits = Json::array();
    edits.push(std::move(edit));
    Json batch = Json::object();
    batch.set("verb", Json("edit_batch"));
    batch.set("circuit", Json(key));
    batch.set("edits", std::move(edits));
    if (timed_call(std::move(batch)).is_null()) return;
    mirror.set_path_delay(p, delay);

    const auto make_analyze = [&] {
      Json analyze = Json::object();
      analyze.set("verb", Json("analyze"));
      analyze.set("circuit", Json(key));
      analyze.set("detail", Json(true));
      return analyze;
    };
    const Json response = timed_call(make_analyze());
    if (response.is_null()) return;
    const Json& result = response.get("result");
    if (config.verify) {
      const std::string mismatch = verify_against_local(result, mirror, schedule);
      if (!mismatch.empty()) {
        ++tr.verify_failures;
        if (tr.first_error.empty()) {
          tr.first_error = "verify: " + mismatch + " (stream " + std::to_string(stream) +
                           ", round " + std::to_string(round) + ")";
        }
      }
      if (response.get("cost").is_object()) {
        // Attribution is envelope-only: re-issue the identical analyze with
        // the cost block scrubbed (no "cost" field) and byte-compare the
        // result payloads. Any difference means attribution leaked into a
        // (cacheable) payload.
        Json again = make_analyze();
        again.set("cost", Json(false));
        const Json replay = timed_call(std::move(again));
        if (!replay.is_null()) {
          if (replay.get("cost").is_object()) {
            ++tr.verify_failures;
            if (tr.first_error.empty()) {
              tr.first_error = "verify: cost block echoed without \"cost\": true";
            }
          } else if (replay.get("result").dump() != result.dump()) {
            ++tr.verify_failures;
            if (tr.first_error.empty()) {
              tr.first_error = "verify: cost-bearing result payload differs from the "
                               "scrubbed replay (stream " +
                               std::to_string(stream) + ", round " +
                               std::to_string(round) + ")";
            }
          }
        }
      }
    }
  }
}

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[std::min(rank, sorted.size() - 1)];
}

int run_load_generator(const LoadGenConfig& config) {
  const auto wall_start = std::chrono::steady_clock::now();
  const int threads = std::max(1, std::min(config.threads, config.streams));
  std::vector<ThreadResult> results(static_cast<size_t>(threads));
  std::vector<std::thread> workers;
  std::atomic<int> next_stream{0};
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      serve::Client client;
      const Expected<bool> connected = client.connect(config.address);
      ThreadResult& tr = results[static_cast<size_t>(t)];
      if (!connected) {
        ++tr.errors;
        tr.first_error = connected.error().message;
        return;
      }
      for (int s = next_stream.fetch_add(1); s < config.streams;
           s = next_stream.fetch_add(1)) {
        run_stream(client, config, s, tr);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  ThreadResult total;
  for (ThreadResult& tr : results) {
    total.requests += tr.requests;
    total.errors += tr.errors;
    total.cache_hits += tr.cache_hits;
    total.traced += tr.traced;
    total.verify_failures += tr.verify_failures;
    total.costed += tr.costed;
    total.cost_cpu_us += tr.cost_cpu_us;
    total.cost_relaxations += tr.cost_relaxations;
    total.latencies_us.insert(total.latencies_us.end(), tr.latencies_us.begin(),
                              tr.latencies_us.end());
    for (auto& [verb, v] : tr.verb_latencies_us) {
      std::vector<double>& dst = total.verb_latencies_us[verb];
      dst.insert(dst.end(), v.begin(), v.end());
    }
    if (total.first_error.empty()) total.first_error = tr.first_error;
  }
  std::sort(total.latencies_us.begin(), total.latencies_us.end());
  const double p50 = percentile(total.latencies_us, 0.50);
  const double p95 = percentile(total.latencies_us, 0.95);
  const double p99 = percentile(total.latencies_us, 0.99);
  // The tail quantile comes from an obs::Histogram (same 1-2-5 latency
  // buckets as the server's serve.latency_us, interpolated inside the
  // bucket) so client- and server-side p99.9 are directly comparable.
  obs::Histogram aggregate(obs::latency_buckets_us());
  for (const double us : total.latencies_us) aggregate.observe(us);
  const double p999 = aggregate.quantile(0.999);
  const double rps = wall_s > 0 ? static_cast<double>(total.requests) / wall_s : 0.0;

  std::printf("%d streams x %d rounds over %d connection%s: %ld requests in %.2fs "
              "(%.0f req/s)\n",
              config.streams, config.rounds, threads, threads == 1 ? "" : "s",
              total.requests, wall_s, rps);
  std::printf("latency us: p50 %.0f  p95 %.0f  p99 %.0f  p99.9 %.0f  max %.0f\n", p50, p95,
              p99, p999, total.latencies_us.empty() ? 0.0 : total.latencies_us.back());
  for (const auto& [verb, v] : total.verb_latencies_us) {
    obs::Histogram h(obs::latency_buckets_us());
    for (const double us : v) h.observe(us);
    std::printf("  %-11s %6zu reqs  p50 %.0f  p95 %.0f  p99 %.0f  p99.9 %.0f\n",
                verb.c_str(), v.size(), h.quantile(0.50), h.quantile(0.95),
                h.quantile(0.99), h.quantile(0.999));
  }
  std::printf("errors %ld, cache hits %ld%s\n", total.errors, total.cache_hits,
              config.verify
                  ? (", verify failures " + std::to_string(total.verify_failures)).c_str()
                  : "");
  if (total.costed > 0) {
    std::printf("cost: %ld attributed responses, %ld us server cpu, %ld relaxations\n",
                total.costed, total.cost_cpu_us, total.cost_relaxations);
  }
  if (!total.first_error.empty()) {
    std::printf("first error: %s\n", total.first_error.c_str());
  }

  if (!config.out_path.empty()) {
    Json out = Json::object();
    out.set("streams", Json(static_cast<long>(config.streams)));
    out.set("rounds", Json(static_cast<long>(config.rounds)));
    out.set("connections", Json(static_cast<long>(threads)));
    out.set("requests", Json(total.requests));
    out.set("errors", Json(total.errors));
    out.set("cache_hits", Json(total.cache_hits));
    out.set("verify", Json(config.verify));
    out.set("verify_failures", Json(total.verify_failures));
    out.set("wall_seconds", Json(wall_s));
    out.set("requests_per_second", Json(rps));
    out.set("p50_us", Json(p50));
    out.set("p95_us", Json(p95));
    out.set("p99_us", Json(p99));
    out.set("p999_us", Json(p999));
    out.set("traced", Json(total.traced));
    out.set("costed", Json(total.costed));
    out.set("cost_cpu_us", Json(total.cost_cpu_us));
    out.set("cost_relaxations", Json(total.cost_relaxations));
    // Per-verb breakdown: interpolated quantiles over the shared latency
    // buckets (exact counts, approximate tails — see obs::Histogram).
    Json verbs = Json::object();
    for (const auto& [verb, v] : total.verb_latencies_us) {
      obs::Histogram h(obs::latency_buckets_us());
      for (const double us : v) h.observe(us);
      Json row = Json::object();
      row.set("count", Json(static_cast<long>(v.size())));
      row.set("p50_us", Json(h.quantile(0.50)));
      row.set("p95_us", Json(h.quantile(0.95)));
      row.set("p99_us", Json(h.quantile(0.99)));
      row.set("p999_us", Json(h.quantile(0.999)));
      row.set("max_us", Json(h.max()));
      verbs.set(verb, std::move(row));
    }
    out.set("verbs", std::move(verbs));
    std::ofstream f(config.out_path);
    if (f) {
      f << out.dump() << "\n";
      std::printf("wrote %s\n", config.out_path.c_str());
    }
  }

  if (!config.trace_out.empty()) {
    // Drain the server's span ring buffer into a Chrome trace file: one
    // sampled request's spans (protocol -> service -> session -> shards)
    // load as a single tree in chrome://tracing.
    serve::Client drain;
    const Expected<bool> connected = drain.connect(config.address);
    Json req = Json::object();
    req.set("verb", Json("trace"));
    Expected<Json> response =
        connected ? drain.call(std::move(req)) : Expected<Json>(connected.error());
    if (response && response->get("ok").as_bool(false)) {
      const Json& result = response->get("result");
      std::ofstream f(config.trace_out);
      if (f) {
        f << result.str_or("content");
        std::printf("wrote %s (%ld events, %ld dropped)\n", config.trace_out.c_str(),
                    result.long_or("events", 0), result.long_or("dropped", 0));
      }
    } else {
      std::fprintf(stderr, "warning: trace drain failed: %s\n",
                   response ? response->get("error").dump().c_str()
                            : response.error().to_string().c_str());
    }
  }
  return (total.errors == 0 && total.verify_failures == 0) ? 0 : 1;
}

int one_shot(const std::string& address, const std::string& request_text) {
  serve::Client client;
  const Expected<bool> connected = client.connect(address);
  if (!connected) {
    std::fprintf(stderr, "error: %s\n", connected.error().to_string().c_str());
    return 1;
  }
  const Expected<Json> request = serve::parse_json(request_text);
  if (!request) {
    std::fprintf(stderr, "error: %s\n", request.error().to_string().c_str());
    return 1;
  }
  Expected<Json> response = client.call(*request);
  if (!response) {
    std::fprintf(stderr, "error: %s\n", response.error().to_string().c_str());
    return 1;
  }
  std::printf("%s\n", response->dump().c_str());
  return response->get("ok").as_bool(false) ? 0 : 1;
}

int usage() {
  std::printf(
      "usage: timing_client --connect <unix:/path | host:port> [mode]\n"
      "  one-shot:  --req '<json>'   send one request, print the response\n"
      "             --stats          shorthand for --req '{\"verb\":\"stats\"}'\n"
      "  load gen:  [--streams N] [--rounds R] [--circuits K] [--threads T]\n"
      "             [--verify] [--out <file>]\n"
      "             [--trace-sample N]  attach a trace id to every Nth request\n"
      "             [--cost-sample N]   request cost attribution on every Nth request\n"
      "                                 (with --verify, byte-checks the envelope-only\n"
      "                                 contract against a scrubbed replay)\n"
      "             [--trace-out <file>]  drain the server trace ring after the run\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  LoadGenConfig config;
  std::string req;
  bool stats = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--connect" && has_value) {
      config.address = argv[++i];
    } else if (arg == "--req" && has_value) {
      req = argv[++i];
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--streams" && has_value) {
      config.streams = std::atoi(argv[++i]);
    } else if (arg == "--rounds" && has_value) {
      config.rounds = std::atoi(argv[++i]);
    } else if (arg == "--circuits" && has_value) {
      config.circuits = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--threads" && has_value) {
      config.threads = std::atoi(argv[++i]);
    } else if (arg == "--verify") {
      config.verify = true;
    } else if (arg == "--trace-sample" && has_value) {
      config.trace_sample = std::max(0, std::atoi(argv[++i]));
    } else if (arg == "--cost-sample" && has_value) {
      config.cost_sample = std::max(0, std::atoi(argv[++i]));
    } else if (arg == "--trace-out" && has_value) {
      config.trace_out = argv[++i];
    } else if (arg == "--out" && has_value) {
      config.out_path = argv[++i];
    } else {
      return usage();
    }
  }
  if (config.address.empty()) return usage();
  if (stats) return one_shot(config.address, "{\"verb\":\"stats\"}");
  if (!req.empty()) return one_shot(config.address, req);
  if (config.streams < 1 || config.rounds < 1) return usage();
  return run_load_generator(config);
}
