// mintc-fuzz — differential fuzzing front end for the three Tc engines.
//
//   mintc-fuzz --seeds 500                  cross-check 500 random circuits
//   mintc-fuzz --seeds 500 --out repros/    also write shrunk .lct repros
//   mintc-fuzz --inject                     demo: inject a delay mutation so
//                                           the engines disagree, then shrink
//                                           the failure to a minimal repro
//
// Exit status: 0 when every circuit passes the full agreement matrix
// (simplex vs graph solver vs fixpoint schemes vs incremental vs token
// sim); 1 when any disagreement survives. In --inject mode the logic
// inverts: the injected fault MUST be detected and shrunk, so 0 means the
// harness caught it and 1 means it slipped through.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "base/strings.h"
#include "check/fuzzer.h"
#include "obs/export.h"
#include "obs/trace.h"

using namespace mintc;

namespace {

int usage() {
  std::printf(
      "usage: mintc-fuzz [--seeds N] [--base-seed S] [--out DIR]\n"
      "                  [--max-failures M] [--no-sim] [--no-shrink] [--inject]\n"
      "                  [--trace-out FILE] [--metrics-out FILE]\n");
  return 2;
}

void print_failure(const check::FuzzFailure& f) {
  std::printf("seed %llu: %zu disagreement%s\n", static_cast<unsigned long long>(f.seed),
              f.failures.size(), f.failures.size() == 1 ? "" : "s");
  for (const check::CheckFailure& cf : f.failures) {
    std::printf("  [%s] %s\n", check::to_string(cf.kind), cf.detail.c_str());
  }
  std::printf("  shrunk %d elements / %d paths -> %d / %d (%d candidate edits)\n",
              f.original_elements, f.original_paths, f.shrunk_elements, f.shrunk_paths,
              f.shrink_attempts);
  if (!f.repro_path.empty()) {
    std::printf("  repro written to %s\n", f.repro_path.c_str());
  }
  if (!f.trace_path.empty()) {
    std::printf("  trace written to %s (load in chrome://tracing)\n", f.trace_path.c_str());
  }
  if (!f.metrics_path.empty()) {
    std::printf("  metrics written to %s\n", f.metrics_path.c_str());
  }
  if (!f.report_path.empty()) {
    std::printf("  signoff report written to %s\n", f.report_path.c_str());
  }
  std::printf("  minimal repro:\n---\n%s---\n", f.repro_lct.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  check::FuzzOptions options;
  options.num_seeds = 100;
  bool inject = false;
  std::string trace_out, metrics_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--seeds") {
      const char* v = next();
      if (!v || !parse_int(v, options.num_seeds) || options.num_seeds < 1) return usage();
    } else if (arg == "--base-seed") {
      const char* v = next();
      int s = 0;
      if (!v || !parse_int(v, s) || s < 0) return usage();
      options.base_seed = static_cast<uint64_t>(s);
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return usage();
      options.repro_dir = v;
    } else if (arg == "--max-failures") {
      const char* v = next();
      if (!v || !parse_int(v, options.max_failures) || options.max_failures < 1) return usage();
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return usage();
      trace_out = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return usage();
      metrics_out = v;
    } else if (arg == "--no-sim") {
      options.diff.check_simulation = false;
    } else if (arg == "--no-shrink") {
      options.shrink_failures = false;
    } else if (arg == "--inject") {
      inject = true;
    } else {
      return usage();
    }
  }

  if (inject) {
    // Skew the graph solver's copy of every circuit by 10%: the engines now
    // legitimately disagree, which exercises detection + shrinking end to
    // end. A healthy harness must flag every feasible circuit.
    options.diff.inject_solver_skew = 0.10;
    if (options.num_seeds > 10) options.num_seeds = 10;  // each failure shrinks; keep it quick
  }

  // Whole-run tracing only when asked for: the fuzzer's throughput is the
  // point, and per-failure dumps are captured regardless (see fuzzer.cpp).
  if (!trace_out.empty()) obs::Tracer::instance().set_enabled(true);

  const check::FuzzResult res = check::run_fuzz(options);

  if (!trace_out.empty()) {
    obs::Tracer::instance().set_enabled(false);
    if (obs::write_chrome_trace(trace_out)) {
      std::printf("trace written to %s\n", trace_out.c_str());
    }
  }
  if (!metrics_out.empty() && obs::write_metrics_json(metrics_out)) {
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }

  std::printf("checked %d circuit%s (%d feasible), %zu failing seed%s\n", res.circuits_checked,
              res.circuits_checked == 1 ? "" : "s", res.feasible, res.failures.size(),
              res.failures.size() == 1 ? "" : "s");
  for (const check::FuzzFailure& f : res.failures) print_failure(f);

  if (inject) {
    // The fault must be caught on every feasible circuit, and shrinking
    // must produce a parseable repro strictly smaller than the original.
    if (res.failures.empty()) {
      std::printf("INJECTION MISSED: no engine disagreement detected\n");
      return 1;
    }
    for (const check::FuzzFailure& f : res.failures) {
      const bool reduced = f.shrunk_paths < f.original_paths ||
                           f.shrunk_elements < f.original_elements;
      if (f.repro_lct.empty() || (options.shrink_failures && !reduced)) {
        std::printf("INJECTION DETECTED but shrinking produced no reduced repro\n");
        return 1;
      }
    }
    std::printf("injected fault detected and shrunk OK\n");
    return 0;
  }
  return res.ok() ? 0 : 1;
}
