// Corner sign-off flow: design at the slow corner, verify everywhere.
//
// The exact MLP optimum has zero margin by construction — a schedule tuned
// to typical delays fails the moment silicon comes out slow. This example
// shows the production-style loop on the GaAs datapath model:
//   1. optimize the slow-corner circuit (delays derated up);
//   2. verify the resulting schedule at slow/typical/fast corners,
//      including the short-path (hold) checks that fast corners stress;
//   3. report the frequency cost of the margin.
//
// With --report-dir <dir>, also emits the full signoff package there: one
// self-contained HTML dashboard per corner plus the merged signoff JSON.
#include <cstdio>
#include <filesystem>
#include <string>

#include "base/strings.h"
#include "base/table.h"
#include "circuits/gaas.h"
#include "opt/mlp.h"
#include "report/export.h"
#include "report/slackdb.h"
#include "sta/corners.h"

using namespace mintc;

int main(int argc, char** argv) {
  std::string report_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--report-dir" && i + 1 < argc) report_dir = argv[++i];
  }
  std::printf("== corner sign-off on the GaAs datapath ==\n\n");
  const Circuit c = circuits::gaas_datapath();
  const double spread = 0.08;  // +-8%% process/voltage/temperature spread

  // Corner checks include the short-path (hold) test: a token racing
  // through fast bypass logic must not reach an open latch before the
  // previous token is safely stored. Wide phases make that harder, so the
  // design runs include the conservative hold rows AND refine each optimum
  // to minimum duty cycle (the narrowest phases that still work).
  opt::MlpOptions design_opts;
  design_opts.generator.hold_constraints = true;

  const auto design_at = [&](const Circuit& target) -> Expected<opt::MlpResult> {
    const auto base = opt::minimize_cycle_time(target, design_opts);
    if (!base) return base;
    return opt::refine_schedule(target, base->min_cycle,
                                opt::SecondaryObjective::kMinTotalWidth, design_opts);
  };

  // Naive: optimize at typical, then check all corners.
  const auto typical = design_at(c);
  if (!typical) {
    std::printf("error: %s\n", typical.error().to_string().c_str());
    return 1;
  }
  const sta::CornerReport naive =
      sta::check_corners(c, typical->schedule, sta::standard_corners(spread));
  std::printf("typical-corner design (Tc = %s):\n%s\n",
              fmt_time(typical->min_cycle, 4).c_str(), naive.to_string(c).c_str());

  // Robust: optimize the slow-corner circuit (fast-corner mins), then check
  // all corners under it.
  Circuit slow = sta::derate(c, {"slow", 1.0 + spread, 1.0 - spread});
  const auto robust = design_at(slow);
  if (!robust) {
    std::printf("error: %s\n", robust.error().to_string().c_str());
    return 1;
  }
  const sta::CornerReport signoff =
      sta::check_corners(c, robust->schedule, sta::standard_corners(spread));
  std::printf("slow-corner design (Tc = %s):\n%s\n",
              fmt_time(robust->min_cycle, 4).c_str(), signoff.to_string(c).c_str());

  TextTable table({"design point", "Tc [ns]", "freq [MHz]", "all corners pass?"});
  table.add_row({"typical (no margin)", fmt_time(typical->min_cycle, 4),
                 fmt_time(1000.0 / typical->min_cycle, 1), naive.all_pass ? "yes" : "NO"});
  table.add_row({"slow corner (+8% margin)", fmt_time(robust->min_cycle, 4),
                 fmt_time(1000.0 / robust->min_cycle, 1), signoff.all_pass ? "yes" : "NO"});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("margin costs %s%% of frequency — the price of sign-off robustness.\n",
              fmt_time(100.0 * (robust->min_cycle / typical->min_cycle - 1.0), 1).c_str());

  if (!report_dir.empty()) {
    // Signoff package for the robust design point: one dashboard per corner
    // plus the merged worst-corner JSON.
    std::error_code ec;
    std::filesystem::create_directories(report_dir, ec);
    const report::SignoffDB db =
        report::build_signoff(c, robust->schedule, sta::standard_corners(spread));
    report::write_report_file(report_dir + "/signoff.json", report::signoff_json(db));
    report::write_report_file(report_dir + "/signoff.html", report::signoff_html(c, db));
    for (const report::SlackDB& corner : db.corners) {
      report::write_report_file(report_dir + "/corner_" + corner.corner + ".html",
                                report::report_html(c, corner));
    }
    std::printf("\nwrote signoff package (%zu corner dashboards) to %s/\n",
                db.corners.size(), report_dir.c_str());
  }
  return signoff.all_pass ? 0 : 1;
}
