// Extension study: the constraint classes the paper says "can be easily
// added to this minimum set" — minimum phase widths, minimum phase
// separation, and clock skew — plus conservative hold constraints.
// Sweeps each margin on example 1 and reports the cost in cycle time.
#include <cstdio>

#include "base/strings.h"
#include "base/table.h"
#include "circuits/example1.h"
#include "opt/mlp.h"

using namespace mintc;

namespace {

double solve_with(const opt::GeneratorOptions& gen) {
  opt::MlpOptions options;
  options.generator = gen;
  const auto r = opt::minimize_cycle_time(circuits::example1(80.0), options);
  return r ? r->min_cycle : -1.0;
}

}  // namespace

int main() {
  std::printf("== clock margin extensions on example 1 (nominal Tc* = 110) ==\n\n");

  TextTable skew({"clock skew margin [ns]", "Tc* [ns]", "penalty"});
  for (const double s : {0.0, 1.0, 2.0, 5.0, 10.0}) {
    opt::GeneratorOptions gen;
    gen.clock_skew = s;
    const double tc = solve_with(gen);
    skew.add_row({fmt_time(s), fmt_time(tc, 2),
                  "+" + fmt_time(tc - 110.0, 2) + " ns"});
  }
  std::printf("%s\n", skew.to_string().c_str());

  TextTable width({"min phase width [ns]", "Tc* [ns]"});
  for (const double w : {0.0, 20.0, 40.0, 50.0, 60.0}) {
    opt::GeneratorOptions gen;
    gen.min_phase_width = w;
    width.add_row({fmt_time(w), fmt_time(solve_with(gen), 2)});
  }
  std::printf("%s\n", width.to_string().c_str());

  TextTable sep({"min phase separation [ns]", "Tc* [ns]"});
  for (const double g : {0.0, 5.0, 10.0, 20.0}) {
    opt::GeneratorOptions gen;
    gen.min_phase_separation = g;
    sep.add_row({fmt_time(g), fmt_time(solve_with(gen), 2)});
  }
  std::printf("%s\n", sep.to_string().c_str());

  // Hold margins: give the latches a hold requirement and min delays, then
  // turn the conservative linear hold rows on.
  TextTable hold({"hold time [ns]", "Tc* with hold rows [ns]"});
  for (const double h : {0.0, 2.0, 5.0}) {
    Circuit c = circuits::example1(80.0);
    for (int i = 0; i < c.num_elements(); ++i) {
      c.element(i).hold = h;
      c.element(i).dq_min = 5.0;
    }
    opt::MlpOptions options;
    options.generator.hold_constraints = true;
    const auto r = opt::minimize_cycle_time(c, options);
    hold.add_row({fmt_time(h), r ? fmt_time(r->min_cycle, 2) : "infeasible"});
  }
  std::printf("%s\n", hold.to_string().c_str());
  std::printf("every margin tightens the LP, so Tc* is monotone in each knob —\n"
              "the price of robustness is visible directly in the schedule.\n");
  return 0;
}
