// Extension study: the constraint classes the paper says "can be easily
// added to this minimum set" — clock skew, minimum phase widths and
// minimum phase separation — plus conservative hold constraints.
//
// The centerpiece is the per-design SKEW-TOLERANCE CURVE Tc*(σ): every
// element's first-class skew field is swept uniformly through the
// parametric-LP machinery (opt::sweep_clock_skew chains warm simplex bases
// between samples), and the recovered piecewise-linear segments show how
// much clock uncertainty each design absorbs per nanosecond of cycle time.
// Results are printed as text tables and written as JSON
// (skew_tolerance.json, or argv[1]) for plotting; see EXPERIMENTS.md.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/strings.h"
#include "base/table.h"
#include "circuits/example1.h"
#include "circuits/example2.h"
#include "circuits/gaas.h"
#include "lp/parametric.h"
#include "opt/mlp.h"
#include "opt/parametric.h"

using namespace mintc;

namespace {

double solve_with(const opt::GeneratorOptions& gen) {
  opt::MlpOptions options;
  options.generator = gen;
  const auto r = opt::minimize_cycle_time(circuits::example1(80.0), options);
  return r ? r->min_cycle : -1.0;
}

struct DesignCurve {
  std::string name;
  double tc0 = 0.0;           // Tc* at zero skew
  lp::ParametricResult sweep; // Tc*(σ) samples + recovered segments
};

DesignCurve skew_curve(const std::string& name, const Circuit& circuit, int samples) {
  DesignCurve curve;
  curve.name = name;
  const auto base = opt::minimize_cycle_time(circuit);
  curve.tc0 = base ? base->min_cycle : -1.0;
  // Sweep σ up to a quarter of the nominal cycle — comfortably past any
  // realistic clock-network uncertainty, wide enough to cross curve knees.
  const double hi = curve.tc0 > 0.0 ? 0.25 * curve.tc0 : 1.0;
  curve.sweep = opt::sweep_clock_skew(circuit, 0.0, hi, samples);
  return curve;
}

std::string curves_json(const std::vector<DesignCurve>& curves) {
  std::ostringstream out;
  out << "{\"designs\": [";
  for (size_t d = 0; d < curves.size(); ++d) {
    const DesignCurve& c = curves[d];
    out << (d ? ",\n " : "\n ") << "{\"name\": \"" << c.name
        << "\", \"tc0\": " << fmt_time(c.tc0, 6) << ", \"points\": [";
    for (size_t i = 0; i < c.sweep.points.size(); ++i) {
      const lp::ParametricPoint& p = c.sweep.points[i];
      if (i) out << ", ";
      out << "{\"skew\": " << fmt_time(p.theta, 6)
          << ", \"tc\": " << fmt_time(p.objective, 6) << ", \"feasible\": "
          << (p.status == lp::SolveStatus::kOptimal ? "true" : "false") << "}";
    }
    out << "], \"segments\": [";
    for (size_t i = 0; i < c.sweep.segments.size(); ++i) {
      const lp::ParametricSegment& s = c.sweep.segments[i];
      if (i) out << ", ";
      out << "{\"begin\": " << fmt_time(s.theta_begin, 6)
          << ", \"end\": " << fmt_time(s.theta_end, 6)
          << ", \"slope\": " << fmt_time(s.slope, 6) << "}";
    }
    out << "]}";
  }
  out << "\n]}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== per-design skew-tolerance curves Tc*(sigma) ==\n\n");

  std::vector<DesignCurve> curves;
  curves.push_back(skew_curve("example1", circuits::example1(80.0), 21));
  curves.push_back(skew_curve("example2", circuits::example2(), 21));
  curves.push_back(skew_curve("gaas", circuits::gaas_datapath(), 21));

  for (const DesignCurve& c : curves) {
    std::printf("-- %s (Tc* = %s ns at sigma = 0) --\n", c.name.c_str(),
                fmt_time(c.tc0, 2).c_str());
    TextTable t({"sigma [ns]", "Tc* [ns]", "penalty [ns]"});
    for (const lp::ParametricPoint& p : c.sweep.points) {
      if (p.status != lp::SolveStatus::kOptimal) {
        t.add_row({fmt_time(p.theta, 3), "infeasible", "-"});
        continue;
      }
      t.add_row({fmt_time(p.theta, 3), fmt_time(p.objective, 2),
                 "+" + fmt_time(p.objective - c.tc0, 2)});
    }
    std::printf("%s", t.to_string().c_str());
    if (!c.sweep.segments.empty()) {
      std::printf("linear segments of Tc*(sigma):\n");
      for (const lp::ParametricSegment& s : c.sweep.segments) {
        std::printf("  sigma in [%s, %s]: slope %s ns/ns\n",
                    fmt_time(s.theta_begin, 3).c_str(), fmt_time(s.theta_end, 3).c_str(),
                    fmt_time(s.slope, 3).c_str());
      }
    }
    std::printf("\n");
  }

  const std::string json_path = argc > 1 ? argv[1] : "skew_tolerance.json";
  std::ofstream(json_path) << curves_json(curves);
  std::printf("wrote %s\n\n", json_path.c_str());

  std::printf("== other clock margin extensions on example 1 (nominal Tc* = 110) ==\n\n");

  TextTable width({"min phase width [ns]", "Tc* [ns]"});
  for (const double w : {0.0, 20.0, 40.0, 50.0, 60.0}) {
    opt::GeneratorOptions gen;
    gen.min_phase_width = w;
    width.add_row({fmt_time(w), fmt_time(solve_with(gen), 2)});
  }
  std::printf("%s\n", width.to_string().c_str());

  TextTable sep({"min phase separation [ns]", "Tc* [ns]"});
  for (const double g : {0.0, 5.0, 10.0, 20.0}) {
    opt::GeneratorOptions gen;
    gen.min_phase_separation = g;
    sep.add_row({fmt_time(g), fmt_time(solve_with(gen), 2)});
  }
  std::printf("%s\n", sep.to_string().c_str());

  // Hold margins: give the latches a hold requirement and min delays, then
  // turn the conservative linear hold rows on.
  TextTable hold({"hold time [ns]", "Tc* with hold rows [ns]"});
  for (const double h : {0.0, 2.0, 5.0}) {
    Circuit c = circuits::example1(80.0);
    for (int i = 0; i < c.num_elements(); ++i) {
      c.element(i).hold = h;
      c.element(i).dq_min = 5.0;
    }
    opt::MlpOptions options;
    options.generator.hold_constraints = true;
    const auto r = opt::minimize_cycle_time(c, options);
    hold.add_row({fmt_time(h), r ? fmt_time(r->min_cycle, 2) : "infeasible"});
  }
  std::printf("%s\n", hold.to_string().c_str());
  std::printf("every margin tightens the LP, so Tc* is monotone in each knob —\n"
              "the price of robustness is visible directly in the schedule.\n");
  return 0;
}
