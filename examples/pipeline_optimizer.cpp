// Gate-level flow: describe a small two-phase multiply-accumulate pipeline
// as a netlist, extract its SMO timing model with the logical-effort delay
// calculator (the library's substitute for the paper's SPICE extraction),
// then compare the optimal latch-aware clock against the edge-triggered and
// NRIP baselines.
#include <cstdio>

#include "base/strings.h"
#include "base/table.h"
#include "baselines/binary_search.h"
#include "baselines/edge_triggered.h"
#include "netlist/extract.h"
#include "opt/mlp.h"
#include "sta/analysis.h"

using namespace mintc;

namespace {

// A 2-phase MAC pipeline: IN -> (booth-ish mul cloud) -> P -> (adder cloud)
// -> ACC, with ACC fed back into the adder.
netlist::Netlist mac_pipeline() {
  using netlist::GateType;
  netlist::Netlist n("mac_pipeline", 2);
  const auto net = [&](const char* name) { return n.add_net(name); };

  const int in_d = net("in_d"), in_q = net("in_q");
  const int coef_d = net("coef_d"), coef_q = net("coef_q");
  const int p_d = net("p_d"), p_q = net("p_q");
  const int acc_d = net("acc_d"), acc_q = net("acc_q");
  const int out_d = net("out_d"), out_q = net("out_q");

  n.add_latch("IN", 1, in_d, in_q, 0.3, 0.5);
  n.add_latch("COEF", 1, coef_d, coef_q, 0.3, 0.5);
  n.add_latch("P", 2, p_d, p_q, 0.3, 0.5);
  n.add_latch("ACC", 1, acc_d, acc_q, 0.3, 0.5);
  n.add_latch("OUT", 2, out_d, out_q, 0.3, 0.5);

  // Multiplier cloud: a chain of partial-product stages.
  int prev = in_q;
  for (int i = 0; i < 4; ++i) {
    const int pp = net(("pp" + std::to_string(i)).c_str());
    n.add_gate("mul_and" + std::to_string(i), GateType::kAnd, {prev, coef_q}, pp);
    const int sum = net(("ms" + std::to_string(i)).c_str());
    n.add_gate("mul_xor" + std::to_string(i), GateType::kXor, {pp, coef_q}, sum);
    prev = sum;
  }
  n.add_gate("mul_out", GateType::kBuf, {prev}, p_d);

  // Adder cloud: P + ACC with carry chain.
  int carry = p_q;
  for (int i = 0; i < 3; ++i) {
    const int s = net(("as" + std::to_string(i)).c_str());
    const int co = net(("ac" + std::to_string(i)).c_str());
    n.add_gate("add_xor" + std::to_string(i), GateType::kXor, {carry, acc_q}, s);
    n.add_gate("add_aoi" + std::to_string(i), GateType::kAoi21, {carry, acc_q, s}, co);
    carry = co;
  }
  n.add_gate("add_out", GateType::kBuf, {carry}, acc_d);
  n.add_gate("out_mux", GateType::kMux2, {acc_q, p_q, coef_q}, out_d);
  return n;
}

}  // namespace

int main() {
  std::printf("== pipeline_optimizer: netlist -> timing model -> optimal clock ==\n\n");
  const netlist::Netlist nl = mac_pipeline();
  std::printf("netlist '%s': %zu gates, %zu storage elements, %d nets\n",
              nl.name().c_str(), nl.gates().size(), nl.storages().size(), nl.num_nets());

  const auto circuit = netlist::extract_timing_model(nl);
  if (!circuit) {
    std::printf("extraction failed: %s\n", circuit.error().to_string().c_str());
    return 1;
  }
  std::printf("extracted timing model: %d elements, %d block paths\n\n",
              circuit->num_elements(), circuit->num_paths());
  TextTable paths({"block", "max delay", "min delay"});
  for (const CombPath& p : circuit->paths()) {
    paths.add_row({p.label, fmt_time(p.delay, 3), fmt_time(p.min_delay, 3)});
  }
  std::printf("%s\n", paths.to_string().c_str());

  const auto mlp = opt::minimize_cycle_time(*circuit);
  if (!mlp) {
    std::printf("optimization failed: %s\n", mlp.error().to_string().c_str());
    return 1;
  }
  const auto cpm = baselines::edge_triggered_cpm(*circuit);
  const auto nrip = baselines::nrip_reconstruction(*circuit);

  TextTable cmp({"method", "cycle time", "frequency gain vs CPM"});
  const auto gain = [&](double tc) {
    return fmt_time(100.0 * (cpm.cycle / tc - 1.0), 1) + "%";
  };
  cmp.add_row({"edge-triggered CPM", fmt_time(cpm.cycle, 3), "-"});
  cmp.add_row({"NRIP (symmetric clock)", fmt_time(nrip.cycle, 3), gain(nrip.cycle)});
  cmp.add_row({"MLP (optimal)", fmt_time(mlp->min_cycle, 3), gain(mlp->min_cycle)});
  std::printf("%s\n", cmp.to_string().c_str());
  std::printf("optimal schedule: %s\n", mlp->schedule.to_string().c_str());

  const sta::TimingReport rep = sta::check_schedule(*circuit, mlp->schedule);
  std::printf("verification: %s\n", rep.feasible ? "PASS" : "FAIL");
  return rep.feasible ? 0 : 1;
}
