// Gate-level two-phase accumulator for `timing_tool` demos:
// parse with parser/verilog.h, extract with netlist/extract.h.
module accumulator (clk1, clk2, din);
  wire in_q, acc_d, acc_q, out_d, out_q, x1, x2, x3, x4;

  latch #(.phase(1), .setup(0.3), .dq(0.5)) IN  (.d(din),   .q(in_q));
  latch #(.phase(2), .setup(0.3), .dq(0.5)) ACC (.d(acc_d), .q(acc_q));
  latch #(.phase(1), .setup(0.3), .dq(0.5)) OUT (.d(out_d), .q(out_q));

  xor g1 (x1, in_q, x4);
  and g2 (x2, in_q, x4);
  or  g3 (x3, x1, x2);
  buf g4 (acc_d, x3);
  not g5 (out_d, acc_q);
  buf g6 (x4, out_q);
endmodule
