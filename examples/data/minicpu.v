// minicpu: a 4-bit two-phase accumulator CPU slice, structural subset.
// Demonstrates the gate-level flow at a more realistic size:
//   timing_tool works on the extracted .lct; this file feeds
//   parser/verilog.h -> netlist/extract.h -> opt/mlp.h.
//
// phi1 latches: architectural state (ACC, PC, IR); phi2 latches: stage
// results (ALU output, next-PC). Feedback: ACC -> ALU -> ALUo -> ACC and
// PC -> incrementer -> PCn -> PC.
module minicpu (din0, din1, din2, din3);
  wire ir_d0, ir_d1, ir_q0, ir_q1;            // opcode bits
  wire acc_d0, acc_d1, acc_d2, acc_d3;
  wire acc_q0, acc_q1, acc_q2, acc_q3;
  wire alu_d0, alu_d1, alu_d2, alu_d3;
  wire alu_q0, alu_q1, alu_q2, alu_q3;
  wire pc_d0, pc_d1, pc_q0, pc_q1;
  wire pcn_d0, pcn_d1, pcn_q0, pcn_q1;
  wire s0, s1, s2, s3, c1, c2, c3;
  wire x0, x1, x2, x3;

  // Architectural state on phi1.
  latch #(.phase(1), .setup(0.3), .dq(0.5)) IR0  (.d(ir_d0),  .q(ir_q0));
  latch #(.phase(1), .setup(0.3), .dq(0.5)) IR1  (.d(ir_d1),  .q(ir_q1));
  latch #(.phase(1), .setup(0.3), .dq(0.5)) ACC0 (.d(acc_d0), .q(acc_q0));
  latch #(.phase(1), .setup(0.3), .dq(0.5)) ACC1 (.d(acc_d1), .q(acc_q1));
  latch #(.phase(1), .setup(0.3), .dq(0.5)) ACC2 (.d(acc_d2), .q(acc_q2));
  latch #(.phase(1), .setup(0.3), .dq(0.5)) ACC3 (.d(acc_d3), .q(acc_q3));
  latch #(.phase(1), .setup(0.3), .dq(0.5)) PC0  (.d(pc_d0),  .q(pc_q0));
  latch #(.phase(1), .setup(0.3), .dq(0.5)) PC1  (.d(pc_d1),  .q(pc_q1));

  // Stage results on phi2.
  latch #(.phase(2), .setup(0.3), .dq(0.5)) ALUo0 (.d(alu_d0), .q(alu_q0));
  latch #(.phase(2), .setup(0.3), .dq(0.5)) ALUo1 (.d(alu_d1), .q(alu_q1));
  latch #(.phase(2), .setup(0.3), .dq(0.5)) ALUo2 (.d(alu_d2), .q(alu_q2));
  latch #(.phase(2), .setup(0.3), .dq(0.5)) ALUo3 (.d(alu_d3), .q(alu_q3));
  latch #(.phase(2), .setup(0.3), .dq(0.5)) PCn0  (.d(pcn_d0), .q(pcn_q0));
  latch #(.phase(2), .setup(0.3), .dq(0.5)) PCn1  (.d(pcn_d1), .q(pcn_q1));

  // ALU: ripple-carry add of ACC and DIN, opcode-gated.
  and a0 (x0, din0, ir_q0);
  and a1 (x1, din1, ir_q0);
  and a2 (x2, din2, ir_q1);
  and a3 (x3, din3, ir_q1);
  xor s0g (s0, acc_q0, x0);
  and c1g (c1, acc_q0, x0);
  xor s1h (alu_d1, s1, c1);
  xor s1g (s1, acc_q1, x1);
  and c2g (c2, s1, c1);
  xor s2h (alu_d2, s2, c2);
  xor s2g (s2, acc_q2, x2);
  and c3g (c3, s2, c2);
  xor s3h (alu_d3, s3, c3);
  xor s3g (s3, acc_q3, x3);
  buf s0b (alu_d0, s0);

  // Writeback: ALU result returns to the accumulator.
  buf w0 (acc_d0, alu_q0);
  buf w1 (acc_d1, alu_q1);
  buf w2 (acc_d2, alu_q2);
  buf w3 (acc_d3, alu_q3);

  // Next-PC: 2-bit incrementer, branch-gated by the ALU sign bit.
  not  i0 (pcn_d0, pc_q0);
  xor  i1 (pcn_d1, pc_q1, pc_q0);
  buf  p0 (pc_d0, pcn_q0);
  aoi21 p1 (pc_d1, pcn_q1, alu_q3, ir_q1);

  // Instruction "fetch": opcode bits recirculate through the decoder.
  nand f0 (ir_d0, pc_q0, pc_q1);
  nor  f1 (ir_d1, pc_q0, pc_q1);
endmodule
