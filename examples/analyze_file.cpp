// File-driven timing analyzer/designer — the library as a command-line tool.
//
// Usage:
//   analyze_file                      demo: writes and analyzes example 1
//   analyze_file circuit.lct          design: find the optimal schedule
//   analyze_file circuit.lct sched.lcs    analyze: check the given schedule
#include <cstdio>
#include <string>

#include "circuits/example1.h"
#include "opt/mlp.h"
#include "parser/lcs.h"
#include "parser/lct.h"
#include "sta/analysis.h"
#include "viz/timing_diagram.h"

using namespace mintc;

namespace {

int design(const Circuit& circuit) {
  const auto r = opt::minimize_cycle_time(circuit);
  if (!r) {
    std::printf("design failed: %s\n", r.error().to_string().c_str());
    return 1;
  }
  std::printf("minimum cycle time: %.6g\n", r->min_cycle);
  std::printf("schedule: %s\n\n", r->schedule.to_string().c_str());
  std::printf("save this schedule as .lcs:\n%s\n",
              parser::write_schedule(r->schedule).c_str());
  std::printf("%s", viz::ascii_timing_diagram(circuit, r->schedule, r->departure).c_str());
  std::printf("\ncritical constraints:\n");
  for (const auto& t : r->critical) {
    std::printf("  %-24s dual=%.4g\n", t.name.c_str(), t.dual);
  }
  return 0;
}

int analyze(const Circuit& circuit, const ClockSchedule& schedule) {
  sta::AnalysisOptions opt;
  opt.check_hold = true;
  const sta::TimingReport rep = sta::check_schedule(circuit, schedule, opt);
  std::printf("%s", rep.to_string(circuit).c_str());
  return rep.feasible ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) {
    std::printf("no arguments: running the built-in demo (example 1, delta41 = 100).\n");
    std::printf("usage: %s circuit.lct [schedule.lcs]\n\n", argv[0]);
    const Circuit demo = circuits::example1(100.0);
    std::printf("circuit file contents (.lct):\n%s\n", parser::write_circuit(demo).c_str());
    return design(demo);
  }

  const auto circuit = parser::load_circuit(argv[1]);
  if (!circuit) {
    std::printf("cannot load circuit: %s\n", circuit.error().to_string().c_str());
    return 1;
  }
  if (argc == 2) return design(*circuit);

  const auto schedule = parser::load_schedule(argv[2]);
  if (!schedule) {
    std::printf("cannot load schedule: %s\n", schedule.error().to_string().c_str());
    return 1;
  }
  return analyze(*circuit, *schedule);
}
