// timing_serve — the timing-analysis-as-a-service daemon.
//
// Hosts a serve::TimingService (warm AnalysisSession pool + result cache)
// behind a serve::SocketServer speaking the line-delimited JSON protocol
// (src/serve/protocol.h) on a Unix-domain socket and/or loopback TCP.
//
//   timing_serve --unix /tmp/mintc.sock            # unix socket
//   timing_serve --port 0                          # ephemeral TCP port
//   timing_serve --unix s.sock --port 7317 --threads 8 --cache-mb 64
//
// Prints one "listening on ..." line per bound address (flushed, so
// wrapper scripts can wait for it), then serves until SIGINT/SIGTERM.
// --stop-after <sec> exits on its own (CI smoke jobs); --metrics-out
// dumps the obs metrics registry on shutdown.
//
// Telemetry flags:
//   --prom-out <file> [--prom-interval <sec>]   periodic Prometheus text
//       snapshots (runtime gauges refreshed before each write; default 10 s)
//   --trace-out <file>     drain the span ring buffer as Chrome trace JSON
//       on shutdown
//   --trace-buffer <N>     span ring capacity (default 65536; 0 = unbounded)
//   --slow-ms <T>          structured slow-request log above T milliseconds
//   --no-telemetry         kill request-path telemetry (overhead baseline)
//
// Observability flags (the cost-attribution / ops-dashboard layer):
//   --audit-out <file> [--audit-rotate-mb <M>]   per-request JSONL audit log
//       with trace id, verb, cache hit/miss and CostAccount totals
//   --status-html <file> [--status-interval <sec>]   periodically (and on
//       shutdown) write the live ops dashboard as a single HTML file
//   --profile [--profile-us <T>] [--profile-out <file>]   run the sampling
//       span profiler at interval T (default 2000us); --profile-out writes
//       the collapsed flamegraph text on shutdown
//
// Talk to it with timing_client, timing_tool --remote, or plain nc:
//   echo '{"verb":"load","circuit":"e1","builtin":"example1"}' | nc -U s.sock
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <string>

#include "obs/export.h"
#include "obs/profiler.h"
#include "serve/server.h"
#include "serve/service.h"

using namespace mintc;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

int usage() {
  std::printf(
      "usage: timing_serve [--unix <path>] [--port <p>] [--threads <N>]\n"
      "                    [--cache-mb <M>] [--session-mb <M>]\n"
      "                    [--analyze-threads <N>] [--max-frame-mb <M>]\n"
      "                    [--stop-after <sec>] [--metrics-out <file>]\n"
      "                    [--prom-out <file>] [--prom-interval <sec>]\n"
      "                    [--trace-out <file>] [--trace-buffer <N>]\n"
      "                    [--slow-ms <T>] [--no-telemetry]\n"
      "                    [--audit-out <file>] [--audit-rotate-mb <M>]\n"
      "                    [--status-html <file>] [--status-interval <sec>]\n"
      "                    [--profile] [--profile-us <T>] [--profile-out <file>]\n"
      "  --port 0 picks an ephemeral port (printed). With no listener flags,\n"
      "  defaults to --port 0.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerConfig server_config;
  serve::ServiceConfig service_config;
  std::string metrics_out;
  std::string prom_out;
  std::string trace_out;
  std::string status_html_out;
  std::string profile_out;
  long prom_interval_sec = 10;
  long status_interval_sec = 10;
  long trace_buffer = 65536;
  long stop_after_sec = 0;
  long profile_interval_us = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--unix" && has_value) {
      server_config.unix_path = argv[++i];
    } else if (arg == "--port" && has_value) {
      server_config.tcp_port = std::atoi(argv[++i]);
    } else if (arg == "--threads" && has_value) {
      server_config.num_threads = std::atoi(argv[++i]);
    } else if (arg == "--cache-mb" && has_value) {
      service_config.cache_bytes = static_cast<size_t>(std::atol(argv[++i])) << 20;
    } else if (arg == "--session-mb" && has_value) {
      service_config.session_bytes = static_cast<size_t>(std::atol(argv[++i])) << 20;
    } else if (arg == "--analyze-threads" && has_value) {
      service_config.analyze_threads = std::atoi(argv[++i]);
    } else if (arg == "--max-frame-mb" && has_value) {
      service_config.max_frame_bytes = static_cast<size_t>(std::atol(argv[++i])) << 20;
      server_config.max_frame_bytes = service_config.max_frame_bytes;
    } else if (arg == "--stop-after" && has_value) {
      stop_after_sec = std::atol(argv[++i]);
    } else if (arg == "--metrics-out" && has_value) {
      metrics_out = argv[++i];
    } else if (arg == "--prom-out" && has_value) {
      prom_out = argv[++i];
    } else if (arg == "--prom-interval" && has_value) {
      prom_interval_sec = std::atol(argv[++i]);
      if (prom_interval_sec < 1) prom_interval_sec = 1;
    } else if (arg == "--trace-out" && has_value) {
      trace_out = argv[++i];
    } else if (arg == "--trace-buffer" && has_value) {
      trace_buffer = std::atol(argv[++i]);
      if (trace_buffer < 0) trace_buffer = 0;
    } else if (arg == "--slow-ms" && has_value) {
      service_config.slow_request_us = 1000 * std::atol(argv[++i]);
    } else if (arg == "--no-telemetry") {
      service_config.telemetry = false;
    } else if (arg == "--audit-out" && has_value) {
      service_config.audit_path = argv[++i];
    } else if (arg == "--audit-rotate-mb" && has_value) {
      service_config.audit_rotate_bytes = static_cast<size_t>(std::atol(argv[++i])) << 20;
    } else if (arg == "--status-html" && has_value) {
      status_html_out = argv[++i];
    } else if (arg == "--status-interval" && has_value) {
      status_interval_sec = std::atol(argv[++i]);
      if (status_interval_sec < 1) status_interval_sec = 1;
    } else if (arg == "--profile") {
      if (profile_interval_us <= 0) profile_interval_us = 2000;
    } else if (arg == "--profile-us" && has_value) {
      profile_interval_us = std::atol(argv[++i]);
      if (profile_interval_us < 200) profile_interval_us = 200;
    } else if (arg == "--profile-out" && has_value) {
      profile_out = argv[++i];
      if (profile_interval_us <= 0) profile_interval_us = 2000;
    } else {
      return usage();
    }
  }
  if (server_config.unix_path.empty() && server_config.tcp_port < 0) {
    server_config.tcp_port = 0;  // ephemeral loopback by default
  }

  // A daemon's span buffer must be bounded: the ring drops the oldest
  // events (counted + marked) instead of growing without limit.
  obs::Tracer::instance().set_capacity(static_cast<size_t>(trace_buffer));
  if (profile_interval_us > 0) {
    obs::Profiler::instance().start(profile_interval_us);
  }

  serve::TimingService service(service_config);
  serve::SocketServer server(service, server_config);
  const Expected<bool> started = server.start();
  if (!started) {
    std::fprintf(stderr, "error: %s\n", started.error().to_string().c_str());
    return 1;
  }
  if (!server.unix_path().empty()) {
    std::printf("listening on unix:%s\n", server.unix_path().c_str());
  }
  if (server.tcp_port() >= 0) {
    std::printf("listening on 127.0.0.1:%d\n", server.tcp_port());
  }
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  const auto write_text_file = [](const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::trunc);
    if (!out) return false;
    out << content;
    return static_cast<bool>(out);
  };

  long elapsed_ms = 0;
  long next_prom_ms = prom_interval_sec * 1000;
  long next_history_ms = 1000;
  long next_status_ms = status_interval_sec * 1000;
  while (!g_stop) {
    struct timespec ts{0, 200 * 1000 * 1000};
    ::nanosleep(&ts, nullptr);
    elapsed_ms += 200;
    if (elapsed_ms >= next_history_ms) {
      // One HistoryRing sample per second: with the default 240-slot ring
      // the status sparklines cover the last four minutes.
      service.record_history_sample();
      next_history_ms += 1000;
    }
    if (!prom_out.empty() && elapsed_ms >= next_prom_ms) {
      service.sample_runtime_gauges();
      obs::write_prometheus_text(prom_out);
      next_prom_ms += prom_interval_sec * 1000;
    }
    if (!status_html_out.empty() && elapsed_ms >= next_status_ms) {
      write_text_file(status_html_out, service.status_html());
      next_status_ms += status_interval_sec * 1000;
    }
    if (stop_after_sec > 0 && elapsed_ms >= stop_after_sec * 1000) break;
  }

  server.stop();

  if (!prom_out.empty()) {
    service.sample_runtime_gauges();
    if (obs::write_prometheus_text(prom_out)) std::printf("wrote %s\n", prom_out.c_str());
  }
  if (!trace_out.empty() && obs::write_chrome_trace(trace_out)) {
    std::printf("wrote %s\n", trace_out.c_str());
  }
  if (!status_html_out.empty() &&
      write_text_file(status_html_out, service.status_html())) {
    std::printf("wrote %s\n", status_html_out.c_str());
  }
  if (profile_interval_us > 0) {
    obs::Profiler::instance().stop();
    if (!profile_out.empty() &&
        write_text_file(profile_out, obs::Profiler::instance().collapsed())) {
      std::printf("wrote %s\n", profile_out.c_str());
    }
  }

  const serve::ResultCache::Stats cs = service.cache().stats();
  const serve::TimingService::PoolStats ps = service.pool_stats();
  const long lookups = cs.hits + cs.misses;
  std::printf(
      "shut down: %ld connection%s, %zu session%s warm (%ld eviction%s), "
      "cache %ld/%ld hits (%.1f%%)\n",
      server.connections_accepted(), server.connections_accepted() == 1 ? "" : "s",
      ps.sessions, ps.sessions == 1 ? "" : "s", ps.evictions, ps.evictions == 1 ? "" : "s",
      cs.hits, lookups, lookups > 0 ? 100.0 * static_cast<double>(cs.hits) /
                                          static_cast<double>(lookups)
                                    : 0.0);
  if (!metrics_out.empty() && obs::write_metrics_json(metrics_out)) {
    std::printf("wrote %s\n", metrics_out.c_str());
  }
  return 0;
}
