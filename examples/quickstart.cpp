// Quickstart: build a circuit, find its optimal clock schedule, verify it.
//
// This walks the paper's example 1 (Fig. 5) end to end:
//   1. describe the circuit (4 latches, 2 phases, 4 combinational blocks);
//   2. run Algorithm MLP to get the minimum cycle time and a schedule;
//   3. cross-check with the analysis engine (checkTc direction);
//   4. print a Fig. 6-style timing diagram.
#include <cstdio>

#include "circuits/example1.h"
#include "opt/mlp.h"
#include "sta/analysis.h"
#include "viz/timing_diagram.h"

int main() {
  using namespace mintc;

  // 1. The circuit. circuits::example1() builds the same thing; spelled out
  //    here to show the API.
  Circuit circuit("quickstart", /*num_phases=*/2);
  circuit.add_latch("L1", /*phase=*/1, /*setup=*/10.0, /*dq=*/10.0);
  circuit.add_latch("L2", 2, 10.0, 10.0);
  circuit.add_latch("L3", 1, 10.0, 10.0);
  circuit.add_latch("L4", 2, 10.0, 10.0);
  circuit.add_path("L1", "L2", /*delay=*/20.0, /*min_delay=*/0.0, "La");
  circuit.add_path("L2", "L3", 20.0, 0.0, "Lb");
  circuit.add_path("L3", "L4", 60.0, 0.0, "Lc");
  circuit.add_path("L4", "L1", 80.0, 0.0, "Ld");

  // 2. Design problem: minimize the cycle time (Algorithm MLP).
  const Expected<opt::MlpResult> result = opt::minimize_cycle_time(circuit);
  if (!result) {
    std::printf("optimization failed: %s\n", result.error().to_string().c_str());
    return 1;
  }
  std::printf("optimal cycle time: %.6g ns (paper: 110 ns for delta41 = 80)\n",
              result->min_cycle);
  std::printf("schedule: %s\n", result->schedule.to_string().c_str());
  std::printf("LP: %d rows, %d+%d pivots; fixpoint: %d sweeps\n",
              result->counts.rows(), result->lp_stats.phase1_pivots,
              result->lp_stats.phase2_pivots, result->fixpoint_sweeps);

  // 3. Analysis problem: verify the schedule we just designed.
  const sta::TimingReport report = sta::check_schedule(circuit, result->schedule);
  std::printf("\nanalysis re-check: %s\n", report.feasible ? "PASS" : "FAIL");
  std::printf("%s\n", report.to_string(circuit).c_str());

  // 4. Fig. 6-style diagram.
  std::printf("%s\n",
              viz::ascii_timing_diagram(circuit, result->schedule, result->departure).c_str());
  std::printf("%s\n", viz::departure_summary(circuit, result->departure).c_str());
  return report.feasible ? 0 : 1;
}
