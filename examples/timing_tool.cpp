// timing_tool — the library's functionality behind one command-line front
// end, in the spirit of the authors' later checkTc/minTc utilities.
//
//   timing_tool min <circuit.lct>                 minimum cycle time + schedule
//   timing_tool check <circuit.lct> <sched.lcs>   verify a schedule (checkTc)
//   timing_tool loops <circuit.lct>               feedback-loop inventory
//   timing_tool critical <circuit.lct>            critical segments at the optimum
//   timing_tool sens <circuit.lct>                dTc*/ddelay for every path
//   timing_tool bounds <circuit.lct>              closed-form lower bounds vs Tc*
//   timing_tool sim <circuit.lct> <sched.lcs>     event-driven token simulation
//   timing_tool corners <circuit.lct> <sched.lcs> slow/typical/fast sign-off
//   timing_tool svg|dot|vcd <circuit.lct> [out]   diagram / graph / waveform files
//   timing_tool baselines <circuit.lct>           compare against CPM/Jouppi/NRIP
//   timing_tool report <circuit> [sched.lcs] [--json F] [--html F] [--nworst K]
//                      [--corners]               signoff report (text/JSON/HTML)
//
// The <circuit> argument is a .lct file, or one of the built-in names
// example1 / example2 / gaas. Every subcommand also accepts the global
// flags --metrics-out <file> and --trace-out <file>, which dump the obs
// metrics registry / chrome trace on exit.
//
// --remote <unix:/path | host:port> routes min / check / corners / report
// through a running timing_serve daemon instead of computing locally: the
// circuit (and schedule) are shipped as .lct/.lcs text over the wire and
// the server's warm session pool + result cache answer. The other
// subcommands are local-only and say so.
//
// With no arguments, runs every subcommand against the built-in example 1.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "base/strings.h"
#include "base/table.h"
#include "baselines/binary_search.h"
#include "baselines/edge_triggered.h"
#include "circuits/example1.h"
#include "circuits/example2.h"
#include "circuits/gaas.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "opt/critical.h"
#include "opt/mlp.h"
#include "opt/sensitivity.h"
#include "parser/lcs.h"
#include "parser/lct.h"
#include "opt/bounds.h"
#include "report/export.h"
#include "report/slackdb.h"
#include "serve/client.h"
#include "serve/json.h"
#include "sim/token_sim.h"
#include "sim/vcd.h"
#include "sta/analysis.h"
#include "sta/corners.h"
#include "viz/dot.h"
#include "viz/svg.h"
#include "viz/timing_diagram.h"

using namespace mintc;

namespace {

int cmd_min(const Circuit& c) {
  const auto r = opt::minimize_cycle_time(c);
  if (!r) {
    std::printf("error: %s\n", r.error().to_string().c_str());
    return 1;
  }
  std::printf("Tc* = %s\n%s\n", fmt_time(r->min_cycle, 6).c_str(),
              parser::write_schedule(r->schedule).c_str());
  std::printf("%s", viz::ascii_timing_diagram(c, r->schedule, r->departure).c_str());
  return 0;
}

// --threads N (global flag) routes the departure fixpoint through the
// SCC-parallel engine; 0 keeps the scalar scheme.
int g_threads = 0;

// --remote <addr> (global flag): address of a timing_serve daemon; empty
// means compute locally.
std::string g_remote;

int cmd_check(const Circuit& c, const ClockSchedule& s) {
  sta::AnalysisOptions opt;
  opt.check_hold = true;
  opt.num_threads = g_threads;
  const sta::TimingReport rep = sta::check_schedule(c, s, opt);
  std::printf("%s", rep.to_string(c).c_str());
  return rep.feasible ? 0 : 1;
}

int cmd_loops(const Circuit& c) {
  const opt::LoopReport rep = opt::analyze_loops(c);
  std::printf("%zu feedback loop%s%s:\n", rep.loops.size(),
              rep.loops.size() == 1 ? "" : "s", rep.complete ? "" : " (truncated)");
  int shown = 0;
  for (const opt::LoopInfo& loop : rep.loops) {
    std::printf("  %s\n", loop.to_string(c).c_str());
    if (++shown >= 20) {
      std::printf("  ... (%zu more)\n", rep.loops.size() - 20);
      break;
    }
  }
  if (!rep.loops.empty()) {
    std::printf("binding loop bound: Tc >= %s\n",
                fmt_time(rep.loops.front().implied_tc, 4).c_str());
  }
  return 0;
}

int cmd_critical(const Circuit& c) {
  const auto r = opt::minimize_cycle_time(c);
  if (!r) {
    std::printf("error: %s\n", r.error().to_string().c_str());
    return 1;
  }
  std::printf("Tc* = %s\n", fmt_time(r->min_cycle, 6).c_str());
  const opt::CriticalReport rep = opt::find_critical_segments(c, r->schedule, r->departure);
  std::printf("%s", rep.to_string(c).c_str());
  return 0;
}

int cmd_sens(const Circuit& c) {
  const auto s = opt::delay_sensitivities(c);
  if (!s) {
    std::printf("error: %s\n", s.error().to_string().c_str());
    return 1;
  }
  std::printf("Tc* = %s\n", fmt_time(s->min_cycle, 6).c_str());
  TextTable table({"path", "block", "delay", "dTc*/ddelay"});
  for (int p = 0; p < c.num_paths(); ++p) {
    const CombPath& path = c.path(p);
    table.add_row({c.element(path.from).name + "->" + c.element(path.to).name, path.label,
                   fmt_time(path.delay, 4),
                   fmt_time(s->dtc_ddelay[static_cast<size_t>(p)], 4)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

int cmd_sim(const Circuit& c, const ClockSchedule& s) {
  const sim::SimResult r = sim::simulate_tokens(c, s);
  std::printf("simulated %d generation%s, %ld events: %s\n", r.generations,
              r.generations == 1 ? "" : "s", r.events,
              r.converged ? "steady state reached" : "NO steady state");
  if (!r.setup_ok) {
    std::printf("setup violation first seen in generation %d\n",
                r.first_violation_generation);
  }
  std::printf("steady-state departures: %s\n",
              viz::departure_summary(c, r.departure).c_str());
  return (r.converged && r.setup_ok) ? 0 : 1;
}

int cmd_svg(const Circuit& c, const std::string& out_path) {
  const auto r = opt::minimize_cycle_time(c);
  if (!r) {
    std::printf("error: %s\n", r.error().to_string().c_str());
    return 1;
  }
  const std::string svg = viz::svg_timing_diagram(c, r->schedule, r->departure);
  std::ofstream out(out_path);
  if (!out) {
    std::printf("cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << svg;
  std::printf("wrote %s (%zu bytes, Tc* = %s)\n", out_path.c_str(), svg.size(),
              fmt_time(r->min_cycle, 6).c_str());
  return 0;
}

int cmd_baselines(const Circuit& c) {
  const auto mlp = opt::minimize_cycle_time(c);
  if (!mlp) {
    std::printf("error: %s\n", mlp.error().to_string().c_str());
    return 1;
  }
  TextTable table({"method", "Tc", "vs optimal"});
  const auto row = [&](const std::string& m, double tc) {
    table.add_row({m, fmt_time(tc, 4),
                   "+" + fmt_time(100.0 * (tc / mlp->min_cycle - 1.0), 1) + "%"});
  };
  table.add_row({"MLP (optimal)", fmt_time(mlp->min_cycle, 4), "-"});
  const auto nrip = baselines::nrip_reconstruction(c);
  const auto jp = baselines::jouppi_borrowing(c);
  const auto et = baselines::edge_triggered_cpm(c);
  row(nrip.method, nrip.cycle);
  row(jp.method, jp.cycle);
  row(et.method, et.cycle);
  std::printf("%s", table.to_string().c_str());
  return 0;
}

int cmd_dot(const Circuit& c, const std::string& out_path) {
  const auto r = opt::minimize_cycle_time(c);
  viz::DotOptions dopt;
  if (r) {
    const opt::CriticalReport rep = opt::find_critical_segments(c, r->schedule, r->departure);
    dopt.highlight_paths = rep.tight_paths;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::printf("cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << viz::dot_circuit(c, dopt);
  std::printf("wrote %s (critical paths highlighted)\n", out_path.c_str());
  return 0;
}

int cmd_vcd(const Circuit& c, const std::string& out_path) {
  const auto r = opt::minimize_cycle_time(c);
  if (!r) {
    std::printf("error: %s\n", r.error().to_string().c_str());
    return 1;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::printf("cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << sim::write_vcd(c, r->schedule, r->departure);
  std::printf("wrote %s (open with any VCD viewer; Tc* = %s)\n", out_path.c_str(),
              fmt_time(r->min_cycle, 6).c_str());
  return 0;
}

int cmd_corners(const Circuit& c, const ClockSchedule& s) {
  const sta::CornerReport rep = sta::check_corners(c, s);
  std::printf("%s", rep.to_string(c).c_str());
  return rep.all_pass ? 0 : 1;
}

int cmd_bounds(const Circuit& c) {
  std::printf("path-span bound: Tc >= %s\n", fmt_time(opt::path_span_bound(c), 6).c_str());
  std::printf("loop bound:      Tc >= %s\n", fmt_time(opt::loop_bound(c), 6).c_str());
  const auto r = opt::minimize_cycle_time(c);
  if (r) {
    std::printf("exact optimum:   Tc* = %s\n", fmt_time(r->min_cycle, 6).c_str());
  }
  return 0;
}

/// Signoff report: runs the SlackDB builder and renders text (stdout) plus
/// optional JSON / self-contained HTML dashboard files.
int cmd_report(const Circuit& c, const ClockSchedule& s, const std::string& json_path,
               const std::string& html_path, int nworst, bool corners) {
  report::SlackDbOptions opt;
  opt.nworst = nworst;
  if (corners) {
    const report::SignoffDB db = report::build_signoff(c, s, sta::standard_corners(), opt);
    std::printf("%s", report::signoff_table(db).c_str());
    if (!json_path.empty() && report::write_report_file(json_path, report::signoff_json(db))) {
      std::printf("wrote %s\n", json_path.c_str());
    }
    if (!html_path.empty() &&
        report::write_report_file(html_path, report::signoff_html(c, db))) {
      std::printf("wrote %s\n", html_path.c_str());
    }
    return db.all_pass ? 0 : 1;
  }
  const report::SlackDB db = report::build_slackdb(c, s, opt);
  std::printf("%s", report::report_table(db).c_str());
  if (!json_path.empty() && report::write_report_file(json_path, report::report_json(db))) {
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!html_path.empty() && report::write_report_file(html_path, report::report_html(c, db))) {
    std::printf("wrote %s\n", html_path.c_str());
  }
  return db.feasible ? 0 : 1;
}

/// The paper's published GaAs schedule shape (Fig. 11): min-duty refinement
/// at Tc*, then phi1 stretched back to the cycle origin so phi3 sits
/// entirely inside it.
bool gaas_published_schedule(const Circuit& c, ClockSchedule* out) {
  const auto base = opt::minimize_cycle_time(c);
  if (!base) return false;
  const auto refined =
      opt::refine_schedule(c, base->min_cycle, opt::SecondaryObjective::kMinTotalWidth);
  if (!refined) return false;
  *out = refined->schedule;
  out->width[0] += out->start[0];
  out->start[0] = 0.0;
  return true;
}

/// Resolve a circuit argument: a .lct path, or a built-in name. Built-ins
/// also pick a natural default schedule (the optimum; for gaas, the
/// published Fig. 11 shape).
bool resolve_circuit(const std::string& arg, Circuit* out, ClockSchedule* default_sched,
                     bool* have_sched) {
  *have_sched = false;
  if (arg == "example1") {
    *out = circuits::example1(80.0);
  } else if (arg == "example2") {
    *out = circuits::example2();
  } else if (arg == "gaas") {
    *out = circuits::gaas_datapath();
    *have_sched = gaas_published_schedule(*out, default_sched);
  } else {
    auto circuit = parser::load_circuit(arg);
    if (!circuit) {
      std::printf("cannot load circuit: %s\n", circuit.error().to_string().c_str());
      return false;
    }
    *out = *circuit;
  }
  if (!*have_sched) {
    const auto r = opt::minimize_cycle_time(*out);
    if (r) {
      *default_sched = r->schedule;
      *have_sched = true;
    }
  }
  return true;
}

int usage() {
  std::printf(
      "usage: timing_tool <min|loops|critical|sens|bounds|baselines> <circuit.lct>\n"
      "       timing_tool <svg|dot|vcd> <circuit.lct> [out-file]\n"
      "       timing_tool <check|sim|corners> <circuit.lct> <schedule.lcs>\n"
      "       timing_tool report <circuit> [schedule.lcs] [--json <file>]\n"
      "                  [--html <file>] [--nworst <K>] [--corners]\n"
      "       <circuit> is a .lct file or a built-in: example1, example2, gaas\n"
      "       global flags: --metrics-out <file>, --trace-out <file>,\n"
      "                     --threads <N> (parallel fixpoint engine for check),\n"
      "                     --remote <unix:/path | host:port> (timing_serve daemon;\n"
      "                       min, check, corners and report run server-side)\n");
  return 2;
}

// ---------------------------------------------------------------- remote --

using serve::Json;

bool read_text_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return true;
}

/// Call the daemon, unwrap the envelope; nullopt (message printed) on any
/// transport or application error.
std::optional<Json> remote_call(serve::Client& client, Json request) {
  Expected<Json> response = client.call(std::move(request));
  if (!response) {
    std::printf("remote error: %s\n", response.error().to_string().c_str());
    return std::nullopt;
  }
  if (!response->get("ok").as_bool(false)) {
    const Json& err = response->get("error");
    std::printf("remote error [%s]: %s\n", err.str_or("kind", "?").c_str(),
                err.str_or("message").c_str());
    return std::nullopt;
  }
  return response->get("result");
}

/// min / check / corners / report against a timing_serve daemon. The
/// circuit (.lct text or builtin name) and optional .lcs schedule travel in
/// the load request; the analysis runs in the server's warm session pool.
int run_remote(const std::string& cmd, int argc, char** argv) {
  serve::Client client;
  const Expected<bool> connected = client.connect(g_remote);
  if (!connected) {
    std::printf("cannot reach %s: %s\n", g_remote.c_str(),
                connected.error().to_string().c_str());
    return 1;
  }

  const std::string circuit_arg = argv[2];
  Json load = Json::object();
  load.set("verb", Json("load"));
  load.set("circuit", Json(circuit_arg));
  if (circuit_arg == "example1" || circuit_arg == "example2" || circuit_arg == "gaas" ||
      circuit_arg == "appendix") {
    load.set("builtin", Json(circuit_arg));
  } else {
    std::string text;
    if (!read_text_file(circuit_arg, &text)) {
      std::printf("cannot read %s\n", circuit_arg.c_str());
      return 1;
    }
    load.set("text", Json(std::move(text)));
  }
  // Optional positional schedule (required for check/corners semantics;
  // without it the server analyzes at its computed MLP optimum).
  std::string json_path, html_path;
  int nworst = 10;
  bool corners_flag = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--html" && i + 1 < argc) {
      html_path = argv[++i];
    } else if (arg == "--nworst" && i + 1 < argc) {
      nworst = std::atoi(argv[++i]);
    } else if (arg == "--corners") {
      corners_flag = true;
    } else if (!arg.empty() && arg[0] != '-') {
      std::string text;
      if (!read_text_file(arg, &text)) {
        std::printf("cannot read %s\n", arg.c_str());
        return 1;
      }
      load.set("schedule", Json(std::move(text)));
    } else {
      return usage();
    }
  }

  const std::optional<Json> loaded = remote_call(client, std::move(load));
  if (!loaded) return 1;
  std::printf("loaded \"%s\" on %s: %ld elements, %ld paths%s\n", circuit_arg.c_str(),
              g_remote.c_str(), loaded->long_or("elements", 0), loaded->long_or("paths", 0),
              loaded->has("min_cycle") ? " (schedule: server-side MLP optimum)" : "");

  const auto make_req = [&](const char* verb) {
    Json req = Json::object();
    req.set("verb", Json(verb));
    req.set("circuit", Json(circuit_arg));
    return req;
  };

  if (cmd == "min") {
    const std::optional<Json> result = remote_call(client, make_req("min"));
    if (!result) return 1;
    std::printf("Tc* = %s\n%s", fmt_time(result->num_or("min_cycle", 0.0), 6).c_str(),
                result->str_or("lcs").c_str());
    return 0;
  }

  if (cmd == "check") {
    Json req = make_req("analyze");
    req.set("detail", Json(true));
    const std::optional<Json> result = remote_call(client, req);
    if (!result) return 1;
    const bool feasible = result->bool_or("feasible", false);
    std::printf("schedule %s: setup %s, hold %s, worst setup slack %s\n",
                feasible ? "FEASIBLE" : "INFEASIBLE",
                result->bool_or("setup_ok", false) ? "ok" : "VIOLATED",
                result->bool_or("hold_ok", false) ? "ok" : "VIOLATED",
                fmt_time(result->num_or("worst_setup_slack", 0.0), 4).c_str());
    return feasible ? 0 : 1;
  }

  if (cmd == "corners" || cmd == "report") {
    Json req = make_req("report");
    req.set("format", Json("table"));
    req.set("nworst", Json(static_cast<long>(nworst)));
    const bool signoff = cmd == "corners" || corners_flag;
    req.set("signoff", Json(signoff));
    const std::optional<Json> result = remote_call(client, req);
    if (!result) return 1;
    std::printf("%s", result->str_or("content").c_str());
    const auto fetch_to_file = [&](const char* format, const std::string& path) {
      Json file_req = make_req("report");
      file_req.set("format", Json(format));
      file_req.set("nworst", Json(static_cast<long>(nworst)));
      file_req.set("signoff", Json(signoff));
      const std::optional<Json> r = remote_call(client, file_req);
      if (r && report::write_report_file(path, r->str_or("content"))) {
        std::printf("wrote %s\n", path.c_str());
      }
    };
    if (!json_path.empty()) fetch_to_file("json", json_path);
    if (!html_path.empty()) fetch_to_file("html", html_path);
    return (signoff ? result->bool_or("all_pass", false)
                    : result->bool_or("feasible", false))
               ? 0
               : 1;
  }
  return usage();
}

int run(int argc, char** argv) {
  if (argc == 1) {
    // Demo mode: run everything on example 1.
    const Circuit c = circuits::example1(80.0);
    std::printf("(demo mode: example 1 with delta41 = 80; pass a .lct file to use yours)\n\n");
    std::printf("== min ==\n");
    cmd_min(c);
    std::printf("\n== loops ==\n");
    cmd_loops(c);
    std::printf("\n== critical ==\n");
    cmd_critical(c);
    std::printf("\n== sens ==\n");
    cmd_sens(c);
    std::printf("\n== bounds ==\n");
    cmd_bounds(c);
    std::printf("\n== baselines ==\n");
    cmd_baselines(c);
    std::printf("\n== sim (at the optimum) ==\n");
    const auto r = opt::minimize_cycle_time(c);
    return r ? cmd_sim(c, r->schedule) : 1;
  }
  if (argc < 3) return usage();
  const std::string cmd = argv[1];

  if (!g_remote.empty()) {
    if (cmd == "min" || cmd == "check" || cmd == "corners" || cmd == "report") {
      return run_remote(cmd, argc, argv);
    }
    std::printf("subcommand '%s' runs locally only; drop --remote\n", cmd.c_str());
    return 2;
  }

  if (cmd == "report") {
    Circuit c("", 1);
    ClockSchedule sched;
    bool have_sched = false;
    if (!resolve_circuit(argv[2], &c, &sched, &have_sched)) return 1;
    std::string json_path, html_path;
    int nworst = 10;
    bool corners = false;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json" && i + 1 < argc) {
        json_path = argv[++i];
      } else if (arg == "--html" && i + 1 < argc) {
        html_path = argv[++i];
      } else if (arg == "--nworst" && i + 1 < argc) {
        nworst = std::atoi(argv[++i]);
      } else if (arg == "--corners") {
        corners = true;
      } else if (!arg.empty() && arg[0] != '-') {
        const auto s = parser::load_schedule(arg);
        if (!s) {
          std::printf("cannot load schedule: %s\n", s.error().to_string().c_str());
          return 1;
        }
        sched = *s;
        have_sched = true;
      } else {
        return usage();
      }
    }
    if (!have_sched) {
      std::printf("no feasible schedule for this circuit (pass a .lcs file)\n");
      return 1;
    }
    return cmd_report(c, sched, json_path, html_path, nworst, corners);
  }

  const auto circuit = parser::load_circuit(argv[2]);
  if (!circuit) {
    std::printf("cannot load circuit: %s\n", circuit.error().to_string().c_str());
    return 1;
  }
  if (cmd == "min") return cmd_min(*circuit);
  if (cmd == "loops") return cmd_loops(*circuit);
  if (cmd == "critical") return cmd_critical(*circuit);
  if (cmd == "sens") return cmd_sens(*circuit);
  if (cmd == "baselines") return cmd_baselines(*circuit);
  if (cmd == "bounds") return cmd_bounds(*circuit);
  if (cmd == "svg") return cmd_svg(*circuit, argc >= 4 ? argv[3] : "timing.svg");
  if (cmd == "dot") return cmd_dot(*circuit, argc >= 4 ? argv[3] : "circuit.dot");
  if (cmd == "vcd") return cmd_vcd(*circuit, argc >= 4 ? argv[3] : "timing.vcd");
  if (cmd == "check" || cmd == "sim" || cmd == "corners") {
    if (argc < 4) return usage();
    const auto schedule = parser::load_schedule(argv[3]);
    if (!schedule) {
      std::printf("cannot load schedule: %s\n", schedule.error().to_string().c_str());
      return 1;
    }
    if (cmd == "check") return cmd_check(*circuit, *schedule);
    if (cmd == "corners") return cmd_corners(*circuit, *schedule);
    return cmd_sim(*circuit, *schedule);
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the global observability flags before subcommand dispatch so every
  // subcommand gets them for free.
  std::string metrics_out, trace_out;
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      g_threads = std::atoi(argv[++i]);
    } else if (arg == "--remote" && i + 1 < argc) {
      g_remote = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!trace_out.empty()) obs::Tracer::instance().set_enabled(true);

  const int rc = run(static_cast<int>(args.size()), args.data());

  if (!metrics_out.empty() && obs::write_metrics_json(metrics_out)) {
    std::printf("wrote %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty() && obs::write_chrome_trace(trace_out)) {
    std::printf("wrote %s\n", trace_out.c_str());
  }
  return rc;
}
