// Ablation: the LP solver against the maximum-cycle-ratio bound.
//
// Section VI notes the constraint matrix is purely topological and hints at
// algorithms "potentially more efficient than the simplex algorithm"; the
// max cycle ratio of the latch graph is exactly such a combinatorial
// object: it lower-bounds Tc* and equals it whenever no setup constraint
// binds. This bench compares values and costs of simplex vs Lawler's
// binary search vs Howard-style policy iteration.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "base/table.h"
#include "circuits/example1.h"
#include "circuits/example2.h"
#include "circuits/gaas.h"
#include "circuits/synthetic.h"
#include "graph/cycle_ratio.h"
#include "opt/mlp.h"

using namespace mintc;

namespace {

Circuit synthetic_mid() {
  circuits::SyntheticParams p;
  p.num_phases = 3;
  p.num_stages = 12;
  p.latches_per_stage = 3;
  return circuits::synthetic_circuit(p, 31337);
}

void print_value_table() {
  std::printf("== LP optimum vs max cycle ratio ==\n");
  TextTable table({"circuit", "Tc* (LP)", "cycle ratio (Lawler)", "cycle ratio (Howard)",
                   "setup binds?"});
  struct Named {
    const char* name;
    Circuit circuit;
  };
  const Named list[] = {{"example1(d41=80)", circuits::example1(80.0)},
                        {"example1(d41=0)", circuits::example1(0.0)},
                        {"example2", circuits::example2()},
                        {"gaas", circuits::gaas_datapath()},
                        {"synthetic(l=36)", synthetic_mid()}};
  for (const auto& [name, circuit] : list) {
    const auto r = opt::minimize_cycle_time(circuit);
    const auto lawler = graph::max_cycle_ratio_lawler(circuit.latch_graph());
    const auto howard = graph::max_cycle_ratio_howard(circuit.latch_graph());
    if (!r) continue;
    char tc[32], la[32], ho[32];
    std::snprintf(tc, sizeof tc, "%.4f", r->min_cycle);
    std::snprintf(la, sizeof la, "%.4f", lawler ? lawler->ratio : 0.0);
    std::snprintf(ho, sizeof ho, "%.4f", howard ? howard->ratio : 0.0);
    bool setup_binds = false;
    for (const auto& t : r->critical) {
      setup_binds |= t.name.rfind("L1:", 0) == 0 || t.name.rfind("FF:", 0) == 0;
    }
    table.add_row({name, tc, la, ho, setup_binds ? "yes" : "no"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\ninvariant: Tc* >= ratio always; equality when no setup row binds.\n\n");
}

void BM_SimplexOptimum(benchmark::State& state) {
  const Circuit c = synthetic_mid();
  for (auto _ : state) {
    auto r = opt::minimize_cycle_time(c);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SimplexOptimum);

void BM_CycleRatioLawler(benchmark::State& state) {
  const Circuit c = synthetic_mid();
  const auto g = c.latch_graph();
  for (auto _ : state) {
    auto r = graph::max_cycle_ratio_lawler(g);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CycleRatioLawler);

void BM_CycleRatioHoward(benchmark::State& state) {
  const Circuit c = synthetic_mid();
  const auto g = c.latch_graph();
  for (auto _ : state) {
    auto r = graph::max_cycle_ratio_howard(g);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CycleRatioHoward);

}  // namespace

int main(int argc, char** argv) {
  print_value_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
