// Section IV scaling claims: "the number of constraints is bounded from
// above by 4k + (F+1)l ... linear in the number of latches l. The
// complexity of step 1, therefore, grows only linearly with l."
//
// Prints the row-count accounting for synthetic circuits of growing size,
// then benchmarks the full MLP solve (google-benchmark) across sizes.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "base/table.h"
#include "circuits/synthetic.h"
#include "opt/mlp.h"

using namespace mintc;

namespace {

circuits::SyntheticParams params_for(int stages) {
  circuits::SyntheticParams p;
  p.num_phases = 2;
  p.num_stages = stages;
  p.latches_per_stage = 4;
  p.fanin = 3;
  return p;
}

void print_row_accounting() {
  std::printf("== Section IV: constraint count vs latch count ==\n");
  TextTable table({"latches l", "paths", "max fanin F", "rows", "4k+(F+1)l", "pivots"});
  for (const int stages : {2, 4, 8, 16, 32, 64}) {
    const Circuit c = circuits::synthetic_circuit(params_for(stages), 9001);
    const opt::GeneratedLp g = opt::generate_lp(c);
    const auto r = opt::minimize_cycle_time(c);
    const int bound = 4 * c.num_phases() + (c.max_fanin() + 1) * c.num_elements();
    table.add_row({std::to_string(c.num_elements()), std::to_string(c.num_paths()),
                   std::to_string(c.max_fanin()), std::to_string(g.counts.rows()),
                   std::to_string(bound),
                   r ? std::to_string(r->lp_stats.phase1_pivots + r->lp_stats.phase2_pivots)
                     : "-"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("(simplex pivot counts growing roughly linearly in l confirm the\n"
              "paper's 'between n and 3n steps' expectation.)\n\n");
}

void BM_MlpSolve(benchmark::State& state) {
  const Circuit c =
      circuits::synthetic_circuit(params_for(static_cast<int>(state.range(0))), 9001);
  for (auto _ : state) {
    auto r = opt::minimize_cycle_time(c);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("l=" + std::to_string(c.num_elements()));
}
BENCHMARK(BM_MlpSolve)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_ConstraintGeneration(benchmark::State& state) {
  const Circuit c =
      circuits::synthetic_circuit(params_for(static_cast<int>(state.range(0))), 9001);
  for (auto _ : state) {
    auto g = opt::generate_lp(c);
    benchmark::DoNotOptimize(g);
  }
  state.SetLabel("l=" + std::to_string(c.num_elements()));
}
BENCHMARK(BM_ConstraintGeneration)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  print_row_accounting();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
