// Validation: the discrete-event token simulator against the analytical
// fixpoint engine on every example circuit. Two independent implementations
// of the latch semantics must agree on steady-state departures; the table
// also reports how many generations and events the simulation needed —
// versus the 0-3 "iterations" of the paper's Algorithm MLP step, which is
// the point of solving the fixpoint analytically.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "base/table.h"
#include "circuits/appendix_fig1.h"
#include "circuits/example1.h"
#include "circuits/example2.h"
#include "circuits/gaas.h"
#include "opt/mlp.h"
#include "sim/token_sim.h"
#include "sta/fixpoint.h"

using namespace mintc;

namespace {

void print_validation_table() {
  std::printf("== simulator vs analytical fixpoint (steady-state departures) ==\n");
  TextTable table({"circuit", "max |sim - fixpoint|", "sim generations", "sim events",
                   "MLP fixpoint sweeps"});
  struct Named {
    const char* name;
    Circuit circuit;
  };
  const Named list[] = {{"example1(d41=80)", circuits::example1(80.0)},
                        {"example1(d41=120)", circuits::example1(120.0)},
                        {"example2", circuits::example2()},
                        {"gaas", circuits::gaas_datapath()},
                        {"appendix_fig1", circuits::appendix_fig1()}};
  for (const auto& [name, circuit] : list) {
    const auto r = opt::minimize_cycle_time(circuit);
    if (!r) continue;
    // Simulate a hair above the optimum so zero-gain loops settle quickly.
    const ClockSchedule sch = r->schedule.scaled(1.01);
    const sim::SimResult sim = sim::simulate_tokens(circuit, sch);
    const sta::FixpointResult fix = sta::compute_departures(
        circuit, sch, std::vector<double>(static_cast<size_t>(circuit.num_elements()), 0.0));
    double max_err = 0.0;
    for (int i = 0; i < circuit.num_elements(); ++i) {
      max_err = std::max(max_err, std::fabs(sim.departure[static_cast<size_t>(i)] -
                                            fix.departure[static_cast<size_t>(i)]));
    }
    char err[32];
    std::snprintf(err, sizeof err, "%.2e", max_err);
    table.add_row({name, err, std::to_string(sim.generations),
                   std::to_string(sim.events), std::to_string(r->fixpoint_sweeps)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void BM_Simulate(benchmark::State& state) {
  const Circuit c = circuits::gaas_datapath();
  const auto r = opt::minimize_cycle_time(c);
  if (!r) {
    state.SkipWithError("optimization failed");
    return;
  }
  const ClockSchedule sch = r->schedule.scaled(1.01);
  for (auto _ : state) {
    auto sim = sim::simulate_tokens(c, sch);
    benchmark::DoNotOptimize(sim);
  }
}
BENCHMARK(BM_Simulate);

void BM_AnalyticalFixpoint(benchmark::State& state) {
  const Circuit c = circuits::gaas_datapath();
  const auto r = opt::minimize_cycle_time(c);
  if (!r) {
    state.SkipWithError("optimization failed");
    return;
  }
  const ClockSchedule sch = r->schedule.scaled(1.01);
  const std::vector<double> zero(static_cast<size_t>(c.num_elements()), 0.0);
  for (auto _ : state) {
    auto fix = sta::compute_departures(c, sch, zero);
    benchmark::DoNotOptimize(fix);
  }
}
BENCHMARK(BM_AnalyticalFixpoint);

}  // namespace

int main(int argc, char** argv) {
  print_validation_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
