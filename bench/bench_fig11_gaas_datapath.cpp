// Figs. 10-11 and Table I: the GaAs MIPS datapath case study.
//
// Published results reproduced here (model reconstruction, DESIGN.md §4):
//   * 91 timing constraints;
//   * optimal Tc = 4.4 ns, 10% above the 4 ns target;
//   * phi3 (RF precharge) completely overlapped by phi1, legal because
//     K13 = K31 = 0;
//   * solver time "hardly noticeable" (seconds on a 1989 DECstation 3100) —
//     here measured in microseconds;
//   * Table I transistor counts.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "base/strings.h"
#include "base/table.h"
#include "circuits/gaas.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "opt/mlp.h"
#include "sta/analysis.h"
#include "viz/timing_diagram.h"

using namespace mintc;

int main(int argc, char** argv) {
  std::string trace_out, metrics_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--trace-out <path>] [--metrics-out <path>]\n", argv[0]);
      return 2;
    }
  }
  if (!trace_out.empty()) obs::Tracer::instance().set_enabled(true);

  std::printf("== Fig. 11 / Table I: GaAs MIPS datapath ==\n\n");
  const Circuit c = circuits::gaas_datapath();
  std::printf("model: %d synchronizers (%d latches + %d flip-flops), %d-phase clock, "
              "%d combinational paths\n",
              c.num_elements(), 15, 3, c.num_phases(), c.num_paths());

  const opt::GeneratedLp gen = opt::generate_lp(c);
  std::printf("constraints: %d rows (paper: 91) = C1 %d + C2 %d + C3 %d + L1 %d + "
              "L2R %d + FF %d\n\n",
              gen.counts.rows(), gen.counts.c1, gen.counts.c2, gen.counts.c3, gen.counts.l1,
              gen.counts.l2r, gen.counts.ff_pin + gen.counts.ff_setup);

  const auto t0 = std::chrono::steady_clock::now();
  const auto r = opt::minimize_cycle_time(c);
  const auto t1 = std::chrono::steady_clock::now();
  if (!r) {
    std::printf("ERROR: %s\n", r.error().to_string().c_str());
    return 1;
  }
  const double us =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(t1 - t0).count();
  std::printf("optimal Tc = %s ns (paper: 4.4 ns = 10%% over the 4 ns / 250 MHz target)\n",
              fmt_time(r->min_cycle, 4).c_str());
  std::printf("solve time: %.1f us, %d simplex pivots "
              "(paper: 'a few seconds' on a DECstation 3100)\n\n",
              us, r->lp_stats.phase1_pivots + r->lp_stats.phase2_pivots);

  // The published schedule shape: refine to minimum duty cycle (the paper's
  // suggested tie-breaker among optimal schedules), then stretch phi1 back
  // to the cycle origin; the analysis engine verifies feasibility.
  const auto refined =
      opt::refine_schedule(c, r->min_cycle, opt::SecondaryObjective::kMinTotalWidth);
  if (!refined) {
    std::printf("ERROR: %s\n", refined.error().to_string().c_str());
    return 1;
  }
  ClockSchedule sch = refined->schedule;
  sch.width[0] += sch.start[0];
  sch.start[0] = 0.0;
  const sta::TimingReport rep = sta::check_schedule(c, sch);
  std::printf("published-shape schedule (min duty, phi1 anchored at origin): %s\n",
              rep.feasible ? "PASS" : "FAIL");
  std::printf("  %s\n", sch.to_string().c_str());
  const bool overlapped = sch.s(3) - sch.cycle >= sch.s(1) - 1e-9 &&
                          sch.phase_end(3) - sch.cycle <= sch.phase_end(1) + 1e-9;
  std::printf("  phi3 completely overlapped by phi1 (mod Tc): %s (paper: yes)\n",
              overlapped ? "YES" : "NO");
  const KMatrix k = c.k_matrix();
  std::printf("  K13 = %d, K31 = %d (paper: both 0 — no direct latch paths)\n\n",
              k.at(1, 3) ? 1 : 0, k.at(3, 1) ? 1 : 0);

  sta::AnalysisOptions aopt;
  aopt.provenance = true;  // name the tight constraints and the critical chain
  const sta::TimingReport full = sta::check_schedule(c, sch, aopt);
  std::printf("%s\n", full.to_string(c).c_str());

  viz::DiagramOptions dopt;
  dopt.columns = 88;
  std::printf("%s\n", viz::ascii_clock_diagram(sch, dopt).c_str());

  std::printf("== Table I: transistor count for major datapath blocks ==\n");
  TextTable table({"Block Name", "No. of Transistors"});
  for (const auto& row : circuits::gaas_transistor_table()) {
    table.add_row({row.block, std::to_string(row.transistors)});
  }
  std::printf("%s", table.to_string().c_str());

  if (!trace_out.empty()) {
    obs::Tracer::instance().set_enabled(false);
    if (obs::write_chrome_trace(trace_out)) {
      std::printf("trace written to %s (load in chrome://tracing)\n", trace_out.c_str());
    }
  }
  if (!metrics_out.empty() && obs::write_metrics_json(metrics_out)) {
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  return 0;
}
