// Fig. 7: Tc versus Δ41 for example 1 — MLP (optimal) against NRIP and the
// edge-triggered baselines, plus the recovered piecewise-linear segments.
//
// Published shape: flat at 80 ns up to Δ41 = 20, slope 1/2 up to Δ41 = 100
// (delay shared between the two cycles), slope 1 beyond; NRIP touches the
// optimum only at Δ41 = 60 and is suboptimal everywhere else.
#include <cstdio>

#include "base/strings.h"
#include "base/table.h"
#include "baselines/binary_search.h"
#include "baselines/edge_triggered.h"
#include "circuits/example1.h"
#include "opt/mlp.h"
#include "opt/parametric.h"

using namespace mintc;

int main() {
  std::printf("== Fig. 7: Tc vs delta41 (example 1) ==\n\n");
  TextTable table({"delta41", "Tc MLP", "Tc closed-form", "Tc NRIP", "Tc Jouppi", "Tc CPM"});
  for (double d41 = 0.0; d41 <= 160.0 + 1e-9; d41 += 10.0) {
    const Circuit c = circuits::example1(d41);
    const auto mlp = opt::minimize_cycle_time(c);
    if (!mlp) {
      std::printf("ERROR: %s\n", mlp.error().to_string().c_str());
      return 1;
    }
    const auto nrip = baselines::nrip_reconstruction(c);
    const auto jouppi = baselines::jouppi_borrowing(c);
    const auto cpm = baselines::edge_triggered_cpm(c);
    table.add_row({fmt_time(d41), fmt_time(mlp->min_cycle),
                   fmt_time(circuits::example1_optimal_tc(d41)), fmt_time(nrip.cycle, 2),
                   fmt_time(jouppi.cycle, 2), fmt_time(cpm.cycle, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("piecewise-linear segments of Tc*(delta41) via parametric LP:\n");
  const auto sweep = opt::sweep_path_delay(circuits::example1(0.0),
                                           circuits::example1_ld_path(), 0.0, 160.0, 33);
  TextTable segs({"from", "to", "slope", "paper slope"});
  const char* paper_slopes[] = {"0 (other delay binds)", "1/2 (borrowed from phi1)",
                                "1 (slack unavoidable)"};
  size_t idx = 0;
  for (const auto& s : sweep.segments) {
    segs.add_row({fmt_time(s.theta_begin), fmt_time(s.theta_end), fmt_time(s.slope, 3),
                  idx < 3 ? paper_slopes[idx] : "-"});
    ++idx;
  }
  std::printf("%s\n", segs.to_string().c_str());
  std::printf("paper breakpoints: 20 and 100 ns; NRIP optimal only at delta41 = 60.\n");
  return 0;
}
