// Thread-scaling benchmark for sta::ParallelFixpoint: the SCC-parallel,
// SIMD-dispatched eq. (17) engine vs the scalar kSccOrdered scheme, on
// generated circuits from 10^5 up to 10^6 latches (deep pipelines, 2-D
// meshes, SCC soups).
//
// For every circuit it runs the scalar baseline and the parallel engine at
// 1/2/4/8 threads (scalar + AVX2-dispatched kernels) and reports the scaling
// curve. The BIT-IDENTITY GATE is always on: any convergent parallel solve
// whose departure vector is not exactly (operator==) equal to the scalar
// kSccOrdered result fails the run. The SPEEDUP GATE is opt-in
// (--min-speedup <x>, e.g. 3.0 at 8 threads per the acceptance bar) because
// CI smoke machines may expose a single core, where no wall-clock scaling is
// physically possible.
//
// Writes BENCH_parallel.json (override with --out <path>); --small shrinks
// the circuit set for CI smoke runs; --huge adds the 10^6-latch pipeline.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "base/table.h"
#include "model/timing_view.h"
#include "netlist/generators.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/stats.h"
#include "sta/fixpoint.h"
#include "sta/parallel_fixpoint.h"
#include "sta/relax_kernel.h"

using namespace mintc;

namespace {

constexpr int kThreads[] = {1, 2, 4, 8};

struct ThreadPoint {
  int threads = 0;
  double seconds = 0.0;   // min over reps
  double speedup = 0.0;   // scalar_seconds / seconds
  long tasks = 0;
  long steals = 0;
  int max_shard_sweeps = 0;
};

struct CaseResult {
  std::string name;
  std::string kernel;     // resolved kernel of the parallel engine
  int latches = 0;
  long edges = 0;
  int sccs = 0;
  int nontrivial_sccs = 0;
  double scalar_seconds = 0.0;
  double partition_seconds = 0.0;  // one-time SCC/condensation build
  std::vector<ThreadPoint> points;
  bool identical = true;  // bitwise equality vs scalar, all thread counts
};

std::vector<double> zeros(const Circuit& c) {
  return std::vector<double>(static_cast<size_t>(c.num_elements()), 0.0);
}

CaseResult run_case(const std::string& name, const Circuit& circuit,
                    const ClockSchedule& schedule, int reps) {
  CaseResult res;
  res.name = name;
  res.latches = circuit.num_elements();
  res.edges = circuit.num_paths();

  const TimingView view(circuit);
  const ShiftTable shifts(schedule);

  sta::FixpointOptions scalar_opt;
  scalar_opt.scheme = sta::UpdateScheme::kSccOrdered;
  sta::FixpointResult scalar_ref;
  for (int r = 0; r < reps; ++r) {
    const StageTimer timer;
    scalar_ref = sta::compute_departures(view, shifts, zeros(circuit), scalar_opt);
    const double t = timer.seconds();
    if (r == 0 || t < res.scalar_seconds) res.scalar_seconds = t;
  }
  if (!scalar_ref.converged) {
    std::fprintf(stderr, "%s: scalar baseline did not converge (%s)\n", name.c_str(),
                 to_string(scalar_ref.status));
    std::exit(1);
  }

  for (const int threads : kThreads) {
    sta::ParallelFixpointOptions popt;
    popt.num_threads = threads;
    const StageTimer build_timer;
    sta::ParallelFixpoint engine(view, popt);
    if (threads == kThreads[0]) {
      res.partition_seconds = build_timer.seconds();
      res.kernel = to_string(engine.kernel());
      res.sccs = engine.num_components();
    }
    ThreadPoint pt;
    pt.threads = threads;
    sta::FixpointResult par;
    for (int r = 0; r < reps; ++r) {
      const StageTimer timer;
      par = engine.solve(shifts, zeros(circuit));
      const double t = timer.seconds();
      if (r == 0 || t < pt.seconds) pt.seconds = t;
    }
    const sta::ParallelSolveStats& st = engine.last_stats();
    pt.tasks = st.tasks;
    pt.steals = st.steals;
    pt.max_shard_sweeps = st.max_shard_sweeps;
    if (threads == kThreads[0]) res.nontrivial_sccs = st.nontrivial_sccs;
    pt.speedup = res.scalar_seconds / pt.seconds;
    // The gate that keeps the parallel engine honest: exact equality, not a
    // tolerance. A single reassociated add would show up here.
    if (!par.converged || par.departure != scalar_ref.departure) {
      res.identical = false;
      std::fprintf(stderr, "%s: BIT-IDENTITY VIOLATION at %d threads\n", name.c_str(),
                   threads);
    }
    res.points.push_back(pt);
  }
  return res;
}

void write_json(const std::vector<CaseResult>& cases, const std::string& path,
                const char* mode) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"parallel_fixpoint\",\n  \"mode\": \"%s\",\n  \"cases\": [\n",
               mode);
  for (size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"kernel\": \"%s\", \"latches\": %d, "
                 "\"edges\": %ld,\n"
                 "     \"sccs\": %d, \"nontrivial_sccs\": %d,\n"
                 "     \"scalar_seconds\": %.6e, \"partition_seconds\": %.6e,\n"
                 "     \"identical\": %s, \"points\": [\n",
                 c.name.c_str(), c.kernel.c_str(), c.latches, c.edges, c.sccs,
                 c.nontrivial_sccs, c.scalar_seconds, c.partition_seconds,
                 c.identical ? "true" : "false");
    for (size_t p = 0; p < c.points.size(); ++p) {
      const ThreadPoint& t = c.points[p];
      std::fprintf(f,
                   "      {\"threads\": %d, \"seconds\": %.6e, \"speedup\": %.3f, "
                   "\"tasks\": %ld, \"steals\": %ld, \"max_shard_sweeps\": %d}%s\n",
                   t.threads, t.seconds, t.speedup, t.tasks, t.steals, t.max_shard_sweeps,
                   p + 1 < c.points.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  const std::string metrics = obs::metrics_json(obs::MetricsRegistry::instance().snapshot());
  std::fprintf(f, "  \"metrics\": %s\n}\n", metrics.c_str());
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  bool huge = false;
  double min_speedup = 0.0;  // 0 = gate off (single-core CI machines)
  std::string out = "BENCH_parallel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    } else if (std::strcmp(argv[i], "--huge") == 0) {
      huge = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--small] [--huge] [--out <path>] [--min-speedup <x>]\n",
                   argv[0]);
      return 2;
    }
  }

  struct Spec {
    std::string name;
    Circuit circuit;
    ClockSchedule schedule;
    int reps;
  };
  std::vector<Spec> specs;
  const auto add = [&](std::string name, Circuit c, int k, double dq, double delay,
                       int reps) {
    const ClockSchedule sch = netlist::generator_schedule(k, dq, delay);
    specs.push_back({std::move(name), std::move(c), sch, reps});
  };

  if (small) {
    netlist::DeepPipelineConfig pipe;
    pipe.depth = 200;
    pipe.width = 25;  // 5k latches
    add("pipeline-5k", netlist::make_deep_pipeline(pipe), pipe.num_phases, pipe.dq,
        pipe.delay, 3);
    netlist::SccSoupConfig soup;
    soup.num_sccs = 500;
    soup.scc_size = 10;
    soup.cross_edges = 1000;
    add("soup-5k", netlist::make_scc_soup(soup), soup.num_phases, soup.dq, soup.delay, 3);
  } else {
    netlist::DeepPipelineConfig pipe;
    pipe.depth = 2500;
    pipe.width = 40;  // 10^5 latches
    add("pipeline-100k", netlist::make_deep_pipeline(pipe), pipe.num_phases, pipe.dq,
        pipe.delay, 3);
    netlist::MeshConfig mesh;  // 316 x 316 ~= 10^5 latches
    add("mesh-100k", netlist::make_mesh(mesh), mesh.num_phases, mesh.dq, mesh.delay, 3);
    netlist::SccSoupConfig soup;  // 1000 rings x 100 latches
    add("soup-100k", netlist::make_scc_soup(soup), soup.num_phases, soup.dq, soup.delay, 3);
    if (huge) {
      netlist::DeepPipelineConfig big;
      big.depth = 10000;
      big.width = 100;  // 10^6 latches
      add("pipeline-1M", netlist::make_deep_pipeline(big), big.num_phases, big.dq,
          big.delay, 2);
    }
  }

  std::printf("== eq. (17) fixpoint: scalar scc-ordered vs ParallelFixpoint ==\n");
  TextTable table({"circuit", "latches", "sccs", "kernel", "scalar s", "t=1", "t=2", "t=4",
                   "t=8", "best x", "identical"});
  std::vector<CaseResult> results;
  bool all_identical = true;
  double best_overall = 0.0;
  for (const Spec& s : specs) {
    CaseResult r = run_case(s.name, s.circuit, s.schedule, s.reps);
    all_identical = all_identical && r.identical;
    std::vector<std::string> row = {r.name, std::to_string(r.latches),
                                    std::to_string(r.sccs), r.kernel};
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4f", r.scalar_seconds);
    row.push_back(buf);
    double best = 0.0;
    for (const ThreadPoint& p : r.points) {
      std::snprintf(buf, sizeof buf, "%.4f", p.seconds);
      row.push_back(buf);
      best = std::max(best, p.speedup);
    }
    best_overall = std::max(best_overall, best);
    std::snprintf(buf, sizeof buf, "%.2f", best);
    row.push_back(buf);
    row.push_back(r.identical ? "yes" : "NO");
    table.add_row(row);
    results.push_back(std::move(r));
  }
  std::printf("%s", table.to_string().c_str());

  write_json(results, out, small ? "small" : (huge ? "huge" : "full"));

  if (!all_identical) {
    std::fprintf(stderr, "FAIL: parallel engine is not bit-identical to scalar\n");
    return 1;
  }
  if (min_speedup > 0.0 && best_overall < min_speedup) {
    std::fprintf(stderr, "FAIL: best speedup %.2fx < required %.2fx\n", best_overall,
                 min_speedup);
    return 1;
  }
  std::printf("bit-identity gate: PASS%s\n",
              min_speedup > 0.0 ? " / speedup gate: PASS" : "");
  return 0;
}
