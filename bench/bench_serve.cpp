// Latency-SLO benchmark for the timing-analysis service.
//
// Drives TimingService::handle_line directly (the same entry point the
// socket server dispatches to), so the numbers cover request parse ->
// session/cache lookup -> analysis -> response encode, without socket noise.
//
// Two lanes per (circuit, verb) case:
//   cold  — result cache DISABLED (cache_bytes = 0): every request pays the
//           full analysis/report/sweep compute on the warm session;
//   warm  — default cache, primed by one pass: every request is a content-
//           fingerprint cache hit.
// Exact p50/p95/p99 per lane over --iters requests, plus a mixed
// multi-threaded edit+analyze throughput lane on a fresh service.
//
// Writes BENCH_serve.json (BENCH_overhead.json in --overhead-check mode;
// --out <path> overrides). --small shrinks the iteration counts for CI
// smoke runs; --check gates the acceptance criterion: per circuit, the warm
// cache serves the request mix at least 5x faster (sum of p50s) than
// recomputation, and cached responses are identical to recomputed ones
// modulo wall-clock metadata fields.
#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "base/table.h"
#include "circuits/synthetic.h"
#include "obs/export.h"
#include "obs/profiler.h"
#include "parser/lct.h"
#include "serve/json.h"
#include "serve/service.h"

using namespace mintc;
using serve::Json;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Percentiles {
  double p50 = 0.0, p95 = 0.0, p99 = 0.0, max = 0.0;
};

Percentiles percentiles_us(std::vector<double>& us) {
  Percentiles p;
  if (us.empty()) return p;
  std::sort(us.begin(), us.end());
  const auto at = [&](double q) {
    const size_t rank = static_cast<size_t>(q * static_cast<double>(us.size() - 1));
    return us[std::min(rank, us.size() - 1)];
  };
  p.p50 = at(0.50);
  p.p95 = at(0.95);
  p.p99 = at(0.99);
  p.max = us.back();
  return p;
}

Circuit bench_circuit(int which) {
  circuits::SyntheticParams params;
  params.num_phases = 2 + which % 2;
  params.num_stages = 8 + 4 * which;
  params.latches_per_stage = 4;
  params.fanin = 3;
  params.extra_long_edges = 2;
  return circuits::synthetic_circuit(params, 7000 + static_cast<uint64_t>(which));
}

struct BenchCase {
  std::string circuit;  // key + label
  std::string verb;     // analyze | report | sweep
  std::string request;  // rendered request line (without id)
};

struct LaneResult {
  Percentiles latency;
  std::string first_response;  // for cross-lane identity checks
};

struct CaseResult {
  BenchCase spec;
  int elements = 0;
  LaneResult cold;
  LaneResult warm;
  double speedup_p50 = 0.0;
  bool identical = true;
};

std::string strip_envelope(const std::string& frame) {
  // Responses differ only in the (absent) id and the cached flag across
  // lanes; compare the result payload.
  const Expected<Json> parsed =
      serve::parse_json(std::string_view(frame).substr(0, frame.size() - 1));
  if (!parsed) return "<unparseable>";
  return parsed->get("result").dump();
}

// Report payloads embed wall-clock fields (RunMetadata.wall_seconds is
// stamped at export time, SlackDB.build_seconds measures the build) that are
// legitimately different across lanes. Blank the number after any
// "*seconds": key — escaped inside the embedded report string or not — so
// the cross-lane identity check covers the timing content only.
std::string scrub_volatile(std::string payload) {
  size_t pos = 0;
  while ((pos = payload.find("seconds", pos)) != std::string::npos) {
    size_t p = pos + 7;
    while (p < payload.size() &&
           (payload[p] == '\\' || payload[p] == '"' || payload[p] == ':' ||
            payload[p] == ' ')) {
      ++p;
    }
    const size_t num_start = p;
    while (p < payload.size() &&
           (std::isdigit(static_cast<unsigned char>(payload[p])) || payload[p] == '.' ||
            payload[p] == 'e' || payload[p] == 'E' || payload[p] == '+' ||
            payload[p] == '-')) {
      ++p;
    }
    if (p > num_start) payload.replace(num_start, p - num_start, "0");
    pos += 7;
  }
  return payload;
}

LaneResult run_lane(serve::TimingService& service, const std::string& request, int iters) {
  LaneResult lane;
  std::vector<double> us;
  us.reserve(static_cast<size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    const double start = now_seconds();
    const std::string frame = service.handle_line(request);
    us.push_back((now_seconds() - start) * 1e6);
    if (i == 0) {
      lane.first_response = strip_envelope(frame);
    }
  }
  lane.latency = percentiles_us(us);
  return lane;
}

void load_into(serve::TimingService& service, const std::string& key,
               const std::string& text) {
  Json load = Json::object();
  load.set("verb", Json("load"));
  load.set("circuit", Json(key));
  load.set("text", Json(text));
  const Json response = service.handle(load);
  if (!response.get("ok").as_bool(false)) {
    std::fprintf(stderr, "load %s failed: %s\n", key.c_str(), response.dump().c_str());
    std::exit(1);
  }
}

struct Throughput {
  long requests = 0;
  double seconds = 0.0;
  double requests_per_second = 0.0;
  Percentiles latency;
};

/// Mixed edit+analyze traffic from `threads` workers over `streams` circuit
/// keys on a fresh default-config service — the serving hot path end to end.
Throughput run_throughput(int threads, int streams, int rounds) {
  serve::TimingService service;
  std::vector<std::string> texts;
  for (int s = 0; s < streams; ++s) {
    texts.push_back(parser::write_circuit(bench_circuit(s % 4)));
    load_into(service, "tp-" + std::to_string(s), texts.back());
  }
  std::vector<std::vector<double>> lat(static_cast<size_t>(threads));
  std::atomic<int> next{0};
  const double start = now_seconds();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int s = next.fetch_add(1); s < streams; s = next.fetch_add(1)) {
        const std::string key = "tp-" + std::to_string(s);
        for (int round = 0; round < rounds; ++round) {
          Json edit = Json::object();
          edit.set("op", Json("set_path_delay"));
          edit.set("path", Json(static_cast<long>(round % 7)));
          edit.set("delay", Json(5.0 + round * 0.125));
          Json edits = Json::array();
          edits.push(std::move(edit));
          Json batch = Json::object();
          batch.set("verb", Json("edit_batch"));
          batch.set("circuit", Json(key));
          batch.set("edits", std::move(edits));
          Json analyze = Json::object();
          analyze.set("verb", Json("analyze"));
          analyze.set("circuit", Json(key));
          for (const Json* request : {&batch, &analyze}) {
            const double t0 = now_seconds();
            const std::string frame = service.handle_line(request->dump());
            lat[static_cast<size_t>(t)].push_back((now_seconds() - t0) * 1e6);
            if (frame.find("\"ok\":true") == std::string::npos) {
              std::fprintf(stderr, "throughput request failed: %s", frame.c_str());
              std::exit(1);
            }
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  Throughput tp;
  tp.seconds = now_seconds() - start;
  std::vector<double> all;
  for (const std::vector<double>& v : lat) all.insert(all.end(), v.begin(), v.end());
  tp.requests = static_cast<long>(all.size());
  tp.requests_per_second =
      tp.seconds > 0 ? static_cast<double>(tp.requests) / tp.seconds : 0.0;
  tp.latency = percentiles_us(all);
  return tp;
}

/// Cacheable request set: per circuit, one analyze (detail), one signoff
/// report and one 5-point sweep.
void build_cases(std::vector<BenchCase>& cases,
                 std::vector<std::pair<std::string, std::string>>& loads) {
  for (int which = 0; which < 2; ++which) {
    const std::string key = "c" + std::to_string(which);
    loads.emplace_back(key, parser::write_circuit(bench_circuit(which)));
    cases.push_back({key, "analyze",
                     R"({"verb":"analyze","circuit":")" + key + R"(","detail":true})"});
    cases.push_back({key, "report",
                     R"({"verb":"report","circuit":")" + key +
                         R"(","format":"json","signoff":true})"});
    cases.push_back({key, "sweep",
                     R"({"verb":"sweep","circuit":")" + key +
                         R"(","from":1.0,"to":1.4,"steps":5})"});
  }
}

/// --overhead-check: price of telemetry on the unsampled hot path.
///
/// Three cache-off services (every request pays full compute):
///   off   — ServiceConfig::telemetry = false: the bare protocol;
///   on    — default telemetry, no trace field, cost not requested: what
///           production pays for unsampled traffic — metric increments, the
///           latency/cpu/relaxations observes, the CostAccount charges and
///           the in-flight gauge; spans stay dormant;
///   full  — telemetry on, the sampling profiler running at 2ms AND every
///           request opting into the "cost" echo: the everything-on
///           diagnostic posture.
/// Reps alternate lanes so clock drift and thermal state hit all sides
/// equally, and each side keeps its MINIMUM per-rep p50 (the least-noisy
/// estimate of intrinsic cost). Gates: the request-mix p50 sum of "on" AND
/// of "full" must each be within 5% of "off". Emits BENCH_overhead.json
/// (--out overrides) with the gated off/on and off/full ratios so
/// bench_compare can watch them against the committed baseline.
int run_overhead_check(bool small, const std::string& out) {
  const int iters = small ? 20 : 100;
  const int reps = small ? 3 : 5;

  std::vector<BenchCase> cases;
  std::vector<std::pair<std::string, std::string>> loads;
  build_cases(cases, loads);

  serve::ServiceConfig off_config;
  off_config.cache_bytes = 0;
  off_config.telemetry = false;
  serve::TimingService off_service(off_config);
  serve::ServiceConfig on_config;
  on_config.cache_bytes = 0;  // telemetry stays at its default (on)
  serve::TimingService on_service(on_config);
  serve::TimingService full_service(on_config);
  for (const auto& [key, text] : loads) {
    load_into(off_service, key, text);
    load_into(on_service, key, text);
    load_into(full_service, key, text);
  }
  const auto with_cost = [](const std::string& request) {
    return request.substr(0, request.size() - 1) + R"(,"cost":true})";
  };
  for (const BenchCase& spec : cases) {  // warm sessions + code paths
    (void)run_lane(off_service, spec.request, 2);
    (void)run_lane(on_service, spec.request, 2);
    (void)run_lane(full_service, with_cost(spec.request), 2);
  }

  std::printf(
      "== serve: telemetry overhead (unsampled, cache off, min of %d reps) ==\n", reps);
  TextTable table({"case", "off p50 us", "on p50 us", "full p50 us", "on", "full"});
  struct CaseRow {
    const BenchCase* spec;
    double off = 0.0, on = 0.0, full = 0.0;
  };
  std::vector<CaseRow> rows;
  double off_total = 0.0, on_total = 0.0, full_total = 0.0;
  obs::Profiler::instance().start(2000);  // the "full" posture: sampler live
  for (const BenchCase& spec : cases) {
    CaseRow row;
    row.spec = &spec;
    const std::string full_request = with_cost(spec.request);
    for (int rep = 0; rep < reps; ++rep) {
      const double off_p50 = run_lane(off_service, spec.request, iters).latency.p50;
      const double on_p50 = run_lane(on_service, spec.request, iters).latency.p50;
      const double full_p50 = run_lane(full_service, full_request, iters).latency.p50;
      if (rep == 0 || off_p50 < row.off) row.off = off_p50;
      if (rep == 0 || on_p50 < row.on) row.on = on_p50;
      if (rep == 0 || full_p50 < row.full) row.full = full_p50;
    }
    off_total += row.off;
    on_total += row.on;
    full_total += row.full;
    char offs[32], ons[32], fulls[32], ov_on[32], ov_full[32];
    std::snprintf(offs, sizeof offs, "%.1f", row.off);
    std::snprintf(ons, sizeof ons, "%.1f", row.on);
    std::snprintf(fulls, sizeof fulls, "%.1f", row.full);
    std::snprintf(ov_on, sizeof ov_on, "%+.2f%%",
                  row.off > 0 ? 100.0 * (row.on / row.off - 1.0) : 0.0);
    std::snprintf(ov_full, sizeof ov_full, "%+.2f%%",
                  row.off > 0 ? 100.0 * (row.full / row.off - 1.0) : 0.0);
    table.add_row({spec.circuit + "/" + spec.verb, offs, ons, fulls, ov_on, ov_full});
    rows.push_back(row);
  }
  obs::Profiler::instance().stop();
  obs::Profiler::instance().clear();
  std::printf("%s\n", table.to_string().c_str());

  const double on_overhead = off_total > 0 ? on_total / off_total - 1.0 : 0.0;
  const double full_overhead = off_total > 0 ? full_total / off_total - 1.0 : 0.0;
  std::printf("request-mix p50 sum: off %.1fus, on %.1fus (%+.2f%%), "
              "full %.1fus (%+.2f%%)  (gate: each <= 5%%)\n",
              off_total, on_total, 100.0 * on_overhead, full_total,
              100.0 * full_overhead);

  // Emit the lane sums and the gated RATIOS (off/on, off/full — both drop
  // when overhead grows, so bench_compare's higher-better gate watches them).
  std::ofstream json(out);
  json << "{\"meta\": " << obs::run_metadata_json(obs::run_metadata())
       << ", \"iters\": " << iters << ", \"reps\": " << reps << ", \"cases\": [";
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i) json << ", ";
    json << "{\"circuit\": \"" << rows[i].spec->circuit << "\", \"verb\": \""
         << rows[i].spec->verb << "\", \"off_p50_us\": " << obs::json_number(rows[i].off)
         << ", \"on_p50_us\": " << obs::json_number(rows[i].on)
         << ", \"full_p50_us\": " << obs::json_number(rows[i].full) << "}";
  }
  json << "], \"mix\": {\"off_p50_sum_us\": " << obs::json_number(off_total)
       << ", \"on_p50_sum_us\": " << obs::json_number(on_total)
       << ", \"full_p50_sum_us\": " << obs::json_number(full_total)
       << ", \"telemetry_speedup\": "
       << obs::json_number(on_total > 0 ? off_total / on_total : 0.0)
       << ", \"attribution_speedup\": "
       << obs::json_number(full_total > 0 ? off_total / full_total : 0.0) << "}}\n";
  json.close();
  std::printf("wrote %s\n", out.c_str());

  int rc = 0;
  if (on_overhead > 0.05) {
    std::fprintf(stderr,
                 "FAIL: unsampled telemetry overhead %.2f%% exceeds the 5%% gate\n",
                 100.0 * on_overhead);
    rc = 1;
  }
  if (full_overhead > 0.05) {
    std::fprintf(stderr,
                 "FAIL: attribution+profiler overhead %.2f%% exceeds the 5%% gate\n",
                 100.0 * full_overhead);
    rc = 1;
  }
  return rc;
}

std::string pct_json(const Percentiles& p) {
  std::string out = "{\"p50_us\": " + obs::json_number(p.p50);
  out += ", \"p95_us\": " + obs::json_number(p.p95);
  out += ", \"p99_us\": " + obs::json_number(p.p99);
  out += ", \"max_us\": " + obs::json_number(p.max) + "}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  bool check = false;
  bool overhead_check = false;
  std::string out;  // defaults depend on the mode, resolved below
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--overhead-check") == 0) {
      overhead_check = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve [--small] [--check] [--overhead-check] "
                   "[--out <file>]\n");
      return 2;
    }
  }
  if (out.empty()) out = overhead_check ? "BENCH_overhead.json" : "BENCH_serve.json";
  if (overhead_check) return run_overhead_check(small, out);
  const int iters = small ? 30 : 200;

  std::vector<BenchCase> cases;
  std::vector<std::pair<std::string, std::string>> loads;  // key -> text
  build_cases(cases, loads);

  serve::ServiceConfig cold_config;
  cold_config.cache_bytes = 0;
  serve::TimingService cold_service(cold_config);
  serve::TimingService warm_service;
  for (const auto& [key, text] : loads) {
    load_into(cold_service, key, text);
    load_into(warm_service, key, text);
  }

  std::vector<CaseResult> results;
  for (const BenchCase& spec : cases) {
    CaseResult r;
    r.spec = spec;
    r.cold = run_lane(cold_service, spec.request, iters);
    (void)run_lane(warm_service, spec.request, 1);  // prime the cache
    r.warm = run_lane(warm_service, spec.request, iters);
    r.speedup_p50 = r.warm.latency.p50 > 0 ? r.cold.latency.p50 / r.warm.latency.p50 : 0.0;
    r.identical =
        scrub_volatile(r.cold.first_response) == scrub_volatile(r.warm.first_response);
    results.push_back(std::move(r));
  }

  std::vector<std::pair<std::string, double>> mix_speedups;
  for (const auto& [key, text] : loads) {
    (void)text;
    double cold_sum = 0.0, warm_sum = 0.0;
    for (const CaseResult& r : results) {
      if (r.spec.circuit != key) continue;
      cold_sum += r.cold.latency.p50;
      warm_sum += r.warm.latency.p50;
    }
    mix_speedups.emplace_back(key, warm_sum > 0 ? cold_sum / warm_sum : 0.0);
  }

  const Throughput tp = run_throughput(small ? 4 : 8, small ? 16 : 64, small ? 4 : 10);

  std::printf("== serve: result-cache latency (cold = cache off, warm = cache hit) ==\n");
  TextTable table({"case", "cold p50 us", "cold p99 us", "warm p50 us",
                   "warm p99 us", "speedup", "identical"});
  for (const CaseResult& r : results) {
    char c50[32], c99[32], w50[32], w99[32], sp[32];
    std::snprintf(c50, sizeof c50, "%.1f", r.cold.latency.p50);
    std::snprintf(c99, sizeof c99, "%.1f", r.cold.latency.p99);
    std::snprintf(w50, sizeof w50, "%.1f", r.warm.latency.p50);
    std::snprintf(w99, sizeof w99, "%.1f", r.warm.latency.p99);
    std::snprintf(sp, sizeof sp, "%.1fx", r.speedup_p50);
    table.add_row({r.spec.circuit + "/" + r.spec.verb, c50, c99, w50, w99, sp,
                   r.identical ? "yes" : "NO"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("mixed edit+analyze throughput: %ld requests in %.2fs (%.0f req/s), "
              "p50 %.0fus p95 %.0fus p99 %.0fus\n",
              tp.requests, tp.seconds, tp.requests_per_second, tp.latency.p50,
              tp.latency.p95, tp.latency.p99);

  std::ofstream json(out);
  json << "{\"meta\": " << obs::run_metadata_json(obs::run_metadata())
       << ", \"iters\": " << iters << ", \"cases\": [";
  for (size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    if (i) json << ", ";
    json << "{\"circuit\": \"" << r.spec.circuit << "\", \"verb\": \"" << r.spec.verb
         << "\", \"cold\": " << pct_json(r.cold.latency)
         << ", \"warm\": " << pct_json(r.warm.latency)
         << ", \"speedup_p50\": " << obs::json_number(r.speedup_p50)
         << ", \"identical\": " << (r.identical ? "true" : "false") << "}";
  }
  json << "], \"mix_speedups\": {";
  for (size_t i = 0; i < mix_speedups.size(); ++i) {
    if (i) json << ", ";
    json << "\"" << mix_speedups[i].first
         << "\": " << obs::json_number(mix_speedups[i].second);
  }
  json << "}, \"throughput\": {\"requests\": " << tp.requests
       << ", \"wall_seconds\": " << obs::json_number(tp.seconds)
       << ", \"requests_per_second\": " << obs::json_number(tp.requests_per_second)
       << ", \"latency\": " << pct_json(tp.latency) << "}}\n";
  json.close();
  std::printf("wrote %s\n", out.c_str());

  int rc = 0;
  for (const CaseResult& r : results) {
    if (!r.identical) {
      std::fprintf(stderr, "FAIL: %s/%s cached response differs from recomputed one\n",
                   r.spec.circuit.c_str(), r.spec.verb.c_str());
      rc = 1;
    }
  }
  // Acceptance gate: per circuit, the warm cache must serve the full request
  // mix (analyze + signoff report + sweep) at least 5x faster than
  // recomputation. Per-case speedups above are informational — a bare
  // analyze on an already-warm session is cheap enough that a cache hit is
  // only a marginal win, while the mix is dominated by the expensive verbs
  // the cache exists for.
  for (const auto& [key, mix] : mix_speedups) {
    std::printf("%s request-mix speedup (sum of p50s): %.1fx\n", key.c_str(), mix);
    if (check && mix < 5.0) {
      std::fprintf(stderr,
                   "FAIL: %s warm-cache request-mix speedup %.2fx below the 5x gate\n",
                   key.c_str(), mix);
      rc = 1;
    }
  }
  return rc;
}
