// Ablation of the MLP fixpoint update scheme (paper Section IV remarks):
// Jacobi (the printed algorithm) vs Gauss-Seidel ("obviously possible") vs
// the event-driven mechanism ("can be easily implemented. With such an
// enhancement, the cost of the iterative steps is greatly reduced").
#include <benchmark/benchmark.h>

#include <cstdio>

#include "base/table.h"
#include "circuits/example1.h"
#include "circuits/gaas.h"
#include "circuits/synthetic.h"
#include "opt/mlp.h"
#include "sta/fixpoint.h"

using namespace mintc;

namespace {

Circuit big_circuit() {
  circuits::SyntheticParams p;
  p.num_phases = 2;
  p.num_stages = 24;
  p.latches_per_stage = 4;
  p.fanin = 3;
  return circuits::synthetic_circuit(p, 4242);
}

void print_sweep_table() {
  std::printf("== MLP fixpoint: update-scheme ablation ==\n");
  TextTable table({"circuit", "scheme", "sweeps", "updates", "Tc*"});
  struct Named {
    const char* name;
    Circuit circuit;
  };
  const Named circuits_list[] = {{"example1(d41=120)", circuits::example1(120.0)},
                                 {"gaas", circuits::gaas_datapath()},
                                 {"synthetic(l=96)", big_circuit()}};
  for (const auto& [name, circuit] : circuits_list) {
    for (const auto scheme :
         {sta::UpdateScheme::kJacobi, sta::UpdateScheme::kGaussSeidel,
          sta::UpdateScheme::kEventDriven, sta::UpdateScheme::kSccOrdered}) {
      opt::MlpOptions opt;
      opt.fixpoint.scheme = scheme;
      const auto r = opt::minimize_cycle_time(circuit, opt);
      if (!r) continue;
      char tc[32];
      std::snprintf(tc, sizeof tc, "%.4g", r->min_cycle);
      table.add_row({name, sta::to_string(scheme), std::to_string(r->fixpoint_sweeps),
                     std::to_string(r->fixpoint_updates), tc});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("paper: 'the update process usually terminated in two to three\n"
              "iterations (in some cases no iterations were even necessary).'\n\n");
}

void BM_FixpointFromZero(benchmark::State& state) {
  const Circuit c = big_circuit();
  const auto r = opt::minimize_cycle_time(c);
  if (!r) {
    state.SkipWithError("optimization failed");
    return;
  }
  sta::FixpointOptions opt;
  opt.scheme = static_cast<sta::UpdateScheme>(state.range(0));
  const std::vector<double> zero(static_cast<size_t>(c.num_elements()), 0.0);
  for (auto _ : state) {
    auto fix = sta::compute_departures(c, r->schedule, zero, opt);
    benchmark::DoNotOptimize(fix);
  }
  state.SetLabel(sta::to_string(opt.scheme));
}
BENCHMARK(BM_FixpointFromZero)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

int main(int argc, char** argv) {
  print_sweep_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
