// Figs. 8-9: example 2 — the larger multiphase circuit where the NRIP
// cycle time is "significantly higher (35%) than the optimal cycle time".
// (The circuit is a calibrated reconstruction; see DESIGN.md §4.)
#include <cstdio>

#include "base/strings.h"
#include "base/table.h"
#include "baselines/binary_search.h"
#include "baselines/edge_triggered.h"
#include "circuits/example2.h"
#include "graph/cycle_ratio.h"
#include "opt/mlp.h"
#include "viz/timing_diagram.h"

using namespace mintc;

int main() {
  std::printf("== Fig. 9: example 2 cycle-time comparison ==\n\n");
  const Circuit c = circuits::example2();
  const auto mlp = opt::minimize_cycle_time(c);
  if (!mlp) {
    std::printf("ERROR: %s\n", mlp.error().to_string().c_str());
    return 1;
  }
  const auto nrip = baselines::nrip_reconstruction(c);
  const auto jouppi = baselines::jouppi_borrowing(c);
  const auto cpm = baselines::edge_triggered_cpm(c);

  TextTable table({"method", "Tc [ns]", "vs optimal"});
  const auto pct = [&](double tc) {
    return "+" + fmt_time(100.0 * (tc / mlp->min_cycle - 1.0), 1) + "%";
  };
  table.add_row({"MLP (optimal)", fmt_time(mlp->min_cycle, 2), "-"});
  table.add_row({nrip.method, fmt_time(nrip.cycle, 2), pct(nrip.cycle)});
  table.add_row({jouppi.method, fmt_time(jouppi.cycle, 2), pct(jouppi.cycle)});
  table.add_row({cpm.method, fmt_time(cpm.cycle, 2), pct(cpm.cycle)});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("paper: NRIP is 35%% above the MLP optimum; measured %s.\n\n",
              pct(nrip.cycle).c_str());

  std::printf("optimal schedule (note the strongly unequal phase widths —\n"
              "the reason symmetric-clock methods pay a penalty):\n  %s\n\n",
              mlp->schedule.to_string().c_str());

  const auto ratio = graph::max_cycle_ratio_howard(c.latch_graph());
  if (ratio) {
    std::printf("max cycle ratio bound: %s (LP optimum matches: no setup binds)\n\n",
                fmt_time(ratio->ratio, 4).c_str());
  }

  std::printf("critical delay segments (tight rows with nonzero duals — the\n"
              "paper's replacement for the 'critical path' notion):\n");
  for (const auto& t : mlp->critical) {
    std::printf("  %-18s dual dTc*/drhs = %s\n", t.name.c_str(), fmt_time(t.dual, 3).c_str());
  }
  std::printf("\n%s", viz::ascii_timing_diagram(c, mlp->schedule, mlp->departure).c_str());
  return 0;
}
