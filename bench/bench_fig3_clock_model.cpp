// Fig. 3: "Clocks with two, three, and four phases" — demonstrates that the
// clock model's constraints C1-C4 admit the commonly used 2-, 3-, and
// 4-phase clocking schemes, and renders each.
#include <cstdio>

#include "model/clock.h"
#include "viz/timing_diagram.h"

int main() {
  using namespace mintc;
  std::printf("== Fig. 3: canonical k-phase clocks satisfy C1-C4 ==\n\n");
  for (int k = 2; k <= 4; ++k) {
    // Fully populated K: every pair of phases must be nonoverlapping — the
    // strictest case, matching the figure's back-to-back phases.
    KMatrix K(k);
    for (int i = 1; i <= k; ++i) {
      for (int j = 1; j <= k; ++j) K.set(i, j, true);
    }
    const ClockSchedule sch = symmetric_schedule(k, 100.0);
    const auto violations = check_clock_constraints(sch, K);
    std::printf("k = %d:  %s   constraints: %s\n", k, sch.to_string().c_str(),
                violations.empty() ? "SATISFIED (paper: satisfied)" : "VIOLATED");
    for (const auto& v : violations) {
      std::printf("   violated: %s by %g\n", v.constraint.c_str(), v.amount);
    }
    viz::DiagramOptions opt;
    opt.columns = 80;
    std::printf("%s\n", viz::ascii_clock_diagram(sch, opt).c_str());
  }
  std::printf("note: for k = 2 the clock constraints force the two phases to be\n"
              "nonoverlapping, exactly as the paper points out.\n");
  return 0;
}
