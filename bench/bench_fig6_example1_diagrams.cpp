// Fig. 6: timing diagrams for example 1 at Δ41 = 80, 100, 120 ns.
//
// Published values: Tc* = 110 / 120 / 140 ns. For Δ41 = 120 the paper reads
// off departures at 60/90/140/210 ns absolute and a 20 ns wait at L3; for
// Δ41 = 80 it shows two different optimal schedules sharing Tc = 110.
#include <cstdio>

#include "base/strings.h"
#include "base/table.h"
#include "circuits/example1.h"
#include "opt/mlp.h"
#include "sta/analysis.h"
#include "viz/timing_diagram.h"

using namespace mintc;

int main() {
  std::printf("== Fig. 6: example 1 optimal schedules and timing strips ==\n\n");
  TextTable summary({"delta41 [ns]", "Tc paper [ns]", "Tc measured [ns]", "fixpoint sweeps"});
  const double paper_tc[] = {110.0, 120.0, 140.0};
  const double deltas[] = {80.0, 100.0, 120.0};

  for (int i = 0; i < 3; ++i) {
    const Circuit c = circuits::example1(deltas[i]);
    const auto r = opt::minimize_cycle_time(c);
    if (!r) {
      std::printf("ERROR: %s\n", r.error().to_string().c_str());
      return 1;
    }
    summary.add_row({fmt_time(deltas[i]), fmt_time(paper_tc[i]), fmt_time(r->min_cycle),
                     std::to_string(r->fixpoint_sweeps)});

    std::printf("-- delta41 = %s ns: Tc* = %s (paper %s) --\n", fmt_time(deltas[i]).c_str(),
                fmt_time(r->min_cycle).c_str(), fmt_time(paper_tc[i]).c_str());
    viz::DiagramOptions opt;
    opt.columns = 88;
    std::printf("%s", viz::ascii_timing_diagram(c, r->schedule, r->departure, opt).c_str());
    std::printf("%s\n\n", viz::departure_summary(c, r->departure).c_str());
  }

  // Fig. 6(c) exact strip: the published schedule shape reproduces the
  // printed departures 60/90/140/210 with a 20 ns wait at L3.
  {
    const Circuit c = circuits::example1(120.0);
    const ClockSchedule paper_schedule(140.0, {0.0, 70.0}, {70.0, 60.0});
    const sta::TimingReport rep = sta::check_schedule(c, paper_schedule);
    std::printf("-- Fig. 6(c) cross-check under the published schedule shape --\n");
    std::printf("schedule: %s -> %s\n", paper_schedule.to_string().c_str(),
                rep.feasible ? "PASS" : "FAIL");
    const double abs_dep[] = {paper_schedule.s(1) + rep.elements[0].departure,
                              paper_schedule.s(2) + rep.elements[1].departure,
                              paper_schedule.s(1) + rep.elements[2].departure + 140.0,
                              paper_schedule.s(2) + rep.elements[3].departure + 140.0};
    std::printf("absolute departures: %s %s %s %s (paper: 60 90 140 210)\n",
                fmt_time(abs_dep[0]).c_str(), fmt_time(abs_dep[1]).c_str(),
                fmt_time(abs_dep[2]).c_str(), fmt_time(abs_dep[3]).c_str());
    std::printf("arrival at L3: %s relative to phi1 (paper: valid 20 ns early)\n\n",
                fmt_time(rep.elements[2].arrival).c_str());
  }

  // Fig. 6(a): two distinct optimal schedules at Δ41 = 80.
  {
    const Circuit c = circuits::example1(80.0);
    const auto a = opt::refine_schedule(c, 110.0, opt::SecondaryObjective::kMinTotalWidth);
    const auto b = opt::refine_schedule(c, 110.0, opt::SecondaryObjective::kMaxTotalWidth);
    if (a && b) {
      std::printf("-- Fig. 6(a): two optimal schedules sharing Tc = 110 --\n");
      std::printf("min duty: %s\n", a->schedule.to_string().c_str());
      std::printf("max duty: %s\n\n", b->schedule.to_string().c_str());
    }
  }

  std::printf("%s", summary.to_string().c_str());
  return 0;
}
