// Ablation: simplex LP vs the Bellman-Ford/binary-search optimizer — the
// "more efficient than the simplex algorithm" direction of Section VI,
// exploiting the purely topological (0, ±1) constraint matrix. Both are
// exact; the table verifies agreement and the benchmarks compare costs as
// the circuit grows.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "base/table.h"
#include "circuits/example1.h"
#include "circuits/example2.h"
#include "circuits/gaas.h"
#include "circuits/synthetic.h"
#include "opt/graph_solver.h"
#include "opt/mlp.h"

using namespace mintc;

namespace {

Circuit synthetic_sized(int stages) {
  circuits::SyntheticParams p;
  p.num_phases = 2;
  p.num_stages = stages;
  p.latches_per_stage = 4;
  p.fanin = 3;
  return circuits::synthetic_circuit(p, 2718);
}

void print_agreement_table() {
  std::printf("== exact optimizers: simplex vs Bellman-Ford binary search ==\n");
  TextTable table({"circuit", "Tc* simplex", "Tc* graph", "pivots", "BF relaxations",
                   "search steps"});
  struct Named {
    const char* name;
    Circuit circuit;
  };
  const Named list[] = {{"example1(d41=80)", circuits::example1(80.0)},
                        {"example2", circuits::example2()},
                        {"gaas", circuits::gaas_datapath()},
                        {"synthetic(l=64)", synthetic_sized(16)},
                        {"synthetic(l=256)", synthetic_sized(64)}};
  for (const auto& [name, circuit] : list) {
    const auto lp = opt::minimize_cycle_time(circuit);
    const auto bf = opt::minimize_cycle_time_graph(circuit);
    if (!lp || !bf) continue;
    char a[32], b[32];
    std::snprintf(a, sizeof a, "%.6g", lp->min_cycle);
    std::snprintf(b, sizeof b, "%.6g", bf->min_cycle);
    table.add_row({name, a, b,
                   std::to_string(lp->lp_stats.phase1_pivots + lp->lp_stats.phase2_pivots),
                   std::to_string(bf->relaxations), std::to_string(bf->search_steps)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("the graph method never builds a tableau: its work is edges x passes x\n"
              "binary-search steps, all on the topological +-1 structure.\n\n");
}

void BM_Simplex(benchmark::State& state) {
  const Circuit c = synthetic_sized(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = opt::minimize_cycle_time(c);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("l=" + std::to_string(c.num_elements()));
}
BENCHMARK(BM_Simplex)->Arg(8)->Arg(16)->Arg(32);

void BM_GraphSolver(benchmark::State& state) {
  const Circuit c = synthetic_sized(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = opt::minimize_cycle_time_graph(c);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("l=" + std::to_string(c.num_elements()));
}
BENCHMARK(BM_GraphSolver)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  print_agreement_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
