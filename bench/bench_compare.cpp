// bench_compare — the perf-regression watchdog over BENCH_*.json artifacts.
//
//   bench_compare <baseline.json> <candidate.json>
//       [--tolerance 0.15] [--time-tolerance 0.25] [--out verdict.json]
//
// Both inputs are bench emissions (BENCH_view / BENCH_incremental /
// BENCH_parallel / BENCH_serve, or any JSON with numeric leaves). Every
// numeric leaf is flattened to a dotted path; array elements carrying
// identity fields (circuit/verb/name/case/scheme) are keyed by those fields
// instead of their index, so reordered cases still line up:
//
//   cases[circuit=c0,verb=analyze].speedup_p50
//   cases[name=datapath-8x32].view_relax_per_sec
//
// Metrics are classified by their final path segment:
//   * RATIO (higher-better, GATED by --tolerance): *speedup*, *per_sec*,
//     *per_second*, *hit_rate*, *utilization* — dimensionless or
//     rate-normalized numbers that are comparable across machines. A drop
//     of more than --tolerance (default 15%) is a regression.
//   * TIME (lower-better): *_us, *_ms, *seconds — absolute wall times are
//     NOT comparable across machines, so they are informational by default
//     and only gated when --time-tolerance is passed explicitly (same-host
//     A/B runs, e.g. the baseline-refresh script).
//   * INFO: everything else (counts, sizes) — reported, never gated.
//
// The "meta" header and embedded "metrics" registry dumps are skipped:
// wall clocks and rep-dependent counters are noise, not performance.
//
// A RATIO metric present in the baseline but missing from the candidate is
// a failure (schema rot must not silently disable the gate). Exit status:
// 0 = within tolerance, 1 = regressions (or missing gated metrics),
// 2 = usage/IO/parse error. --out writes a machine-readable verdict JSON.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "serve/json.h"

using namespace mintc;
using serve::Json;

namespace {

enum class Direction { kRatio, kTime, kInfo };

Direction classify(const std::string& path) {
  // A time-unit suffix on the LEAF wins ("throughput.latency.p50_us" is a
  // time metric even though the subtree is rate-flavored); otherwise a ratio
  // keyword ANYWHERE in the path counts, so values keyed under a ratio group
  // ("mix_speedups.c0") are gated too.
  const size_t dot = path.rfind('.');
  const std::string leaf = dot == std::string::npos ? path : path.substr(dot + 1);
  const auto suffix = [&](const char* s) {
    const size_t n = std::strlen(s);
    return leaf.size() > n && leaf.compare(leaf.size() - n, n, s) == 0;
  };
  if (suffix("_us") || suffix("_ms")) return Direction::kTime;
  if (leaf.find("seconds") != std::string::npos) return Direction::kTime;
  const auto has = [&](const char* needle) {
    return path.find(needle) != std::string::npos;
  };
  if (has("speedup") || has("per_sec") || has("per_second") || has("hit_rate") ||
      has("utilization")) {
    return Direction::kRatio;
  }
  return Direction::kInfo;
}

/// Stable identity for an array element: prefer the conventional identity
/// fields over the index so reordered/extended case lists still align.
std::string element_key(const Json& v, size_t index) {
  if (v.is_object()) {
    std::string key;
    for (const char* field : {"circuit", "verb", "name", "case", "scheme", "threads"}) {
      if (!v.has(field)) continue;
      const Json& id = v.get(field);
      std::string part;
      if (id.is_string()) {
        part = id.as_string();
      } else if (id.is_number()) {
        std::ostringstream os;
        os << id.as_number();
        part = os.str();
      } else {
        continue;
      }
      if (!key.empty()) key += ",";
      key += std::string(field) + "=" + part;
    }
    if (!key.empty()) return "[" + key + "]";
  }
  return "[" + std::to_string(index) + "]";
}

void flatten(const Json& v, const std::string& path, std::map<std::string, double>& out) {
  if (v.is_object()) {
    for (const auto& [k, child] : v.fields()) {
      // Run headers and embedded registry dumps are environment noise.
      if (path.empty() && (k == "meta" || k == "metrics")) continue;
      flatten(child, path.empty() ? k : path + "." + k, out);
    }
  } else if (v.is_array()) {
    for (size_t i = 0; i < v.size(); ++i) {
      flatten(v.at(i), path + element_key(v.at(i), i), out);
    }
  } else if (v.is_number()) {
    out[path] = v.as_number();
  }
}

struct Delta {
  std::string path;
  double baseline = 0.0;
  double candidate = 0.0;
  double change = 0.0;  // signed relative change, + = candidate larger
  Direction direction = Direction::kInfo;
  bool regression = false;
};

std::string direction_name(Direction d) {
  switch (d) {
    case Direction::kRatio: return "ratio";
    case Direction::kTime: return "time";
    case Direction::kInfo: return "info";
  }
  return "info";
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_compare <baseline.json> <candidate.json>\n"
               "                     [--tolerance <frac>] [--time-tolerance <frac>]\n"
               "                     [--out <verdict.json>]\n"
               "  --tolerance       max relative drop for ratio metrics (default 0.15)\n"
               "  --time-tolerance  gate time metrics too (default: informational)\n");
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream f(path);
  if (!f) return false;
  std::ostringstream buf;
  buf << f.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, candidate_path, out_path;
  double tolerance = 0.15;
  double time_tolerance = -1.0;  // < 0 = time metrics informational

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--tolerance" && has_value) {
      tolerance = std::atof(argv[++i]);
    } else if (arg == "--time-tolerance" && has_value) {
      time_tolerance = std::atof(argv[++i]);
    } else if (arg == "--out" && has_value) {
      out_path = argv[++i];
    } else if (arg[0] == '-') {
      return usage();
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (candidate_path.empty()) {
      candidate_path = arg;
    } else {
      return usage();
    }
  }
  if (baseline_path.empty() || candidate_path.empty() || tolerance <= 0.0) return usage();

  std::string baseline_text, candidate_text;
  if (!read_file(baseline_path, baseline_text)) {
    std::fprintf(stderr, "error: cannot read %s\n", baseline_path.c_str());
    return 2;
  }
  if (!read_file(candidate_path, candidate_text)) {
    std::fprintf(stderr, "error: cannot read %s\n", candidate_path.c_str());
    return 2;
  }
  const Expected<Json> baseline = serve::parse_json(baseline_text);
  const Expected<Json> candidate = serve::parse_json(candidate_text);
  if (!baseline || !candidate) {
    std::fprintf(stderr, "error: %s\n",
                 (!baseline ? baseline : candidate).error().to_string().c_str());
    return 2;
  }

  std::map<std::string, double> base, cand;
  flatten(*baseline, "", base);
  flatten(*candidate, "", cand);

  std::vector<Delta> deltas;
  std::vector<std::string> missing_gated, missing_info, added;
  for (const auto& [path, bv] : base) {
    const auto it = cand.find(path);
    if (it == cand.end()) {
      (classify(path) == Direction::kRatio ? missing_gated : missing_info).push_back(path);
      continue;
    }
    Delta d;
    d.path = path;
    d.baseline = bv;
    d.candidate = it->second;
    d.direction = classify(path);
    d.change = bv != 0.0 ? (d.candidate - d.baseline) / std::fabs(d.baseline)
                         : (d.candidate == 0.0 ? 0.0 : INFINITY);
    if (d.direction == Direction::kRatio) {
      d.regression = d.change < -tolerance;
    } else if (d.direction == Direction::kTime && time_tolerance >= 0.0) {
      d.regression = d.change > time_tolerance;
    }
    deltas.push_back(d);
  }
  for (const auto& [path, v] : cand) {
    if (base.find(path) == base.end()) added.push_back(path);
  }

  // Report: regressions first, then the largest movers.
  std::stable_sort(deltas.begin(), deltas.end(), [](const Delta& a, const Delta& b) {
    if (a.regression != b.regression) return a.regression;
    return std::fabs(a.change) > std::fabs(b.change);
  });
  long regressions = static_cast<long>(missing_gated.size());
  for (const Delta& d : deltas) {
    if (d.regression) ++regressions;
  }

  std::printf("bench_compare: %s -> %s (%zu comparable metrics, tolerance %.0f%%%s)\n",
              baseline_path.c_str(), candidate_path.c_str(), deltas.size(),
              100.0 * tolerance,
              time_tolerance >= 0.0 ? ", time metrics gated" : ", time metrics informational");
  size_t shown = 0;
  for (const Delta& d : deltas) {
    if (!d.regression && shown >= 20 && std::fabs(d.change) < 0.05) break;
    std::printf("  %-9s %s %-58s %12.4g -> %-12.4g %+7.1f%%\n",
                d.regression ? "REGRESSED" : "ok", direction_name(d.direction).c_str(),
                d.path.c_str(), d.baseline, d.candidate, 100.0 * d.change);
    ++shown;
  }
  for (const std::string& path : missing_gated) {
    std::printf("  MISSING   ratio %s (present in baseline, gone from candidate)\n",
                path.c_str());
  }
  if (!added.empty()) {
    std::printf("  %zu new metric%s in candidate (not gated)\n", added.size(),
                added.size() == 1 ? "" : "s");
  }
  std::printf("verdict: %s (%ld regression%s)\n", regressions == 0 ? "PASS" : "FAIL",
              regressions, regressions == 1 ? "" : "s");

  if (!out_path.empty()) {
    Json verdict = Json::object();
    verdict.set("baseline", Json(baseline_path));
    verdict.set("candidate", Json(candidate_path));
    verdict.set("tolerance", Json(tolerance));
    verdict.set("time_gated", Json(time_tolerance >= 0.0));
    if (time_tolerance >= 0.0) verdict.set("time_tolerance", Json(time_tolerance));
    verdict.set("status", Json(regressions == 0 ? std::string("pass") : std::string("fail")));
    verdict.set("regressions", Json(regressions));
    Json rows = Json::array();
    for (const Delta& d : deltas) {
      Json row = Json::object();
      row.set("path", Json(d.path));
      row.set("class", Json(direction_name(d.direction)));
      row.set("baseline", Json(d.baseline));
      row.set("candidate", Json(d.candidate));
      row.set("change", Json(std::isfinite(d.change) ? d.change : 1e308));
      row.set("regression", Json(d.regression));
      rows.push(std::move(row));
    }
    verdict.set("metrics", std::move(rows));
    Json missing = Json::array();
    for (const std::string& path : missing_gated) missing.push(Json(path));
    verdict.set("missing_gated", std::move(missing));
    Json extra = Json::array();
    for (const std::string& path : added) extra.push(Json(path));
    verdict.set("added", std::move(extra));
    std::ofstream f(out_path);
    if (f) {
      f << verdict.dump() << "\n";
      std::printf("wrote %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 2;
    }
  }
  return regressions == 0 ? 0 : 1;
}
