// Before/after benchmark for the TimingView refactor: the pre-refactor
// pointer-chasing Gauss-Seidel sweep (replicated below verbatim) vs the
// flattened-view kernel, on synthetic pipelined datapaths up to 10k latches.
//
// Measures steady-state sweep throughput: eps = -1 forces exactly
// max_sweeps full sweeps regardless of convergence, so both engines do the
// identical amount of eq. (17) work and the timing difference is purely the
// memory layout. Writes BENCH_view.json (override with --out <path>);
// --small shrinks the circuit set for CI smoke runs.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "base/table.h"
#include "baselines/binary_search.h"
#include "baselines/edge_triggered.h"
#include "model/timing_view.h"
#include "netlist/extract.h"
#include "netlist/generators.h"
#include "sta/fixpoint.h"

using namespace mintc;

namespace {

// ---- The pre-refactor inner loop, kept verbatim for comparison ----------

double legacy_departure_update(const Circuit& circuit, const ClockSchedule& schedule,
                               const std::vector<double>& departure, int i) {
  const Element& e = circuit.element(i);
  if (!e.is_latch()) return 0.0;
  double best = 0.0;
  for (const int pi : circuit.fanin(i)) {
    const CombPath& path = circuit.path(pi);
    const Element& src = circuit.element(path.from);
    const double a = departure[static_cast<size_t>(path.from)] + src.dq + path.delay +
                     schedule.shift(src.phase, e.phase);
    if (a > best) best = a;
  }
  return best;
}

// Gauss-Seidel with the convergence test disabled: exactly `sweeps` passes.
std::vector<double> legacy_forced_sweeps(const Circuit& circuit, const ClockSchedule& schedule,
                                         int sweeps, long& relaxations) {
  const int l = circuit.num_elements();
  std::vector<double> d(static_cast<size_t>(l), 0.0);
  for (int s = 0; s < sweeps; ++s) {
    for (int i = 0; i < l; ++i) {
      relaxations += static_cast<long>(circuit.fanin(i).size());
      d[static_cast<size_t>(i)] = legacy_departure_update(circuit, schedule, d, i);
    }
  }
  return d;
}

// -------------------------------------------------------------------------

struct CaseResult {
  std::string name;
  int latches = 0;
  int edges = 0;
  int sweeps = 0;
  double legacy_seconds = 0.0;
  double view_seconds = 0.0;
  double view_build_seconds = 0.0;
  double legacy_rate = 0.0;  // edge relaxations / second
  double view_rate = 0.0;
  double speedup = 0.0;
  bool agrees = false;  // final departures agree to 1e-9 (the legacy loop
                        // keeps the historical FP association, which may
                        // differ from the fused constant by ulps)
};

Circuit make_datapath(int bits, int stages) {
  netlist::DatapathConfig cfg;
  cfg.bits = bits;
  cfg.stages = stages;
  cfg.num_phases = 2;
  const auto circuit = netlist::extract_timing_model(netlist::make_pipelined_datapath(cfg));
  if (!circuit) {
    std::fprintf(stderr, "extraction failed: %s\n", circuit.error().to_string().c_str());
    std::exit(1);
  }
  return *circuit;
}

CaseResult run_case(const std::string& name, int bits, int stages, int sweeps, int reps) {
  const Circuit circuit = make_datapath(bits, stages);
  // Any schedule with enough slack works — the sweep count is forced, the
  // values just have to stay bounded. CPM (edge-triggered) Tc is feasible
  // for the latch circuit too, with margin to spare.
  const double tc = 1.2 * std::max(1.0, baselines::edge_triggered_cpm(circuit).cycle);
  const ClockSchedule schedule =
      baselines::ClockShape::symmetric(circuit.num_phases()).at_cycle(tc);

  CaseResult res;
  res.name = name;
  res.latches = circuit.num_elements();
  res.edges = circuit.num_paths();
  res.sweeps = sweeps;

  sta::FixpointOptions opt;
  opt.scheme = sta::UpdateScheme::kGaussSeidel;
  opt.eps = -1.0;  // every update "changes": forces exactly max_sweeps sweeps
  opt.max_sweeps = sweeps;

  const TimingView view(circuit);
  const ShiftTable shifts(schedule);
  res.view_build_seconds = view.build_seconds();
  const std::vector<double> zero(static_cast<size_t>(circuit.num_elements()), 0.0);

  std::vector<double> legacy_final, view_final;
  long legacy_relax = 0;
  for (int r = 0; r < reps; ++r) {
    long relax = 0;
    const StageTimer timer;
    legacy_final = legacy_forced_sweeps(circuit, schedule, sweeps, relax);
    const double t = timer.seconds();
    legacy_relax = relax;
    if (r == 0 || t < res.legacy_seconds) res.legacy_seconds = t;
  }
  for (int r = 0; r < reps; ++r) {
    const sta::FixpointResult fix = sta::compute_departures(view, shifts, zero, opt);
    view_final = fix.departure;
    if (r == 0 || fix.stats.solve_seconds < res.view_seconds) {
      res.view_seconds = fix.stats.solve_seconds;
    }
  }

  res.legacy_rate = static_cast<double>(legacy_relax) / res.legacy_seconds;
  res.view_rate = static_cast<double>(legacy_relax) / res.view_seconds;
  res.speedup = res.legacy_seconds / res.view_seconds;
  res.agrees = legacy_final.size() == view_final.size();
  for (size_t i = 0; res.agrees && i < legacy_final.size(); ++i) {
    const double scale = std::max(1.0, std::fabs(legacy_final[i]));
    if (std::fabs(legacy_final[i] - view_final[i]) > 1e-9 * scale) res.agrees = false;
  }
  return res;
}

void write_json(const std::vector<CaseResult>& cases, const std::string& path, bool small) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"view_fixpoint\",\n  \"mode\": \"%s\",\n  \"cases\": [\n",
               small ? "small" : "full");
  for (size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"latches\": %d, \"edges\": %d, \"sweeps\": %d,\n"
                 "     \"legacy_seconds\": %.6e, \"view_seconds\": %.6e,\n"
                 "     \"view_build_seconds\": %.6e,\n"
                 "     \"legacy_relax_per_sec\": %.6e, \"view_relax_per_sec\": %.6e,\n"
                 "     \"speedup\": %.3f, \"agrees\": %s}%s\n",
                 c.name.c_str(), c.latches, c.edges, c.sweeps, c.legacy_seconds,
                 c.view_seconds, c.view_build_seconds, c.legacy_rate, c.view_rate, c.speedup,
                 c.agrees ? "true" : "false", i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  std::string out = "BENCH_view.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--small] [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  struct Spec {
    const char* name;
    int bits, stages, sweeps, reps;
  };
  std::vector<Spec> specs;
  if (small) {
    specs = {{"datapath-8x32", 8, 32, 10, 3}};
  } else {
    specs = {{"datapath-8x32", 8, 32, 20, 5},
             {"datapath-16x64", 16, 64, 20, 5},
             {"datapath-16x625", 16, 625, 20, 3}};  // 10k latches
  }

  std::printf("== fixpoint sweep throughput: legacy pointer-chasing vs TimingView ==\n");
  TextTable table({"circuit", "latches", "edges", "legacy s", "view s", "speedup", "agrees"});
  std::vector<CaseResult> results;
  for (const Spec& s : specs) {
    const CaseResult r = run_case(s.name, s.bits, s.stages, s.sweeps, s.reps);
    char lbuf[32], vbuf[32], sbuf[32];
    std::snprintf(lbuf, sizeof lbuf, "%.4f", r.legacy_seconds);
    std::snprintf(vbuf, sizeof vbuf, "%.4f", r.view_seconds);
    std::snprintf(sbuf, sizeof sbuf, "%.2fx", r.speedup);
    table.add_row({r.name, std::to_string(r.latches), std::to_string(r.edges), lbuf, vbuf,
                   sbuf, r.agrees ? "yes" : "NO"});
    results.push_back(r);
  }
  std::printf("%s\n", table.to_string().c_str());
  write_json(results, out, small);

  for (const CaseResult& r : results) {
    if (!r.agrees) {
      std::fprintf(stderr, "FAIL: %s departures differ between engines\n", r.name.c_str());
      return 1;
    }
  }
  return 0;
}
