// Before/after benchmark for the TimingView refactor: the pre-refactor
// pointer-chasing Gauss-Seidel sweep (replicated below verbatim) vs the
// flattened-view kernel, on synthetic pipelined datapaths up to 10k latches.
//
// Measures steady-state sweep throughput: eps = -1 forces exactly
// max_sweeps full sweeps regardless of convergence, so both engines do the
// identical amount of eq. (17) work and the timing difference is purely the
// memory layout. Writes BENCH_view.json (override with --out <path>);
// --small shrinks the circuit set for CI smoke runs.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "base/table.h"
#include "baselines/binary_search.h"
#include "baselines/edge_triggered.h"
#include "model/timing_view.h"
#include "netlist/extract.h"
#include "netlist/generators.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sta/fixpoint.h"

using namespace mintc;

namespace {

// ---- The pre-refactor inner loop, kept verbatim for comparison ----------

double legacy_departure_update(const Circuit& circuit, const ClockSchedule& schedule,
                               const std::vector<double>& departure, int i) {
  const Element& e = circuit.element(i);
  if (!e.is_latch()) return 0.0;
  double best = 0.0;
  for (const int pi : circuit.fanin(i)) {
    const CombPath& path = circuit.path(pi);
    const Element& src = circuit.element(path.from);
    const double a = departure[static_cast<size_t>(path.from)] + src.dq + path.delay +
                     schedule.shift(src.phase, e.phase);
    if (a > best) best = a;
  }
  return best;
}

// Gauss-Seidel with the convergence test disabled: exactly `sweeps` passes.
std::vector<double> legacy_forced_sweeps(const Circuit& circuit, const ClockSchedule& schedule,
                                         int sweeps, long& relaxations) {
  const int l = circuit.num_elements();
  std::vector<double> d(static_cast<size_t>(l), 0.0);
  for (int s = 0; s < sweeps; ++s) {
    for (int i = 0; i < l; ++i) {
      relaxations += static_cast<long>(circuit.fanin(i).size());
      d[static_cast<size_t>(i)] = legacy_departure_update(circuit, schedule, d, i);
    }
  }
  return d;
}

// ---- The PR2 engine loop, minus the observability hooks -----------------
// Replicates the Gauss-Seidel branch of compute_departures exactly as it
// stood before the obs layer was wired in (update/relaxation counters, eps
// test, divergence guard) so the --overhead-check gate measures only what
// tracing-disabled instrumentation costs.

double pre_obs_forced_sweeps(const TimingView& view, const ShiftTable& shifts,
                             std::vector<double> initial, int max_sweeps, double eps,
                             long& updates, long& relaxations) {
  const int l = view.num_elements();
  const StageTimer timer;
  sta::FixpointResult res;
  res.departure = std::move(initial);
  const double bound =
      std::fabs(shifts.cycle()) * (view.num_phases() + 1) + 1.0 + view.divergence_base();
  const auto diverged = [&](double v) { return v > bound; };
  const auto relax = [&](int i) {
    ++res.updates;
    res.stats.edge_relaxations += view.fanin_count(i);
    return departure_update(view, shifts, res.departure, i);
  };
  for (res.sweeps = 0; res.sweeps < max_sweeps; ++res.sweeps) {
    bool changed = false;
    for (int i = 0; i < l; ++i) {
      const double v = relax(i);
      if (std::fabs(v - res.departure[static_cast<size_t>(i)]) > eps) changed = true;
      res.departure[static_cast<size_t>(i)] = v;
      if (diverged(v)) {
        res.diverged = true;
        updates = res.updates;
        relaxations = res.stats.edge_relaxations;
        return timer.seconds();
      }
    }
    if (!changed) {
      res.converged = true;
      ++res.sweeps;
      break;
    }
  }
  updates = res.updates;
  relaxations = res.stats.edge_relaxations;
  return timer.seconds();
}

// -------------------------------------------------------------------------

struct CaseResult {
  std::string name;
  int latches = 0;
  int edges = 0;
  int sweeps = 0;
  double legacy_seconds = 0.0;
  double view_seconds = 0.0;
  double view_build_seconds = 0.0;
  double legacy_rate = 0.0;  // edge relaxations / second
  double view_rate = 0.0;
  double speedup = 0.0;
  bool agrees = false;  // final departures agree to 1e-9 (the legacy loop
                        // keeps the historical FP association, which may
                        // differ from the fused constant by ulps)
};

Circuit make_datapath(int bits, int stages) {
  netlist::DatapathConfig cfg;
  cfg.bits = bits;
  cfg.stages = stages;
  cfg.num_phases = 2;
  const auto circuit = netlist::extract_timing_model(netlist::make_pipelined_datapath(cfg));
  if (!circuit) {
    std::fprintf(stderr, "extraction failed: %s\n", circuit.error().to_string().c_str());
    std::exit(1);
  }
  return *circuit;
}

CaseResult run_case(const std::string& name, int bits, int stages, int sweeps, int reps) {
  const Circuit circuit = make_datapath(bits, stages);
  // Any schedule with enough slack works — the sweep count is forced, the
  // values just have to stay bounded. CPM (edge-triggered) Tc is feasible
  // for the latch circuit too, with margin to spare.
  const double tc = 1.2 * std::max(1.0, baselines::edge_triggered_cpm(circuit).cycle);
  const ClockSchedule schedule =
      baselines::ClockShape::symmetric(circuit.num_phases()).at_cycle(tc);

  CaseResult res;
  res.name = name;
  res.latches = circuit.num_elements();
  res.edges = circuit.num_paths();
  res.sweeps = sweeps;

  sta::FixpointOptions opt;
  opt.scheme = sta::UpdateScheme::kGaussSeidel;
  opt.eps = -1.0;  // every update "changes": forces exactly max_sweeps sweeps
  opt.max_sweeps = sweeps;

  const TimingView view(circuit);
  const ShiftTable shifts(schedule);
  res.view_build_seconds = view.build_seconds();
  const std::vector<double> zero(static_cast<size_t>(circuit.num_elements()), 0.0);

  std::vector<double> legacy_final, view_final;
  long legacy_relax = 0;
  for (int r = 0; r < reps; ++r) {
    long relax = 0;
    const StageTimer timer;
    legacy_final = legacy_forced_sweeps(circuit, schedule, sweeps, relax);
    const double t = timer.seconds();
    legacy_relax = relax;
    if (r == 0 || t < res.legacy_seconds) res.legacy_seconds = t;
  }
  for (int r = 0; r < reps; ++r) {
    const sta::FixpointResult fix = sta::compute_departures(view, shifts, zero, opt);
    view_final = fix.departure;
    if (r == 0 || fix.stats.solve_seconds < res.view_seconds) {
      res.view_seconds = fix.stats.solve_seconds;
    }
  }

  res.legacy_rate = static_cast<double>(legacy_relax) / res.legacy_seconds;
  res.view_rate = static_cast<double>(legacy_relax) / res.view_seconds;
  res.speedup = res.legacy_seconds / res.view_seconds;
  res.agrees = legacy_final.size() == view_final.size();
  for (size_t i = 0; res.agrees && i < legacy_final.size(); ++i) {
    const double scale = std::max(1.0, std::fabs(legacy_final[i]));
    if (std::fabs(legacy_final[i] - view_final[i]) > 1e-9 * scale) res.agrees = false;
  }
  return res;
}

struct OverheadResult {
  double baseline_seconds = 0.0;      // pre-obs loop, min of reps
  double instrumented_seconds = 0.0;  // compute_departures, tracing disabled
  double overhead = 0.0;              // instrumented / baseline - 1
};

OverheadResult run_overhead_check(int bits, int stages, int sweeps, int reps) {
  const Circuit circuit = make_datapath(bits, stages);
  const double tc = 1.2 * std::max(1.0, baselines::edge_triggered_cpm(circuit).cycle);
  const ClockSchedule schedule =
      baselines::ClockShape::symmetric(circuit.num_phases()).at_cycle(tc);
  const TimingView view(circuit);
  const ShiftTable shifts(schedule);
  const std::vector<double> zero(static_cast<size_t>(circuit.num_elements()), 0.0);

  sta::FixpointOptions opt;
  opt.scheme = sta::UpdateScheme::kGaussSeidel;
  opt.eps = -1.0;
  opt.max_sweeps = sweeps;

  OverheadResult res;
  // Paired measurement: each rep times both sides back to back, so slow
  // drift (frequency scaling, a busy sibling core) hits both equally, and
  // the order within the pair alternates per rep so whichever side runs
  // second doesn't systematically eat the turbo decay. A warmup pair
  // absorbs cold caches.
  const auto run_base = [&]() {
    long updates = 0, relaxations = 0;
    return pre_obs_forced_sweeps(view, shifts, zero, sweeps, -1.0, updates, relaxations);
  };
  const auto run_instr = [&]() {
    return sta::compute_departures(view, shifts, zero, opt).stats.solve_seconds;
  };
  for (int r = -1; r < reps; ++r) {
    double base = 0.0, instr = 0.0;
    if (r % 2 == 0) {
      base = run_base();
      instr = run_instr();
    } else {
      instr = run_instr();
      base = run_base();
    }
    if (r < 0) continue;  // warmup
    if (r == 0 || base < res.baseline_seconds) res.baseline_seconds = base;
    if (r == 0 || instr < res.instrumented_seconds) res.instrumented_seconds = instr;
  }
  // Noise on a shared machine is one-sided — it only ever makes a
  // measurement slower — so the minimum over reps is the estimate of each
  // side's true cost, and their ratio the irreducible overhead: noise
  // spikes can't lower a minimum, while a real regression lifts every
  // instrumented rep including the fastest one.
  res.overhead = res.instrumented_seconds / res.baseline_seconds - 1.0;
  return res;
}

void write_json(const std::vector<CaseResult>& cases, const std::string& path, bool small,
                const OverheadResult* overhead) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"view_fixpoint\",\n  \"mode\": \"%s\",\n  \"cases\": [\n",
               small ? "small" : "full");
  for (size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"latches\": %d, \"edges\": %d, \"sweeps\": %d,\n"
                 "     \"legacy_seconds\": %.6e, \"view_seconds\": %.6e,\n"
                 "     \"view_build_seconds\": %.6e,\n"
                 "     \"legacy_relax_per_sec\": %.6e, \"view_relax_per_sec\": %.6e,\n"
                 "     \"speedup\": %.3f, \"agrees\": %s}%s\n",
                 c.name.c_str(), c.latches, c.edges, c.sweeps, c.legacy_seconds,
                 c.view_seconds, c.view_build_seconds, c.legacy_rate, c.view_rate, c.speedup,
                 c.agrees ? "true" : "false", i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  if (overhead) {
    std::fprintf(f,
                 "  \"overhead_check\": {\"baseline_seconds\": %.6e, "
                 "\"instrumented_seconds\": %.6e, \"overhead\": %.4f},\n",
                 overhead->baseline_seconds, overhead->instrumented_seconds,
                 overhead->overhead);
  }
  // Embed the process metrics so the BENCH artifact carries the full
  // accounting (fixpoint solves/sweeps/relaxations) alongside the timings.
  const std::string metrics = obs::metrics_json(obs::MetricsRegistry::instance().snapshot());
  std::fprintf(f, "  \"metrics\": %s\n}\n", metrics.c_str());
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  bool overhead_check = false;
  std::string out = "BENCH_view.json";
  std::string trace_out, metrics_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--overhead-check") == 0) {
      overhead_check = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--small] [--out <path>] [--trace-out <path>]\n"
                   "          [--metrics-out <path>] [--overhead-check]\n",
                   argv[0]);
      return 2;
    }
  }

  if (!trace_out.empty()) obs::Tracer::instance().set_enabled(true);

  struct Spec {
    const char* name;
    int bits, stages, sweeps, reps;
  };
  std::vector<Spec> specs;
  if (small) {
    specs = {{"datapath-8x32", 8, 32, 10, 3}};
  } else {
    specs = {{"datapath-8x32", 8, 32, 20, 5},
             {"datapath-16x64", 16, 64, 20, 5},
             {"datapath-16x625", 16, 625, 20, 3}};  // 10k latches
  }

  std::printf("== fixpoint sweep throughput: legacy pointer-chasing vs TimingView ==\n");
  TextTable table({"circuit", "latches", "edges", "legacy s", "view s", "speedup", "agrees"});
  std::vector<CaseResult> results;
  for (const Spec& s : specs) {
    const CaseResult r = run_case(s.name, s.bits, s.stages, s.sweeps, s.reps);
    char lbuf[32], vbuf[32], sbuf[32];
    std::snprintf(lbuf, sizeof lbuf, "%.4f", r.legacy_seconds);
    std::snprintf(vbuf, sizeof vbuf, "%.4f", r.view_seconds);
    std::snprintf(sbuf, sizeof sbuf, "%.2fx", r.speedup);
    table.add_row({r.name, std::to_string(r.latches), std::to_string(r.edges), lbuf, vbuf,
                   sbuf, r.agrees ? "yes" : "NO"});
    results.push_back(r);
  }
  std::printf("%s\n", table.to_string().c_str());

  if (!trace_out.empty()) {
    obs::Tracer::instance().set_enabled(false);
    if (obs::write_chrome_trace(trace_out)) std::printf("wrote %s\n", trace_out.c_str());
  }

  // Overhead gate: the instrumented engine with tracing DISABLED must stay
  // within 5% of the pre-obs loop on forced sweeps. The workload must be
  // big enough (>= ~30 ms per side) that timer granularity, cache warmup
  // and scheduler jitter cannot fake a violation.
  OverheadResult oh;
  if (overhead_check) {
    oh = run_overhead_check(32, 64, small ? 900 : 1800, small ? 7 : 9);
    std::printf("overhead check: baseline %.4fs, instrumented %.4fs, overhead %+.2f%%\n",
                oh.baseline_seconds, oh.instrumented_seconds, 100.0 * oh.overhead);
  }

  write_json(results, out, small, overhead_check ? &oh : nullptr);
  if (!metrics_out.empty() && obs::write_metrics_json(metrics_out)) {
    std::printf("wrote %s\n", metrics_out.c_str());
  }

  for (const CaseResult& r : results) {
    if (!r.agrees) {
      std::fprintf(stderr, "FAIL: %s departures differ between engines\n", r.name.c_str());
      return 1;
    }
  }
  if (overhead_check && oh.overhead > 0.05) {
    std::fprintf(stderr, "FAIL: disabled-tracing overhead %.2f%% exceeds the 5%% budget\n",
                 100.0 * oh.overhead);
    return 1;
  }
  return 0;
}
