// Ablation: the paper's warm-start suggestion — "by treating all latches as
// though they were positive-edge-triggered flip-flops, a very good initial
// guess can be quickly generated and used as the starting point".
//
// Our solver bounds Tc by the edge-triggered CPM estimate instead of
// crash-starting the basis; this bench measures the effect on pivot counts
// and wall time, with the CPM cost included on the warm-started side.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "base/table.h"
#include "baselines/edge_triggered.h"
#include "circuits/example1.h"
#include "circuits/gaas.h"
#include "circuits/synthetic.h"
#include "opt/mlp.h"

using namespace mintc;

namespace {

Circuit synthetic_big() {
  circuits::SyntheticParams p;
  p.num_phases = 2;
  p.num_stages = 20;
  p.latches_per_stage = 4;
  return circuits::synthetic_circuit(p, 555);
}

void print_pivot_table() {
  std::printf("== warm-start ablation: Tc upper bound from the CPM guess ==\n");
  TextTable table({"circuit", "variant", "phase1 pivots", "phase2 pivots", "Tc*"});
  struct Named {
    const char* name;
    Circuit circuit;
  };
  const Named list[] = {{"example1(d41=80)", circuits::example1(80.0)},
                        {"gaas", circuits::gaas_datapath()},
                        {"synthetic(l=80)", synthetic_big()}};
  for (const auto& [name, circuit] : list) {
    for (const bool warm : {false, true}) {
      opt::MlpOptions opt;
      if (warm) {
        opt.generator.tc_upper_bound = baselines::edge_triggered_cpm(circuit).cycle;
      }
      const auto r = opt::minimize_cycle_time(circuit, opt);
      if (!r) continue;
      char tc[32];
      std::snprintf(tc, sizeof tc, "%.4g", r->min_cycle);
      table.add_row({name, warm ? "cold + CPM bound" : "cold",
                     std::to_string(r->lp_stats.phase1_pivots),
                     std::to_string(r->lp_stats.phase2_pivots), tc});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("the optimum never changes (the bound is valid); pivot counts show\n"
              "whether the extra row helps or hurts this simplex implementation.\n\n");
}

void BM_Cold(benchmark::State& state) {
  const Circuit c = synthetic_big();
  for (auto _ : state) {
    auto r = opt::minimize_cycle_time(c);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Cold);

void BM_WarmBound(benchmark::State& state) {
  const Circuit c = synthetic_big();
  for (auto _ : state) {
    opt::MlpOptions opt;
    opt.generator.tc_upper_bound = baselines::edge_triggered_cpm(c).cycle;
    auto r = opt::minimize_cycle_time(c, opt);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_WarmBound);

}  // namespace

int main(int argc, char** argv) {
  print_pivot_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
