// Appendix / Fig. 1: the 11-latch, four-phase circuit whose complete
// constraint set the paper writes out. This bench regenerates everything
// the Appendix lists: the K matrix, the nine phase-shift operators, and the
// full constraint system (printed in LP form), then solves it.
#include <cstdio>

#include "base/strings.h"
#include "circuits/appendix_fig1.h"
#include "opt/constraints.h"
#include "opt/mlp.h"

using namespace mintc;

int main() {
  std::printf("== Appendix: constraints for the Fig. 1 circuit ==\n\n");
  const Circuit c = circuits::appendix_fig1();

  std::printf("K matrix (computed from the circuit; paper gives the same):\n%s\n",
              c.k_matrix().to_string().c_str());
  std::printf("paper's K matrix:\n%s\n", circuits::appendix_fig1_k_matrix().to_string().c_str());
  std::printf("I/O phase pairs: %d (paper: nine)\n\n", c.k_matrix().num_pairs());

  std::printf("phase-shift operators S_ij = s_i - s_j - C_ij*Tc for each pair:\n");
  for (int i = 1; i <= 4; ++i) {
    for (int j = 1; j <= 4; ++j) {
      if (!c.k_matrix().at(i, j)) continue;
      std::printf("  S%d%d = s%d - s%d%s\n", i, j, i, j, c_flag(i, j) ? " - Tc" : "");
    }
  }

  const opt::GeneratedLp g = opt::generate_lp(c);
  std::printf("\nconstraint counts: C1=%d C2=%d C3=%d L1=%d L2R=%d (+%d nonnegativity bounds)\n",
              g.counts.c1, g.counts.c2, g.counts.c3, g.counts.l1, g.counts.l2r,
              g.counts.bounds);
  std::printf("\nfull LP (P2) generated 'by inspection' from the circuit:\n%s\n",
              g.model.to_string().c_str());

  const auto r = opt::minimize_cycle_time(c);
  if (!r) {
    std::printf("ERROR: %s\n", r.error().to_string().c_str());
    return 1;
  }
  std::printf("with the default symbolic-delay values (setup=2, dq=3, delays 10..48):\n");
  std::printf("  Tc* = %s, schedule %s\n", fmt_time(r->min_cycle, 3).c_str(),
              r->schedule.to_string().c_str());
  std::printf("  fixpoint sweeps: %d\n", r->fixpoint_sweeps);
  return 0;
}
