// Ablation: ATV-style bounded unrolling vs the exact fixpoint analysis.
//
// Paper, Section II, on Wallace's ATV: unrolling the circuit n_c cycles is
// (a) inefficient for large n_c and (b) "if n_c is smaller than the number
// of cycles covered by any loop of latches in the circuit, the solution
// generated ... will only be an approximation to the true solution."
// Both effects are shown on a two-phase ring whose single feedback loop
// spans 8 clock cycles.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "base/strings.h"
#include "base/table.h"
#include "baselines/unrolled.h"
#include "circuits/example1.h"
#include "sta/analysis.h"

using namespace mintc;

namespace {

Circuit long_ring(int n, double stage_delay) {
  Circuit c("ring" + std::to_string(n), 2);
  const int total = 2 * n;
  for (int i = 0; i < total; ++i) {
    c.add_latch("R" + std::to_string(i), (i % 2) + 1, 1.0, 2.0);
  }
  for (int i = 0; i < total; ++i) c.add_path(i, (i + 1) % total, stage_delay);
  return c;
}

void print_unrolling_table() {
  std::printf("== ATV unrolling vs exact analysis (ring, loop spans 8 cycles) ==\n");
  const Circuit c = long_ring(8, 60.0);
  const baselines::ClockShape shape = baselines::ClockShape::symmetric(2);
  const baselines::BaselineResult exact = baselines::fixed_shape_search(c, shape);

  TextTable table({"n_c (unrolled cycles)", "claimed min Tc", "verified by exact engine?"});
  for (const int nc : {1, 2, 4, 6, 8, 12, 16, 32}) {
    const baselines::BaselineResult r = baselines::atv_unrolled(c, shape, nc);
    const bool ok = sta::check_schedule(c, shape.at_cycle(r.cycle)).feasible;
    table.add_row({std::to_string(nc), fmt_time(r.cycle, 2),
                   ok ? "yes" : "NO (unsound underestimate)"});
  }
  table.add_row({"exact (SMO fixpoint)", fmt_time(exact.cycle, 2), "yes"});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("paper: windows shorter than the loop span yield 'only an\n"
              "approximation to the true solution'; the SMO formulation needs no\n"
              "unrolling at all.\n\n");
}

void BM_UnrolledAnalysis(benchmark::State& state) {
  const Circuit c = long_ring(8, 60.0);
  const ClockSchedule sch = symmetric_schedule(2, 150.0);
  const int nc = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto u = baselines::unrolled_analysis(c, sch, nc);
    benchmark::DoNotOptimize(u);
  }
  state.SetLabel("n_c=" + std::to_string(nc));
}
BENCHMARK(BM_UnrolledAnalysis)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_ExactFixpointAnalysis(benchmark::State& state) {
  const Circuit c = long_ring(8, 60.0);
  const ClockSchedule sch = symmetric_schedule(2, 150.0);
  for (auto _ : state) {
    auto rep = sta::check_schedule(c, sch);
    benchmark::DoNotOptimize(rep);
  }
}
BENCHMARK(BM_ExactFixpointAnalysis);

}  // namespace

int main(int argc, char** argv) {
  print_unrolling_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
