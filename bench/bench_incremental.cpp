// Cold vs warm re-analysis benchmark for the incremental AnalysisSession.
//
// Scenario: a designer (or the shrinker, or a sensitivity sweep) repeatedly
// nudges one combinational delay and re-checks the schedule. The cold
// engine rebuilds the TimingView and iterates eq. (17) from zero per edit;
// the session patches the view in place and warm-starts the fixpoint from
// the previous departures, seeded with just the dirty edge. Both sides run
// the identical monotone delay ramp (each edit increases the delay, so
// every warm analysis is eligible) and the reports are compared bit-for-bit
// along the way — the speedup only counts if the answers are IDENTICAL.
//
// Writes BENCH_incremental.json (override with --out <path>). --small
// shrinks the edit counts for CI smoke runs; --check additionally gates the
// acceptance criterion (warm >= 5x cold on the GaAs-sized case, all cases
// bit-identical) with a nonzero exit.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "base/table.h"
#include "baselines/binary_search.h"
#include "baselines/edge_triggered.h"
#include "circuits/gaas.h"
#include "netlist/extract.h"
#include "netlist/generators.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/stats.h"
#include "opt/mlp.h"
#include "sta/analysis.h"
#include "sta/session.h"

using namespace mintc;

namespace {

bool reports_identical(const sta::TimingReport& a, const sta::TimingReport& b) {
  if (a.feasible != b.feasible || a.schedule_ok != b.schedule_ok ||
      a.converged != b.converged || a.setup_ok != b.setup_ok || a.hold_ok != b.hold_ok) {
    return false;
  }
  if (a.elements.size() != b.elements.size()) return false;
  for (size_t i = 0; i < a.elements.size(); ++i) {
    if (a.elements[i].departure != b.elements[i].departure) return false;
    if (a.elements[i].arrival != b.elements[i].arrival) return false;
    if (a.elements[i].setup_slack != b.elements[i].setup_slack) return false;
    if (a.elements[i].hold_slack != b.elements[i].hold_slack) return false;
  }
  return a.worst_setup_slack == b.worst_setup_slack &&
         a.worst_setup_element == b.worst_setup_element &&
         a.worst_hold_slack == b.worst_hold_slack &&
         a.worst_hold_element == b.worst_hold_element;
}

struct CaseResult {
  std::string name;
  int elements = 0;
  int edges = 0;
  int edits = 0;
  double cold_seconds = 0.0;  // per-edit, min over reps
  double warm_seconds = 0.0;
  double speedup = 0.0;
  bool bit_identical = true;
  long warm_hits = 0;
  long cold_fallbacks = 0;
};

Circuit make_datapath(int bits, int stages) {
  netlist::DatapathConfig cfg;
  cfg.bits = bits;
  cfg.stages = stages;
  cfg.num_phases = 2;
  const auto circuit = netlist::extract_timing_model(netlist::make_pipelined_datapath(cfg));
  if (!circuit) {
    std::fprintf(stderr, "extraction failed: %s\n", circuit.error().to_string().c_str());
    std::exit(1);
  }
  return *circuit;
}

// The edit ramp: path `p` takes delay d0 + k*step for a global, ever-
// increasing k, so repeated timing reps stay monotone (warm-eligible) and
// never revisit a value. The total excursion stays well inside the
// schedule's 25% slack.
struct Ramp {
  int path = 0;
  double d0 = 0.0;
  double step = 0.0;
  long k = 0;

  double next() { return d0 + step * static_cast<double>(++k); }
};

CaseResult run_case(const std::string& name, const Circuit& circuit,
                    const ClockSchedule& schedule, int edits, int reps, int check_every) {
  sta::AnalysisOptions options;
  options.check_hold = true;

  CaseResult res;
  res.name = name;
  res.elements = circuit.num_elements();
  res.edges = circuit.num_paths();
  res.edits = edits;

  Ramp ramp;
  ramp.d0 = circuit.path(ramp.path).delay;
  // Keep the whole ramp (verification + all timing reps) under ~2% growth.
  const long total_edits = static_cast<long>(edits) * (reps + 1) * 2 + edits;
  ramp.step = std::max(ramp.d0, 1.0) * 0.02 / static_cast<double>(total_edits);

  // -- Correctness pass (untimed): every `check_every`th edit, compare the
  //    session's warm report against a from-scratch check_schedule.
  sta::AnalysisSession session(circuit, schedule, options);
  session.analyze();
  Circuit scratch = circuit;
  for (int e = 0; e < edits; ++e) {
    const double d = ramp.next();
    session.set_path_delay(ramp.path, d);
    const sta::TimingReport& warm = session.analyze();
    if (e % check_every == 0) {
      scratch.set_path_delay(ramp.path, d);
      if (!reports_identical(warm, sta::check_schedule(scratch, schedule, options))) {
        res.bit_identical = false;
      }
    }
  }

  // -- Timing: identical edit streams, cold vs warm, min-of-reps.
  for (int r = 0; r < reps; ++r) {
    scratch = circuit;
    const StageTimer cold_timer;
    for (int e = 0; e < edits; ++e) {
      scratch.set_path_delay(ramp.path, ramp.next());
      const sta::TimingReport rep = sta::check_schedule(scratch, schedule, options);
      if (!rep.converged) res.bit_identical = false;  // ramp escaped the slack
    }
    const double cold = cold_timer.seconds() / edits;
    if (r == 0 || cold < res.cold_seconds) res.cold_seconds = cold;

    const StageTimer warm_timer;
    for (int e = 0; e < edits; ++e) {
      session.set_path_delay(ramp.path, ramp.next());
      session.analyze();
    }
    const double warm = warm_timer.seconds() / edits;
    if (r == 0 || warm < res.warm_seconds) res.warm_seconds = warm;
  }
  res.speedup = res.cold_seconds / res.warm_seconds;
  res.warm_hits = session.counters().warm_hits;
  res.cold_fallbacks = session.counters().cold_fallbacks;
  return res;
}

void write_json(const std::vector<CaseResult>& cases, const std::string& path, bool small) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"incremental\",\n  \"mode\": \"%s\",\n  \"cases\": [\n",
               small ? "small" : "full");
  for (size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"elements\": %d, \"edges\": %d, \"edits\": %d,\n"
                 "     \"cold_seconds_per_edit\": %.6e, \"warm_seconds_per_edit\": %.6e,\n"
                 "     \"speedup\": %.3f, \"bit_identical\": %s,\n"
                 "     \"warm_hits\": %ld, \"cold_fallbacks\": %ld}%s\n",
                 c.name.c_str(), c.elements, c.edges, c.edits, c.cold_seconds,
                 c.warm_seconds, c.speedup, c.bit_identical ? "true" : "false", c.warm_hits,
                 c.cold_fallbacks, i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // Embed the process metrics so the artifact carries the session counters
  // (session.warm_hits / invalidations / cold_fallbacks) and fixpoint
  // accounting alongside the timings.
  const std::string metrics = obs::metrics_json(obs::MetricsRegistry::instance().snapshot());
  std::fprintf(f, "  \"metrics\": %s\n}\n", metrics.c_str());
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  bool check = false;
  std::string out = "BENCH_incremental.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--small] [--check] [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  std::vector<CaseResult> results;

  // The paper's GaAs datapath at a schedule with 25% slack over Tc*.
  {
    const Circuit gaas = circuits::gaas_datapath();
    const auto mlp = opt::minimize_cycle_time(gaas);
    if (!mlp) {
      std::fprintf(stderr, "GaAs MLP failed: %s\n", mlp.error().to_string().c_str());
      return 1;
    }
    results.push_back(run_case("gaas", gaas, mlp->schedule.scaled(1.25), small ? 400 : 2000,
                               small ? 3 : 5, 10));
  }

  // Synthetic pipelined datapaths (netlist-extracted), CPM-slack schedule.
  struct Spec {
    const char* name;
    int bits, stages, edits, reps;
  };
  std::vector<Spec> specs;
  if (small) {
    specs = {{"datapath-8x32", 8, 32, 60, 2}};
  } else {
    specs = {{"datapath-8x32", 8, 32, 200, 3}, {"datapath-16x64", 16, 64, 100, 3}};
  }
  for (const Spec& s : specs) {
    const Circuit circuit = make_datapath(s.bits, s.stages);
    const double tc = 1.2 * std::max(1.0, baselines::edge_triggered_cpm(circuit).cycle);
    const ClockSchedule schedule =
        baselines::ClockShape::symmetric(circuit.num_phases()).at_cycle(tc);
    results.push_back(run_case(s.name, circuit, schedule, s.edits, s.reps, 10));
  }

  std::printf("== incremental re-analysis: cold check_schedule vs warm AnalysisSession ==\n");
  TextTable table(
      {"circuit", "elements", "edges", "cold us/edit", "warm us/edit", "speedup", "identical"});
  for (const CaseResult& r : results) {
    char cbuf[32], wbuf[32], sbuf[32];
    std::snprintf(cbuf, sizeof cbuf, "%.2f", r.cold_seconds * 1e6);
    std::snprintf(wbuf, sizeof wbuf, "%.2f", r.warm_seconds * 1e6);
    std::snprintf(sbuf, sizeof sbuf, "%.2fx", r.speedup);
    table.add_row({r.name, std::to_string(r.elements), std::to_string(r.edges), cbuf, wbuf,
                   sbuf, r.bit_identical ? "yes" : "NO"});
  }
  std::printf("%s\n", table.to_string().c_str());

  write_json(results, out, small);

  int rc = 0;
  for (const CaseResult& r : results) {
    if (!r.bit_identical) {
      std::fprintf(stderr, "FAIL: %s warm reports differ from cold ones\n", r.name.c_str());
      rc = 1;
    }
  }
  if (check) {
    // Acceptance gate: warm re-analysis after a single delay edit on the
    // GaAs circuit must be at least 5x faster than a cold one.
    if (results[0].speedup < 5.0) {
      std::fprintf(stderr, "FAIL: gaas warm speedup %.2fx below the 5x acceptance gate\n",
                   results[0].speedup);
      rc = 1;
    }
  }
  return rc;
}
