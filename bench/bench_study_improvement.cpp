// Extended study (beyond the paper's own tables): how much cycle time does
// exact latch-aware optimization buy, across a population of synthetic
// circuits? For each instance we compare the MLP optimum against the
// edge-triggered CPM bound, Jouppi one-pass borrowing, and the symmetric-
// clock NRIP reconstruction, and report the distribution of the gaps.
// This quantifies the paper's core pitch — heuristics "may not produce the
// minimum cycle time" — in aggregate rather than on single examples.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "base/strings.h"
#include "base/table.h"
#include "baselines/binary_search.h"
#include "baselines/edge_triggered.h"
#include "circuits/synthetic.h"
#include "opt/mlp.h"

using namespace mintc;

namespace {

struct GapStats {
  std::vector<double> gaps;  // (baseline/optimal - 1)

  void add(double baseline, double optimal) {
    if (optimal > 0.0) gaps.push_back(baseline / optimal - 1.0);
  }
  double quantile(double q) {
    if (gaps.empty()) return 0.0;
    std::sort(gaps.begin(), gaps.end());
    const size_t i =
        static_cast<size_t>(q * static_cast<double>(gaps.size() - 1) + 0.5);
    return gaps[i];
  }
  double mean() const {
    double s = 0.0;
    for (const double g : gaps) s += g;
    return gaps.empty() ? 0.0 : s / static_cast<double>(gaps.size());
  }
};

void print_study() {
  std::printf("== study: suboptimality of heuristics over 40 synthetic circuits ==\n");
  GapStats nrip_stats, jouppi_stats, cpm_stats;
  int instances = 0;
  for (const int k : {2, 3}) {
    for (uint64_t seed = 1; seed <= 20; ++seed) {
      circuits::SyntheticParams p;
      p.num_phases = k;
      p.num_stages = 3 * k;
      p.latches_per_stage = 3;
      p.fanin = 2;
      const Circuit c = circuits::synthetic_circuit(p, seed);
      const auto mlp = opt::minimize_cycle_time(c);
      if (!mlp) continue;
      ++instances;
      nrip_stats.add(baselines::nrip_reconstruction(c).cycle, mlp->min_cycle);
      jouppi_stats.add(baselines::jouppi_borrowing(c).cycle, mlp->min_cycle);
      cpm_stats.add(baselines::edge_triggered_cpm(c).cycle, mlp->min_cycle);
    }
  }
  TextTable table({"baseline", "mean gap", "median gap", "p90 gap", "max gap"});
  const auto pct = [](double v) { return fmt_time(100.0 * v, 1) + "%"; };
  const auto row = [&](const char* name, GapStats& s) {
    table.add_row({name, pct(s.mean()), pct(s.quantile(0.5)), pct(s.quantile(0.9)),
                   pct(s.quantile(1.0))});
  };
  row("NRIP (symmetric clock)", nrip_stats);
  row("Jouppi 1-pass borrowing", jouppi_stats);
  row("edge-triggered CPM", cpm_stats);
  std::printf("instances: %d (balanced stage delays)\n%s\n", instances,
              table.to_string().c_str());

  // Second population: one dominant stage per loop — the regime where fixed
  // symmetric clocks lose (example 2's situation). Uniform random delays
  // almost never produce the required skew (a stage exceeding its slot by
  // more than the rest of the loop can donate), so the dominance is made
  // explicit: boost one stage of each ring by 8x.
  GapStats nrip_unb;
  int unb_instances = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    circuits::SyntheticParams p;
    p.num_phases = 3;
    p.num_stages = 3;
    p.latches_per_stage = 1;
    p.fanin = 1;
    p.extra_long_edges = 0;
    p.min_delay = 2.0;
    p.max_delay = 20.0;
    Circuit c = circuits::synthetic_circuit(p, 1000 + seed);
    const int dominant = static_cast<int>(seed % static_cast<uint64_t>(c.num_paths()));
    c.set_path_delay(dominant, c.path(dominant).delay * 8.0);
    const auto mlp = opt::minimize_cycle_time(c);
    if (!mlp) continue;
    ++unb_instances;
    nrip_unb.add(baselines::nrip_reconstruction(c).cycle, mlp->min_cycle);
  }
  TextTable table2({"baseline", "mean gap", "median gap", "p90 gap", "max gap"});
  TextTable* t2 = &table2;
  t2->add_row({"NRIP, unbalanced delays", pct(nrip_unb.mean()), pct(nrip_unb.quantile(0.5)),
               pct(nrip_unb.quantile(0.9)), pct(nrip_unb.quantile(1.0))});
  std::printf("instances: %d (unbalanced stage delays)\n%s\n", unb_instances,
              t2->to_string().c_str());
  std::printf("finding: on *balanced* random circuits the symmetric clock is nearly\n"
              "optimal; the exact LP's advantage concentrates where stage delays are\n"
              "unbalanced — which is precisely the paper's example-2 scenario.\n"
              "every gap is >= 0 by construction (MLP is exact).\n\n");
}

void BM_FullComparison(benchmark::State& state) {
  circuits::SyntheticParams p;
  p.num_phases = 2;
  p.num_stages = 6;
  p.latches_per_stage = 3;
  const Circuit c = circuits::synthetic_circuit(p, 99);
  for (auto _ : state) {
    auto a = opt::minimize_cycle_time(c);
    auto b = baselines::nrip_reconstruction(c);
    benchmark::DoNotOptimize(a);
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_FullComparison);

}  // namespace

int main(int argc, char** argv) {
  print_study();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
