#!/usr/bin/env sh
# Regenerate the committed bench baselines that CI's bench_compare gate
# diffs against (bench/bench_compare.cpp).
#
# Run from the repo root after an INTENTIONAL performance change, commit the
# resulting JSON together with the change, and say why in the message:
#
#   ./bench/baselines/refresh.sh [build-dir]     # default: build
#
# The baselines are recorded with --small (the same shape CI runs). Absolute
# times in them are machine-specific and never gated across machines — the
# CI gate covers the dimensionless ratio metrics (speedups, throughput
# rates), which travel. To gate times too, e.g. in a same-host A/B check:
#
#   ./build/bench/bench_compare old.json new.json --time-tolerance 0.25
set -eu

BUILD="${1:-build}"
HERE="$(dirname "$0")"

cmake --build "$BUILD" -j --target \
  bench_serve bench_view_fixpoint bench_incremental bench_parallel_fixpoint \
  bench_compare

"$BUILD/bench/bench_serve" --small --check --out "$HERE/BENCH_serve.json"
"$BUILD/bench/bench_serve" --overhead-check --small --out "$HERE/BENCH_overhead.json"
"$BUILD/bench/bench_view_fixpoint" --small --out "$HERE/BENCH_view.json"
"$BUILD/bench/bench_incremental" --small --check --out "$HERE/BENCH_incremental.json"
"$BUILD/bench/bench_parallel_fixpoint" --small --out "$HERE/BENCH_parallel.json"

echo "baselines refreshed under $HERE — review the diff before committing:"
for f in BENCH_serve BENCH_overhead BENCH_view BENCH_incremental BENCH_parallel; do
  echo "  $f.json"
done
