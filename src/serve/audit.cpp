#include "serve/audit.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "base/log.h"
#include "obs/export.h"

namespace mintc::serve {

std::string audit_json_line(const AuditRecord& r) {
  char num[64];
  std::string out = "{\"t\": ";
  std::snprintf(num, sizeof num, "%.3f", r.t_seconds);
  out += num;
  out += ", \"trace\": \"" + obs::json_escape(r.trace) + "\"";
  out += ", \"verb\": \"" + obs::json_escape(r.verb) + "\"";
  out += ", \"circuit\": \"" + obs::json_escape(r.circuit) + "\"";
  out += std::string(", \"ok\": ") + (r.ok ? "true" : "false");
  out += std::string(", \"cached\": ") + (r.cached ? "true" : "false");
  std::snprintf(num, sizeof num, ", \"us\": %.1f", r.wall_us);
  out += num;
  std::snprintf(num, sizeof num, ", \"cpu_us\": %" PRId64, r.cpu_us);
  out += num;
  std::snprintf(num, sizeof num, ", \"relaxations\": %" PRId64, r.relaxations);
  out += num;
  std::snprintf(num, sizeof num, ", \"sweeps\": %" PRId64, r.sweeps);
  out += num;
  std::snprintf(num, sizeof num, ", \"solves\": %" PRId64, r.solves);
  out += num;
  out += "}";
  return out;
}

AuditLog::AuditLog(std::string path, std::size_t rotate_bytes)
    : path_(std::move(path)),
      rotate_bytes_(std::max<std::size_t>(rotate_bytes == 0 ? (8u << 20) : rotate_bytes,
                                          4096)) {
  const std::lock_guard<std::mutex> lk(mu_);
  open_locked();
}

AuditLog::~AuditLog() {
  const std::lock_guard<std::mutex> lk(mu_);
  if (file_ != nullptr) std::fclose(file_);
}

void AuditLog::open_locked() {
  file_ = std::fopen(path_.c_str(), "a");
  if (file_ == nullptr) {
    log_warn() << "serve: cannot open audit log '" << path_ << "'";
    bytes_ = 0;
    return;
  }
  // Resume the size accounting of an existing file across restarts.
  long pos = 0;
  if (std::fseek(file_, 0, SEEK_END) == 0 && (pos = std::ftell(file_)) > 0) {
    bytes_ = static_cast<std::size_t>(pos);
  } else {
    bytes_ = 0;
  }
}

void AuditLog::rotate_locked() {
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
  const std::string previous = path_ + ".1";
  std::remove(previous.c_str());
  if (std::rename(path_.c_str(), previous.c_str()) != 0) {
    log_warn() << "serve: audit rotation rename failed for '" << path_ << "'";
  }
  ++rotations_;
  open_locked();
}

void AuditLog::append(const AuditRecord& record) {
  const std::string line = audit_json_line(record) + "\n";
  const std::lock_guard<std::mutex> lk(mu_);
  if (file_ != nullptr && bytes_ + line.size() > rotate_bytes_ && bytes_ > 0) {
    rotate_locked();
  }
  if (file_ == nullptr) {
    open_locked();  // retry once per record; drop on persistent failure
    if (file_ == nullptr) return;
  }
  if (std::fwrite(line.data(), 1, line.size(), file_) == line.size()) {
    std::fflush(file_);
    bytes_ += line.size();
    ++written_;
  }
}

std::int64_t AuditLog::written() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return written_;
}

std::int64_t AuditLog::rotations() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return rotations_;
}

}  // namespace mintc::serve
