#include "serve/cache.h"

#include <utility>

#include "obs/trace.h"

namespace mintc::serve {

namespace {

obs::MetricsRegistry& registry() { return obs::MetricsRegistry::instance(); }

}  // namespace

ResultCache::ResultCache(size_t byte_budget)
    : budget_(byte_budget),
      hits_metric_(registry().counter("cache.hits")),
      misses_metric_(registry().counter("cache.misses")),
      evictions_metric_(registry().counter("cache.evictions")),
      invalidations_metric_(registry().counter("cache.invalidations")),
      bytes_metric_(registry().gauge("cache.bytes")),
      entries_metric_(registry().gauge("cache.entries")) {
  stats_.budget = budget_;
}

std::optional<std::string> ResultCache::get(std::uint64_t key) {
  std::optional<std::string> hit;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh: move to front
      ++stats_.hits;
      hits_metric_.inc();
      hit = it->second->value;
    } else {
      ++stats_.misses;
      misses_metric_.inc();
    }
  }
  // Mark the lookup in a sampled request's trace (outside the cache lock).
  obs::Tracer& tracer = obs::Tracer::instance();
  if (tracer.enabled()) {
    tracer.instant(hit ? "cache.hit" : "cache.miss", "serve");
  }
  return hit;
}

void ResultCache::put(std::uint64_t key, const std::string& circuit_key,
                      std::uint64_t generation, std::string value) {
  const size_t charged = value.size() + kEntryOverhead;
  const std::lock_guard<std::mutex> lk(mu_);
  if (charged > budget_) return;  // cannot fit even alone (covers budget 0)
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Same content key: refresh the tag and LRU position; the value is
    // necessarily identical (content-addressed), so keep the old bytes.
    it->second->circuit_key = circuit_key;
    it->second->generation = generation;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (bytes_ + charged > budget_ && !lru_.empty()) {
    ++stats_.evictions;
    evictions_metric_.inc();
    drop_locked(std::prev(lru_.end()));
  }
  lru_.push_front(Entry{key, circuit_key, generation, std::move(value), charged});
  index_[key] = lru_.begin();
  bytes_ += charged;
  stats_.bytes = bytes_;
  stats_.entries = lru_.size();
  bytes_metric_.set(static_cast<double>(bytes_));
  entries_metric_.set(static_cast<double>(lru_.size()));
}

void ResultCache::invalidate(const std::string& circuit_key,
                             std::uint64_t current_generation) {
  const std::lock_guard<std::mutex> lk(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    const auto next = std::next(it);
    if (it->circuit_key == circuit_key && it->generation < current_generation) {
      ++stats_.invalidations;
      invalidations_metric_.inc();
      drop_locked(it);
    }
    it = next;
  }
}

void ResultCache::clear() {
  const std::lock_guard<std::mutex> lk(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  stats_.bytes = 0;
  stats_.entries = 0;
  bytes_metric_.set(0.0);
  entries_metric_.set(0.0);
}

ResultCache::Stats ResultCache::stats() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void ResultCache::drop_locked(std::list<Entry>::iterator it) {
  bytes_ -= it->charged;
  index_.erase(it->key);
  lru_.erase(it);
  stats_.bytes = bytes_;
  stats_.entries = lru_.size();
  bytes_metric_.set(static_cast<double>(bytes_));
  entries_metric_.set(static_cast<double>(lru_.size()));
}

}  // namespace mintc::serve
