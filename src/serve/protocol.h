// Wire protocol: line-delimited JSON frames.
//
// One request per line, one response per line, UTF-8, LF-terminated:
//
//   -> {"id": 7, "verb": "analyze", "circuit": "cpu0"}
//   <- {"id": 7, "ok": true, "cached": false, "result": {...}}
//   <- {"id": 8, "ok": false, "error": {"kind": "not_loaded", "message": "..."}}
//
// Framing rules (all tested in serve protocol/robustness suites):
//   * `id` is optional and echoed verbatim (number or string); pipelining
//     clients use it to match out-of-order responses — the server may
//     reorder responses freely across a connection's in-flight requests.
//   * A frame longer than max_frame_bytes without a newline is fatal for
//     the connection: the reader reports overflow, the server sends a final
//     `frame_too_large` error and closes (there is no way to resync).
//   * A complete line that fails to parse (malformed JSON, not an object,
//     missing verb) gets an error RESPONSE but keeps the connection: line
//     framing self-resynchronizes at the next newline.
//   * Responses never contain raw newlines (obs::json_escape escapes them),
//     so a response is always exactly one line.
//
// Error kinds mirror mintc::ErrorKind spellings plus the protocol-level
// "not_loaded", "unknown_verb" and "frame_too_large".
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "base/error.h"
#include "obs/trace.h"
#include "serve/json.h"

namespace mintc::serve {

/// Default per-frame size cap; generous enough for a million-path .lct
/// payload while bounding a hostile client's buffer growth.
inline constexpr size_t kDefaultMaxFrameBytes = 32u << 20;

/// Incremental line extractor with an overflow cap. feed() appends raw
/// bytes; next_line() yields complete lines (without the '\n', a trailing
/// '\r' is stripped). Once the buffered partial line exceeds `max_bytes`
/// overflowed() latches and the stream must be abandoned.
class FrameReader {
 public:
  explicit FrameReader(size_t max_bytes = kDefaultMaxFrameBytes) : max_bytes_(max_bytes) {}

  void feed(const char* data, size_t n);
  std::optional<std::string> next_line();
  bool overflowed() const { return overflowed_; }
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  size_t max_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;  // prefix already handed out
  bool overflowed_ = false;
};

/// Decode one request line: must parse as a JSON object with a string
/// "verb". The (optional) id is available on the returned object.
Expected<Json> parse_request(std::string_view line, size_t max_bytes = kDefaultMaxFrameBytes);

/// The optional request "trace" field, decoded. Two spellings:
///
///   "trace": "1f00ba3c9d2e4455"                      — sampled, id in hex
///   "trace": {"id": "1f00ba3c", "sampled": false}    — explicit flag
///
/// The id is 1-16 lower/upper hex digits (a 64-bit trace id), nonzero.
/// Absent field -> {present=false, inactive context}. Malformed, zero, or
/// oversized ids -> kInvalidArgument (the request is rejected rather than
/// silently untraced, so a client's sampling config can't rot unnoticed).
struct TraceField {
  bool present = false;
  obs::TraceContext context;
};

Expected<TraceField> parse_trace_field(const Json& request);

/// 16-char lower-case hex rendering of a trace id (the wire spelling).
std::string trace_id_hex(std::uint64_t trace_id);

/// Response envelopes. `id` is the request's id field (null when absent).
Json ok_response(const Json& id, Json result, bool cached);
Json error_response(const Json& id, std::string_view kind, std::string message);
Json error_response(const Json& id, const Error& error);

/// Envelope -> one wire frame (a single line INCLUDING the trailing '\n').
std::string encode_frame(const Json& response);

}  // namespace mintc::serve
