// ResultCache — the serve layer's rendered-response cache.
//
// Analyses are pure functions of circuit+schedule content, so responses are
// cached under a CONTENT key: the FNV-1a fingerprint chain the tree already
// uses for RunMetadata (AnalysisSession::content_fingerprint covers circuit
// text, schedule and — because derating rewrites the stored delays — the
// corner; the verb and its parameters are mixed in on top). Content keys
// make hits safe by construction: an entry can only be served for a state
// whose analysis is bit-identical to the one that produced it.
//
// Generation-based invalidation bounds the garbage: every entry is tagged
// with (circuit key, session generation at insert). When an edit batch or a
// (re)load bumps a circuit's generation, invalidate() drops that circuit's
// entries from older generations — they could only hit again if the exact
// content recurred (e.g. an undo), and dropping them keeps the LRU list
// from filling with dead states under sustained edit traffic.
//
// Eviction is LRU under a byte budget (value bytes + fixed per-entry
// overhead). Everything is guarded by one mutex — entries are whole
// rendered responses, so the critical sections are map lookups and string
// copies, dwarfed by the analyses they save.
//
// Metrics (always on, registered at construction): cache.hits, cache.misses,
// cache.evictions, cache.invalidations counters and the cache.bytes /
// cache.entries gauges — rendered by the `stats` protocol verb.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"

namespace mintc::serve {

class ResultCache {
 public:
  /// `byte_budget` bounds value bytes + per-entry overhead; 0 disables the
  /// cache entirely (every get misses, put is a no-op) — the cold lane of
  /// bench_serve.
  explicit ResultCache(size_t byte_budget);

  /// The cached value for `key`, refreshing its LRU position.
  std::optional<std::string> get(std::uint64_t key);

  /// Insert (or refresh) `value` under `key`, tagged with the owning
  /// circuit key and its session generation; evicts LRU entries until the
  /// budget holds. Values larger than the whole budget are not stored.
  void put(std::uint64_t key, const std::string& circuit_key, std::uint64_t generation,
           std::string value);

  /// Drop every entry tagged with `circuit_key` and a generation older than
  /// `current_generation` — called when an edit batch / reload bumps the
  /// circuit's generation.
  void invalidate(const std::string& circuit_key, std::uint64_t current_generation);

  /// Drop everything (keeps the budget).
  void clear();

  struct Stats {
    long hits = 0;
    long misses = 0;
    long evictions = 0;      // budget-driven LRU drops
    long invalidations = 0;  // generation-driven drops
    size_t bytes = 0;        // current charged bytes
    size_t entries = 0;
    size_t budget = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::string circuit_key;
    std::uint64_t generation = 0;
    std::string value;
    size_t charged = 0;  // value size + overhead
  };

  // Per-entry bookkeeping overhead charged against the budget (list node,
  // map slots, tags) — keeps thousands of tiny entries from reading as
  // "zero bytes".
  static constexpr size_t kEntryOverhead = 128;

  void drop_locked(std::list<Entry>::iterator it);

  mutable std::mutex mu_;
  size_t budget_;
  size_t bytes_ = 0;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  Stats stats_;

  obs::Counter& hits_metric_;
  obs::Counter& misses_metric_;
  obs::Counter& evictions_metric_;
  obs::Counter& invalidations_metric_;
  obs::Gauge& bytes_metric_;
  obs::Gauge& entries_metric_;
};

}  // namespace mintc::serve
