#include "serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/export.h"

namespace mintc::serve {

namespace {

const Json kNullJson;

}  // namespace

bool Json::has(std::string_view key) const {
  for (const auto& [k, v] : fields_) {
    (void)v;
    if (k == key) return true;
  }
  return false;
}

const Json& Json::get(std::string_view key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key) return v;
  }
  return kNullJson;
}

Json& Json::set(std::string key, Json v) {
  kind_ = Kind::kObject;
  for (auto& [k, old] : fields_) {
    if (k == key) {
      old = std::move(v);
      return old;
    }
  }
  fields_.emplace_back(std::move(key), std::move(v));
  return fields_.back().second;
}

bool Json::operator==(const Json& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull: return true;
    case Kind::kBool: return bool_ == other.bool_;
    case Kind::kNumber:
      // Bit comparison, not ==: the protocol's identity notion is
      // bit-identity (and NaN never parses, so no NaN != NaN surprises).
      return std::memcmp(&num_, &other.num_, sizeof num_) == 0;
    case Kind::kString: return str_ == other.str_;
    case Kind::kArray: return items_ == other.items_;
    case Kind::kObject: return fields_ == other.fields_;
  }
  return false;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return v > 0 ? "1e308" : (v < 0 ? "-1e308" : "0");
  char buf[40];
  // Shortest form that round-trips: probe increasing precision. %.17g
  // always round-trips IEEE-754 binary64; the lower probes just keep the
  // common cases ("4.4", "0.25") human-sized.
  for (const int prec : {15, 16, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void Json::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      out += json_double(num_);
      return;
    case Kind::kString:
      out += '"';
      out += obs::json_escape(str_);
      out += '"';
      return;
    case Kind::kArray:
      out += '[';
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        items_[i].dump_to(out);
      }
      out += ']';
      return;
    case Kind::kObject:
      out += '{';
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (i) out += ',';
        out += '"';
        out += obs::json_escape(fields_[i].first);
        out += "\":";
        fields_[i].second.dump_to(out);
      }
      out += '}';
      return;
  }
}

std::string Json::dump() const {
  std::string out;
  out.reserve(64);
  dump_to(out);
  return out;
}

// ---------------------------------------------------------------- parser --

namespace {

class Parser {
 public:
  Parser(std::string_view text, const JsonParseOptions& options)
      : text_(text), options_(options) {}

  Expected<Json> run() {
    skip_ws();
    Json value;
    if (Error* e = parse_value(value, 0)) return std::move(*e);
    skip_ws();
    if (pos_ != text_.size()) return std::move(*fail("trailing data after JSON value"));
    return value;
  }

 private:
  // Errors are returned through an owned slot so the recursive descent can
  // use plain pointers as "failed?" without std::optional ceremony.
  Error* fail(const std::string& what) {
    error_ = make_error(ErrorKind::kInvalidArgument,
                        "JSON parse error at byte " + std::to_string(pos_) + ": " + what);
    return &error_;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool eat_word(const char* w) {
    const size_t n = std::strlen(w);
    if (text_.substr(pos_, n) == w) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Error* parse_value(Json& out, size_t depth) {
    if (depth > options_.max_depth) return fail("nesting deeper than the limit");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        std::string s;
        if (Error* e = parse_string(s)) return e;
        out = Json(std::move(s));
        return nullptr;
      }
      case 't':
        if (eat_word("true")) {
          out = Json(true);
          return nullptr;
        }
        return fail("expected 'true'");
      case 'f':
        if (eat_word("false")) {
          out = Json(false);
          return nullptr;
        }
        return fail("expected 'false'");
      case 'n':
        if (eat_word("null")) {
          out = Json();
          return nullptr;
        }
        return fail("expected 'null'");
      default:
        return parse_number(out);
    }
  }

  Error* parse_object(Json& out, size_t depth) {
    ++pos_;  // '{'
    out = Json::object();
    skip_ws();
    if (eat('}')) return nullptr;
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected object key");
      std::string key;
      if (Error* e = parse_string(key)) return e;
      skip_ws();
      if (!eat(':')) return fail("expected ':' after object key");
      skip_ws();
      Json value;
      if (Error* e = parse_value(value, depth + 1)) return e;
      out.set(std::move(key), std::move(value));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return nullptr;
      return fail("expected ',' or '}' in object");
    }
  }

  Error* parse_array(Json& out, size_t depth) {
    ++pos_;  // '['
    out = Json::array();
    skip_ws();
    if (eat(']')) return nullptr;
    for (;;) {
      skip_ws();
      Json value;
      if (Error* e = parse_value(value, depth + 1)) return e;
      out.push(std::move(value));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return nullptr;
      return fail("expected ',' or ']' in array");
    }
  }

  Error* parse_string(std::string& out) {
    ++pos_;  // opening '"'
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return nullptr;
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (Error* e = parse_hex4(cp)) return e;
          if (cp >= 0xD800 && cp < 0xDC00) {
            // Surrogate pair: require the low half.
            if (!eat('\\') || !eat('u')) return fail("lone high surrogate");
            unsigned lo = 0;
            if (Error* e = parse_hex4(lo)) return e;
            if (lo < 0xDC00 || lo > 0xDFFF) return fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: return fail("invalid escape sequence");
      }
    }
    return fail("unterminated string");
  }

  Error* parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<unsigned>(c - 'A' + 10);
      else return fail("invalid \\u escape digit");
    }
    return nullptr;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Error* parse_number(Json& out) {
    const size_t start = pos_;
    if (eat('-')) {
    }
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      pos_ = start;
      return fail("expected a JSON value");
    }
    // JSON int grammar: a single 0, or 1-9 followed by digits — "01" is
    // malformed (strtod would accept it, so reject it here).
    const size_t int_start = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (text_[int_start] == '0' && pos_ - int_start > 1) {
      pos_ = int_start;
      return fail("leading zeros are not allowed");
    }
    if (eat('.')) {
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("digit required after decimal point");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("digit required in exponent");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    // The slice is a valid JSON number by construction; strtod can only
    // overflow to +-inf, which we reject to keep the no-non-finite invariant.
    const std::string slice(text_.substr(start, pos_ - start));
    const double v = std::strtod(slice.c_str(), nullptr);
    if (!std::isfinite(v)) return fail("number out of double range");
    out = Json(v);
    return nullptr;
  }

  std::string_view text_;
  JsonParseOptions options_;
  size_t pos_ = 0;
  Error error_;
};

}  // namespace

Expected<Json> parse_json(std::string_view text, const JsonParseOptions& options) {
  return Parser(text, options).run();
}

}  // namespace mintc::serve
