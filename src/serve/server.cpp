#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace mintc::serve {

namespace {

obs::MetricsRegistry& registry() { return obs::MetricsRegistry::instance(); }

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

SocketServer::Conn::~Conn() { ::close(fd); }

void SocketServer::Conn::write_frame(const std::string& frame) {
  const std::lock_guard<std::mutex> lk(write_mu);
  if (dead.load(std::memory_order_relaxed)) return;
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(fd, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR)) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // The socket is nonblocking and the peer is slow: block here with
      // poll until writable (bounded by the peer's lifetime — a dead peer
      // turns the next send into an error).
      struct pollfd pfd{fd, POLLOUT, 0};
      if (::poll(&pfd, 1, 30000) <= 0) {
        dead.store(true, std::memory_order_relaxed);
        return;
      }
      continue;
    }
    dead.store(true, std::memory_order_relaxed);
    return;
  }
}

SocketServer::SocketServer(TimingService& service, ServerConfig config)
    : service_(service),
      config_(std::move(config)),
      pool_(config_.num_threads),
      queue_depth_metric_(registry().gauge("serve.queue_depth")),
      connections_metric_(registry().counter("serve.connections")) {}

SocketServer::~SocketServer() { stop(); }

Expected<bool> SocketServer::start() {
  if (started_) return make_error(ErrorKind::kInvalidArgument, "server already started");

  if (!config_.unix_path.empty()) {
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (config_.unix_path.size() >= sizeof(addr.sun_path)) {
      return make_error(ErrorKind::kInvalidArgument,
                        "unix socket path too long: " + config_.unix_path);
    }
    std::strncpy(addr.sun_path, config_.unix_path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(config_.unix_path.c_str());
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0 ||
        ::bind(unix_fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(unix_fd_, 128) != 0 || !set_nonblocking(unix_fd_)) {
      const std::string why = std::strerror(errno);
      close_fd(unix_fd_);
      return make_error(ErrorKind::kIo, "cannot listen on " + config_.unix_path + ": " + why);
    }
  }

  if (config_.tcp_port >= 0) {
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(config_.tcp_port));
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    const int one = 1;
    if (tcp_fd_ >= 0) {
      ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    }
    if (tcp_fd_ < 0 ||
        ::bind(tcp_fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(tcp_fd_, 128) != 0 || !set_nonblocking(tcp_fd_)) {
      const std::string why = std::strerror(errno);
      close_fd(tcp_fd_);
      close_fd(unix_fd_);
      return make_error(ErrorKind::kIo, "cannot listen on loopback TCP port " +
                                            std::to_string(config_.tcp_port) + ": " + why);
    }
    struct sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(tcp_fd_, reinterpret_cast<struct sockaddr*>(&bound), &len) == 0) {
      tcp_port_ = static_cast<int>(ntohs(bound.sin_port));
    }
  }

  if (unix_fd_ < 0 && tcp_fd_ < 0) {
    return make_error(ErrorKind::kInvalidArgument,
                      "no listener configured (set unix_path and/or tcp_port)");
  }
  if (::pipe(wake_pipe_) != 0) {
    close_fd(unix_fd_);
    close_fd(tcp_fd_);
    return make_error(ErrorKind::kIo, "cannot create wake pipe");
  }
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);

  running_.store(true, std::memory_order_release);
  started_ = true;
  io_thread_ = std::thread([this] { io_loop(); });

  // Gauges only this layer can answer, refreshed when the service renders a
  // `metrics` scrape: pool shape/throughput and the dispatch queue depth.
  service_.set_runtime_sampler([this] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
    const int threads = pool_.num_threads();
    reg.gauge("pool.threads").set(static_cast<double>(threads));
    reg.gauge("pool.busy").set(static_cast<double>(pool_.busy_count()));
    reg.gauge("pool.utilization")
        .set(threads > 0 ? static_cast<double>(pool_.busy_count()) / threads : 0.0);
    reg.gauge("pool.executed").set(static_cast<double>(pool_.executed_count()));
    reg.gauge("pool.steals").set(static_cast<double>(pool_.steal_count()));
    reg.gauge("serve.queue_depth")
        .set(static_cast<double>(queue_depth_.load(std::memory_order_relaxed)));
  });
  // The status page's worker table: per-worker execution/CPU/queue state
  // straight from the dispatch pool.
  service_.set_worker_stats_provider([this] { return pool_.worker_stats(); });
  return true;
}

void SocketServer::stop() {
  if (!started_) return;
  service_.set_runtime_sampler(nullptr);  // both hooks capture `this`
  service_.set_worker_stats_provider(nullptr);
  running_.store(false, std::memory_order_release);
  wake_io();
  if (io_thread_.joinable()) io_thread_.join();
  // Drain OUR in-flight requests (group-scoped: a shared pool would keep
  // running other traffic and ThreadPool::wait() would never return).
  inflight_.wait();
  conns_.clear();  // closes every remaining connection fd
  close_fd(unix_fd_);
  close_fd(tcp_fd_);
  close_fd(wake_pipe_[0]);
  close_fd(wake_pipe_[1]);
  if (!config_.unix_path.empty()) ::unlink(config_.unix_path.c_str());
  started_ = false;
}

void SocketServer::wake_io() {
  if (wake_pipe_[1] >= 0) {
    const char byte = 'w';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void SocketServer::io_loop() {
  std::vector<struct pollfd> pfds;
  std::vector<int> fds;  // parallel to pfds: fd identity for the conn map
  while (running_.load(std::memory_order_acquire)) {
    pfds.clear();
    fds.clear();
    pfds.push_back({wake_pipe_[0], POLLIN, 0});
    fds.push_back(wake_pipe_[0]);
    if (unix_fd_ >= 0) {
      pfds.push_back({unix_fd_, POLLIN, 0});
      fds.push_back(unix_fd_);
    }
    if (tcp_fd_ >= 0) {
      pfds.push_back({tcp_fd_, POLLIN, 0});
      fds.push_back(tcp_fd_);
    }
    for (const auto& [fd, conn] : conns_) {
      pfds.push_back({fd, POLLIN, 0});
      fds.push_back(fd);
    }

    const int ready = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 500);
    if (!running_.load(std::memory_order_acquire)) break;
    if (ready <= 0) {
      // Timeout round: reap connections a worker marked dead.
      for (auto it = conns_.begin(); it != conns_.end();) {
        it = it->second->dead.load(std::memory_order_relaxed) ? conns_.erase(it)
                                                              : std::next(it);
      }
      continue;
    }

    for (size_t i = 0; i < pfds.size(); ++i) {
      const short revents = pfds[i].revents;
      if (revents == 0) continue;
      const int fd = fds[i];
      if (fd == wake_pipe_[0]) {
        char buf[64];
        while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (fd == unix_fd_ || fd == tcp_fd_) {
        accept_ready(fd);
        continue;
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      const bool keep = (revents & (POLLERR | POLLNVAL)) == 0 && drain_readable(it->second);
      if (!keep || it->second->dead.load(std::memory_order_relaxed)) {
        conns_.erase(it);  // workers holding the shared_ptr finish safely
      }
    }
  }
}

void SocketServer::accept_ready(int listen_fd) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN (or transient error): back to poll
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, std::make_shared<Conn>(fd, config_.max_frame_bytes));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_metric_.inc();
  }
}

bool SocketServer::drain_readable(const std::shared_ptr<Conn>& conn) {
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->reader.feed(buf, static_cast<size_t>(n));
      if (conn->reader.overflowed()) {
        // Unrecoverable: there is no line boundary to resync at. One final
        // error, then hang up.
        conn->write_frame(encode_frame(error_response(
            Json(), "frame_too_large",
            "request exceeded the " + std::to_string(config_.max_frame_bytes) +
                "-byte frame cap without a newline")));
        ::shutdown(conn->fd, SHUT_RDWR);
        return false;
      }
      while (std::optional<std::string> line = conn->reader.next_line()) {
        dispatch_line(conn, std::move(*line));
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;  // peer closed (n == 0) or hard error
  }
}

void SocketServer::dispatch_line(std::shared_ptr<Conn> conn, std::string line) {
  queue_depth_metric_.set(
      static_cast<double>(queue_depth_.fetch_add(1, std::memory_order_relaxed) + 1));
  pool_.submit(inflight_, [this, conn = std::move(conn), line = std::move(line)] {
    const std::string frame = service_.handle_line(line);
    conn->write_frame(frame);
    queue_depth_metric_.set(
        static_cast<double>(queue_depth_.fetch_sub(1, std::memory_order_relaxed) - 1));
  });
}

}  // namespace mintc::serve
