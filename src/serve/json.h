// Minimal JSON value + parser for the serve protocol.
//
// The rest of the tree only ever WRITES JSON (obs/report exporters build
// strings directly); the service also has to READ it — requests arrive as
// one JSON object per line. This is a small, strict, dependency-free
// implementation tuned for that job:
//
//   * strict parsing: one complete value, UTF-8 text, no trailing garbage,
//     no comments, no NaN/Inf literals, a recursion-depth cap (malformed or
//     adversarial frames are user input — every failure is an Error value
//     with an offset, never an assert);
//   * exact number round-trip: dump() renders doubles with the shortest
//     decimal form that re-parses to the same bit pattern (%.15g..%.17g
//     probe), which is what lets the soak test compare served departures
//     BIT-identically against direct check_schedule results;
//   * objects preserve insertion order (stable rendering for golden tests)
//     and lookup is linear — protocol objects have a handful of keys.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/error.h"

namespace mintc::serve {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}                    // NOLINT
  Json(double v) : kind_(Kind::kNumber), num_(v) {}                 // NOLINT
  Json(int v) : kind_(Kind::kNumber), num_(v) {}                    // NOLINT
  Json(long v) : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}  // NOLINT
  Json(std::uint64_t v) : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}  // NOLINT
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : kind_(Kind::kString), str_(s) {}             // NOLINT

  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool(bool fallback = false) const { return is_bool() ? bool_ : fallback; }
  double as_number(double fallback = 0.0) const { return is_number() ? num_ : fallback; }
  long as_long(long fallback = 0) const {
    return is_number() ? static_cast<long>(num_) : fallback;
  }
  const std::string& as_string() const {
    static const std::string empty;
    return is_string() ? str_ : empty;
  }

  // -- Array ----------------------------------------------------------------
  size_t size() const {
    return is_array() ? items_.size() : (is_object() ? fields_.size() : 0);
  }
  const Json& at(size_t i) const {
    static const Json null;
    return is_array() && i < items_.size() ? items_[i] : null;
  }
  const std::vector<Json>& items() const { return items_; }
  Json& push(Json v) {
    items_.push_back(std::move(v));
    return items_.back();
  }

  // -- Object (insertion-ordered; linear lookup) ----------------------------
  const std::vector<std::pair<std::string, Json>>& fields() const { return fields_; }
  bool has(std::string_view key) const;
  /// Field by key; a shared null value when absent (or not an object).
  const Json& get(std::string_view key) const;
  /// Set (or overwrite) a field, keeping insertion order on first set.
  Json& set(std::string key, Json v);

  // Typed field helpers with defaults — the protocol handlers' bread and
  // butter. `*_or` never fails; required-field validation happens in the
  // request decoders (protocol.cpp) where a useful error can be produced.
  bool bool_or(std::string_view key, bool fallback) const {
    const Json& v = get(key);
    return v.is_bool() ? v.bool_ : fallback;
  }
  double num_or(std::string_view key, double fallback) const {
    const Json& v = get(key);
    return v.is_number() ? v.num_ : fallback;
  }
  long long_or(std::string_view key, long fallback) const {
    const Json& v = get(key);
    return v.is_number() ? static_cast<long>(v.num_) : fallback;
  }
  std::string str_or(std::string_view key, std::string fallback = "") const {
    const Json& v = get(key);
    return v.is_string() ? v.str_ : fallback;
  }

  /// Render as compact JSON (no whitespace). Numbers round-trip exactly.
  std::string dump() const;

  bool operator==(const Json& other) const;
  bool operator!=(const Json& other) const { return !(*this == other); }

 private:
  void dump_to(std::string& out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;                            // kArray
  std::vector<std::pair<std::string, Json>> fields_;   // kObject
};

struct JsonParseOptions {
  size_t max_depth = 64;  // nesting cap: arrays/objects deeper than this fail
};

/// Parse exactly one JSON value spanning the whole input (leading/trailing
/// whitespace allowed, anything else after the value is an error). Errors
/// are kInvalidArgument and carry a byte offset plus what was expected.
Expected<Json> parse_json(std::string_view text, const JsonParseOptions& options = {});

/// Render a double with the shortest decimal form that re-parses to the
/// same IEEE-754 bit pattern (non-finite values are clamped like
/// obs::json_number — JSON has no Inf/NaN).
std::string json_double(double v);

}  // namespace mintc::serve
