#include "serve/protocol.h"

#include <utility>

namespace mintc::serve {

void FrameReader::feed(const char* data, size_t n) {
  if (overflowed_) return;  // stream abandoned; drop everything
  // Compact lazily: only when the consumed prefix dominates the buffer.
  if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
  // Overflow = a PARTIAL line longer than the cap. Complete lines of any
  // buffered backlog are fine — parse_request re-checks their size.
  if (buffer_.size() - consumed_ > max_bytes_ &&
      buffer_.find('\n', consumed_) == std::string::npos) {
    overflowed_ = true;
    buffer_.clear();
    consumed_ = 0;
  }
}

std::optional<std::string> FrameReader::next_line() {
  if (overflowed_) return std::nullopt;
  const size_t nl = buffer_.find('\n', consumed_);
  if (nl == std::string::npos) return std::nullopt;
  size_t end = nl;
  if (end > consumed_ && buffer_[end - 1] == '\r') --end;
  std::string line = buffer_.substr(consumed_, end - consumed_);
  consumed_ = nl + 1;
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  }
  if (line.size() > max_bytes_) {
    overflowed_ = true;
    return std::nullopt;
  }
  return line;
}

Expected<Json> parse_request(std::string_view line, size_t max_bytes) {
  if (line.size() > max_bytes) {
    return make_error(ErrorKind::kInvalidArgument,
                      "request frame of " + std::to_string(line.size()) +
                          " bytes exceeds the " + std::to_string(max_bytes) + "-byte cap");
  }
  Expected<Json> parsed = parse_json(line);
  if (!parsed) return parsed;
  if (!parsed->is_object()) {
    return make_error(ErrorKind::kInvalidArgument, "request must be a JSON object");
  }
  if (!parsed->get("verb").is_string() || parsed->get("verb").as_string().empty()) {
    return make_error(ErrorKind::kInvalidArgument,
                      "request needs a non-empty string \"verb\"");
  }
  return parsed;
}

Json ok_response(const Json& id, Json result, bool cached) {
  Json resp = Json::object();
  resp.set("id", id);
  resp.set("ok", Json(true));
  resp.set("cached", Json(cached));
  resp.set("result", std::move(result));
  return resp;
}

Json error_response(const Json& id, std::string_view kind, std::string message) {
  Json err = Json::object();
  err.set("kind", Json(std::string(kind)));
  err.set("message", Json(std::move(message)));
  Json resp = Json::object();
  resp.set("id", id);
  resp.set("ok", Json(false));
  resp.set("error", std::move(err));
  return resp;
}

Json error_response(const Json& id, const Error& error) {
  return error_response(id, to_string(error.kind), error.message);
}

std::string encode_frame(const Json& response) {
  std::string out = response.dump();
  out += '\n';
  return out;
}

}  // namespace mintc::serve
