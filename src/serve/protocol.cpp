#include "serve/protocol.h"

#include <utility>

namespace mintc::serve {

void FrameReader::feed(const char* data, size_t n) {
  if (overflowed_) return;  // stream abandoned; drop everything
  // Compact lazily: only when the consumed prefix dominates the buffer.
  if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
  // Overflow = a PARTIAL line longer than the cap. Complete lines of any
  // buffered backlog are fine — parse_request re-checks their size.
  if (buffer_.size() - consumed_ > max_bytes_ &&
      buffer_.find('\n', consumed_) == std::string::npos) {
    overflowed_ = true;
    buffer_.clear();
    consumed_ = 0;
  }
}

std::optional<std::string> FrameReader::next_line() {
  if (overflowed_) return std::nullopt;
  const size_t nl = buffer_.find('\n', consumed_);
  if (nl == std::string::npos) return std::nullopt;
  size_t end = nl;
  if (end > consumed_ && buffer_[end - 1] == '\r') --end;
  std::string line = buffer_.substr(consumed_, end - consumed_);
  consumed_ = nl + 1;
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  }
  if (line.size() > max_bytes_) {
    overflowed_ = true;
    return std::nullopt;
  }
  return line;
}

Expected<Json> parse_request(std::string_view line, size_t max_bytes) {
  if (line.size() > max_bytes) {
    return make_error(ErrorKind::kInvalidArgument,
                      "request frame of " + std::to_string(line.size()) +
                          " bytes exceeds the " + std::to_string(max_bytes) + "-byte cap");
  }
  Expected<Json> parsed = parse_json(line);
  if (!parsed) return parsed;
  if (!parsed->is_object()) {
    return make_error(ErrorKind::kInvalidArgument, "request must be a JSON object");
  }
  if (!parsed->get("verb").is_string() || parsed->get("verb").as_string().empty()) {
    return make_error(ErrorKind::kInvalidArgument,
                      "request needs a non-empty string \"verb\"");
  }
  return parsed;
}

namespace {

// Decode a 1-16 hex-digit trace id; 0 on failure (0 is also an invalid id,
// so callers need no separate error channel).
std::uint64_t parse_trace_id(const std::string& hex) {
  if (hex.empty() || hex.size() > 16) return 0;
  std::uint64_t id = 0;
  for (const char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return 0;
    id = (id << 4) | static_cast<std::uint64_t>(digit);
  }
  return id;
}

}  // namespace

Expected<TraceField> parse_trace_field(const Json& request) {
  TraceField field;
  if (!request.has("trace")) return field;
  const Json& trace = request.get("trace");
  field.present = true;
  std::string hex;
  if (trace.is_string()) {
    hex = trace.as_string();
    field.context.sampled = true;
  } else if (trace.is_object()) {
    if (!trace.get("id").is_string()) {
      return make_error(ErrorKind::kInvalidArgument,
                        "trace object needs a string \"id\" (1-16 hex digits)");
    }
    hex = trace.get("id").as_string();
    field.context.sampled = trace.bool_or("sampled", true);
  } else {
    return make_error(ErrorKind::kInvalidArgument,
                      "trace must be a hex-id string or {\"id\", \"sampled\"} object");
  }
  field.context.trace_id = parse_trace_id(hex);
  if (field.context.trace_id == 0) {
    return make_error(ErrorKind::kInvalidArgument,
                      "trace id '" + hex + "' is not 1-16 hex digits (nonzero)");
  }
  return field;
}

std::string trace_id_hex(std::uint64_t trace_id) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[trace_id & 0xf];
    trace_id >>= 4;
  }
  return out;
}

Json ok_response(const Json& id, Json result, bool cached) {
  Json resp = Json::object();
  resp.set("id", id);
  resp.set("ok", Json(true));
  resp.set("cached", Json(cached));
  resp.set("result", std::move(result));
  return resp;
}

Json error_response(const Json& id, std::string_view kind, std::string message) {
  Json err = Json::object();
  err.set("kind", Json(std::string(kind)));
  err.set("message", Json(std::move(message)));
  Json resp = Json::object();
  resp.set("id", id);
  resp.set("ok", Json(false));
  resp.set("error", std::move(err));
  return resp;
}

Json error_response(const Json& id, const Error& error) {
  return error_response(id, to_string(error.kind), error.message);
}

std::string encode_frame(const Json& response) {
  std::string out = response.dump();
  out += '\n';
  return out;
}

}  // namespace mintc::serve
