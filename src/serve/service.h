// TimingService — timing analysis as a service, transport-agnostic core.
//
// The service owns a keyed pool of warm sta::AnalysisSession instances
// (wrapped in sta::SharedSession — ONE writer per circuit key, requests for
// the same key serialize, different keys run concurrently) fronted by a
// ResultCache of rendered responses. It speaks the line-delimited JSON
// protocol of protocol.h and is deliberately transport-free: handle_line()
// maps one request line to one response line, so the socket server
// (server.h), the in-process soak test and bench_serve all drive the exact
// same code path.
//
// Verbs:
//   load        create/replace the session for a circuit key from .lct text
//               (or a named builtin), with an optional .lcs schedule
//               (default: the MLP optimum)
//   edit_batch  apply a list of edits atomically (all-or-nothing: any
//               invalid edit rolls the whole batch back via the undo log)
//   analyze     eq. 17 fixpoint + setup/hold checks; bit-identical to a
//               direct sta::check_schedule of the same content (PR 5
//               contract), optionally with per-element detail
//   report      signoff SlackDB rendered in-memory as json/text/html
//               (single- or multi-corner) — no temp files anywhere
//   sweep       re-analyze across a parameter range, state restored exactly
//               via the undo log. "param": "scale" (default) scales the
//               schedule in shape per step; "param": "clock_skew" broadcasts
//               a uniform per-latch skew per step — the design's
//               skew-tolerance curve over the wire
//   undo        rewind the last edit batch (or to an explicit mark)
//   min         MLP minimum cycle time + optimal schedule for the loaded
//               circuit (what lets `timing_tool min --remote` work)
//   stats       service introspection: per-session pool state, cache
//               hit/byte/eviction counters, latency/queue metrics
//   metrics     the full metrics registry rendered in the Prometheus text
//               exposition format (result.content) — a scrape endpoint;
//               refreshes runtime gauges (pool/cache/in-flight) first
//   trace       drain the span ring buffer as Chrome trace-event JSON
//               (result.content), with event/dropped counts; "clear": false
//               keeps the buffer
//   status      the live ops dashboard as a single self-contained HTML
//               document (result.content): uptime/build tiles, latency and
//               CPU histograms, HistoryRing sparklines, session/cache
//               tables, top-K slow requests with trace ids, and the
//               sampling profiler's flame view ("top": N sizes the tables)
//
// Cost attribution: when telemetry is on, every request carries an
// obs::CostAccount through the thread-local TraceContext — the handler
// thread and every fixpoint shard charge their CPU slices, and the engines
// charge relaxations/sweeps at solve completion. The totals feed the
// serve.cpu_us / serve.relaxations histograms, the audit log and the slow
// log; a request with "cost": true gets them echoed as a response-envelope
// "cost" block (never inside result — cached payloads stay byte-identical
// whether or not attribution is requested).
//
// Telemetry: every request may carry an optional "trace" field (see
// protocol.h) — a sampled trace id turns recording ON for exactly this
// request's thread (and the fixpoint shards it forks, which propagate the
// context), tags every span with the id, and echoes the id in the response.
// ServiceConfig.telemetry kills the whole request-path telemetry
// (spans/metrics/trace activation) for overhead measurement;
// slow_request_us triggers a structured warning log carrying the request's
// span tree when a request exceeds the threshold.
//
// Caching: responses for the read-only verbs (analyze/report/sweep/min) are
// cached under a content key — AnalysisSession::content_fingerprint (which
// covers derated delays, so two corners of one circuit never collide) mixed
// with the verb and its parameters — and tagged with (circuit key,
// generation) for invalidation on edits; see cache.h.
//
// Session-pool eviction: the pool carries a byte budget; loading a new
// circuit evicts least-recently-used idle sessions (session.evictions
// metric). A request against an evicted key fails with "not_loaded" and the
// client re-loads — the soak test exercises exactly that path.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/thread_pool.h"
#include "obs/history.h"
#include "obs/metrics.h"
#include "serve/audit.h"
#include "serve/cache.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "sta/shared_session.h"

namespace mintc::serve {

struct ServiceConfig {
  /// Result-cache byte budget (0 disables caching).
  size_t cache_bytes = 64u << 20;
  /// Session-pool byte budget (estimated bytes of warm sessions kept).
  size_t session_bytes = 256u << 20;
  /// AnalysisOptions::num_threads for solves (0 = scalar engine).
  int analyze_threads = 0;
  /// Per-frame size cap enforced on handle_line input.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Hard cap on `sweep` steps per request.
  long max_sweep_steps = 4096;
  /// Request-path telemetry master switch: request spans, trace-context
  /// activation, serve.* metric updates and the slow-request log. Off is the
  /// baseline lane of `bench_serve --overhead-check`. Protocol behavior is
  /// unchanged (a "trace" field is still validated and echoed).
  bool telemetry = true;
  /// Log a structured warning (with the request's span tree when sampled)
  /// for requests slower than this many microseconds. 0 disables.
  long slow_request_us = 0;
  /// Per-request JSONL audit log path ("" disables). Every handled request
  /// appends one line with its trace id, verb, circuit key, cache hit/miss
  /// and CostAccount totals; see audit.h for rotation semantics.
  std::string audit_path;
  /// Active-audit-file size cap before rotation to "<path>.1".
  size_t audit_rotate_bytes = 8u << 20;
  /// Samples kept in the status dashboard's metric HistoryRing.
  size_t history_capacity = 240;
};

class TimingService {
 public:
  explicit TimingService(ServiceConfig config = {});

  /// The whole protocol in one call: parse `line`, dispatch, render the
  /// response frame (with trailing '\n'). Thread-safe; concurrent calls for
  /// the same circuit key serialize on that key's session lock. Always
  /// returns a frame — errors become {"ok":false,...} responses.
  std::string handle_line(std::string_view line);

  /// Structured variant used by handle_line (and directly by tests).
  Json handle(const Json& request);

  struct PoolStats {
    size_t sessions = 0;
    size_t bytes = 0;
    long evictions = 0;
    long loads = 0;
  };
  PoolStats pool_stats() const;
  ResultCache& cache() { return cache_; }
  const ServiceConfig& config() const { return config_; }

  /// Drop every session and cached result (bench_serve's cold lane).
  void reset();

  /// Hook run at the top of the `metrics` verb (and write_prometheus_text
  /// snapshots) to refresh gauges only the transport layer can sample —
  /// thread-pool queue depth, worker utilization, steal rate. The socket
  /// server installs it in start() and clears it in stop(); pass nullptr to
  /// clear. Thread-safe.
  void set_runtime_sampler(std::function<void()> sampler);

  /// Refresh service-owned runtime gauges (cache/pool/in-flight/uptime) and
  /// invoke the transport sampler. Called by the `metrics` verb; the daemon
  /// calls it before periodic --prom-out snapshots.
  void sample_runtime_gauges();

  /// Hook returning per-worker stats of the transport's thread pool for the
  /// status page's worker table; installed by the socket server alongside
  /// the runtime sampler. Thread-safe; pass nullptr to clear.
  void set_worker_stats_provider(
      std::function<std::vector<base::ThreadPool::WorkerStats>()> provider);

  /// Append one sample (request rate, latency/CPU quantiles, cache and pool
  /// state) to the status dashboard's HistoryRing. The daemon calls this on
  /// its tick; tests call it directly.
  void record_history_sample();
  const obs::HistoryRing& history() const { return history_; }

  /// One slow-log row: the top-K slowest requests since start, kept for the
  /// status page (independent of the slow-request warning log).
  struct SlowEntry {
    double t_seconds = 0.0;  // seconds since service start
    double us = 0.0;         // wall latency
    std::int64_t cpu_us = 0;
    std::int64_t relaxations = 0;
    bool cached = false;
    bool ok = false;
    std::string verb;
    std::string circuit;
    std::string trace;  // 16-char hex id, "" when unsampled
  };
  /// Slowest requests so far, most expensive first (at most kSlowTopK).
  std::vector<SlowEntry> slow_requests() const;

  /// The live ops dashboard as a single self-contained HTML document —
  /// the body of the `status` verb and of `timing_serve --status-html`.
  /// `top_n` sizes the slow-request and profiler tables.
  std::string status_html(int top_n = 16);

  /// Seconds since construction.
  double uptime_seconds() const;

  /// The audit log, when ServiceConfig.audit_path configured one.
  AuditLog* audit() { return audit_.get(); }

  static constexpr size_t kSlowTopK = 16;

 private:
  struct Entry {
    std::string key;
    std::unique_ptr<sta::SharedSession> session;
    // Rough warm-session footprint, charged against config.session_bytes.
    size_t bytes = 0;
    // LRU stamp from clock_ (monotone); only read/written under map_mu_.
    std::uint64_t last_used = 0;
  };

  // -- Verb handlers. Each returns a complete response envelope
  // (ok_response / error_response) so cache hits and failures short-circuit
  // uniformly.
  Json handle_load(const Json& req, const Json& id);
  Json handle_edit_batch(const Json& req, const Json& id);
  Json handle_analyze(const Json& req, const Json& id);
  Json handle_report(const Json& req, const Json& id);
  Json handle_sweep(const Json& req, const Json& id);
  Json handle_undo(const Json& req, const Json& id);
  Json handle_min(const Json& req, const Json& id);
  Json handle_stats(const Json& id);
  Json handle_metrics(const Json& id);
  Json handle_trace(const Json& req, const Json& id);
  Json handle_status(const Json& req, const Json& id);  // status.cpp

  /// Record one finished request in the top-K slow log.
  void record_slow(SlowEntry entry);

  /// Dispatch to the verb handler (the body of handle() minus telemetry).
  Json dispatch(const Json& request, const Json& id, const std::string& verb);

  /// Validate one edit op against the session's EVOLVING state and apply
  /// it; returns "" on success, a human-readable problem otherwise (the
  /// Circuit setters assert on invalid values — an assert must never be
  /// reachable from the wire).
  static std::string apply_edit(sta::AnalysisSession& s, const Json& e);

  /// Look up the session for `key`, bumping its LRU stamp. nullptr = not
  /// loaded (caller renders the not_loaded error).
  std::shared_ptr<Entry> find_entry(const std::string& key);

  /// Insert/replace the entry for `key` and evict LRU sessions over budget.
  void install_entry(const std::string& key, std::unique_ptr<sta::SharedSession> session,
                     size_t bytes);

  mutable std::mutex map_mu_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> pool_;
  size_t pool_bytes_ = 0;
  std::atomic<std::uint64_t> clock_{0};
  PoolStats pool_stats_;

  ResultCache cache_;
  ServiceConfig config_;

  obs::Counter& requests_metric_;
  obs::Counter& errors_metric_;
  obs::Counter& session_evictions_metric_;
  obs::Counter& slow_requests_metric_;
  obs::Gauge& sessions_metric_;
  obs::Gauge& session_bytes_metric_;
  obs::Gauge& inflight_metric_;
  obs::Gauge& cache_bytes_metric_;
  obs::Gauge& cache_entries_metric_;
  obs::Gauge& uptime_metric_;
  obs::Histogram& latency_metric_;
  obs::Histogram& cpu_metric_;          // serve.cpu_us: attributed CPU/request
  obs::Histogram& relaxations_metric_;  // serve.relaxations: engine work/request

  std::atomic<long> inflight_{0};
  std::mutex sampler_mu_;
  std::function<void()> runtime_sampler_;
  std::function<std::vector<base::ThreadPool::WorkerStats>()> worker_stats_provider_;

  const std::chrono::steady_clock::time_point start_ = std::chrono::steady_clock::now();
  std::unique_ptr<AuditLog> audit_;

  obs::HistoryRing history_;
  // Rate baseline for record_history_sample(): requests seen at last tick.
  double last_history_t_ = 0.0;
  long last_history_requests_ = 0;

  mutable std::mutex slow_mu_;
  std::vector<SlowEntry> slow_;  // kept sorted, slowest first, <= kSlowTopK
};

}  // namespace mintc::serve
