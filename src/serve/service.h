// TimingService — timing analysis as a service, transport-agnostic core.
//
// The service owns a keyed pool of warm sta::AnalysisSession instances
// (wrapped in sta::SharedSession — ONE writer per circuit key, requests for
// the same key serialize, different keys run concurrently) fronted by a
// ResultCache of rendered responses. It speaks the line-delimited JSON
// protocol of protocol.h and is deliberately transport-free: handle_line()
// maps one request line to one response line, so the socket server
// (server.h), the in-process soak test and bench_serve all drive the exact
// same code path.
//
// Verbs:
//   load        create/replace the session for a circuit key from .lct text
//               (or a named builtin), with an optional .lcs schedule
//               (default: the MLP optimum)
//   edit_batch  apply a list of edits atomically (all-or-nothing: any
//               invalid edit rolls the whole batch back via the undo log)
//   analyze     eq. 17 fixpoint + setup/hold checks; bit-identical to a
//               direct sta::check_schedule of the same content (PR 5
//               contract), optionally with per-element detail
//   report      signoff SlackDB rendered in-memory as json/text/html
//               (single- or multi-corner) — no temp files anywhere
//   sweep       re-analyze across a Tc range (schedule scaled in shape),
//               state restored exactly via the undo log
//   undo        rewind the last edit batch (or to an explicit mark)
//   min         MLP minimum cycle time + optimal schedule for the loaded
//               circuit (what lets `timing_tool min --remote` work)
//   stats       service introspection: per-session pool state, cache
//               hit/byte/eviction counters, latency/queue metrics
//   metrics     the full metrics registry rendered in the Prometheus text
//               exposition format (result.content) — a scrape endpoint;
//               refreshes runtime gauges (pool/cache/in-flight) first
//   trace       drain the span ring buffer as Chrome trace-event JSON
//               (result.content), with event/dropped counts; "clear": false
//               keeps the buffer
//
// Telemetry: every request may carry an optional "trace" field (see
// protocol.h) — a sampled trace id turns recording ON for exactly this
// request's thread (and the fixpoint shards it forks, which propagate the
// context), tags every span with the id, and echoes the id in the response.
// ServiceConfig.telemetry kills the whole request-path telemetry
// (spans/metrics/trace activation) for overhead measurement;
// slow_request_us triggers a structured warning log carrying the request's
// span tree when a request exceeds the threshold.
//
// Caching: responses for the read-only verbs (analyze/report/sweep/min) are
// cached under a content key — AnalysisSession::content_fingerprint (which
// covers derated delays, so two corners of one circuit never collide) mixed
// with the verb and its parameters — and tagged with (circuit key,
// generation) for invalidation on edits; see cache.h.
//
// Session-pool eviction: the pool carries a byte budget; loading a new
// circuit evicts least-recently-used idle sessions (session.evictions
// metric). A request against an evicted key fails with "not_loaded" and the
// client re-loads — the soak test exercises exactly that path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "serve/cache.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "sta/shared_session.h"

namespace mintc::serve {

struct ServiceConfig {
  /// Result-cache byte budget (0 disables caching).
  size_t cache_bytes = 64u << 20;
  /// Session-pool byte budget (estimated bytes of warm sessions kept).
  size_t session_bytes = 256u << 20;
  /// AnalysisOptions::num_threads for solves (0 = scalar engine).
  int analyze_threads = 0;
  /// Per-frame size cap enforced on handle_line input.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Hard cap on `sweep` steps per request.
  long max_sweep_steps = 4096;
  /// Request-path telemetry master switch: request spans, trace-context
  /// activation, serve.* metric updates and the slow-request log. Off is the
  /// baseline lane of `bench_serve --overhead-check`. Protocol behavior is
  /// unchanged (a "trace" field is still validated and echoed).
  bool telemetry = true;
  /// Log a structured warning (with the request's span tree when sampled)
  /// for requests slower than this many microseconds. 0 disables.
  long slow_request_us = 0;
};

class TimingService {
 public:
  explicit TimingService(ServiceConfig config = {});

  /// The whole protocol in one call: parse `line`, dispatch, render the
  /// response frame (with trailing '\n'). Thread-safe; concurrent calls for
  /// the same circuit key serialize on that key's session lock. Always
  /// returns a frame — errors become {"ok":false,...} responses.
  std::string handle_line(std::string_view line);

  /// Structured variant used by handle_line (and directly by tests).
  Json handle(const Json& request);

  struct PoolStats {
    size_t sessions = 0;
    size_t bytes = 0;
    long evictions = 0;
    long loads = 0;
  };
  PoolStats pool_stats() const;
  ResultCache& cache() { return cache_; }
  const ServiceConfig& config() const { return config_; }

  /// Drop every session and cached result (bench_serve's cold lane).
  void reset();

  /// Hook run at the top of the `metrics` verb (and write_prometheus_text
  /// snapshots) to refresh gauges only the transport layer can sample —
  /// thread-pool queue depth, worker utilization, steal rate. The socket
  /// server installs it in start() and clears it in stop(); pass nullptr to
  /// clear. Thread-safe.
  void set_runtime_sampler(std::function<void()> sampler);

  /// Refresh service-owned runtime gauges (cache/pool/in-flight) and invoke
  /// the transport sampler. Called by the `metrics` verb; the daemon calls
  /// it before periodic --prom-out snapshots.
  void sample_runtime_gauges();

 private:
  struct Entry {
    std::string key;
    std::unique_ptr<sta::SharedSession> session;
    // Rough warm-session footprint, charged against config.session_bytes.
    size_t bytes = 0;
    // LRU stamp from clock_ (monotone); only read/written under map_mu_.
    std::uint64_t last_used = 0;
  };

  // -- Verb handlers. Each returns a complete response envelope
  // (ok_response / error_response) so cache hits and failures short-circuit
  // uniformly.
  Json handle_load(const Json& req, const Json& id);
  Json handle_edit_batch(const Json& req, const Json& id);
  Json handle_analyze(const Json& req, const Json& id);
  Json handle_report(const Json& req, const Json& id);
  Json handle_sweep(const Json& req, const Json& id);
  Json handle_undo(const Json& req, const Json& id);
  Json handle_min(const Json& req, const Json& id);
  Json handle_stats(const Json& id);
  Json handle_metrics(const Json& id);
  Json handle_trace(const Json& req, const Json& id);

  /// Dispatch to the verb handler (the body of handle() minus telemetry).
  Json dispatch(const Json& request, const Json& id, const std::string& verb);

  /// Validate one edit op against the session's EVOLVING state and apply
  /// it; returns "" on success, a human-readable problem otherwise (the
  /// Circuit setters assert on invalid values — an assert must never be
  /// reachable from the wire).
  static std::string apply_edit(sta::AnalysisSession& s, const Json& e);

  /// Look up the session for `key`, bumping its LRU stamp. nullptr = not
  /// loaded (caller renders the not_loaded error).
  std::shared_ptr<Entry> find_entry(const std::string& key);

  /// Insert/replace the entry for `key` and evict LRU sessions over budget.
  void install_entry(const std::string& key, std::unique_ptr<sta::SharedSession> session,
                     size_t bytes);

  mutable std::mutex map_mu_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> pool_;
  size_t pool_bytes_ = 0;
  std::atomic<std::uint64_t> clock_{0};
  PoolStats pool_stats_;

  ResultCache cache_;
  ServiceConfig config_;

  obs::Counter& requests_metric_;
  obs::Counter& errors_metric_;
  obs::Counter& session_evictions_metric_;
  obs::Counter& slow_requests_metric_;
  obs::Gauge& sessions_metric_;
  obs::Gauge& session_bytes_metric_;
  obs::Gauge& inflight_metric_;
  obs::Gauge& cache_bytes_metric_;
  obs::Gauge& cache_entries_metric_;
  obs::Histogram& latency_metric_;

  std::atomic<long> inflight_{0};
  std::mutex sampler_mu_;
  std::function<void()> runtime_sampler_;
};

}  // namespace mintc::serve
