// The `status` verb: the service rendered as a single self-contained HTML
// document — no external assets, no scripts, same stylesheet as the signoff
// dashboard (report/html.h). One glance answers "is the server healthy,
// where is the time going, and which requests were expensive":
//
//   * identity tiles (version/git/compiler/uptime) and live counters
//   * HistoryRing sparklines: request rate, latency/CPU quantiles, cache
//   * the latency / attributed-CPU / engine-work histograms as bar charts
//   * session-pool, cache and transport-worker tables
//   * the top-K slowest requests with their trace ids and CostAccount totals
//   * the sampling profiler's flame view + self-time table, when running
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/profiler.h"
#include "report/html.h"
#include "serve/protocol.h"
#include "serve/service.h"

namespace mintc::serve {

namespace {

using report::bucket_bars_svg;
using report::html_escape;
using report::sparkline_svg;
using report::tile;

std::string fmt(double v, int digits = 1) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmt_long(long v) { return std::to_string(v); }

/// "1.5k" / "2.5M" — same rounding as the shared SVG axis labels.
std::string fmt_compact(double v) {
  const double a = std::fabs(v);
  char buf[48];
  if (a >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3gG", v / 1e9);
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3gM", v / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3gk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  }
  return buf;
}

std::string fmt_bytes(double v) {
  char buf[48];
  if (v >= 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof buf, "%.2f GiB", v / (1024.0 * 1024.0 * 1024.0));
  } else if (v >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof buf, "%.1f MiB", v / (1024.0 * 1024.0));
  } else if (v >= 1024.0) {
    std::snprintf(buf, sizeof buf, "%.1f KiB", v / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f B", v);
  }
  return buf;
}

std::string fmt_us(double us) {
  char buf[48];
  if (us >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fs", us / 1e6);
  } else if (us >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fms", us / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fus", us);
  }
  return buf;
}

std::string fmt_uptime(double seconds) {
  const long s = static_cast<long>(seconds);
  char buf[64];
  if (s >= 86400) {
    std::snprintf(buf, sizeof buf, "%ldd %ldh %ldm", s / 86400, (s / 3600) % 24,
                  (s / 60) % 60);
  } else if (s >= 3600) {
    std::snprintf(buf, sizeof buf, "%ldh %ldm %lds", s / 3600, (s / 60) % 60, s % 60);
  } else if (s >= 60) {
    std::snprintf(buf, sizeof buf, "%ldm %lds", s / 60, s % 60);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fs", seconds);
  }
  return buf;
}

void spark(std::ostringstream& out, const std::string& label,
           const std::vector<double>& series) {
  out << "    <div class=\"spark\">" << sparkline_svg(series) << "<div class=\"k\">"
      << html_escape(label) << "</div></div>\n";
}

void histogram_block(std::ostringstream& out, const std::string& title,
                     const obs::Histogram& h, const std::string& unit, bool as_time) {
  out << "  <section>\n  <h2>" << html_escape(title) << "</h2>\n  <div class=\"figure\">"
      << bucket_bars_svg(h.bounds(), h.buckets(), unit) << "</div>\n  <div class=\"note\">"
      << h.count() << " observations &middot; p50 "
      << (as_time ? fmt_us(h.quantile(0.5)) : fmt_compact(h.quantile(0.5))) << " &middot; p95 "
      << (as_time ? fmt_us(h.quantile(0.95)) : fmt_compact(h.quantile(0.95)))
      << " &middot; p99 "
      << (as_time ? fmt_us(h.quantile(0.99)) : fmt_compact(h.quantile(0.99)))
      << " &middot; max " << (as_time ? fmt_us(h.max()) : fmt_compact(h.max()))
      << "</div>\n  </section>\n";
}

// ---- Flame view -----------------------------------------------------------
//
// The profiler's sampled paths form a trie; each node's width is its share
// of total busy ticks, children stack left-to-right under their parent.
// Rendered root-at-top with one 18px row per depth — a plain flamegraph,
// tooltips carrying exact tick counts.

struct FlameNode {
  long self = 0;   // ticks sampled with this frame as the leaf
  long total = 0;  // self + all descendants
  std::map<std::string, FlameNode> kids;
};

void flame_insert(FlameNode& root, const std::string& path, long count) {
  FlameNode* node = &root;
  node->total += count;
  size_t begin = 0;
  while (begin <= path.size()) {
    const size_t end = path.find(';', begin);
    const std::string frame =
        path.substr(begin, end == std::string::npos ? std::string::npos : end - begin);
    node = &node->kids[frame];
    node->total += count;
    if (end == std::string::npos) break;
    begin = end + 1;
  }
  node->self += count;
}

int flame_depth(const FlameNode& node) {
  int deepest = 0;
  for (const auto& [name, kid] : node.kids) {
    deepest = std::max(deepest, 1 + flame_depth(kid));
  }
  return deepest;
}

/// Deterministic per-frame hue so a frame keeps its color across reloads.
int flame_hue(const std::string& name) {
  unsigned h = 2166136261u;
  for (const char c : name) h = (h ^ static_cast<unsigned char>(c)) * 16777619u;
  // Warm flamegraph band: 0..55 degrees (red..yellow).
  return static_cast<int>(h % 56u);
}

void flame_emit(std::ostringstream& out, const FlameNode& node, const std::string& name,
                double x, double width, int depth, long root_total, long interval_us) {
  constexpr double kRow = 18.0;
  if (width < 0.5) return;  // sub-pixel: descendants are invisible too
  if (depth >= 0) {
    const double y = depth * (kRow + 1.0);
    const double pct = 100.0 * static_cast<double>(node.total) / static_cast<double>(root_total);
    out << "  <rect x=\"" << fmt(x, 1) << "\" y=\"" << fmt(y, 1) << "\" width=\""
        << fmt(width, 1) << "\" height=\"" << fmt(kRow, 0) << "\" rx=\"2\" fill=\"hsl("
        << flame_hue(name) << ", 72%, 58%)\"><title>" << html_escape(name) << ": "
        << node.total << " ticks (" << fmt(pct, 1) << "%, ~"
        << fmt(static_cast<double>(node.total) * static_cast<double>(interval_us) / 1000.0, 1)
        << "ms)</title></rect>\n";
    if (width > 40.0) {
      out << "  <text x=\"" << fmt(x + 4.0, 1) << "\" y=\"" << fmt(y + 13.0, 1)
          << "\" font-size=\"11\" fill=\"#1a1a19\">" << html_escape(name) << "</text>\n";
    }
  }
  // Children left-to-right, widest first, proportional to their tick share.
  std::vector<std::pair<std::string, const FlameNode*>> kids;
  kids.reserve(node.kids.size());
  for (const auto& [kid_name, kid] : node.kids) kids.emplace_back(kid_name, &kid);
  std::sort(kids.begin(), kids.end(), [](const auto& a, const auto& b) {
    return a.second->total != b.second->total ? a.second->total > b.second->total
                                              : a.first < b.first;
  });
  double cx = x;
  for (const auto& [kid_name, kid] : kids) {
    const double kw =
        width * static_cast<double>(kid->total) / static_cast<double>(node.total);
    flame_emit(out, *kid, kid_name, cx, kw, depth + 1, root_total, interval_us);
    cx += kw;
  }
}

std::string flame_svg(const obs::Profiler::Profile& profile) {
  FlameNode root;
  for (const auto& [path, count] : profile.stacks) flame_insert(root, path, count);
  if (root.total <= 0) return "";
  const int depth = flame_depth(root);
  const double w = 1040.0;
  const double h = depth * 19.0 + 2.0;
  std::ostringstream out;
  out << "<svg viewBox=\"0 0 " << fmt(w, 0) << " " << fmt(h, 0) << "\" width=\"" << fmt(w, 0)
      << "\" role=\"img\">\n";
  flame_emit(out, root, "", 0.0, w, -1, root.total, profile.interval_us);
  out << "</svg>\n";
  return out.str();
}

}  // namespace

Json TimingService::handle_status(const Json& req, const Json& id) {
  const long top = std::clamp(req.long_or("top", 16), 1L, 100L);
  Json result = Json::object();
  result.set("format", Json("html"));
  result.set("content", Json(status_html(static_cast<int>(top))));
  return ok_response(id, std::move(result), false);
}

std::string TimingService::status_html(int top_n) {
  sample_runtime_gauges();
  const obs::BuildInfo& build = obs::build_info();
  const double uptime = uptime_seconds();

  std::ostringstream out;
  out << report::html_head("mintc timing service — status");
  out << "<h1>timing service</h1>\n<div class=\"meta\">mintc " << html_escape(build.version)
      << " &middot; git " << html_escape(build.git) << " &middot; "
      << html_escape(build.compiler) << " &middot; up " << fmt_uptime(uptime) << "</div>\n";

  // -- Live counter tiles.
  const long requests = requests_metric_.value();
  const long errors = errors_metric_.value();
  const ResultCache::Stats cs = cache_.stats();
  const long lookups = cs.hits + cs.misses;
  const double hit_rate =
      lookups > 0 ? static_cast<double>(cs.hits) / static_cast<double>(lookups) : 0.0;
  out << "  <div class=\"tiles\">\n";
  tile(out, fmt_compact(static_cast<double>(requests)), "requests");
  tile(out, fmt_long(errors), "errors", errors > 0);
  tile(out, fmt_long(inflight_.load(std::memory_order_relaxed)), "in flight");
  tile(out, fmt_us(latency_metric_.quantile(0.5)), "latency p50");
  tile(out, fmt_us(latency_metric_.quantile(0.95)), "latency p95");
  tile(out, fmt_us(cpu_metric_.quantile(0.95)), "cpu p95");
  tile(out, fmt(100.0 * hit_rate, 1) + "%", "cache hit rate");
  out << "  </div>\n";

  // -- Sparklines from the HistoryRing (rates/quantiles, oldest first).
  out << "  <section>\n  <h2>recent history</h2>\n  <div class=\"sparks\">\n";
  spark(out, "requests/s", history_.series("rps"));
  spark(out, "latency p50 (us)", history_.series("latency_p50_us"));
  spark(out, "latency p95 (us)", history_.series("latency_p95_us"));
  spark(out, "cpu p50 (us)", history_.series("cpu_p50_us"));
  spark(out, "in flight", history_.series("inflight"));
  spark(out, "cache bytes", history_.series("cache_bytes"));
  out << "  </div>\n  <div class=\"note\">" << history_.size() << " of " << history_.capacity()
      << " samples buffered (" << history_.total_recorded() << " recorded)</div>\n"
      << "  </section>\n";

  // -- Distribution charts.
  histogram_block(out, "request latency (us)", latency_metric_, "us", true);
  histogram_block(out, "attributed CPU per request (us)", cpu_metric_, "us", true);
  histogram_block(out, "edge relaxations per request", relaxations_metric_, "relaxations",
                  false);

  // -- Session pool.
  out << "  <section>\n  <h2>session pool</h2>\n";
  {
    const std::lock_guard<std::mutex> lk(map_mu_);
    out << "  <div class=\"note\">" << pool_.size() << " sessions &middot; "
        << fmt_bytes(static_cast<double>(pool_bytes_)) << " of "
        << fmt_bytes(static_cast<double>(config_.session_bytes)) << " budget &middot; "
        << pool_stats_.loads << " loads &middot; " << pool_stats_.evictions
        << " evictions</div>\n";
    std::vector<const Entry*> sorted;
    sorted.reserve(pool_.size());
    for (const auto& [k, entry] : pool_) sorted.push_back(entry.get());
    std::sort(sorted.begin(), sorted.end(),
              [](const Entry* a, const Entry* b) { return a->last_used > b->last_used; });
    if (!sorted.empty()) {
      out << "  <table>\n  <tr><th>circuit</th><th>bytes</th><th>recency</th></tr>\n";
      for (const Entry* entry : sorted) {
        out << "  <tr><td>" << html_escape(entry->key) << "</td><td>"
            << fmt_bytes(static_cast<double>(entry->bytes)) << "</td><td>#"
            << entry->last_used << "</td></tr>\n";
      }
      out << "  </table>\n";
    }
  }
  out << "  </section>\n";

  // -- Result cache.
  out << "  <section>\n  <h2>result cache</h2>\n  <div class=\"tiles\">\n";
  tile(out, fmt_long(cs.hits), "hits");
  tile(out, fmt_long(cs.misses), "misses");
  tile(out, fmt_long(cs.evictions), "evictions");
  tile(out, fmt_long(cs.invalidations), "invalidations");
  tile(out, fmt_long(static_cast<long>(cs.entries)), "entries");
  tile(out, fmt_bytes(static_cast<double>(cs.bytes)), "bytes");
  out << "  </div>\n  <div class=\"note\">budget "
      << fmt_bytes(static_cast<double>(cs.budget)) << "</div>\n  </section>\n";

  // -- Transport workers (only when the socket server installed a provider).
  std::function<std::vector<base::ThreadPool::WorkerStats>()> provider;
  {
    const std::lock_guard<std::mutex> lk(sampler_mu_);
    provider = worker_stats_provider_;
  }
  if (provider) {
    const std::vector<base::ThreadPool::WorkerStats> workers = provider();
    out << "  <section>\n  <h2>transport workers</h2>\n  <table>\n"
        << "  <tr><th>worker</th><th>executed</th><th>queued</th><th>cpu</th>"
           "<th>state</th></tr>\n";
    for (size_t i = 0; i < workers.size(); ++i) {
      const base::ThreadPool::WorkerStats& ws = workers[i];
      out << "  <tr><td>" << i << "</td><td>" << ws.executed << "</td><td>" << ws.queued
          << "</td><td>" << fmt(ws.cpu_seconds, 2) << "s</td><td>"
          << (ws.busy ? "busy" : "idle") << "</td></tr>\n";
    }
    out << "  </table>\n  </section>\n";
  }

  // -- Top-K slow requests with their attribution — each row's trace id is
  // the join key into the audit log and the trace buffer.
  const std::vector<SlowEntry> slow = slow_requests();
  out << "  <section>\n  <h2>slowest requests</h2>\n";
  if (slow.empty()) {
    out << "  <div class=\"note\">none yet</div>\n";
  } else {
    out << "  <table>\n  <tr><th>at</th><th>verb</th><th>circuit</th><th>wall</th>"
           "<th>cpu</th><th>relaxations</th><th>cache</th><th>ok</th><th>trace</th></tr>\n";
    int rows = 0;
    for (const SlowEntry& e : slow) {
      if (rows++ >= top_n) break;
      out << "  <tr><td>" << fmt(e.t_seconds, 1) << "s</td><td>" << html_escape(e.verb)
          << "</td><td>" << html_escape(e.circuit) << "</td><td>" << fmt_us(e.us)
          << "</td><td>" << fmt_us(static_cast<double>(e.cpu_us)) << "</td><td>"
          << fmt_compact(static_cast<double>(e.relaxations)) << "</td><td>"
          << (e.cached ? "hit" : "miss") << "</td>"
          << (e.ok ? "<td>ok</td>" : "<td class=\"bad\">error</td>") << "<td>"
          << (e.trace.empty() ? "&mdash;" : html_escape(e.trace)) << "</td></tr>\n";
    }
    out << "  </table>\n";
  }
  out << "  </section>\n";

  // -- Profiler flame view.
  out << "  <section>\n  <h2>span profiler</h2>\n";
  const obs::Profiler::Profile profile = obs::Profiler::instance().profile();
  if (profile.total_samples == 0) {
    out << "  <div class=\"note\">no samples &mdash; start the daemon with --profile (or "
           "call Profiler::start) to populate the flame view</div>\n";
  } else {
    const long busy = profile.total_samples - profile.idle_samples;
    out << "  <div class=\"note\">" << profile.total_samples << " thread-ticks at "
        << profile.interval_us << "us &middot; " << busy << " in spans &middot; "
        << profile.idle_samples << " idle</div>\n";
    const std::string flame = flame_svg(profile);
    if (!flame.empty()) out << "  <div class=\"figure\">" << flame << "</div>\n";
    out << "  <pre style=\"font-size:12px; overflow-x:auto\">"
        << html_escape(obs::Profiler::instance().top_table(top_n)) << "</pre>\n";
  }
  out << "  </section>\n";

  out << "<div class=\"meta\">generated by the status verb &middot; mintc "
      << html_escape(build.version) << " @ " << html_escape(build.git) << "</div>\n"
      << "</body>\n</html>\n";
  return out.str();
}

}  // namespace mintc::serve
