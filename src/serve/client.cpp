#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace mintc::serve {

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  stash_.clear();
}

Expected<bool> Client::connect_unix(const std::string& path) {
  close();
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return make_error(ErrorKind::kInvalidArgument, "unix socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0 ||
      ::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    close();
    return make_error(ErrorKind::kIo, "cannot connect to " + path + ": " + why);
  }
  return true;
}

Expected<bool> Client::connect_tcp(const std::string& host, int port) {
  close();
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return make_error(ErrorKind::kInvalidArgument,
                      "host must be a numeric IPv4 address (got \"" + host + "\")");
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ >= 0) {
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  if (fd_ < 0 ||
      ::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    close();
    return make_error(ErrorKind::kIo, "cannot connect to " + host + ":" +
                                          std::to_string(port) + ": " + why);
  }
  return true;
}

Expected<bool> Client::connect(const std::string& address) {
  if (address.rfind("unix:", 0) == 0) return connect_unix(address.substr(5));
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    return make_error(ErrorKind::kInvalidArgument,
                      "address must be unix:/path or host:port (got \"" + address + "\")");
  }
  const std::string host = address.substr(0, colon);
  const int port = std::atoi(address.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    return make_error(ErrorKind::kInvalidArgument, "bad port in \"" + address + "\"");
  }
  return connect_tcp(host.empty() ? "127.0.0.1" : host, port);
}

Expected<long> Client::send(Json request) {
  if (fd_ < 0) return make_error(ErrorKind::kIo, "not connected");
  const long id = next_id_++;
  request.set("id", Json(id));
  Expected<bool> sent = write_all(encode_frame(request));
  if (!sent) return sent.error();
  return id;
}

Expected<Json> Client::recv(long id) {
  while (true) {
    const auto it = stash_.find(id);
    if (it != stash_.end()) {
      Json response = std::move(it->second);
      stash_.erase(it);
      return response;
    }
    Expected<Json> next = read_response();
    if (!next) return next;
    const Json& got = next->get("id");
    if (got.is_number() && got.as_long() == id) return std::move(next.value());
    if (got.is_number()) {
      stash_[got.as_long()] = std::move(next.value());
    }
    // Responses with no / non-numeric id (protocol-level errors for frames
    // we did not stamp) are dropped: nothing can ever claim them.
  }
}

Expected<Json> Client::call(Json request) {
  Expected<long> id = send(std::move(request));
  if (!id) return id.error();
  return recv(*id);
}

Expected<bool> Client::write_all(const std::string& frame) {
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return make_error(ErrorKind::kIo, std::string("send failed: ") + std::strerror(errno));
  }
  return true;
}

Expected<Json> Client::read_response() {
  char buf[64 * 1024];
  while (true) {
    if (std::optional<std::string> line = reader_.next_line()) {
      Expected<Json> parsed = parse_json(*line);
      if (!parsed) {
        return make_error(ErrorKind::kIo,
                          "server sent an unparseable frame: " + parsed.error().message);
      }
      return parsed;
    }
    if (reader_.overflowed()) {
      return make_error(ErrorKind::kIo, "server frame exceeded the client's size cap");
    }
    struct pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, recv_timeout_ms_);
    if (ready == 0) return make_error(ErrorKind::kIo, "timed out waiting for a response");
    if (ready < 0) {
      if (errno == EINTR) continue;
      return make_error(ErrorKind::kIo, std::string("poll failed: ") + std::strerror(errno));
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      reader_.feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return make_error(ErrorKind::kIo, n == 0 ? "server closed the connection"
                                             : std::string("recv failed: ") +
                                                   std::strerror(errno));
  }
}

}  // namespace mintc::serve
