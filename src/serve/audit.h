// Size-rotated JSONL audit log of served requests — the durable side of
// cost attribution. One line per request with the trace id, verb, circuit
// key, cache hit/miss, outcome, wall latency and the request's CostAccount
// totals, so "which request burned the CPU last night" is a grep, not a
// reproduction.
//
// Rotation: when the current file would exceed `rotate_bytes`, it is
// renamed to "<path>.1" (replacing any previous .1) and a fresh file is
// opened — bounded at ~2x rotate_bytes of disk, no external logrotate
// needed. Writes are line-buffered under a mutex and flushed per record;
// an audit line is worth a syscall, and the serve path is not latency-bound
// on the log (tested at the bench's overhead gate).
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace mintc::serve {

struct AuditRecord {
  double t_seconds = 0.0;        // seconds since service start
  std::string trace;             // 16-char hex id, "" when unsampled
  std::string verb;
  std::string circuit;           // "" when the verb carries no key
  bool ok = false;
  bool cached = false;
  double wall_us = 0.0;
  std::int64_t cpu_us = 0;       // CostAccount totals (0 when attribution off)
  std::int64_t relaxations = 0;
  std::int64_t sweeps = 0;
  std::int64_t solves = 0;
};

class AuditLog {
 public:
  /// Opens `path` for append. `rotate_bytes` caps the active file (clamped
  /// to >= 4096); 0 keeps the default of 8 MiB.
  AuditLog(std::string path, std::size_t rotate_bytes);
  ~AuditLog();

  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;

  /// Append one JSONL record (with trailing newline) and flush. Silently
  /// drops records when the file cannot be (re)opened — the service must
  /// keep serving through a full disk.
  void append(const AuditRecord& record);

  /// Records written since construction (drops excluded).
  std::int64_t written() const;
  /// Times the active file was rotated to "<path>.1".
  std::int64_t rotations() const;
  const std::string& path() const { return path_; }

 private:
  void open_locked();
  void rotate_locked();

  mutable std::mutex mu_;
  std::string path_;
  std::size_t rotate_bytes_;
  std::FILE* file_ = nullptr;
  std::size_t bytes_ = 0;  // size of the active file
  std::int64_t written_ = 0;
  std::int64_t rotations_ = 0;
};

/// Render one record as its JSONL line (no trailing newline) — exposed for
/// tests and for the status page's slow-request table tooling.
std::string audit_json_line(const AuditRecord& record);

}  // namespace mintc::serve
