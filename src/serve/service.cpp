#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <utility>
#include <vector>

#include "base/log.h"

#include "circuits/appendix_fig1.h"
#include "circuits/example1.h"
#include "circuits/example2.h"
#include "circuits/gaas.h"
#include "obs/cost.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "opt/mlp.h"
#include "parser/lcs.h"
#include "parser/lct.h"
#include "report/export.h"
#include "report/slackdb.h"
#include "serve/protocol.h"
#include "sta/corners.h"

namespace mintc::serve {

namespace {

obs::MetricsRegistry& registry() { return obs::MetricsRegistry::instance(); }

double elapsed_us(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Wide powers-of-4 bounds for per-request engine-work counts
/// (serve.relaxations): 1 .. 64M covers a cache hit (0) through the largest
/// sweep request without wasting buckets on microsecond-style resolution.
std::vector<double> work_count_buckets() {
  std::vector<double> bounds;
  for (double b = 1.0; b <= 67108864.0; b *= 4.0) bounds.push_back(b);
  return bounds;
}

/// Rough warm-session footprint for the pool's byte budget: the Circuit,
/// the flattened TimingView (per-edge constants dominate) and the report
/// vectors. Order-of-magnitude is all eviction needs.
size_t estimate_session_bytes(const Circuit& circuit) {
  const size_t elements = static_cast<size_t>(circuit.num_elements());
  size_t labels = 0;
  for (const CombPath& p : circuit.paths()) labels += p.label.capacity();
  return 4096 + 256 * elements + 192 * static_cast<size_t>(circuit.num_paths()) + labels;
}

/// Required numeric field; nullopt (with `err` filled) when absent/not a
/// number.
std::optional<double> require_num(const Json& obj, std::string_view key, std::string& err) {
  const Json& v = obj.get(key);
  if (!v.is_number()) {
    err = "missing numeric field \"" + std::string(key) + "\"";
    return std::nullopt;
  }
  return v.as_number();
}

std::optional<Circuit> builtin_circuit(const std::string& name, const Json& req,
                                       std::string& err) {
  if (name == "example1") return circuits::example1(req.num_or("delta41", 80.0));
  if (name == "example2") return circuits::example2();
  if (name == "gaas") return circuits::gaas_datapath();
  if (name == "appendix") return circuits::appendix_fig1();
  err = "unknown builtin circuit \"" + name +
        "\" (known: example1, example2, gaas, appendix)";
  return std::nullopt;
}

Json schedule_json(const ClockSchedule& schedule) {
  Json s = Json::object();
  s.set("cycle", Json(schedule.cycle));
  Json start = Json::array();
  for (const double v : schedule.start) start.push(Json(v));
  Json width = Json::array();
  for (const double v : schedule.width) width.push(Json(v));
  s.set("start", std::move(start));
  s.set("width", std::move(width));
  return s;
}

/// Summarize a TimingReport as a result payload. `detail` adds per-element
/// rows. Non-finite per-element values (arrival with no fanin, unchecked
/// hold slack) are omitted rather than clamped — JSON has no infinities and
/// the soak's bit-identity gate compares only what is emitted.
Json report_payload(const sta::TimingReport& report, const Circuit& circuit, bool detail) {
  Json r = Json::object();
  r.set("feasible", Json(report.feasible));
  r.set("schedule_ok", Json(report.schedule_ok));
  r.set("converged", Json(report.converged));
  r.set("setup_ok", Json(report.setup_ok));
  r.set("hold_ok", Json(report.hold_ok));
  r.set("worst_setup_slack", Json(report.worst_setup_slack));
  r.set("worst_setup_element", Json(static_cast<long>(report.worst_setup_element)));
  if (std::isfinite(report.worst_hold_slack)) {
    r.set("worst_hold_slack", Json(report.worst_hold_slack));
  }
  r.set("worst_hold_element", Json(static_cast<long>(report.worst_hold_element)));
  if (detail) {
    Json elements = Json::array();
    for (size_t i = 0; i < report.elements.size(); ++i) {
      const sta::ElementTiming& et = report.elements[i];
      Json e = Json::object();
      e.set("name", Json(circuit.element(static_cast<int>(i)).name));
      e.set("departure", Json(et.departure));
      if (std::isfinite(et.arrival)) e.set("arrival", Json(et.arrival));
      e.set("setup_slack", Json(et.setup_slack));
      if (std::isfinite(et.hold_slack)) e.set("hold_slack", Json(et.hold_slack));
      elements.push(std::move(e));
    }
    r.set("elements", std::move(elements));
  }
  return r;
}

/// Begin-event args for the request span: verb + circuit key (generation is
/// tagged on the nested session span once the session is locked).
std::string request_span_args(const std::string& verb, const Json& req) {
  std::string args = "{\"verb\": \"" + obs::json_escape(verb) + "\"";
  const std::string circuit = req.str_or("circuit");
  if (!circuit.empty()) args += ", \"circuit\": \"" + obs::json_escape(circuit) + "\"";
  args += "}";
  return args;
}

/// Render the events belonging to `trace_id` (0 = all) as an indented tree
/// with per-span durations — the slow-request log body. B/E matching is
/// per-tid: fixpoint shards record on worker threads and interleave in
/// buffer order.
std::string span_tree_text(const std::vector<obs::TraceEvent>& events,
                           std::uint64_t trace_id) {
  struct Node {
    const obs::TraceEvent* event;
    double duration_us = -1.0;  // -1 = no matching end in range
    size_t depth = 0;
    int tid = 1;
  };
  std::vector<Node> nodes;
  std::unordered_map<int, std::vector<size_t>> stacks;  // tid -> open node idx
  for (const obs::TraceEvent& e : events) {
    if (trace_id != 0 && e.trace_id != trace_id) continue;
    std::vector<size_t>& stack = stacks[e.tid];
    switch (e.kind) {
      case obs::EventKind::kBegin:
        nodes.push_back({&e, -1.0, stack.size(), e.tid});
        stack.push_back(nodes.size() - 1);
        break;
      case obs::EventKind::kEnd:
        if (!stack.empty()) {
          Node& open = nodes[stack.back()];
          open.duration_us = e.ts_us - open.event->ts_us;
          stack.pop_back();
        }
        break;
      case obs::EventKind::kInstant:
        nodes.push_back({&e, 0.0, stack.size(), e.tid});
        break;
      case obs::EventKind::kCounter:
        break;  // counter tracks are noise in a per-request tree
    }
  }
  std::string out;
  char buf[64];
  for (const Node& n : nodes) {
    out += "\n    ";
    out.append(2 * n.depth, ' ');
    out += n.event->name;
    if (n.duration_us >= 0.0 && n.event->kind == obs::EventKind::kBegin) {
      std::snprintf(buf, sizeof buf, " %.1fus", n.duration_us);
      out += buf;
    }
    if (n.tid != 1) {
      std::snprintf(buf, sizeof buf, " [tid %d]", n.tid);
      out += buf;
    }
  }
  return out;
}

std::string join_problems(const std::vector<std::string>& problems) {
  std::string msg;
  for (const std::string& p : problems) {
    if (!msg.empty()) msg += "; ";
    msg += p;
  }
  return msg;
}

}  // namespace

TimingService::TimingService(ServiceConfig config)
    : cache_(config.cache_bytes),
      config_(config),
      requests_metric_(registry().counter("serve.requests")),
      errors_metric_(registry().counter("serve.errors")),
      session_evictions_metric_(registry().counter("session.evictions")),
      slow_requests_metric_(registry().counter("serve.slow_requests")),
      sessions_metric_(registry().gauge("session.count")),
      session_bytes_metric_(registry().gauge("session.bytes")),
      inflight_metric_(registry().gauge("serve.inflight")),
      cache_bytes_metric_(registry().gauge("cache.bytes")),
      cache_entries_metric_(registry().gauge("cache.entries")),
      uptime_metric_(registry().gauge("server.uptime_seconds")),
      latency_metric_(
          registry().histogram("serve.latency_us", {}, obs::latency_buckets_us())),
      cpu_metric_(registry().histogram("serve.cpu_us", {}, obs::latency_buckets_us())),
      relaxations_metric_(
          registry().histogram("serve.relaxations", {}, work_count_buckets())),
      history_(config.history_capacity) {
  // Info-gauge idiom: constant 1 with the identity in the labels, so any
  // scrape can join build identity against the numeric series.
  const obs::BuildInfo& build = obs::build_info();
  registry()
      .gauge("build_info", {{"version", build.version},
                            {"git", build.git},
                            {"compiler", build.compiler}})
      .set(1.0);
  if (!config_.audit_path.empty()) {
    audit_ = std::make_unique<AuditLog>(config_.audit_path, config_.audit_rotate_bytes);
  }
}

double TimingService::uptime_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
}

std::string TimingService::handle_line(std::string_view line) {
  Expected<Json> request = parse_request(line, config_.max_frame_bytes);
  if (!request) {
    if (config_.telemetry) {
      errors_metric_.inc();
      requests_metric_.inc();
    }
    return encode_frame(error_response(Json(), request.error()));
  }
  return encode_frame(handle(*request));
}

Json TimingService::dispatch(const Json& request, const Json& id, const std::string& verb) {
  if (verb == "load") return handle_load(request, id);
  if (verb == "edit_batch") return handle_edit_batch(request, id);
  if (verb == "analyze") return handle_analyze(request, id);
  if (verb == "report") return handle_report(request, id);
  if (verb == "sweep") return handle_sweep(request, id);
  if (verb == "undo") return handle_undo(request, id);
  if (verb == "min") return handle_min(request, id);
  if (verb == "stats") return handle_stats(id);
  if (verb == "metrics") return handle_metrics(id);
  if (verb == "trace") return handle_trace(request, id);
  if (verb == "status") return handle_status(request, id);
  return error_response(id, "unknown_verb", "unknown verb \"" + verb + "\"");
}

Json TimingService::handle(const Json& request) {
  const auto start = std::chrono::steady_clock::now();
  const Json& id = request.get("id");
  const std::string& verb = request.get("verb").as_string();

  // A malformed trace field rejects the request: a client's sampling config
  // must not rot into silent untraced traffic.
  Expected<TraceField> trace = parse_trace_field(request);
  if (!trace) {
    if (config_.telemetry) {
      requests_metric_.inc();
      errors_metric_.inc();
      latency_metric_.observe(elapsed_us(start));
    }
    return error_response(id, trace.error());
  }
  const bool traced = config_.telemetry && trace->context.active();

  // Install the request's context for the handler's whole extent — the
  // session solve, and (by value-capture + TraceContextScope in
  // parallel_fixpoint) every fixpoint shard it forks. Inactive context when
  // untraced: installing is two thread-local writes.
  //
  // Cost attribution rides the same context but independently of sampling:
  // when telemetry is on, EVERY request carries an account, so the
  // serve.cpu_us / serve.relaxations histograms and the audit log see full
  // traffic, not just the sampled slice. The account lives on this stack
  // frame; forked fixpoint shards are joined before dispatch returns, so the
  // pointer never outlives it.
  obs::CostAccount account;
  obs::TraceContext context = traced ? trace->context : obs::TraceContext{};
  if (config_.telemetry) context.cost = &account;
  obs::TraceContextScope context_scope(context);

  size_t trace_mark = 0;
  std::optional<obs::TraceSpan> span;
  if (config_.telemetry) {
    inflight_metric_.set(
        static_cast<double>(inflight_.fetch_add(1, std::memory_order_relaxed) + 1));
    if (traced) trace_mark = obs::Tracer::instance().num_events();
    span.emplace("serve.request", "serve", request_span_args(verb, request));
  }

  Json response;
  {
    // The handler thread charges its own CPU slice (parse/render/cache and
    // any scalar solve); pool shards charge theirs in run_chain. The two
    // never overlap — ThreadPool::wait() blocks, it does not help-execute.
    const obs::ThreadCpuTimer cpu_timer(config_.telemetry ? &account : nullptr);
    response = dispatch(request, id, verb);
  }

  // The echo is protocol, not telemetry: a sampled id comes back even when
  // config_.telemetry is off (the client's accounting must not depend on a
  // server-side tuning knob).
  if (trace->context.active()) {
    response.set("trace", Json(trace_id_hex(trace->context.trace_id)));
  }

  const std::int64_t cost_cpu_us = account.cpu_us.load(std::memory_order_relaxed);
  const std::int64_t cost_relax = account.relaxations.load(std::memory_order_relaxed);
  const std::int64_t cost_sweeps = account.sweeps.load(std::memory_order_relaxed);
  const std::int64_t cost_solves = account.solves.load(std::memory_order_relaxed);
  const bool ok = response.get("ok").as_bool(false);
  const bool cached = response.get("cached").as_bool(false);

  // Opt-in cost echo, always at the ENVELOPE level — cached result payloads
  // stay byte-identical whether or not attribution is requested.
  if (request.bool_or("cost", false)) {
    Json cost = Json::object();
    cost.set("cpu_us", Json(static_cast<long>(cost_cpu_us)));
    cost.set("relaxations", Json(static_cast<long>(cost_relax)));
    cost.set("sweeps", Json(static_cast<long>(cost_sweeps)));
    cost.set("solves", Json(static_cast<long>(cost_solves)));
    response.set("cost", std::move(cost));
  }

  if (config_.telemetry) {
    span.reset();  // end serve.request before slicing the tree below
    requests_metric_.inc();
    if (!ok) errors_metric_.inc();
    const double us = elapsed_us(start);
    latency_metric_.observe(us);
    cpu_metric_.observe(static_cast<double>(cost_cpu_us));
    relaxations_metric_.observe(static_cast<double>(cost_relax));
    const std::string trace_hex =
        traced ? trace_id_hex(trace->context.trace_id) : std::string();
    if (audit_) {
      AuditRecord record;
      record.t_seconds = uptime_seconds();
      record.trace = trace_hex;
      record.verb = verb;
      record.circuit = request.str_or("circuit");
      record.ok = ok;
      record.cached = cached;
      record.wall_us = us;
      record.cpu_us = cost_cpu_us;
      record.relaxations = cost_relax;
      record.sweeps = cost_sweeps;
      record.solves = cost_solves;
      audit_->append(record);
    }
    {
      SlowEntry entry;
      entry.t_seconds = uptime_seconds();
      entry.us = us;
      entry.cpu_us = cost_cpu_us;
      entry.relaxations = cost_relax;
      entry.cached = cached;
      entry.ok = ok;
      entry.verb = verb;
      entry.circuit = request.str_or("circuit");
      entry.trace = trace_hex;
      record_slow(std::move(entry));
    }
    if (config_.slow_request_us > 0 && us >= static_cast<double>(config_.slow_request_us)) {
      slow_requests_metric_.inc();
      std::string tree;
      if (traced) {
        tree = span_tree_text(obs::Tracer::instance().snapshot(trace_mark),
                              trace->context.trace_id);
      }
      log_warn() << "serve: slow request verb=" << verb
                 << " circuit=" << request.str_or("circuit", "-") << " us=" << us
                 << " cpu_us=" << cost_cpu_us << " relaxations=" << cost_relax
                 << " trace=" << (traced ? trace_hex : "-") << tree;
    }
    inflight_metric_.set(
        static_cast<double>(inflight_.fetch_sub(1, std::memory_order_relaxed) - 1));
  }
  return response;
}

void TimingService::record_slow(SlowEntry entry) {
  const std::lock_guard<std::mutex> lk(slow_mu_);
  // Insertion sort into the top-K: the vector is tiny (<= kSlowTopK) and
  // almost every request falls off the end immediately.
  if (slow_.size() >= kSlowTopK && entry.us <= slow_.back().us) return;
  const auto pos = std::upper_bound(
      slow_.begin(), slow_.end(), entry,
      [](const SlowEntry& a, const SlowEntry& b) { return a.us > b.us; });
  slow_.insert(pos, std::move(entry));
  if (slow_.size() > kSlowTopK) slow_.pop_back();
}

std::vector<TimingService::SlowEntry> TimingService::slow_requests() const {
  const std::lock_guard<std::mutex> lk(slow_mu_);
  return slow_;
}

void TimingService::set_worker_stats_provider(
    std::function<std::vector<base::ThreadPool::WorkerStats>()> provider) {
  const std::lock_guard<std::mutex> lk(sampler_mu_);
  worker_stats_provider_ = std::move(provider);
}

void TimingService::record_history_sample() {
  const double t = uptime_seconds();
  const long requests = requests_metric_.value();
  // Rate since the previous tick (the ring holds rates, not monotone
  // totals, so the sparklines read directly as req/s).
  double rps = 0.0;
  if (t > last_history_t_ && requests >= last_history_requests_) {
    rps = static_cast<double>(requests - last_history_requests_) / (t - last_history_t_);
  }
  last_history_t_ = t;
  last_history_requests_ = requests;

  const ResultCache::Stats cs = cache_.stats();
  obs::HistoryRing::Sample sample;
  sample.t_seconds = t;
  sample.values = {
      {"rps", rps},
      {"latency_p50_us", latency_metric_.quantile(0.50)},
      {"latency_p95_us", latency_metric_.quantile(0.95)},
      {"cpu_p50_us", cpu_metric_.quantile(0.50)},
      {"inflight", static_cast<double>(inflight_.load(std::memory_order_relaxed))},
      {"cache_bytes", static_cast<double>(cs.bytes)},
      {"sessions", static_cast<double>(pool_stats().sessions)},
  };
  history_.record(std::move(sample));
}

Json TimingService::handle_load(const Json& req, const Json& id) {
  const std::string key = req.str_or("circuit");
  if (key.empty()) {
    return error_response(id, "invalid_argument", "load needs a non-empty \"circuit\" key");
  }

  std::optional<Circuit> circuit;
  if (req.get("text").is_string()) {
    Expected<Circuit> parsed = parser::parse_circuit(req.get("text").as_string());
    if (!parsed) return error_response(id, parsed.error());
    circuit.emplace(std::move(parsed.value()));
  } else if (req.get("builtin").is_string()) {
    std::string err;
    circuit = builtin_circuit(req.get("builtin").as_string(), req, err);
    if (!circuit) return error_response(id, "invalid_argument", std::move(err));
  } else {
    return error_response(id, "invalid_argument",
                          "load needs either \"text\" (.lct) or \"builtin\"");
  }

  const std::vector<std::string> problems = circuit->validate();
  if (!problems.empty()) {
    return error_response(id, "invalid_circuit", join_problems(problems));
  }

  ClockSchedule schedule;
  double min_cycle = 0.0;
  bool optimized = false;
  if (req.get("schedule").is_string()) {
    Expected<ClockSchedule> parsed = parser::parse_schedule(req.get("schedule").as_string());
    if (!parsed) return error_response(id, parsed.error());
    if (parsed->num_phases() != circuit->num_phases()) {
      return error_response(id, "invalid_argument",
                            "schedule has " + std::to_string(parsed->num_phases()) +
                                " phases, circuit has " +
                                std::to_string(circuit->num_phases()));
    }
    schedule = std::move(parsed.value());
  } else {
    opt::MlpOptions mlp;
    mlp.assume_valid = true;  // just validated above
    Expected<opt::MlpResult> result = opt::minimize_cycle_time(*circuit, mlp);
    if (!result) return error_response(id, result.error());
    schedule = result->schedule;
    min_cycle = result->min_cycle;
    optimized = true;
  }

  sta::AnalysisOptions options;
  options.check_hold = true;
  options.num_threads = config_.analyze_threads;
  const size_t bytes = estimate_session_bytes(*circuit);
  auto session = std::make_unique<sta::SharedSession>(std::move(*circuit), schedule, options);

  Json result = Json::object();
  session->with([&](sta::AnalysisSession& s) {
    result.set("circuit", Json(key));
    result.set("elements", Json(static_cast<long>(s.circuit().num_elements())));
    result.set("paths", Json(static_cast<long>(s.circuit().num_paths())));
    result.set("phases", Json(static_cast<long>(s.circuit().num_phases())));
    result.set("generation", Json(s.generation()));
    result.set("fingerprint", Json(obs::hash_hex(s.content_fingerprint())));
    result.set("schedule", schedule_json(s.schedule()));
  });
  if (optimized) result.set("min_cycle", Json(min_cycle));

  install_entry(key, std::move(session), bytes);
  // Reload = new content under the old key: drop every cached response for
  // it regardless of the (restarted) generation counter.
  cache_.invalidate(key, ~0ull);
  return ok_response(id, std::move(result), false);
}

Json TimingService::handle_edit_batch(const Json& req, const Json& id) {
  const std::string key = req.str_or("circuit");
  const std::shared_ptr<Entry> entry = find_entry(key);
  if (!entry) {
    return error_response(id, "not_loaded", "circuit \"" + key + "\" is not loaded");
  }
  const Json& edits = req.get("edits");
  if (!edits.is_array()) {
    return error_response(id, "invalid_argument", "edit_batch needs an \"edits\" array");
  }

  Json result = Json::object();
  std::string fail;
  std::uint64_t generation = 0;

  entry->session->with([&](sta::AnalysisSession& s) {
    const size_t mark = s.mark();
    // Every edit is validated against the EVOLVING state before it is
    // applied — the Circuit setters assert on invalid values, and an assert
    // must never be reachable from the wire. Any failure rolls the whole
    // batch back: batches are atomic.
    for (size_t i = 0; i < edits.size(); ++i) {
      const Json& e = edits.at(i);
      std::string err;
      if (!e.is_object()) {
        err = "edit is not an object";
      } else {
        err = apply_edit(s, e);
      }
      if (!err.empty()) {
        s.undo_to(mark);
        fail = "edit " + std::to_string(i) + ": " + err;
        return;
      }
    }
    const std::vector<std::string> problems = s.circuit().validate();
    if (!problems.empty()) {
      s.undo_to(mark);
      fail = "batch leaves the circuit invalid: " + join_problems(problems);
      return;
    }
    generation = s.generation();
    result.set("applied", Json(static_cast<long>(edits.size())));
    result.set("mark", Json(static_cast<long>(mark)));
    result.set("generation", Json(generation));
    result.set("fingerprint", Json(obs::hash_hex(s.content_fingerprint())));
  });

  if (!fail.empty()) return error_response(id, "invalid_argument", std::move(fail));
  cache_.invalidate(key, generation);
  return ok_response(id, std::move(result), false);
}

std::string TimingService::apply_edit(sta::AnalysisSession& s, const Json& e) {
  const std::string op = e.str_or("op");
  const Circuit& c = s.circuit();

  const auto path_index = [&](std::string& err) -> int {
    const long p = e.long_or("path", -1);
    if (p < 0 || p >= c.num_paths()) {
      err = "path index " + std::to_string(p) + " out of range [0, " +
            std::to_string(c.num_paths()) + ")";
      return -1;
    }
    return static_cast<int>(p);
  };
  const auto element_index = [&](std::string& err) -> int {
    const long i = e.long_or("element", -1);
    if (i < 0 || i >= c.num_elements()) {
      err = "element index " + std::to_string(i) + " out of range [0, " +
            std::to_string(c.num_elements()) + ")";
      return -1;
    }
    return static_cast<int>(i);
  };
  const auto finite_nonneg = [](double v, const char* what, std::string& err) {
    if (!std::isfinite(v) || v < 0.0) {
      err = std::string(what) + " must be finite and nonnegative";
      return false;
    }
    return true;
  };

  std::string err;
  if (op == "set_path_delay") {
    const int p = path_index(err);
    const std::optional<double> d = err.empty() ? require_num(e, "delay", err) : std::nullopt;
    if (!err.empty()) return err;
    if (!finite_nonneg(*d, "delay", err)) return err;
    if (*d < c.path(p).min_delay) return "delay below the path's min delay";
    s.set_path_delay(p, *d);
  } else if (op == "set_path_min_delay") {
    const int p = path_index(err);
    const std::optional<double> d = err.empty() ? require_num(e, "min", err) : std::nullopt;
    if (!err.empty()) return err;
    if (!finite_nonneg(*d, "min delay", err)) return err;
    if (*d > c.path(p).delay) return "min delay above the path's max delay";
    s.set_path_min_delay(p, *d);
  } else if (op == "set_path_delays") {
    const int p = path_index(err);
    const std::optional<double> d = err.empty() ? require_num(e, "delay", err) : std::nullopt;
    const std::optional<double> m = err.empty() ? require_num(e, "min", err) : std::nullopt;
    if (!err.empty()) return err;
    if (!finite_nonneg(*d, "delay", err) || !finite_nonneg(*m, "min delay", err)) return err;
    if (*m > *d) return "min delay above max delay";
    s.set_path_delays(p, *d, *m);
  } else if (op == "set_path_label") {
    const int p = path_index(err);
    if (!err.empty()) return err;
    s.set_path_label(p, e.str_or("label"));
  } else if (op == "set_element_dq" || op == "set_element_setup" ||
             op == "set_element_hold" || op == "set_element_skew") {
    const int i = element_index(err);
    const std::optional<double> v = err.empty() ? require_num(e, "value", err) : std::nullopt;
    if (!err.empty()) return err;
    if (!finite_nonneg(*v, "value", err)) return err;
    if (op == "set_element_dq") {
      s.set_element_dq(i, *v);
    } else if (op == "set_element_setup") {
      s.set_element_setup(i, *v);
    } else if (op == "set_element_skew") {
      s.set_element_skew(i, *v);
    } else {
      s.set_element_hold(i, *v);
    }
  } else if (op == "set_element_dq_min") {
    const int i = element_index(err);
    const std::optional<double> v = err.empty() ? require_num(e, "value", err) : std::nullopt;
    if (!err.empty()) return err;
    // Raw Element::dq_min semantics: negative means "track dq".
    if (!std::isfinite(*v)) return "value must be finite";
    s.set_element_dq_min(i, *v < 0.0 ? -1.0 : *v);
  } else if (op == "set_schedule") {
    const Json& sched = e.get("schedule");
    Expected<ClockSchedule> parsed =
        sched.is_string() ? parser::parse_schedule(sched.as_string())
                          : Expected<ClockSchedule>(make_error(
                                ErrorKind::kInvalidArgument,
                                "set_schedule needs a \"schedule\" (.lcs text)"));
    if (!parsed) return parsed.error().message;
    if (parsed->num_phases() != c.num_phases()) return "schedule phase count mismatch";
    s.set_schedule(parsed.value());
  } else if (op == "scale_schedule") {
    const std::optional<double> f = require_num(e, "factor", err);
    if (!err.empty()) return err;
    if (!std::isfinite(*f) || *f <= 0.0) return "factor must be finite and positive";
    s.set_schedule(s.schedule().scaled(*f));
  } else if (op == "derate") {
    const std::optional<double> ds = require_num(e, "delay_scale", err);
    const std::optional<double> ms = err.empty() ? require_num(e, "min_scale", err) : std::nullopt;
    if (!err.empty()) return err;
    if (!std::isfinite(*ds) || *ds <= 0.0 || !std::isfinite(*ms) || *ms <= 0.0) {
      return "derating scales must be finite and positive";
    }
    if (!s.derating_allowed()) {
      return "derating requires an unmodified structure (paths/elements were removed)";
    }
    s.apply_derating(*ds, *ms);
  } else if (op == "remove_path") {
    const int p = path_index(err);
    if (!err.empty()) return err;
    s.remove_path(p);
  } else if (op == "remove_element") {
    const int i = element_index(err);
    if (!err.empty()) return err;
    s.remove_element(i);
  } else {
    return "unknown op \"" + op + "\"";
  }
  return "";
}

Json TimingService::handle_analyze(const Json& req, const Json& id) {
  const std::string key = req.str_or("circuit");
  const std::shared_ptr<Entry> entry = find_entry(key);
  if (!entry) {
    return error_response(id, "not_loaded", "circuit \"" + key + "\" is not loaded");
  }
  const bool detail = req.bool_or("detail", false);

  Json result;
  bool cached = false;
  entry->session->with([&](sta::AnalysisSession& s) {
    const std::uint64_t cache_key =
        obs::Fnv1a().u64(s.content_fingerprint()).str("analyze").u64(detail ? 1 : 0).digest();
    if (std::optional<std::string> hit = cache_.get(cache_key)) {
      // Rendered payloads round-trip exactly (json_double), so re-parsing
      // a hit is bit-identical to the original render.
      Expected<Json> parsed = parse_json(*hit);
      if (parsed) {
        result = std::move(parsed.value());
        cached = true;
        return;
      }
    }
    const sta::TimingReport& report = s.analyze();
    result = report_payload(report, s.circuit(), detail);
    result.set("fingerprint", Json(obs::hash_hex(s.content_fingerprint())));
    cache_.put(cache_key, key, s.generation(), result.dump());
  });
  return ok_response(id, std::move(result), cached);
}

Json TimingService::handle_report(const Json& req, const Json& id) {
  const std::string key = req.str_or("circuit");
  const std::shared_ptr<Entry> entry = find_entry(key);
  if (!entry) {
    return error_response(id, "not_loaded", "circuit \"" + key + "\" is not loaded");
  }
  const std::string format = req.str_or("format", "json");
  if (format != "json" && format != "table" && format != "html") {
    return error_response(id, "invalid_argument",
                          "format must be one of json, table, html (got \"" + format + "\")");
  }
  const bool signoff = req.bool_or("signoff", false);
  const double spread = req.num_or("spread", 0.1);
  const long nworst = req.long_or("nworst", 10);
  if (!std::isfinite(spread) || spread < 0.0 || spread >= 1.0) {
    return error_response(id, "invalid_argument", "spread must be in [0, 1)");
  }
  if (nworst < 1 || nworst > 100000) {
    return error_response(id, "invalid_argument", "nworst must be in [1, 100000]");
  }

  Json result;
  bool cached = false;
  entry->session->with([&](sta::AnalysisSession& s) {
    const std::uint64_t cache_key = obs::Fnv1a()
                                        .u64(s.content_fingerprint())
                                        .str("report")
                                        .str(format)
                                        .u64(signoff ? 1 : 0)
                                        .num(spread)
                                        .i32(static_cast<std::int32_t>(nworst))
                                        .digest();
    if (std::optional<std::string> hit = cache_.get(cache_key)) {
      Expected<Json> parsed = parse_json(*hit);
      if (parsed) {
        result = std::move(parsed.value());
        cached = true;
        return;
      }
    }
    report::SlackDbOptions options;
    options.nworst = static_cast<int>(nworst);
    options.check_hold = true;
    result = Json::object();
    result.set("format", Json(format));
    if (signoff) {
      const report::SignoffDB db =
          report::build_signoff(s.circuit(), s.schedule(), sta::standard_corners(spread), options);
      result.set("all_pass", Json(db.all_pass));
      if (format == "json") {
        result.set("content", Json(report::signoff_json(db)));
      } else if (format == "table") {
        result.set("content", Json(report::signoff_table(db)));
      } else {
        result.set("content", Json(report::signoff_html(s.circuit(), db)));
      }
    } else {
      const report::SlackDB db = report::build_slackdb(s.circuit(), s.schedule(), options);
      result.set("feasible", Json(db.feasible));
      if (format == "json") {
        result.set("content", Json(report::report_json(db)));
      } else if (format == "table") {
        result.set("content", Json(report::report_table(db)));
      } else {
        result.set("content", Json(report::report_html(s.circuit(), db)));
      }
    }
    result.set("fingerprint", Json(obs::hash_hex(s.content_fingerprint())));
    cache_.put(cache_key, key, s.generation(), result.dump());
  });
  return ok_response(id, std::move(result), cached);
}

Json TimingService::handle_sweep(const Json& req, const Json& id) {
  const std::string key = req.str_or("circuit");
  const std::shared_ptr<Entry> entry = find_entry(key);
  if (!entry) {
    return error_response(id, "not_loaded", "circuit \"" + key + "\" is not loaded");
  }

  // Two sweep parameters: "scale" (default) multiplies the schedule per
  // step, "clock_skew" broadcasts a uniform per-latch skew per step — the
  // serve route to a design's skew-tolerance curve.
  const std::string param = req.str_or("param", "scale");
  if (param != "scale" && param != "clock_skew") {
    return error_response(id, "invalid_argument",
                          "param must be one of scale, clock_skew (got \"" + param + "\")");
  }
  const bool skew_sweep = param == "clock_skew";

  // Sweep values: an explicit "factors" array, or a from/to/steps range.
  std::vector<double> factors;
  if (req.get("factors").is_array()) {
    for (const Json& f : req.get("factors").items()) {
      if (!f.is_number()) {
        return error_response(id, "invalid_argument", "factors must be numbers");
      }
      factors.push_back(f.as_number());
    }
  } else {
    const double from = req.num_or("from", skew_sweep ? 0.0 : 0.9);
    const double to = req.num_or("to", skew_sweep ? 1.0 : 1.1);
    const long steps = req.long_or("steps", 5);
    if (steps < 1) return error_response(id, "invalid_argument", "steps must be >= 1");
    if (steps > config_.max_sweep_steps) {
      return error_response(id, "invalid_argument",
                            "steps exceeds the cap of " +
                                std::to_string(config_.max_sweep_steps));
    }
    for (long i = 0; i < steps; ++i) {
      factors.push_back(steps == 1 ? from : from + (to - from) * static_cast<double>(i) /
                                                       static_cast<double>(steps - 1));
    }
  }
  if (factors.size() > static_cast<size_t>(config_.max_sweep_steps)) {
    return error_response(id, "invalid_argument",
                          "factors exceeds the cap of " +
                              std::to_string(config_.max_sweep_steps));
  }
  for (const double f : factors) {
    // A skew of exactly zero is meaningful; a scale of zero is not.
    if (!std::isfinite(f) || (skew_sweep ? f < 0.0 : f <= 0.0)) {
      return error_response(id, "invalid_argument",
                            skew_sweep ? "skews must be finite and nonnegative"
                                       : "factors must be finite and positive");
    }
  }

  Json result;
  bool cached = false;
  entry->session->with([&](sta::AnalysisSession& s) {
    obs::Fnv1a h;
    h.u64(s.content_fingerprint()).str("sweep").str(param);
    for (const double f : factors) h.num(f);
    const std::uint64_t cache_key = h.digest();
    if (std::optional<std::string> hit = cache_.get(cache_key)) {
      Expected<Json> parsed = parse_json(*hit);
      if (parsed) {
        result = std::move(parsed.value());
        cached = true;
        return;
      }
    }
    const std::uint64_t generation = s.generation();
    // Every step edits from the ORIGINAL state (not the previous step's) and
    // the undo log restores the pre-sweep state exactly — content
    // fingerprint included (checked below via the generation-independent
    // fingerprint cache keys). A skew sweep broadcasts each value over every
    // element, so consecutive steps simply overwrite each other.
    const ClockSchedule base = s.schedule();
    const size_t mark = s.mark();
    result = Json::object();
    result.set("param", Json(param));
    result.set("base_cycle", Json(base.cycle));
    Json rows = Json::array();
    for (const double f : factors) {
      if (skew_sweep) {
        for (int i = 0; i < s.circuit().num_elements(); ++i) s.set_element_skew(i, f);
      } else {
        s.set_schedule(base.scaled(f));
      }
      const sta::TimingReport& report = s.analyze();
      Json row = Json::object();
      row.set(skew_sweep ? "skew" : "factor", Json(f));
      row.set("cycle", Json(s.schedule().cycle));
      row.set("feasible", Json(report.feasible));
      row.set("converged", Json(report.converged));
      row.set("worst_setup_slack", Json(report.worst_setup_slack));
      if (std::isfinite(report.worst_hold_slack)) {
        row.set("worst_hold_slack", Json(report.worst_hold_slack));
      }
      rows.push(std::move(row));
    }
    s.undo_to(mark);
    result.set("results", std::move(rows));
    result.set("fingerprint", Json(obs::hash_hex(s.content_fingerprint())));
    cache_.put(cache_key, key, generation, result.dump());
  });
  return ok_response(id, std::move(result), cached);
}

Json TimingService::handle_undo(const Json& req, const Json& id) {
  const std::string key = req.str_or("circuit");
  const std::shared_ptr<Entry> entry = find_entry(key);
  if (!entry) {
    return error_response(id, "not_loaded", "circuit \"" + key + "\" is not loaded");
  }

  Json result = Json::object();
  std::string fail;
  std::uint64_t generation = 0;
  entry->session->with([&](sta::AnalysisSession& s) {
    const long current = static_cast<long>(s.mark());
    if (req.get("to").is_number()) {
      const long to = req.long_or("to", 0);
      if (to < 0 || to > current) {
        fail = "mark " + std::to_string(to) + " out of range [0, " + std::to_string(current) +
               "]";
        return;
      }
      s.undo_to(static_cast<size_t>(to));
    } else {
      const long steps = req.long_or("steps", 1);
      if (steps < 1 || steps > current) {
        fail = "cannot undo " + std::to_string(steps) + " steps (log has " +
               std::to_string(current) + ")";
        return;
      }
      for (long i = 0; i < steps; ++i) s.undo();
    }
    generation = s.generation();
    result.set("mark", Json(static_cast<long>(s.mark())));
    result.set("generation", Json(generation));
    result.set("fingerprint", Json(obs::hash_hex(s.content_fingerprint())));
  });
  if (!fail.empty()) return error_response(id, "invalid_argument", std::move(fail));
  cache_.invalidate(key, generation);
  return ok_response(id, std::move(result), false);
}

Json TimingService::handle_min(const Json& req, const Json& id) {
  const std::string key = req.str_or("circuit");
  const std::shared_ptr<Entry> entry = find_entry(key);
  if (!entry) {
    return error_response(id, "not_loaded", "circuit \"" + key + "\" is not loaded");
  }
  const bool apply = req.bool_or("apply", false);

  Json result;
  bool cached = false;
  std::string fail_kind, fail_msg;
  std::uint64_t generation = 0;
  entry->session->with([&](sta::AnalysisSession& s) {
    const std::uint64_t cache_key =
        obs::Fnv1a().u64(s.content_fingerprint()).str("min").digest();
    if (!apply) {
      if (std::optional<std::string> hit = cache_.get(cache_key)) {
        Expected<Json> parsed = parse_json(*hit);
        if (parsed) {
          result = std::move(parsed.value());
          cached = true;
          return;
        }
      }
    }
    opt::MlpOptions options;
    options.assume_valid = true;  // edit batches keep the circuit validate()-clean
    Expected<opt::MlpResult> mlp = opt::minimize_cycle_time(s.circuit(), options);
    if (!mlp) {
      fail_kind = to_string(mlp.error().kind);
      fail_msg = mlp.error().message;
      return;
    }
    result = Json::object();
    result.set("min_cycle", Json(mlp->min_cycle));
    result.set("schedule", schedule_json(mlp->schedule));
    result.set("lcs", Json(parser::write_schedule(mlp->schedule)));
    result.set("fingerprint", Json(obs::hash_hex(s.content_fingerprint())));
    if (apply) {
      s.set_schedule(mlp->schedule);
      generation = s.generation();
      result.set("generation", Json(generation));
    } else {
      cache_.put(cache_key, key, s.generation(), result.dump());
    }
  });
  if (!fail_msg.empty()) return error_response(id, fail_kind, std::move(fail_msg));
  if (apply) cache_.invalidate(key, generation);
  return ok_response(id, std::move(result), cached);
}

Json TimingService::handle_stats(const Json& id) {
  Json sessions = Json::object();
  Json keys = Json::array();
  {
    const std::lock_guard<std::mutex> lk(map_mu_);
    sessions.set("count", Json(static_cast<long>(pool_.size())));
    sessions.set("bytes", Json(static_cast<long>(pool_bytes_)));
    sessions.set("budget", Json(static_cast<long>(config_.session_bytes)));
    sessions.set("evictions", Json(pool_stats_.evictions));
    sessions.set("loads", Json(pool_stats_.loads));
    std::vector<const Entry*> sorted;
    sorted.reserve(pool_.size());
    for (const auto& [k, entry] : pool_) sorted.push_back(entry.get());
    std::sort(sorted.begin(), sorted.end(),
              [](const Entry* a, const Entry* b) { return a->key < b->key; });
    for (const Entry* entry : sorted) {
      Json row = Json::object();
      row.set("circuit", Json(entry->key));
      row.set("bytes", Json(static_cast<long>(entry->bytes)));
      keys.push(std::move(row));
    }
  }
  sessions.set("keys", std::move(keys));

  const ResultCache::Stats cs = cache_.stats();
  Json cache = Json::object();
  cache.set("hits", Json(cs.hits));
  cache.set("misses", Json(cs.misses));
  cache.set("evictions", Json(cs.evictions));
  cache.set("invalidations", Json(cs.invalidations));
  cache.set("bytes", Json(static_cast<long>(cs.bytes)));
  cache.set("entries", Json(static_cast<long>(cs.entries)));
  cache.set("budget", Json(static_cast<long>(cs.budget)));
  const long lookups = cs.hits + cs.misses;
  cache.set("hit_rate", Json(lookups > 0 ? static_cast<double>(cs.hits) /
                                               static_cast<double>(lookups)
                                         : 0.0));

  // Service-owned metric points (serve.*, cache.*, session.*) so a client
  // can watch hit-rate and latency quantiles without scraping the registry.
  Json metrics = Json::array();
  for (const obs::MetricPoint& point : registry().snapshot()) {
    const bool ours = point.name.rfind("serve.", 0) == 0 ||
                      point.name.rfind("cache.", 0) == 0 ||
                      point.name.rfind("session.", 0) == 0;
    if (!ours) continue;
    Json row = Json::object();
    row.set("name", Json(point.key()));
    if (point.kind == obs::MetricKind::kHistogram) {
      row.set("count", Json(point.count));
      row.set("p50", Json(point.p50));
      row.set("p95", Json(point.p95));
      row.set("p99", Json(point.p99));
      row.set("max", Json(point.max));
    } else {
      row.set("value", Json(point.value));
    }
    metrics.push(std::move(row));
  }

  // Server identity + lifetime, mirrored on the status page and as the
  // build_info / server.uptime_seconds Prometheus series.
  const obs::BuildInfo& build = obs::build_info();
  Json server = Json::object();
  server.set("uptime_seconds", Json(uptime_seconds()));
  server.set("version", Json(build.version));
  server.set("git", Json(build.git));
  server.set("compiler", Json(build.compiler));
  if (audit_) {
    Json audit = Json::object();
    audit.set("path", Json(audit_->path()));
    audit.set("written", Json(audit_->written()));
    audit.set("rotations", Json(audit_->rotations()));
    server.set("audit", std::move(audit));
  }

  Json result = Json::object();
  result.set("server", std::move(server));
  result.set("sessions", std::move(sessions));
  result.set("cache", std::move(cache));
  result.set("metrics", std::move(metrics));
  return ok_response(id, std::move(result), false);
}

Json TimingService::handle_metrics(const Json& id) {
  sample_runtime_gauges();
  Json result = Json::object();
  result.set("format", Json("prometheus"));
  result.set("content", Json(obs::prometheus_text(registry().snapshot())));
  return ok_response(id, std::move(result), false);
}

Json TimingService::handle_trace(const Json& req, const Json& id) {
  const bool clear = req.bool_or("clear", true);
  obs::Tracer& tracer = obs::Tracer::instance();
  const std::vector<obs::TraceEvent> events = tracer.snapshot();
  Json result = Json::object();
  result.set("format", Json("chrome_trace"));
  result.set("events", Json(static_cast<long>(events.size())));
  result.set("dropped", Json(static_cast<long>(tracer.dropped())));
  result.set("content", Json(obs::chrome_trace_json(events)));
  if (clear) tracer.clear();
  return ok_response(id, std::move(result), false);
}

void TimingService::set_runtime_sampler(std::function<void()> sampler) {
  const std::lock_guard<std::mutex> lk(sampler_mu_);
  runtime_sampler_ = std::move(sampler);
}

void TimingService::sample_runtime_gauges() {
  uptime_metric_.set(uptime_seconds());
  const ResultCache::Stats cs = cache_.stats();
  cache_bytes_metric_.set(static_cast<double>(cs.bytes));
  cache_entries_metric_.set(static_cast<double>(cs.entries));
  {
    const std::lock_guard<std::mutex> lk(map_mu_);
    sessions_metric_.set(static_cast<double>(pool_.size()));
    session_bytes_metric_.set(static_cast<double>(pool_bytes_));
  }
  std::function<void()> sampler;
  {
    const std::lock_guard<std::mutex> lk(sampler_mu_);
    sampler = runtime_sampler_;
  }
  if (sampler) sampler();
}

std::shared_ptr<TimingService::Entry> TimingService::find_entry(const std::string& key) {
  if (key.empty()) return nullptr;
  const std::lock_guard<std::mutex> lk(map_mu_);
  const auto it = pool_.find(key);
  if (it == pool_.end()) return nullptr;
  it->second->last_used = clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  return it->second;
}

void TimingService::install_entry(const std::string& key,
                                  std::unique_ptr<sta::SharedSession> session, size_t bytes) {
  const std::lock_guard<std::mutex> lk(map_mu_);
  auto entry = std::make_shared<Entry>();
  entry->key = key;
  entry->session = std::move(session);
  entry->bytes = bytes;
  entry->last_used = clock_.fetch_add(1, std::memory_order_relaxed) + 1;

  const auto it = pool_.find(key);
  if (it != pool_.end()) pool_bytes_ -= it->second->bytes;
  pool_[key] = std::move(entry);
  pool_bytes_ += bytes;
  ++pool_stats_.loads;

  // Evict LRU idle sessions until the byte budget holds: one pass over the
  // candidates in last-used order. A session whose lock is held (a request
  // in flight) is skipped — requests holding a shared_ptr to an evicted
  // entry finish normally (eviction only removes the pool's reference), so
  // later requests for that key see "not_loaded" and reload.
  if (pool_bytes_ > config_.session_bytes && pool_.size() > 1) {
    std::vector<Entry*> candidates;
    candidates.reserve(pool_.size());
    for (auto& [k, e] : pool_) {
      if (k != key) candidates.push_back(e.get());  // never the fresh install
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Entry* a, const Entry* b) { return a->last_used < b->last_used; });
    for (Entry* victim : candidates) {
      if (pool_bytes_ <= config_.session_bytes) break;
      if (!victim->session->try_with([](sta::AnalysisSession&) {})) continue;  // busy
      pool_bytes_ -= victim->bytes;
      const std::string victim_key = victim->key;  // outlive the node erase
      pool_.erase(victim_key);
      ++pool_stats_.evictions;
      session_evictions_metric_.inc();
    }
  }

  pool_stats_.sessions = pool_.size();
  pool_stats_.bytes = pool_bytes_;
  sessions_metric_.set(static_cast<double>(pool_.size()));
  session_bytes_metric_.set(static_cast<double>(pool_bytes_));
}

TimingService::PoolStats TimingService::pool_stats() const {
  const std::lock_guard<std::mutex> lk(map_mu_);
  return pool_stats_;
}

void TimingService::reset() {
  {
    const std::lock_guard<std::mutex> lk(map_mu_);
    pool_.clear();
    pool_bytes_ = 0;
    pool_stats_.sessions = 0;
    pool_stats_.bytes = 0;
    sessions_metric_.set(0.0);
    session_bytes_metric_.set(0.0);
  }
  cache_.clear();
}

}  // namespace mintc::serve
