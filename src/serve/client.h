// Blocking protocol client: what timing_client, timing_tool --remote and
// the socket-level tests use to talk to a timing_serve daemon.
//
// One Client is one connection, used from one thread. call() assigns a
// fresh numeric id, sends the frame and reads until the response with that
// id arrives — the server may answer pipelined requests out of order, so
// responses for OTHER outstanding ids (from send()) are stashed and handed
// out by their matching recv(). Every read waits at most `recv_timeout_ms`
// (kIo on expiry) so a hung server cannot hang the client.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>

#include "base/error.h"
#include "serve/json.h"
#include "serve/protocol.h"

namespace mintc::serve {

class Client {
 public:
  explicit Client(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : reader_(max_frame_bytes) {}
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Expected<bool> connect_unix(const std::string& path);
  Expected<bool> connect_tcp(const std::string& host, int port);

  /// Parse "unix:/path" or "host:port" and connect accordingly.
  Expected<bool> connect(const std::string& address);

  bool connected() const { return fd_ >= 0; }
  void close();

  void set_recv_timeout_ms(int ms) { recv_timeout_ms_ = ms; }

  /// One round trip: stamps `request` with a fresh id, sends, waits for the
  /// matching response envelope.
  Expected<Json> call(Json request);

  /// Pipelined use: send without waiting; returns the assigned id.
  Expected<long> send(Json request);
  /// Wait for the response with `id` (responses for other ids are stashed).
  Expected<Json> recv(long id);

 private:
  Expected<bool> write_all(const std::string& frame);
  Expected<Json> read_response();

  int fd_ = -1;
  FrameReader reader_;
  long next_id_ = 1;
  int recv_timeout_ms_ = 30000;
  std::unordered_map<long, Json> stash_;  // out-of-order responses by id
};

}  // namespace mintc::serve
