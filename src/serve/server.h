// SocketServer — the transport in front of TimingService.
//
// One IO thread accepts connections and polls every live socket (plus a
// self-pipe for shutdown); complete request lines are handed to a
// base::ThreadPool, where a worker runs TimingService::handle_line and
// writes the response frame back under the connection's write lock. That
// split gives the latency profile the SLO bench measures: the IO thread
// never computes, the workers never poll.
//
// Consequences worth knowing (all covered by the server/robustness tests):
//   * Requests from ONE connection may be answered out of order — each line
//     is an independent task. Clients match on the echoed id (client.h does).
//   * Connection lifetime is shared_ptr-managed: the IO thread drops its
//     reference when the peer disconnects, in-flight workers finish against
//     the dead socket (writes fail silently, MSG_NOSIGNAL), and the fd
//     closes with the last reference — a worker can never write into a
//     recycled fd.
//   * A frame overflow (partial line beyond the cap) gets one final
//     frame_too_large error written inline, then the connection is shut
//     down; malformed-but-complete lines only cost an error response.
//   * stop() closes the listeners, drains in-flight requests through a
//     base::TaskGroup (the pool may be shared in principle — the group
//     waits for OUR tasks only), then closes the remaining sockets.
//
// Listeners: a Unix-domain socket (path unlinked before bind and after
// stop) and/or loopback TCP (port 0 = ephemeral; tcp_port() reports the
// bound port).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/error.h"
#include "base/thread_pool.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/service.h"

namespace mintc::serve {

struct ServerConfig {
  /// Bind a Unix-domain socket at this path when non-empty.
  std::string unix_path;
  /// Bind loopback TCP on this port when >= 0 (0 picks an ephemeral port).
  int tcp_port = -1;
  /// Worker threads handling requests.
  int num_threads = 4;
  /// Per-frame byte cap (see protocol.h).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

class SocketServer {
 public:
  /// `service` must outlive the server.
  SocketServer(TimingService& service, ServerConfig config);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Bind the configured listeners and start the IO thread. Fails (kIo)
  /// when nothing could be bound.
  Expected<bool> start();

  /// Stop accepting, drain in-flight requests, close every socket.
  /// Idempotent.
  void stop();

  /// The bound TCP port (ephemeral ports resolved), -1 when TCP is off.
  int tcp_port() const { return tcp_port_; }
  const std::string& unix_path() const { return config_.unix_path; }

  long connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    explicit Conn(int fd_in, size_t max_frame) : fd(fd_in), reader(max_frame) {}
    ~Conn();

    /// Write `frame` fully under the write lock; failures mark the
    /// connection dead (the IO thread reaps it on its next poll round).
    void write_frame(const std::string& frame);

    const int fd;
    FrameReader reader;
    std::mutex write_mu;
    std::atomic<bool> dead{false};
  };

  void io_loop();
  void accept_ready(int listen_fd);
  /// Read what's available; extract lines and dispatch them. Returns false
  /// when the connection should be dropped from the poll set.
  bool drain_readable(const std::shared_ptr<Conn>& conn);
  void dispatch_line(std::shared_ptr<Conn> conn, std::string line);
  void wake_io();

  TimingService& service_;
  ServerConfig config_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int tcp_port_ = -1;
  int wake_pipe_[2] = {-1, -1};

  std::thread io_thread_;
  std::atomic<bool> running_{false};
  bool started_ = false;

  base::ThreadPool pool_;
  base::TaskGroup inflight_;

  // Owned by the IO thread while running; cleared in stop().
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;

  std::atomic<long> connections_accepted_{0};
  std::atomic<long> queue_depth_{0};
  obs::Gauge& queue_depth_metric_;
  obs::Counter& connections_metric_;
};

}  // namespace mintc::serve
