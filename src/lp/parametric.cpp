#include "lp/parametric.h"

#include <cmath>

namespace mintc::lp {

ParametricResult sweep_parameter(const std::function<Model(double)>& build, double lo, double hi,
                                 int samples, const SimplexSolver& solver, double slope_eps) {
  ParametricResult result;
  if (samples < 2 || hi <= lo) return result;

  const double step = (hi - lo) / (samples - 1);
  // Chain the optimal basis across samples: z*(θ) is piecewise-linear, so
  // the basis is constant within each segment and consecutive solves after
  // the first are pure warm re-optimizations (a handful of pivots at the
  // breakpoints, zero elsewhere).
  std::vector<int> basis;
  for (int i = 0; i < samples; ++i) {
    const double theta = lo + step * i;
    const Model m = build(theta);
    const Solution s = solver.solve(m, basis.empty() ? nullptr : &basis);
    if (s.optimal()) basis = s.basis;
    ParametricPoint p;
    p.theta = theta;
    p.status = s.status;
    p.objective = s.optimal() ? s.objective : 0.0;
    result.points.push_back(p);
  }

  // Recover maximal linear segments from consecutive optimal samples.
  const auto slope_at = [&](size_t i) {
    return (result.points[i + 1].objective - result.points[i].objective) / step;
  };
  size_t i = 0;
  while (i + 1 < result.points.size()) {
    if (result.points[i].status != SolveStatus::kOptimal ||
        result.points[i + 1].status != SolveStatus::kOptimal) {
      ++i;
      continue;
    }
    ParametricSegment seg;
    seg.theta_begin = result.points[i].theta;
    seg.value_begin = result.points[i].objective;
    seg.slope = slope_at(i);
    size_t j = i + 1;
    while (j + 1 < result.points.size() &&
           result.points[j + 1].status == SolveStatus::kOptimal &&
           std::fabs(slope_at(j) - seg.slope) <= slope_eps) {
      ++j;
    }
    seg.theta_end = result.points[j].theta;
    result.segments.push_back(seg);
    i = j;
  }
  return result;
}

}  // namespace mintc::lp
