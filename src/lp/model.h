// Linear-program model builder.
//
// A Model is a minimization LP over named variables:
//
//   minimize    c' x
//   subject to  a_r' x  {<=, >=, ==}  b_r     for each row r
//               lb_j <= x_j <= ub_j           for each variable j
//
// The SMO constraint generator (src/opt) builds one of these from a circuit;
// the solver in lp/simplex.h solves it. Rows and variables carry names so
// that tight constraints can be reported back to the user in circuit terms
// ("setup:L3", "prop:L2->L4", "C3:phi1/phi2", ...).
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace mintc::lp {

/// Constraint sense.
enum class Sense { kLe, kGe, kEq };

const char* to_string(Sense sense);

/// One coefficient of a row: coeff * x[var].
struct LinearTerm {
  int var = 0;
  double coeff = 0.0;
};

/// A linear constraint row.
struct Row {
  std::string name;
  std::vector<LinearTerm> terms;  // normalized: unique vars, ascending, no zeros
  Sense sense = Sense::kLe;
  double rhs = 0.0;
};

/// Variable metadata.
struct Variable {
  std::string name;
  double lower = 0.0;
  double upper = std::numeric_limits<double>::infinity();
  double objective = 0.0;  // cost coefficient (minimization)
};

inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// A minimization LP under construction.
class Model {
 public:
  /// Add a variable with bounds [lower, upper]; returns its index.
  /// `lower` may be -inf (free variables are handled by the solver).
  int add_variable(std::string name, double lower = 0.0, double upper = kInf);

  /// Set the objective coefficient of a variable (minimization).
  void set_objective(int var, double coeff);

  /// Add a constraint row. Duplicate variable mentions are summed; zero
  /// coefficients are dropped. Returns the row index.
  int add_row(std::string name, std::vector<LinearTerm> terms, Sense sense, double rhs);

  int num_variables() const { return static_cast<int>(variables_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }

  const Variable& variable(int j) const { return variables_.at(static_cast<size_t>(j)); }
  Variable& variable(int j) { return variables_.at(static_cast<size_t>(j)); }
  const Row& row(int r) const { return rows_.at(static_cast<size_t>(r)); }
  const std::vector<Variable>& variables() const { return variables_; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Evaluate a row's left-hand side at a point.
  double row_activity(int r, const std::vector<double>& x) const;

  /// True if the point satisfies every row and bound within `eps`.
  bool is_feasible(const std::vector<double>& x, double eps) const;

  /// Pretty-print the LP in a human-readable algebraic form (for debugging
  /// and for the constraint-listing bench).
  std::string to_string() const;

 private:
  std::vector<Variable> variables_;
  std::vector<Row> rows_;
};

}  // namespace mintc::lp
