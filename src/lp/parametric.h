// Parametric right-hand-side analysis.
//
// Section VI of the paper: "We also intend to use parametric programming
// techniques to quantify the notion of critical path segments and to study
// the effects on the optimal cycle time of varying the circuit delays."
//
// A combinational delay Δ_ji appears only on the RHS of L2R rows
// (D_i - D_j - s_pj + s_pi + C·Tc >= Δ_DQj + Δ_ji), so varying one delay is
// exactly a parametric-RHS sweep: z*(θ) is piecewise-linear and convex in θ.
// This module samples z*(θ) over a range and recovers the breakpoints, which
// is how bench_fig7 regenerates the paper's three-segment Tc(Δ41) curve.
#pragma once

#include <functional>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"

namespace mintc::lp {

/// One sampled point of the parametric optimum.
struct ParametricPoint {
  double theta = 0.0;
  double objective = 0.0;
  SolveStatus status = SolveStatus::kOptimal;
};

/// A maximal linear segment of the piecewise-linear optimum z*(θ).
struct ParametricSegment {
  double theta_begin = 0.0;
  double theta_end = 0.0;
  double slope = 0.0;       // dz*/dθ on this segment
  double value_begin = 0.0; // z*(theta_begin)
};

struct ParametricResult {
  std::vector<ParametricPoint> points;
  std::vector<ParametricSegment> segments;
};

/// Sweep θ over [lo, hi] in `samples` uniform steps. `apply` must rewrite the
/// model for a given θ (typically: rebuild, or adjust row RHS values).
/// Segments are recovered by merging consecutive samples with equal slope
/// (within slope_eps). Infeasible samples terminate segment recovery.
ParametricResult sweep_parameter(const std::function<Model(double)>& build, double lo, double hi,
                                 int samples, const SimplexSolver& solver,
                                 double slope_eps = 1e-6);

}  // namespace mintc::lp
