// Dense two-phase primal simplex.
//
// This mirrors the solver described in the paper's Section V: "a
// dense-matrix LP solver which implements the standard simplex algorithm".
// It is deliberately a textbook implementation — the SMO LPs are small
// (constraints grow linearly in the latch count, Section IV) — with the
// usual robustness measures:
//
//   * general bounds: finite lower bounds are shifted out, free variables
//     are split, finite upper bounds become explicit rows;
//   * phase 1 minimizes the sum of artificial variables; basic artificials
//     are driven out of the basis (redundant rows are dropped);
//   * Dantzig pricing with an automatic switch to Bland's rule after a run
//     of degenerate pivots, which guarantees termination;
//   * duals and row activities are reported so the caller can identify
//     tight constraints (the paper's "critical segments").
#pragma once

#include <string>
#include <vector>

#include "lp/model.h"

namespace mintc::lp {

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterLimit };

const char* to_string(SolveStatus status);

struct SolveStats {
  int phase1_pivots = 0;
  int phase2_pivots = 0;
  int degenerate_pivots = 0;  // pivots that left the objective unchanged
  int rows = 0;     // tableau rows after preprocessing
  int cols = 0;     // tableau columns after preprocessing
  bool used_bland = false;
  bool warm_started = false;   // a caller-supplied basis was installed; phase 1 skipped
  bool warm_rejected = false;  // a basis hint was supplied but unusable (fell back cold)
};

/// Result of a solve. `x`, `duals` and `activity` are indexed like the
/// model's variables and rows; they are only meaningful when
/// status == kOptimal.
struct Solution {
  SolveStatus status = SolveStatus::kIterLimit;
  double objective = 0.0;
  std::vector<double> x;
  std::vector<double> duals;
  std::vector<double> activity;
  SolveStats stats;
  /// The optimal basis: one standard-form column per tableau row. Opaque to
  /// callers except as a `basis_hint` for a later solve of a *same-shaped*
  /// model (same variables, bounds and rows, possibly different
  /// coefficients/RHS) — the parametric-RHS situation of Section VI, where
  /// the optimal basis usually survives small perturbations.
  std::vector<int> basis;

  bool optimal() const { return status == SolveStatus::kOptimal; }

  /// Slack of row r: rhs - activity for <=, activity - rhs for >=,
  /// |activity - rhs| for ==. Zero slack means the row is tight (critical).
  double row_slack(const Model& model, int r) const;
};

class SimplexSolver {
 public:
  struct Options {
    double eps = 1e-9;           // pivot / feasibility tolerance
    int max_pivots = 200000;     // hard iteration cap across both phases
    bool bland_from_start = false;
    int stall_limit = 64;        // degenerate pivots before switching to Bland
  };

  SimplexSolver() = default;
  explicit SimplexSolver(Options options) : options_(options) {}

  /// Solve the model. Never throws on infeasible/unbounded input; those are
  /// reported in Solution::status.
  ///
  /// `basis_hint` (optional) warm-starts the solve from a previous
  /// Solution::basis: the hinted columns are re-installed by Gaussian
  /// elimination and, when they still form a primal-feasible basis, phase 1
  /// is skipped entirely and phase 2 re-optimizes from there. Any defect in
  /// the hint (wrong size, artificial/duplicate columns, singular or
  /// infeasible basis) falls back to the ordinary two-phase solve, so a
  /// stale hint can cost time but never correctness.
  Solution solve(const Model& model, const std::vector<int>* basis_hint = nullptr) const;

  const Options& options() const { return options_; }

 private:
  Solution solve_impl(const Model& model, const std::vector<int>* basis_hint) const;

  Options options_;
};

}  // namespace mintc::lp
