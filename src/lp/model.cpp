#include "lp/model.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "base/approx.h"
#include "base/strings.h"

namespace mintc::lp {

const char* to_string(Sense sense) {
  switch (sense) {
    case Sense::kLe: return "<=";
    case Sense::kGe: return ">=";
    case Sense::kEq: return "==";
  }
  return "?";
}

int Model::add_variable(std::string name, double lower, double upper) {
  Variable v;
  v.name = std::move(name);
  v.lower = lower;
  v.upper = upper;
  variables_.push_back(std::move(v));
  return static_cast<int>(variables_.size()) - 1;
}

void Model::set_objective(int var, double coeff) {
  variables_.at(static_cast<size_t>(var)).objective = coeff;
}

int Model::add_row(std::string name, std::vector<LinearTerm> terms, Sense sense, double rhs) {
  // Normalize: merge duplicate variables, drop zeros, sort by index.
  std::map<int, double> merged;
  for (const LinearTerm& t : terms) merged[t.var] += t.coeff;
  Row row;
  row.name = std::move(name);
  row.sense = sense;
  row.rhs = rhs;
  for (const auto& [var, coeff] : merged) {
    if (coeff != 0.0) row.terms.push_back({var, coeff});
  }
  rows_.push_back(std::move(row));
  return static_cast<int>(rows_.size()) - 1;
}

double Model::row_activity(int r, const std::vector<double>& x) const {
  const Row& row = rows_.at(static_cast<size_t>(r));
  double acc = 0.0;
  for (const LinearTerm& t : row.terms) acc += t.coeff * x.at(static_cast<size_t>(t.var));
  return acc;
}

bool Model::is_feasible(const std::vector<double>& x, double eps) const {
  for (int j = 0; j < num_variables(); ++j) {
    const Variable& v = variables_[static_cast<size_t>(j)];
    const double xj = x.at(static_cast<size_t>(j));
    if (!approx_ge(xj, v.lower, eps) || !approx_le(xj, v.upper, eps)) return false;
  }
  for (int r = 0; r < num_rows(); ++r) {
    const double a = row_activity(r, x);
    const Row& row = rows_[static_cast<size_t>(r)];
    switch (row.sense) {
      case Sense::kLe:
        if (!approx_le(a, row.rhs, eps)) return false;
        break;
      case Sense::kGe:
        if (!approx_ge(a, row.rhs, eps)) return false;
        break;
      case Sense::kEq:
        if (!approx_eq(a, row.rhs, eps)) return false;
        break;
    }
  }
  return true;
}

std::string Model::to_string() const {
  std::ostringstream out;
  out << "minimize ";
  bool first = true;
  for (size_t j = 0; j < variables_.size(); ++j) {
    if (variables_[j].objective == 0.0) continue;
    const double c = variables_[j].objective;
    if (!first) out << (c >= 0 ? " + " : " - ");
    else if (c < 0) out << "-";
    if (std::fabs(c) != 1.0) out << fmt_time(std::fabs(c)) << "*";
    out << variables_[j].name;
    first = false;
  }
  if (first) out << "0";
  out << "\nsubject to\n";
  for (const Row& row : rows_) {
    out << "  [" << row.name << "]  ";
    bool f = true;
    for (const LinearTerm& t : row.terms) {
      const double c = t.coeff;
      if (!f) out << (c >= 0 ? " + " : " - ");
      else if (c < 0) out << "-";
      if (std::fabs(c) != 1.0) out << fmt_time(std::fabs(c)) << "*";
      out << variables_[static_cast<size_t>(t.var)].name;
      f = false;
    }
    if (f) out << "0";
    out << " " << lp::to_string(row.sense) << " " << fmt_time(row.rhs) << "\n";
  }
  for (const Variable& v : variables_) {
    if (v.lower == 0.0 && v.upper == kInf) continue;
    out << "  " << fmt_time(v.lower) << " <= " << v.name;
    if (v.upper != kInf) out << " <= " << fmt_time(v.upper);
    out << "\n";
  }
  return out.str();
}

}  // namespace mintc::lp
