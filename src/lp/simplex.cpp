#include "lp/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "base/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mintc::lp {

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterLimit: return "iteration_limit";
  }
  return "?";
}

double Solution::row_slack(const Model& model, int r) const {
  const Row& row = model.row(r);
  const double a = activity.at(static_cast<size_t>(r));
  switch (row.sense) {
    case Sense::kLe: return row.rhs - a;
    case Sense::kGe: return a - row.rhs;
    case Sense::kEq: return -std::fabs(a - row.rhs);
  }
  return 0.0;
}

namespace {

// How an original model variable maps into tableau columns.
struct VarMap {
  int pos = -1;       // column of the shifted nonnegative part
  int neg = -1;       // column of x^- when the variable is free
  double shift = 0.0; // finite lower bound subtracted out
};

// The working standard-form problem:  A x = b, x >= 0, b >= 0.
struct Standard {
  int m = 0;                       // rows
  int n = 0;                       // columns (structural + slack + artificial)
  std::vector<double> a;           // m x n, row-major
  std::vector<double> b;           // m
  std::vector<double> cost;        // n, phase-2 objective
  std::vector<bool> artificial;    // per column
  std::vector<int> basis;          // per row: basic column
  std::vector<int> row_origin;     // per row: original model row, or -1 for bound rows
  std::vector<int> dual_col;       // per row: column that carries +e_i (slack or artificial), -1 if none
  std::vector<double> dual_sign;   // per row: sign to apply to that column's reduced cost
  double c0 = 0.0;                 // objective constant from bound shifting

  double& at(int i, int j) { return a[static_cast<size_t>(i) * static_cast<size_t>(n) + static_cast<size_t>(j)]; }
  double at(int i, int j) const { return a[static_cast<size_t>(i) * static_cast<size_t>(n) + static_cast<size_t>(j)]; }
};

// Dense row operations for the tableau: rows of `a` plus parallel vectors.
class Tableau {
 public:
  Tableau(Standard& s, double eps) : s_(s), eps_(eps) {}

  // Reduced costs for the given cost vector, given the current basis.
  // r_j = c_j - y' a_j where y solves  y' B = c_B.
  // We maintain the tableau in explicitly reduced form instead: after every
  // pivot, a = B^{-1} A, so reduced costs are recomputed incrementally in the
  // `red_` row.
  void start_phase(const std::vector<double>& cost) {
    cost_ = cost;
    red_ = cost;
    obj_ = 0.0;
    // Make reduced costs consistent with the current basis: subtract
    // multiples of basic rows so that basic columns have zero reduced cost.
    for (int i = 0; i < s_.m; ++i) {
      const int bc = s_.basis[static_cast<size_t>(i)];
      const double cb = cost_[static_cast<size_t>(bc)];
      if (cb == 0.0) continue;
      for (int j = 0; j < s_.n; ++j) red_[static_cast<size_t>(j)] -= cb * s_.at(i, j);
      obj_ += cb * s_.b[static_cast<size_t>(i)];
    }
  }

  double objective() const { return obj_; }
  double reduced_cost(int j) const { return red_[static_cast<size_t>(j)]; }

  // Choose an entering column: most negative reduced cost (Dantzig) or the
  // lowest-index negative one (Bland). Banned columns are skipped.
  int choose_entering(bool bland, const std::vector<bool>& banned) const {
    int best = -1;
    double best_red = -eps_;
    for (int j = 0; j < s_.n; ++j) {
      if (banned[static_cast<size_t>(j)]) continue;
      const double r = red_[static_cast<size_t>(j)];
      if (r < best_red) {
        if (bland) return j;
        best_red = r;
        best = j;
      }
    }
    return best;
  }

  // Ratio test: choose the leaving row. Returns -1 if the column is
  // unbounded. Bland tie-break: smallest basic variable index.
  int choose_leaving(int entering, bool bland) const {
    int best_row = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int i = 0; i < s_.m; ++i) {
      const double aij = s_.at(i, entering);
      if (aij <= eps_) continue;
      const double ratio = s_.b[static_cast<size_t>(i)] / aij;
      if (ratio < best_ratio - eps_) {
        best_ratio = ratio;
        best_row = i;
      } else if (ratio < best_ratio + eps_ && best_row >= 0) {
        // Tie: prefer leaving artificials, then Bland's smallest index.
        const int cur = s_.basis[static_cast<size_t>(i)];
        const int prev = s_.basis[static_cast<size_t>(best_row)];
        const bool cur_art = s_.artificial[static_cast<size_t>(cur)];
        const bool prev_art = s_.artificial[static_cast<size_t>(prev)];
        if (cur_art && !prev_art) {
          best_row = i;
        } else if (bland && cur_art == prev_art && cur < prev) {
          best_row = i;
        }
      }
    }
    return best_row;
  }

  // Pivot on (row, col): scale the pivot row, eliminate the column from all
  // other rows and from the reduced-cost row.
  void pivot(int row, int col) {
    const double piv = s_.at(row, col);
    assert(std::fabs(piv) > eps_);
    const double inv = 1.0 / piv;
    for (int j = 0; j < s_.n; ++j) s_.at(row, j) *= inv;
    s_.b[static_cast<size_t>(row)] *= inv;
    s_.at(row, col) = 1.0;  // exact
    for (int i = 0; i < s_.m; ++i) {
      if (i == row) continue;
      const double f = s_.at(i, col);
      if (f == 0.0) continue;
      for (int j = 0; j < s_.n; ++j) s_.at(i, j) -= f * s_.at(row, j);
      s_.b[static_cast<size_t>(i)] -= f * s_.b[static_cast<size_t>(row)];
      s_.at(i, col) = 0.0;  // exact
      if (s_.b[static_cast<size_t>(i)] < 0.0 && s_.b[static_cast<size_t>(i)] > -eps_) {
        s_.b[static_cast<size_t>(i)] = 0.0;
      }
    }
    const double fr = red_[static_cast<size_t>(col)];
    if (fr != 0.0) {
      for (int j = 0; j < s_.n; ++j) red_[static_cast<size_t>(j)] -= fr * s_.at(row, j);
      obj_ += fr * s_.b[static_cast<size_t>(row)];
      red_[static_cast<size_t>(col)] = 0.0;  // exact
    }
    s_.basis[static_cast<size_t>(row)] = col;
  }

 private:
  Standard& s_;
  double eps_;
  std::vector<double> cost_;
  std::vector<double> red_;
  double obj_ = 0.0;  // c_B' b accumulated; actual objective = -(...) handled by caller
};

// Re-install a previously optimal basis on a freshly built standard form.
// Tableau::pivot cannot be used here — its reduced-cost row only exists
// after start_phase — so this is raw Gauss-Jordan elimination on `s` alone.
// The hint is treated as a *set* of columns: for each column the best pivot
// row among the not-yet-assigned ones is chosen, which tolerates the row
// permutations a rebuilt tableau can introduce. Returns false (leaving `s`
// in an undefined state — caller must restore a backup) when the hint is
// malformed, names an artificial column, is numerically singular, or the
// resulting basic point is primal-infeasible.
bool install_basis(Standard& s, const std::vector<int>& hint) {
  if (static_cast<int>(hint.size()) != s.m) return false;
  std::vector<bool> used_col(static_cast<size_t>(s.n), false);
  for (const int c : hint) {
    if (c < 0 || c >= s.n) return false;
    if (s.artificial[static_cast<size_t>(c)]) return false;
    if (used_col[static_cast<size_t>(c)]) return false;
    used_col[static_cast<size_t>(c)] = true;
  }
  std::vector<bool> used_row(static_cast<size_t>(s.m), false);
  for (const int col : hint) {
    int row = -1;
    double best = 1e-8;  // singularity threshold
    for (int i = 0; i < s.m; ++i) {
      if (used_row[static_cast<size_t>(i)]) continue;
      const double a = std::fabs(s.at(i, col));
      if (a > best) {
        best = a;
        row = i;
      }
    }
    if (row < 0) return false;
    used_row[static_cast<size_t>(row)] = true;
    const double inv = 1.0 / s.at(row, col);
    for (int j = 0; j < s.n; ++j) s.at(row, j) *= inv;
    s.b[static_cast<size_t>(row)] *= inv;
    s.at(row, col) = 1.0;  // exact
    for (int i = 0; i < s.m; ++i) {
      if (i == row) continue;
      const double f = s.at(i, col);
      if (f == 0.0) continue;
      for (int j = 0; j < s.n; ++j) s.at(i, j) -= f * s.at(row, j);
      s.b[static_cast<size_t>(i)] -= f * s.b[static_cast<size_t>(row)];
      s.at(i, col) = 0.0;  // exact
    }
    s.basis[static_cast<size_t>(row)] = col;
  }
  // Primal feasibility of the basic point; without it phase 1 cannot be
  // skipped. Small negative noise is clamped like in Tableau::pivot.
  for (int i = 0; i < s.m; ++i) {
    double& bi = s.b[static_cast<size_t>(i)];
    if (bi < -1e-7) return false;
    if (bi < 0.0) bi = 0.0;
  }
  return true;
}

}  // namespace

Solution SimplexSolver::solve(const Model& model, const std::vector<int>* basis_hint) const {
  const obs::TraceSpan span("simplex.solve", "lp");
  Solution sol = solve_impl(model, basis_hint);
  auto& reg = obs::MetricsRegistry::instance();
  const long pivots = sol.stats.phase1_pivots + sol.stats.phase2_pivots;
  reg.counter("simplex.solves", {{"status", to_string(sol.status)}}).inc();
  reg.counter("simplex.pivots").inc(pivots);
  reg.counter("simplex.degenerate_pivots").inc(sol.stats.degenerate_pivots);
  if (sol.stats.used_bland) reg.counter("simplex.bland_switches").inc();
  if (sol.stats.warm_started) reg.counter("simplex.warm_starts").inc();
  if (sol.stats.warm_rejected) reg.counter("simplex.warm_fallbacks").inc();
  reg.histogram("simplex.pivots_per_solve").observe(static_cast<double>(pivots));
  return sol;
}

Solution SimplexSolver::solve_impl(const Model& model, const std::vector<int>* basis_hint) const {
  const double eps = options_.eps;
  Solution sol;
  sol.x.assign(static_cast<size_t>(model.num_variables()), 0.0);
  sol.duals.assign(static_cast<size_t>(model.num_rows()), 0.0);
  sol.activity.assign(static_cast<size_t>(model.num_rows()), 0.0);

  // ---- 1. Transform variables: shift lower bounds, split free variables.
  std::vector<VarMap> vmap(static_cast<size_t>(model.num_variables()));
  int ncols = 0;
  for (int j = 0; j < model.num_variables(); ++j) {
    const Variable& v = model.variable(j);
    VarMap& mpj = vmap[static_cast<size_t>(j)];
    if (std::isfinite(v.lower)) {
      mpj.shift = v.lower;
      mpj.pos = ncols++;
    } else {
      mpj.pos = ncols++;
      mpj.neg = ncols++;
    }
  }
  const int n_struct = ncols;

  // ---- 2. Collect rows: model rows plus upper-bound rows.
  struct WorkRow {
    std::vector<std::pair<int, double>> terms;  // (column, coeff)
    Sense sense;
    double rhs;
    int origin;  // model row index or -1
    bool flipped = false;  // negated during RHS normalization
  };
  std::vector<WorkRow> work;
  work.reserve(static_cast<size_t>(model.num_rows()));
  for (int r = 0; r < model.num_rows(); ++r) {
    const Row& row = model.row(r);
    WorkRow w;
    w.sense = row.sense;
    w.rhs = row.rhs;
    w.origin = r;
    for (const LinearTerm& t : row.terms) {
      const VarMap& mpj = vmap[static_cast<size_t>(t.var)];
      w.terms.emplace_back(mpj.pos, t.coeff);
      if (mpj.neg >= 0) w.terms.emplace_back(mpj.neg, -t.coeff);
      w.rhs -= t.coeff * mpj.shift;
    }
    work.push_back(std::move(w));
  }
  for (int j = 0; j < model.num_variables(); ++j) {
    const Variable& v = model.variable(j);
    if (!std::isfinite(v.upper)) continue;
    const VarMap& mpj = vmap[static_cast<size_t>(j)];
    WorkRow w;
    w.sense = Sense::kLe;
    w.rhs = v.upper - mpj.shift;
    w.origin = -1;
    w.terms.emplace_back(mpj.pos, 1.0);
    if (mpj.neg >= 0) w.terms.emplace_back(mpj.neg, -1.0);
    work.push_back(std::move(w));
  }

  // Normalize to nonnegative RHS.
  for (WorkRow& w : work) {
    if (w.rhs < 0.0) {
      for (auto& [col, coeff] : w.terms) coeff = -coeff;
      w.rhs = -w.rhs;
      if (w.sense == Sense::kLe) w.sense = Sense::kGe;
      else if (w.sense == Sense::kGe) w.sense = Sense::kLe;
      w.flipped = true;
    }
  }

  // ---- 3. Count slack/artificial columns and build the standard form.
  Standard s;
  s.m = static_cast<int>(work.size());
  int extra = 0;
  for (const WorkRow& w : work) {
    if (w.sense == Sense::kLe) extra += 1;          // slack
    else if (w.sense == Sense::kGe) extra += 2;     // surplus + artificial
    else extra += 1;                                 // artificial
  }
  s.n = n_struct + extra;
  s.a.assign(static_cast<size_t>(s.m) * static_cast<size_t>(s.n), 0.0);
  s.b.assign(static_cast<size_t>(s.m), 0.0);
  s.cost.assign(static_cast<size_t>(s.n), 0.0);
  s.artificial.assign(static_cast<size_t>(s.n), false);
  s.basis.assign(static_cast<size_t>(s.m), -1);
  s.row_origin.assign(static_cast<size_t>(s.m), -1);
  s.dual_col.assign(static_cast<size_t>(s.m), -1);
  s.dual_sign.assign(static_cast<size_t>(s.m), 1.0);

  // Phase-2 cost over structural columns.
  for (int j = 0; j < model.num_variables(); ++j) {
    const Variable& v = model.variable(j);
    if (v.objective == 0.0) continue;
    const VarMap& mpj = vmap[static_cast<size_t>(j)];
    s.cost[static_cast<size_t>(mpj.pos)] += v.objective;
    if (mpj.neg >= 0) s.cost[static_cast<size_t>(mpj.neg)] -= v.objective;
    s.c0 += v.objective * mpj.shift;
  }

  int next = n_struct;
  std::vector<double> phase1_cost(static_cast<size_t>(s.n), 0.0);
  for (int i = 0; i < s.m; ++i) {
    const WorkRow& w = work[static_cast<size_t>(i)];
    s.row_origin[static_cast<size_t>(i)] = w.origin;
    for (const auto& [col, coeff] : w.terms) s.at(i, col) += coeff;
    s.b[static_cast<size_t>(i)] = w.rhs;
    s.dual_sign[static_cast<size_t>(i)] = w.flipped ? 1.0 : -1.0;
    switch (w.sense) {
      case Sense::kLe: {
        const int slack = next++;
        s.at(i, slack) = 1.0;
        s.basis[static_cast<size_t>(i)] = slack;
        s.dual_col[static_cast<size_t>(i)] = slack;
        break;
      }
      case Sense::kGe: {
        const int surplus = next++;
        const int art = next++;
        s.at(i, surplus) = -1.0;
        s.at(i, art) = 1.0;
        s.artificial[static_cast<size_t>(art)] = true;
        phase1_cost[static_cast<size_t>(art)] = 1.0;
        s.basis[static_cast<size_t>(i)] = art;
        s.dual_col[static_cast<size_t>(i)] = art;
        break;
      }
      case Sense::kEq: {
        const int art = next++;
        s.at(i, art) = 1.0;
        s.artificial[static_cast<size_t>(art)] = true;
        phase1_cost[static_cast<size_t>(art)] = 1.0;
        s.basis[static_cast<size_t>(i)] = art;
        s.dual_col[static_cast<size_t>(i)] = art;
        break;
      }
    }
  }
  assert(next == s.n);
  sol.stats.rows = s.m;
  sol.stats.cols = s.n;

  Tableau tab(s, eps);
  std::vector<bool> banned(static_cast<size_t>(s.n), false);

  auto run_phase = [&](const std::vector<double>& cost, int& pivots, bool phase1) -> SolveStatus {
    tab.start_phase(cost);
    bool bland = options_.bland_from_start;
    int stall = 0;
    double last_obj = tab.objective();
    while (true) {
      if (pivots + sol.stats.phase1_pivots + sol.stats.phase2_pivots >= options_.max_pivots) {
        return SolveStatus::kIterLimit;
      }
      const int entering = tab.choose_entering(bland, banned);
      if (entering < 0) return SolveStatus::kOptimal;  // phase optimum reached
      const int leaving = tab.choose_leaving(entering, bland);
      if (leaving < 0) return SolveStatus::kUnbounded;
      tab.pivot(leaving, entering);
      ++pivots;
      const double obj = tab.objective();
      if (std::fabs(obj - last_obj) <= eps) {
        ++sol.stats.degenerate_pivots;
        if (++stall >= options_.stall_limit && !bland) {
          bland = true;
          sol.stats.used_bland = true;
        }
      } else {
        stall = 0;
        if (bland && !options_.bland_from_start) bland = false;
      }
      last_obj = obj;
      (void)phase1;
    }
  };

  // ---- 4a. Warm start: try to re-install the hinted basis and skip phase 1.
  bool warm = false;
  if (basis_hint != nullptr && !basis_hint->empty()) {
    const Standard backup = s;
    if (install_basis(s, *basis_hint)) {
      warm = true;
      sol.stats.warm_started = true;
      // The hinted basis is artificial-free; keep artificials locked out.
      for (int j = 0; j < s.n; ++j) {
        if (s.artificial[static_cast<size_t>(j)]) banned[static_cast<size_t>(j)] = true;
      }
    } else {
      sol.stats.warm_rejected = true;
      s = backup;
    }
  }

  // ---- 4. Phase 1.
  const bool any_artificial =
      !warm && std::any_of(s.artificial.begin(), s.artificial.end(), [](bool v) { return v; });
  if (any_artificial) {
    const SolveStatus st = run_phase(phase1_cost, sol.stats.phase1_pivots, true);
    if (st == SolveStatus::kIterLimit) {
      sol.status = st;
      return sol;
    }
    if (st == SolveStatus::kUnbounded) {
      // Phase-1 objective is bounded below by 0; unbounded means a bug.
      log_error() << "simplex: phase-1 reported unbounded";
      sol.status = SolveStatus::kIterLimit;
      return sol;
    }
    // Infeasible if artificials cannot be driven to zero. tab.objective()
    // tracks c_B'b for the phase-1 cost, i.e. the artificial sum.
    double art_sum = 0.0;
    for (int i = 0; i < s.m; ++i) {
      const int bc = s.basis[static_cast<size_t>(i)];
      if (s.artificial[static_cast<size_t>(bc)]) art_sum += s.b[static_cast<size_t>(i)];
    }
    if (art_sum > 1e-7) {
      sol.status = SolveStatus::kInfeasible;
      return sol;
    }
    // Drive basic artificials (at zero) out of the basis.
    for (int i = 0; i < s.m; ++i) {
      const int bc = s.basis[static_cast<size_t>(i)];
      if (!s.artificial[static_cast<size_t>(bc)]) continue;
      int piv_col = -1;
      for (int j = 0; j < s.n; ++j) {
        if (s.artificial[static_cast<size_t>(j)]) continue;
        if (std::fabs(s.at(i, j)) > 1e-8) {
          piv_col = j;
          break;
        }
      }
      if (piv_col >= 0) {
        tab.pivot(i, piv_col);
        ++sol.stats.phase1_pivots;
      } else {
        // Redundant row: every structural coefficient eliminated. Blank the
        // row so it can never constrain anything again.
        for (int j = 0; j < s.n; ++j) s.at(i, j) = 0.0;
        s.at(i, bc) = 1.0;
        s.b[static_cast<size_t>(i)] = 0.0;
      }
    }
    // Artificials may never re-enter.
    for (int j = 0; j < s.n; ++j) {
      if (s.artificial[static_cast<size_t>(j)]) banned[static_cast<size_t>(j)] = true;
    }
  }

  // ---- 5. Phase 2.
  const SolveStatus st2 = run_phase(s.cost, sol.stats.phase2_pivots, false);
  if (st2 != SolveStatus::kOptimal) {
    sol.status = st2;
    return sol;
  }

  // ---- 6. Extract primal solution.
  std::vector<double> xs(static_cast<size_t>(s.n), 0.0);
  for (int i = 0; i < s.m; ++i) {
    xs[static_cast<size_t>(s.basis[static_cast<size_t>(i)])] = s.b[static_cast<size_t>(i)];
  }
  for (int j = 0; j < model.num_variables(); ++j) {
    const VarMap& mpj = vmap[static_cast<size_t>(j)];
    double v = xs[static_cast<size_t>(mpj.pos)];
    if (mpj.neg >= 0) v -= xs[static_cast<size_t>(mpj.neg)];
    sol.x[static_cast<size_t>(j)] = v + mpj.shift;
  }
  sol.objective = 0.0;
  for (int j = 0; j < model.num_variables(); ++j) {
    sol.objective += model.variable(j).objective * sol.x[static_cast<size_t>(j)];
  }

  // ---- 7. Duals and activities. y_i = dual_sign * reduced_cost(dual_col).
  for (int i = 0; i < s.m; ++i) {
    const int origin = s.row_origin[static_cast<size_t>(i)];
    if (origin < 0) continue;
    const int dc = s.dual_col[static_cast<size_t>(i)];
    if (dc < 0) continue;
    sol.duals[static_cast<size_t>(origin)] =
        s.dual_sign[static_cast<size_t>(i)] * tab.reduced_cost(dc);
  }
  for (int r = 0; r < model.num_rows(); ++r) {
    sol.activity[static_cast<size_t>(r)] = model.row_activity(r, sol.x);
  }

  sol.basis = s.basis;  // reusable as basis_hint on a same-shaped model
  sol.status = SolveStatus::kOptimal;
  return sol;
}

}  // namespace mintc::lp
