#include "sim/token_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "model/timing_view.h"

namespace mintc::sim {

namespace {

struct Ready {
  double depart_abs;  // earliest possible departure in absolute time
  int element;
  int generation;
  bool operator>(const Ready& o) const { return depart_abs > o.depart_abs; }
};

}  // namespace

SimResult simulate_tokens(const Circuit& circuit, const ClockSchedule& schedule,
                          const SimOptions& options) {
  SimResult res;
  const int l = circuit.num_elements();
  const int G = options.max_generations;
  res.departure.assign(static_cast<size_t>(l), 0.0);
  if (l == 0 || schedule.cycle <= 0.0) {
    res.converged = true;
    return res;
  }

  // One flattened view serves the whole event loop below.
  const TimingView view(circuit);
  const ShiftTable shifts(schedule);

  // expected[i]: fanin contributions needed per generation (g >= 1); for
  // g = 0, cross-boundary fanins (C = 1) have no token yet.
  std::vector<int> expected_all(static_cast<size_t>(l), 0);
  std::vector<int> expected_g0(static_cast<size_t>(l), 0);
  for (int i = 0; i < l; ++i) {
    const EdgeIndex fi_end = view.fanin_end(i);
    for (EdgeIndex fe = view.fanin_begin(i); fe < fi_end; ++fe) {
      ++expected_all[static_cast<size_t>(i)];
      if (view.edge_cross(fe) == 0) ++expected_g0[static_cast<size_t>(i)];
    }
  }

  // received[i] / arrival[i] track the in-flight generation gen[i].
  std::vector<int> gen(static_cast<size_t>(l), 0);
  std::vector<int> received(static_cast<size_t>(l), 0);
  std::vector<double> arrival(static_cast<size_t>(l),
                              -std::numeric_limits<double>::infinity());
  std::vector<double> last_departure(static_cast<size_t>(l), 0.0);

  // Contributions that arrived for a FUTURE generation of their destination
  // (a C=1 edge delivers into g+1 while the destination is still at g).
  // Buffered per destination: (generation, time).
  std::vector<std::vector<std::pair<int, double>>> pending(static_cast<size_t>(l));

  std::vector<int> fired_count(static_cast<size_t>(G), 0);
  std::vector<double> delta(static_cast<size_t>(G), 0.0);

  std::priority_queue<Ready, std::vector<Ready>, std::greater<Ready>> queue;

  const auto phase_start = [&](int i, int g) {
    return shifts.start(view.phase(i)) + g * shifts.cycle();
  };

  const auto push_ready = [&](int i, int g, double arrive_abs) {
    const double open = phase_start(i, g);
    queue.push(Ready{std::max(open, arrive_abs), i, g});
  };

  // Elements needing no fanin for generation 0 are ready immediately.
  for (int i = 0; i < l; ++i) {
    if (expected_g0[static_cast<size_t>(i)] == 0) {
      push_ready(i, 0, -std::numeric_limits<double>::infinity());
    }
  }

  const auto deliver = [&](int dst, int g, double t) {
    if (g >= G) return;
    if (g != gen[static_cast<size_t>(dst)]) {
      pending[static_cast<size_t>(dst)].push_back({g, t});
      return;
    }
    arrival[static_cast<size_t>(dst)] = std::max(arrival[static_cast<size_t>(dst)], t);
    ++received[static_cast<size_t>(dst)];
    const int need = (g == 0) ? expected_g0[static_cast<size_t>(dst)]
                              : expected_all[static_cast<size_t>(dst)];
    if (received[static_cast<size_t>(dst)] == need) {
      push_ready(dst, g, arrival[static_cast<size_t>(dst)]);
    }
  };

  int steady_at = -1;
  while (!queue.empty()) {
    const Ready r = queue.top();
    queue.pop();
    ++res.events;
    const double open = phase_start(r.element, r.generation);
    const double arrive = arrival[static_cast<size_t>(r.element)];

    double depart_abs;
    if (view.is_latch(r.element)) {
      depart_abs = std::max(open, arrive);
      const double d_rel = depart_abs - open;
      if (d_rel + view.setup_margin(r.element) > shifts.width(view.phase(r.element)) + 1e-9 &&
          res.first_violation_generation < 0) {
        res.setup_ok = false;
        res.first_violation_generation = r.generation;
      }
    } else {
      depart_abs = open;  // flip-flop: clock edge launches
      if (arrive > open - view.setup_margin(r.element) + 1e-9 &&
          res.first_violation_generation < 0) {
        res.setup_ok = false;
        res.first_violation_generation = r.generation;
      }
    }

    // Steady-state bookkeeping.
    const double d_rel = depart_abs - open;
    const size_t gi = static_cast<size_t>(r.generation);
    delta[gi] = std::max(delta[gi],
                         std::fabs(d_rel - last_departure[static_cast<size_t>(r.element)]));
    last_departure[static_cast<size_t>(r.element)] = d_rel;
    ++fired_count[gi];
    if (fired_count[gi] == l && r.generation >= 1 && delta[gi] <= options.eps &&
        steady_at < 0) {
      steady_at = r.generation;
      break;
    }

    // Emit the token to every fanout.
    const EdgeIndex fo_end = view.fanout_end(r.element);
    for (EdgeIndex f = view.fanout_begin(r.element); f < fo_end; ++f) {
      const EdgeIndex fe = view.fanout_edge(f);
      const int target_gen = r.generation + view.edge_cross(fe);
      deliver(view.edge_dst(fe), target_gen, depart_abs + view.edge_max_const(fe));
    }

    // Advance this element to its next generation.
    const int next = r.generation + 1;
    if (next < G) {
      gen[static_cast<size_t>(r.element)] = next;
      received[static_cast<size_t>(r.element)] = 0;
      arrival[static_cast<size_t>(r.element)] = -std::numeric_limits<double>::infinity();
      // Drain buffered deliveries for the new generation.
      auto& buf = pending[static_cast<size_t>(r.element)];
      std::vector<std::pair<int, double>> keep;
      for (const auto& [g, t] : buf) {
        if (g == next) {
          arrival[static_cast<size_t>(r.element)] =
              std::max(arrival[static_cast<size_t>(r.element)], t);
          ++received[static_cast<size_t>(r.element)];
        } else {
          keep.push_back({g, t});
        }
      }
      buf.swap(keep);
      if (received[static_cast<size_t>(r.element)] ==
          expected_all[static_cast<size_t>(r.element)]) {
        push_ready(r.element, next, arrival[static_cast<size_t>(r.element)]);
      }
    }
  }

  res.converged = steady_at >= 0;
  res.generations = res.converged ? steady_at : G;
  res.departure = last_departure;
  return res;
}

}  // namespace mintc::sim
