// Discrete-event data-token simulator.
//
// An independent dynamic validation of the SMO steady-state model: instead
// of solving the fixpoint equations, this module *simulates* the circuit in
// absolute time from power-on. Each element emits one "output valid" event
// per clock generation; events are processed from a time-ordered queue, and
// a destination fires generation g once all of its fanin tokens for g have
// arrived (a fanin on phase p_j contributes to generation g + C_{pj,pi} of
// a phase-p_i destination). Latches release tokens no earlier than their
// enabling edge; flip-flops sample at their leading edge.
//
// In steady state the per-generation departures (relative to the phase
// start) must equal the least fixpoint of eq. (17) computed by sta/ —
// tests assert exactly that on every example circuit. If the schedule has a
// positive latch loop, departures drift later each generation and the
// simulation reports non-convergence, mirroring the fixpoint divergence.
#pragma once

#include <vector>

#include "model/circuit.h"

namespace mintc::sim {

struct SimOptions {
  int max_generations = 512;  // clock cycles to simulate at most
  double eps = 1e-9;          // steady-state detection tolerance
};

struct SimResult {
  bool converged = false;        // steady state reached within the limit
  int generations = 0;           // generations simulated before steady state
  std::vector<double> departure; // steady-state departures, relative to phase starts
  bool setup_ok = true;          // no setup violation in any simulated generation
  int first_violation_generation = -1;
  long events = 0;               // queue pops (simulation work measure)
};

SimResult simulate_tokens(const Circuit& circuit, const ClockSchedule& schedule,
                          const SimOptions& options = {});

}  // namespace mintc::sim
