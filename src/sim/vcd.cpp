#include "sim/vcd.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace mintc::sim {

namespace {

// VCD identifier codes over printable ASCII, excluding '#' so that
// timestamp lines are the only lines containing it.
std::string code_of(int index) {
  static const std::string alphabet = [] {
    std::string a;
    for (char c = '!'; c <= '~'; ++c) {
      if (c != '#') a.push_back(c);
    }
    return a;
  }();
  const int base = static_cast<int>(alphabet.size());
  std::string code;
  int v = index;
  do {
    code.push_back(alphabet[static_cast<size_t>(v % base)]);
    v /= base;
  } while (v > 0);
  return code;
}

}  // namespace

std::string write_vcd(const Circuit& circuit, const ClockSchedule& schedule,
                      const std::vector<double>& departure, const VcdOptions& options) {
  std::ostringstream out;
  out << "$date mintc $end\n";
  out << "$version mintc timing reproduction $end\n";
  out << "$timescale " << options.timescale_ps << "ps $end\n";
  out << "$scope module " << circuit.name() << " $end\n";

  const int k = schedule.num_phases();
  std::vector<std::string> phase_code(static_cast<size_t>(k));
  for (int p = 0; p < k; ++p) {
    phase_code[static_cast<size_t>(p)] = code_of(p);
    out << "$var wire 1 " << phase_code[static_cast<size_t>(p)] << " phi" << (p + 1)
        << " $end\n";
  }
  std::vector<std::string> elem_code(static_cast<size_t>(circuit.num_elements()));
  for (int i = 0; i < circuit.num_elements(); ++i) {
    elem_code[static_cast<size_t>(i)] = code_of(k + i);
    out << "$var wire 1 " << elem_code[static_cast<size_t>(i)] << " "
        << circuit.element(i).name << " $end\n";
  }
  out << "$upscope $end\n$enddefinitions $end\n";

  // Collect (time_ps, code, value) changes.
  std::multimap<long, std::pair<std::string, char>> changes;
  const auto ps = [&](double t) {
    return static_cast<long>(std::llround(t * options.unit_ps / options.timescale_ps));
  };
  for (int cyc = 0; cyc < options.cycles; ++cyc) {
    const double base = cyc * schedule.cycle;
    for (int p = 1; p <= k; ++p) {
      changes.insert({ps(base + schedule.s(p)), {phase_code[static_cast<size_t>(p - 1)], '1'}});
      changes.insert(
          {ps(base + schedule.phase_end(p)), {phase_code[static_cast<size_t>(p - 1)], '0'}});
    }
    for (int i = 0; i < circuit.num_elements(); ++i) {
      const Element& e = circuit.element(i);
      const double out_valid =
          base + schedule.s(e.phase) + departure[static_cast<size_t>(i)] + e.dq;
      changes.insert(
          {ps(out_valid), {elem_code[static_cast<size_t>(i)], cyc % 2 == 0 ? '1' : '0'}});
    }
  }

  // Initial values.
  out << "$dumpvars\n";
  for (const std::string& c : phase_code) out << "0" << c << "\n";
  for (const std::string& c : elem_code) out << "0" << c << "\n";
  out << "$end\n";

  long last_time = -1;
  for (const auto& [t, change] : changes) {
    if (t != last_time) {
      out << "#" << t << "\n";
      last_time = t;
    }
    out << change.second << change.first << "\n";
  }
  return out.str();
}

}  // namespace mintc::sim
