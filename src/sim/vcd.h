// VCD (Value Change Dump) writer for simulated schedules.
//
// Emits a waveform any VCD viewer (GTKWave etc.) can open: one wire per
// clock phase and one per synchronizing element. Element wires toggle each
// time a new data token leaves the element (at departure + Δ_DQ), so the
// waveform visualizes exactly the strips of the paper's Fig. 6 against the
// clock phases.
#pragma once

#include <string>
#include <vector>

#include "model/circuit.h"

namespace mintc::sim {

struct VcdOptions {
  int cycles = 4;           // clock cycles to dump
  int timescale_ps = 1;     // VCD timescale unit
  double unit_ps = 1000.0;  // picoseconds per circuit time unit (ns -> 1000)
};

/// Render a VCD document for the circuit under `schedule` with steady-state
/// departures `departure` (e.g. MlpResult::departure or SimResult::departure).
std::string write_vcd(const Circuit& circuit, const ClockSchedule& schedule,
                      const std::vector<double>& departure, const VcdOptions& options = {});

}  // namespace mintc::sim
