// Edge-triggered baselines (paper Section II).
//
// Most pre-SMO tools "assume edge triggering to simplify the analysis and
// then apply some heuristics to approximate the level-sensitive
// constraints". We implement the two canonical heuristics the paper
// contrasts against:
//
// * edge_triggered_cpm — pretend every synchronizer is an edge-triggered
//   flip-flop under a symmetric k-slot clock: each path j->i must fit
//   entirely inside its slot span, giving
//       Tc >= (Δ_DQj + Δ_ji + Δ_DCi) / frac(p_j -> p_i)
//   where frac is the fraction of the period between the two latching
//   edges. This is the classic CPM bound; it is also the "very good initial
//   guess" the paper suggests seeding the LP with.
//
// * jouppi_borrowing — one borrowing iteration on top of CPM (TV-style):
//   each pair of adjacent paths through a transparent latch may share their
//   combined slot span, relaxing the single-slot requirement across one
//   latch. The paper notes that in practice "only one borrowing iteration
//   is performed to limit the computation cost"; that is exactly what this
//   implements, so it is an upper bound that is usually better than CPM but
//   still above the MLP optimum.
#pragma once

#include <string>

#include "model/circuit.h"

namespace mintc::baselines {

struct BaselineResult {
  std::string method;
  double cycle = 0.0;       // estimated minimum Tc
  ClockSchedule schedule;   // the symmetric schedule at that Tc
  bool feasible = false;    // verified by the exact analysis engine
};

/// Fraction of the clock period between the latching edges of p_from and
/// p_to under a symmetric k-slot schedule (always in (0, 1]).
double slot_fraction(int p_from, int p_to, int num_phases);

/// CPM bound: every path confined to its slot span.
BaselineResult edge_triggered_cpm(const Circuit& circuit);

/// CPM plus a single slack-borrowing pass across each transparent latch.
BaselineResult jouppi_borrowing(const Circuit& circuit);

}  // namespace mintc::baselines
