#include "baselines/unrolled.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace mintc::baselines {

UnrolledAnalysis unrolled_analysis(const Circuit& circuit, const ClockSchedule& schedule,
                                   int unroll_cycles) {
  return unrolled_analysis(TimingView(circuit), ShiftTable(schedule), unroll_cycles);
}

UnrolledAnalysis unrolled_analysis(const TimingView& view, const ShiftTable& shifts,
                                   int unroll_cycles) {
  const int l = view.num_elements();
  UnrolledAnalysis res;
  res.setup_ok = true;

  // Evaluate elements in ascending phase order: within one cycle, a C = 0
  // dependency always runs from a strictly earlier phase.
  std::vector<int> order(static_cast<size_t>(l));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return view.phase(a) < view.phase(b); });

  std::vector<double> prev(static_cast<size_t>(l), 0.0);  // cycle m-1
  std::vector<double> cur(static_cast<size_t>(l), 0.0);

  for (int m = 0; m < unroll_cycles; ++m) {
    for (const int i : order) {
      double arrival = -std::numeric_limits<double>::infinity();
      const EdgeIndex fi_end = view.fanin_end(i);
      for (EdgeIndex fe = view.fanin_begin(i); fe < fi_end; ++fe) {
        const int c = view.edge_cross(fe);
        if (m - c < 0) continue;  // token does not exist yet (power-on)
        const int src = view.edge_src(fe);
        const double d_src =
            (c == 0) ? cur[static_cast<size_t>(src)] : prev[static_cast<size_t>(src)];
        arrival =
            std::max(arrival, d_src + view.edge_max_const(fe) + shifts.at(view.edge_shift(fe)));
      }
      if (view.is_latch(i)) {
        cur[static_cast<size_t>(i)] = std::max(0.0, arrival);
        if (cur[static_cast<size_t>(i)] + view.setup_margin(i) >
            shifts.width(view.phase(i)) + 1e-9) {
          res.setup_ok = false;
          if (res.first_violation_cycle < 0) res.first_violation_cycle = m;
        }
      } else {
        cur[static_cast<size_t>(i)] = 0.0;
        if (arrival > -view.setup_margin(i) + 1e-9) {
          res.setup_ok = false;
          if (res.first_violation_cycle < 0) res.first_violation_cycle = m;
        }
      }
    }
    prev = cur;
  }
  res.final_departure = std::move(cur);
  return res;
}

BaselineResult atv_unrolled(const Circuit& circuit, const ClockShape& shape, int unroll_cycles,
                            const BinarySearchOptions& options) {
  // Build the flattened view once; only the shift table changes with Tc.
  const TimingView view(circuit);
  const auto feasible_at = [&](double tc) {
    return unrolled_analysis(view, ShiftTable(shape.at_cycle(tc)), unroll_cycles).setup_ok;
  };

  BaselineResult res;
  res.method = "ATV unrolled (n_c=" + std::to_string(unroll_cycles) + ")";

  double hi = std::max(1.0, edge_triggered_cpm(circuit).cycle);
  while (!feasible_at(hi)) {
    hi *= 2.0;
    if (hi > options.hi_limit) {
      res.cycle = hi;
      res.schedule = shape.at_cycle(hi);
      res.feasible = false;
      return res;
    }
  }
  double lo = 0.0;
  while (hi - lo > options.tol) {
    const double mid = 0.5 * (lo + hi);
    if (feasible_at(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  res.cycle = hi;
  res.schedule = shape.at_cycle(hi);
  // NOTE: deliberately *not* re-verified with the exact engine — this
  // baseline reports what ATV's bounded window would conclude. The caller
  // can (and the bench does) check it against sta::check_schedule.
  res.feasible = true;
  return res;
}

}  // namespace mintc::baselines
