#include "baselines/unrolled.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace mintc::baselines {

UnrolledAnalysis unrolled_analysis(const Circuit& circuit, const ClockSchedule& schedule,
                                   int unroll_cycles) {
  const int l = circuit.num_elements();
  UnrolledAnalysis res;
  res.setup_ok = true;

  // Evaluate elements in ascending phase order: within one cycle, a C = 0
  // dependency always runs from a strictly earlier phase.
  std::vector<int> order(static_cast<size_t>(l));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return circuit.element(a).phase < circuit.element(b).phase;
  });

  std::vector<double> prev(static_cast<size_t>(l), 0.0);  // cycle m-1
  std::vector<double> cur(static_cast<size_t>(l), 0.0);

  for (int m = 0; m < unroll_cycles; ++m) {
    for (const int i : order) {
      const Element& e = circuit.element(i);
      double arrival = -std::numeric_limits<double>::infinity();
      for (const int pi : circuit.fanin(i)) {
        const CombPath& path = circuit.path(pi);
        const Element& src = circuit.element(path.from);
        const int c = c_flag(src.phase, e.phase);
        if (m - c < 0) continue;  // token does not exist yet (power-on)
        const double d_src = (c == 0) ? cur[static_cast<size_t>(path.from)]
                                      : prev[static_cast<size_t>(path.from)];
        arrival = std::max(arrival,
                           d_src + src.dq + path.delay + schedule.shift(src.phase, e.phase));
      }
      if (e.is_latch()) {
        cur[static_cast<size_t>(i)] = std::max(0.0, arrival);
        if (cur[static_cast<size_t>(i)] + e.setup > schedule.T(e.phase) + 1e-9) {
          res.setup_ok = false;
          if (res.first_violation_cycle < 0) res.first_violation_cycle = m;
        }
      } else {
        cur[static_cast<size_t>(i)] = 0.0;
        if (arrival > -e.setup + 1e-9) {
          res.setup_ok = false;
          if (res.first_violation_cycle < 0) res.first_violation_cycle = m;
        }
      }
    }
    prev = cur;
  }
  res.final_departure = std::move(cur);
  return res;
}

BaselineResult atv_unrolled(const Circuit& circuit, const ClockShape& shape, int unroll_cycles,
                            const BinarySearchOptions& options) {
  const auto feasible_at = [&](double tc) {
    return unrolled_analysis(circuit, shape.at_cycle(tc), unroll_cycles).setup_ok;
  };

  BaselineResult res;
  res.method = "ATV unrolled (n_c=" + std::to_string(unroll_cycles) + ")";

  double hi = std::max(1.0, edge_triggered_cpm(circuit).cycle);
  while (!feasible_at(hi)) {
    hi *= 2.0;
    if (hi > options.hi_limit) {
      res.cycle = hi;
      res.schedule = shape.at_cycle(hi);
      res.feasible = false;
      return res;
    }
  }
  double lo = 0.0;
  while (hi - lo > options.tol) {
    const double mid = 0.5 * (lo + hi);
    if (feasible_at(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  res.cycle = hi;
  res.schedule = shape.at_cycle(hi);
  // NOTE: deliberately *not* re-verified with the exact engine — this
  // baseline reports what ATV's bounded window would conclude. The caller
  // can (and the bench does) check it against sta::check_schedule.
  res.feasible = true;
  return res;
}

}  // namespace mintc::baselines
