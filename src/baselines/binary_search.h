// Fixed-shape cycle-time search, and the NRIP reconstruction.
//
// Given a fixed clock *shape* (relative phase starts/widths as fractions of
// the period), the exact analysis engine decides feasibility for any
// concrete Tc; feasibility is monotone in Tc for a fixed shape, so a
// bounded binary search (Agrawal's approach, Section II) finds the minimum
// Tc attainable *with that shape*.
//
// NRIP reconstruction: the paper compares MLP against Dagenais/Rumin's NRIP
// algorithm and explains its suboptimality by its "implicit minimum
// constraints on phase widths and separations". The NRIP paper's full
// procedure is not reproduced here (see DESIGN.md §4); instead
// nrip_reconstruction() searches over the canonical symmetric clock
// (equal slots, maximal widths) with exact latch-level borrowing. On the
// paper's example 1 this reproduces NRIP's published behaviour: optimal at
// Δ41 = 60 ns, strictly above the MLP optimum elsewhere, and a unique
// schedule for each Tc.
#pragma once

#include <string>
#include <vector>

#include "baselines/edge_triggered.h"
#include "model/circuit.h"

namespace mintc::baselines {

/// A clock shape: starts/widths as fractions of the period.
struct ClockShape {
  std::vector<double> start_frac;
  std::vector<double> width_frac;

  ClockSchedule at_cycle(double tc) const;
  static ClockShape symmetric(int num_phases, double duty = 1.0);
};

struct BinarySearchOptions {
  double tol = 1e-6;       // absolute Tc tolerance
  double hi_limit = 1e9;   // give up if no feasible Tc below this
  bool check_hold = false;
};

/// Agrawal-style bounded binary search over Tc with the given shape.
BaselineResult fixed_shape_search(const Circuit& circuit, const ClockShape& shape,
                                  const BinarySearchOptions& options = {});

/// The NRIP reconstruction: fixed_shape_search over the symmetric clock.
BaselineResult nrip_reconstruction(const Circuit& circuit,
                                   const BinarySearchOptions& options = {});

/// One level up from NRIP: search symmetric clocks over `steps` duty-cycle
/// values in (0, 1] and return the best. Still a restricted family, so the
/// result remains an upper bound on the MLP optimum — a useful middle point
/// between "one fixed clock shape" and the full LP.
BaselineResult best_duty_search(const Circuit& circuit, int steps = 20,
                                const BinarySearchOptions& options = {});

}  // namespace mintc::baselines
