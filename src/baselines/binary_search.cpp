#include "baselines/binary_search.h"

#include <cassert>

#include "sta/analysis.h"

namespace mintc::baselines {

ClockSchedule ClockShape::at_cycle(double tc) const {
  ClockSchedule sch;
  sch.cycle = tc;
  for (const double f : start_frac) sch.start.push_back(f * tc);
  for (const double f : width_frac) sch.width.push_back(f * tc);
  return sch;
}

ClockShape ClockShape::symmetric(int num_phases, double duty) {
  assert(num_phases >= 1 && duty > 0.0 && duty <= 1.0);
  ClockShape shape;
  for (int p = 0; p < num_phases; ++p) {
    shape.start_frac.push_back(static_cast<double>(p) / num_phases);
    shape.width_frac.push_back(duty / num_phases);
  }
  return shape;
}

BaselineResult fixed_shape_search(const Circuit& circuit, const ClockShape& shape,
                                  const BinarySearchOptions& options) {
  sta::AnalysisOptions analysis;
  analysis.check_hold = options.check_hold;

  const auto feasible_at = [&](double tc) {
    return sta::check_schedule(circuit, shape.at_cycle(tc), analysis).feasible;
  };

  BaselineResult res;
  res.method = "fixed-shape binary search";

  // Bound the search: start from the CPM estimate and double until feasible.
  double hi = std::max(1.0, edge_triggered_cpm(circuit).cycle);
  while (!feasible_at(hi)) {
    hi *= 2.0;
    if (hi > options.hi_limit) {
      res.cycle = hi;
      res.schedule = shape.at_cycle(hi);
      res.feasible = false;
      return res;
    }
  }
  double lo = 0.0;
  while (hi - lo > options.tol) {
    const double mid = 0.5 * (lo + hi);
    if (feasible_at(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  res.cycle = hi;
  res.schedule = shape.at_cycle(hi);
  res.feasible = true;
  return res;
}

BaselineResult nrip_reconstruction(const Circuit& circuit, const BinarySearchOptions& options) {
  BaselineResult res =
      fixed_shape_search(circuit, ClockShape::symmetric(circuit.num_phases()), options);
  res.method = "NRIP (reconstruction)";
  return res;
}

BaselineResult best_duty_search(const Circuit& circuit, int steps,
                                const BinarySearchOptions& options) {
  assert(steps >= 1);
  BaselineResult best;
  best.method = "best-duty symmetric search";
  best.feasible = false;
  for (int i = 1; i <= steps; ++i) {
    const double duty = static_cast<double>(i) / steps;
    BaselineResult r = fixed_shape_search(
        circuit, ClockShape::symmetric(circuit.num_phases(), duty), options);
    if (!r.feasible) continue;
    if (!best.feasible || r.cycle < best.cycle) {
      r.method = "best-duty symmetric search (duty " + std::to_string(duty) + ")";
      best = std::move(r);
    }
  }
  return best;
}

}  // namespace mintc::baselines
