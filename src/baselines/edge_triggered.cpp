#include "baselines/edge_triggered.h"

#include <algorithm>

#include "sta/analysis.h"

namespace mintc::baselines {

double slot_fraction(int p_from, int p_to, int num_phases) {
  const double frac = static_cast<double>(p_to - p_from) / num_phases +
                      static_cast<double>(c_flag(p_from, p_to));
  return frac;
}

namespace {

// Worst delay of path `p` measured edge-to-edge: source clock-to-Q +
// combinational + destination setup + destination clock skew.
double edge_to_edge_delay(const Circuit& c, const CombPath& p) {
  const Element& dst = c.element(p.to);
  return c.element(p.from).dq + p.delay + dst.setup + dst.skew;
}

BaselineResult finish(const Circuit& circuit, std::string method, double tc) {
  BaselineResult res;
  res.method = std::move(method);
  res.cycle = tc;
  res.schedule = symmetric_schedule(circuit.num_phases(), tc);
  const sta::TimingReport rep = sta::check_schedule(circuit, res.schedule);
  res.feasible = rep.feasible;
  return res;
}

}  // namespace

BaselineResult edge_triggered_cpm(const Circuit& circuit) {
  double tc = 0.0;
  for (const CombPath& p : circuit.paths()) {
    const int pf = circuit.element(p.from).phase;
    const int pt = circuit.element(p.to).phase;
    const double frac = slot_fraction(pf, pt, circuit.num_phases());
    if (frac <= 0.0) continue;
    tc = std::max(tc, edge_to_edge_delay(circuit, p) / frac);
  }
  return finish(circuit, "edge-triggered CPM", tc);
}

BaselineResult jouppi_borrowing(const Circuit& circuit) {
  const int k = circuit.num_phases();

  // Feasibility of a cycle time under the one-iteration borrowing model:
  // a path j->i may arrive `late` past phase p_i's opening edge provided
  //   (a) it still makes the closing edge: late + setup_i <= T_pi, and
  //   (b) every continuation i->m absorbs the lateness inside its own slot
  //       (no second-order borrowing — the paper: "In practice, only one
  //       borrowing iteration is performed"): late + dq_i + delta_im +
  //       setup_m <= span(i->m).
  // Flip-flops sample at the opening edge and cannot be late.
  const auto feasible = [&](double tc) {
    for (const CombPath& p : circuit.paths()) {
      const Element& src = circuit.element(p.from);
      const Element& dst = circuit.element(p.to);
      const double span1 = slot_fraction(src.phase, dst.phase, k) * tc;
      const double arrive = src.dq + p.delay;  // relative to src opening edge
      const double late = arrive - span1;      // lateness past dst's opening edge
      if (late <= 0.0) continue;
      if (!dst.is_latch()) return false;
      const double width = tc / k;  // symmetric schedule phase width
      if (late + dst.setup + dst.skew > width) return false;
      for (const int ne : circuit.fanout(p.to)) {
        const CombPath& q = circuit.path(ne);
        const Element& nxt = circuit.element(q.to);
        const double span2 = slot_fraction(dst.phase, nxt.phase, k) * tc;
        if (late + dst.dq + q.delay + nxt.setup + nxt.skew > span2) return false;
      }
    }
    return true;
  };

  // Bounded binary search below the CPM estimate (borrowing only relaxes).
  double hi = edge_triggered_cpm(circuit).cycle;
  if (hi <= 0.0) return finish(circuit, "Jouppi 1-pass borrowing", 0.0);
  double lo = 0.0;
  for (int iter = 0; iter < 64 && hi - lo > 1e-6; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return finish(circuit, "Jouppi 1-pass borrowing", hi);
}

}  // namespace mintc::baselines
