// Synchronizing elements (paper Section III-B, plus the flip-flop extension
// needed by the GaAs datapath example of Section V).
//
// * kLatch — a level-sensitive D latch, transparent while its phase is
//   active. Timing parameters: setup Δ_DC (data to trailing edge) and
//   propagation delay Δ_DQ (data-to-output while enabled). The paper assumes
//   Δ_DQ >= Δ_DC; Circuit::validate() warns when this is violated.
//
// * kFlipFlop — a leading-edge-triggered flip-flop on its phase. It has no
//   transparency window: data departs exactly at the phase's leading edge
//   (departure time pinned to 0), `dq` acts as the clock-to-Q delay, and
//   setup is measured against the leading edge (arrival A_i <= -Δ_DC).
//   Because a flip-flop cannot race, combinational paths that start or end
//   at a flip-flop do not contribute to the K matrix and therefore do not
//   force phase nonoverlap (C3) — this is exactly what lets the GaAs
//   example's phi3 be completely overlapped by phi1 (K13 = K31 = 0).
#pragma once

#include <string>

namespace mintc {

enum class ElementKind { kLatch, kFlipFlop };

const char* to_string(ElementKind kind);

struct Element {
  std::string name;
  ElementKind kind = ElementKind::kLatch;
  int phase = 1;         // p_i, 1-based
  double setup = 0.0;    // Δ_DC
  double dq = 0.0;       // Δ_DQ (latch) / clock-to-Q (flip-flop)
  double hold = 0.0;     // Δ_H, used by the short-path extension
  double dq_min = -1.0;  // minimum propagation delay; < 0 means "same as dq"
  double skew = 0.0;     // σ, local clock-edge uncertainty charged at capture

  double min_dq() const { return dq_min < 0.0 ? dq : dq_min; }
  bool is_latch() const { return kind == ElementKind::kLatch; }
};

inline const char* to_string(ElementKind kind) {
  return kind == ElementKind::kLatch ? "latch" : "flipflop";
}

}  // namespace mintc
