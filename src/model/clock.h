// The SMO clock model (paper Section III-A).
//
// A k-phase clock is k periodic signals with common period Tc. Phase i has
// an active interval starting at s_i (relative to the cycle origin) with
// width T_i. Phases are ordered: s_1 <= s_2 <= ... <= s_k.
//
// Phases are 1-based everywhere in this API, matching the paper.
//
// Key operators:
//   C_ij  (eq. 1): 1 if i >= j else 0 — whether going from phase i to phase
//                  j crosses a clock-cycle boundary.
//   S_ij  (eq. 12): s_i - s_j - C_ij*Tc — added to a time referenced to the
//                  start of phase i, re-references it to the start of the
//                  *next-following* activation of phase j.
//   K_ij  (eq. 2): 1 if phi_i/phi_j is an input/output phase pair of some
//                  combinational block (computed from a Circuit).
#pragma once

#include <string>
#include <vector>

namespace mintc {

/// C matrix entry (eq. 1), 1-based phases.
inline int c_flag(int i, int j) { return i >= j ? 1 : 0; }

/// The K matrix: K(i,j) == true iff phi_i/phi_j is an input/output phase
/// pair of some combinational block (data flows from a latch on phi_i to a
/// latch on phi_j).
class KMatrix {
 public:
  explicit KMatrix(int num_phases);

  int num_phases() const { return k_; }
  bool at(int i, int j) const;      // 1-based
  void set(int i, int j, bool v);   // 1-based

  /// Number of I/O phase pairs (entries set to 1).
  int num_pairs() const;

  /// Render in the paper's bracket style, e.g. for the Appendix bench.
  std::string to_string() const;

 private:
  int k_;
  std::vector<char> data_;
};

/// A concrete clock schedule: the values of Tc, s_i, T_i.
struct ClockSchedule {
  double cycle = 0.0;          // Tc
  std::vector<double> start;   // s_i, index 0 holds phase 1
  std::vector<double> width;   // T_i

  ClockSchedule() = default;
  ClockSchedule(double tc, std::vector<double> s, std::vector<double> t);

  int num_phases() const { return static_cast<int>(start.size()); }
  double s(int phase) const { return start.at(static_cast<size_t>(phase - 1)); }
  double T(int phase) const { return width.at(static_cast<size_t>(phase - 1)); }
  double phase_end(int phase) const { return s(phase) + T(phase); }

  /// Phase-shift operator S_ij (eq. 12), 1-based.
  double shift(int i, int j) const { return s(i) - s(j) - c_flag(i, j) * cycle; }

  /// Uniformly scale Tc, s_i, T_i by `factor` (the schedule "shape" is kept).
  ClockSchedule scaled(double factor) const;

  std::string to_string() const;
};

/// Construct the canonical evenly-spaced, non-overlapping k-phase schedule:
/// phase i active on [ (i-1)*Tc/k, (i-1)*Tc/k + duty*Tc/k ). duty in (0,1].
ClockSchedule symmetric_schedule(int num_phases, double cycle, double duty = 1.0);

/// One violated clock constraint.
struct ClockViolation {
  std::string constraint;  // e.g. "C3 nonoverlap phi1/phi2"
  double amount = 0.0;     // positive violation magnitude
};

/// Check constraints C1 (periodicity), C2 (phase ordering), C4
/// (nonnegativity); and C3 (nonoverlap, eq. 6) for every pair with K_ij=1.
std::vector<ClockViolation> check_clock_constraints(const ClockSchedule& schedule,
                                                    const KMatrix& K, double eps = 1e-7);

}  // namespace mintc
