// The flattened timing kernel layer shared by every engine.
//
// Every engine that evaluates the SMO propagation term (eq. 17)
//
//     D_j + Δ_DQ(j) + Δ_ji + S_{pj,pi}
//
// used to re-derive it by chasing Circuit::fanin(i) -> path(pi) ->
// element(path.from) through nested vectors and recomputing
// ClockSchedule::shift per edge per sweep. TimingView replaces those six
// hand-rolled copies of the inner loop with one immutable, index-flattened
// representation built once per Circuit:
//
//   * CSR fan-in / fan-out arrays (contiguous, cache-friendly);
//   * per-edge precomputed constants Δ_DQ(from) + Δ_ij (and the min-delay
//     analogue min_DQ(from) + δ_ij for the hold/short-path direction);
//   * per-edge flattened (p_from, p_to) phase-pair indices and C flags.
//
// A ShiftTable is the per-ClockSchedule companion: the k×k matrix of
// S_ij values built once, so the inner-loop term becomes two array loads
// and two adds with zero pointer chasing:
//
//     d[edge_src(e)] + edge_max_const(e) + shifts.at(edge_shift(e))
//
// Invalidation rules: a TimingView tracks one Circuit's *parameters*, not
// its structure. Parameter edits (a path delay, a latch Δ_DQ/setup/hold)
// go through the in-place mutation API below, which patches the fused
// per-edge constants, bumps the generation counter and records the touched
// edges in a dirty set — so an incremental engine (sta::AnalysisSession)
// can warm-start the eq. 17 fixpoint from its previous answer instead of
// re-flattening and cold-starting. Mutating the Circuit *behind the view's
// back*, or structurally (add/remove paths or elements), still invalidates
// it — rebuild. A ShiftTable is the per-ClockSchedule companion; update()
// re-derives it in place from a new schedule and reports which phases (and
// whether any S_ij decreased) changed. Cold builds are O(l + E) and O(k^2)
// respectively, negligible next to a single fixpoint sweep.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "model/circuit.h"
#include "obs/stats.h"

namespace mintc {

/// Edge ids and CSR offsets are 64-bit. A 10^6-latch mesh with heavy fan-in
/// can push the total fan-in slot count past 2^31, and the old `int` offsets
/// silently wrapped there (UB on the accumulating counter, garbage CSR
/// afterwards). Node ids stay `int` — element counts are bounded far below
/// edge counts — and per-edge payload arrays keep 32-bit node entries so the
/// SIMD kernels can gather with compact indices.
using EdgeIndex = std::int64_t;
// EngineStats and StageTimer moved to obs/stats.h (the observability layer
// is now the single accounting path); included above so existing users of
// this header keep compiling unchanged.

/// How one ShiftTable::update differed from the table it replaced; the
/// session layer uses this to decide whether a schedule swap preserves the
/// warm-start precondition (every effective edge weight nondecreasing).
struct ShiftDelta {
  bool changed = false;               // any entry (shift/start/width) moved
  bool same_shape = false;            // same phase count as before
  bool shifts_nondecreasing = false;  // same_shape and no S_ij decreased
  /// Per phase (index 0 = phase 1): start, width or an incident S_ij moved.
  std::vector<char> phase_dirty;
};

/// The k×k phase-shift matrix S_ij (eq. 12) of one ClockSchedule, plus the
/// flat start/width arrays, all built once so no engine recomputes
/// s_i - s_j - C_ij*Tc (or bounds-checks a vector) per edge per sweep.
class ShiftTable {
 public:
  explicit ShiftTable(const ClockSchedule& schedule);

  /// Re-derive the table from `schedule` in place (reusing storage) and
  /// report what moved relative to the previous contents.
  ShiftDelta update(const ClockSchedule& schedule);

  int num_phases() const { return k_; }
  double cycle() const { return cycle_; }
  double build_seconds() const { return build_seconds_; }

  /// S_ij by flat index (see TimingView::edge_shift).
  double at(int flat) const {
    assert(flat >= 0 && flat < k_ * k_ && "flat shift index out of range");
    return shift_[static_cast<size_t>(flat)];
  }
  /// S_ij, 1-based phases. An off-by-one here (phase 0, or k+1) used to read
  /// out of bounds silently in release builds; debug builds now assert.
  double shift(int i, int j) const {
    assert(i >= 1 && i <= k_ && "phase i out of range (phases are 1-based)");
    assert(j >= 1 && j <= k_ && "phase j out of range (phases are 1-based)");
    return shift_[static_cast<size_t>((i - 1) * k_ + (j - 1))];
  }
  double start(int phase) const {
    assert(phase >= 1 && phase <= k_ && "phase out of range (phases are 1-based)");
    return start_[static_cast<size_t>(phase - 1)];
  }
  double width(int phase) const {
    assert(phase >= 1 && phase <= k_ && "phase out of range (phases are 1-based)");
    return width_[static_cast<size_t>(phase - 1)];
  }

  /// Raw S_ij matrix (k*k, row-major by 1-based source phase) for the
  /// vectorized kernels, which gather shifts by edge_shift index.
  const double* shift_data() const { return shift_.data(); }

 private:
  int k_ = 0;
  double cycle_ = 0.0;
  double build_seconds_ = 0.0;
  std::vector<double> shift_;  // (i-1)*k + (j-1) -> S_ij
  std::vector<double> start_;
  std::vector<double> width_;
};

/// Index-flattened view of a Circuit. "Edges" are the circuit's CombPaths
/// re-indexed in fan-in (destination-major) order; edge_path / edge_of_path
/// translate between the two numberings. The structure (CSR arrays, edge
/// numbering) is immutable; parameters may be edited in place through the
/// mutation API, which keeps the fused constants and the dirty sets in sync.
class TimingView {
 public:
  /// Hard edge-count ceiling. Circuit path ids are `int`, so any circuit
  /// whose path count exceeds this has already overflowed upstream; the
  /// builder rejects (asserts on) such inputs instead of constructing a
  /// wrapped CSR. All *offset arithmetic* below is EdgeIndex (64-bit), so
  /// nothing in the view itself can wrap even at the ceiling.
  static constexpr EdgeIndex kMaxEdges = std::numeric_limits<int>::max();

  /// True iff a circuit with `edge_count` comb paths can be flattened
  /// without index overflow. Exposed (rather than buried in the ctor) so the
  /// boundary is unit-testable without materializing 2^31 paths.
  static constexpr bool edge_capacity_ok(std::int64_t edge_count) {
    return edge_count >= 0 && edge_count <= kMaxEdges;
  }

  explicit TimingView(const Circuit& circuit);

  int num_elements() const { return num_elements_; }
  int num_edges() const { return num_edges_; }
  int num_phases() const { return num_phases_; }
  double build_seconds() const { return build_seconds_; }

  // -- Per-element arrays ---------------------------------------------------
  bool is_latch(int i) const { return latch_[static_cast<size_t>(i)] != 0; }
  int phase(int i) const { return phase_[static_cast<size_t>(i)]; }  // 1-based
  double setup(int i) const { return setup_[static_cast<size_t>(i)]; }
  double hold(int i) const { return hold_[static_cast<size_t>(i)]; }
  double dq(int i) const { return dq_[static_cast<size_t>(i)]; }
  double min_dq(int i) const { return min_dq_[static_cast<size_t>(i)]; }
  double skew(int i) const { return skew_[static_cast<size_t>(i)]; }
  /// Fused capture-side margins: setup(i) + skew(i) and hold(i) + skew(i).
  /// The local clock-edge uncertainty σ_i is charged where a token is
  /// *captured* (the setup/hold checks), never in the eq. 17 propagation
  /// term — departures stay skew-free, which is what keeps every fixpoint
  /// scheme bit-identical under per-latch skew (see DESIGN.md §5.9).
  double setup_margin(int i) const { return setup_margin_[static_cast<size_t>(i)]; }
  double hold_margin(int i) const { return hold_margin_[static_cast<size_t>(i)]; }
  /// max over elements of skew(i); 0 for an empty circuit. The nonoverlap
  /// (C3) margin uses the worst local uncertainty. Maintained incrementally.
  double max_skew() const { return max_skew_; }

  // -- Fan-in CSR -----------------------------------------------------------
  // Edges entering element i are fanin_begin(i) .. fanin_end(i), in the same
  // (ascending path-index) order Circuit::fanin used to yield. Offsets and
  // edge ids are EdgeIndex (64-bit) end to end; see the type's comment.
  EdgeIndex fanin_begin(int i) const { return fanin_offset_[static_cast<size_t>(i)]; }
  EdgeIndex fanin_end(int i) const { return fanin_offset_[static_cast<size_t>(i) + 1]; }
  EdgeIndex fanin_count(int i) const { return fanin_end(i) - fanin_begin(i); }

  int edge_src(EdgeIndex e) const { return src_[static_cast<size_t>(e)]; }
  int edge_dst(EdgeIndex e) const { return dst_[static_cast<size_t>(e)]; }
  /// Original Circuit path index of edge e, and the inverse mapping.
  int edge_path(EdgeIndex e) const { return path_of_edge_[static_cast<size_t>(e)]; }
  EdgeIndex edge_of_path(int p) const { return edge_of_path_[static_cast<size_t>(p)]; }
  /// Δ_DQ(from) + Δ_ij — the long-path propagation constant.
  double edge_max_const(EdgeIndex e) const { return max_const_[static_cast<size_t>(e)]; }
  /// min_DQ(from) + δ_ij — the short-path (hold) analogue.
  double edge_min_const(EdgeIndex e) const { return min_const_[static_cast<size_t>(e)]; }
  /// Flat (p_from, p_to) index into ShiftTable::at.
  int edge_shift(EdgeIndex e) const { return shift_index_[static_cast<size_t>(e)]; }
  /// C_{p_from, p_to} (eq. 1): 1 if the edge crosses a cycle boundary.
  int edge_cross(EdgeIndex e) const { return cross_[static_cast<size_t>(e)]; }

  // -- Raw per-edge arrays for the vectorized kernels -----------------------
  // Contiguous, fan-in-CSR-ordered; a kernel relaxing element i reads the
  // run [fanin_begin(i), fanin_end(i)) of each. Source ids and shift indices
  // stay 32-bit so AVX2 gathers use compact index vectors.
  const int* edge_src_data() const { return src_.data(); }
  const double* edge_max_const_data() const { return max_const_.data(); }
  const int* edge_shift_data() const { return shift_index_.data(); }

  // -- Fan-out CSR ----------------------------------------------------------
  // Entries are edge ids (usable with edge_* above) leaving element i, in
  // the same order Circuit::fanout used to yield.
  EdgeIndex fanout_begin(int i) const { return fanout_offset_[static_cast<size_t>(i)]; }
  EdgeIndex fanout_end(int i) const { return fanout_offset_[static_cast<size_t>(i) + 1]; }
  EdgeIndex fanout_edge(EdgeIndex f) const { return fanout_edges_[static_cast<size_t>(f)]; }

  /// Σ Δ_ij + Σ Δ_DQ over the whole circuit — the schedule-independent part
  /// of the fixpoint divergence bound. Maintained incrementally across
  /// mutations.
  double divergence_base() const { return divergence_base_; }

  // -- In-place mutation API ------------------------------------------------
  // Each setter patches the fused per-edge constants (max_const / min_const)
  // the kernels read, bumps generation(), and records the touched edges in
  // the dirty set. Mirror the same edit into the source Circuit separately;
  // the view never writes back.
  void set_path_delay(int p, double delay);          // Δ_ij (by path index)
  void set_path_min_delay(int p, double min_delay);  // δ_ij
  void set_element_dq(int i, double dq);             // Δ_DQ (all fanout edges)
  void set_element_min_dq(int i, double min_dq);     // resolved min Δ_DQ
  void set_element_setup(int i, double setup);       // slack-only parameter
  void set_element_hold(int i, double hold);         // slack-only parameter
  void set_element_skew(int i, double skew);         // slack-only parameter (σ_i >= 0)

  /// Bumped by every mutation; lets caches detect any drift cheaply.
  uint64_t generation() const { return generation_; }
  /// Edges whose max_const or min_const changed since clear_dirty(),
  /// deduplicated, in first-touch order.
  const std::vector<EdgeIndex>& dirty_edges() const { return dirty_edges_; }
  bool max_dirty() const { return max_dirty_; }    // some long-path constant moved
  bool min_dirty() const { return min_dirty_; }    // some short-path constant moved
  bool params_dirty() const { return params_dirty_; }  // setup/hold moved
  /// True while every max_const change since clear_dirty() was nondecreasing
  /// — the warm-start precondition for the monotone eq. 17 iteration.
  bool max_nondecreasing() const { return max_nondecreasing_; }
  void clear_dirty();

 private:
  void mark_edge_dirty(EdgeIndex e);
  int num_elements_ = 0;
  int num_edges_ = 0;
  int num_phases_ = 0;
  double build_seconds_ = 0.0;
  double divergence_base_ = 0.0;

  std::vector<char> latch_;
  std::vector<int> phase_;
  std::vector<double> setup_, hold_, dq_, min_dq_, skew_;
  std::vector<double> setup_margin_, hold_margin_;  // setup+skew / hold+skew
  double max_skew_ = 0.0;

  std::vector<EdgeIndex> fanin_offset_;  // l + 1
  std::vector<int> src_, dst_, path_of_edge_, shift_index_;
  std::vector<EdgeIndex> edge_of_path_;
  std::vector<int> cross_;
  std::vector<double> max_const_, min_const_;

  std::vector<EdgeIndex> fanout_offset_;  // l + 1
  std::vector<EdgeIndex> fanout_edges_;

  // Raw per-edge path delays (Δ_ij / δ_ij), kept so element-level edits can
  // re-fuse max_const/min_const without consulting the Circuit.
  std::vector<double> path_delay_, path_min_delay_;

  // Mutation tracking.
  uint64_t generation_ = 0;
  std::vector<EdgeIndex> dirty_edges_;
  std::vector<char> edge_dirty_;
  bool max_dirty_ = false;
  bool min_dirty_ = false;
  bool params_dirty_ = false;
  bool max_nondecreasing_ = true;
};

/// Evaluate the right-hand side of eq. (17) for element `i`:
/// max(0, max over fan-in edges of D_src + (Δ_DQ + Δ) + S). Returns 0 for
/// flip-flops and latches without fan-in. This IS the pre-refactor
/// sta::departure_update inner loop, minus the pointer chasing.
inline double departure_update(const TimingView& view, const ShiftTable& shifts,
                               const std::vector<double>& departure, int i) {
  if (!view.is_latch(i)) return 0.0;
  double best = 0.0;
  const EdgeIndex end = view.fanin_end(i);
  for (EdgeIndex e = view.fanin_begin(i); e < end; ++e) {
    const double a = departure[static_cast<size_t>(view.edge_src(e))] +
                     view.edge_max_const(e) + shifts.at(view.edge_shift(e));
    if (a > best) best = a;
  }
  return best;
}

/// The earliest-departure (min-fixpoint) analogue over min delays, used by
/// the hold/short-path check: max(0, min over fan-in of
/// d_src + (min_DQ + δ) + S); 0 for flip-flops and latches without fan-in
/// (they depart at the leading edge).
double early_departure_update(const TimingView& view, const ShiftTable& shifts,
                              const std::vector<double>& departure, int i);

/// Latest arrival A_i (eq. 14) at element `i` given fixed departures;
/// -infinity when i has no fan-in (the paper's Δ == -inf convention).
double arrival_update(const TimingView& view, const ShiftTable& shifts,
                      const std::vector<double>& departure, int i);

}  // namespace mintc
