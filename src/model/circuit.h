// The circuit timing model: synchronizing elements joined by combinational
// max/min path delays (paper Fig. 1 and Section III).
//
// A Circuit is the input to everything else in the library: the constraint
// generator (src/opt), the analysis engine (src/sta), the baselines and the
// renderers all consume this type. It is a *timing abstraction*: each
// element typically stands for a whole bus of identically-timed latches
// (the paper lumps 32-bit buses into single synchronizers), and each
// CombPath carries the worst-case (and optionally best-case) delay through
// a combinational block between two elements.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/digraph.h"
#include "model/clock.h"
#include "model/element.h"

namespace mintc {

/// A combinational path from element `from` to element `to` with worst-case
/// delay Δ_ij and best-case delay δ_ij. Pairs of elements with no connecting
/// block simply have no CombPath (the paper's Δ_ij = -inf convention).
struct CombPath {
  int from = 0;
  int to = 0;
  double delay = 0.0;      // Δ_ij (max)
  double min_delay = 0.0;  // δ_ij (min), used by the hold/short-path check
  std::string label;       // e.g. the block name ("La", "ALU", ...)
};

class Circuit {
 public:
  Circuit(std::string name, int num_phases);

  const std::string& name() const { return name_; }
  int num_phases() const { return num_phases_; }
  int num_elements() const { return static_cast<int>(elements_.size()); }
  int num_paths() const { return static_cast<int>(paths_.size()); }

  /// Add a synchronizing element; its name must be unique. Returns the
  /// element index (0-based).
  int add_element(Element element);

  /// Convenience constructors.
  int add_latch(std::string name, int phase, double setup, double dq);
  int add_flipflop(std::string name, int phase, double setup, double clk_to_q);

  /// Add a combinational path between two elements (by index or name).
  /// Returns the path index.
  int add_path(int from, int to, double delay, double min_delay = 0.0, std::string label = "");
  int add_path(const std::string& from, const std::string& to, double delay,
               double min_delay = 0.0, std::string label = "");

  const Element& element(int i) const { return elements_.at(static_cast<size_t>(i)); }
  Element& element(int i) { return elements_.at(static_cast<size_t>(i)); }
  const std::vector<Element>& elements() const { return elements_; }

  const CombPath& path(int p) const { return paths_.at(static_cast<size_t>(p)); }
  const std::vector<CombPath>& paths() const { return paths_; }

  /// Change a path's worst-case delay (used by parametric sweeps, e.g.
  /// varying Δ41 in example 1). Asserts that the new delay is finite,
  /// nonnegative and still >= the path's min delay.
  void set_path_delay(int p, double delay);

  /// Change a path's best-case delay. Asserts that the new min delay is
  /// finite, nonnegative and still <= the path's max delay.
  void set_path_min_delay(int p, double min_delay);

  /// Change a path's label (timing-neutral; used by the shrinker).
  void set_path_label(int p, std::string label);

  // -- In-place structural edits -------------------------------------------
  // Exact inverses of each other, used by the incremental-analysis session's
  // undo log and the fuzz shrinker: remove_path(p) followed by
  // insert_path(p, removed) restores the circuit bit-for-bit, including path
  // numbering and fan-in/fan-out order. Each is O(l + E).

  /// Remove path `p`; later paths shift down by one. Returns the removed
  /// path so it can be re-inserted.
  CombPath remove_path(int p);

  /// Insert `path` at index `pos` (0 <= pos <= num_paths()); paths at or
  /// after `pos` shift up by one.
  void insert_path(int pos, CombPath path);

  /// Remove element `e`, which must have no incident paths (remove them
  /// first); later elements shift down by one. Returns the removed element.
  Element remove_element(int e);

  /// Insert `element` at index `pos` (0 <= pos <= num_elements()); elements
  /// at or after `pos` shift up by one. The name must be unique.
  void insert_element(int pos, Element element);

  /// Element index by name, if present.
  std::optional<int> find_element(const std::string& name) const;

  /// Path indices entering / leaving an element.
  const std::vector<int>& fanin(int element) const;
  const std::vector<int>& fanout(int element) const;

  /// Maximum fan-in over all elements ("F" in the paper's constraint-count
  /// bound 4k + (F+1)l).
  int max_fanin() const;

  /// The K matrix (eq. 2) computed from latch-to-latch paths only; see
  /// element.h for why flip-flop endpoints are exempt from nonoverlap.
  KMatrix k_matrix() const;

  /// The latch connectivity graph: one node per element, one edge per
  /// CombPath, weight = Δ_DQ(from) + Δ_ij, transit = C_{p_from, p_to}.
  /// The maximum cycle ratio of this graph lower-bounds the optimal Tc.
  graph::Digraph latch_graph() const;

  /// Structural validation; returns human-readable problems (empty = OK).
  /// Checks: phases in range, finite and nonnegative parameters, min <= max
  /// delays, the paper's Δ_DQ >= Δ_DC assumption, and duplicate parallel
  /// paths.
  std::vector<std::string> validate() const;

 private:
  std::string name_;
  int num_phases_;
  std::vector<Element> elements_;
  std::vector<CombPath> paths_;
  std::unordered_map<std::string, int> by_name_;
  std::vector<std::vector<int>> fanin_;
  std::vector<std::vector<int>> fanout_;
};

}  // namespace mintc
