#include "model/circuit.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

#include "base/strings.h"

namespace mintc {

Circuit::Circuit(std::string name, int num_phases)
    : name_(std::move(name)), num_phases_(num_phases) {
  assert(num_phases >= 1);
}

int Circuit::add_element(Element element) {
  assert(by_name_.find(element.name) == by_name_.end() && "duplicate element name");
  const int id = static_cast<int>(elements_.size());
  by_name_.emplace(element.name, id);
  elements_.push_back(std::move(element));
  fanin_.emplace_back();
  fanout_.emplace_back();
  return id;
}

int Circuit::add_latch(std::string name, int phase, double setup, double dq) {
  Element e;
  e.name = std::move(name);
  e.kind = ElementKind::kLatch;
  e.phase = phase;
  e.setup = setup;
  e.dq = dq;
  return add_element(std::move(e));
}

int Circuit::add_flipflop(std::string name, int phase, double setup, double clk_to_q) {
  Element e;
  e.name = std::move(name);
  e.kind = ElementKind::kFlipFlop;
  e.phase = phase;
  e.setup = setup;
  e.dq = clk_to_q;
  return add_element(std::move(e));
}

int Circuit::add_path(int from, int to, double delay, double min_delay, std::string label) {
  assert(from >= 0 && from < num_elements() && to >= 0 && to < num_elements());
  const int id = static_cast<int>(paths_.size());
  paths_.push_back(CombPath{from, to, delay, min_delay, std::move(label)});
  fanout_[static_cast<size_t>(from)].push_back(id);
  fanin_[static_cast<size_t>(to)].push_back(id);
  return id;
}

int Circuit::add_path(const std::string& from, const std::string& to, double delay,
                      double min_delay, std::string label) {
  const auto f = find_element(from);
  const auto t = find_element(to);
  assert(f && t && "unknown element name in add_path");
  return add_path(*f, *t, delay, min_delay, std::move(label));
}

void Circuit::set_path_delay(int p, double delay) {
  CombPath& path = paths_.at(static_cast<size_t>(p));
  assert(std::isfinite(delay) && delay >= 0.0 && "path delay must be finite and nonnegative");
  assert(path.min_delay <= delay && "path max delay must stay >= its min delay");
  path.delay = delay;
}

void Circuit::set_path_min_delay(int p, double min_delay) {
  CombPath& path = paths_.at(static_cast<size_t>(p));
  assert(std::isfinite(min_delay) && min_delay >= 0.0 &&
         "path min delay must be finite and nonnegative");
  assert(min_delay <= path.delay && "path min delay must stay <= its max delay");
  path.min_delay = min_delay;
}

void Circuit::set_path_label(int p, std::string label) {
  paths_.at(static_cast<size_t>(p)).label = std::move(label);
}

CombPath Circuit::remove_path(int p) {
  assert(p >= 0 && p < num_paths());
  CombPath removed = std::move(paths_[static_cast<size_t>(p)]);
  paths_.erase(paths_.begin() + p);
  for (auto* lists : {&fanin_, &fanout_}) {
    for (auto& list : *lists) {
      auto it = list.begin();
      for (int& id : list) {
        if (id == p) continue;  // dropped below via the write iterator
        *it++ = id > p ? id - 1 : id;
      }
      list.erase(it, list.end());
    }
  }
  return removed;
}

void Circuit::insert_path(int pos, CombPath path) {
  assert(pos >= 0 && pos <= num_paths());
  assert(path.from >= 0 && path.from < num_elements() && path.to >= 0 &&
         path.to < num_elements());
  for (auto* lists : {&fanin_, &fanout_}) {
    for (auto& list : *lists) {
      for (int& id : list) {
        if (id >= pos) ++id;
      }
    }
  }
  // fanin_/fanout_ lists are kept ascending (add_path appends the largest id),
  // so re-insert at the sorted position to restore the exact original order.
  auto& out = fanout_[static_cast<size_t>(path.from)];
  out.insert(std::lower_bound(out.begin(), out.end(), pos), pos);
  auto& in = fanin_[static_cast<size_t>(path.to)];
  in.insert(std::lower_bound(in.begin(), in.end(), pos), pos);
  paths_.insert(paths_.begin() + pos, std::move(path));
}

Element Circuit::remove_element(int e) {
  assert(e >= 0 && e < num_elements());
  assert(fanin_[static_cast<size_t>(e)].empty() && fanout_[static_cast<size_t>(e)].empty() &&
         "remove incident paths before removing an element");
  Element removed = std::move(elements_[static_cast<size_t>(e)]);
  elements_.erase(elements_.begin() + e);
  fanin_.erase(fanin_.begin() + e);
  fanout_.erase(fanout_.begin() + e);
  by_name_.erase(removed.name);
  for (auto& entry : by_name_) {
    if (entry.second > e) --entry.second;
  }
  for (CombPath& p : paths_) {
    assert(p.from != e && p.to != e);
    if (p.from > e) --p.from;
    if (p.to > e) --p.to;
  }
  return removed;
}

void Circuit::insert_element(int pos, Element element) {
  assert(pos >= 0 && pos <= num_elements());
  assert(by_name_.find(element.name) == by_name_.end() && "duplicate element name");
  for (auto& entry : by_name_) {
    if (entry.second >= pos) ++entry.second;
  }
  for (CombPath& p : paths_) {
    if (p.from >= pos) ++p.from;
    if (p.to >= pos) ++p.to;
  }
  by_name_.emplace(element.name, pos);
  elements_.insert(elements_.begin() + pos, std::move(element));
  fanin_.emplace(fanin_.begin() + pos);
  fanout_.emplace(fanout_.begin() + pos);
}

std::optional<int> Circuit::find_element(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

const std::vector<int>& Circuit::fanin(int element) const {
  return fanin_.at(static_cast<size_t>(element));
}

const std::vector<int>& Circuit::fanout(int element) const {
  return fanout_.at(static_cast<size_t>(element));
}

int Circuit::max_fanin() const {
  size_t f = 0;
  for (const auto& v : fanin_) f = std::max(f, v.size());
  return static_cast<int>(f);
}

KMatrix Circuit::k_matrix() const {
  KMatrix K(num_phases_);
  for (const CombPath& p : paths_) {
    const Element& from = elements_[static_cast<size_t>(p.from)];
    const Element& to = elements_[static_cast<size_t>(p.to)];
    if (!from.is_latch() || !to.is_latch()) continue;  // flip-flops cannot race
    K.set(from.phase, to.phase, true);
  }
  return K;
}

graph::Digraph Circuit::latch_graph() const {
  graph::Digraph g(num_elements());
  for (int p = 0; p < num_paths(); ++p) {
    const CombPath& path = paths_[static_cast<size_t>(p)];
    const Element& from = elements_[static_cast<size_t>(path.from)];
    const Element& to = elements_[static_cast<size_t>(path.to)];
    g.add_edge(path.from, path.to, from.dq + path.delay,
               static_cast<double>(c_flag(from.phase, to.phase)), p);
  }
  return g;
}

std::vector<std::string> Circuit::validate() const {
  std::vector<std::string> problems;
  if (num_phases_ < 1) problems.push_back("circuit must have at least one clock phase");
  for (int i = 0; i < num_elements(); ++i) {
    const Element& e = elements_[static_cast<size_t>(i)];
    if (e.phase < 1 || e.phase > num_phases_) {
      problems.push_back("element '" + e.name + "' uses phase " + std::to_string(e.phase) +
                         " outside 1.." + std::to_string(num_phases_));
    }
    if (!std::isfinite(e.setup) || !std::isfinite(e.dq) || !std::isfinite(e.hold) ||
        !std::isfinite(e.min_dq()) || !std::isfinite(e.skew)) {
      problems.push_back("element '" + e.name + "' has a non-finite timing parameter");
      continue;  // the sign/ordering checks below are meaningless on NaN
    }
    if (e.setup < 0.0) problems.push_back("element '" + e.name + "' has negative setup time");
    if (e.dq < 0.0) problems.push_back("element '" + e.name + "' has negative Δ_DQ");
    if (e.hold < 0.0) problems.push_back("element '" + e.name + "' has negative hold time");
    if (e.skew < 0.0) problems.push_back("element '" + e.name + "' has negative clock skew");
    if (e.is_latch() && e.dq < e.setup) {
      problems.push_back("element '" + e.name +
                         "' violates the paper's assumption Δ_DQ >= Δ_DC (Δ_DQ=" +
                         fmt_time(e.dq) + ", Δ_DC=" + fmt_time(e.setup) + ")");
    }
    if (e.min_dq() > e.dq) {
      problems.push_back("element '" + e.name + "' has min Δ_DQ greater than max Δ_DQ");
    }
  }
  std::set<std::pair<int, int>> seen;
  for (const CombPath& p : paths_) {
    if (!std::isfinite(p.delay) || !std::isfinite(p.min_delay)) {
      problems.push_back("path '" + p.label + "' has a non-finite delay");
      continue;
    }
    if (p.delay < 0.0) {
      problems.push_back("path '" + p.label + "' has negative max delay");
    }
    if (p.min_delay < 0.0) {
      problems.push_back("path '" + p.label + "' has negative min delay");
    }
    if (p.min_delay > p.delay) {
      problems.push_back("path '" + p.label + "' has min delay greater than max delay");
    }
    if (!seen.insert({p.from, p.to}).second) {
      problems.push_back("parallel combinational paths between '" +
                         elements_[static_cast<size_t>(p.from)].name + "' and '" +
                         elements_[static_cast<size_t>(p.to)].name +
                         "' (merge them by taking max/min delays)");
    }
  }
  return problems;
}

}  // namespace mintc
