#include "model/timing_view.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mintc {

ShiftTable::ShiftTable(const ClockSchedule& schedule) {
  const StageTimer timer;
  k_ = schedule.num_phases();
  cycle_ = schedule.cycle;
  shift_.resize(static_cast<size_t>(k_) * static_cast<size_t>(k_));
  start_.resize(static_cast<size_t>(k_));
  width_.resize(static_cast<size_t>(k_));
  for (int i = 1; i <= k_; ++i) {
    start_[static_cast<size_t>(i - 1)] = schedule.s(i);
    width_[static_cast<size_t>(i - 1)] = schedule.T(i);
    for (int j = 1; j <= k_; ++j) {
      shift_[static_cast<size_t>((i - 1) * k_ + (j - 1))] = schedule.shift(i, j);
    }
  }
  build_seconds_ = timer.seconds();
}

ShiftDelta ShiftTable::update(const ClockSchedule& schedule) {
  ShiftDelta delta;
  const int new_k = schedule.num_phases();
  delta.same_shape = (new_k == k_);
  delta.phase_dirty.assign(static_cast<size_t>(new_k), 0);
  if (!delta.same_shape) {
    // Phase count changed: every phase is new territory.
    delta.changed = true;
    for (char& d : delta.phase_dirty) d = 1;
    *this = ShiftTable(schedule);
    return delta;
  }
  delta.shifts_nondecreasing = true;
  if (schedule.cycle != cycle_) delta.changed = true;
  cycle_ = schedule.cycle;
  for (int i = 1; i <= k_; ++i) {
    const double s = schedule.s(i);
    const double w = schedule.T(i);
    if (s != start_[static_cast<size_t>(i - 1)] || w != width_[static_cast<size_t>(i - 1)]) {
      delta.changed = true;
      delta.phase_dirty[static_cast<size_t>(i - 1)] = 1;
    }
    start_[static_cast<size_t>(i - 1)] = s;
    width_[static_cast<size_t>(i - 1)] = w;
    for (int j = 1; j <= k_; ++j) {
      const size_t flat = static_cast<size_t>((i - 1) * k_ + (j - 1));
      const double v = schedule.shift(i, j);
      if (v != shift_[flat]) {
        delta.changed = true;
        delta.phase_dirty[static_cast<size_t>(i - 1)] = 1;
        delta.phase_dirty[static_cast<size_t>(j - 1)] = 1;
        if (v < shift_[flat]) delta.shifts_nondecreasing = false;
        shift_[flat] = v;
      }
    }
  }
  return delta;
}

TimingView::TimingView(const Circuit& circuit) {
  const StageTimer timer;
  // Reject circuits whose edge count would overflow the 32-bit path ids
  // BEFORE touching num_paths(): Circuit::num_paths() itself is an int cast
  // of the vector size, so it is already garbage past the ceiling.
  assert(edge_capacity_ok(static_cast<std::int64_t>(circuit.paths().size())) &&
         "circuit edge count exceeds TimingView::kMaxEdges; the flattened "
         "view (and Circuit's int path ids) cannot represent it");
  num_elements_ = circuit.num_elements();
  num_edges_ = circuit.num_paths();
  num_phases_ = circuit.num_phases();
  const size_t l = static_cast<size_t>(num_elements_);
  const size_t m = circuit.paths().size();

  latch_.resize(l);
  phase_.resize(l);
  setup_.resize(l);
  hold_.resize(l);
  dq_.resize(l);
  min_dq_.resize(l);
  skew_.resize(l);
  setup_margin_.resize(l);
  hold_margin_.resize(l);
  for (int i = 0; i < num_elements_; ++i) {
    const Element& e = circuit.element(i);
    assert(std::isfinite(e.skew) && e.skew >= 0.0 &&
           "element skew must be finite and nonnegative (Circuit::validate rejects it)");
    latch_[static_cast<size_t>(i)] = e.is_latch() ? 1 : 0;
    phase_[static_cast<size_t>(i)] = e.phase;
    setup_[static_cast<size_t>(i)] = e.setup;
    hold_[static_cast<size_t>(i)] = e.hold;
    dq_[static_cast<size_t>(i)] = e.dq;
    min_dq_[static_cast<size_t>(i)] = e.min_dq();
    skew_[static_cast<size_t>(i)] = e.skew;
    setup_margin_[static_cast<size_t>(i)] = e.setup + e.skew;
    hold_margin_[static_cast<size_t>(i)] = e.hold + e.skew;
    if (e.skew > max_skew_) max_skew_ = e.skew;
    divergence_base_ += e.dq;
  }

  // Fan-in CSR: walk destinations in order, preserving each Circuit::fanin
  // list's (ascending path-index) order so kernel iteration order is
  // unchanged from the pre-refactor loops.
  fanin_offset_.assign(l + 1, 0);
  src_.resize(m);
  dst_.resize(m);
  path_of_edge_.resize(m);
  edge_of_path_.resize(m);
  shift_index_.resize(m);
  cross_.resize(m);
  max_const_.resize(m);
  min_const_.resize(m);
  path_delay_.resize(m);
  path_min_delay_.resize(m);
  edge_dirty_.assign(m, 0);
  // The accumulating slot counter is 64-bit: this is the sum that used to
  // wrap as `int` on circuits with > 2^31 fan-in slots.
  EdgeIndex e = 0;
  for (int i = 0; i < num_elements_; ++i) {
    fanin_offset_[static_cast<size_t>(i)] = e;
    for (const int p : circuit.fanin(i)) {
      const CombPath& path = circuit.path(p);
      const Element& src = circuit.element(path.from);
      src_[static_cast<size_t>(e)] = path.from;
      dst_[static_cast<size_t>(e)] = path.to;
      path_of_edge_[static_cast<size_t>(e)] = p;
      edge_of_path_[static_cast<size_t>(p)] = e;
      max_const_[static_cast<size_t>(e)] = src.dq + path.delay;
      min_const_[static_cast<size_t>(e)] = src.min_dq() + path.min_delay;
      path_delay_[static_cast<size_t>(e)] = path.delay;
      path_min_delay_[static_cast<size_t>(e)] = path.min_delay;
      shift_index_[static_cast<size_t>(e)] =
          (src.phase - 1) * num_phases_ + (phase_[static_cast<size_t>(i)] - 1);
      cross_[static_cast<size_t>(e)] = c_flag(src.phase, phase_[static_cast<size_t>(i)]);
      ++e;
    }
  }
  fanin_offset_[l] = e;
  assert(e == num_edges_ && "every path must appear in exactly one fanin list");

  for (const CombPath& p : circuit.paths()) divergence_base_ += p.delay;

  // Fan-out CSR: edge ids leaving each element, preserving Circuit::fanout
  // order.
  fanout_offset_.assign(l + 1, 0);
  fanout_edges_.resize(m);
  EdgeIndex f = 0;
  for (int i = 0; i < num_elements_; ++i) {
    fanout_offset_[static_cast<size_t>(i)] = f;
    for (const int p : circuit.fanout(i)) {
      fanout_edges_[static_cast<size_t>(f)] = edge_of_path_[static_cast<size_t>(p)];
      ++f;
    }
  }
  fanout_offset_[l] = f;

  build_seconds_ = timer.seconds();
}

void TimingView::mark_edge_dirty(EdgeIndex e) {
  ++generation_;
  if (!edge_dirty_[static_cast<size_t>(e)]) {
    edge_dirty_[static_cast<size_t>(e)] = 1;
    dirty_edges_.push_back(e);
  }
}

void TimingView::set_path_delay(int p, double delay) {
  const EdgeIndex e = edge_of_path_[static_cast<size_t>(p)];
  const double old = path_delay_[static_cast<size_t>(e)];
  if (delay == old) return;
  if (delay < old) max_nondecreasing_ = false;
  divergence_base_ += delay - old;
  path_delay_[static_cast<size_t>(e)] = delay;
  max_const_[static_cast<size_t>(e)] = dq_[static_cast<size_t>(src_[static_cast<size_t>(e)])] + delay;
  max_dirty_ = true;
  mark_edge_dirty(e);
}

void TimingView::set_path_min_delay(int p, double min_delay) {
  const EdgeIndex e = edge_of_path_[static_cast<size_t>(p)];
  if (min_delay == path_min_delay_[static_cast<size_t>(e)]) return;
  path_min_delay_[static_cast<size_t>(e)] = min_delay;
  min_const_[static_cast<size_t>(e)] =
      min_dq_[static_cast<size_t>(src_[static_cast<size_t>(e)])] + min_delay;
  min_dirty_ = true;
  mark_edge_dirty(e);
}

void TimingView::set_element_dq(int i, double dq) {
  const double old = dq_[static_cast<size_t>(i)];
  if (dq == old) return;
  if (dq < old) max_nondecreasing_ = false;
  divergence_base_ += dq - old;
  dq_[static_cast<size_t>(i)] = dq;
  const EdgeIndex end = fanout_end(i);
  for (EdgeIndex f = fanout_begin(i); f < end; ++f) {
    const EdgeIndex e = fanout_edges_[static_cast<size_t>(f)];
    max_const_[static_cast<size_t>(e)] = dq + path_delay_[static_cast<size_t>(e)];
    max_dirty_ = true;
    mark_edge_dirty(e);
  }
  if (fanout_begin(i) == end) ++generation_;  // no edges, still a change
}

void TimingView::set_element_min_dq(int i, double min_dq) {
  if (min_dq == min_dq_[static_cast<size_t>(i)]) return;
  min_dq_[static_cast<size_t>(i)] = min_dq;
  const EdgeIndex end = fanout_end(i);
  for (EdgeIndex f = fanout_begin(i); f < end; ++f) {
    const EdgeIndex e = fanout_edges_[static_cast<size_t>(f)];
    min_const_[static_cast<size_t>(e)] = min_dq + path_min_delay_[static_cast<size_t>(e)];
    min_dirty_ = true;
    mark_edge_dirty(e);
  }
  if (fanout_begin(i) == end) ++generation_;
}

void TimingView::set_element_setup(int i, double setup) {
  if (setup == setup_[static_cast<size_t>(i)]) return;
  setup_[static_cast<size_t>(i)] = setup;
  setup_margin_[static_cast<size_t>(i)] = setup + skew_[static_cast<size_t>(i)];
  params_dirty_ = true;
  ++generation_;
}

void TimingView::set_element_hold(int i, double hold) {
  if (hold == hold_[static_cast<size_t>(i)]) return;
  hold_[static_cast<size_t>(i)] = hold;
  hold_margin_[static_cast<size_t>(i)] = hold + skew_[static_cast<size_t>(i)];
  params_dirty_ = true;
  ++generation_;
}

void TimingView::set_element_skew(int i, double skew) {
  assert(std::isfinite(skew) && skew >= 0.0 && "element skew must be finite and nonnegative");
  const double old = skew_[static_cast<size_t>(i)];
  if (skew == old) return;
  skew_[static_cast<size_t>(i)] = skew;
  setup_margin_[static_cast<size_t>(i)] = setup_[static_cast<size_t>(i)] + skew;
  hold_margin_[static_cast<size_t>(i)] = hold_[static_cast<size_t>(i)] + skew;
  if (skew > max_skew_) {
    max_skew_ = skew;
  } else if (old == max_skew_) {
    // The previous maximum shrank: rescan. Skew edits are rare next to
    // fixpoint sweeps, so O(l) here is fine.
    max_skew_ = 0.0;
    for (const double s : skew_) max_skew_ = std::max(max_skew_, s);
  }
  params_dirty_ = true;
  ++generation_;
}

void TimingView::clear_dirty() {
  for (const EdgeIndex e : dirty_edges_) edge_dirty_[static_cast<size_t>(e)] = 0;
  dirty_edges_.clear();
  max_dirty_ = false;
  min_dirty_ = false;
  params_dirty_ = false;
  max_nondecreasing_ = true;
}

double early_departure_update(const TimingView& view, const ShiftTable& shifts,
                              const std::vector<double>& departure, int i) {
  if (!view.is_latch(i)) return 0.0;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double earliest = kInf;
  const EdgeIndex end = view.fanin_end(i);
  for (EdgeIndex e = view.fanin_begin(i); e < end; ++e) {
    const double a = departure[static_cast<size_t>(view.edge_src(e))] +
                     view.edge_min_const(e) + shifts.at(view.edge_shift(e));
    if (a < earliest) earliest = a;
  }
  if (earliest == kInf) return 0.0;  // no fanin: departs at the leading edge
  return earliest > 0.0 ? earliest : 0.0;
}

double arrival_update(const TimingView& view, const ShiftTable& shifts,
                      const std::vector<double>& departure, int i) {
  double latest = -std::numeric_limits<double>::infinity();
  const EdgeIndex end = view.fanin_end(i);
  for (EdgeIndex e = view.fanin_begin(i); e < end; ++e) {
    const double a = departure[static_cast<size_t>(view.edge_src(e))] +
                     view.edge_max_const(e) + shifts.at(view.edge_shift(e));
    if (a > latest) latest = a;
  }
  return latest;
}

}  // namespace mintc
