#include "model/clock.h"

#include <cassert>
#include <sstream>

#include "base/approx.h"
#include "base/strings.h"

namespace mintc {

KMatrix::KMatrix(int num_phases) : k_(num_phases) {
  assert(num_phases >= 1);
  data_.assign(static_cast<size_t>(k_) * static_cast<size_t>(k_), 0);
}

bool KMatrix::at(int i, int j) const {
  assert(i >= 1 && i <= k_ && j >= 1 && j <= k_);
  return data_[static_cast<size_t>(i - 1) * static_cast<size_t>(k_) +
               static_cast<size_t>(j - 1)] != 0;
}

void KMatrix::set(int i, int j, bool v) {
  assert(i >= 1 && i <= k_ && j >= 1 && j <= k_);
  data_[static_cast<size_t>(i - 1) * static_cast<size_t>(k_) + static_cast<size_t>(j - 1)] =
      v ? 1 : 0;
}

int KMatrix::num_pairs() const {
  int n = 0;
  for (const char c : data_) n += (c != 0);
  return n;
}

std::string KMatrix::to_string() const {
  std::ostringstream out;
  for (int i = 1; i <= k_; ++i) {
    out << (i == 1 ? "[ " : "  ");
    for (int j = 1; j <= k_; ++j) out << (at(i, j) ? 1 : 0) << (j < k_ ? " " : "");
    out << (i == k_ ? " ]" : "") << "\n";
  }
  return out.str();
}

ClockSchedule::ClockSchedule(double tc, std::vector<double> s, std::vector<double> t)
    : cycle(tc), start(std::move(s)), width(std::move(t)) {
  assert(start.size() == width.size());
}

ClockSchedule ClockSchedule::scaled(double factor) const {
  ClockSchedule out = *this;
  out.cycle *= factor;
  for (double& v : out.start) v *= factor;
  for (double& v : out.width) v *= factor;
  return out;
}

std::string ClockSchedule::to_string() const {
  std::ostringstream out;
  out << "Tc=" << fmt_time(cycle);
  for (int p = 1; p <= num_phases(); ++p) {
    out << "  phi" << p << ":[" << fmt_time(s(p)) << "," << fmt_time(phase_end(p)) << ")";
  }
  return out.str();
}

ClockSchedule symmetric_schedule(int num_phases, double cycle, double duty) {
  assert(num_phases >= 1 && duty > 0.0 && duty <= 1.0);
  ClockSchedule sch;
  sch.cycle = cycle;
  const double slot = cycle / num_phases;
  for (int p = 0; p < num_phases; ++p) {
    sch.start.push_back(slot * p);
    sch.width.push_back(slot * duty);
  }
  return sch;
}

std::vector<ClockViolation> check_clock_constraints(const ClockSchedule& schedule,
                                                    const KMatrix& K, double eps) {
  std::vector<ClockViolation> v;
  const int k = schedule.num_phases();
  const double tc = schedule.cycle;
  auto violated = [&](const std::string& what, double amount) {
    if (amount > eps) v.push_back({what, amount});
  };

  // C4 first so that garbage inputs produce the most basic messages.
  violated("C4 nonnegativity Tc", -tc);
  for (int i = 1; i <= k; ++i) {
    violated("C4 nonnegativity T" + std::to_string(i), -schedule.T(i));
    violated("C4 nonnegativity s" + std::to_string(i), -schedule.s(i));
  }
  // C1 periodicity.
  for (int i = 1; i <= k; ++i) {
    violated("C1 periodicity T" + std::to_string(i) + "<=Tc", schedule.T(i) - tc);
    violated("C1 periodicity s" + std::to_string(i) + "<=Tc", schedule.s(i) - tc);
  }
  // C2 phase ordering.
  for (int i = 1; i < k; ++i) {
    violated("C2 ordering s" + std::to_string(i) + "<=s" + std::to_string(i + 1),
             schedule.s(i) - schedule.s(i + 1));
  }
  // C3 phase nonoverlap (eq. 6): for each I/O pair phi_i/phi_j (K_ij=1):
  //   s_i >= s_j + T_j - C_ji*Tc.
  for (int i = 1; i <= k; ++i) {
    for (int j = 1; j <= k; ++j) {
      if (!K.at(i, j)) continue;
      const double lhs = schedule.s(i);
      const double rhs = schedule.s(j) + schedule.T(j) - c_flag(j, i) * tc;
      violated("C3 nonoverlap phi" + std::to_string(i) + "/phi" + std::to_string(j), rhs - lhs);
    }
  }
  return v;
}

}  // namespace mintc
