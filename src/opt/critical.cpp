#include "opt/critical.h"

#include <algorithm>
#include <sstream>

#include "base/approx.h"
#include "base/strings.h"
#include "graph/cycles.h"
#include "model/timing_view.h"

namespace mintc::opt {

std::string LoopInfo::to_string(const Circuit& circuit) const {
  std::ostringstream out;
  for (size_t i = 0; i < path_indices.size(); ++i) {
    const CombPath& p = circuit.path(path_indices[i]);
    if (i == 0) out << circuit.element(p.from).name;
    out << " -> " << circuit.element(p.to).name;
  }
  out << " (delay " << fmt_time(delay_sum) << ", spans " << cycle_span << " cycle"
      << (cycle_span == 1 ? "" : "s") << ", Tc >= " << fmt_time(implied_tc, 4) << ")";
  return out.str();
}

namespace {

LoopInfo loop_from_cycle(const graph::Digraph& g, const graph::SimpleCycle& cycle) {
  LoopInfo info;
  info.delay_sum = cycle.weight_sum;
  info.cycle_span = static_cast<int>(cycle.transit_sum + 0.5);
  info.implied_tc = info.cycle_span > 0 ? info.delay_sum / info.cycle_span : 0.0;
  for (const int e : cycle.edges) info.path_indices.push_back(g.edge(e).tag);
  return info;
}

}  // namespace

LoopReport analyze_loops(const Circuit& circuit, int max_loops) {
  LoopReport report;
  const graph::Digraph g = circuit.latch_graph();
  std::vector<graph::SimpleCycle> cycles;
  report.complete = graph::enumerate_simple_cycles(g, cycles, max_loops);
  report.loops.reserve(cycles.size());
  for (const graph::SimpleCycle& c : cycles) {
    report.loops.push_back(loop_from_cycle(g, c));
  }
  std::sort(report.loops.begin(), report.loops.end(),
            [](const LoopInfo& a, const LoopInfo& b) { return a.implied_tc > b.implied_tc; });
  return report;
}

CriticalReport find_critical_segments(const Circuit& circuit, const ClockSchedule& schedule,
                                      const std::vector<double>& departure, double eps) {
  CriticalReport report;
  report.path_slack.resize(static_cast<size_t>(circuit.num_paths()), 0.0);

  const TimingView view(circuit);
  const ShiftTable shifts(schedule);

  // Path slacks at the fixpoint. Flip-flop destinations have no L2R row;
  // report their slack against the setup deadline instead.
  for (int p = 0; p < circuit.num_paths(); ++p) {
    const EdgeIndex e = view.edge_of_path(p);
    const int dst = view.edge_dst(e);
    const double arrival_term = departure[static_cast<size_t>(view.edge_src(e))] +
                                view.edge_max_const(e) + shifts.at(view.edge_shift(e));
    double slack;
    if (view.is_latch(dst)) {
      slack = departure[static_cast<size_t>(dst)] - arrival_term;
    } else {
      slack = -view.setup_margin(dst) - arrival_term;
    }
    report.path_slack[static_cast<size_t>(p)] = slack;
    if (approx_eq(slack, 0.0, eps)) report.tight_paths.push_back(p);
  }

  // Setup-critical elements.
  for (int i = 0; i < view.num_elements(); ++i) {
    if (!view.is_latch(i)) continue;
    const double slack =
        shifts.width(view.phase(i)) - view.setup_margin(i) - departure[static_cast<size_t>(i)];
    if (approx_eq(slack, 0.0, eps)) report.setup_critical.push_back(i);
  }

  // Critical loops: cycles within the tight-path subgraph.
  graph::Digraph tight(circuit.num_elements());
  for (const int p : report.tight_paths) {
    const EdgeIndex e = view.edge_of_path(p);
    if (!view.is_latch(view.edge_dst(e))) continue;
    tight.add_edge(view.edge_src(e), view.edge_dst(e), view.edge_max_const(e),
                   static_cast<double>(view.edge_cross(e)), p);
  }
  std::vector<graph::SimpleCycle> cycles;
  graph::enumerate_simple_cycles(tight, cycles, 1000);
  for (const graph::SimpleCycle& c : cycles) {
    report.critical_loops.push_back(loop_from_cycle(tight, c));
  }
  std::sort(report.critical_loops.begin(), report.critical_loops.end(),
            [](const LoopInfo& a, const LoopInfo& b) { return a.implied_tc > b.implied_tc; });
  return report;
}

std::string CriticalReport::to_string(const Circuit& circuit) const {
  std::ostringstream out;
  out << "critical segments (tight propagation paths):\n";
  for (const int p : tight_paths) {
    const CombPath& path = circuit.path(p);
    out << "  " << circuit.element(path.from).name << " -> "
        << circuit.element(path.to).name;
    if (!path.label.empty()) out << " [" << path.label << "]";
    out << "\n";
  }
  if (tight_paths.empty()) out << "  (none)\n";
  out << "setup-critical elements:";
  for (const int i : setup_critical) out << " " << circuit.element(i).name;
  if (setup_critical.empty()) out << " (none)";
  out << "\ncritical loops:\n";
  for (const LoopInfo& loop : critical_loops) {
    out << "  " << loop.to_string(circuit) << "\n";
  }
  if (critical_loops.empty()) out << "  (none)\n";
  return out.str();
}

}  // namespace mintc::opt
