#include "opt/graph_solver.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "baselines/edge_triggered.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sta/fixpoint.h"

namespace mintc::opt {

namespace {

// One difference constraint x_u - x_v <= base + tc_coeff * Tc.
struct DiffEdge {
  int u = 0;
  int v = 0;
  double base = 0.0;
  double tc_coeff = 0.0;
};

// The difference system for a circuit: node 0 is the time origin; phases
// contribute start/end nodes; every element contributes an absolute-departure
// node.
struct DiffSystem {
  int num_nodes = 0;
  std::vector<DiffEdge> edges;
  std::vector<int> s_node, e_node, d_node;

  void add(int u, int v, double base, double tc_coeff = 0.0) {
    edges.push_back({u, v, base, tc_coeff});
  }
};

DiffSystem build_system(const Circuit& circuit, const TimingView& view,
                        const GeneratorOptions& opt) {
  DiffSystem sys;
  const int k = circuit.num_phases();
  const int l = circuit.num_elements();
  sys.num_nodes = 1 + 2 * k + l;
  for (int p = 0; p < k; ++p) {
    sys.s_node.push_back(1 + p);
    sys.e_node.push_back(1 + k + p);
  }
  for (int i = 0; i < l; ++i) sys.d_node.push_back(1 + 2 * k + i);
  const auto s_of = [&](int phase) { return sys.s_node[static_cast<size_t>(phase - 1)]; };
  const auto e_of = [&](int phase) { return sys.e_node[static_cast<size_t>(phase - 1)]; };

  // C1 + C4: 0 <= s_i <= Tc, 0 <= T_i <= Tc (as e_i - s_i).
  for (int p = 1; p <= k; ++p) {
    sys.add(s_of(p), 0, 0.0, 1.0);   // s - x0 <= Tc
    sys.add(0, s_of(p), 0.0);        // x0 - s <= 0
    sys.add(e_of(p), s_of(p), 0.0, 1.0);  // T <= Tc
    sys.add(s_of(p), e_of(p), 0.0);       // T >= 0
    if (opt.min_phase_width > 0.0) {
      sys.add(s_of(p), e_of(p), -opt.min_phase_width);  // T >= width
    }
  }
  // C2 ordering.
  for (int p = 1; p < k; ++p) sys.add(s_of(p), s_of(p + 1), 0.0);
  // C3 nonoverlap. Mirrors generate_lp: the margin charges the worst
  // effective skew (max over per-latch σ_i, floored by the global option).
  if (opt.enforce_nonoverlap) {
    const KMatrix K = circuit.k_matrix();
    const double margin =
        opt.min_phase_separation + std::max(view.max_skew(), opt.clock_skew);
    for (int i = 1; i <= k; ++i) {
      for (int j = 1; j <= k; ++j) {
        if (!K.at(i, j)) continue;
        // e_j - s_i <= C_ji*Tc - margin
        sys.add(e_of(j), s_of(i), -margin, static_cast<double>(c_flag(j, i)));
      }
    }
  }

  for (int i = 0; i < l; ++i) {
    const int p = view.phase(i);
    // Per-element capture margins, floored by the legacy global option
    // (same effective-skew rule as generate_lp's eff_skew).
    const double setup_skew = view.setup(i) + std::max(view.skew(i), opt.clock_skew);
    const double hold_skew = view.hold(i) + std::max(view.skew(i), opt.clock_skew);
    const int dn = sys.d_node[static_cast<size_t>(i)];
    const EdgeIndex fi_end = view.fanin_end(i);
    // L3: D >= 0  ->  s_p - dh <= 0.
    sys.add(s_of(p), dn, 0.0);
    if (view.is_latch(i)) {
      if (!opt.arrival_based_setup) {
        // L1: dh - e_p <= -setup - skew.
        sys.add(dn, e_of(p), -setup_skew);
      } else {
        for (EdgeIndex fe = view.fanin_begin(i); fe < fi_end; ++fe) {
          // A_i + setup <= T_p: dh_j - e_p <= C*Tc - dq - delta - setup.
          sys.add(sys.d_node[static_cast<size_t>(view.edge_src(fe))], e_of(p),
                  -(view.edge_max_const(fe) + setup_skew),
                  static_cast<double>(view.edge_cross(fe)));
        }
      }
    } else {
      // Flip-flop pin: dh == s_p.
      sys.add(dn, s_of(p), 0.0);
      sys.add(s_of(p), dn, 0.0);
      // FF setup: dh_j - s_p <= C*Tc - dq - delta - setup.
      for (EdgeIndex fe = view.fanin_begin(i); fe < fi_end; ++fe) {
        sys.add(sys.d_node[static_cast<size_t>(view.edge_src(fe))], s_of(p),
                -(view.edge_max_const(fe) + setup_skew),
                static_cast<double>(view.edge_cross(fe)));
      }
    }
    // Hold extension.
    if (opt.hold_constraints) {
      for (EdgeIndex fe = view.fanin_begin(i); fe < fi_end; ++fe) {
        const double c = static_cast<double>(view.edge_cross(fe));
        const double rhs_base = -(hold_skew - view.edge_min_const(fe));
        const int src_phase = view.phase(view.edge_src(fe));
        if (view.is_latch(i)) {
          // e_p - s_pj <= (1-C)*Tc - hold + delta.
          sys.add(e_of(p), s_of(src_phase), rhs_base, 1.0 - c);
        } else {
          sys.add(s_of(p), s_of(src_phase), rhs_base, 1.0 - c);
        }
      }
    }
  }

  // L2R propagation: dh_j - dh_i <= C*Tc - dq_j - delta_ji.
  for (int pi = 0; pi < circuit.num_paths(); ++pi) {
    const EdgeIndex fe = view.edge_of_path(pi);
    if (!view.is_latch(view.edge_dst(fe))) continue;
    sys.add(sys.d_node[static_cast<size_t>(view.edge_src(fe))],
            sys.d_node[static_cast<size_t>(view.edge_dst(fe))], -view.edge_max_const(fe),
            static_cast<double>(view.edge_cross(fe)));
  }
  return sys;
}

// Bellman-Ford feasibility of the difference system at a concrete Tc.
// On success fills `x` with a feasible assignment (x[0] == 0).
bool feasible_at(const DiffSystem& sys, double tc, std::vector<double>& x,
                 long& relaxations) {
  obs::Tracer& tracer = obs::Tracer::instance();
  const bool tracing = tracer.enabled();
  const obs::TraceSpan span("graph.bellman-ford", "opt");
  x.assign(static_cast<size_t>(sys.num_nodes), 0.0);  // virtual source to all
  for (int pass = 0; pass < sys.num_nodes; ++pass) {
    bool improved = false;
    long pass_improvements = 0;  // relaxation-round record, kept when tracing
    for (const DiffEdge& e : sys.edges) {
      // Constraint x_u <= x_v + w: relax dist(u) against dist(v) + w.
      const double w = e.base + e.tc_coeff * tc;
      const double cand = x[static_cast<size_t>(e.v)] + w;
      ++relaxations;
      if (cand < x[static_cast<size_t>(e.u)] - 1e-12) {
        x[static_cast<size_t>(e.u)] = cand;
        improved = true;
        if (tracing) ++pass_improvements;
      }
    }
    if (tracing) {
      tracer.counter("graph.pass_improvements", static_cast<double>(pass_improvements), "opt");
    }
    if (!improved) {
      // Normalize so the origin sits at zero.
      const double x0 = x[0];
      for (double& v : x) v -= x0;
      return true;
    }
  }
  return false;  // negative cycle
}

}  // namespace

Expected<GraphSolveResult> minimize_cycle_time_graph(const Circuit& circuit,
                                                     const GraphSolveOptions& options) {
  if (!options.assume_valid) {
    const std::vector<std::string> problems = circuit.validate();
    if (!problems.empty()) {
      return make_error(ErrorKind::kInvalidCircuit,
                        "circuit '" + circuit.name() + "' failed validation");
    }
  }
  const StageTimer wall_timer;
  const obs::TraceSpan span("graph.solve", "opt");
  const TimingView view(circuit);
  const DiffSystem sys = build_system(circuit, view, options.generator);
  GraphSolveResult res;
  res.stats.view_build_seconds = view.build_seconds();
  std::vector<double> x;

  // Bracket the optimum. Warm path: a tc_hint from a previous solve of a
  // perturbed circuit starts the bracket at [0.95, 1.05] x hint. Cold path:
  // CPM is feasible when no extensions bite; otherwise double until
  // feasible.
  const StageTimer bracket_timer;
  double lo = 0.0;
  const bool warm = options.tc_hint > 0.0;
  double hi = warm ? options.tc_hint * 1.05
                   : std::max(1.0, baselines::edge_triggered_cpm(circuit).cycle);
  while (!feasible_at(sys, hi, x, res.relaxations)) {
    hi *= 2.0;
    if (hi > options.hi_limit) {
      return make_error(ErrorKind::kInfeasible,
                        "no feasible cycle time below the search limit for '" +
                            circuit.name() + "'");
    }
  }
  if (warm) {
    // Probe just below the hint: if infeasible there, the bracket shrinks to
    // ~10% of the hint; otherwise the optimum dropped past it and the search
    // falls back to [0, hi].
    const double probe = options.tc_hint * 0.95;
    if (probe < hi && !feasible_at(sys, probe, x, res.relaxations)) lo = probe;
    obs::MetricsRegistry::instance().counter("graph.warm_brackets").inc();
  }
  res.stats.add_stage("bracket", bracket_timer.seconds());
  const StageTimer search_timer;
  while (hi - lo > options.tol) {
    const double mid = 0.5 * (lo + hi);
    ++res.search_steps;
    if (feasible_at(sys, mid, x, res.relaxations)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  // Final feasible solve at the returned Tc.
  if (!feasible_at(sys, hi, x, res.relaxations)) {
    return make_error(ErrorKind::kNotConverged, "binary search lost feasibility (tolerance?)");
  }
  res.stats.add_stage("binary-search", search_timer.seconds());

  res.min_cycle = hi;
  res.schedule.cycle = hi;
  const int k = circuit.num_phases();
  for (int p = 0; p < k; ++p) {
    const double s = x[static_cast<size_t>(sys.s_node[static_cast<size_t>(p)])];
    const double e = x[static_cast<size_t>(sys.e_node[static_cast<size_t>(p)])];
    res.schedule.start.push_back(s);
    res.schedule.width.push_back(e - s);
  }
  // Departures: the least L2 fixpoint under the schedule, iterated from
  // below. Sliding *down* from the Bellman-Ford point (mirroring Algorithm
  // MLP steps 3-5) needs O(1/|loop gain|) sweeps when the binary search
  // lands within `tol` of a critical loop — the loop's gain is then ~-tol
  // and each sweep only sheds that much, so the sweep limit trips. The
  // upward iteration's cost is bounded by path depth instead and reaches
  // the same least fixpoint (found by differential fuzzing, seed 26).
  sta::FixpointOptions fix_opts;
  fix_opts.scheme = sta::UpdateScheme::kEventDriven;
  const sta::FixpointResult fix = sta::compute_departures(
      circuit, res.schedule,
      std::vector<double>(static_cast<size_t>(circuit.num_elements()), 0.0), fix_opts);
  if (!fix.converged) {
    return make_error(ErrorKind::kNotConverged,
                      fix.hit_sweep_limit()
                          ? "fixpoint hit the sweep budget (residual " +
                                std::to_string(fix.residual) + "; tolerance?)"
                          : "fixpoint diverged (tolerance?)");
  }
  res.departure = fix.departure;
  res.stats.absorb(fix.stats);  // folds the departure fixpoint's accounting in
  res.stats.wall_seconds = wall_timer.seconds();
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("graph.solves").inc();
  reg.counter("graph.search_steps").inc(res.search_steps);
  reg.counter("graph.bf_relaxations").inc(res.relaxations);
  return res;
}

}  // namespace mintc::opt
