#include "opt/parametric.h"

namespace mintc::opt {

lp::ParametricResult sweep_path_delay(const Circuit& circuit, int path_index, double lo,
                                      double hi, int samples, const GeneratorOptions& options) {
  const lp::SimplexSolver solver;
  // One scratch circuit mutated per sample replaces the full per-θ copy;
  // sweep_parameter chains the optimal basis between consecutive samples,
  // so all solves after the first are warm re-optimizations.
  Circuit scratch = circuit;
  return lp::sweep_parameter(
      [&](double theta) {
        scratch.set_path_delay(path_index, theta);
        return generate_lp(scratch, options).model;
      },
      lo, hi, samples, solver);
}

lp::ParametricResult sweep_clock_skew(const Circuit& circuit, double lo, double hi,
                                      int samples, const GeneratorOptions& options) {
  const lp::SimplexSolver solver;
  // Broadcast σ through the first-class Element::skew field (not the
  // GeneratorOptions::clock_skew floor) so the sweep exercises the same
  // per-element path every other engine reads; the two are constructed to
  // generate identical LPs.
  Circuit scratch = circuit;
  return lp::sweep_parameter(
      [&](double theta) {
        for (int i = 0; i < scratch.num_elements(); ++i) {
          scratch.element(i).skew = theta;
        }
        return generate_lp(scratch, options).model;
      },
      lo, hi, samples, solver);
}

}  // namespace mintc::opt
