#include "opt/parametric.h"

namespace mintc::opt {

lp::ParametricResult sweep_path_delay(const Circuit& circuit, int path_index, double lo,
                                      double hi, int samples, const GeneratorOptions& options) {
  const lp::SimplexSolver solver;
  return lp::sweep_parameter(
      [&](double theta) {
        Circuit c = circuit;
        c.set_path_delay(path_index, theta);
        return generate_lp(c, options).model;
      },
      lo, hi, samples, solver);
}

}  // namespace mintc::opt
