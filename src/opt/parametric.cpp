#include "opt/parametric.h"

namespace mintc::opt {

lp::ParametricResult sweep_path_delay(const Circuit& circuit, int path_index, double lo,
                                      double hi, int samples, const GeneratorOptions& options) {
  const lp::SimplexSolver solver;
  // One scratch circuit mutated per sample replaces the full per-θ copy;
  // sweep_parameter chains the optimal basis between consecutive samples,
  // so all solves after the first are warm re-optimizations.
  Circuit scratch = circuit;
  return lp::sweep_parameter(
      [&](double theta) {
        scratch.set_path_delay(path_index, theta);
        return generate_lp(scratch, options).model;
      },
      lo, hi, samples, solver);
}

}  // namespace mintc::opt
