// SMO constraint generation (paper Sections III and IV).
//
// Builds the linear program P2 for a Circuit:
//
//   minimize Tc
//   subject to
//     C1  periodicity        T_i <= Tc,  s_i <= Tc
//     C2  phase ordering     s_i <= s_{i+1}
//     C3  phase nonoverlap   s_i >= s_j + T_j - C_ji*Tc   for K_ij = 1
//     C4  nonnegativity      Tc, T_i, s_i >= 0            (variable bounds)
//     L1  setup              D_i + Δ_DCi <= T_pi          (latches)
//     L2R relaxed propagation  D_i >= D_j + Δ_DQj + Δ_ji + S_{pj,pi}
//     L3  nonnegativity      D_i >= 0                     (variable bounds)
//
// plus the flip-flop rows (departure pinned to the leading edge, setup
// against the leading edge) and the optional extensions the paper mentions
// in Section III-A: minimum phase widths, minimum phase separation, and a
// clock-skew margin. Conservative linear hold (short-path) rows are also
// available.
//
// Row names encode the constraint class so solvers and reports can point at
// tight constraints in circuit terms: "C1:T1<=Tc", "C3:phi1/phi2",
// "L1:setup(L3)", "L2R:L2->L4", ...
#pragma once

#include <string>
#include <vector>

#include "lp/model.h"
#include "model/circuit.h"

namespace mintc::opt {

/// Where each timing quantity lives in the LP variable vector.
struct VariableMap {
  int tc = -1;
  std::vector<int> s;  // per phase (index 0 = phase 1)
  std::vector<int> T;
  std::vector<int> D;  // per element
};

struct GeneratorOptions {
  /// Emit C3 nonoverlap rows (the paper's minimum clock requirement).
  bool enforce_nonoverlap = true;

  /// Use the arrival-based setup constraint (10) instead of the realistic
  /// departure-based constraint (11). Provided for studying the paper's
  /// remark that (10) can be satisfied by zero-width phases.
  bool arrival_based_setup = false;

  /// Extensions (Section III-A: "minimum phase width, minimum phase
  /// separation, and clock skew ... can be easily added").
  double min_phase_width = 0.0;
  double min_phase_separation = 0.0;
  /// Convenience *broadcast floor* for the per-element skew field: every
  /// generated setup/hold row charges max(Element::skew, clock_skew), and
  /// the C3 nonoverlap margin charges the worst such value. Per-latch skews
  /// in the model (Element::skew) are the first-class mechanism; a circuit
  /// with all skews zero plus clock_skew = g generates exactly the same LP
  /// as one with every Element::skew = g and clock_skew = 0.
  double clock_skew = 0.0;

  /// Emit conservative linear hold rows (short-path check): assumes the
  /// earliest departure from any source latch is its phase's leading edge.
  bool hold_constraints = false;

  /// If >= 0, adds the row Tc <= bound — e.g. a quick upper bound from a
  /// baseline, the paper's "very good initial guess" suggestion.
  double tc_upper_bound = -1.0;
};

/// Per-class row counts, for the paper's 4k + (F+1)l bound and the GaAs
/// example's "91 constraints".
struct ConstraintCounts {
  int c1 = 0, c2 = 0, c3 = 0, l1 = 0, l2r = 0;
  int ff_pin = 0, ff_setup = 0, hold = 0, ext = 0;
  int bounds = 0;  // nonnegativity constraints C4 + L3 (variable bounds)

  int rows() const { return c1 + c2 + c3 + l1 + l2r + ff_pin + ff_setup + hold + ext; }
  int total_with_bounds() const { return rows() + bounds; }
};

struct GeneratedLp {
  lp::Model model;
  VariableMap vars;
  ConstraintCounts counts;
  /// Per CombPath: the LP row carrying its delay on the RHS (the L2R row
  /// for latch destinations, the FF setup row for flip-flop destinations);
  /// -1 if the path generated no such row. The row's dual is dTc*/dΔ_ij.
  std::vector<int> delay_row_of_path;
};

/// Build P2 for the circuit. The circuit must pass Circuit::validate().
GeneratedLp generate_lp(const Circuit& circuit, const GeneratorOptions& options = {});

/// Extract the clock schedule from an LP solution vector.
ClockSchedule schedule_from_solution(const VariableMap& vars, const std::vector<double>& x);

/// Extract the departure times from an LP solution vector.
std::vector<double> departures_from_solution(const VariableMap& vars,
                                             const std::vector<double>& x);

}  // namespace mintc::opt
