// Closed-form lower bounds on the optimal cycle time.
//
// Two combinatorial quantities bound Tc* from below without solving any LP:
//
//  * path-span bound: when the reverse I/O phase pair exists (K makes the
//    destination phase close at most one period after the source phase
//    opens), a single path j->i must fit within one period:
//        Tc >= Δ_DQj + Δ_ji + Δ_DCi.
//    This is what pins example 1's flat region at 80 ns (the Lc path).
//
//  * loop bound: every feedback loop must complete within the clock periods
//    it spans: Tc >= (loop delay sum) / (loop cycle span) — the maximum
//    cycle ratio of the latch graph.
//
// max(both) <= Tc* always; equality is common (all of the paper's examples
// except the setup-bound regimes). Property tests assert the inequality on
// every circuit; benches use it as an optimality certificate.
#pragma once

#include "model/circuit.h"

namespace mintc::opt {

/// The single-path span bound (0 if no path qualifies).
double path_span_bound(const Circuit& circuit);

/// The loop (max cycle ratio) bound (0 if the circuit is acyclic).
double loop_bound(const Circuit& circuit);

/// max(path_span_bound, loop_bound) — a certified lower bound on Tc*.
double cycle_time_lower_bound(const Circuit& circuit);

}  // namespace mintc::opt
