// Warm-started cycle-time optimization sessions.
//
// Section VI of the paper proposes parametric programming to "study the
// effects on the optimal cycle time of varying the circuit delays" — which
// in practice means re-solving the same LP (or difference-constraint
// system) many times under small delay perturbations. A CycleTimeSession
// owns one mutable Circuit and carries the solver state that survives such
// perturbations:
//
//   * the optimal simplex basis of the last P2 solve, fed back as a
//     basis_hint so the next solve skips phase 1 and re-optimizes in a
//     handful of pivots (zero when the basis is still optimal);
//   * the last optimal Tc*, fed to the graph solver as tc_hint so its
//     binary search starts from a ~10%-wide bracket instead of
//     [0, CPM-doubling];
//   * the one-time Circuit::validate() result, skipped on re-solves since
//     every session mutator preserves the validated invariants.
//
// All warm state is advisory: a defective basis or stale Tc hint falls
// back to the cold path inside the engines, so session results equal
// one-shot minimize_cycle_time / minimize_cycle_time_graph results on the
// mutated circuit.
//
// This is the optimizer-side sibling of sta::AnalysisSession (which warms
// the eq. 17 departure fixpoint); sensitivity.cpp and parametric.cpp are
// thin loops over this class.
#pragma once

#include <vector>

#include "base/error.h"
#include "model/circuit.h"
#include "opt/graph_solver.h"
#include "opt/mlp.h"
#include "opt/sensitivity.h"

namespace mintc::opt {

class CycleTimeSession {
 public:
  explicit CycleTimeSession(Circuit circuit, MlpOptions options = {});

  const Circuit& circuit() const { return circuit_; }
  const MlpOptions& options() const { return options_; }

  /// Perturb one path's worst-case / best-case delay. The Circuit setters
  /// enforce 0 <= min <= max, so validity survives and re-validation is
  /// skipped on the next solve.
  void set_path_delay(int p, double delay);
  void set_path_min_delay(int p, double min_delay);
  /// Perturb an element's Δ_DQ. May break the paper's Δ_DQ >= Δ_DC
  /// assumption, so the cached validation is dropped and the next solve
  /// re-validates.
  void set_element_dq(int e, double dq);
  /// Perturb an element's clock skew σ. Skew only moves setup/hold RHS
  /// terms and the C3 margin, but a negative or non-finite value is
  /// invalid, so the cached validation is dropped and the next solve
  /// re-validates.
  void set_element_skew(int e, double skew);

  /// Algorithm MLP on the current circuit, warm-started from the cached
  /// simplex basis when one exists.
  Expected<MlpResult> minimize();

  /// The difference-constraint solver on the current circuit, its binary
  /// search bracketed around the cached Tc* when one exists. Tc agrees with
  /// minimize() to the solver's tolerance (not bit-exactly — the binary
  /// search is tolerance-bound by construction).
  Expected<GraphSolveResult> minimize_graph();

  /// dTc*/dΔ_ij for every path from the duals of one (warm) P2 solve.
  Expected<SensitivityReport> sensitivities();

  struct Counters {
    long lp_solves = 0;       // simplex-backed solves (minimize + sensitivities)
    long warm_lp_starts = 0;  // ... of which installed the cached basis
    long lp_fallbacks = 0;    // ... of which rejected it and ran two-phase
    long graph_solves = 0;
    long warm_brackets = 0;   // graph solves bracketed from the cached Tc*
  };
  const Counters& counters() const { return counters_; }

 private:
  bool ensure_valid();  // run Circuit::validate() at most once per mutation epoch

  Circuit circuit_;
  MlpOptions options_;
  bool validated_ = false;
  std::vector<int> basis_;  // last optimal simplex basis (empty = none)
  double last_tc_ = -1.0;   // last optimal Tc* (< 0 = none)
  Counters counters_;
};

}  // namespace mintc::opt
