#include "opt/sensitivity.h"

#include "lp/simplex.h"

namespace mintc::opt {

Expected<SensitivityReport> delay_sensitivities(const Circuit& circuit,
                                                const MlpOptions& options) {
  const std::vector<std::string> problems = circuit.validate();
  if (!problems.empty()) {
    return make_error(ErrorKind::kInvalidCircuit,
                      "circuit '" + circuit.name() + "' failed validation");
  }
  const GeneratedLp gen = generate_lp(circuit, options.generator);
  const lp::Solution sol = lp::SimplexSolver(options.lp).solve(gen.model);
  if (sol.status != lp::SolveStatus::kOptimal) {
    return make_error(sol.status == lp::SolveStatus::kInfeasible ? ErrorKind::kInfeasible
                                                                 : ErrorKind::kNotConverged,
                      "P2 did not solve to optimality for sensitivities");
  }
  SensitivityReport report;
  report.min_cycle = sol.objective;
  report.dtc_ddelay.assign(static_cast<size_t>(circuit.num_paths()), 0.0);
  for (int p = 0; p < circuit.num_paths(); ++p) {
    const int row = gen.delay_row_of_path[static_cast<size_t>(p)];
    if (row < 0) continue;
    const double dual = sol.duals[static_cast<size_t>(row)];
    // L2R rows carry +Δ on a >= RHS (dual = slope directly); FF setup rows
    // carry -Δ on a <= RHS (slope = -dual).
    const bool ff_row = !circuit.element(circuit.path(p).to).is_latch();
    report.dtc_ddelay[static_cast<size_t>(p)] = ff_row ? -dual : dual;
  }
  return report;
}

}  // namespace mintc::opt
