#include "opt/sensitivity.h"

#include "opt/session.h"

namespace mintc::opt {

Expected<SensitivityReport> delay_sensitivities(const Circuit& circuit,
                                                const MlpOptions& options) {
  // One-shot wrapper over the warm-startable session; callers that sweep a
  // family of perturbed circuits should hold a CycleTimeSession instead so
  // the simplex basis carries over between solves.
  CycleTimeSession session(circuit, options);
  return session.sensitivities();
}

}  // namespace mintc::opt
