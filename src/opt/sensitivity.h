// Delay sensitivities from LP duals (parametric programming, Section VI).
//
// A combinational delay Δ_ij appears on the RHS of exactly one row of P2
// (its L2R row, or the FF setup row when the destination is a flip-flop),
// so by LP duality the row's dual price IS dTc*/dΔ_ij — the local slope of
// the paper's Fig. 7 curve, for every path at once, from a single solve.
// Tests cross-check these against finite differences and against the
// parametric sweep's recovered segment slopes.
#pragma once

#include <vector>

#include "base/error.h"
#include "model/circuit.h"
#include "opt/mlp.h"

namespace mintc::opt {

struct SensitivityReport {
  /// Per CombPath: dTc*/dΔ_ij at the current delays. In [0, 1]: 0 means the
  /// path is non-critical, 1 means Tc* tracks the delay one-for-one, and
  /// fractions arise when the delay is shared across several clock cycles
  /// of a critical loop (the paper's "borrowed" 1/2 slope).
  std::vector<double> dtc_ddelay;
  double min_cycle = 0.0;
};

/// Solve P2 once and read every path's sensitivity off the duals. Note the
/// optimum may be degenerate (a breakpoint of the piecewise-linear curve);
/// the reported value is then one of the valid subgradients.
Expected<SensitivityReport> delay_sensitivities(const Circuit& circuit,
                                                const MlpOptions& options = {});

}  // namespace mintc::opt
