// Critical delay segments and the loop inventory.
//
// Paper, Section V (example 2 discussion): "the notion of a critical path
// is clearly inadequate ... Instead of a single critical path, the circuit
// has several critical combinational delay segments which may be disjoint.
// The criticality of these segments ... [is] directly related to associated
// slack variables in the inequality constraints."
//
// This module computes, from a solved design point (schedule + departures):
//   * per-path propagation slack (how far each L2R inequality is from
//     binding at the fixpoint);
//   * the tight-path set (segments, in the paper's sense);
//   * critical loops: simple cycles consisting entirely of tight paths,
//     with their delay sums, cycle spans and implied Tc = delay/span;
//   * setup-critical elements (zero setup slack).
// Plus a schedule-independent loop inventory of the whole circuit, whose
// maximum implied Tc is the cycle-ratio lower bound.
#pragma once

#include <string>
#include <vector>

#include "model/circuit.h"

namespace mintc::opt {

/// One feedback loop of latches.
struct LoopInfo {
  std::vector<int> path_indices;  // CombPath ids, head-to-tail
  double delay_sum = 0.0;         // sum of Δ_DQ(src) + Δ_ij around the loop
  int cycle_span = 0;             // sum of C flags: clock periods covered
  double implied_tc = 0.0;        // delay_sum / cycle_span

  /// "L1 -> L2 -> L1 (delay 140, spans 2 cycles, Tc >= 70)".
  std::string to_string(const Circuit& circuit) const;
};

struct LoopReport {
  std::vector<LoopInfo> loops;  // sorted by implied_tc, descending
  bool complete = true;         // false if enumeration was truncated
};

/// Schedule-independent inventory of the circuit's feedback loops (bounded
/// enumeration). loops.front().implied_tc equals the max cycle ratio when
/// complete.
LoopReport analyze_loops(const Circuit& circuit, int max_loops = 10000);

struct CriticalReport {
  std::vector<double> path_slack;   // per CombPath: D_i - (D_j + Δ_DQj + Δ_ji + S)
  std::vector<int> tight_paths;     // paths with ~zero slack (critical segments)
  std::vector<int> setup_critical;  // element ids with ~zero setup slack
  std::vector<LoopInfo> critical_loops;  // loops made entirely of tight paths

  std::string to_string(const Circuit& circuit) const;
};

/// Analyze criticality of a concrete design point. `departure` must be a
/// fixpoint of eq. (17) under `schedule` (e.g. MlpResult::departure or a
/// TimingReport's departures).
CriticalReport find_critical_segments(const Circuit& circuit, const ClockSchedule& schedule,
                                      const std::vector<double>& departure,
                                      double eps = 1e-6);

}  // namespace mintc::opt
