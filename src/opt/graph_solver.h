// A second exact optimizer — the graph algorithm the paper anticipates.
//
// Section VI: "The LP formulation provides a convenient theoretical
// foundation ... for developing algorithms that are potentially more
// efficient than the simplex algorithm. We are currently investigating just
// such algorithms, noting that the entries of the constraint matrix for
// this problem are exclusively topological (i.e., 0, ±1)."
//
// Realization (the direction later taken by Szymanski '92 and
// Shenoy-Brayton): after the change of variables
//     e_i  = s_i + T_i          (phase end)
//     dh_i = s_{p_i} + D_i      (absolute departure)
// every SMO constraint with Tc FIXED becomes a pure difference constraint
// x_u − x_v ≤ w(Tc):
//     C1:  e_i − s_i ≤ Tc,  s_i − x0 ≤ Tc,  x0 − s_i ≤ 0,  s_i − e_i ≤ 0
//     C2:  s_i − s_{i+1} ≤ 0
//     C3:  e_j − s_i ≤ C_ji·Tc − margin
//     L1:  dh_i − e_{p_i} ≤ −Δ_DC_i
//     L2R: dh_j − dh_i ≤ C_{p_j,p_i}·Tc − Δ_DQ_j − Δ_ji
//     L3:  s_{p_i} − dh_i ≤ 0
// (flip-flop pin/setup rows and the optional width/separation/skew/hold
// extensions transform the same way). Feasibility of a difference system is
// the absence of a negative cycle (Bellman-Ford), and every weight is
// nondecreasing in Tc, so feasibility is monotone and the optimal cycle
// time falls to a binary search over Bellman-Ford calls — no LP at all.
//
// Tests pin this solver to the simplex result on every circuit; the
// bench_ablation_graph_solver compares their costs.
#pragma once

#include "base/error.h"
#include "model/circuit.h"
#include "obs/stats.h"
#include "opt/constraints.h"

namespace mintc::opt {

struct GraphSolveOptions {
  GeneratorOptions generator;  // same extension knobs as the LP path
  double tol = 1e-7;           // absolute Tc tolerance of the binary search
  double hi_limit = 1e12;
  /// Warm start: Tc* from a previous solve of a perturbed version of the
  /// same circuit (<= 0 disables). The bracket starts at [0.95, 1.05] x hint
  /// instead of [0, CPM-doubling], which cuts the binary search to a few
  /// steps when the optimum barely moved. Feasibility of the bracket ends is
  /// re-verified, so a stale hint degrades speed, never the result.
  double tc_hint = -1.0;
  /// Skip Circuit::validate() — for session loops over a circuit already
  /// validated once (see MlpOptions::assume_valid).
  bool assume_valid = false;
};

struct GraphSolveResult {
  double min_cycle = 0.0;
  ClockSchedule schedule;
  std::vector<double> departure;  // L2-fixpoint departures under the schedule
  int search_steps = 0;           // binary-search iterations
  long relaxations = 0;           // Bellman-Ford edge relaxations, total
  EngineStats stats;              // wall + bracket / binary-search stage split
};

/// Minimize the cycle time by binary search over difference-constraint
/// feasibility. Produces the same optimal Tc as minimize_cycle_time (up to
/// `tol`); fails with kInfeasible when no Tc below hi_limit works.
Expected<GraphSolveResult> minimize_cycle_time_graph(const Circuit& circuit,
                                                     const GraphSolveOptions& options = {});

}  // namespace mintc::opt
