#include "opt/constraints.h"

#include <algorithm>
#include <cassert>

namespace mintc::opt {

namespace {

std::string phi(int p) { return "phi" + std::to_string(p); }

// Effective capture-side skew of one element: its per-latch σ_i floored by
// the legacy global option. With all Element::skew zero this degenerates to
// the old scalar behavior bit-for-bit; with clock_skew zero it reads the
// per-latch model field.
double eff_skew(const Element& e, const GeneratorOptions& options) {
  return std::max(e.skew, options.clock_skew);
}

}  // namespace

GeneratedLp generate_lp(const Circuit& circuit, const GeneratorOptions& options) {
  GeneratedLp out;
  lp::Model& m = out.model;
  VariableMap& v = out.vars;
  const int k = circuit.num_phases();
  const int l = circuit.num_elements();

  // ---- Variables. Nonnegativity (C4, L3) is carried by the lower bounds.
  v.tc = m.add_variable("Tc");
  m.set_objective(v.tc, 1.0);
  out.counts.bounds += 1;
  for (int p = 1; p <= k; ++p) {
    v.s.push_back(m.add_variable("s" + std::to_string(p)));
    out.counts.bounds += 1;
  }
  for (int p = 1; p <= k; ++p) {
    v.T.push_back(m.add_variable("T" + std::to_string(p)));
    out.counts.bounds += 1;
  }
  for (int i = 0; i < l; ++i) {
    v.D.push_back(m.add_variable("D(" + circuit.element(i).name + ")"));
    out.counts.bounds += 1;
  }
  const auto s_var = [&](int p) { return v.s[static_cast<size_t>(p - 1)]; };
  const auto t_var = [&](int p) { return v.T[static_cast<size_t>(p - 1)]; };
  const auto d_var = [&](int i) { return v.D[static_cast<size_t>(i)]; };

  // ---- C1 periodicity: T_i <= Tc, s_i <= Tc.
  for (int p = 1; p <= k; ++p) {
    m.add_row("C1:T" + std::to_string(p) + "<=Tc", {{t_var(p), 1.0}, {v.tc, -1.0}},
              lp::Sense::kLe, 0.0);
    m.add_row("C1:s" + std::to_string(p) + "<=Tc", {{s_var(p), 1.0}, {v.tc, -1.0}},
              lp::Sense::kLe, 0.0);
    out.counts.c1 += 2;
  }

  // ---- C2 phase ordering: s_i <= s_{i+1}.
  for (int p = 1; p < k; ++p) {
    m.add_row("C2:s" + std::to_string(p) + "<=s" + std::to_string(p + 1),
              {{s_var(p), 1.0}, {s_var(p + 1), -1.0}}, lp::Sense::kLe, 0.0);
    out.counts.c2 += 1;
  }

  // ---- C3 phase nonoverlap (eq. 6): s_i >= s_j + T_j - C_ji*Tc for K_ij=1,
  // with the optional skew/separation margin folded into the RHS.
  if (options.enforce_nonoverlap) {
    const KMatrix K = circuit.k_matrix();
    // The nonoverlap guard protects every latch pair, so it charges the
    // worst effective skew in the circuit (max over per-latch σ_i, floored
    // by the global option).
    double worst_skew = options.clock_skew;
    for (const Element& e : circuit.elements()) worst_skew = std::max(worst_skew, e.skew);
    const double margin = options.min_phase_separation + worst_skew;
    for (int i = 1; i <= k; ++i) {
      for (int j = 1; j <= k; ++j) {
        if (!K.at(i, j)) continue;
        // s_i - s_j - T_j + C_ji*Tc >= margin
        m.add_row("C3:" + phi(i) + "/" + phi(j),
                  {{s_var(i), 1.0},
                   {s_var(j), -1.0},
                   {t_var(j), -1.0},
                   {v.tc, static_cast<double>(c_flag(j, i))}},
                  lp::Sense::kGe, margin);
        out.counts.c3 += 1;
      }
    }
  }

  // ---- Extensions: minimum phase widths.
  if (options.min_phase_width > 0.0) {
    for (int p = 1; p <= k; ++p) {
      m.add_row("EXT:minwidth:T" + std::to_string(p), {{t_var(p), 1.0}}, lp::Sense::kGe,
                options.min_phase_width);
      out.counts.ext += 1;
    }
  }

  // ---- Warm-start style upper bound on Tc.
  if (options.tc_upper_bound >= 0.0) {
    m.add_row("EXT:Tc<=bound", {{v.tc, 1.0}}, lp::Sense::kLe, options.tc_upper_bound);
    out.counts.ext += 1;
  }

  out.delay_row_of_path.assign(static_cast<size_t>(circuit.num_paths()), -1);

  // ---- Latch rows.
  for (int i = 0; i < l; ++i) {
    const Element& e = circuit.element(i);
    const int p = e.phase;
    if (e.is_latch()) {
      if (!options.arrival_based_setup) {
        // L1 (eq. 16): D_i + Δ_DCi (+ σ_i) <= T_pi.
        m.add_row("L1:setup(" + e.name + ")", {{d_var(i), 1.0}, {t_var(p), -1.0}},
                  lp::Sense::kLe, -(e.setup + eff_skew(e, options)));
        out.counts.l1 += 1;
      } else {
        // Eq. (10): A_i + Δ_DCi <= T_pi, one row per fanin path.
        for (const int pi : circuit.fanin(i)) {
          const CombPath& path = circuit.path(pi);
          const Element& src = circuit.element(path.from);
          const int pj = src.phase;
          // D_j + Δ_DQj + Δ_ji + s_pj - s_pi - C_{pj,pi}*Tc + Δ_DCi <= T_pi
          m.add_row("L1A:setup(" + e.name + "<-" + src.name + ")",
                    {{d_var(path.from), 1.0},
                     {s_var(pj), 1.0},
                     {s_var(p), -1.0},
                     {v.tc, -static_cast<double>(c_flag(pj, p))},
                     {t_var(p), -1.0}},
                    lp::Sense::kLe,
                    -(src.dq + path.delay + e.setup + eff_skew(e, options)));
          out.counts.l1 += 1;
        }
      }
    } else {
      // Flip-flop: departure pinned to the leading edge of its phase.
      m.add_row("FF:pin(" + e.name + ")", {{d_var(i), 1.0}}, lp::Sense::kEq, 0.0);
      out.counts.ff_pin += 1;
      // Setup against the leading edge: A_i <= -Δ_DCi, one row per fanin.
      for (const int pi : circuit.fanin(i)) {
        const CombPath& path = circuit.path(pi);
        const Element& src = circuit.element(path.from);
        const int pj = src.phase;
        // D_j + Δ_DQj + Δ_ji + s_pj - s_pi - C_{pj,pi}*Tc <= -Δ_DCi - skew
        const int row = m.add_row(
            "FF:setup(" + e.name + "<-" + src.name + ")",
            {{d_var(path.from), 1.0},
             {s_var(pj), 1.0},
             {s_var(p), -1.0},
             {v.tc, -static_cast<double>(c_flag(pj, p))}},
            lp::Sense::kLe, -(src.dq + path.delay + e.setup + eff_skew(e, options)));
        out.delay_row_of_path[static_cast<size_t>(pi)] = row;
        out.counts.ff_setup += 1;
      }
    }
  }

  // ---- L2R relaxed propagation (eq. 19), one row per combinational path:
  //   D_i >= D_j + Δ_DQj + Δ_ji + S_{pj,pi}
  //   D_i - D_j - s_pj + s_pi + C_{pj,pi}*Tc >= Δ_DQj + Δ_ji.
  for (int pi = 0; pi < circuit.num_paths(); ++pi) {
    const CombPath& path = circuit.path(pi);
    const Element& src = circuit.element(path.from);
    const Element& dst = circuit.element(path.to);
    if (!dst.is_latch()) continue;  // FF departures are pinned, not propagated
    const int pj = src.phase;
    const int p = dst.phase;
    const int row = m.add_row("L2R:" + src.name + "->" + dst.name,
                              {{d_var(path.to), 1.0},
                               {d_var(path.from), -1.0},
                               {s_var(pj), -1.0},
                               {s_var(p), 1.0},
                               {v.tc, static_cast<double>(c_flag(pj, p))}},
                              lp::Sense::kGe, src.dq + path.delay);
    out.delay_row_of_path[static_cast<size_t>(pi)] = row;
    out.counts.l2r += 1;
  }

  // ---- Conservative hold rows (short-path extension). Earliest departure
  // from the source is assumed to be its phase's leading edge (d_j = 0).
  // Rows are emitted even for hold = 0: the requirement that the next token
  // not reach a still-open latch is the transparency-race guard itself.
  if (options.hold_constraints) {
    for (int i = 0; i < l; ++i) {
      const Element& e = circuit.element(i);
      const int p = e.phase;
      for (const int pi : circuit.fanin(i)) {
        const CombPath& path = circuit.path(pi);
        const Element& src = circuit.element(path.from);
        const int pj = src.phase;
        const double c = static_cast<double>(c_flag(pj, p));
        // The capture edge may arrive up to σ_i late, so the hold margin is
        // Δ_Hi + σ_i. (The pre-skew scalar option never reached hold rows —
        // a pessimism gap this per-latch form closes; with all skews and the
        // global option zero the RHS is unchanged.)
        if (e.is_latch()) {
          // Tc + δ_DQj + δ_ji + S_{pj,pi} >= T_pi + Δ_Hi + σ_i
          // (1-C)*Tc + s_pj - s_pi - T_pi >= Δ_Hi + σ_i - δ_DQj - δ_ji
          m.add_row("HOLD:" + e.name + "<-" + src.name,
                    {{v.tc, 1.0 - c}, {s_var(pj), 1.0}, {s_var(p), -1.0}, {t_var(p), -1.0}},
                    lp::Sense::kGe, e.hold + eff_skew(e, options) - src.min_dq() - path.min_delay);
        } else {
          // Flip-flop holds against the leading edge: (1-C)*Tc + s_pj - s_pi
          // >= Δ_Hi + σ_i - δ_DQj - δ_ji.
          m.add_row("HOLD:" + e.name + "<-" + src.name,
                    {{v.tc, 1.0 - c}, {s_var(pj), 1.0}, {s_var(p), -1.0}}, lp::Sense::kGe,
                    e.hold + eff_skew(e, options) - src.min_dq() - path.min_delay);
        }
        out.counts.hold += 1;
      }
    }
  }

  return out;
}

ClockSchedule schedule_from_solution(const VariableMap& vars, const std::vector<double>& x) {
  ClockSchedule sch;
  sch.cycle = x.at(static_cast<size_t>(vars.tc));
  for (const int sv : vars.s) sch.start.push_back(x.at(static_cast<size_t>(sv)));
  for (const int tv : vars.T) sch.width.push_back(x.at(static_cast<size_t>(tv)));
  return sch;
}

std::vector<double> departures_from_solution(const VariableMap& vars,
                                             const std::vector<double>& x) {
  std::vector<double> d;
  d.reserve(vars.D.size());
  for (const int dv : vars.D) d.push_back(x.at(static_cast<size_t>(dv)));
  return d;
}

}  // namespace mintc::opt
