#include "opt/bounds.h"

#include <algorithm>

#include "graph/cycle_ratio.h"

namespace mintc::opt {

double path_span_bound(const Circuit& circuit) {
  double bound = 0.0;
  for (const CombPath& p : circuit.paths()) {
    const Element& src = circuit.element(p.from);
    const Element& dst = circuit.element(p.to);
    if (!src.is_latch() || !dst.is_latch()) continue;
    // The path's own C3 nonoverlap row (its I/O phase pair is in K by
    // construction) caps the time from the source phase's opening edge to
    // the destination phase's closing edge at one period for distinct
    // phases — and at two periods for a same-phase path, whose token
    // crosses a full cycle boundary.
    const double periods = (src.phase == dst.phase) ? 2.0 : 1.0;
    // The destination's capture margin includes its local clock skew.
    bound = std::max(bound, (src.dq + p.delay + dst.setup + dst.skew) / periods);
  }
  return bound;
}

double loop_bound(const Circuit& circuit) {
  const auto ratio = graph::max_cycle_ratio_howard(circuit.latch_graph());
  return ratio ? std::max(0.0, ratio->ratio) : 0.0;
}

double cycle_time_lower_bound(const Circuit& circuit) {
  return std::max(path_span_bound(circuit), loop_bound(circuit));
}

}  // namespace mintc::opt
