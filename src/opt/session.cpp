#include "opt/session.h"

#include <utility>

#include "lp/simplex.h"
#include "opt/constraints.h"

namespace mintc::opt {

CycleTimeSession::CycleTimeSession(Circuit circuit, MlpOptions options)
    : circuit_(std::move(circuit)), options_(std::move(options)) {}

void CycleTimeSession::set_path_delay(int p, double delay) {
  circuit_.set_path_delay(p, delay);
}

void CycleTimeSession::set_path_min_delay(int p, double min_delay) {
  circuit_.set_path_min_delay(p, min_delay);
}

void CycleTimeSession::set_element_dq(int e, double dq) {
  // Editing Δ_DQ can violate Δ_DQ >= Δ_DC, so the next solve re-validates.
  circuit_.element(e).dq = dq;
  validated_ = false;
}

void CycleTimeSession::set_element_skew(int e, double skew) {
  circuit_.element(e).skew = skew;
  validated_ = false;
}

bool CycleTimeSession::ensure_valid() {
  if (validated_) return true;
  if (!circuit_.validate().empty()) return false;
  validated_ = true;
  return true;
}

Expected<MlpResult> CycleTimeSession::minimize() {
  MlpOptions opts = options_;
  opts.basis_hint = basis_;
  opts.assume_valid = ensure_valid();  // false -> engine re-validates and reports
  ++counters_.lp_solves;
  Expected<MlpResult> res = minimize_cycle_time(circuit_, opts);
  if (res) {
    if (res->lp_stats.warm_started) ++counters_.warm_lp_starts;
    if (res->lp_stats.warm_rejected) ++counters_.lp_fallbacks;
    basis_ = res->basis;
    last_tc_ = res->min_cycle;
  }
  return res;
}

Expected<GraphSolveResult> CycleTimeSession::minimize_graph() {
  GraphSolveOptions opts;
  opts.generator = options_.generator;
  opts.tc_hint = last_tc_;
  opts.assume_valid = ensure_valid();
  ++counters_.graph_solves;
  if (opts.tc_hint > 0.0) ++counters_.warm_brackets;
  Expected<GraphSolveResult> res = minimize_cycle_time_graph(circuit_, opts);
  if (res) last_tc_ = res->min_cycle;
  return res;
}

Expected<SensitivityReport> CycleTimeSession::sensitivities() {
  if (!ensure_valid()) {
    return make_error(ErrorKind::kInvalidCircuit,
                      "circuit '" + circuit_.name() + "' failed validation");
  }
  const GeneratedLp gen = generate_lp(circuit_, options_.generator);
  ++counters_.lp_solves;
  const lp::Solution sol =
      lp::SimplexSolver(options_.lp).solve(gen.model, basis_.empty() ? nullptr : &basis_);
  if (sol.stats.warm_started) ++counters_.warm_lp_starts;
  if (sol.stats.warm_rejected) ++counters_.lp_fallbacks;
  if (sol.status != lp::SolveStatus::kOptimal) {
    return make_error(sol.status == lp::SolveStatus::kInfeasible ? ErrorKind::kInfeasible
                                                                 : ErrorKind::kNotConverged,
                      "P2 did not solve to optimality for sensitivities");
  }
  basis_ = sol.basis;
  last_tc_ = sol.objective;
  SensitivityReport report;
  report.min_cycle = sol.objective;
  report.dtc_ddelay.assign(static_cast<size_t>(circuit_.num_paths()), 0.0);
  for (int p = 0; p < circuit_.num_paths(); ++p) {
    const int row = gen.delay_row_of_path[static_cast<size_t>(p)];
    if (row < 0) continue;
    const double dual = sol.duals[static_cast<size_t>(row)];
    // L2R rows carry +Δ on a >= RHS (dual = slope directly); FF setup rows
    // carry -Δ on a <= RHS (slope = -dual).
    const bool ff_row = !circuit_.element(circuit_.path(p).to).is_latch();
    report.dtc_ddelay[static_cast<size_t>(p)] = ff_row ? -dual : dual;
  }
  return report;
}

}  // namespace mintc::opt
