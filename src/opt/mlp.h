// Algorithm MLP — Optimal Cycle Time Calculation by Modified LP
// (paper Section IV).
//
//   1. Build and solve the relaxed linear program P2 (constraints.h).
//   2. Hold the clock variables at their optimal values and iterate the
//      nonlinear propagation equalities L2 (eq. 17) on the departure times
//      until they reach a fixpoint ("sliding" departures toward the origin).
//
// By Theorem 1, the resulting Tc equals the optimum of the nonlinear problem
// P1; the fixpoint step only restores the max-equalities that the relaxation
// dropped. The returned solution satisfies P1 exactly (satisfies_p1() checks
// this and is exercised by the property tests).
#pragma once

#include <string>
#include <vector>

#include "base/error.h"
#include "lp/simplex.h"
#include "model/circuit.h"
#include "opt/constraints.h"
#include "sta/fixpoint.h"

namespace mintc::opt {

struct MlpOptions {
  GeneratorOptions generator;
  lp::SimplexSolver::Options lp;
  sta::FixpointOptions fixpoint;
  /// Slack/dual threshold below which a row is reported as critical.
  double critical_eps = 1e-6;
  /// Warm start: a basis from a previous MlpResult on a same-shaped circuit
  /// (same elements/paths, perturbed delays). Defective hints fall back to
  /// the ordinary two-phase solve; see lp::SimplexSolver::solve.
  std::vector<int> basis_hint;
  /// Skip Circuit::validate() — for session loops that mutate an
  /// already-validated circuit only through invariant-preserving setters.
  bool assume_valid = false;
};

/// A constraint that is tight at the optimum. The duals quantify the
/// sensitivity dTc*/d(rhs) — the paper's "critical combinational delay
/// segments" are the L2R rows appearing here.
struct TightConstraint {
  std::string name;
  double slack = 0.0;
  double dual = 0.0;
};

struct MlpResult {
  double min_cycle = 0.0;           // Tc* (optimal value of P1 == P2)
  ClockSchedule schedule;           // optimal clock schedule
  std::vector<double> lp_departure; // D_i straight out of the LP (step 1)
  std::vector<double> departure;    // D_i after the fixpoint (steps 3-5)
  int fixpoint_sweeps = 0;          // iterations of steps 3-5
  int fixpoint_updates = 0;
  lp::SolveStats lp_stats;
  ConstraintCounts counts;
  std::vector<TightConstraint> critical;
  /// Optimal simplex basis — feed back via MlpOptions::basis_hint to warm
  /// the next solve after a delay perturbation.
  std::vector<int> basis;
  /// Per-stage accounting: the slide fixpoint's stats plus an "lp-solve"
  /// stage for the simplex step.
  EngineStats stats;
};

/// Run Algorithm MLP on the circuit. Fails with:
///   kInvalidCircuit — Circuit::validate() found problems;
///   kInfeasible     — the constraint system has no solution;
///   kUnbounded      — indicates a modeling bug (P2 always has Tc >= 0);
///   kNotConverged   — iteration limits hit.
Expected<MlpResult> minimize_cycle_time(const Circuit& circuit, const MlpOptions& options = {});

/// True if (schedule, departure) satisfies the constraints of the original
/// nonlinear problem P1: clock constraints, setup constraints, and the
/// propagation *equalities* L2 (not just the relaxed >=).
bool satisfies_p1(const Circuit& circuit, const ClockSchedule& schedule,
                  const std::vector<double>& departure, double eps = 1e-6);

/// Secondary objectives for selecting among the (generally non-unique)
/// optimal schedules. The paper, discussing example 1: "the optimal
/// solution will not be unique ... Additional requirements, such as minimum
/// duty cycle, may be applied to select one of these different solutions."
enum class SecondaryObjective {
  kMinTotalWidth,   // minimum duty cycle: minimize sum of T_i
  kMaxTotalWidth,   // maximum margin: maximize sum of T_i
  kMinPhaseStarts,  // pack phases early: minimize sum of s_i
  kMaxPhaseStarts,  // pack phases late:  maximize sum of s_i
};

const char* to_string(SecondaryObjective objective);

/// Re-optimize with the cycle time pinned to `cycle_time` (typically the
/// Tc* from minimize_cycle_time) and the secondary objective above; returns
/// a refined optimal solution. For the GaAs example this is what reproduces
/// the published schedule shape (phi3 completely overlapped by phi1): the
/// minimum-duty-cycle refinement pushes the precharge phase against the
/// cycle boundary.
Expected<MlpResult> refine_schedule(const Circuit& circuit, double cycle_time,
                                    SecondaryObjective objective,
                                    const MlpOptions& options = {});

}  // namespace mintc::opt
