#include "opt/mlp.h"

#include <cmath>
#include <sstream>

#include "base/approx.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mintc::opt {

namespace {

// Shared back half of minimize_cycle_time / refine_schedule: solve the
// prepared LP, then run steps 2-5 of Algorithm MLP.
Expected<MlpResult> solve_and_slide(const Circuit& circuit, GeneratedLp gen,
                                    const MlpOptions& options);

Error validation_error(const Circuit& circuit, const std::vector<std::string>& problems) {
  std::ostringstream msg;
  msg << "circuit '" << circuit.name() << "' failed validation:";
  for (const std::string& p : problems) msg << "\n  " << p;
  return make_error(ErrorKind::kInvalidCircuit, msg.str());
}

}  // namespace

Expected<MlpResult> minimize_cycle_time(const Circuit& circuit, const MlpOptions& options) {
  // Structural validation first: the LP would happily "solve" nonsense.
  if (!options.assume_valid) {
    const std::vector<std::string> problems = circuit.validate();
    if (!problems.empty()) return validation_error(circuit, problems);
  }
  return solve_and_slide(circuit, generate_lp(circuit, options.generator), options);
}

const char* to_string(SecondaryObjective objective) {
  switch (objective) {
    case SecondaryObjective::kMinTotalWidth: return "min-total-width";
    case SecondaryObjective::kMaxTotalWidth: return "max-total-width";
    case SecondaryObjective::kMinPhaseStarts: return "min-phase-starts";
    case SecondaryObjective::kMaxPhaseStarts: return "max-phase-starts";
  }
  return "?";
}

Expected<MlpResult> refine_schedule(const Circuit& circuit, double cycle_time,
                                    SecondaryObjective objective, const MlpOptions& options) {
  if (!options.assume_valid) {
    const std::vector<std::string> problems = circuit.validate();
    if (!problems.empty()) return validation_error(circuit, problems);
  }
  GeneratedLp gen = generate_lp(circuit, options.generator);
  // Pin the cycle time and swap in the secondary objective.
  gen.model.add_row("REFINE:Tc", {{gen.vars.tc, 1.0}}, lp::Sense::kEq, cycle_time);
  gen.model.set_objective(gen.vars.tc, 0.0);
  const bool on_widths = objective == SecondaryObjective::kMinTotalWidth ||
                         objective == SecondaryObjective::kMaxTotalWidth;
  const bool maximize = objective == SecondaryObjective::kMaxTotalWidth ||
                        objective == SecondaryObjective::kMaxPhaseStarts;
  for (const int v : on_widths ? gen.vars.T : gen.vars.s) {
    gen.model.set_objective(v, maximize ? -1.0 : 1.0);
  }
  Expected<MlpResult> result = solve_and_slide(circuit, std::move(gen), options);
  if (result) result->min_cycle = cycle_time;  // objective is the secondary one
  return result;
}

namespace {

Expected<MlpResult> solve_and_slide(const Circuit& circuit, GeneratedLp gen,
                                    const MlpOptions& options) {
  const StageTimer wall_timer;  // whole-algorithm wall clock (single accounting path)
  const obs::TraceSpan span("mlp.solve", "opt");
  const StageTimer lp_timer;
  const lp::SimplexSolver solver(options.lp);
  lp::Solution sol;
  {
    const obs::TraceSpan lp_span("mlp.lp-solve", "opt");
    sol = solver.solve(gen.model,
                       options.basis_hint.empty() ? nullptr : &options.basis_hint);
  }
  const double lp_seconds = lp_timer.seconds();
  switch (sol.status) {
    case lp::SolveStatus::kOptimal:
      break;
    case lp::SolveStatus::kInfeasible:
      return make_error(ErrorKind::kInfeasible,
                        "timing constraints of '" + circuit.name() + "' are infeasible");
    case lp::SolveStatus::kUnbounded:
      return make_error(ErrorKind::kUnbounded,
                        "P2 unbounded for '" + circuit.name() + "' (modeling bug)");
    case lp::SolveStatus::kIterLimit:
      return make_error(ErrorKind::kNotConverged, "simplex hit its iteration limit");
  }

  MlpResult res;
  res.lp_stats = sol.stats;
  res.basis = sol.basis;
  res.counts = gen.counts;
  res.min_cycle = snap_zero(sol.objective);
  res.schedule = schedule_from_solution(gen.vars, sol.x);
  res.lp_departure = departures_from_solution(gen.vars, sol.x);
  // Clean tiny negative noise out of the LP point before iterating.
  for (double& d : res.lp_departure) d = std::max(0.0, snap_zero(d));
  res.schedule.cycle = snap_zero(res.schedule.cycle);
  for (double& x : res.schedule.start) x = std::max(0.0, snap_zero(x));
  for (double& x : res.schedule.width) x = std::max(0.0, snap_zero(x));

  // Steps 2-5: slide the departures down to the L2 fixpoint with the clock
  // held at the LP optimum.
  sta::FixpointResult fix;
  {
    const obs::TraceSpan slide_span("mlp.slide-fixpoint", "opt");
    fix = sta::compute_departures(circuit, res.schedule, res.lp_departure, options.fixpoint);
  }
  if (!fix.converged) {
    std::string why = fix.hit_sweep_limit()
                          ? "hit the sweep budget (residual " + std::to_string(fix.residual) +
                                "; raise FixpointOptions::max_sweeps)"
                          : "diverged";
    return make_error(ErrorKind::kNotConverged,
                      "departure fixpoint " + why +
                          " (this should be impossible for an "
                          "LP-feasible schedule; please report)");
  }
  res.departure = fix.departure;
  res.fixpoint_sweeps = fix.sweeps;
  res.fixpoint_updates = fix.updates;
  res.stats = fix.stats;
  res.stats.add_stage("lp-solve", lp_seconds);

  // Critical constraints: tight rows with non-zero duals.
  const StageTimer scan_timer;
  {
    const obs::TraceSpan scan_span("mlp.critical-scan", "opt");
    for (int r = 0; r < gen.model.num_rows(); ++r) {
      const double slack = sol.row_slack(gen.model, r);
      const double dual = sol.duals[static_cast<size_t>(r)];
      if (std::fabs(slack) <= options.critical_eps && std::fabs(dual) > options.critical_eps) {
        res.critical.push_back({gen.model.row(r).name, slack, dual});
      }
    }
  }
  res.stats.add_stage("critical-scan", scan_timer.seconds());
  // The inner fixpoint stamped its own (smaller) wall; this solve's wall is
  // the whole lp + slide + scan span.
  res.stats.wall_seconds = wall_timer.seconds();
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("mlp.solves").inc();
  reg.counter("mlp.critical_constraints").inc(static_cast<long>(res.critical.size()));
  return res;
}

}  // namespace

bool satisfies_p1(const Circuit& circuit, const ClockSchedule& schedule,
                  const std::vector<double>& departure, double eps) {
  // Clock constraints C1-C4 (+C3 for the circuit's K matrix).
  if (!check_clock_constraints(schedule, circuit.k_matrix(), eps).empty()) return false;

  const TimingView view(circuit);
  const ShiftTable shifts(schedule);
  for (int i = 0; i < view.num_elements(); ++i) {
    const double d = departure[static_cast<size_t>(i)];
    // L3.
    if (definitely_lt(d, 0.0, eps)) return false;
    if (view.is_latch(i)) {
      // L1 (eq. 16), with the capture margin setup + σ_i (fused in the view).
      if (definitely_gt(d + view.setup_margin(i), shifts.width(view.phase(i)), eps)) {
        return false;
      }
      // L2 as an equality (eq. 17).
      const double expect = mintc::departure_update(view, shifts, departure, i);
      if (!approx_eq(d, expect, eps)) return false;
    } else {
      // Flip-flop: pinned departure and leading-edge setup; the arrival on
      // every fan-in edge must precede the leading edge by the setup time.
      if (!approx_eq(d, 0.0, eps)) return false;
      const double a = arrival_update(view, shifts, departure, i);
      if (view.fanin_count(i) > 0 && definitely_gt(a, -view.setup_margin(i), eps)) return false;
    }
  }
  return true;
}

}  // namespace mintc::opt
