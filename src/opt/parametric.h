// Circuit-level parametric delay sweeps.
//
// Varying one combinational delay Δ_ij only moves the RHS of its L2R row,
// so Tc*(Δ_ij) is piecewise-linear; this module regenerates curves like the
// paper's Fig. 7 (Tc versus Δ41) and reports the recovered linear segments
// (slope 0 / ½ / 1 in the paper's example 1).
#pragma once

#include "lp/parametric.h"
#include "model/circuit.h"
#include "opt/constraints.h"

namespace mintc::opt {

/// Sweep the worst-case delay of path `path_index` over [lo, hi] with
/// `samples` uniform points, solving P2 at each. Theorem 1 makes the LP
/// optimum equal to the P1 optimum, so no fixpoint step is needed for the
/// curve itself.
lp::ParametricResult sweep_path_delay(const Circuit& circuit, int path_index, double lo,
                                      double hi, int samples,
                                      const GeneratorOptions& options = {});

/// Skew-tolerance curve: sweep a uniform per-latch clock skew σ over
/// [lo, hi], setting every element's skew to σ and solving P2 at each
/// sample. Skew only moves setup/hold RHS terms and the C3 nonoverlap
/// margin, so Tc*(σ) is piecewise-linear like the delay sweeps and the
/// solves chain warm bases the same way. The curve's knees locate how much
/// clock uncertainty a design absorbs before each constraint family goes
/// critical.
lp::ParametricResult sweep_clock_skew(const Circuit& circuit, double lo, double hi,
                                      int samples, const GeneratorOptions& options = {});

}  // namespace mintc::opt
