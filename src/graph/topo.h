// Topological sort and DAG longest paths (CPM).
//
// The classic critical-path method the paper contrasts against: valid only on
// acyclic constraint graphs. Used by (a) the gate-level delay calculator to
// compute block delays Δ_ij within a combinational stage, and (b) the
// edge-triggered baseline.
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.h"

namespace mintc::graph {

/// Kahn topological order; empty optional if the graph has a cycle.
std::optional<std::vector<int>> topological_order(const Digraph& g);

struct LongestPathResult {
  /// dist[v]: longest weighted distance from any source in `sources` to v,
  /// -inf if unreachable.
  std::vector<double> dist;
  /// Predecessor edge on a longest path, -1 at sources/unreachable nodes.
  std::vector<int> pred_edge;
};

/// Longest paths on a DAG from the given sources (their dist starts at the
/// paired offsets). Returns nullopt if the graph is cyclic.
std::optional<LongestPathResult> dag_longest_paths(const Digraph& g,
                                                   const std::vector<int>& sources,
                                                   const std::vector<double>& source_offsets);

/// Reconstruct the node sequence of the longest path ending at `sink`.
std::vector<int> extract_path(const Digraph& g, const LongestPathResult& lp, int sink);

}  // namespace mintc::graph
