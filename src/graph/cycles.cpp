#include "graph/cycles.h"

#include <cmath>
#include <limits>

namespace mintc::graph {

double SimpleCycle::ratio() const {
  if (transit_sum > 1e-12) return weight_sum / transit_sum;
  return weight_sum > 1e-12 ? std::numeric_limits<double>::infinity()
                            : -std::numeric_limits<double>::infinity();
}

namespace {

// DFS enumeration rooted at `root`: only nodes >= root may participate, so
// each simple cycle is emitted exactly once (from its minimum vertex).
class Enumerator {
 public:
  Enumerator(const Digraph& g, std::vector<SimpleCycle>& out, int max_cycles)
      : g_(g), out_(out), max_cycles_(max_cycles),
        on_path_(static_cast<size_t>(g.num_nodes()), false) {}

  bool run() {
    for (int root = 0; root < g_.num_nodes(); ++root) {
      root_ = root;
      if (!dfs(root)) return false;  // truncated
    }
    return true;
  }

 private:
  bool dfs(int v) {
    on_path_[static_cast<size_t>(v)] = true;
    for (const int e : g_.out_edges(v)) {
      const Edge& edge = g_.edge(e);
      if (edge.to < root_) continue;
      if (edge.to == root_) {
        path_.push_back(e);
        if (static_cast<int>(out_.size()) >= max_cycles_) {
          path_.pop_back();
          on_path_[static_cast<size_t>(v)] = false;
          return false;
        }
        emit();
        path_.pop_back();
        continue;
      }
      if (on_path_[static_cast<size_t>(edge.to)]) continue;
      path_.push_back(e);
      const bool ok = dfs(edge.to);
      path_.pop_back();
      if (!ok) {
        on_path_[static_cast<size_t>(v)] = false;
        return false;
      }
    }
    on_path_[static_cast<size_t>(v)] = false;
    return true;
  }

  void emit() {
    SimpleCycle c;
    c.edges = path_;
    for (const int e : path_) {
      c.weight_sum += g_.edge(e).weight;
      c.transit_sum += g_.edge(e).transit;
    }
    out_.push_back(std::move(c));
  }

  const Digraph& g_;
  std::vector<SimpleCycle>& out_;
  int max_cycles_;
  int root_ = 0;
  std::vector<bool> on_path_;
  std::vector<int> path_;
};

}  // namespace

bool enumerate_simple_cycles(const Digraph& g, std::vector<SimpleCycle>& out, int max_cycles) {
  out.clear();
  Enumerator en(g, out, max_cycles);
  return en.run();
}

}  // namespace mintc::graph
