#include "graph/topo.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace mintc::graph {

std::optional<std::vector<int>> topological_order(const Digraph& g) {
  const int n = g.num_nodes();
  std::vector<int> indegree(static_cast<size_t>(n), 0);
  for (const Edge& e : g.edges()) ++indegree[static_cast<size_t>(e.to)];

  std::vector<int> queue;
  queue.reserve(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) {
    if (indegree[static_cast<size_t>(v)] == 0) queue.push_back(v);
  }
  std::vector<int> order;
  order.reserve(static_cast<size_t>(n));
  for (size_t head = 0; head < queue.size(); ++head) {
    const int v = queue[head];
    order.push_back(v);
    for (const int e : g.out_edges(v)) {
      const int w = g.edge(e).to;
      if (--indegree[static_cast<size_t>(w)] == 0) queue.push_back(w);
    }
  }
  if (static_cast<int>(order.size()) != n) return std::nullopt;
  return order;
}

std::optional<LongestPathResult> dag_longest_paths(const Digraph& g,
                                                   const std::vector<int>& sources,
                                                   const std::vector<double>& source_offsets) {
  assert(sources.size() == source_offsets.size());
  const auto order = topological_order(g);
  if (!order) return std::nullopt;

  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  LongestPathResult res;
  res.dist.assign(static_cast<size_t>(g.num_nodes()), kNegInf);
  res.pred_edge.assign(static_cast<size_t>(g.num_nodes()), -1);
  for (size_t i = 0; i < sources.size(); ++i) {
    const size_t v = static_cast<size_t>(sources[i]);
    res.dist[v] = std::max(res.dist[v], source_offsets[i]);
  }
  for (const int v : *order) {
    const double dv = res.dist[static_cast<size_t>(v)];
    if (dv == kNegInf) continue;
    for (const int e : g.out_edges(v)) {
      const Edge& edge = g.edge(e);
      const double cand = dv + edge.weight;
      if (cand > res.dist[static_cast<size_t>(edge.to)]) {
        res.dist[static_cast<size_t>(edge.to)] = cand;
        res.pred_edge[static_cast<size_t>(edge.to)] = e;
      }
    }
  }
  return res;
}

std::vector<int> extract_path(const Digraph& g, const LongestPathResult& lp, int sink) {
  std::vector<int> nodes;
  int v = sink;
  nodes.push_back(v);
  while (lp.pred_edge[static_cast<size_t>(v)] != -1) {
    const Edge& e = g.edge(lp.pred_edge[static_cast<size_t>(v)]);
    v = e.from;
    nodes.push_back(v);
  }
  std::reverse(nodes.begin(), nodes.end());
  return nodes;
}

}  // namespace mintc::graph
