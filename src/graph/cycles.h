// Simple-cycle enumeration (bounded).
//
// Used for the loop inventory of latch circuits (opt/critical.h) and as an
// exact brute-force cross-check of the cycle-ratio algorithms in tests:
// for small graphs the maximum ratio over *enumerated* cycles must equal
// what Lawler/Howard compute.
#pragma once

#include <vector>

#include "graph/digraph.h"

namespace mintc::graph {

/// One simple cycle as a sequence of edge ids (head-to-tail, closing back
/// on the first edge's source).
struct SimpleCycle {
  std::vector<int> edges;
  double weight_sum = 0.0;
  double transit_sum = 0.0;

  /// weight/transit; +inf when transit is 0 and weight positive.
  double ratio() const;
};

/// Enumerate up to `max_cycles` simple cycles (Johnson-style DFS with a
/// root-vertex ordering so each cycle is reported exactly once). Returns
/// true if the enumeration was complete, false if it was truncated at the
/// limit.
bool enumerate_simple_cycles(const Digraph& g, std::vector<SimpleCycle>& out,
                             int max_cycles = 10000);

}  // namespace mintc::graph
