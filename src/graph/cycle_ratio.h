// Maximum cycle ratio:  λ* = max over directed cycles C of
//     Σ_{e in C} weight(e)  /  Σ_{e in C} transit(e),
// over cycles with positive total transit.
//
// Role in the reproduction: for a latch graph with edge weight
// Δ_DQj + Δ_ji and transit C_{pj,pi} (cycle-boundary crossings), λ* is a
// lower bound on the optimal cycle time of problem P1/P2 — the LP optimum can
// exceed it only when setup constraints bind. Tests use this as an
// independent certificate for the MLP result (the LP and the cycle-ratio
// computation share no code), and bench_ablation_cycle_ratio compares the
// two solvers' costs.
//
// Two algorithms are provided:
//   * Lawler's parametric binary search (feasibility check = positive-cycle
//     detection on reweighted edges via Bellman-Ford), robust and simple;
//   * Howard-style policy iteration, typically much faster in practice.
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.h"

namespace mintc::graph {

struct CycleRatioResult {
  double ratio = 0.0;
  /// Edge ids of one critical cycle achieving the ratio (may be empty for
  /// the binary-search method when only the value was requested).
  std::vector<int> cycle_edges;
};

/// Lawler binary search. Requires every cycle to have total transit > 0
/// (guaranteed for latch graphs: a cycle must cross the clock period at
/// least once). Returns nullopt if the graph is acyclic.
std::optional<CycleRatioResult> max_cycle_ratio_lawler(const Digraph& g, double tol = 1e-9);

/// Howard-style policy iteration; also recovers a critical cycle.
/// Returns nullopt if the graph is acyclic.
std::optional<CycleRatioResult> max_cycle_ratio_howard(const Digraph& g, double tol = 1e-9);

}  // namespace mintc::graph
