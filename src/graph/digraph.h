// A small weighted directed multigraph.
//
// Used for: the latch-to-latch connectivity graph (SCC analysis, cycle-ratio
// bounds), the gate-level netlist DAGs (per-stage longest paths in the delay
// calculator), and the CPM baseline.
#pragma once

#include <cstddef>
#include <vector>

namespace mintc::graph {

/// An edge with two weights: `weight` (e.g. propagation delay) and `transit`
/// (e.g. number of clock-cycle boundaries crossed; used by cycle-ratio).
struct Edge {
  int from = 0;
  int to = 0;
  double weight = 0.0;
  double transit = 0.0;
  int tag = -1;  // caller-defined id (e.g. CombPath index)
};

class Digraph {
 public:
  explicit Digraph(int num_nodes = 0);

  int add_node();
  /// Add an edge; parallel edges and self-loops are allowed. Returns edge id.
  int add_edge(int from, int to, double weight = 0.0, double transit = 0.0, int tag = -1);

  int num_nodes() const { return num_nodes_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  const Edge& edge(int e) const { return edges_.at(static_cast<size_t>(e)); }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Edge ids leaving `node`.
  const std::vector<int>& out_edges(int node) const {
    return out_.at(static_cast<size_t>(node));
  }
  /// Edge ids entering `node`.
  const std::vector<int>& in_edges(int node) const { return in_.at(static_cast<size_t>(node)); }

 private:
  int num_nodes_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> out_;
  std::vector<std::vector<int>> in_;
};

}  // namespace mintc::graph
