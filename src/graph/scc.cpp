#include "graph/scc.h"

#include <algorithm>

namespace mintc::graph {

SccResult strongly_connected_components(const Digraph& g) {
  const int n = g.num_nodes();
  SccResult res;
  res.component.assign(static_cast<size_t>(n), -1);

  std::vector<int> index(static_cast<size_t>(n), -1);
  std::vector<int> lowlink(static_cast<size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<size_t>(n), false);
  std::vector<int> stack;
  int next_index = 0;

  // Iterative Tarjan: frame = (node, position in out-edge list).
  struct Frame {
    int node;
    size_t edge_pos;
  };
  std::vector<Frame> call_stack;

  for (int start = 0; start < n; ++start) {
    if (index[static_cast<size_t>(start)] != -1) continue;
    call_stack.push_back({start, 0});
    index[static_cast<size_t>(start)] = lowlink[static_cast<size_t>(start)] = next_index++;
    stack.push_back(start);
    on_stack[static_cast<size_t>(start)] = true;

    while (!call_stack.empty()) {
      Frame& f = call_stack.back();
      const auto& outs = g.out_edges(f.node);
      if (f.edge_pos < outs.size()) {
        const int w = g.edge(outs[f.edge_pos]).to;
        ++f.edge_pos;
        if (index[static_cast<size_t>(w)] == -1) {
          index[static_cast<size_t>(w)] = lowlink[static_cast<size_t>(w)] = next_index++;
          stack.push_back(w);
          on_stack[static_cast<size_t>(w)] = true;
          call_stack.push_back({w, 0});
        } else if (on_stack[static_cast<size_t>(w)]) {
          lowlink[static_cast<size_t>(f.node)] =
              std::min(lowlink[static_cast<size_t>(f.node)], index[static_cast<size_t>(w)]);
        }
      } else {
        const int v = f.node;
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const int parent = call_stack.back().node;
          lowlink[static_cast<size_t>(parent)] =
              std::min(lowlink[static_cast<size_t>(parent)], lowlink[static_cast<size_t>(v)]);
        }
        if (lowlink[static_cast<size_t>(v)] == index[static_cast<size_t>(v)]) {
          std::vector<int> comp;
          while (true) {
            const int w = stack.back();
            stack.pop_back();
            on_stack[static_cast<size_t>(w)] = false;
            res.component[static_cast<size_t>(w)] = res.num_components;
            comp.push_back(w);
            if (w == v) break;
          }
          res.members.push_back(std::move(comp));
          ++res.num_components;
        }
      }
    }
  }

  res.nontrivial.assign(static_cast<size_t>(res.num_components), false);
  for (int c = 0; c < res.num_components; ++c) {
    if (res.members[static_cast<size_t>(c)].size() > 1) {
      res.nontrivial[static_cast<size_t>(c)] = true;
    }
  }
  for (const Edge& e : g.edges()) {
    if (e.from == e.to) {
      res.nontrivial[static_cast<size_t>(res.component[static_cast<size_t>(e.from)])] = true;
    }
  }
  return res;
}

bool has_cycle(const Digraph& g) {
  const SccResult scc = strongly_connected_components(g);
  return std::any_of(scc.nontrivial.begin(), scc.nontrivial.end(), [](bool b) { return b; });
}

}  // namespace mintc::graph
