// Strongly connected components (Tarjan, iterative).
//
// LEADOUT (Szymanski, Section II of the paper) partitions the circuit into
// its strongly connected components before constraint generation; we use SCCs
// to find feedback loops of latches for structural validation and to restrict
// cycle-ratio computation to nontrivial components.
#pragma once

#include <vector>

#include "graph/digraph.h"

namespace mintc::graph {

struct SccResult {
  /// component index of every node; components are numbered in reverse
  /// topological order (Tarjan's emission order).
  std::vector<int> component;
  int num_components = 0;

  /// Nodes of each component.
  std::vector<std::vector<int>> members;

  /// True if the component has more than one node or a self-loop — i.e.,
  /// participates in at least one cycle.
  std::vector<bool> nontrivial;
};

SccResult strongly_connected_components(const Digraph& g);

/// True if the graph contains at least one directed cycle.
bool has_cycle(const Digraph& g);

}  // namespace mintc::graph
