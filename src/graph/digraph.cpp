#include "graph/digraph.h"

#include <cassert>

namespace mintc::graph {

Digraph::Digraph(int num_nodes) : num_nodes_(num_nodes) {
  out_.resize(static_cast<size_t>(num_nodes));
  in_.resize(static_cast<size_t>(num_nodes));
}

int Digraph::add_node() {
  out_.emplace_back();
  in_.emplace_back();
  return num_nodes_++;
}

int Digraph::add_edge(int from, int to, double weight, double transit, int tag) {
  assert(from >= 0 && from < num_nodes_ && to >= 0 && to < num_nodes_);
  const int id = static_cast<int>(edges_.size());
  edges_.push_back(Edge{from, to, weight, transit, tag});
  out_[static_cast<size_t>(from)].push_back(id);
  in_[static_cast<size_t>(to)].push_back(id);
  return id;
}

}  // namespace mintc::graph
