#include "graph/cycle_ratio.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "graph/scc.h"

namespace mintc::graph {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Is there a cycle with positive total (weight - lambda*transit)?
// Longest-path Bellman-Ford from a virtual super-source (all dist = 0);
// improvement on the n-th pass exposes a positive cycle.
bool has_positive_cycle(const Digraph& g, double lambda, double tol) {
  const int n = g.num_nodes();
  if (n == 0) return false;
  std::vector<double> dist(static_cast<size_t>(n), 0.0);
  for (int pass = 0; pass < n; ++pass) {
    bool improved = false;
    for (const Edge& e : g.edges()) {
      const double w = e.weight - lambda * e.transit;
      const double cand = dist[static_cast<size_t>(e.from)] + w;
      if (cand > dist[static_cast<size_t>(e.to)] + tol) {
        dist[static_cast<size_t>(e.to)] = cand;
        improved = true;
      }
    }
    if (!improved) return false;
  }
  return true;
}

}  // namespace

std::optional<CycleRatioResult> max_cycle_ratio_lawler(const Digraph& g, double tol) {
  if (!has_cycle(g)) return std::nullopt;

  double abs_w_sum = 1.0;
  for (const Edge& e : g.edges()) abs_w_sum += std::fabs(e.weight);
  double lo = -abs_w_sum;
  double hi = abs_w_sum;

  // Defensive: if a positive cycle survives at the upper bound, the ratio is
  // unbounded (a cycle with zero transit and positive weight).
  if (has_positive_cycle(g, hi, tol)) {
    CycleRatioResult res;
    res.ratio = std::numeric_limits<double>::infinity();
    return res;
  }

  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    if (has_positive_cycle(g, mid, tol * 1e-3)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  CycleRatioResult res;
  res.ratio = 0.5 * (lo + hi);
  return res;
}

std::optional<CycleRatioResult> max_cycle_ratio_howard(const Digraph& g, double tol) {
  const int n = g.num_nodes();
  if (n == 0 || !has_cycle(g)) return std::nullopt;

  // policy[u]: chosen out-edge id, or -1 for dead ends.
  std::vector<int> policy(static_cast<size_t>(n), -1);
  for (int u = 0; u < n; ++u) {
    const auto& outs = g.out_edges(u);
    if (!outs.empty()) policy[static_cast<size_t>(u)] = outs.front();
  }

  std::vector<double> lambda(static_cast<size_t>(n), kNegInf);
  std::vector<double> value(static_cast<size_t>(n), 0.0);
  std::vector<int> cycle_entry(static_cast<size_t>(n), -1);  // anchor node of reached cycle

  const auto succ = [&](int u) -> int {
    const int e = policy[static_cast<size_t>(u)];
    return e < 0 ? -1 : g.edge(e).to;
  };

  const auto evaluate = [&]() {
    std::fill(lambda.begin(), lambda.end(), kNegInf);
    std::fill(value.begin(), value.end(), 0.0);
    std::fill(cycle_entry.begin(), cycle_entry.end(), -1);
    std::vector<int> state(static_cast<size_t>(n), 0);  // 0=unseen 1=on current walk 2=done
    std::vector<int> walk;
    for (int start = 0; start < n; ++start) {
      if (state[static_cast<size_t>(start)] != 0) continue;
      walk.clear();
      int u = start;
      while (u >= 0 && state[static_cast<size_t>(u)] == 0) {
        state[static_cast<size_t>(u)] = 1;
        walk.push_back(u);
        u = succ(u);
      }
      if (u >= 0 && state[static_cast<size_t>(u)] == 1) {
        // Found a new cycle: nodes from `u` to the end of `walk`.
        const auto it = std::find(walk.begin(), walk.end(), u);
        double wsum = 0.0;
        double tsum = 0.0;
        for (auto p = it; p != walk.end(); ++p) {
          const Edge& e = g.edge(policy[static_cast<size_t>(*p)]);
          wsum += e.weight;
          tsum += e.transit;
        }
        double lam;
        if (tsum > tol) {
          lam = wsum / tsum;
        } else {
          lam = wsum > tol ? std::numeric_limits<double>::infinity() : kNegInf;
        }
        // Anchor value at `u`, propagate backwards around the cycle.
        lambda[static_cast<size_t>(u)] = lam;
        value[static_cast<size_t>(u)] = 0.0;
        cycle_entry[static_cast<size_t>(u)] = u;
        for (auto p = walk.end() - 1; *p != u; --p) {
          const Edge& e = g.edge(policy[static_cast<size_t>(*p)]);
          lambda[static_cast<size_t>(*p)] = lam;
          cycle_entry[static_cast<size_t>(*p)] = u;
          value[static_cast<size_t>(*p)] =
              e.weight - lam * e.transit + value[static_cast<size_t>(e.to)];
        }
      }
      // Resolve remaining walk nodes (tree part, or chain into a dead end /
      // previously resolved node).
      for (auto p = walk.rbegin(); p != walk.rend(); ++p) {
        const int v = *p;
        if (state[static_cast<size_t>(v)] == 2) continue;
        if (lambda[static_cast<size_t>(v)] == kNegInf) {
          const int s = succ(v);
          if (s >= 0 && lambda[static_cast<size_t>(s)] != kNegInf &&
              std::isfinite(lambda[static_cast<size_t>(s)])) {
            const Edge& e = g.edge(policy[static_cast<size_t>(v)]);
            const double lam = lambda[static_cast<size_t>(s)];
            lambda[static_cast<size_t>(v)] = lam;
            cycle_entry[static_cast<size_t>(v)] = cycle_entry[static_cast<size_t>(s)];
            value[static_cast<size_t>(v)] =
                e.weight - lam * e.transit + value[static_cast<size_t>(s)];
          }
        }
        state[static_cast<size_t>(v)] = 2;
      }
    }
  };

  const int max_iters = 10 * n * std::max(1, g.num_edges());
  int iters = 0;
  evaluate();
  while (iters++ < max_iters) {
    bool changed = false;
    for (const Edge& e : g.edges()) {
      const size_t u = static_cast<size_t>(e.from);
      const size_t x = static_cast<size_t>(e.to);
      if (lambda[x] == kNegInf) continue;
      if (lambda[x] > lambda[u] + tol) {
        policy[u] = static_cast<int>(&e - g.edges().data());
        changed = true;
      } else if (std::fabs(lambda[x] - lambda[u]) <= tol && std::isfinite(lambda[u])) {
        const double cand = e.weight - lambda[u] * e.transit + value[x];
        if (cand > value[u] + tol) {
          policy[u] = static_cast<int>(&e - g.edges().data());
          changed = true;
        }
      }
    }
    if (!changed) break;
    evaluate();
  }

  // Best cycle: max lambda over nodes; extract its edges by walking policy.
  int best = -1;
  for (int u = 0; u < n; ++u) {
    if (lambda[static_cast<size_t>(u)] == kNegInf) continue;
    if (best < 0 || lambda[static_cast<size_t>(u)] > lambda[static_cast<size_t>(best)]) best = u;
  }
  if (best < 0) return std::nullopt;

  CycleRatioResult res;
  res.ratio = lambda[static_cast<size_t>(best)];
  // Walk to the cycle, then once around it.
  std::vector<bool> seen(static_cast<size_t>(n), false);
  int u = best;
  while (!seen[static_cast<size_t>(u)]) {
    seen[static_cast<size_t>(u)] = true;
    u = succ(u);
    assert(u >= 0);
  }
  const int anchor = u;
  do {
    const int e = policy[static_cast<size_t>(u)];
    res.cycle_edges.push_back(e);
    u = g.edge(e).to;
  } while (u != anchor);
  return res;
}

}  // namespace mintc::graph
