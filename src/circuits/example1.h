// Example 1 (paper Fig. 5): a two-stage system connected in a loop,
// controlled by a two-phase clock.
//
//   L1(phi1) --La(20)--> L2(phi2) --Lb(20)--> L3(phi1) --Lc(60)--> L4(phi2)
//      ^                                                             |
//      +------------------------- Ld(delta41) -----------------------+
//
// All four latches have setup = propagation = 10 ns. The delay of block Ld
// (Δ41) is the experiment's sweep parameter. Published optima:
//   Δ41 =  80 ns -> Tc* = 110 ns
//   Δ41 = 100 ns -> Tc* = 120 ns
//   Δ41 = 120 ns -> Tc* = 140 ns (departures 60/90/140/210 in absolute time)
// and in closed form Tc* = max(80, (140+Δ41)/2, 20+Δ41): the maximum of the
// average delay around the loop and the difference between the delays of
// the two cycles making up the loop (paper, discussion of Fig. 7).
#pragma once

#include "model/circuit.h"

namespace mintc::circuits {

/// Build example 1 with the given Δ41 (ns).
Circuit example1(double delta41 = 80.0);

/// Path index of block Ld within example1(), for parametric sweeps.
int example1_ld_path();

/// The paper's closed-form optimum for example 1.
double example1_optimal_tc(double delta41);

}  // namespace mintc::circuits
