#include "circuits/example2.h"

namespace mintc::circuits {

Circuit example2() {
  Circuit c("example2", 3);
  const double su = 2.0;
  const double dq = 3.0;

  // Main loop (phi1 -> phi2 -> phi3 -> phi1) with one long stage.
  c.add_latch("P1", 1, su, dq);
  c.add_latch("P2", 2, su, dq);
  c.add_latch("P3", 3, su, dq);
  // Side loop sharing the phi2 stage.
  c.add_latch("Q1", 1, su, dq);
  c.add_latch("Q2", 2, su, dq);
  c.add_latch("Q3", 3, su, dq);
  // Feed-forward pipeline hanging off the main loop.
  c.add_latch("R2", 2, su, dq);
  c.add_latch("R3", 3, su, dq);

  c.add_path("P1", "P2", 58.0, 0.0, "M12");  // long, unbalanced stage
  c.add_path("P2", "P3", 1.5, 0.0, "M23");
  c.add_path("P3", "P1", 1.5, 0.0, "M31");

  c.add_path("Q1", "Q2", 46.0, 0.0, "S12");
  c.add_path("Q2", "Q3", 1.5, 0.0, "S23");
  c.add_path("Q3", "Q1", 1.5, 0.0, "S31");

  // Coupling between the loops.
  c.add_path("P2", "Q3", 8.0, 0.0, "X23");
  c.add_path("Q2", "P3", 7.0, 0.0, "X23b");

  // Feed-forward taps.
  c.add_path("P1", "R2", 40.0, 0.0, "F12");
  c.add_path("R2", "R3", 12.0, 0.0, "F23");
  c.add_path("R3", "P1", 1.5, 0.0, "F31");

  return c;
}

}  // namespace mintc::circuits
