// Deterministic synthetic circuit generator for scaling and property tests.
//
// Generates multi-phase latch pipelines with feedback: latches are placed in
// a ring of stages (stage s -> phase (s mod k) + 1), consecutive stages are
// densely connected, and extra long-range edges add loops of varying spans.
// All delays are drawn from a seeded PRNG, so a (params, seed) pair always
// produces the same circuit. Because consecutive-stage edges step the phase
// by exactly one, the circuit is always structurally valid and its LP is
// always feasible.
//
// Used by: bench_scaling_constraints (the paper's Section IV claim that the
// constraint count is 4k + (F+1)l and simplex cost grows linearly in l),
// bench_ablation_iteration, and the randomized property tests.
#pragma once

#include <cstdint>

#include "model/circuit.h"

namespace mintc::circuits {

struct SyntheticParams {
  int num_phases = 2;
  int num_stages = 8;           // ring length (wraps around -> feedback)
  int latches_per_stage = 4;
  int fanin = 3;                // edges into each latch from previous stage
  double min_delay = 5.0;
  double max_delay = 50.0;
  double setup = 2.0;
  double dq = 3.0;
  int extra_long_edges = 4;     // random cross-stage (forward) edges
};

Circuit synthetic_circuit(const SyntheticParams& params, uint64_t seed);

}  // namespace mintc::circuits
