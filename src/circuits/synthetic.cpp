#include "circuits/synthetic.h"

#include <algorithm>
#include <random>
#include <set>
#include <string>

namespace mintc::circuits {

Circuit synthetic_circuit(const SyntheticParams& p, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> delay(p.min_delay, p.max_delay);

  Circuit c("synthetic_k" + std::to_string(p.num_phases) + "_s" + std::to_string(p.num_stages) +
                "_l" + std::to_string(p.latches_per_stage),
            p.num_phases);

  // Latch grid: stage s, slot j -> phase (s mod k)+1.
  std::vector<std::vector<int>> stage(static_cast<size_t>(p.num_stages));
  for (int s = 0; s < p.num_stages; ++s) {
    for (int j = 0; j < p.latches_per_stage; ++j) {
      const int phase = (s % p.num_phases) + 1;
      stage[static_cast<size_t>(s)].push_back(
          c.add_latch("S" + std::to_string(s) + "L" + std::to_string(j), phase, p.setup, p.dq));
    }
  }

  // Dense consecutive-stage connectivity (ring: last stage feeds stage 0).
  std::set<std::pair<int, int>> used;
  for (int s = 0; s < p.num_stages; ++s) {
    const auto& prev = stage[static_cast<size_t>(s)];
    const auto& next = stage[static_cast<size_t>((s + 1) % p.num_stages)];
    for (const int dst : next) {
      std::uniform_int_distribution<size_t> pick(0, prev.size() - 1);
      int added = 0;
      int guard = 0;
      while (added < std::min<int>(p.fanin, static_cast<int>(prev.size())) && guard++ < 64) {
        const int src = prev[pick(rng)];
        if (!used.insert({src, dst}).second) continue;
        c.add_path(src, dst, delay(rng));
        ++added;
      }
    }
  }

  // Long-range forward edges: span >= 2 stages so the phase relationship is
  // still "forward in time" and never a same-phase latch race (span is kept
  // a multiple-free offset; any span works for validity, races are allowed
  // by the model but we avoid trivial ones).
  if (p.num_stages >= 3) {
    std::uniform_int_distribution<int> pick_stage(0, p.num_stages - 1);
    std::uniform_int_distribution<int> pick_span(2, p.num_stages - 1);
    std::uniform_int_distribution<size_t> pick_slot(0, static_cast<size_t>(p.latches_per_stage) - 1);
    for (int i = 0; i < p.extra_long_edges; ++i) {
      const int s = pick_stage(rng);
      const int t = (s + pick_span(rng)) % p.num_stages;
      const int src = stage[static_cast<size_t>(s)][pick_slot(rng)];
      const int dst = stage[static_cast<size_t>(t)][pick_slot(rng)];
      if (src == dst) continue;
      if (!used.insert({src, dst}).second) continue;
      c.add_path(src, dst, delay(rng));
    }
  }
  return c;
}

}  // namespace mintc::circuits
