// Reconstruction of the paper's third example (Section V, Figs. 10-11,
// Table I): the timing model of the University of Michigan 250 MHz GaAs
// MIPS-R6000-compatible microcomputer datapath.
//
// Published facts reproduced by this model (see DESIGN.md §4 for the
// substitution rationale — the authors' SPICE-extracted delays were never
// published, so delays here are calibrated):
//   * three-phase clock; 18 synchronizing elements, 15 of which are
//     level-sensitive latches (the rest edge-triggered flip-flops);
//   * each synchronizer stands for a 32-bit bus;
//   * 91 timing constraints in the LP;
//   * optimal cycle time 4.4 ns — 10% above the 4 ns (250 MHz) target;
//   * phi3 (the register-file precharge clock) is completely overlapped by
//     phi1 in the optimal schedule, legal because K13 = K31 = 0.
//
// The datapath structure follows Fig. 10: I-cache fetch into IR, decode,
// register-file read (precharged by phi3), ALU / shifter / integer
// multiply-divide execute paths with full bypassing, D-cache access through
// the load aligner, and writeback, plus PC / branch-condition / exception
// flip-flops.
#pragma once

#include <string>
#include <vector>

#include "model/circuit.h"

namespace mintc::circuits {

Circuit gaas_datapath();

/// Table I: transistor counts for the major datapath blocks.
struct TransistorCount {
  std::string block;
  int transistors = 0;
};
const std::vector<TransistorCount>& gaas_transistor_table();

/// The published target cycle time (4 ns = 250 MHz) and the paper's optimal
/// result (4.4 ns).
inline constexpr double kGaasTargetTc = 4.0;
inline constexpr double kGaasPaperOptimalTc = 4.4;

}  // namespace mintc::circuits
