#include "circuits/appendix_fig1.h"

#include <array>

namespace mintc::circuits {

Circuit appendix_fig1(const AppendixParams& params) {
  Circuit c("appendix_fig1", 4);
  // Latch phases from the Appendix setup constraints (1-based latch names).
  const std::array<int, 11> phase = {1, 1, 4, 3, 3, 2, 2, 1, 4, 3, 2};
  for (int i = 0; i < 11; ++i) {
    c.add_latch("L" + std::to_string(i + 1), phase[static_cast<size_t>(i)], params.setup,
                params.dq);
  }
  // Paths from the Appendix propagation constraints, plus the reconstructed
  // 9->10 (see header). Pairs are (source latch, destination latch), 1-based.
  const std::array<std::pair<int, int>, 17> paths = {{{4, 2},
                                                      {5, 2},
                                                      {8, 3},
                                                      {1, 4},
                                                      {2, 4},
                                                      {6, 5},
                                                      {7, 5},
                                                      {4, 6},
                                                      {5, 6},
                                                      {9, 7},
                                                      {10, 7},
                                                      {6, 8},
                                                      {7, 8},
                                                      {6, 9},
                                                      {7, 9},
                                                      {11, 10},
                                                      {9, 11},
                                                      }};
  int idx = 0;
  for (const auto& [from, to] : paths) {
    c.add_path(from - 1, to - 1, params.base_delay + 2.0 * idx, 0.0,
               "d" + std::to_string(from) + "_" + std::to_string(to));
    ++idx;
  }
  c.add_path(10 - 1, 11 - 1, params.base_delay + 2.0 * idx, 0.0, "d10_11");
  ++idx;
  // Reconstructed phi4 -> phi3 path completing the paper's K matrix.
  c.add_path(9 - 1, 10 - 1, params.base_delay + 2.0 * idx, 0.0, "d9_10");
  return c;
}

KMatrix appendix_fig1_k_matrix() {
  KMatrix K(4);
  // Paper Appendix:  [0 0 1 1; 1 0 1 1; 1 1 0 0; 0 1 1 0].
  const int rows[4][4] = {{0, 0, 1, 1}, {1, 0, 1, 1}, {1, 1, 0, 0}, {0, 1, 1, 0}};
  for (int i = 1; i <= 4; ++i) {
    for (int j = 1; j <= 4; ++j) K.set(i, j, rows[i - 1][j - 1] != 0);
  }
  return K;
}

}  // namespace mintc::circuits
