// The Appendix circuit (paper Fig. 1): 11 latches, four-phase clock.
//
// The paper's Appendix writes out the complete constraint set for this
// circuit; we rebuild the circuit from those constraints:
//   * latch phases from the setup constraints:
//       phi1: L1 L2 L8, phi2: L6 L7 L11, phi3: L4 L5 L10, phi4: L3 L9;
//   * combinational paths from the propagation constraints:
//       4->2 5->2 | 8->3 | 1->4 2->4 | 6->5 7->5 | 4->6 5->6 |
//       9->7 10->7 | 6->8 7->8 | 6->9 7->9 | 11->10 | 9->11 10->11;
//   * L1 has no listed propagation constraint: it is a primary-input latch.
//
// Reconstruction note (documented in DESIGN.md): the paper's K matrix has
// K43 = 1 and lists the operator S43, but the OCR of the constraint listing
// contains no phi4->phi3 path. We add the path 9->10 (phi4 -> phi3) to
// complete the nine I/O phase pairs; tests verify that the resulting K
// matrix and the set of phase-shift operators match the Appendix exactly.
//
// The Appendix keeps delays symbolic; default numeric values are provided
// so the circuit can be solved, and can be overridden.
#pragma once

#include "model/circuit.h"

namespace mintc::circuits {

struct AppendixParams {
  double setup = 2.0;        // Δ_DC, all latches
  double dq = 3.0;           // Δ_DQ, all latches
  double base_delay = 10.0;  // Δ_ij = base_delay + 2 * path_index (varied)
};

Circuit appendix_fig1(const AppendixParams& params = {});

/// The paper's K matrix for this circuit (eq. 2 values from the Appendix).
KMatrix appendix_fig1_k_matrix();

}  // namespace mintc::circuits
