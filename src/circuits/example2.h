// Example 2 (paper Figs. 8-9): "a more complicated example" on which the
// NRIP algorithm's cycle time is significantly higher (35%) than the MLP
// optimum.
//
// The paper's Fig. 8 block diagram gives no delay values, so this circuit is
// a reconstruction (DESIGN.md §4): a three-phase, eight-latch design with
// two coupled feedback loops and deliberately *unbalanced* stage delays.
// The optimal clock schedule is strongly asymmetric (one wide phase
// absorbing the long stage); any method restricted to symmetric phase
// widths and separations — the property the paper identifies as the source
// of NRIP's suboptimality — pays a large penalty. The delays below are
// calibrated so the reconstructed-NRIP-to-MLP gap matches the published
// ~35% (pinned by bench_fig9_example2 and tests).
#pragma once

#include "model/circuit.h"

namespace mintc::circuits {

Circuit example2();

}  // namespace mintc::circuits
