#include "circuits/gaas.h"

namespace mintc::circuits {

namespace {
// Raw (uncalibrated) delays in ns. kScale calibrates the model so the MLP
// optimum lands on the published 4.4 ns (see gaas_test.cpp, which pins the
// optimum): the raw model optimizes to Tc* = 4.2, and the LP optimum scales
// linearly with a uniform scaling of every delay/setup, so 4.4/4.2 lands it
// exactly. The *structure* — who feeds whom, which paths are critical — is
// what exercises the algorithm.
constexpr double kScale = 4.4 / 4.2;

double d(double raw) { return raw * kScale; }
}  // namespace

Circuit gaas_datapath() {
  Circuit c("gaas_mips_datapath", 3);

  // --- Synchronizers: 15 latches + 3 flip-flops, one per 32-bit bus.
  const double lsu = d(0.15);  // latch setup
  const double ldq = d(0.25);  // latch D-to-Q
  const double fsu = d(0.20);  // flip-flop setup
  const double fcq = d(0.30);  // flip-flop clock-to-Q

  // phi1: instruction-side & result masters; phi2: execute-side slaves;
  // phi3: register-file precharge controls.
  c.add_latch("IR", 1, lsu, ldq);       // instruction register
  c.add_latch("DecCtl", 2, lsu, ldq);   // decoded control bundle
  c.add_latch("PreCtl", 3, lsu, ldq);   // RF precharge / wordline control
  c.add_latch("OpA", 2, lsu, ldq);      // operand A (RF read + bypass mux)
  c.add_latch("OpB", 2, lsu, ldq);      // operand B
  c.add_latch("ALUr", 1, lsu, ldq);     // ALU result
  c.add_latch("SHr", 1, lsu, ldq);      // shifter result
  c.add_latch("IMDr", 1, lsu, ldq);     // integer multiply/divide partial
  c.add_latch("IMDs", 2, lsu, ldq);     // IMD iteration slave
  c.add_latch("DAddr", 2, lsu, ldq);    // data-cache address
  c.add_latch("LoadAl", 1, lsu, ldq);   // load aligner output
  c.add_latch("WBr", 2, lsu, ldq);      // writeback staging
  c.add_latch("RFw", 1, lsu, ldq);      // register-file write port
  c.add_latch("PCinc", 2, lsu, ldq);    // incremented PC
  c.add_latch("IAddr", 2, lsu, ldq);    // instruction-cache address

  c.add_flipflop("PC", 1, fsu, fcq);     // program counter
  c.add_flipflop("Bcond", 2, fsu, fcq);  // branch condition
  c.add_flipflop("Exc", 1, fsu, fcq);    // exception state

  // --- Combinational paths (54 latch-bound + 6 flip-flop-bound = 60, which
  // together with 6 C1 + 2 C2 + 5 C3 + 15 L1 + 3 FF-pin rows makes the
  // published 91 constraints; the fifth nonoverlap pair is the benign
  // same-phase K22 from the OpA/OpB -> DAddr address-generation paths).

  // Instruction fetch: I-cache is the 1Kx32 GaAs SRAM bank of Fig. 10.
  c.add_path("IAddr", "IR", d(2.80), d(1.40), "ICache");
  c.add_path("PC", "IR", d(0.60), d(0.30), "PCmux");
  c.add_path("Exc", "IR", d(0.80), d(0.40), "VecInj");

  // Decode.
  c.add_path("IR", "DecCtl", d(1.00), d(0.50), "Decode");
  c.add_path("Exc", "DecCtl", d(0.70), d(0.35), "ExcDec");

  // Register-file precharge control (the phi3 story).
  c.add_path("DecCtl", "PreCtl", d(2.50), d(1.25), "PreDec");
  c.add_path("WBr", "PreCtl", d(0.60), d(0.30), "WrPre");
  c.add_path("IMDs", "PreCtl", d(0.50), d(0.25), "ImdPre");

  // Operand fetch: RF read plus the full bypass network.
  for (const char* op : {"OpA", "OpB"}) {
    c.add_path("PreCtl", op, d(1.70), d(0.85), std::string("RFread.") + op);
    c.add_path("ALUr", op, d(0.40), d(0.20), std::string("BypALU.") + op);
    c.add_path("SHr", op, d(0.40), d(0.20), std::string("BypSH.") + op);
    c.add_path("LoadAl", op, d(0.50), d(0.25), std::string("BypLD.") + op);
    c.add_path("RFw", op, d(0.50), d(0.25), std::string("BypWB.") + op);
    c.add_path("IMDr", op, d(0.50), d(0.25), std::string("BypIMD.") + op);
    c.add_path("Bcond", op, d(0.30), d(0.15), std::string("CMov.") + op);
  }

  // Execute: ALU, shifter, integer multiply/divide.
  c.add_path("OpA", "ALUr", d(2.30), d(1.15), "ALU.A");
  c.add_path("OpB", "ALUr", d(2.30), d(1.15), "ALU.B");
  c.add_path("DecCtl", "ALUr", d(1.40), d(0.70), "ALU.ctl");
  c.add_path("OpA", "SHr", d(1.90), d(0.95), "Shift.A");
  c.add_path("OpB", "SHr", d(1.90), d(0.95), "Shift.B");
  c.add_path("DecCtl", "SHr", d(1.20), d(0.60), "Shift.ctl");
  c.add_path("OpA", "IMDr", d(2.10), d(1.05), "IMD.A");
  c.add_path("OpB", "IMDr", d(2.10), d(1.05), "IMD.B");
  c.add_path("IMDs", "IMDr", d(1.00), d(0.50), "IMD.iter");
  c.add_path("IMDr", "IMDs", d(1.00), d(0.50), "IMD.fold");
  c.add_path("SHr", "IMDs", d(0.80), d(0.40), "IMD.norm");
  c.add_path("RFw", "IMDs", d(0.60), d(0.30), "IMD.seed");

  // Memory access: address generation, D-cache (SRAM bank), load alignment.
  c.add_path("OpA", "DAddr", d(1.10), d(0.55), "AGen.A");
  c.add_path("OpB", "DAddr", d(1.10), d(0.55), "AGen.B");
  c.add_path("IR", "DAddr", d(1.30), d(0.65), "AGen.off");
  c.add_path("RFw", "DAddr", d(0.70), d(0.35), "AGen.byp");
  c.add_path("PC", "DAddr", d(0.90), d(0.45), "AGen.pcrel");
  c.add_path("DAddr", "LoadAl", d(3.00), d(1.50), "DCache");
  c.add_path("DecCtl", "LoadAl", d(1.50), d(0.75), "Align.ctl");

  // Writeback.
  c.add_path("ALUr", "WBr", d(0.50), d(0.25), "WB.alu");
  c.add_path("SHr", "WBr", d(0.50), d(0.25), "WB.sh");
  c.add_path("IMDr", "WBr", d(0.50), d(0.25), "WB.imd");
  c.add_path("LoadAl", "WBr", d(0.40), d(0.20), "WB.ld");
  c.add_path("PC", "WBr", d(0.60), d(0.30), "WB.link");
  c.add_path("WBr", "RFw", d(0.80), d(0.40), "RFwrite");
  c.add_path("Exc", "RFw", d(0.50), d(0.25), "RFw.exc");

  // Next-PC.
  c.add_path("PC", "PCinc", d(0.90), d(0.45), "PCadd");
  c.add_path("Exc", "PCinc", d(0.60), d(0.30), "PCexc");
  c.add_path("PC", "IAddr", d(0.70), d(0.35), "IAmux.pc");
  c.add_path("ALUr", "IAddr", d(0.80), d(0.40), "IAmux.tgt");
  c.add_path("Bcond", "IAddr", d(0.50), d(0.25), "IAmux.br");
  c.add_path("RFw", "IAddr", d(0.60), d(0.30), "IAmux.jr");

  // Flip-flop inputs.
  c.add_path("PCinc", "PC", d(0.60), d(0.30), "PC.inc");
  c.add_path("ALUr", "PC", d(0.80), d(0.40), "PC.tgt");
  c.add_path("OpA", "Bcond", d(1.00), d(0.50), "Cmp.A");
  c.add_path("OpB", "Bcond", d(1.00), d(0.50), "Cmp.B");
  c.add_path("DecCtl", "Exc", d(0.90), d(0.45), "Exc.dec");
  c.add_path("ALUr", "Exc", d(0.70), d(0.35), "Exc.ovf");

  return c;
}

const std::vector<TransistorCount>& gaas_transistor_table() {
  // Table I of the paper, verbatim.
  static const std::vector<TransistorCount> table = {
      {"Register File (RF)", 16085},       {"Arithmetic/Logic Unit (ALU)", 3419},
      {"Shifter", 1848},                   {"Integer Multiply/Divide (IMD)", 6874},
      {"Load Aligner", 1922},              {"Total", 30148},
  };
  return table;
}

}  // namespace mintc::circuits
