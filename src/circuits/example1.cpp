#include "circuits/example1.h"

#include <algorithm>

namespace mintc::circuits {

Circuit example1(double delta41) {
  Circuit c("example1", 2);
  const int l1 = c.add_latch("L1", 1, 10.0, 10.0);
  const int l2 = c.add_latch("L2", 2, 10.0, 10.0);
  const int l3 = c.add_latch("L3", 1, 10.0, 10.0);
  const int l4 = c.add_latch("L4", 2, 10.0, 10.0);
  c.add_path(l1, l2, 20.0, 0.0, "La");
  c.add_path(l2, l3, 20.0, 0.0, "Lb");
  c.add_path(l3, l4, 60.0, 0.0, "Lc");
  c.add_path(l4, l1, delta41, 0.0, "Ld");
  return c;
}

int example1_ld_path() { return 3; }

double example1_optimal_tc(double delta41) {
  // Three lower bounds, matching the paper's Fig. 7 discussion:
  //  * each single path j->i must fit within one period, because the
  //    destination phase closes no later than one period after the source
  //    phase opens (C3): Tc >= Δ_DQj + Δ_ji + Δ_DCi. Block Lc gives the
  //    binding 10+60+10 = 80 (the "other delay in the circuit" that sets Tc
  //    for Δ41 <= 20), block Ld gives 20+Δ41 — equivalently the difference
  //    between the delays of the two cycles making up the loop;
  //  * the feedback loop spans two periods, so Tc >= (140+Δ41)/2, the
  //    average delay around the loop.
  const double lc_span = 80.0;                 // 10+60+10
  const double ld_span = 20.0 + delta41;       // 10+Δ41+10
  const double loop_avg = (140.0 + delta41) / 2.0;
  return std::max({lc_span, ld_span, loop_avg});
}

}  // namespace mintc::circuits
