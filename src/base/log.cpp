#include "base/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace mintc {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mu;
LogSink g_sink;  // empty => default stderr sink

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void set_log_sink(LogSink sink) {
  const std::lock_guard<std::mutex> lock(g_sink_mu);
  g_sink = std::move(sink);
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  // Copy the sink under the lock, call it outside: a sink that logs (or
  // swaps the sink) must not deadlock.
  LogSink sink;
  {
    const std::lock_guard<std::mutex> lock(g_sink_mu);
    sink = g_sink;
  }
  if (sink) {
    sink(level, message);
    return;
  }
  std::fprintf(stderr, "[mintc %s] %s\n", level_tag(level), message.c_str());
}

}  // namespace mintc
