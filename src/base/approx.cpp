#include "base/approx.h"

#include <cmath>

namespace mintc {

double snap_zero(double v, double eps) { return std::fabs(v) <= eps ? 0.0 : v; }

double round_to(double v, int decimals) {
  const double scale = std::pow(10.0, decimals);
  return std::round(v * scale) / scale;
}

}  // namespace mintc
