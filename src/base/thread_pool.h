// Small work-stealing thread pool for the parallel fixpoint engine.
//
// Design goals, in order:
//   1. Determinism support: the pool runs opaque tasks and never reorders a
//      task's side effects — all determinism arguments live in the scheduler
//      built on top (sta/parallel_fixpoint.cpp), which only submits a task
//      once its data dependencies are fully resolved.
//   2. Nested submission: a running task may submit follow-up tasks (the
//      SCC scheduler releases successors as predecessor counts hit zero).
//      wait() accounts for those transitively via a single pending counter.
//   3. Small and auditable over fast: per-worker mutex-protected deques with
//      LIFO pop / FIFO steal. At the granularity this repo schedules
//      (one task per SCC shard, microseconds to milliseconds each) the
//      mutex cost is noise; lock-free deques would buy nothing but risk.
//
// Workers pop from the back of their own deque (cache-warm, depth-first on
// nested submits) and steal from the front of a victim's deque (oldest task,
// the classic Chase-Lev discipline without the lock-free machinery).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mintc::base {

/// A wait scope for a subset of a pool's tasks. The plain ThreadPool::wait()
/// blocks until the pool is GLOBALLY idle — unusable from a thread (the serve
/// listener) that needs to drain its own submissions while other threads keep
/// the pool busy indefinitely: global pending may never reach zero. A
/// TaskGroup carries its own pending counter, so wait() returns as soon as
/// the tasks submitted WITH THIS GROUP have finished, no matter what else is
/// in flight.
///
/// The group must outlive every task submitted with it. wait() is callable
/// from any thread that is not itself running one of the group's queued
/// tasks (a worker waiting on a group whose tasks sit behind it in the queue
/// would deadlock — same rule as ThreadPool::wait()).
class TaskGroup {
 public:
  /// Block until every task submitted with this group has finished.
  /// Returns immediately when none are pending. Callable concurrently from
  /// multiple threads; safe while other threads keep submitting to the same
  /// group (waits for the count observed to drain to zero).
  void wait();

  /// Tasks submitted with this group and not yet finished.
  long pending() const;

 private:
  friend class ThreadPool;
  void enter();
  void leave();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  long pending_ = 0;
};

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1). The pool is usable
  /// immediately; tasks submitted before workers finish starting are picked
  /// up once they do.
  explicit ThreadPool(int num_threads);

  /// Drains nothing: outstanding tasks are still executed (the destructor
  /// wait()s), then workers are joined.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Callable from any thread, including from inside a
  /// running task (nested submit): a worker pushes onto its own deque,
  /// external threads distribute round-robin.
  void submit(std::function<void()> task);

  /// Enqueue a task accounted against `group` as well as the pool: the task
  /// counts toward both TaskGroup::wait() and ThreadPool::wait(). `group`
  /// must outlive the task's execution.
  void submit(TaskGroup& group, std::function<void()> task);

  /// Block until every submitted task — including tasks submitted by tasks —
  /// has finished. Callable only from outside the pool (a worker calling
  /// wait() would deadlock on its own pending task), and only useful when no
  /// OTHER thread keeps submitting: it waits for global idleness. A thread
  /// that must drain just its own submissions while the pool serves
  /// unrelated traffic (the serve listener) should use a TaskGroup instead.
  void wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Total tasks a worker took from a deque other than its own.
  /// Observability only — exposed through obs metrics by the scheduler.
  std::int64_t steal_count() const { return steals_.load(std::memory_order_relaxed); }

  /// Total tasks executed since construction.
  std::int64_t executed_count() const { return executed_.load(std::memory_order_relaxed); }

  /// Workers currently inside a task body. Together with num_threads() this
  /// yields an instantaneous utilization sample (busy / threads) — a gauge
  /// the serve layer scrapes; approximate by nature, never used for control.
  int busy_count() const { return busy_.load(std::memory_order_relaxed); }

  /// Index of the calling worker thread in [0, num_threads()), or -1 when
  /// called from a thread that is not one of this pool's workers.
  int worker_index() const;

  /// Point-in-time view of one worker for ops introspection (the serve
  /// status dashboard's worker table). `cpu_seconds` is the worker THREAD's
  /// cumulative CPU time (CLOCK_THREAD_CPUTIME_ID, refreshed after each
  /// task; 0 where the clock is unavailable) — a skewed worker singles out
  /// a queue hot spot that the pool-wide executed/steal totals average away.
  struct WorkerStats {
    std::int64_t executed = 0;   // tasks this worker ran
    std::int64_t queued = 0;     // tasks waiting in this worker's own deque
    double cpu_seconds = 0.0;    // worker thread CPU since pool start
    bool busy = false;           // inside a task body right now
  };

  /// One entry per worker, index-aligned with worker_index(). Approximate
  /// by nature (counters are relaxed, queues are locked one at a time);
  /// observability only, never used for control.
  std::vector<WorkerStats> worker_stats() const;

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  // Per-worker observability counters, written only by the owning worker
  // (relaxed stores) and read by worker_stats().
  struct WorkerCounters {
    std::atomic<std::int64_t> executed{0};
    std::atomic<std::int64_t> cpu_ns{0};
    std::atomic<bool> busy{false};
  };

  void worker_loop(int index);
  bool try_pop_own(int index, std::function<void()>& out);
  bool try_steal(int thief, std::function<void()>& out);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::unique_ptr<WorkerCounters>> counters_;
  std::vector<std::thread> workers_;

  std::mutex control_mu_;
  std::condition_variable work_cv_;   // workers sleep here when idle
  std::condition_variable done_cv_;   // wait() sleeps here
  std::int64_t pending_ = 0;          // submitted but not yet finished
  bool stopping_ = false;

  std::atomic<std::int64_t> steals_{0};
  std::atomic<std::int64_t> executed_{0};
  std::atomic<int> busy_{0};
  std::atomic<std::uint64_t> next_queue_{0};  // round-robin for external submits
};

}  // namespace mintc::base
