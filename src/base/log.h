// Minimal leveled logger.
//
// Default level is kWarn so library users see nothing unless something is
// off; tools and benches can raise verbosity to trace simplex pivots and
// fixpoint iterations.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace mintc {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Process-wide log level.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Where accepted lines go. The default sink formats to stderr.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Replace the process-wide sink; pass nullptr (or {}) to restore the
/// default stderr sink. Tests install a capturing sink here.
void set_log_sink(LogSink sink);

/// Emit one line at the given level (no-op if below the global level).
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogStream log_trace() { return detail::LogStream(LogLevel::kTrace); }
inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::kDebug); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() { return detail::LogStream(LogLevel::kError); }

}  // namespace mintc
