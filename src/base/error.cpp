#include "base/error.h"

namespace mintc {

const char* to_string(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kInvalidArgument: return "invalid_argument";
    case ErrorKind::kInvalidCircuit: return "invalid_circuit";
    case ErrorKind::kInfeasible: return "infeasible";
    case ErrorKind::kUnbounded: return "unbounded";
    case ErrorKind::kNotConverged: return "not_converged";
    case ErrorKind::kIo: return "io";
  }
  return "unknown";
}

std::string Error::to_string() const {
  return std::string(mintc::to_string(kind)) + ": " + message;
}

}  // namespace mintc
