// Lightweight error type and Expected<T> for recoverable failures.
//
// mintc is a library: user-input problems (malformed circuit files,
// structurally invalid circuits, infeasible constraint systems) are reported
// as values, not exceptions. Internal logic errors still assert.
#pragma once

#include <string>
#include <utility>
#include <variant>

namespace mintc {

/// Coarse classification of a recoverable error.
enum class ErrorKind {
  kInvalidArgument,  // bad parameter or malformed input file
  kInvalidCircuit,   // circuit fails structural validation
  kInfeasible,       // constraint system has no solution
  kUnbounded,        // LP objective unbounded (indicates a modeling bug)
  kNotConverged,     // iteration limit hit before a fixpoint
  kIo,               // file could not be read/written
};

/// Human-readable name of an ErrorKind ("invalid_argument", ...).
const char* to_string(ErrorKind kind);

/// A recoverable error: a kind plus a human-readable message.
struct Error {
  ErrorKind kind = ErrorKind::kInvalidArgument;
  std::string message;

  std::string to_string() const;
};

/// Minimal expected/either type: holds either a T or an Error.
///
/// Usage:
///   Expected<Circuit> c = parse_circuit(text);
///   if (!c) { report(c.error()); return; }
///   use(c.value());
template <typename T>
class Expected {
 public:
  Expected(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Expected(Error error) : data_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  bool has_value() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return has_value(); }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const { return std::get<Error>(data_); }

 private:
  std::variant<T, Error> data_;
};

/// Convenience constructors.
inline Error make_error(ErrorKind kind, std::string message) {
  return Error{kind, std::move(message)};
}

}  // namespace mintc
