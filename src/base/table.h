// Column-aligned text tables.
//
// The figure/table benches print the paper's rows through this so their
// output is uniform and easy to diff against EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace mintc {

/// A simple monospace table: set headers, add rows, render.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Add a row; it must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Render with column alignment, a header underline, and two-space gutters.
  std::string to_string() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mintc
