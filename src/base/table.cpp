#include "base/table.h"

#include <algorithm>
#include <cassert>

namespace mintc {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size() && "row arity must match header");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<size_t> width(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) out.append(width[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
  };

  std::string out;
  emit_row(headers_, out);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

}  // namespace mintc
