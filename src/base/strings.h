// Small string utilities used by the parser and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mintc {

/// Remove leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on any run of the given delimiter characters; empty tokens dropped.
std::vector<std::string_view> split_ws(std::string_view s);

/// Split on a single delimiter character; empty tokens kept.
std::vector<std::string_view> split(std::string_view s, char delim);

/// True if s starts with the given prefix.
bool starts_with(std::string_view s, std::string_view prefix);

/// Parse a double; returns false on any trailing garbage.
bool parse_double(std::string_view s, double& out);

/// Parse a non-negative integer; returns false on any trailing garbage.
bool parse_int(std::string_view s, int& out);

/// printf-style "%.*f" with trailing zeros trimmed ("12.50" -> "12.5",
/// "12.00" -> "12"). Used everywhere numbers are printed in reports so the
/// output matches the paper's style.
std::string fmt_time(double v, int max_decimals = 3);

}  // namespace mintc
