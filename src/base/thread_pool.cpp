#include "base/thread_pool.h"

#include <algorithm>
#include <cassert>
#include <ctime>
#include <utility>

namespace mintc::base {

namespace {

// Cumulative CPU time of the calling thread, for the per-worker stats.
// Degrades to 0 where the per-thread clock is unavailable.
std::int64_t thread_cpu_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
#else
  return 0;
#endif
}

// Identifies the pool (if any) the current thread belongs to, so nested
// submit() calls land on the submitting worker's own deque and
// worker_index() works without a map lookup.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local int tl_index = -1;
}  // namespace

void TaskGroup::enter() {
  const std::lock_guard<std::mutex> lk(mu_);
  ++pending_;
}

void TaskGroup::leave() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    --pending_;
    if (pending_ > 0) return;
  }
  cv_.notify_all();
}

void TaskGroup::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return pending_ == 0; });
}

long TaskGroup::pending() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return pending_;
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  queues_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) queues_.push_back(std::make_unique<Queue>());
  counters_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) counters_.push_back(std::make_unique<WorkerCounters>());
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait();
  {
    const std::lock_guard<std::mutex> lk(control_mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

int ThreadPool::worker_index() const { return tl_pool == this ? tl_index : -1; }

std::vector<ThreadPool::WorkerStats> ThreadPool::worker_stats() const {
  std::vector<WorkerStats> out(counters_.size());
  for (size_t i = 0; i < counters_.size(); ++i) {
    const WorkerCounters& c = *counters_[i];
    out[i].executed = c.executed.load(std::memory_order_relaxed);
    out[i].cpu_seconds =
        static_cast<double>(c.cpu_ns.load(std::memory_order_relaxed)) * 1e-9;
    out[i].busy = c.busy.load(std::memory_order_relaxed);
    const std::lock_guard<std::mutex> qlk(queues_[i]->mu);
    out[i].queued = static_cast<std::int64_t>(queues_[i]->tasks.size());
  }
  return out;
}

void ThreadPool::submit(std::function<void()> task) {
  assert(task && "null task submitted");
  int q = worker_index();
  if (q < 0) {
    q = static_cast<int>(next_queue_.fetch_add(1, std::memory_order_relaxed) %
                         queues_.size());
  }
  {
    // Lock order everywhere is control_mu_ then queue mu. Publishing the
    // task while holding control_mu_ is what makes the idle-worker predicate
    // race-free: a worker deciding to sleep holds control_mu_ across its
    // final emptiness check, so it either sees this task or is already
    // waiting when the notify fires.
    const std::lock_guard<std::mutex> lk(control_mu_);
    ++pending_;
    const std::lock_guard<std::mutex> qlk(queues_[static_cast<size_t>(q)]->mu);
    queues_[static_cast<size_t>(q)]->tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::submit(TaskGroup& group, std::function<void()> task) {
  assert(task && "null task submitted");
  // enter() before enqueue so a concurrent group.wait() that races the
  // submission can never observe pending == 0 between enqueue and execute.
  group.enter();
  submit([&group, t = std::move(task)] {
    t();
    group.leave();
  });
}

void ThreadPool::wait() {
  assert(worker_index() < 0 && "wait() from a worker would deadlock");
  std::unique_lock<std::mutex> lk(control_mu_);
  done_cv_.wait(lk, [&] { return pending_ == 0; });
}

bool ThreadPool::try_pop_own(int index, std::function<void()>& out) {
  Queue& q = *queues_[static_cast<size_t>(index)];
  const std::lock_guard<std::mutex> lk(q.mu);
  if (q.tasks.empty()) return false;
  out = std::move(q.tasks.back());  // LIFO on own deque: depth-first, cache-warm
  q.tasks.pop_back();
  return true;
}

bool ThreadPool::try_steal(int thief, std::function<void()>& out) {
  const int n = static_cast<int>(queues_.size());
  for (int step = 1; step < n; ++step) {
    const int victim = (thief + step) % n;
    Queue& q = *queues_[static_cast<size_t>(victim)];
    const std::lock_guard<std::mutex> lk(q.mu);
    if (q.tasks.empty()) continue;
    out = std::move(q.tasks.front());  // FIFO steal: take the oldest task
    q.tasks.pop_front();
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(int index) {
  tl_pool = this;
  tl_index = index;
  std::function<void()> task;
  const auto have_queued_task = [&] {
    for (const std::unique_ptr<Queue>& q : queues_) {
      const std::lock_guard<std::mutex> qlk(q->mu);
      if (!q->tasks.empty()) return true;
    }
    return false;
  };
  for (;;) {
    if (try_pop_own(index, task) || try_steal(index, task)) {
      WorkerCounters& me = *counters_[static_cast<size_t>(index)];
      busy_.fetch_add(1, std::memory_order_relaxed);
      me.busy.store(true, std::memory_order_relaxed);
      task();
      task = nullptr;
      me.busy.store(false, std::memory_order_relaxed);
      busy_.fetch_sub(1, std::memory_order_relaxed);
      executed_.fetch_add(1, std::memory_order_relaxed);
      me.executed.fetch_add(1, std::memory_order_relaxed);
      me.cpu_ns.store(thread_cpu_ns(), std::memory_order_relaxed);
      const std::lock_guard<std::mutex> lk(control_mu_);
      if (--pending_ == 0) done_cv_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lk(control_mu_);
    work_cv_.wait(lk, [&] { return stopping_ || have_queued_task(); });
    if (stopping_) return;  // wait() in ~ThreadPool drained everything first
  }
}

}  // namespace mintc::base
