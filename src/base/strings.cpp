#include "base/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace mintc {

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0) ++i;
    size_t j = i;
    while (j < s.size() && std::isspace(static_cast<unsigned char>(s[j])) == 0) ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool parse_double(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  // std::from_chars for double is not available on all libstdc++ configs we
  // target, so use strtod on a bounded copy.
  std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  out = v;
  return true;
}

bool parse_int(std::string_view s, int& out) {
  s = trim(s);
  if (s.empty()) return false;
  int v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return false;
  out = v;
  return true;
}

std::string fmt_time(double v, int max_decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", max_decimals, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s == "-0") s = "0";
  return s;
}

}  // namespace mintc
