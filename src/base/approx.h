// Tolerant floating-point comparison for timing quantities.
//
// All times in mintc are doubles in user units (the paper uses ns). Timing
// constraint checks and LP pivots must not be derailed by 1e-12 noise, so all
// comparisons in the library go through these helpers with a single global
// default tolerance.
#pragma once

#include <cmath>

namespace mintc {

/// Default absolute tolerance for timing comparisons (user units).
inline constexpr double kTimeEps = 1e-7;

/// True if |a - b| <= eps.
inline bool approx_eq(double a, double b, double eps = kTimeEps) {
  return std::fabs(a - b) <= eps;
}

/// True if a <= b + eps (i.e., "a is at most b" up to tolerance).
inline bool approx_le(double a, double b, double eps = kTimeEps) {
  return a <= b + eps;
}

/// True if a >= b - eps.
inline bool approx_ge(double a, double b, double eps = kTimeEps) {
  return a >= b - eps;
}

/// True if a < b - eps (strictly less, beyond tolerance).
inline bool definitely_lt(double a, double b, double eps = kTimeEps) {
  return a < b - eps;
}

/// True if a > b + eps (strictly greater, beyond tolerance).
inline bool definitely_gt(double a, double b, double eps = kTimeEps) {
  return a > b + eps;
}

/// Snap a value to zero if it is within eps of zero. Used to clean up
/// LP solutions before they are fed to the fixpoint iteration.
double snap_zero(double v, double eps = kTimeEps);

/// Round to a fixed number of decimals for stable text output.
double round_to(double v, int decimals);

}  // namespace mintc
