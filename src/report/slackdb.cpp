#include "report/slackdb.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "opt/constraints.h"
#include "opt/critical.h"

namespace mintc::report {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

HistogramSummary summarize(const std::vector<double>& values, int nbuckets) {
  HistogramSummary s;
  if (values.empty()) return s;
  double lo = values.front(), hi = values.front();
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::vector<double> bounds;
  if (hi - lo < 1e-12) {
    bounds.push_back(lo);  // degenerate population: one bound, two buckets
  } else {
    for (int k = 1; k <= nbuckets; ++k) {
      bounds.push_back(lo + (hi - lo) * k / nbuckets);
    }
  }
  obs::Histogram h(std::move(bounds));
  for (const double v : values) h.observe(v);
  s.bounds = h.bounds();
  s.buckets = h.buckets();
  s.count = h.count();
  s.sum = h.sum();
  s.min = h.min();
  s.max = h.max();
  s.p50 = h.quantile(0.50);
  s.p95 = h.quantile(0.95);
  s.p99 = h.quantile(0.99);
  return s;
}

/// Phase pairs whose active intervals intersect modulo Tc (touching
/// intervals do not count). i < j, 1-based.
std::vector<std::pair<int, int>> overlapping_phase_pairs(const ClockSchedule& schedule,
                                                         double eps) {
  std::vector<std::pair<int, int>> out;
  const double tc = schedule.cycle;
  if (tc <= 0.0) return out;
  const auto wrap = [&](double x) {
    x = std::fmod(x, tc);
    return x < 0.0 ? x + tc : x;
  };
  for (int i = 1; i <= schedule.num_phases(); ++i) {
    for (int j = i + 1; j <= schedule.num_phases(); ++j) {
      const double ti = schedule.T(i), tj = schedule.T(j);
      if (ti <= eps || tj <= eps) continue;
      if (ti >= tc - eps || tj >= tc - eps) {
        out.emplace_back(i, j);  // a phase covering the whole cycle overlaps all
        continue;
      }
      // Circular-interval intersection: j starts inside i's window or vice
      // versa (start offsets measured forward around the cycle).
      const bool ov = wrap(schedule.s(j) - schedule.s(i)) < ti - eps ||
                      wrap(schedule.s(i) - schedule.s(j)) < tj - eps;
      if (ov) out.emplace_back(i, j);
    }
  }
  return out;
}

void build_borrow_chains(SlackDB& db, double tight_eps) {
  const auto& origins = db.analysis.provenance.origins;
  const int l = static_cast<int>(db.endpoints.size());
  if (static_cast<int>(origins.size()) != l) return;  // provenance unavailable

  std::vector<int> order;
  for (int i = 0; i < l; ++i) {
    if (db.endpoints[static_cast<size_t>(i)].borrow > tight_eps) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return db.endpoints[static_cast<size_t>(a)].borrow >
           db.endpoints[static_cast<size_t>(b)].borrow;
  });

  std::vector<char> visited(static_cast<size_t>(l), 0);
  for (const int start : order) {
    if (visited[static_cast<size_t>(start)]) continue;
    BorrowChain ch;
    int cur = start;
    while (true) {
      ch.elements.push_back(cur);
      visited[static_cast<size_t>(cur)] = 1;
      const sta::DepartureOrigin& o = origins[static_cast<size_t>(cur)];
      if (o.via_path < 0 || o.from < 0) break;  // departs at its enabling edge
      const EndpointRecord& pred = db.endpoints[static_cast<size_t>(o.from)];
      if (pred.borrow <= tight_eps) break;  // predecessor does not borrow
      if (std::find(ch.elements.begin(), ch.elements.end(), o.from) != ch.elements.end()) {
        ch.paths.push_back(o.via_path);  // the back edge closing the loop
        ch.is_loop = true;
        break;
      }
      if (visited[static_cast<size_t>(o.from)]) break;  // joins an earlier chain
      ch.paths.push_back(o.via_path);
      cur = o.from;
    }
    for (const int e : ch.elements) {
      ch.total_borrow += db.endpoints[static_cast<size_t>(e)].borrow;
    }
    db.borrow_chains.push_back(std::move(ch));
  }
  std::stable_sort(db.borrow_chains.begin(), db.borrow_chains.end(),
                   [](const BorrowChain& a, const BorrowChain& b) {
                     return a.total_borrow > b.total_borrow;
                   });
}

void mirror_into_registry(const SlackDB& db) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Labels labels{{"circuit", db.circuit}};
  if (!db.corner.empty()) labels.emplace_back("corner", db.corner);
  reg.gauge("report.worst_setup_slack", labels).set(db.worst_setup_slack());
  reg.gauge("report.total_borrow", labels).set(db.total_borrow);
  reg.gauge("report.num_constraints", labels)
      .set(static_cast<double>(db.num_constraints));
  if (!db.setup_hist.bounds.empty()) {
    obs::Histogram& h = reg.histogram("report.setup_slack", labels, db.setup_hist.bounds);
    for (const EndpointRecord& e : db.endpoints) {
      if (std::isfinite(e.setup_slack)) h.observe(e.setup_slack);
    }
  }
}

}  // namespace

double SlackDB::worst_setup_slack() const { return analysis.worst_setup_slack; }

double SlackDB::worst_hold_slack() const { return analysis.worst_hold_slack; }

SlackDB build_slackdb(const Circuit& circuit, const ClockSchedule& schedule,
                      const SlackDbOptions& options) {
  const StageTimer timer;
  const obs::TraceSpan span("report.build_slackdb", "report");
  SlackDB db;
  db.circuit = circuit.name();
  db.schedule = schedule;
  db.tc = schedule.cycle;

  // One analysis run supplies every slack in the database (records below
  // are copies of it, never recomputations — keeping them cross-checkable).
  sta::AnalysisOptions aopt;
  aopt.check_hold = options.check_hold;
  aopt.provenance = true;
  aopt.eps = options.eps;
  db.analysis = sta::check_schedule(circuit, schedule, aopt);
  db.feasible = db.analysis.feasible;

  db.num_constraints = opt::generate_lp(circuit).counts.rows();
  db.overlapping_phases = overlapping_phase_pairs(schedule, options.eps);

  const int l = circuit.num_elements();
  db.endpoints.resize(static_cast<size_t>(l));
  std::vector<double> finite_setup, borrows;
  for (int i = 0; i < l; ++i) {
    const Element& el = circuit.element(i);
    const sta::ElementTiming& t = db.analysis.elements[static_cast<size_t>(i)];
    EndpointRecord& r = db.endpoints[static_cast<size_t>(i)];
    r.element = i;
    r.name = el.name;
    r.kind = el.kind;
    r.phase = el.phase;
    r.departure = t.departure;
    r.arrival = t.arrival;
    r.skew = el.skew;
    r.setup_slack = t.setup_slack;
    r.hold_slack = t.hold_slack;
    r.borrow = el.is_latch() ? std::max(0.0, t.departure) : 0.0;
    db.total_borrow += r.borrow;
    db.max_skew = std::max(db.max_skew, el.skew);
    if (std::isfinite(r.setup_slack)) finite_setup.push_back(r.setup_slack);
    if (el.is_latch()) borrows.push_back(r.borrow);
    if (!db.analysis.provenance.empty()) {
      const sta::DepartureOrigin& o =
          db.analysis.provenance.origins[static_cast<size_t>(i)];
      r.origin_path = o.via_path;
      r.origin_from = o.from;
    }
    if (std::isfinite(r.setup_slack) && r.setup_slack <= options.tight_eps) {
      r.tight.push_back("L1");
    }
    if (r.origin_path >= 0) r.tight.push_back("L2");
    if (el.is_latch() && r.departure <= options.tight_eps) r.tight.push_back("L3");
  }

  // Per-path propagation slack + critical segments (only meaningful at a
  // converged fixpoint).
  if (db.analysis.converged) {
    const opt::CriticalReport crit = opt::find_critical_segments(
        circuit, schedule, db.analysis.fixpoint.departure, options.tight_eps);
    db.paths.resize(static_cast<size_t>(circuit.num_paths()));
    for (int p = 0; p < circuit.num_paths(); ++p) {
      const CombPath& cp = circuit.path(p);
      PathRecord& r = db.paths[static_cast<size_t>(p)];
      r.path = p;
      r.from = circuit.element(cp.from).name;
      r.to = circuit.element(cp.to).name;
      r.label = cp.label;
      r.delay = cp.delay;
      r.slack = crit.path_slack[static_cast<size_t>(p)];
    }
    for (const int p : crit.tight_paths) db.paths[static_cast<size_t>(p)].tight = true;
    build_borrow_chains(db, options.tight_eps);
  }

  // Top-K worst endpoints (by setup slack) and paths (by propagation slack).
  for (int i = 0; i < l; ++i) db.worst_endpoints.push_back(i);
  std::stable_sort(db.worst_endpoints.begin(), db.worst_endpoints.end(), [&](int a, int b) {
    return db.endpoints[static_cast<size_t>(a)].setup_slack <
           db.endpoints[static_cast<size_t>(b)].setup_slack;
  });
  if (static_cast<int>(db.worst_endpoints.size()) > options.nworst) {
    db.worst_endpoints.resize(static_cast<size_t>(options.nworst));
  }
  for (const PathRecord& r : db.paths) db.worst_paths.push_back(r.path);
  std::stable_sort(db.worst_paths.begin(), db.worst_paths.end(), [&](int a, int b) {
    return db.paths[static_cast<size_t>(a)].slack < db.paths[static_cast<size_t>(b)].slack;
  });
  if (static_cast<int>(db.worst_paths.size()) > options.nworst) {
    db.worst_paths.resize(static_cast<size_t>(options.nworst));
  }

  db.setup_hist = summarize(finite_setup, options.histogram_buckets);
  db.borrow_hist = summarize(borrows, options.histogram_buckets);

  // Every setup and hold slack loses exactly δ when a uniform extra skew δ
  // is added at every endpoint (σ enters the checks linearly, coefficient
  // -1), so the design's skew tolerance at this schedule is the worst slack
  // itself, floored at zero.
  double worst = db.analysis.worst_setup_slack;
  if (std::isfinite(db.analysis.worst_hold_slack)) {
    worst = std::min(worst, db.analysis.worst_hold_slack);
  }
  db.skew_tolerance = std::isfinite(worst) ? std::max(0.0, worst) : 0.0;

  db.build_seconds = timer.seconds();
  mirror_into_registry(db);
  return db;
}

SignoffDB build_signoff(const Circuit& circuit, const ClockSchedule& schedule,
                        const std::vector<sta::Corner>& corners,
                        const SlackDbOptions& options) {
  const obs::TraceSpan span("report.build_signoff", "report");
  SignoffDB db;
  db.all_pass = true;
  for (const sta::Corner& corner : corners) {
    SlackDB one = build_slackdb(sta::derate(circuit, corner), schedule, options);
    one.corner = corner.name;
    one.circuit = circuit.name();  // report the design, not the derated copy
    db.all_pass = db.all_pass && one.feasible;
    db.corners.push_back(std::move(one));
  }
  if (db.corners.empty()) return db;

  const size_t l = db.corners.front().endpoints.size();
  db.merged_setup_slack.assign(l, kInf);
  db.merged_setup_corner.assign(l, -1);
  db.merged_hold_slack.assign(l, kInf);
  db.merged_hold_corner.assign(l, -1);
  for (size_t c = 0; c < db.corners.size(); ++c) {
    for (size_t i = 0; i < l; ++i) {
      const EndpointRecord& r = db.corners[c].endpoints[i];
      if (r.setup_slack < db.merged_setup_slack[i]) {
        db.merged_setup_slack[i] = r.setup_slack;
        db.merged_setup_corner[i] = static_cast<int>(c);
      }
      if (r.hold_slack < db.merged_hold_slack[i]) {
        db.merged_hold_slack[i] = r.hold_slack;
        db.merged_hold_corner[i] = static_cast<int>(c);
      }
    }
  }
  for (size_t i = 0; i < l; ++i) db.merged_worst_endpoints.push_back(static_cast<int>(i));
  std::stable_sort(db.merged_worst_endpoints.begin(), db.merged_worst_endpoints.end(),
                   [&](int a, int b) {
                     return db.merged_setup_slack[static_cast<size_t>(a)] <
                            db.merged_setup_slack[static_cast<size_t>(b)];
                   });
  if (static_cast<int>(db.merged_worst_endpoints.size()) > options.nworst) {
    db.merged_worst_endpoints.resize(static_cast<size_t>(options.nworst));
  }
  return db;
}

}  // namespace mintc::report
