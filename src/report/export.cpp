#include "report/export.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "base/log.h"
#include "base/strings.h"
#include "base/table.h"
#include "obs/export.h"
#include "report/html.h"
#include "viz/svg.h"

namespace mintc::report {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using obs::json_escape;
using obs::json_number;

obs::RunMetadata meta_for(const SlackDB& db) {
  obs::RunMetadata meta = obs::run_metadata();
  meta.circuit = db.circuit;
  // The corner is part of the run identity: the slow and fast corners of the
  // same circuit+schedule are different analyses and must never share a
  // cache key, so the derating settings are mixed into the hash alongside
  // the schedule text (regression-tested in report_tests).
  meta.schedule_hash = obs::hash_hex(obs::Fnv1a()
                                         .str(db.schedule.to_string())
                                         .str(db.corner)
                                         .digest());
  meta.corner = db.corner;
  meta.wall_seconds = 0.0;  // stamp at export time
  return meta;
}

std::string fmt_or_dash(double v, int decimals = 3) {
  if (v == kInf) return "-";
  if (v == -kInf) return "-inf";
  return fmt_time(v, decimals);
}

// ---------------------------------------------------------------- JSON --

std::string hist_json(const HistogramSummary& h) {
  std::ostringstream out;
  out << "{\"count\": " << h.count << ", \"sum\": " << json_number(h.sum)
      << ", \"min\": " << json_number(h.min) << ", \"max\": " << json_number(h.max)
      << ", \"p50\": " << json_number(h.p50) << ", \"p95\": " << json_number(h.p95)
      << ", \"p99\": " << json_number(h.p99) << ", \"bounds\": [";
  for (size_t i = 0; i < h.bounds.size(); ++i) {
    if (i) out << ", ";
    out << json_number(h.bounds[i]);
  }
  out << "], \"buckets\": [";
  for (size_t i = 0; i < h.buckets.size(); ++i) {
    if (i) out << ", ";
    out << h.buckets[i];
  }
  out << "]}";
  return out.str();
}

std::string endpoint_json(const EndpointRecord& r) {
  std::ostringstream out;
  out << "{\"element\": " << r.element << ", \"name\": \"" << json_escape(r.name)
      << "\", \"kind\": \"" << to_string(r.kind) << "\", \"phase\": " << r.phase
      << ", \"departure\": " << json_number(r.departure)
      << ", \"arrival\": " << json_number(r.arrival)
      << ", \"skew\": " << json_number(r.skew)
      << ", \"setup_slack\": " << json_number(r.setup_slack)
      << ", \"hold_slack\": " << json_number(r.hold_slack)
      << ", \"borrow\": " << json_number(r.borrow) << ", \"origin_path\": " << r.origin_path
      << ", \"origin_from\": " << r.origin_from << ", \"tight\": [";
  for (size_t i = 0; i < r.tight.size(); ++i) {
    if (i) out << ", ";
    out << "\"" << json_escape(r.tight[i]) << "\"";
  }
  out << "]}";
  return out.str();
}

std::string path_json(const PathRecord& r) {
  std::ostringstream out;
  out << "{\"path\": " << r.path << ", \"from\": \"" << json_escape(r.from)
      << "\", \"to\": \"" << json_escape(r.to) << "\", \"label\": \"" << json_escape(r.label)
      << "\", \"delay\": " << json_number(r.delay) << ", \"slack\": " << json_number(r.slack)
      << ", \"tight\": " << (r.tight ? "true" : "false") << "}";
  return out.str();
}

std::string chain_json(const BorrowChain& c) {
  std::ostringstream out;
  out << "{\"elements\": [";
  for (size_t i = 0; i < c.elements.size(); ++i) {
    if (i) out << ", ";
    out << c.elements[i];
  }
  out << "], \"paths\": [";
  for (size_t i = 0; i < c.paths.size(); ++i) {
    if (i) out << ", ";
    out << c.paths[i];
  }
  out << "], \"total_borrow\": " << json_number(c.total_borrow)
      << ", \"is_loop\": " << (c.is_loop ? "true" : "false") << "}";
  return out.str();
}

std::string int_list_json(const std::vector<int>& v) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) out << ", ";
    out << v[i];
  }
  out << "]";
  return out.str();
}

std::string summary_json(const SlackDB& db) {
  std::ostringstream out;
  out << "{\"circuit\": \"" << json_escape(db.circuit) << "\", \"corner\": \""
      << json_escape(db.corner) << "\", \"feasible\": " << (db.feasible ? "true" : "false")
      << ", \"tc\": " << json_number(db.tc)
      << ", \"num_constraints\": " << db.num_constraints
      << ", \"worst_setup_slack\": " << json_number(db.worst_setup_slack())
      << ", \"worst_hold_slack\": " << json_number(db.worst_hold_slack())
      << ", \"total_borrow\": " << json_number(db.total_borrow)
      << ", \"max_skew\": " << json_number(db.max_skew)
      << ", \"skew_tolerance\": " << json_number(db.skew_tolerance)
      << ", \"overlapping_phases\": [";
  for (size_t i = 0; i < db.overlapping_phases.size(); ++i) {
    if (i) out << ", ";
    out << "[" << db.overlapping_phases[i].first << ", " << db.overlapping_phases[i].second
        << "]";
  }
  out << "], \"schedule\": {\"cycle\": " << json_number(db.schedule.cycle) << ", \"start\": [";
  for (size_t i = 0; i < db.schedule.start.size(); ++i) {
    if (i) out << ", ";
    out << json_number(db.schedule.start[i]);
  }
  out << "], \"width\": [";
  for (size_t i = 0; i < db.schedule.width.size(); ++i) {
    if (i) out << ", ";
    out << json_number(db.schedule.width[i]);
  }
  out << "]}}";
  return out.str();
}

std::string report_body_json(const SlackDB& db) {
  std::ostringstream out;
  out << "{\"meta\": " << obs::run_metadata_json(meta_for(db))
      << ",\n \"summary\": " << summary_json(db) << ",\n \"endpoints\": [";
  for (size_t i = 0; i < db.endpoints.size(); ++i) {
    out << (i ? ",\n   " : "\n   ") << endpoint_json(db.endpoints[i]);
  }
  out << "],\n \"paths\": [";
  for (size_t i = 0; i < db.paths.size(); ++i) {
    out << (i ? ",\n   " : "\n   ") << path_json(db.paths[i]);
  }
  out << "],\n \"worst_endpoints\": " << int_list_json(db.worst_endpoints)
      << ",\n \"worst_paths\": " << int_list_json(db.worst_paths)
      << ",\n \"borrow_chains\": [";
  for (size_t i = 0; i < db.borrow_chains.size(); ++i) {
    out << (i ? ",\n   " : "\n   ") << chain_json(db.borrow_chains[i]);
  }
  out << "],\n \"histograms\": {\"setup_slack\": " << hist_json(db.setup_hist)
      << ", \"borrow\": " << hist_json(db.borrow_hist) << "}}";
  return out.str();
}

// --------------------------------------------------------------- table --

std::string chain_names(const SlackDB& db, const BorrowChain& c) {
  std::string out;
  for (size_t i = 0; i < c.elements.size(); ++i) {
    if (i) out += " <- ";
    out += db.endpoints[static_cast<size_t>(c.elements[i])].name;
  }
  if (c.is_loop) out += " (loop)";
  return out;
}

// ---------------------------------------------------------------- HTML --


/// Vertical-bar histogram as inline SVG. Buckets entirely at or below zero
/// (violations) render in the status color; tooltips carry exact ranges.
std::string histogram_svg(const HistogramSummary& h, const char* series_var,
                          const char* unit) {
  std::ostringstream out;
  // Drop the trailing +inf bucket when empty (always, for data-fit bounds).
  size_t nb = h.buckets.size();
  while (nb > 1 && h.buckets[nb - 1] == 0) --nb;
  const double w = 640.0, hgt = 200.0, ml = 40.0, mr = 10.0, mt = 14.0, mb = 34.0;
  out << "<svg viewBox=\"0 0 " << fmt_time(w, 0) << " " << fmt_time(hgt, 0)
      << "\" width=\"" << fmt_time(w, 0) << "\" role=\"img\">\n";
  if (h.count == 0 || nb == 0) {
    out << "  <text x=\"20\" y=\"30\" fill=\"var(--text-2)\" font-size=\"12\">no data</text>\n"
        << "</svg>\n";
    return out.str();
  }
  long maxc = 1;
  for (size_t b = 0; b < nb; ++b) maxc = std::max(maxc, h.buckets[b]);
  const double plot_w = w - ml - mr, plot_h = hgt - mt - mb;
  const double bw = plot_w / static_cast<double>(nb);
  const auto edge = [&](size_t k) {  // bucket k covers (edge(k), edge(k+1)]
    if (k == 0) return h.min;
    if (k - 1 < h.bounds.size()) return h.bounds[k - 1];
    return h.max;
  };
  // Recessive grid: quarter lines.
  for (int g = 0; g <= 4; ++g) {
    const double y = mt + plot_h * g / 4.0;
    out << "  <line x1=\"" << fmt_time(ml, 1) << "\" y1=\"" << fmt_time(y, 1) << "\" x2=\""
        << fmt_time(w - mr, 1) << "\" y2=\"" << fmt_time(y, 1)
        << "\" stroke=\"var(--grid)\"/>\n";
  }
  out << "  <text x=\"4\" y=\"" << fmt_time(mt + 4.0, 1)
      << "\" fill=\"var(--text-2)\" font-size=\"11\">" << maxc << "</text>\n";
  for (size_t b = 0; b < nb; ++b) {
    const double frac = static_cast<double>(h.buckets[b]) / static_cast<double>(maxc);
    const double bar_h = plot_h * frac;
    const double x = ml + bw * static_cast<double>(b) + 1.0;  // 2px gap between bars
    const double y = mt + plot_h - bar_h;
    const bool violation = edge(b + 1) <= 0.0;
    out << "  <rect x=\"" << fmt_time(x, 1) << "\" y=\"" << fmt_time(y, 1) << "\" width=\""
        << fmt_time(bw - 2.0, 1) << "\" height=\"" << fmt_time(bar_h, 1) << "\" rx=\"2\" fill=\""
        << (violation ? "var(--bad)" : series_var) << "\">"
        << "<title>(" << fmt_time(edge(b)) << ", " << fmt_time(edge(b + 1)) << "] " << unit
        << ": " << h.buckets[b] << "</title></rect>\n";
    if (h.buckets[b] == maxc) {  // selective direct label: the mode only
      out << "  <text x=\"" << fmt_time(x + (bw - 2.0) / 2.0, 1) << "\" y=\""
          << fmt_time(y - 3.0, 1)
          << "\" text-anchor=\"middle\" fill=\"var(--text-2)\" font-size=\"11\">" << maxc
          << "</text>\n";
    }
  }
  // Baseline + x tick labels (about six, at bucket edges).
  out << "  <line x1=\"" << fmt_time(ml, 1) << "\" y1=\"" << fmt_time(mt + plot_h, 1)
      << "\" x2=\"" << fmt_time(w - mr, 1) << "\" y2=\"" << fmt_time(mt + plot_h, 1)
      << "\" stroke=\"var(--border)\"/>\n";
  const size_t step = std::max<size_t>(1, nb / 6);
  for (size_t k = 0; k <= nb; k += step) {
    const double x = ml + bw * static_cast<double>(k);
    out << "  <text x=\"" << fmt_time(x, 1) << "\" y=\"" << fmt_time(hgt - mb + 16.0, 1)
        << "\" text-anchor=\"middle\" fill=\"var(--text-2)\" font-size=\"11\">"
        << fmt_time(edge(k), 2) << "</text>\n";
  }
  out << "</svg>\n";
  return out.str();
}

/// Borrow chains as horizontal segmented bars: one row per chain, segment
/// width proportional to each latch's borrow, 2px gaps between segments.
std::string borrow_chains_svg(const SlackDB& db) {
  std::ostringstream out;
  const size_t shown = std::min<size_t>(db.borrow_chains.size(), 12);
  const double w = 640.0, row_h = 26.0, ml = 150.0, mr = 60.0;
  const double hgt = row_h * static_cast<double>(shown) + 8.0;
  double max_total = 0.0;
  for (const BorrowChain& c : db.borrow_chains) max_total = std::max(max_total, c.total_borrow);
  out << "<svg viewBox=\"0 0 " << fmt_time(w, 0) << " " << fmt_time(hgt, 0) << "\" width=\""
      << fmt_time(w, 0) << "\" role=\"img\">\n";
  if (shown == 0 || max_total <= 0.0) {
    out << "  <text x=\"20\" y=\"20\" fill=\"var(--text-2)\" font-size=\"12\">"
           "no latch borrows time under this schedule</text>\n</svg>\n";
    return out.str();
  }
  const double plot_w = w - ml - mr;
  for (size_t r = 0; r < shown; ++r) {
    const BorrowChain& c = db.borrow_chains[r];
    const double y = 4.0 + row_h * static_cast<double>(r);
    const EndpointRecord& head = db.endpoints[static_cast<size_t>(c.elements.front())];
    std::string label = head.name;
    if (c.elements.size() > 1) label += " +" + std::to_string(c.elements.size() - 1);
    if (c.is_loop) label += " (loop)";
    out << "  <text x=\"" << fmt_time(ml - 8.0, 1) << "\" y=\"" << fmt_time(y + 15.0, 1)
        << "\" text-anchor=\"end\" fill=\"var(--text-1)\" font-size=\"12\">"
        << html_escape(label) << "</text>\n";
    double x = ml;
    for (const int e : c.elements) {
      const EndpointRecord& seg = db.endpoints[static_cast<size_t>(e)];
      const double seg_w = plot_w * seg.borrow / max_total;
      if (seg_w <= 0.5) continue;
      out << "  <rect x=\"" << fmt_time(x, 1) << "\" y=\"" << fmt_time(y + 5.0, 1)
          << "\" width=\"" << fmt_time(std::max(1.0, seg_w - 2.0), 1)
          << "\" height=\"14\" rx=\"2\" fill=\"var(--series-2)\"><title>"
          << html_escape(seg.name) << " (phi" << seg.phase << "): borrow "
          << fmt_time(seg.borrow) << "</title></rect>\n";
      x += seg_w;
    }
    out << "  <text x=\"" << fmt_time(x + 6.0, 1) << "\" y=\"" << fmt_time(y + 15.0, 1)
        << "\" fill=\"var(--text-2)\" font-size=\"11\">" << fmt_time(c.total_borrow)
        << "</text>\n";
  }
  out << "</svg>\n";
  return out.str();
}

// html_escape / dashboard CSS / html_head / tile live in report/html.h, shared
// with the serve layer's live status dashboard.

std::string meta_line(const SlackDB& db) {
  const obs::RunMetadata meta = meta_for(db);
  std::ostringstream out;
  out << "<div class=\"meta\">" << html_escape(meta.tool) << " &middot; schedule "
      << html_escape(meta.schedule_hash) << " &middot; " << db.num_constraints
      << " constraints &middot; built in " << fmt_time(db.build_seconds * 1e3, 2)
      << " ms</div>\n";
  return out.str();
}

void endpoint_table_html(std::ostringstream& out, const SlackDB& db,
                         const std::vector<int>& ids) {
  out << "<table>\n<tr><th>endpoint</th><th>kind</th><th>phase</th><th>arrival</th>"
         "<th>departure</th><th>skew</th><th>setup slack</th><th>hold slack</th>"
         "<th>borrow</th><th>tight</th></tr>\n";
  for (const int id : ids) {
    const EndpointRecord& r = db.endpoints[static_cast<size_t>(id)];
    std::string tight;
    for (size_t i = 0; i < r.tight.size(); ++i) {
      if (i) tight += " ";
      tight += r.tight[i];
    }
    out << "<tr><td>" << html_escape(r.name) << "</td><td>" << to_string(r.kind)
        << "</td><td>phi" << r.phase << "</td><td>" << fmt_or_dash(r.arrival) << "</td><td>"
        << fmt_time(r.departure) << "</td><td>" << fmt_time(r.skew) << "</td><td"
        << (r.setup_slack < 0 ? " class=\"bad\"" : "")
        << ">" << fmt_or_dash(r.setup_slack) << "</td><td"
        << (r.hold_slack < 0 ? " class=\"bad\"" : "") << ">" << fmt_or_dash(r.hold_slack)
        << "</td><td>" << fmt_time(r.borrow) << "</td><td>" << tight << "</td></tr>\n";
  }
  out << "</table>\n";
}

}  // namespace

std::string report_json(const SlackDB& db) { return report_body_json(db) + "\n"; }

std::string report_table(const SlackDB& db) {
  std::ostringstream out;
  out << "== timing signoff report: " << db.circuit;
  if (!db.corner.empty()) out << " @ " << db.corner;
  out << " ==\n";
  out << (db.feasible ? "PASS" : "FAIL") << "  Tc = " << fmt_time(db.tc, 6) << "  ("
      << db.num_constraints << " constraints, worst setup slack "
      << fmt_or_dash(db.worst_setup_slack()) << ", worst hold slack "
      << fmt_or_dash(db.worst_hold_slack()) << ", total borrow " << fmt_time(db.total_borrow)
      << ")\n";
  out << "clock skew: max per-endpoint " << fmt_time(db.max_skew) << ", uniform tolerance "
      << fmt_time(db.skew_tolerance) << "\n";
  if (!db.overlapping_phases.empty()) {
    out << "overlapping phases:";
    for (const auto& [i, j] : db.overlapping_phases) {
      out << " phi" << i << "/phi" << j;
    }
    out << "\n";
  }

  out << "\nworst " << db.worst_endpoints.size() << " endpoints by setup slack:\n";
  TextTable endpoints({"endpoint", "kind", "phase", "arrival", "departure", "skew",
                       "setup slack", "hold slack", "borrow", "tight"});
  for (const int id : db.worst_endpoints) {
    const EndpointRecord& r = db.endpoints[static_cast<size_t>(id)];
    std::string tight;
    for (size_t i = 0; i < r.tight.size(); ++i) {
      if (i) tight += ",";
      tight += r.tight[i];
    }
    endpoints.add_row({r.name, to_string(r.kind), "phi" + std::to_string(r.phase),
                       fmt_or_dash(r.arrival), fmt_time(r.departure), fmt_time(r.skew),
                       fmt_or_dash(r.setup_slack), fmt_or_dash(r.hold_slack),
                       fmt_time(r.borrow), tight});
  }
  out << endpoints.to_string();

  if (!db.worst_paths.empty()) {
    out << "\nworst " << db.worst_paths.size() << " paths by propagation slack:\n";
    TextTable paths({"path", "block", "delay", "slack", "critical"});
    for (const int id : db.worst_paths) {
      const PathRecord& r = db.paths[static_cast<size_t>(id)];
      paths.add_row({r.from + "->" + r.to, r.label, fmt_time(r.delay), fmt_time(r.slack),
                     r.tight ? "yes" : ""});
    }
    out << paths.to_string();
  }

  if (!db.borrow_chains.empty()) {
    out << "\ntime-borrowing chains (total " << fmt_time(db.total_borrow) << "):\n";
    for (const BorrowChain& c : db.borrow_chains) {
      out << "  " << chain_names(db, c) << "  borrow " << fmt_time(c.total_borrow) << "\n";
    }
  }

  out << "\nsetup-slack distribution: p50 " << fmt_time(db.setup_hist.p50) << ", p95 "
      << fmt_time(db.setup_hist.p95) << ", p99 " << fmt_time(db.setup_hist.p99) << ", min "
      << fmt_time(db.setup_hist.min) << ", max " << fmt_time(db.setup_hist.max) << "\n";
  return out.str();
}

std::string report_html(const Circuit& circuit, const SlackDB& db) {
  std::ostringstream out;
  std::string title = "mintc signoff: " + db.circuit;
  if (!db.corner.empty()) title += " @ " + db.corner;
  out << html_head(title);
  out << "<h1>" << html_escape(db.circuit)
      << (db.corner.empty() ? "" : " <small>@ " + html_escape(db.corner) + "</small>")
      << " <span class=\"badge " << (db.feasible ? "pass\">PASS &#10003;" : "fail\">FAIL &#10007;")
      << "</span></h1>\n";
  out << meta_line(db);

  out << "  <div class=\"tiles\">\n";
  tile(out, fmt_time(db.tc, 4), "cycle time Tc");
  tile(out, fmt_or_dash(db.worst_setup_slack()), "worst setup slack",
       db.worst_setup_slack() < 0);
  tile(out, fmt_or_dash(db.worst_hold_slack()), "worst hold slack",
       db.worst_hold_slack() < 0);
  tile(out, fmt_time(db.total_borrow), "total borrowed time");
  tile(out, fmt_time(db.skew_tolerance), "uniform skew tolerance");
  tile(out, std::to_string(db.num_constraints), "constraints");
  tile(out, std::to_string(db.endpoints.size()), "endpoints");
  out << "  </div>\n";

  if (!db.overlapping_phases.empty()) {
    out << "<section><h2>Overlapping phases</h2><div>";
    for (size_t i = 0; i < db.overlapping_phases.size(); ++i) {
      if (i) out << ", ";
      out << "phi" << db.overlapping_phases[i].first << " &cap; phi"
          << db.overlapping_phases[i].second;
    }
    out << "</div><div class=\"note\">Overlap is legal between phases with no direct "
           "combinational path (K<sub>ij</sub> = 0) &mdash; the paper's GaAs schedule "
           "overlaps phi3 with phi1 this way.</div></section>\n";
  }

  if (db.analysis.converged && !db.analysis.fixpoint.departure.empty()) {
    out << "<section><h2>Timing diagram</h2><div class=\"figure\">"
        << viz::svg_timing_diagram(circuit, db.schedule, db.analysis.fixpoint.departure)
        << "</div></section>\n";
  }

  out << "<section><h2>Setup-slack distribution</h2>"
      << histogram_svg(db.setup_hist, "var(--series-1)", "endpoints")
      << "<div class=\"note\">p50 " << fmt_time(db.setup_hist.p50) << " &middot; p95 "
      << fmt_time(db.setup_hist.p95) << " &middot; p99 " << fmt_time(db.setup_hist.p99)
      << " &middot; bars at or below zero (violations) in red</div></section>\n";

  out << "<section><h2>Time borrowing</h2>" << borrow_chains_svg(db);
  if (db.borrow_chains.size() > 12) {
    out << "<div class=\"note\">showing 12 of " << db.borrow_chains.size()
        << " chains</div>";
  }
  out << "<div class=\"note\">Each row is a chain of latches whose eq. (17) departures "
         "derive from one another; segment width is each latch's borrow max(0, D<sub>i</sub>)."
         "</div></section>\n";

  out << "<section><h2>Worst endpoints</h2>\n";
  endpoint_table_html(out, db, db.worst_endpoints);
  out << "</section>\n";

  if (!db.worst_paths.empty()) {
    out << "<section><h2>Worst paths</h2>\n<table>\n"
           "<tr><th>path</th><th>block</th><th>delay</th><th>slack</th><th>critical</th>"
           "</tr>\n";
    for (const int id : db.worst_paths) {
      const PathRecord& r = db.paths[static_cast<size_t>(id)];
      out << "<tr><td>" << html_escape(r.from) << " &rarr; " << html_escape(r.to)
          << "</td><td>" << html_escape(r.label) << "</td><td>" << fmt_time(r.delay)
          << "</td><td" << (r.tight ? " class=\"bad\"" : "") << ">" << fmt_time(r.slack)
          << "</td><td>" << (r.tight ? "yes" : "") << "</td></tr>\n";
    }
    out << "</table>\n</section>\n";
  }

  if (!db.analysis.provenance.empty()) {
    out << "<section><h2>Tight constraints</h2>\n<table>\n"
           "<tr><th>kind</th><th>constraint</th><th>slack</th></tr>\n";
    for (const sta::TightConstraint& t : db.analysis.provenance.tight) {
      out << "<tr><td>" << html_escape(t.kind) << "</td><td>" << html_escape(t.name)
          << "</td><td>" << fmt_time(t.slack) << "</td></tr>\n";
    }
    out << "</table>\n<div class=\"note\">critical chain: "
        << html_escape(db.analysis.provenance.chain_to_string(circuit))
        << "</div></section>\n";
  }

  out << "</body>\n</html>\n";
  return out.str();
}

std::string signoff_json(const SignoffDB& db) {
  std::ostringstream out;
  out << "{\"meta\": "
      << obs::run_metadata_json(db.corners.empty() ? obs::run_metadata()
                                                   : meta_for(db.corners.front()))
      << ",\n \"all_pass\": " << (db.all_pass ? "true" : "false") << ",\n \"corners\": [";
  for (size_t i = 0; i < db.corners.size(); ++i) {
    out << (i ? ",\n  " : "\n  ") << report_body_json(db.corners[i]);
  }
  out << "],\n \"merged\": {\"setup_slack\": [";
  for (size_t i = 0; i < db.merged_setup_slack.size(); ++i) {
    if (i) out << ", ";
    out << json_number(db.merged_setup_slack[i]);
  }
  out << "], \"setup_corner\": " << int_list_json(db.merged_setup_corner)
      << ", \"hold_slack\": [";
  for (size_t i = 0; i < db.merged_hold_slack.size(); ++i) {
    if (i) out << ", ";
    out << json_number(db.merged_hold_slack[i]);
  }
  out << "], \"hold_corner\": " << int_list_json(db.merged_hold_corner)
      << ", \"worst_endpoints\": " << int_list_json(db.merged_worst_endpoints) << "}}\n";
  return out.str();
}

std::string signoff_table(const SignoffDB& db) {
  std::ostringstream out;
  out << "== multi-corner signoff: " << (db.all_pass ? "PASS" : "FAIL") << " ==\n";
  TextTable corners({"corner", "result", "worst setup", "worst hold", "total borrow"});
  for (const SlackDB& c : db.corners) {
    corners.add_row({c.corner, c.feasible ? "pass" : "FAIL", fmt_or_dash(c.worst_setup_slack()),
                     fmt_or_dash(c.worst_hold_slack()), fmt_time(c.total_borrow)});
  }
  out << corners.to_string();
  if (!db.corners.empty()) {
    out << "\nmerged worst-corner endpoints:\n";
    TextTable merged({"endpoint", "setup slack", "@corner", "hold slack", "@corner"});
    for (const int id : db.merged_worst_endpoints) {
      const size_t i = static_cast<size_t>(id);
      const EndpointRecord& r = db.corners.front().endpoints[i];
      const auto corner_name = [&](int c) {
        return c < 0 ? std::string("-") : db.corners[static_cast<size_t>(c)].corner;
      };
      merged.add_row({r.name, fmt_or_dash(db.merged_setup_slack[i]),
                      corner_name(db.merged_setup_corner[i]),
                      fmt_or_dash(db.merged_hold_slack[i]),
                      corner_name(db.merged_hold_corner[i])});
    }
    out << merged.to_string();
  }
  return out.str();
}

std::string signoff_html(const Circuit& circuit, const SignoffDB& db) {
  std::ostringstream out;
  out << html_head("mintc multi-corner signoff: " + circuit.name());
  out << "<h1>" << html_escape(circuit.name()) << " <span class=\"badge "
      << (db.all_pass ? "pass\">PASS &#10003;" : "fail\">FAIL &#10007;") << "</span></h1>\n";
  out << "<div class=\"meta\">" << html_escape(obs::run_metadata().tool) << " &middot; "
      << db.corners.size() << " corners</div>\n";

  out << "<section><h2>Corners</h2>\n<table>\n"
         "<tr><th>corner</th><th>result</th><th>worst setup slack</th>"
         "<th>worst hold slack</th><th>total borrow</th></tr>\n";
  for (const SlackDB& c : db.corners) {
    out << "<tr><td>" << html_escape(c.corner) << "</td><td"
        << (c.feasible ? ">pass" : " class=\"bad\">FAIL") << "</td><td"
        << (c.worst_setup_slack() < 0 ? " class=\"bad\"" : "") << ">"
        << fmt_or_dash(c.worst_setup_slack()) << "</td><td"
        << (c.worst_hold_slack() < 0 ? " class=\"bad\"" : "") << ">"
        << fmt_or_dash(c.worst_hold_slack()) << "</td><td>" << fmt_time(c.total_borrow)
        << "</td></tr>\n";
  }
  out << "</table>\n</section>\n";

  if (!db.corners.empty()) {
    out << "<section><h2>Merged worst-corner endpoints</h2>\n<table>\n"
           "<tr><th>endpoint</th><th>setup slack</th><th>@corner</th><th>hold slack</th>"
           "<th>@corner</th></tr>\n";
    for (const int id : db.merged_worst_endpoints) {
      const size_t i = static_cast<size_t>(id);
      const EndpointRecord& r = db.corners.front().endpoints[i];
      const auto corner_name = [&](int c) {
        return c < 0 ? std::string("-") : db.corners[static_cast<size_t>(c)].corner;
      };
      out << "<tr><td>" << html_escape(r.name) << "</td><td"
          << (db.merged_setup_slack[i] < 0 ? " class=\"bad\"" : "") << ">"
          << fmt_or_dash(db.merged_setup_slack[i]) << "</td><td>"
          << html_escape(corner_name(db.merged_setup_corner[i])) << "</td><td"
          << (db.merged_hold_slack[i] < 0 ? " class=\"bad\"" : "") << ">"
          << fmt_or_dash(db.merged_hold_slack[i]) << "</td><td>"
          << html_escape(corner_name(db.merged_hold_corner[i])) << "</td></tr>\n";
    }
    out << "</table>\n</section>\n";
  }

  out << "</body>\n</html>\n";
  return out.str();
}

bool write_report_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    log_warn() << "report: cannot write '" << path << "'";
    return false;
  }
  const bool ok = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  std::fclose(f);
  return ok;
}

}  // namespace mintc::report
