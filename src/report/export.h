// Exporters for the SlackDB, in the style of obs/export: three output
// shapes per database —
//   * machine JSON, stamped with the shared obs::RunMetadata header
//     (tool version, circuit, schedule hash, wall time);
//   * a column-aligned text report (base/table) for terminal signoff;
//   * a SELF-CONTAINED single-file HTML dashboard: inline CSS (light and
//     dark via prefers-color-scheme), the viz/svg timing diagram, a slack
//     histogram and a borrow-chain chart as inline SVG, and the endpoint /
//     path / tight-constraint tables. No external assets, scripts or
//     fonts — the file opens offline and survives being attached to a CI
//     artifact or a bug report.
// Multi-corner variants render the SignoffDB's merged worst-corner view.
#pragma once

#include <string>

#include "model/circuit.h"
#include "report/slackdb.h"

namespace mintc::report {

/// Machine JSON: meta header, summary, endpoint/path records, worst lists,
/// borrow chains and histogram summaries.
std::string report_json(const SlackDB& db);

/// Terminal report: summary block, top-K endpoint and path tables, borrow
/// chains and histogram quantiles.
std::string report_table(const SlackDB& db);

/// The dashboard. `circuit` must be the circuit the database was built
/// from (it supplies the timing-diagram rendering and element names).
std::string report_html(const Circuit& circuit, const SlackDB& db);

/// Multi-corner exports: per-corner summaries plus the merged
/// worst-corner-per-endpoint view.
std::string signoff_json(const SignoffDB& db);
std::string signoff_table(const SignoffDB& db);
std::string signoff_html(const Circuit& circuit, const SignoffDB& db);

/// Write `content` to `path`; false (with a log warning) when it cannot.
bool write_report_file(const std::string& path, const std::string& content);

}  // namespace mintc::report
