// SlackDB — the signoff-grade timing report database.
//
// PR 3 gave the tree observability *primitives* (metrics, spans, constraint
// provenance); this module materializes the questions a designer actually
// asks of a latch-based design, PrimeTime-style:
//   * where is the slack?        per-endpoint setup/hold slack records,
//                                per-path propagation slack, histograms;
//   * who borrows time?          per-latch borrow max(0, D_i) — how far the
//                                data departs after the enabling edge, i.e.
//                                how much of the phase the latch "borrowed"
//                                across the cycle boundary — plus borrow
//                                chains following the eq. (17) arg-max
//                                predecessors, and the loop totals;
//   * what are the N worst?      top-K endpoints and paths, -nworst style.
//
// A SlackDB is built by running the *existing* engines once (check_schedule
// with provenance + hold, find_critical_segments, generate_lp for the row
// census) and flattening their answers into plain records — a strictly
// opt-in pass that never executes inside engine hot loops. Exporters live
// in report/export.h (JSON / text table / self-contained HTML dashboard).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "model/circuit.h"
#include "sta/analysis.h"
#include "sta/corners.h"

namespace mintc::report {

struct SlackDbOptions {
  int nworst = 10;          // size of the worst-endpoint / worst-path lists
  bool check_hold = true;   // include the short-path (hold) records
  int histogram_buckets = 12;
  double eps = 1e-7;        // analysis tolerance (AnalysisOptions::eps)
  double tight_eps = 1e-6;  // tightness threshold for paths / constraints
};

/// One synchronizing element's complete timing record.
struct EndpointRecord {
  int element = -1;
  std::string name;
  ElementKind kind = ElementKind::kLatch;
  int phase = 1;
  double departure = 0.0;    // D_i, relative to the start of its phase
  double arrival = 0.0;      // A_i (-inf when no fanin)
  double skew = 0.0;         // σ_i, clock uncertainty charged at this capture
  double setup_slack = 0.0;
  double hold_slack = 0.0;   // +inf when unchecked / no fanin
  /// Time borrowed from the phase: max(0, D_i) for latches (data flowed
  /// through the transparent latch D_i past the enabling edge), 0 for
  /// flip-flops (departure pinned to the edge).
  double borrow = 0.0;
  int origin_path = -1;      // eq. (17) arg-max path (provenance); -1 = clamp
  int origin_from = -1;      // source element of that path (-1 = clamp)
  /// Tight constraint classes at this endpoint ("L1" zero setup slack,
  /// "L2" departure carried by a propagation edge, "L3" departs at the edge).
  std::vector<std::string> tight;
};

/// One combinational path's propagation-slack record.
struct PathRecord {
  int path = -1;
  std::string from, to, label;
  double delay = 0.0;   // Δ_ij
  double slack = 0.0;   // L2R slack at the fixpoint (0 = critical segment)
  bool tight = false;
};

/// A maximal walk of borrowing latches along eq. (17) arg-max predecessors,
/// worst (most downstream) latch first. Ends at a latch that departs on its
/// enabling edge, or closes a critical loop.
struct BorrowChain {
  std::vector<int> elements;
  std::vector<int> paths;        // connecting path ids (size-1; size if loop)
  double total_borrow = 0.0;     // sum of member borrows
  bool is_loop = false;
};

/// Plain-data snapshot of an obs::Histogram over one slack population.
struct HistogramSummary {
  std::vector<double> bounds;    // ascending upper bounds
  std::vector<long> buckets;     // bounds.size() + 1 (+inf bucket)
  long count = 0;
  double sum = 0.0, min = 0.0, max = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

struct SlackDB {
  std::string circuit;
  std::string corner;            // corner id ("" for single-corner builds)
  ClockSchedule schedule;
  bool feasible = false;
  double tc = 0.0;
  int num_constraints = 0;       // LP row census (the paper's "91" for GaAs)
  /// Phase pairs (i, j), i < j, whose active intervals overlap modulo Tc
  /// (e.g. the GaAs phi3-inside-phi1 schedule reports {1, 3}).
  std::vector<std::pair<int, int>> overlapping_phases;

  std::vector<EndpointRecord> endpoints;  // index-aligned with the circuit
  std::vector<PathRecord> paths;
  std::vector<int> worst_endpoints;  // element ids, worst setup slack first
  std::vector<int> worst_paths;      // path ids, smallest slack first
  std::vector<BorrowChain> borrow_chains;  // sorted by total borrow, desc
  double total_borrow = 0.0;         // sum over all endpoints
  /// Skew-tolerance summary: the largest per-endpoint σ and the additional
  /// UNIFORM skew the design absorbs before its worst setup slack goes
  /// negative (slack is linear in a uniform skew increment, so this is just
  /// the worst slack itself when feasible; 0 when already failing).
  double max_skew = 0.0;
  double skew_tolerance = 0.0;

  HistogramSummary setup_hist;   // finite setup slacks
  HistogramSummary borrow_hist;  // latch borrow amounts

  /// The underlying analysis (slacks here are authoritative: every record
  /// above is copied from it, which report_tests cross-checks to 1e-9).
  sta::TimingReport analysis;
  double build_seconds = 0.0;

  double worst_setup_slack() const;
  double worst_hold_slack() const;
};

/// Build the database for one design point. Runs analysis (+hold, +
/// provenance), the critical-segment scan and the constraint census once;
/// also mirrors the headline numbers into the process-wide metrics registry
/// (gauges report.* and histogram report.setup_slack, labeled by circuit).
SlackDB build_slackdb(const Circuit& circuit, const ClockSchedule& schedule,
                      const SlackDbOptions& options = {});

/// Multi-corner signoff: one SlackDB per corner plus the merged
/// worst-corner view (per-endpoint minimum slack over all corners).
struct SignoffDB {
  std::vector<SlackDB> corners;
  /// Per element: worst (minimum) slack across corners, and which corner.
  std::vector<double> merged_setup_slack;
  std::vector<int> merged_setup_corner;
  std::vector<double> merged_hold_slack;
  std::vector<int> merged_hold_corner;
  std::vector<int> merged_worst_endpoints;  // by merged setup slack
  bool all_pass = false;
};

SignoffDB build_signoff(const Circuit& circuit, const ClockSchedule& schedule,
                        const std::vector<sta::Corner>& corners = sta::standard_corners(),
                        const SlackDbOptions& options = {});

}  // namespace mintc::report
