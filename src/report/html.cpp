#include "report/html.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mintc::report {

namespace {

std::string fmt(double v, int digits = 1) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

// Compact axis/tooltip numbers: 2500000 -> "2.5M", 1500 -> "1.5k".
std::string fmt_compact(double v) {
  const double a = std::fabs(v);
  char buf[48];
  if (a >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3gG", v / 1e9);
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3gM", v / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3gk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  }
  return buf;
}

}  // namespace

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

// Shared stylesheet: palette roles as CSS custom properties, light values
// by default, dark values under prefers-color-scheme (the dashboards are
// static files — the OS setting selects the mode).
const char* dashboard_css() {
  return R"css(
  :root {
    color-scheme: light;
    --surface: #fcfcfb; --card: #ffffff; --border: #e3e2de; --grid: #e9e8e4;
    --text-1: #0b0b0b; --text-2: #52514e;
    --series-1: #2a78d6; --series-2: #eb6834;
    --good: #008300; --bad: #e34948;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      color-scheme: dark;
      --surface: #1a1a19; --card: #222221; --border: #3a3936; --grid: #31302d;
      --text-1: #ffffff; --text-2: #c3c2b7;
      --series-1: #3987e5; --series-2: #d95926;
      --good: #00a300; --bad: #e66767;
    }
  }
  body { background: var(--surface); color: var(--text-1);
         font: 14px/1.45 system-ui, sans-serif; margin: 24px auto; max-width: 1080px;
         padding: 0 16px; }
  h1 { font-size: 20px; margin: 0 0 4px; }
  h2 { font-size: 15px; margin: 0 0 8px; color: var(--text-1); }
  .meta { color: var(--text-2); font-size: 12px; margin-bottom: 16px; }
  .badge { display: inline-block; padding: 2px 10px; border-radius: 10px;
           font-weight: 600; font-size: 13px; color: #ffffff; vertical-align: 2px; }
  .badge.pass { background: var(--good); }
  .badge.fail { background: var(--bad); }
  .tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }
  .tile { background: var(--card); border: 1px solid var(--border);
          border-radius: 8px; padding: 10px 16px; min-width: 120px; }
  .tile .v { font-size: 22px; font-weight: 600; }
  .tile .v.bad { color: var(--bad); }
  .tile .k { font-size: 12px; color: var(--text-2); }
  section { background: var(--card); border: 1px solid var(--border);
            border-radius: 8px; padding: 14px 16px; margin: 14px 0; }
  .figure { background: #ffffff; border-radius: 4px; overflow-x: auto; }
  table { border-collapse: collapse; width: 100%; font-size: 13px; }
  th { text-align: left; color: var(--text-2); font-weight: 600;
       border-bottom: 1px solid var(--border); padding: 4px 10px 4px 0; }
  td { border-bottom: 1px solid var(--grid); padding: 4px 10px 4px 0;
       font-variant-numeric: tabular-nums; }
  td.bad { color: var(--bad); font-weight: 600; }
  .note { color: var(--text-2); font-size: 12px; margin-top: 6px; }
  .sparks { display: flex; flex-wrap: wrap; gap: 16px; }
  .spark .k { font-size: 12px; color: var(--text-2); }
)css";
}

std::string html_head(const std::string& title) {
  std::ostringstream out;
  out << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
      << "<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n"
      << "<title>" << html_escape(title) << "</title>\n<style>" << dashboard_css()
      << "</style>\n</head>\n<body>\n";
  return out.str();
}

void tile(std::ostringstream& out, const std::string& value, const std::string& key,
          bool bad) {
  out << "    <div class=\"tile\"><div class=\"v" << (bad ? " bad" : "") << "\">" << value
      << "</div><div class=\"k\">" << key << "</div></div>\n";
}

std::string sparkline_svg(const std::vector<double>& values, double width, double height) {
  std::ostringstream out;
  out << "<svg viewBox=\"0 0 " << fmt(width, 0) << " " << fmt(height, 0) << "\" width=\""
      << fmt(width, 0) << "\" height=\"" << fmt(height, 0) << "\" role=\"img\">\n";
  double lo = 0.0, hi = 0.0;
  bool any = false;
  for (const double v : values) {
    if (!std::isfinite(v)) continue;
    lo = any ? std::min(lo, v) : v;
    hi = any ? std::max(hi, v) : v;
    any = true;
  }
  if (!any || values.size() < 2) {
    out << "  <text x=\"4\" y=\"" << fmt(height / 2.0, 0)
        << "\" fill=\"var(--text-2)\" font-size=\"11\">no data</text>\n</svg>\n";
    return out.str();
  }
  if (hi - lo < 1e-12) hi = lo + 1.0;  // flat series draws mid-height
  const double mt = 4.0, mb = 4.0, ml = 2.0, mr = 44.0;
  const double plot_w = width - ml - mr, plot_h = height - mt - mb;
  const double dx = plot_w / static_cast<double>(values.size() - 1);
  // NaN gaps break the polyline into segments.
  bool open = false;
  double last_x = ml, last_y = mt + plot_h;
  for (size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) {
      if (open) out << "\" fill=\"none\" stroke=\"var(--series-1)\" stroke-width=\"1.5\"/>\n";
      open = false;
      continue;
    }
    const double x = ml + dx * static_cast<double>(i);
    const double y = mt + plot_h * (1.0 - (values[i] - lo) / (hi - lo));
    if (!open) out << "  <polyline points=\"";
    out << fmt(x, 1) << "," << fmt(y, 1) << " ";
    open = true;
    last_x = x;
    last_y = y;
  }
  if (open) out << "\" fill=\"none\" stroke=\"var(--series-1)\" stroke-width=\"1.5\"/>\n";
  // Label the most recent value next to the line's end.
  double last = 0.0;
  for (size_t i = values.size(); i-- > 0;) {
    if (std::isfinite(values[i])) {
      last = values[i];
      break;
    }
  }
  out << "  <circle cx=\"" << fmt(last_x, 1) << "\" cy=\"" << fmt(last_y, 1)
      << "\" r=\"2\" fill=\"var(--series-1)\"/>\n"
      << "  <text x=\"" << fmt(last_x + 5.0, 1) << "\" y=\"" << fmt(last_y + 4.0, 1)
      << "\" fill=\"var(--text-2)\" font-size=\"11\">" << fmt_compact(last)
      << "</text>\n</svg>\n";
  return out.str();
}

std::string bucket_bars_svg(const std::vector<double>& bounds,
                            const std::vector<long>& buckets, const std::string& unit) {
  std::ostringstream out;
  size_t nb = buckets.size();
  while (nb > 1 && buckets[nb - 1] == 0) --nb;
  long total = 0, maxc = 1;
  for (size_t b = 0; b < nb; ++b) {
    total += buckets[b];
    maxc = std::max(maxc, buckets[b]);
  }
  const double w = 640.0, hgt = 160.0, ml = 40.0, mr = 10.0, mt = 14.0, mb = 30.0;
  out << "<svg viewBox=\"0 0 " << fmt(w, 0) << " " << fmt(hgt, 0) << "\" width=\""
      << fmt(w, 0) << "\" role=\"img\">\n";
  if (total == 0 || nb == 0) {
    out << "  <text x=\"20\" y=\"30\" fill=\"var(--text-2)\" font-size=\"12\">no data"
           "</text>\n</svg>\n";
    return out.str();
  }
  const double plot_w = w - ml - mr, plot_h = hgt - mt - mb;
  const double bw = plot_w / static_cast<double>(nb);
  const auto lo_edge = [&](size_t b) { return b == 0 ? 0.0 : bounds[b - 1]; };
  for (int g = 0; g <= 4; ++g) {
    const double y = mt + plot_h * g / 4.0;
    out << "  <line x1=\"" << fmt(ml, 1) << "\" y1=\"" << fmt(y, 1) << "\" x2=\""
        << fmt(w - mr, 1) << "\" y2=\"" << fmt(y, 1) << "\" stroke=\"var(--grid)\"/>\n";
  }
  out << "  <text x=\"4\" y=\"" << fmt(mt + 4.0, 1)
      << "\" fill=\"var(--text-2)\" font-size=\"11\">" << maxc << "</text>\n";
  for (size_t b = 0; b < nb; ++b) {
    const double bar_h = plot_h * static_cast<double>(buckets[b]) / static_cast<double>(maxc);
    const double x = ml + bw * static_cast<double>(b) + 1.0;
    const double y = mt + plot_h - bar_h;
    out << "  <rect x=\"" << fmt(x, 1) << "\" y=\"" << fmt(y, 1) << "\" width=\""
        << fmt(std::max(1.0, bw - 2.0), 1) << "\" height=\"" << fmt(bar_h, 1)
        << "\" rx=\"2\" fill=\"var(--series-1)\"><title>(" << fmt_compact(lo_edge(b)) << ", "
        << (b < bounds.size() ? fmt_compact(bounds[b]) : std::string("+inf")) << "] "
        << html_escape(unit) << ": " << buckets[b] << "</title></rect>\n";
  }
  out << "  <line x1=\"" << fmt(ml, 1) << "\" y1=\"" << fmt(mt + plot_h, 1) << "\" x2=\""
      << fmt(w - mr, 1) << "\" y2=\"" << fmt(mt + plot_h, 1)
      << "\" stroke=\"var(--border)\"/>\n";
  const size_t step = std::max<size_t>(1, nb / 6);
  for (size_t k = 0; k < nb; k += step) {
    const double x = ml + bw * static_cast<double>(k) + bw / 2.0;
    out << "  <text x=\"" << fmt(x, 1) << "\" y=\"" << fmt(hgt - mb + 14.0, 1)
        << "\" text-anchor=\"middle\" fill=\"var(--text-2)\" font-size=\"11\">"
        << (k < bounds.size() ? fmt_compact(bounds[k]) : std::string("+inf"))
        << "</text>\n";
  }
  out << "</svg>\n";
  return out.str();
}

}  // namespace mintc::report
