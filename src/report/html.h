// Shared building blocks for the self-contained HTML dashboards: the signoff
// report (report/export.cpp) and the serve layer's live status page
// (serve/status.cpp) render with the same stylesheet and helpers so the two
// surfaces look and behave identically (light/dark via the OS setting, no
// external assets, no script dependencies).
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace mintc::report {

/// Escape &, <, >, " for text and attribute positions.
std::string html_escape(const std::string& s);

/// The dashboard stylesheet: palette roles as CSS custom properties (light
/// values by default, dark under prefers-color-scheme), tiles, sections,
/// tables, badges.
const char* dashboard_css();

/// "<!DOCTYPE html>...<style>...</style></head><body>" with `title` escaped
/// into <title>. Callers append content and close </body></html>.
std::string html_head(const std::string& title);

/// One metric tile (value over a small caption) into a .tiles flex row.
void tile(std::ostringstream& out, const std::string& value, const std::string& key,
          bool bad = false);

/// Inline-SVG sparkline of a series, oldest first; NaN entries are gaps.
/// Renders "no data" when nothing is finite. The final value is labeled.
std::string sparkline_svg(const std::vector<double>& values, double width = 240.0,
                          double height = 48.0);

/// Inline-SVG vertical-bar chart of histogram bucket counts. `bounds` are
/// the ascending upper bounds; `buckets` has bounds.size()+1 entries (last
/// = +inf). Trailing empty buckets are dropped for data-fit x bounds;
/// tooltips carry exact ranges in `unit`.
std::string bucket_bars_svg(const std::vector<double>& bounds,
                            const std::vector<long>& buckets, const std::string& unit);

}  // namespace mintc::report
