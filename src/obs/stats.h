// Per-stage engine accounting, shared by every solver result.
//
// EngineStats is threaded through FixpointResult / TimingReport / MlpResult
// so benches and the fuzzer can report where time goes. Cheap by
// construction: timers are read only at stage boundaries and edge
// relaxations are accumulated from CSR widths, never inside the innermost
// loop.
//
// Accounting invariant (asserted by absorb() and unit-tested): the named
// stages plus the three built-in stages (view build, shift build, solve)
// are *disjoint* sub-intervals of one engine invocation, so when
// wall_seconds is recorded,
//
//     view_build + shift_build + solve + sum(stages)  <=  wall  (+ jitter)
//
// In particular a stage must never re-report time that already rolled into
// solve_seconds — the pre-obs absorb() concatenated stage lists blindly,
// so absorbing a sub-stage whose stages duplicated its solve time silently
// inflated totals. consistent() makes that an observable error.
#pragma once

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace mintc {

struct EngineStats {
  double view_build_seconds = 0.0;   // TimingView construction (0 if reused)
  double shift_build_seconds = 0.0;  // ShiftTable construction
  double solve_seconds = 0.0;        // the iterative kernel stage
  /// Wall time of the whole engine invocation, measured around everything
  /// above; 0 when the engine did not record it.
  double wall_seconds = 0.0;
  int sweeps = 0;                    // full passes over the element set
  long edge_relaxations = 0;         // eq. (17) edge terms evaluated

  /// Additional named stages (e.g. "lp-solve", "hold-slack") in order.
  /// Adding a name twice accumulates into the existing entry, so absorbing
  /// the same sub-stage twice is visible as a doubled stage, not a
  /// duplicated row.
  std::vector<std::pair<std::string, double>> stages;

  void add_stage(const std::string& name, double seconds);

  /// Sum of the named stages.
  double stage_seconds() const;
  /// Everything accounted: view + shift + solve + named stages.
  double accounted_seconds() const;
  /// The accounting invariant: accounted <= wall (plus timer jitter).
  /// Trivially true when wall_seconds was not recorded.
  bool consistent(double tolerance_seconds = 1e-4) const;

  /// Merge counters and stages of a sub-stage into this one. The sub-stage's
  /// wall time is NOT added — the absorbing invocation's wall already covers
  /// it. Asserts (debug builds) that both sides satisfy consistent().
  void absorb(const EngineStats& other);
  std::string to_string() const;
};

/// Monotonic stopwatch for stage accounting.
class StageTimer {
 public:
  StageTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mintc
