#include "obs/history.h"

#include <algorithm>
#include <limits>

namespace mintc::obs {

HistoryRing::HistoryRing(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 2)) {
  ring_.reserve(capacity_);
}

void HistoryRing::record(Sample sample) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(sample));
  } else {
    ring_[head_] = std::move(sample);
    head_ = (head_ + 1) % capacity_;
  }
  ++total_;
}

std::vector<HistoryRing::Sample> HistoryRing::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<double> HistoryRing::series(const std::string& name) const {
  const std::vector<Sample> samples = snapshot();
  std::vector<double> out;
  out.reserve(samples.size());
  for (const Sample& sample : samples) {
    double v = std::numeric_limits<double>::quiet_NaN();
    for (const auto& [key, value] : sample.values) {
      if (key == name) {
        v = value;
        break;
      }
    }
    out.push_back(v);
  }
  return out;
}

std::size_t HistoryRing::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::size_t HistoryRing::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

void HistoryRing::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  total_ = 0;
}

}  // namespace mintc::obs
