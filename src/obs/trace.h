// Span-based tracer with near-zero cost when disabled.
//
// The tracer is a process-wide buffer of timestamped events — nested
// begin/end spans, instants and counter samples — designed around one hard
// requirement: when tracing is OFF, the hot loops must pay only a hoisted
// relaxed atomic load (engines read enabled() once per solve or sweep and
// branch on a local bool). When ON, recording takes a mutex and appends to
// a vector; that is fine for the diagnosis runs tracing exists for.
//
// Timestamps are microseconds since the tracer's construction (steady
// clock), clamped to be monotone in buffer order so exported traces always
// load cleanly in chrome://tracing (export.h renders the Chrome trace-event
// JSON).
//
// Usage:
//   obs::TraceSpan span("lp-solve", "opt");     // RAII begin/end pair
//   obs::Tracer::instance().counter("fixpoint.residual", r, "sta");
//
// A TraceSpan that recorded its begin event always records the matching end
// event, even if tracing is disabled in between — exported traces have
// balanced B/E events by construction (tested).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace mintc::obs {

enum class EventKind { kBegin, kEnd, kInstant, kCounter };

struct TraceEvent {
  EventKind kind = EventKind::kInstant;
  std::string name;
  std::string category;
  double ts_us = 0.0;   // microseconds since tracer epoch, monotone in order
  double value = 0.0;   // counter sample (kCounter only)
};

class Tracer {
 public:
  static Tracer& instance();

  /// The only call allowed on a hot path. Hoist the result into a local
  /// bool before a loop.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Drop all buffered events.
  void clear();

  /// Number of buffered events (use as a mark to export a suffix).
  size_t num_events() const;

  /// Record a span begin if enabled; returns whether it was recorded. Pass
  /// the result to end_span() so B/E events stay balanced across an
  /// enable/disable edge (TraceSpan does this automatically).
  bool begin_span(const std::string& name, const std::string& category = "mintc");
  /// Record the matching span end unconditionally.
  void end_span(const std::string& name, const std::string& category = "mintc");

  /// Point-in-time marker (no-op when disabled).
  void instant(const std::string& name, const std::string& category = "mintc");
  /// Sampled value — renders as a counter track in chrome://tracing
  /// (no-op when disabled).
  void counter(const std::string& name, double value, const std::string& category = "mintc");

  /// Copy of the buffered events, optionally only those from index `since`.
  std::vector<TraceEvent> snapshot(size_t since = 0) const;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  Tracer() = default;
  void record(EventKind kind, const std::string& name, const std::string& category,
              double value);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  double last_ts_us_ = 0.0;
  std::chrono::steady_clock::time_point epoch_ = std::chrono::steady_clock::now();
};

/// RAII span: begin at construction (if tracing is enabled), end at
/// destruction. Nest freely; chrome://tracing stacks nested spans.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "mintc")
      : name_(name), category_(category) {
    active_ = Tracer::instance().begin_span(name_, category_);
  }
  ~TraceSpan() {
    if (active_) Tracer::instance().end_span(name_, category_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  bool active_ = false;
};

}  // namespace mintc::obs
