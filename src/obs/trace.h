// Span-based tracer with near-zero cost when disabled, request-scoped
// trace-context propagation, and a bounded ring buffer.
//
// The tracer is a process-wide buffer of timestamped events — nested
// begin/end spans, instants and counter samples — designed around one hard
// requirement: when tracing is OFF, the hot loops must pay only a hoisted
// relaxed atomic load plus one thread-local read (engines read enabled()
// once per solve or sweep and branch on a local bool). When ON, recording
// takes a mutex and appends to the buffer; that is fine for the diagnosis
// runs tracing exists for.
//
// Two ways to turn recording on:
//   * set_enabled(true) — the classic process-wide switch (CLI --trace-out);
//   * a SAMPLED TraceContext installed on the current thread — how the serve
//     layer records exactly one request's spans without paying for the rest
//     of the traffic. The context carries a 64-bit trace id that is stamped
//     into every event the thread (and any worker it propagates the context
//     to via TraceContextScope) records, so one request's events can be
//     sliced out of the shared buffer afterwards.
//
// Buffering: by default the buffer is unbounded (one-shot CLI runs). A
// long-lived daemon calls set_capacity(N) to turn it into a ring — when
// full, the OLDEST events are dropped, a process metric
// (`trace.dropped_spans`) counts the loss, and snapshot() prepends a
// `trace.truncated` marker instant so consumers know the B/E stream may be
// unbalanced at the front (exports of a wrapped ring are explicitly marked
// rather than silently malformed).
//
// Timestamps are microseconds since the tracer's construction (steady
// clock), clamped to be monotone in buffer order so exported traces always
// load cleanly in chrome://tracing (export.h renders the Chrome trace-event
// JSON).
//
// Usage:
//   obs::TraceSpan span("lp-solve", "opt");     // RAII begin/end pair
//   obs::Tracer::instance().counter("fixpoint.residual", r, "sta");
//
// A TraceSpan that recorded its begin event always records the matching end
// event, even if tracing is disabled in between — exported traces have
// balanced B/E events by construction (tested).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/profiler.h"

namespace mintc::obs {

struct CostAccount;  // cost.h — charged through the context's cost pointer

/// Request-scoped trace identity, carried across the wire (serve protocol
/// "trace" field) and across threads (TraceContextScope). A context is
/// ACTIVE — i.e. forces recording on this thread — when it is sampled and
/// has a nonzero id.
///
/// `cost` rides along independently of sampling: the serve layer attributes
/// CPU/work to every telemetry-on request, not just the traced ones. The
/// account is owned by the request handler and outlives every task the
/// request forks (the engines join their pools before returning), so the
/// raw pointer is safe to copy across threads with the rest of the context.
struct TraceContext {
  std::uint64_t trace_id = 0;
  bool sampled = false;
  CostAccount* cost = nullptr;

  bool active() const { return sampled && trace_id != 0; }
};

/// The calling thread's current context ({0, false} when none installed).
TraceContext current_trace_context();

/// Install `context` on the calling thread (returns the previous one).
/// Prefer TraceContextScope; this exists for hand-rolled task hops.
TraceContext exchange_trace_context(TraceContext context);

/// RAII: install a context for a scope (a request handler, a pool task) and
/// restore the previous one on exit. Copy the context BY VALUE into task
/// lambdas — the scope is cheap (two thread-local writes).
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext context)
      : previous_(exchange_trace_context(context)) {}
  ~TraceContextScope() { exchange_trace_context(previous_); }
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext previous_;
};

enum class EventKind { kBegin, kEnd, kInstant, kCounter };

struct TraceEvent {
  EventKind kind = EventKind::kInstant;
  std::string name;
  std::string category;
  double ts_us = 0.0;   // microseconds since tracer epoch, monotone in order
  double value = 0.0;   // counter sample (kCounter only)
  std::uint64_t trace_id = 0;  // owning request ("" = no context)
  int tid = 1;          // stable small per-thread id (1-based)
  std::string args;     // pre-rendered JSON object ("" = none)
};

/// The name of the synthetic marker instant snapshot() prepends when the
/// requested range lost events to the ring (value = events dropped).
inline constexpr const char* kTruncationMarkerName = "trace.truncated";

class Tracer {
 public:
  static Tracer& instance();

  /// Should this thread record right now? The only call allowed on a hot
  /// path: one relaxed atomic load plus one thread-local read. Hoist the
  /// result into a local bool before a loop (correct as long as the trace
  /// context is stable across the loop, which request handlers guarantee).
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed) || current_trace_context().active();
  }

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Bound the buffer to `cap` events (0 = unbounded, the default). When
  /// full, recording drops the OLDEST event, counts it in dropped() and the
  /// `trace.dropped_spans` metric, and snapshot() marks the loss.
  void set_capacity(size_t cap);
  size_t capacity() const;

  /// Drop all buffered events and reset the drop accounting.
  void clear();

  /// Total events recorded since the last clear() — INCLUDING events the
  /// ring has since dropped, so a value from num_events() is a stable mark
  /// for snapshot(since) even while the ring churns.
  size_t num_events() const;

  /// Events lost to the ring since the last clear().
  size_t dropped() const;

  /// Record a span begin if enabled; returns whether it was recorded. Pass
  /// the result to end_span() so B/E events stay balanced across an
  /// enable/disable edge (TraceSpan does this automatically). `args` is a
  /// pre-rendered JSON object tagged onto the begin event ("" = none).
  bool begin_span(const std::string& name, const std::string& category = "mintc",
                  std::string args = "");
  /// Record the matching span end unconditionally.
  void end_span(const std::string& name, const std::string& category = "mintc");

  /// Point-in-time marker (no-op when disabled).
  void instant(const std::string& name, const std::string& category = "mintc",
               std::string args = "");
  /// Sampled value — renders as a counter track in chrome://tracing
  /// (no-op when disabled).
  void counter(const std::string& name, double value, const std::string& category = "mintc");

  /// Copy of the buffered events with sequence number >= `since` (a mark
  /// previously read from num_events(); 0 = everything). When the ring has
  /// dropped events inside the requested range, the copy is prefixed with a
  /// kTruncationMarkerName instant whose value is the number lost — B/E
  /// balance is only guaranteed for snapshots without that marker.
  std::vector<TraceEvent> snapshot(size_t since = 0) const;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  Tracer() = default;
  void record(EventKind kind, const std::string& name, const std::string& category,
              double value, std::string args = "");

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  size_t capacity_ = 0;   // 0 = unbounded
  size_t head_ = 0;       // ring start index within events_ (capacity_ > 0)
  size_t seq_base_ = 0;   // sequence number of the oldest buffered event
  size_t dropped_ = 0;    // events lost to the ring since clear()
  double last_ts_us_ = 0.0;
  std::chrono::steady_clock::time_point epoch_ = std::chrono::steady_clock::now();
};

/// RAII span: begin at construction (if tracing is enabled), end at
/// destruction. Nest freely; chrome://tracing stacks nested spans.
///
/// Spans are also the profiler's unit of attribution: when the sampling
/// profiler is running (profiler.h), construction pushes `name` onto the
/// thread's current span path and destruction pops it — one relaxed load
/// when the profiler is off, matching the tracer's disabled budget. The
/// name must therefore be a string literal (the const char* parameter
/// already enforces the idiom).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "mintc")
      : name_(name), category_(category) {
    active_ = Tracer::instance().begin_span(name_, category_);
    profiled_ = Profiler::try_push(name_);
  }
  /// Span with begin-event args (a pre-rendered JSON object, e.g.
  /// R"({"verb":"analyze"})") — how the serve layer tags request spans.
  TraceSpan(const char* name, const char* category, std::string args)
      : name_(name), category_(category) {
    active_ = Tracer::instance().begin_span(name_, category_, std::move(args));
    profiled_ = Profiler::try_push(name_);
  }
  ~TraceSpan() {
    if (profiled_) Profiler::pop();
    if (active_) Tracer::instance().end_span(name_, category_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  bool active_ = false;
  bool profiled_ = false;
};

}  // namespace mintc::obs
