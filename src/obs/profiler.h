// Sampling span profiler: answers "where inside the solve did the CPU go"
// without per-event cost on the measured threads.
//
// Each thread that opens TraceSpans maintains a lock-free "current span
// path" stack — a fixed array of atomic string-literal pointers plus an
// atomic depth, written only by the owning thread (plain stores through
// atomics, release on depth so a sampler that sees depth d also sees
// frames[0..d)). A single sampler thread wakes at a fixed interval, walks
// every registered stack, and tallies the observed path ("verb;stage;leaf")
// in a weighted sample map: N samples at interval T estimate N*T of
// self-time in the leaf frame.
//
// Cost model:
//   * disabled (the default): TraceSpan pays ONE relaxed atomic load —
//     the same budget as the tracer's enabled() check.
//   * enabled: push/pop are two relaxed/release stores into thread-local
//     memory; no locks, no allocation, no syscalls on the measured threads.
//     The sampler owns all the locking and runs a few hundred times a
//     second at most.
//
// Accuracy: sampling is statistical, and a sampler may race a push/pop and
// read a stale frame pointer at one level for one tick. Frame names are
// static string literals (TraceSpan takes const char*), so a torn sample
// misattributes at most one tick — it never dereferences freed memory.
//
// Thread lifecycle: stacks are registered on a thread's first push and
// marked dead (never freed) when the thread exits; dead slots are reused by
// later threads, so the registry is bounded by the peak concurrent thread
// count.
//
// Exports: collapsed-stack text (one "a;b;c N" line per path — feed
// directly to flamegraph.pl or speedscope) and a top-N self-time table.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace mintc::obs {

namespace profiler_detail {
extern std::atomic<bool> g_profiler_on;
}  // namespace profiler_detail

class Profiler {
 public:
  /// Frames beyond this depth are counted (so pop stays balanced) but not
  /// recorded; sampled paths are clamped. Deep enough for every span nest
  /// in the tree (serve.request > session > solve > shard is depth 4).
  static constexpr int kMaxDepth = 24;

  static Profiler& instance();

  /// Is the sampler running? One relaxed load — hot-path safe.
  static bool enabled() {
    return profiler_detail::g_profiler_on.load(std::memory_order_relaxed);
  }

  /// Start the sampler thread at `interval_us` (clamped to >= 200us).
  /// Idempotent while running. Samples accumulate until clear().
  void start(long interval_us = 2000);
  /// Stop and join the sampler; accumulated samples remain readable.
  void stop();
  /// Drop accumulated samples (keeps registered thread stacks).
  void clear();

  /// Hot path, called by TraceSpan: push `name` (MUST be a string literal
  /// or otherwise immortal) onto this thread's span path if the profiler
  /// is on. Returns whether a matching pop() is owed.
  static bool try_push(const char* name) {
    if (!enabled()) return false;
    instance().push_frame(name);
    return true;
  }
  /// Pop the frame pushed by a try_push that returned true. Balanced even
  /// if the profiler was stopped in between.
  static void pop() { instance().pop_frame(); }

  struct Profile {
    long interval_us = 0;     // sampling period the ticks were taken at
    long total_samples = 0;   // thread-ticks observed (busy + idle)
    long idle_samples = 0;    // ticks where a registered thread had no span
    /// Sampled span paths ("outer;inner;leaf") with tick counts, most
    /// sampled first.
    std::vector<std::pair<std::string, long>> stacks;
  };
  Profile profile() const;

  /// Collapsed-stack flamegraph text: one "path count" line per sampled
  /// path, most sampled first. Empty string when nothing was sampled.
  std::string collapsed() const;

  /// Human-readable top-N frames by self samples (ticks observed with the
  /// frame as the innermost span), with estimated self CPU time.
  std::string top_table(int top_n = 10) const;

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

 private:
  Profiler() = default;
  ~Profiler();

  struct ThreadStack {
    std::atomic<int> depth{0};
    std::array<std::atomic<const char*>, kMaxDepth> frames{};
    std::atomic<bool> live{false};
  };
  struct StackLease;  // thread-local registration handle (marks dead on exit)

  static StackLease& thread_lease();
  void push_frame(const char* name);
  void pop_frame();
  ThreadStack* lease_stack();
  void release_stack(ThreadStack* stack);
  void run_sampler();
  void sample_once();

  mutable std::mutex mu_;  // registry + samples + sampler control
  std::vector<std::unique_ptr<ThreadStack>> stacks_;
  std::map<std::string, long> samples_;
  long total_samples_ = 0;
  long idle_samples_ = 0;
  long interval_us_ = 2000;
  std::thread sampler_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
};

}  // namespace mintc::obs
