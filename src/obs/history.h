// Fixed-capacity ring of periodic metric snapshots — the memory behind the
// status dashboard's sparklines. The daemon records one Sample per tick
// (a timestamp plus a small set of named values pulled from the registry);
// when the ring is full the oldest sample is overwritten, so a long-lived
// server keeps a bounded sliding window of recent history.
//
// Concurrency: one mutex. Recording happens a few times a second and
// snapshots happen when a human loads the status page, so contention is
// not a concern — correctness under TSan is (the recorder is the daemon
// tick thread, the reader is a pool worker serving the `status` verb).
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mintc::obs {

class HistoryRing {
 public:
  explicit HistoryRing(std::size_t capacity = 240);

  struct Sample {
    double t_seconds = 0.0;  // seconds since an epoch the recorder chooses
    std::vector<std::pair<std::string, double>> values;
  };

  void record(Sample sample);

  /// Buffered samples, oldest first.
  std::vector<Sample> snapshot() const;

  /// One named series across the buffered samples, oldest first — NaN where
  /// a sample lacks the name, so consumers can skip gaps without losing
  /// alignment with the timestamps.
  std::vector<double> series(const std::string& name) const;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  /// Total record() calls, including samples the ring has since dropped.
  std::size_t total_recorded() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::size_t head_ = 0;   // index of the oldest sample once wrapped
  std::size_t total_ = 0;  // lifetime record() count
  std::vector<Sample> ring_;
};

}  // namespace mintc::obs
