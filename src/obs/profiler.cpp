#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

namespace mintc::obs {

namespace profiler_detail {
std::atomic<bool> g_profiler_on{false};
}  // namespace profiler_detail

Profiler& Profiler::instance() {
  static Profiler* profiler = new Profiler();  // leaked: outlive TLS leases
  return *profiler;
}

Profiler::~Profiler() { stop(); }

// Thread-local registration handle: leases a stack slot on the thread's
// first push, marks it dead (reusable) when the thread exits.
struct Profiler::StackLease {
  ThreadStack* stack = nullptr;
  ~StackLease() {
    if (stack != nullptr) Profiler::instance().release_stack(stack);
  }
};

Profiler::ThreadStack* Profiler::lease_stack() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& stack : stacks_) {
    if (!stack->live.load(std::memory_order_relaxed)) {
      stack->depth.store(0, std::memory_order_relaxed);
      stack->live.store(true, std::memory_order_relaxed);
      return stack.get();
    }
  }
  stacks_.push_back(std::make_unique<ThreadStack>());
  stacks_.back()->live.store(true, std::memory_order_relaxed);
  return stacks_.back().get();
}

void Profiler::release_stack(ThreadStack* stack) {
  // The entry stays allocated (the registry owns it); marking it dead stops
  // the sampler from walking it and lets a future thread reuse the slot.
  std::lock_guard<std::mutex> lock(mu_);
  stack->depth.store(0, std::memory_order_relaxed);
  stack->live.store(false, std::memory_order_relaxed);
}

Profiler::StackLease& Profiler::thread_lease() {
  thread_local StackLease lease;
  return lease;
}

void Profiler::push_frame(const char* name) {
  StackLease& lease = thread_lease();
  if (lease.stack == nullptr) lease.stack = lease_stack();
  ThreadStack* stack = lease.stack;
  const int depth = stack->depth.load(std::memory_order_relaxed);
  if (depth < kMaxDepth) {
    stack->frames[static_cast<std::size_t>(depth)].store(name, std::memory_order_relaxed);
  }
  stack->depth.store(depth + 1, std::memory_order_release);
}

void Profiler::pop_frame() {
  ThreadStack* stack = thread_lease().stack;
  if (stack == nullptr) return;
  const int depth = stack->depth.load(std::memory_order_relaxed);
  if (depth > 0) stack->depth.store(depth - 1, std::memory_order_release);
}

void Profiler::start(long interval_us) {
  std::unique_lock<std::mutex> lock(mu_);
  if (sampler_.joinable()) return;
  interval_us_ = std::max<long>(interval_us, 200);
  stop_requested_ = false;
  profiler_detail::g_profiler_on.store(true, std::memory_order_relaxed);
  sampler_ = std::thread([this] { run_sampler(); });
}

void Profiler::stop() {
  std::thread sampler;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!sampler_.joinable()) return;
    profiler_detail::g_profiler_on.store(false, std::memory_order_relaxed);
    stop_requested_ = true;
    stop_cv_.notify_all();
    sampler = std::move(sampler_);
  }
  sampler.join();
}

void Profiler::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.clear();
  total_samples_ = 0;
  idle_samples_ = 0;
}

void Profiler::run_sampler() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    sample_once();
    stop_cv_.wait_for(lock, std::chrono::microseconds(interval_us_),
                      [this] { return stop_requested_; });
  }
}

void Profiler::sample_once() {
  // Called with mu_ held. Walk every live stack; a race with the owning
  // thread's push/pop can misread at most one tick (see header).
  std::string path;
  for (const auto& stack : stacks_) {
    if (!stack->live.load(std::memory_order_relaxed)) continue;
    ++total_samples_;
    int depth = stack->depth.load(std::memory_order_acquire);
    if (depth <= 0) {
      ++idle_samples_;
      continue;
    }
    depth = std::min(depth, kMaxDepth);
    path.clear();
    for (int i = 0; i < depth; ++i) {
      const char* frame = stack->frames[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
      if (!path.empty()) path.push_back(';');
      path += (frame != nullptr) ? frame : "?";
    }
    ++samples_[path];
  }
}

Profiler::Profile Profiler::profile() const {
  Profile out;
  std::lock_guard<std::mutex> lock(mu_);
  out.interval_us = interval_us_;
  out.total_samples = total_samples_;
  out.idle_samples = idle_samples_;
  out.stacks.assign(samples_.begin(), samples_.end());
  std::stable_sort(out.stacks.begin(), out.stacks.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

std::string Profiler::collapsed() const {
  const Profile prof = profile();
  std::string out;
  for (const auto& [path, count] : prof.stacks) {
    out += path;
    out.push_back(' ');
    out += std::to_string(count);
    out.push_back('\n');
  }
  return out;
}

std::string Profiler::top_table(int top_n) const {
  const Profile prof = profile();
  // Self samples: the innermost frame of each sampled path owns its ticks.
  std::map<std::string, long> self;
  for (const auto& [path, count] : prof.stacks) {
    const std::size_t leaf = path.rfind(';');
    self[leaf == std::string::npos ? path : path.substr(leaf + 1)] += count;
  }
  std::vector<std::pair<std::string, long>> rows(self.begin(), self.end());
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  if (static_cast<int>(rows.size()) > top_n) rows.resize(static_cast<std::size_t>(top_n));

  long busy = prof.total_samples - prof.idle_samples;
  if (busy <= 0) busy = 1;
  std::ostringstream out;
  out << "profiler: " << prof.total_samples << " ticks @ " << prof.interval_us
      << "us (" << prof.idle_samples << " idle)\n";
  char line[160];
  for (const auto& [frame, count] : rows) {
    const double pct = 100.0 * static_cast<double>(count) / static_cast<double>(busy);
    const double est_ms =
        static_cast<double>(count) * static_cast<double>(prof.interval_us) / 1000.0;
    std::snprintf(line, sizeof(line), "%8ld  %5.1f%%  %9.1fms  %s\n", count, pct,
                  est_ms, frame.c_str());
    out << line;
  }
  return out.str();
}

}  // namespace mintc::obs
