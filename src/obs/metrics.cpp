#include "obs/metrics.h"

#include <algorithm>

namespace mintc::obs {

namespace {

std::string render_key(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string key = name + "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i) key += ",";
    key += labels[i].first + "=" + labels[i].second;
  }
  key += "}";
  return key;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  const std::lock_guard<std::mutex> lock(mu_);
  const size_t b = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  ++buckets_[b];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
}

long Histogram::count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::max() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

std::vector<long> Histogram::buckets() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return buckets_;
}

double Histogram::quantile(double q) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return quantile_locked(q);
}

Histogram::Snapshot Histogram::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  s.p50 = quantile_locked(0.50);
  s.p95 = quantile_locked(0.95);
  s.p99 = quantile_locked(0.99);
  s.p999 = quantile_locked(0.999);
  s.buckets = buckets_;
  return s;
}

double Histogram::quantile_locked(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const double rank = q * static_cast<double>(count_);
  double cum = 0.0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    const double before = cum;
    cum += static_cast<double>(buckets_[b]);
    if (cum < rank || buckets_[b] == 0) continue;
    // Bucket b spans (bounds[b-1], bounds[b]]; the open ends (below the
    // first bound, above the last) are clamped to the observed range.
    double lower = b == 0 ? min_ : std::max(min_, bounds_[b - 1]);
    double upper = b == bounds_.size() ? max_ : std::min(max_, bounds_[b]);
    if (upper < lower) upper = lower;
    const double frac = (rank - before) / static_cast<double>(buckets_[b]);
    return lower + frac * (upper - lower);
  }
  return max_;
}

void Histogram::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

std::vector<double> default_buckets() {
  std::vector<double> b;
  for (double v = 1.0; v <= 4096.0; v *= 2.0) b.push_back(v);
  return b;
}

std::vector<double> latency_buckets_us() {
  std::vector<double> b;
  for (double decade = 1.0; decade <= 1e6; decade *= 10.0) {
    b.push_back(decade);
    b.push_back(2.0 * decade);
    b.push_back(5.0 * decade);
  }
  b.push_back(1e7);
  return b;
}

std::string MetricPoint::key() const { return render_key(name, labels); }

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name, const Labels& labels) {
  const std::string key = render_key(name, labels);
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    it = counters_.emplace(key, Entry<Counter>{name, labels, std::make_unique<Counter>()}).first;
  }
  return *it->second.metric;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  const std::string key = render_key(name, labels);
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    it = gauges_.emplace(key, Entry<Gauge>{name, labels, std::make_unique<Gauge>()}).first;
  }
  return *it->second.metric;
}

Histogram& MetricsRegistry::histogram(const std::string& name, const Labels& labels,
                                      std::vector<double> upper_bounds) {
  const std::string key = render_key(name, labels);
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(key, Entry<Histogram>{name, labels,
                                            std::make_unique<Histogram>(std::move(upper_bounds))})
             .first;
  }
  return *it->second.metric;
}

std::vector<MetricPoint> MetricsRegistry::snapshot() const {
  std::vector<MetricPoint> points;
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, entry] : counters_) {
    MetricPoint p;
    p.name = entry.name;
    p.labels = entry.labels;
    p.kind = MetricKind::kCounter;
    p.value = static_cast<double>(entry.metric->value());
    points.push_back(std::move(p));
  }
  for (const auto& [key, entry] : gauges_) {
    MetricPoint p;
    p.name = entry.name;
    p.labels = entry.labels;
    p.kind = MetricKind::kGauge;
    p.value = entry.metric->value();
    points.push_back(std::move(p));
  }
  for (const auto& [key, entry] : histograms_) {
    MetricPoint p;
    p.name = entry.name;
    p.labels = entry.labels;
    p.kind = MetricKind::kHistogram;
    // One lock acquisition for the whole point — reading through the
    // per-field accessors would let an observe() interleave and break the
    // count == sum-of-buckets invariant the exporters rely on.
    Histogram::Snapshot s = entry.metric->snapshot();
    p.count = s.count;
    p.sum = s.sum;
    p.min = s.min;
    p.max = s.max;
    p.p50 = s.p50;
    p.p95 = s.p95;
    p.p99 = s.p99;
    p.p999 = s.p999;
    p.bounds = entry.metric->bounds();
    p.buckets = std::move(s.buckets);
    points.push_back(std::move(p));
  }
  std::sort(points.begin(), points.end(),
            [](const MetricPoint& a, const MetricPoint& b) { return a.key() < b.key(); });
  return points;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : counters_) entry.metric->reset();
  for (auto& [key, entry] : gauges_) entry.metric->reset();
  for (auto& [key, entry] : histograms_) entry.metric->reset();
}

}  // namespace mintc::obs
