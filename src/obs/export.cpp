#include "obs/export.h"

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <sstream>

#include "base/log.h"
#include "base/strings.h"
#include "base/table.h"

#ifndef MINTC_VERSION
#define MINTC_VERSION "dev"
#endif
#ifndef MINTC_GIT_SHA
#define MINTC_GIT_SHA "unknown"
#endif

namespace mintc::obs {

namespace {

// Process epoch for the metadata wall clock (captured at load).
const std::chrono::steady_clock::time_point kProcessEpoch = std::chrono::steady_clock::now();

double process_wall_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - kProcessEpoch)
      .count();
}

const char* phase_of(EventKind kind) {
  switch (kind) {
    case EventKind::kBegin: return "B";
    case EventKind::kEnd: return "E";
    case EventKind::kInstant: return "i";
    case EventKind::kCounter: return "C";
  }
  return "i";
}

std::string labels_json(const Labels& labels) {
  std::ostringstream out;
  out << "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i) out << ", ";
    out << "\"" << json_escape(labels[i].first) << "\": \"" << json_escape(labels[i].second)
        << "\"";
  }
  out << "}";
  return out.str();
}

bool write_string(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    log_warn() << "obs: cannot write '" << path << "'";
    return false;
  }
  const bool ok = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  std::fclose(f);
  return ok;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// JSON has no Inf/NaN literals; clamp them to null-safe numbers.
std::string json_number(double v) {
  if (!std::isfinite(v)) return v > 0 ? "1e308" : (v < 0 ? "-1e308" : "0");
  std::ostringstream out;
  out.precision(15);
  out << v;
  return out.str();
}

RunMetadata& run_metadata() {
  static RunMetadata meta{"mintc " MINTC_VERSION, "", "", "", 0.0};
  return meta;
}

const BuildInfo& build_info() {
  static const BuildInfo info{
      MINTC_VERSION,
      MINTC_GIT_SHA,
#if defined(__clang__)
      "clang " __clang_version__,
#elif defined(__GNUC__)
      "gcc " __VERSION__,
#else
      "unknown",
#endif
  };
  return info;
}

std::uint64_t fnv1a64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string hash_hex(std::uint64_t h) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

std::string fnv1a_hex(std::string_view bytes) { return hash_hex(fnv1a64(bytes)); }

std::string run_metadata_json(const RunMetadata& meta) {
  const double wall = meta.wall_seconds > 0.0 ? meta.wall_seconds : process_wall_seconds();
  std::ostringstream out;
  out << "{\"tool\": \"" << json_escape(meta.tool) << "\", \"circuit\": \""
      << json_escape(meta.circuit) << "\", \"schedule_hash\": \""
      << json_escape(meta.schedule_hash) << "\"";
  if (!meta.corner.empty()) out << ", \"corner\": \"" << json_escape(meta.corner) << "\"";
  out << ", \"wall_seconds\": " << json_number(wall) << "}";
  return out.str();
}

std::string run_metadata_json() { return run_metadata_json(run_metadata()); }

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  out << "{\"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i) out << ",";
    out << "\n  {\"name\": \"" << json_escape(e.name) << "\", \"cat\": \""
        << json_escape(e.category) << "\", \"ph\": \"" << phase_of(e.kind)
        << "\", \"ts\": " << json_number(e.ts_us) << ", \"pid\": 1, \"tid\": " << e.tid;
    if (e.kind == EventKind::kInstant) out << ", \"s\": \"t\"";
    // Merge the counter sample, the owning trace id and any span args into
    // one "args" object. e.args is a pre-rendered JSON object — splice its
    // members rather than nesting it.
    std::string members;
    if (e.kind == EventKind::kCounter) members += "\"value\": " + json_number(e.value);
    if (e.trace_id != 0) {
      if (!members.empty()) members += ", ";
      members += "\"trace\": \"" + hash_hex(e.trace_id) + "\"";
    }
    if (e.args.size() > 2 && e.args.front() == '{' && e.args.back() == '}') {
      if (!members.empty()) members += ", ";
      members += e.args.substr(1, e.args.size() - 2);
    }
    if (!members.empty()) out << ", \"args\": {" << members << "}";
    out << "}";
  }
  out << "\n], \"displayTimeUnit\": \"ms\", \"metadata\": " << run_metadata_json() << "}\n";
  return out.str();
}

std::string metrics_json(const std::vector<MetricPoint>& points) {
  std::ostringstream out;
  out << "{\"meta\": " << run_metadata_json() << ",\n \"metrics\": [";
  for (size_t i = 0; i < points.size(); ++i) {
    const MetricPoint& p = points[i];
    if (i) out << ",";
    out << "\n  {\"name\": \"" << json_escape(p.name) << "\", \"labels\": "
        << labels_json(p.labels) << ", ";
    switch (p.kind) {
      case MetricKind::kCounter:
        out << "\"type\": \"counter\", \"value\": " << json_number(p.value);
        break;
      case MetricKind::kGauge:
        out << "\"type\": \"gauge\", \"value\": " << json_number(p.value);
        break;
      case MetricKind::kHistogram: {
        out << "\"type\": \"histogram\", \"count\": " << p.count
            << ", \"sum\": " << json_number(p.sum) << ", \"min\": " << json_number(p.min)
            << ", \"max\": " << json_number(p.max) << ", \"p50\": " << json_number(p.p50)
            << ", \"p95\": " << json_number(p.p95) << ", \"p99\": " << json_number(p.p99)
            << ", \"p999\": " << json_number(p.p999) << ", \"bounds\": [";
        for (size_t b = 0; b < p.bounds.size(); ++b) {
          if (b) out << ", ";
          out << json_number(p.bounds[b]);
        }
        out << "], \"buckets\": [";
        for (size_t b = 0; b < p.buckets.size(); ++b) {
          if (b) out << ", ";
          out << p.buckets[b];
        }
        out << "]";
        break;
      }
    }
    out << "}";
  }
  out << "\n]}\n";
  return out.str();
}

std::string metrics_table(const std::vector<MetricPoint>& points) {
  TextTable table(
      {"metric", "labels", "type", "value", "count", "min", "mean", "p50", "p95", "p99", "max"});
  for (const MetricPoint& p : points) {
    std::string labels;
    for (size_t i = 0; i < p.labels.size(); ++i) {
      if (i) labels += ",";
      labels += p.labels[i].first + "=" + p.labels[i].second;
    }
    switch (p.kind) {
      case MetricKind::kCounter:
        table.add_row({p.name, labels, "counter", fmt_time(p.value, 3), "", "", "", "", "", "",
                       ""});
        break;
      case MetricKind::kGauge:
        table.add_row({p.name, labels, "gauge", fmt_time(p.value, 4), "", "", "", "", "", "",
                       ""});
        break;
      case MetricKind::kHistogram: {
        const double mean = p.count > 0 ? p.sum / static_cast<double>(p.count) : 0.0;
        table.add_row({p.name, labels, "histogram", "", std::to_string(p.count),
                       fmt_time(p.min, 3), fmt_time(mean, 3), fmt_time(p.p50, 3),
                       fmt_time(p.p95, 3), fmt_time(p.p99, 3), fmt_time(p.max, 3)});
        break;
      }
    }
  }
  return table.to_string();
}

bool write_chrome_trace(const std::string& path) {
  return write_chrome_trace(path, Tracer::instance().snapshot());
}

bool write_chrome_trace(const std::string& path, const std::vector<TraceEvent>& events) {
  return write_string(path, chrome_trace_json(events));
}

namespace {

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]* — map anything else
// (the registry uses dots) to '_' and prefix the tool namespace.
std::string prom_name(const std::string& name) {
  std::string out = "mintc_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

// Label VALUES escape backslash, double-quote and newline per the text
// exposition format (different from JSON escaping: no \t or \u).
std::string prom_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prom_labels(const Labels& labels, const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += labels[i].first + "=\"" + prom_escape(labels[i].second) + "\"";
  }
  if (!extra.empty()) {
    if (!labels.empty()) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

std::string prom_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return json_number(v);
}

}  // namespace

std::string prometheus_text(const std::vector<MetricPoint>& points) {
  std::ostringstream out;
  // One # TYPE line per metric family (a name can appear with several label
  // sets); the snapshot is sorted by key, so same-name points are adjacent.
  std::string last_family;
  for (const MetricPoint& p : points) {
    const std::string base = prom_name(p.name);
    const std::string family =
        p.kind == MetricKind::kCounter ? base + "_total" : base;
    switch (p.kind) {
      case MetricKind::kCounter:
        if (family != last_family) out << "# TYPE " << family << " counter\n";
        out << family << prom_labels(p.labels) << " " << prom_number(p.value) << "\n";
        break;
      case MetricKind::kGauge:
        if (family != last_family) out << "# TYPE " << family << " gauge\n";
        out << family << prom_labels(p.labels) << " " << prom_number(p.value) << "\n";
        break;
      case MetricKind::kHistogram: {
        if (family != last_family) out << "# TYPE " << family << " histogram\n";
        // The registry stores per-bucket counts; Prometheus buckets are
        // CUMULATIVE and end with the mandatory le="+Inf" == _count.
        long cum = 0;
        for (size_t b = 0; b < p.buckets.size(); ++b) {
          cum += p.buckets[b];
          const std::string le =
              b < p.bounds.size() ? prom_number(p.bounds[b]) : "+Inf";
          out << base << "_bucket" << prom_labels(p.labels, "le=\"" + le + "\"") << " "
              << cum << "\n";
        }
        out << base << "_sum" << prom_labels(p.labels) << " " << prom_number(p.sum) << "\n";
        out << base << "_count" << prom_labels(p.labels) << " " << p.count << "\n";
        break;
      }
    }
    last_family = family;
  }
  // Companion gauges for histogram extremes and the far tail: Prometheus
  // histograms carry no min/max and bucket-interpolated tail quantiles are
  // coarse, so export the registry's exact observed min/max (and its p99.9
  // estimate) as <base>_min/_max/_p999 gauge families. Emitted suffix-major
  // so each derived family stays contiguous with a single # TYPE line even
  // when a name has several label sets.
  struct Derived {
    const char* suffix;
    double MetricPoint::* value;
  };
  static constexpr Derived kDerived[] = {
      {"_min", &MetricPoint::min},
      {"_max", &MetricPoint::max},
      {"_p999", &MetricPoint::p999},
  };
  for (const Derived& d : kDerived) {
    last_family.clear();
    for (const MetricPoint& p : points) {
      if (p.kind != MetricKind::kHistogram) continue;
      const std::string family = prom_name(p.name) + d.suffix;
      if (family != last_family) out << "# TYPE " << family << " gauge\n";
      out << family << prom_labels(p.labels) << " " << prom_number(p.*(d.value)) << "\n";
      last_family = family;
    }
  }
  return out.str();
}

bool write_metrics_json(const std::string& path) {
  return write_string(path, metrics_json(MetricsRegistry::instance().snapshot()));
}

bool write_prometheus_text(const std::string& path) {
  return write_string(path, prometheus_text(MetricsRegistry::instance().snapshot()));
}

}  // namespace mintc::obs
