#include "obs/stats.h"

#include <cassert>
#include <sstream>

#include "base/strings.h"

namespace mintc {

void EngineStats::add_stage(const std::string& name, double seconds) {
  for (auto& [existing, total] : stages) {
    if (existing == name) {
      total += seconds;
      return;
    }
  }
  stages.emplace_back(name, seconds);
}

double EngineStats::stage_seconds() const {
  double total = 0.0;
  for (const auto& [name, seconds] : stages) total += seconds;
  return total;
}

double EngineStats::accounted_seconds() const {
  return view_build_seconds + shift_build_seconds + solve_seconds + stage_seconds();
}

bool EngineStats::consistent(double tolerance_seconds) const {
  if (wall_seconds <= 0.0) return true;  // wall not recorded: nothing to check
  // Stages are disjoint sub-intervals of the invocation, so their sum can
  // exceed the wall only by timer resolution; allow a small relative slack
  // on top for clocks that tick coarsely.
  return accounted_seconds() <= wall_seconds + tolerance_seconds + 0.01 * wall_seconds;
}

void EngineStats::absorb(const EngineStats& other) {
  assert(other.consistent() && "absorbing a sub-stage whose stages exceed its wall");
  view_build_seconds += other.view_build_seconds;
  shift_build_seconds += other.shift_build_seconds;
  solve_seconds += other.solve_seconds;
  sweeps += other.sweeps;
  edge_relaxations += other.edge_relaxations;
  for (const auto& [name, seconds] : other.stages) add_stage(name, seconds);
  assert(consistent() && "absorbed sub-stage double-counts time already in a stage");
}

std::string EngineStats::to_string() const {
  std::ostringstream out;
  out << "view-build " << fmt_time(view_build_seconds * 1e3, 3) << " ms, shift-build "
      << fmt_time(shift_build_seconds * 1e3, 3) << " ms, solve "
      << fmt_time(solve_seconds * 1e3, 3) << " ms, " << sweeps << " sweep"
      << (sweeps == 1 ? "" : "s") << ", " << edge_relaxations << " edge relaxations";
  for (const auto& [name, seconds] : stages) {
    out << ", " << name << " " << fmt_time(seconds * 1e3, 3) << " ms";
  }
  if (wall_seconds > 0.0) out << ", wall " << fmt_time(wall_seconds * 1e3, 3) << " ms";
  return out.str();
}

}  // namespace mintc
