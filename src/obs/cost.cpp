#include "obs/cost.h"

#include "obs/trace.h"

#include <ctime>

namespace mintc::obs {

CostAccount* current_cost_account() { return current_trace_context().cost; }

std::int64_t thread_cpu_now_us() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000 +
         static_cast<std::int64_t>(ts.tv_nsec) / 1000;
#else
  return 0;
#endif
}

void charge_solve(std::int64_t relaxations, std::int64_t sweeps) {
  if (CostAccount* account = current_cost_account()) {
    account->add_solve(relaxations, sweeps);
  }
}

}  // namespace mintc::obs
