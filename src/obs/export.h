// Exporters for the tracer and the metrics registry.
//
// Three output shapes:
//   * Chrome trace-event JSON — load the file in chrome://tracing (or
//     https://ui.perfetto.dev) to see nested engine spans on a timeline and
//     counter tracks (fixpoint residuals, simplex objective) underneath;
//   * a flat JSON metrics dump — one object per metric with its labels and
//     value (or histogram state), for BENCH_*.json embedding and scripts;
//   * a human-readable table (base/table) for terminal output.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mintc::obs {

/// Run-identification header stamped into every JSON export — metrics,
/// trace, and the report exporters (src/report) all share it, so any dump
/// answers "which tool, which circuit, which schedule, how long into the
/// run". Tools fill circuit/schedule_hash once their inputs are known; the
/// defaults identify the tool version alone.
struct RunMetadata {
  std::string tool;           // "mintc <version>"
  std::string circuit;        // analyzed circuit name ("" = not applicable)
  std::string schedule_hash;  // fnv1a_hex of the schedule text ("" = none)
  /// Corner / derating identity ("" = nominal). Part of the cache identity:
  /// two corners of the same circuit+schedule are DIFFERENT runs, so every
  /// consumer hashing a run key must mix this in (report::meta_for and the
  /// serve result cache both do; regression-tested in report_tests).
  std::string corner;
  double wall_seconds = 0.0;  // process wall time; 0 = stamp at export time
};

/// The mutable process-wide metadata (defaults to the tool version only).
RunMetadata& run_metadata();

/// Compile-time build identity: project version (MINTC_VERSION), git commit
/// (MINTC_GIT_SHA, "unknown" outside a checkout) and the compiler string.
/// Surfaced as the `mintc_build_info` info-gauge, in the `stats` verb and
/// on the status dashboard — so an operator can tie any scrape or page to
/// an exact binary.
struct BuildInfo {
  std::string version;
  std::string git;
  std::string compiler;
};
const BuildInfo& build_info();

/// JSON string-escape (\" \\ control chars) and number rendering (non-finite
/// values clamped to +-1e308/0 — JSON has no Inf/NaN literals). Shared by
/// every JSON writer in the tree (metrics, trace, report).
std::string json_escape(const std::string& s);
std::string json_number(double v);

/// FNV-1a 64-bit digest; used to fingerprint schedules in the header and as
/// the serve-layer result-cache key.
std::uint64_t fnv1a64(std::string_view bytes);

/// FNV-1a 64-bit hex digest of `bytes` (lower-case, 16 chars).
std::string fnv1a_hex(std::string_view bytes);

/// Hex rendering of an already-computed 64-bit digest.
std::string hash_hex(std::uint64_t h);

/// Streaming FNV-1a 64 hasher for composite keys (session fingerprints,
/// cache keys). Doubles are hashed by bit pattern, so two states hash equal
/// iff they are bit-identical — matching the repo's bit-identity contracts.
class Fnv1a {
 public:
  Fnv1a& bytes(const void* data, std::size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 0x100000001b3ull;
    }
    return *this;
  }
  /// Length-prefixed, so ("ab","c") and ("a","bc") hash differently.
  Fnv1a& str(std::string_view s) {
    u64(s.size());
    return bytes(s.data(), s.size());
  }
  Fnv1a& num(double v) { return bytes(&v, sizeof v); }
  Fnv1a& u64(std::uint64_t v) { return bytes(&v, sizeof v); }
  Fnv1a& i32(std::int32_t v) { return bytes(&v, sizeof v); }
  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

/// Render `meta` as one JSON object; a zero wall_seconds is replaced with
/// the process wall clock at call time.
std::string run_metadata_json(const RunMetadata& meta);
std::string run_metadata_json();  // the process-wide metadata

/// Render events as Chrome trace-event JSON ({"traceEvents": [...],
/// "metadata": {...run header...}}).
/// kBegin/kEnd become ph "B"/"E", kInstant "i", kCounter "C"; all events
/// carry pid 1, the recording thread's tid, and timestamps in microseconds.
/// A nonzero trace_id and any pre-rendered span args are merged into the
/// event's "args" object (trace id as 16-char hex under key "trace").
std::string chrome_trace_json(const std::vector<TraceEvent>& events);

/// Render metric points in the Prometheus text exposition format. Names are
/// prefixed "mintc_" with dots mapped to underscores; counters get the
/// "_total" suffix; histograms emit CUMULATIVE "_bucket{le=...}" series
/// (including "+Inf"), "_sum" and "_count", per the format spec, plus
/// companion "_min"/"_max"/"_p999" gauge families carrying the exact
/// observed extremes and the far-tail estimate (appended after the main
/// families so each derived family keeps a single # TYPE line). Label
/// values escape backslash, double-quote and newline. Ends with a newline.
std::string prometheus_text(const std::vector<MetricPoint>& points);

/// Render metric points as {"meta": {...run header...}, "metrics": [...]}.
std::string metrics_json(const std::vector<MetricPoint>& points);

/// Render metric points as a column-aligned text table.
std::string metrics_table(const std::vector<MetricPoint>& points);

/// Snapshot the process-wide tracer / registry and write to `path`.
/// Returns false (and logs a warning) when the file cannot be written.
bool write_chrome_trace(const std::string& path);
bool write_metrics_json(const std::string& path);
bool write_prometheus_text(const std::string& path);

/// Write an explicit event list (e.g. a per-failure slice) to `path`.
bool write_chrome_trace(const std::string& path, const std::vector<TraceEvent>& events);

}  // namespace mintc::obs
