// Exporters for the tracer and the metrics registry.
//
// Three output shapes:
//   * Chrome trace-event JSON — load the file in chrome://tracing (or
//     https://ui.perfetto.dev) to see nested engine spans on a timeline and
//     counter tracks (fixpoint residuals, simplex objective) underneath;
//   * a flat JSON metrics dump — one object per metric with its labels and
//     value (or histogram state), for BENCH_*.json embedding and scripts;
//   * a human-readable table (base/table) for terminal output.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mintc::obs {

/// Run-identification header stamped into every JSON export — metrics,
/// trace, and the report exporters (src/report) all share it, so any dump
/// answers "which tool, which circuit, which schedule, how long into the
/// run". Tools fill circuit/schedule_hash once their inputs are known; the
/// defaults identify the tool version alone.
struct RunMetadata {
  std::string tool;           // "mintc <version>"
  std::string circuit;        // analyzed circuit name ("" = not applicable)
  std::string schedule_hash;  // fnv1a_hex of the schedule text ("" = none)
  double wall_seconds = 0.0;  // process wall time; 0 = stamp at export time
};

/// The mutable process-wide metadata (defaults to the tool version only).
RunMetadata& run_metadata();

/// JSON string-escape (\" \\ control chars) and number rendering (non-finite
/// values clamped to +-1e308/0 — JSON has no Inf/NaN literals). Shared by
/// every JSON writer in the tree (metrics, trace, report).
std::string json_escape(const std::string& s);
std::string json_number(double v);

/// FNV-1a 64-bit hex digest; used to fingerprint schedules in the header.
std::string fnv1a_hex(std::string_view bytes);

/// Render `meta` as one JSON object; a zero wall_seconds is replaced with
/// the process wall clock at call time.
std::string run_metadata_json(const RunMetadata& meta);
std::string run_metadata_json();  // the process-wide metadata

/// Render events as Chrome trace-event JSON ({"traceEvents": [...],
/// "metadata": {...run header...}}).
/// kBegin/kEnd become ph "B"/"E", kInstant "i", kCounter "C"; all events
/// carry pid 1 / tid 1 and timestamps in microseconds.
std::string chrome_trace_json(const std::vector<TraceEvent>& events);

/// Render metric points as {"meta": {...run header...}, "metrics": [...]}.
std::string metrics_json(const std::vector<MetricPoint>& points);

/// Render metric points as a column-aligned text table.
std::string metrics_table(const std::vector<MetricPoint>& points);

/// Snapshot the process-wide tracer / registry and write to `path`.
/// Returns false (and logs a warning) when the file cannot be written.
bool write_chrome_trace(const std::string& path);
bool write_metrics_json(const std::string& path);

/// Write an explicit event list (e.g. a per-failure slice) to `path`.
bool write_chrome_trace(const std::string& path, const std::vector<TraceEvent>& events);

}  // namespace mintc::obs
