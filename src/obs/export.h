// Exporters for the tracer and the metrics registry.
//
// Three output shapes:
//   * Chrome trace-event JSON — load the file in chrome://tracing (or
//     https://ui.perfetto.dev) to see nested engine spans on a timeline and
//     counter tracks (fixpoint residuals, simplex objective) underneath;
//   * a flat JSON metrics dump — one object per metric with its labels and
//     value (or histogram state), for BENCH_*.json embedding and scripts;
//   * a human-readable table (base/table) for terminal output.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mintc::obs {

/// Render events as Chrome trace-event JSON ({"traceEvents": [...]}).
/// kBegin/kEnd become ph "B"/"E", kInstant "i", kCounter "C"; all events
/// carry pid 1 / tid 1 and timestamps in microseconds.
std::string chrome_trace_json(const std::vector<TraceEvent>& events);

/// Render metric points as a flat JSON array.
std::string metrics_json(const std::vector<MetricPoint>& points);

/// Render metric points as a column-aligned text table.
std::string metrics_table(const std::vector<MetricPoint>& points);

/// Snapshot the process-wide tracer / registry and write to `path`.
/// Returns false (and logs a warning) when the file cannot be written.
bool write_chrome_trace(const std::string& path);
bool write_metrics_json(const std::string& path);

/// Write an explicit event list (e.g. a per-failure slice) to `path`.
bool write_chrome_trace(const std::string& path, const std::vector<TraceEvent>& events);

}  // namespace mintc::obs
