// Process-wide metrics registry: counters, gauges and histograms, each
// identified by a name plus an ordered label set (e.g.
// counter("fixpoint.sweeps", {{"scheme", "jacobi"}})).
//
// Design rules:
//   * Instrument handles (Counter&, Gauge&, Histogram&) returned by the
//     registry are valid for the process lifetime — reset() zeroes values
//     but never invalidates a handle, so engines may cache them.
//   * Updates through a handle are cheap (relaxed atomics for counters and
//     gauges, a short mutex for histograms). Registry *lookups* build a key
//     string and take a map lock — do them once per solve, never inside an
//     inner loop.
//   * snapshot() returns plain data for the exporters (export.h): a flat
//     JSON dump, or a human-readable table via base/table.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mintc::obs {

/// Ordered label set; rendered as `name{k1=v1,k2=v2}` in exports.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing count (relaxed atomic).
class Counter {
 public:
  void inc(long delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  long value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long> value_{0};
};

/// Last-write-wins scalar.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: counts of observations <= each upper bound, plus
/// an implicit +inf bucket and sum/min/max.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);
  long count() const;
  double sum() const;
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last = +inf bucket).
  std::vector<long> buckets() const;
  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside the
  /// bucket holding rank q*count, with the open-ended first/last buckets
  /// clamped to the observed min/max. Exact at q=0 (min) and q=1 (max);
  /// elsewhere the error is bounded by the bucket width. 0 when empty.
  double quantile(double q) const;
  void reset();

  /// Every statistic under ONE lock acquisition, so the copy is internally
  /// consistent (count == sum of buckets, quantiles computed from the same
  /// state) even while writers race. Registry snapshots read through this;
  /// per-field accessors above can interleave with writers between calls.
  struct Snapshot {
    long count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
    std::vector<long> buckets;
  };
  Snapshot snapshot() const;

 private:
  double quantile_locked(double q) const;

  mutable std::mutex mu_;
  std::vector<double> bounds_;   // ascending upper bounds
  std::vector<long> buckets_;    // bounds_.size() + 1
  long count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponential default bucket bounds 1, 2, 4, ... 4096 — good for sweep and
/// pivot counts.
std::vector<double> default_buckets();

/// 1-2-5 per-decade bounds 1 us .. 10 s for microsecond latencies — shared
/// by the serve layer's request histogram and timing_client's per-verb
/// breakdown so their quantiles are comparable.
std::vector<double> latency_buckets_us();

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric's state at snapshot time.
struct MetricPoint {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;            // counter / gauge value
  long count = 0;                // histogram observation count
  double sum = 0.0, min = 0.0, max = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0, p999 = 0.0;  // histogram quantiles
  std::vector<double> bounds;    // histogram upper bounds
  std::vector<long> buckets;     // histogram bucket counts (bounds + inf)

  /// `name{k=v,...}` — the stable identity used as the snapshot sort key.
  std::string key() const;
};

class MetricsRegistry {
 public:
  /// The process-wide registry.
  static MetricsRegistry& instance();

  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {},
                       std::vector<double> upper_bounds = default_buckets());

  /// All metrics, sorted by key. Histogram state is copied under its lock.
  std::vector<MetricPoint> snapshot() const;

  /// Zero every registered metric (handles stay valid).
  void reset();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  template <typename T>
  struct Entry {
    std::string name;
    Labels labels;
    std::unique_ptr<T> metric;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, Entry<Histogram>> histograms_;
};

}  // namespace mintc::obs
