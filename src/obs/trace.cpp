#include "obs/trace.h"

namespace mintc::obs {

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  // last_ts_us_ is deliberately kept: timestamps stay monotone across a
  // clear so concatenated exports never jump backwards.
}

size_t Tracer::num_events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::record(EventKind kind, const std::string& name, const std::string& category,
                    double value) {
  const double ts =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - epoch_)
          .count();
  const std::lock_guard<std::mutex> lock(mu_);
  if (ts > last_ts_us_) last_ts_us_ = ts;  // clamp: monotone in buffer order
  events_.push_back({kind, name, category, last_ts_us_, value});
}

bool Tracer::begin_span(const std::string& name, const std::string& category) {
  if (!enabled()) return false;
  record(EventKind::kBegin, name, category, 0.0);
  return true;
}

void Tracer::end_span(const std::string& name, const std::string& category) {
  record(EventKind::kEnd, name, category, 0.0);
}

void Tracer::instant(const std::string& name, const std::string& category) {
  if (!enabled()) return;
  record(EventKind::kInstant, name, category, 0.0);
}

void Tracer::counter(const std::string& name, double value, const std::string& category) {
  if (!enabled()) return;
  record(EventKind::kCounter, name, category, value);
}

std::vector<TraceEvent> Tracer::snapshot(size_t since) const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (since >= events_.size()) return {};
  return std::vector<TraceEvent>(events_.begin() + static_cast<long>(since), events_.end());
}

}  // namespace mintc::obs
