#include "obs/trace.h"

#include "obs/metrics.h"

namespace mintc::obs {

namespace {

thread_local TraceContext t_context;

/// Stable small per-thread id for trace events: 1 for the first thread that
/// records (usually main), then 2, 3, ... in first-record order.
int thread_trace_id() {
  static std::atomic<int> next{1};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Counter& dropped_spans_metric() {
  static Counter& c = MetricsRegistry::instance().counter("trace.dropped_spans");
  return c;
}

}  // namespace

TraceContext current_trace_context() { return t_context; }

TraceContext exchange_trace_context(TraceContext context) {
  const TraceContext previous = t_context;
  t_context = context;
  return previous;
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_capacity(size_t cap) {
  const std::lock_guard<std::mutex> lock(mu_);
  // Linearize the ring before re-bounding it, then trim the oldest events
  // if the new capacity is tighter than what is buffered.
  if (head_ > 0) {
    std::vector<TraceEvent> linear;
    linear.reserve(events_.size());
    linear.insert(linear.end(), events_.begin() + static_cast<long>(head_), events_.end());
    linear.insert(linear.end(), events_.begin(), events_.begin() + static_cast<long>(head_));
    events_ = std::move(linear);
    head_ = 0;
  }
  capacity_ = cap;
  if (capacity_ > 0 && events_.size() > capacity_) {
    const size_t excess = events_.size() - capacity_;
    events_.erase(events_.begin(), events_.begin() + static_cast<long>(excess));
    seq_base_ += excess;
    dropped_ += excess;
    dropped_spans_metric().inc(static_cast<long>(excess));
  }
}

size_t Tracer::capacity() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  head_ = 0;
  seq_base_ = 0;
  dropped_ = 0;
  // last_ts_us_ is deliberately kept: timestamps stay monotone across a
  // clear so concatenated exports never jump backwards.
}

size_t Tracer::num_events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return seq_base_ + events_.size();
}

size_t Tracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void Tracer::record(EventKind kind, const std::string& name, const std::string& category,
                    double value, std::string args) {
  const double ts =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - epoch_)
          .count();
  TraceEvent event;
  event.kind = kind;
  event.name = name;
  event.category = category;
  event.value = value;
  event.trace_id = t_context.trace_id;
  event.tid = thread_trace_id();
  event.args = std::move(args);

  const std::lock_guard<std::mutex> lock(mu_);
  if (ts > last_ts_us_) last_ts_us_ = ts;  // clamp: monotone in buffer order
  event.ts_us = last_ts_us_;
  if (capacity_ == 0 || events_.size() < capacity_) {
    events_.push_back(std::move(event));
  } else {
    // Ring is full: overwrite the oldest slot and advance the window.
    events_[head_] = std::move(event);
    head_ = (head_ + 1) % capacity_;
    ++seq_base_;
    ++dropped_;
    dropped_spans_metric().inc();
  }
}

bool Tracer::begin_span(const std::string& name, const std::string& category,
                        std::string args) {
  if (!enabled()) return false;
  record(EventKind::kBegin, name, category, 0.0, std::move(args));
  return true;
}

void Tracer::end_span(const std::string& name, const std::string& category) {
  record(EventKind::kEnd, name, category, 0.0);
}

void Tracer::instant(const std::string& name, const std::string& category,
                     std::string args) {
  if (!enabled()) return;
  record(EventKind::kInstant, name, category, 0.0, std::move(args));
}

void Tracer::counter(const std::string& name, double value, const std::string& category) {
  if (!enabled()) return;
  record(EventKind::kCounter, name, category, value);
}

std::vector<TraceEvent> Tracer::snapshot(size_t since) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const size_t total = seq_base_ + events_.size();
  if (since >= total) return {};

  std::vector<TraceEvent> out;
  const size_t lost = since < seq_base_ ? seq_base_ - since : 0;
  const size_t first = since > seq_base_ ? since - seq_base_ : 0;  // logical index
  out.reserve(events_.size() - first + (lost > 0 ? 1 : 0));
  if (lost > 0) {
    // The requested range lost events to the ring: lead with an explicit
    // marker so consumers never mistake a wrapped export for a complete one
    // (B/E balance is only promised for marker-free snapshots).
    TraceEvent marker;
    marker.kind = EventKind::kInstant;
    marker.name = kTruncationMarkerName;
    marker.category = "obs";
    marker.value = static_cast<double>(lost);
    marker.args = "{\"dropped\": " + std::to_string(lost) + "}";
    marker.ts_us = events_.empty() ? last_ts_us_ : events_[head_].ts_us;
    out.push_back(std::move(marker));
  }
  for (size_t i = first; i < events_.size(); ++i) {
    const size_t slot = capacity_ > 0 ? (head_ + i) % events_.size() : i;
    out.push_back(events_[slot]);
  }
  return out;
}

}  // namespace mintc::obs
