// Per-request cost attribution: a CostAccount accumulates the CPU time and
// engine work (edge relaxations, sweeps, solves) a single request caused,
// across every thread that did work on its behalf.
//
// Wiring: the serve handler owns a CostAccount for the request and installs
// a pointer to it in the thread-local TraceContext (trace.h). The context is
// already copied BY VALUE into every thread-pool task the request forks
// (ParallelFixpoint shards, session solves), so the pointer rides along for
// free — each worker charges the same account through relaxed atomics.
//
// Charging discipline:
//   * CPU time: each thread that works for the request measures its OWN
//     thread CPU clock (CLOCK_THREAD_CPUTIME_ID) around the work and adds
//     the delta. The handler thread covers scalar solves and rendering; the
//     ParallelFixpoint shards add their slices from inside run_chain. The
//     total is real CPU burned, not wall time — a request that waited in a
//     queue is not charged for the wait.
//   * Engine work: the fixpoint engines charge relaxations/sweeps ONCE at
//     solve completion from their own EngineStats, so the account matches
//     what `stats` reports bit-for-bit and nothing is double counted.
//
// Cache hits charge (almost) nothing by construction: a cached response
// never reaches an engine, so only the handler's lookup/render CPU appears.
//
// When no account is installed (cost attribution off, or a worker running
// someone else's task) every charge helper is a pointer test — the hot
// paths stay within the telemetry overhead budget.
#pragma once

#include <atomic>
#include <cstdint>

namespace mintc::obs {

/// Work attributed to one request. Charged concurrently from every thread
/// the request touched; read once by the handler when building the response.
struct CostAccount {
  std::atomic<std::int64_t> cpu_us{0};         // thread CPU time, microseconds
  std::atomic<std::int64_t> relaxations{0};    // eq.17 edge relaxations
  std::atomic<std::int64_t> sweeps{0};         // fixpoint sweeps (max shard depth)
  std::atomic<std::int64_t> solves{0};         // engine solve completions

  void add_cpu_us(std::int64_t us) {
    if (us > 0) cpu_us.fetch_add(us, std::memory_order_relaxed);
  }
  void add_solve(std::int64_t relaxed_edges, std::int64_t sweep_count) {
    relaxations.fetch_add(relaxed_edges, std::memory_order_relaxed);
    sweeps.fetch_add(sweep_count, std::memory_order_relaxed);
    solves.fetch_add(1, std::memory_order_relaxed);
  }
};

/// The calling thread's current account (nullptr when none installed) —
/// reads the thread-local TraceContext. One TLS read; safe on hot paths
/// when hoisted out of inner loops.
CostAccount* current_cost_account();

/// This thread's CPU time in microseconds (CLOCK_THREAD_CPUTIME_ID).
/// Returns 0 where the clock is unavailable, so deltas degrade to zero
/// rather than garbage.
std::int64_t thread_cpu_now_us();

/// RAII: measure this thread's CPU time across a scope and charge the delta
/// to the account captured at CONSTRUCTION (so a task that installs the
/// request context after constructing the timer still charges correctly
/// pass the account explicitly in that case). No-op when account is null.
class ThreadCpuTimer {
 public:
  explicit ThreadCpuTimer(CostAccount* account)
      : account_(account), start_us_(account ? thread_cpu_now_us() : 0) {}
  ~ThreadCpuTimer() {
    if (account_ != nullptr) account_->add_cpu_us(thread_cpu_now_us() - start_us_);
  }
  ThreadCpuTimer(const ThreadCpuTimer&) = delete;
  ThreadCpuTimer& operator=(const ThreadCpuTimer&) = delete;

 private:
  CostAccount* account_;
  std::int64_t start_us_;
};

/// Charge a completed engine solve to the current thread's account, if any.
/// Called once per solve by the fixpoint engines (scalar and parallel) with
/// the EngineStats totals, keeping account == stats by construction.
void charge_solve(std::int64_t relaxations, std::int64_t sweeps);

}  // namespace mintc::obs
