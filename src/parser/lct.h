// Reader/writer for the `.lct` (latch-controlled timing) circuit format —
// the library's equivalent of the paper's "simple parser".
//
// Line-oriented, '#' comments, keyword lines:
//
//   circuit <name>
//   phases <k>
//   latch <name> phase=<p> setup=<ns> dq=<ns> [hold=<ns>] [dqmin=<ns>]
//   flipflop <name> phase=<p> setup=<ns> cq=<ns> [hold=<ns>]
//   path <from> <to> delay=<ns> [min=<ns>] [label=<str>]
//
// Attribute values may be double-quoted: `label="ALU stage"`. Inside
// quotes, whitespace, '#' and '=' are literal, and '"' / '\' are written
// as '\"' / '\\'. The writer quotes automatically whenever a bare value
// would not re-parse. `min` must not exceed `delay` (rejected at parse
// time with the offending line number).
//
// `circuit` and `phases` must precede any element; elements must precede
// the paths that reference them. Unknown keywords are errors (this is a
// timing sign-off input; silently ignoring lines would be dangerous).
#pragma once

#include <string>
#include <string_view>

#include "base/error.h"
#include "model/circuit.h"

namespace mintc::parser {

/// Parse a circuit from text. Errors carry the offending line number.
Expected<Circuit> parse_circuit(std::string_view text);

/// Load from a file.
Expected<Circuit> load_circuit(const std::string& path);

/// Serialize to .lct text (round-trips through parse_circuit).
std::string write_circuit(const Circuit& circuit);

/// Save to a file.
Expected<bool> save_circuit(const Circuit& circuit, const std::string& path);

}  // namespace mintc::parser
