// Reader for a structural Verilog subset — gate-level input for the
// netlist substrate, so existing gate-level designs can flow into the
// timing model without conversion to .lct by hand.
//
// Supported subset:
//   module <name> (...);            port list tolerated and ignored
//     wire a, b, c;                 optional; nets may also appear implicitly
//     input/output ...;             tolerated and ignored
//     nand g1 (out, in1, in2);      primitives: and or nand nor xor xnor buf
//                                   not, plus the extension cells mux2/aoi21
//     latch #(.phase(1), .setup(0.3), .dq(0.5))  L1 (.d(din), .q(qout));
//     dff   #(.phase(2), .setup(0.2), .cq(0.4))  F1 (.d(d2),  .q(q2));
//   endmodule
//
// Comments: // and /* */. One module per file. Gate outputs come first
// (Verilog primitive convention). Storage cells use named pins and
// parameters; optional parameters: hold, dqmin.
#pragma once

#include <string>
#include <string_view>

#include "base/error.h"
#include "netlist/netlist.h"

namespace mintc::parser {

/// Parse the subset; `num_phases` of the resulting netlist is the highest
/// phase referenced by any storage cell.
Expected<netlist::Netlist> parse_verilog(std::string_view text);

Expected<netlist::Netlist> load_verilog(const std::string& path);

}  // namespace mintc::parser
