#include "parser/verilog.h"

#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "base/strings.h"

namespace mintc::parser {

namespace {

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kEnd } kind = Kind::kEnd;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Expected<std::vector<Token>> run() {
    std::vector<Token> out;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '*') {
        const int start_line = line_;
        pos_ += 2;
        while (pos_ + 1 < src_.size() && !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
          if (src_[pos_] == '\n') ++line_;
          ++pos_;
        }
        if (pos_ + 1 >= src_.size()) {
          return make_error(ErrorKind::kInvalidArgument,
                            "line " + std::to_string(start_line) + ": unterminated comment");
        }
        pos_ += 2;
      } else if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' || c == '\\') {
        size_t j = pos_;
        if (c == '\\') ++j;  // escaped identifier: read to whitespace
        while (j < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[j])) != 0 || src_[j] == '_' ||
                src_[j] == '$')) {
          ++j;
        }
        out.push_back({Token::Kind::kIdent, std::string(src_.substr(pos_, j - pos_)), line_});
        pos_ = j;
      } else if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '.') {
        // Numbers (possibly forming part of ".name(" — disambiguate: a '.'
        // followed by a letter is a named-pin introducer).
        if (c == '.' && pos_ + 1 < src_.size() &&
            std::isalpha(static_cast<unsigned char>(src_[pos_ + 1])) != 0) {
          out.push_back({Token::Kind::kPunct, ".", line_});
          ++pos_;
          continue;
        }
        size_t j = pos_;
        while (j < src_.size() &&
               (std::isdigit(static_cast<unsigned char>(src_[j])) != 0 || src_[j] == '.' ||
                src_[j] == 'e' || src_[j] == 'E' ||
                ((src_[j] == '+' || src_[j] == '-') && j > pos_ &&
                 (src_[j - 1] == 'e' || src_[j - 1] == 'E')))) {
          ++j;
        }
        out.push_back({Token::Kind::kNumber, std::string(src_.substr(pos_, j - pos_)), line_});
        pos_ = j;
      } else {
        out.push_back({Token::Kind::kPunct, std::string(1, c), line_});
        ++pos_;
      }
    }
    out.push_back({Token::Kind::kEnd, "", line_});
    return out;
  }

 private:
  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
};

const std::map<std::string, netlist::GateType>& primitive_table() {
  static const std::map<std::string, netlist::GateType> table = {
      {"and", netlist::GateType::kAnd},   {"or", netlist::GateType::kOr},
      {"nand", netlist::GateType::kNand}, {"nor", netlist::GateType::kNor},
      {"xor", netlist::GateType::kXor},   {"xnor", netlist::GateType::kXnor},
      {"buf", netlist::GateType::kBuf},   {"not", netlist::GateType::kInv},
      // Extension cells matching the netlist library (not Verilog built-ins).
      {"mux2", netlist::GateType::kMux2}, {"aoi21", netlist::GateType::kAoi21},
  };
  return table;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Expected<netlist::Netlist> run() {
    // module <name> ( ... ) ;
    if (auto e = expect_ident("module")) return *e;
    const Token name = cur();
    if (name.kind != Token::Kind::kIdent) return err("expected module name");
    advance();
    module_name_ = name.text;
    if (cur().text == "(") {
      // Skip the port list.
      int depth = 0;
      while (cur().kind != Token::Kind::kEnd) {
        if (cur().text == "(") ++depth;
        if (cur().text == ")" && --depth == 0) {
          advance();
          break;
        }
        advance();
      }
    }
    if (auto e = expect_punct(";")) return *e;

    while (cur().kind != Token::Kind::kEnd && cur().text != "endmodule") {
      if (auto e = statement()) return *e;
    }
    if (cur().text != "endmodule") return err("missing endmodule");

    // Assemble the netlist now that the highest phase is known.
    netlist::Netlist nl(module_name_, std::max(1, max_phase_));
    std::map<std::string, int> nets;
    const auto net_of = [&](const std::string& n) {
      const auto it = nets.find(n);
      if (it != nets.end()) return it->second;
      const int id = nl.add_net(n);
      nets.emplace(n, id);
      return id;
    };
    for (const Gate& g : gates_) {
      std::vector<int> ins;
      ins.reserve(g.inputs.size());
      for (const std::string& n : g.inputs) ins.push_back(net_of(n));
      nl.add_gate(g.name, g.type, std::move(ins), net_of(g.output));
    }
    for (const Storage& s : storages_) {
      if (s.is_latch) {
        const int id = nl.add_latch(s.name, s.phase, net_of(s.d), net_of(s.q), s.setup, s.dq);
        nl.storage(id).hold = s.hold;
        nl.storage(id).dq_min = s.dq_min;
        nl.storage(id).skew = s.skew;
      } else {
        const int id =
            nl.add_flipflop(s.name, s.phase, net_of(s.d), net_of(s.q), s.setup, s.dq);
        nl.storage(id).hold = s.hold;
        nl.storage(id).skew = s.skew;
      }
    }
    return nl;
  }

 private:
  struct Gate {
    std::string name;
    netlist::GateType type;
    std::string output;
    std::vector<std::string> inputs;
  };
  struct Storage {
    std::string name;
    bool is_latch = true;
    int phase = 1;
    double setup = 0.0, dq = 0.0, hold = 0.0, dq_min = -1.0, skew = 0.0;
    std::string d, q;
  };

  const Token& cur() const { return tokens_[idx_]; }
  void advance() {
    if (idx_ + 1 < tokens_.size()) ++idx_;
  }

  Error err(const std::string& what) const {
    return make_error(ErrorKind::kInvalidArgument,
                      "line " + std::to_string(cur().line) + ": " + what +
                          (cur().text.empty() ? "" : " (at '" + cur().text + "')"));
  }
  std::optional<Error> expect_punct(const std::string& p) {
    if (cur().text != p) return err("expected '" + p + "'");
    advance();
    return std::nullopt;
  }
  std::optional<Error> expect_ident(const std::string& kw) {
    if (cur().kind != Token::Kind::kIdent || cur().text != kw) {
      return err("expected '" + kw + "'");
    }
    advance();
    return std::nullopt;
  }

  std::optional<Error> statement() {
    if (cur().kind != Token::Kind::kIdent) return err("expected statement");
    const std::string kw = cur().text;
    if (kw == "wire" || kw == "input" || kw == "output" || kw == "inout") {
      // Declarations: skip identifiers/commas to ';'.
      advance();
      while (cur().text != ";" && cur().kind != Token::Kind::kEnd) advance();
      return expect_punct(";");
    }
    if (primitive_table().count(kw) != 0) return gate_stmt(primitive_table().at(kw));
    if (kw == "latch" || kw == "dff") return storage_stmt(kw == "latch");
    return err("unknown statement '" + kw + "'");
  }

  std::optional<Error> gate_stmt(netlist::GateType type) {
    advance();  // primitive keyword
    if (cur().kind != Token::Kind::kIdent) return err("expected instance name");
    Gate g;
    g.type = type;
    g.name = cur().text;
    advance();
    if (auto e = expect_punct("(")) return e;
    // Output first, then inputs (Verilog primitive pin order).
    std::vector<std::string> pins;
    while (true) {
      if (cur().kind != Token::Kind::kIdent) return err("expected net name");
      pins.push_back(cur().text);
      advance();
      if (cur().text == ",") {
        advance();
        continue;
      }
      break;
    }
    if (auto e = expect_punct(")")) return e;
    if (auto e = expect_punct(";")) return e;
    if (pins.size() < 2) return err("primitive needs an output and at least one input");
    g.output = pins.front();
    g.inputs.assign(pins.begin() + 1, pins.end());
    gates_.push_back(std::move(g));
    return std::nullopt;
  }

  std::optional<Error> storage_stmt(bool is_latch) {
    advance();  // latch/dff
    Storage s;
    s.is_latch = is_latch;
    // Parameter block: #(.key(value), ...).
    if (cur().text == "#") {
      advance();
      if (auto e = expect_punct("(")) return e;
      while (true) {
        if (auto e = expect_punct(".")) return e;
        if (cur().kind != Token::Kind::kIdent) return err("expected parameter name");
        const std::string key = cur().text;
        advance();
        if (auto e = expect_punct("(")) return e;
        // Accept a sign so negative values reach the per-parameter
        // diagnostics below instead of a generic token error.
        double sign = 1.0;
        if (cur().kind == Token::Kind::kPunct && cur().text == "-") {
          sign = -1.0;
          advance();
        }
        if (cur().kind != Token::Kind::kNumber) return err("expected numeric parameter");
        double value = 0.0;
        if (!parse_double(cur().text, value)) return err("bad number");
        value *= sign;
        advance();
        if (auto e = expect_punct(")")) return e;
        if (value < 0.0 && key != "dqmin" && key != "skew") {
          return err("parameter '" + key + "' must be nonnegative");
        }
        if (key == "phase") {
          s.phase = static_cast<int>(value);
        } else if (key == "setup") {
          s.setup = value;
        } else if (key == "dq" || key == "cq") {
          s.dq = value;
        } else if (key == "hold") {
          s.hold = value;
        } else if (key == "dqmin") {
          s.dq_min = value;
        } else if (key == "skew") {
          if (!std::isfinite(value) || value < 0.0) {
            return err("skew must be finite and nonnegative");
          }
          s.skew = value;
        } else {
          return err("unknown parameter '" + key + "'");
        }
        if (cur().text == ",") {
          advance();
          continue;
        }
        break;
      }
      if (auto e = expect_punct(")")) return e;
    }
    if (cur().kind != Token::Kind::kIdent) return err("expected instance name");
    s.name = cur().text;
    advance();
    if (auto e = expect_punct("(")) return e;
    // Named pins .d(net), .q(net).
    while (true) {
      if (auto e = expect_punct(".")) return e;
      if (cur().kind != Token::Kind::kIdent) return err("expected pin name");
      const std::string pin = cur().text;
      advance();
      if (auto e = expect_punct("(")) return e;
      if (cur().kind != Token::Kind::kIdent) return err("expected net name");
      const std::string net = cur().text;
      advance();
      if (auto e = expect_punct(")")) return e;
      if (pin == "d") {
        s.d = net;
      } else if (pin == "q") {
        s.q = net;
      } else {
        return err("unknown pin '" + pin + "' (expected d or q)");
      }
      if (cur().text == ",") {
        advance();
        continue;
      }
      break;
    }
    if (auto e = expect_punct(")")) return e;
    if (auto e = expect_punct(";")) return e;
    if (s.d.empty() || s.q.empty()) return err("storage needs both .d and .q pins");
    if (s.phase < 1) return err("storage needs phase >= 1");
    max_phase_ = std::max(max_phase_, s.phase);
    storages_.push_back(std::move(s));
    return std::nullopt;
  }

  std::vector<Token> tokens_;
  size_t idx_ = 0;
  std::string module_name_;
  int max_phase_ = 0;
  std::vector<Gate> gates_;
  std::vector<Storage> storages_;
};

}  // namespace

Expected<netlist::Netlist> parse_verilog(std::string_view text) {
  Lexer lexer(text);
  auto tokens = lexer.run();
  if (!tokens) return tokens.error();
  Parser parser(std::move(tokens.value()));
  return parser.run();
}

Expected<netlist::Netlist> load_verilog(const std::string& path) {
  std::ifstream in(path);
  if (!in) return make_error(ErrorKind::kIo, "cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_verilog(buf.str());
}

}  // namespace mintc::parser
