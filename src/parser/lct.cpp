#include "parser/lct.h"

#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>

#include "base/strings.h"

namespace mintc::parser {

namespace {

Error parse_error(int line, const std::string& what) {
  return make_error(ErrorKind::kInvalidArgument,
                    "line " + std::to_string(line) + ": " + what);
}

// Timing parameters must be finite: strtod happily accepts "nan" and "inf",
// and a single NaN poisons every downstream max/min fixpoint.
bool parse_finite(std::string_view s, double& out) {
  return parse_double(s, out) && std::isfinite(out);
}

// Strip a '#' comment, ignoring '#' inside double-quoted values.
std::string_view strip_comment(std::string_view raw) {
  bool in_quote = false;
  for (size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    if (in_quote) {
      if (c == '\\') ++i;  // skip the escaped character
      else if (c == '"') in_quote = false;
    } else if (c == '"') {
      in_quote = true;
    } else if (c == '#') {
      return raw.substr(0, i);
    }
  }
  return raw;
}

// Split into whitespace-separated tokens, keeping double-quoted spans (with
// backslash escapes) inside a single token. Returns nullopt on an
// unterminated quote.
std::optional<std::vector<std::string_view>> split_tokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    const size_t start = i;
    bool in_quote = false;
    while (i < line.size()) {
      const char c = line[i];
      if (in_quote) {
        if (c == '\\' && i + 1 < line.size()) ++i;
        else if (c == '"') in_quote = false;
      } else if (c == '"') {
        in_quote = true;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        break;
      }
      ++i;
    }
    if (in_quote) return std::nullopt;
    tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

// Undo the writer's quoting: `"a\"b"` -> `a"b`. Values not starting with a
// quote pass through verbatim. Returns nullopt on a malformed quoted value.
std::optional<std::string> unquote(std::string_view v) {
  if (v.empty() || v.front() != '"') return std::string(v);
  if (v.size() < 2 || v.back() != '"') return std::nullopt;
  std::string out;
  out.reserve(v.size() - 2);
  for (size_t i = 1; i + 1 < v.size(); ++i) {
    if (v[i] == '\\') {
      if (i + 2 >= v.size()) return std::nullopt;
      ++i;
      if (v[i] != '"' && v[i] != '\\') return std::nullopt;
    }
    out.push_back(v[i]);
  }
  return out;
}

// Parse "key=value" attributes following the positional tokens.
std::optional<std::map<std::string, std::string>> parse_attrs(
    const std::vector<std::string_view>& tokens, size_t first) {
  std::map<std::string, std::string> attrs;
  for (size_t i = first; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string_view::npos || eq == 0) return std::nullopt;
    const auto value = unquote(tokens[i].substr(eq + 1));
    if (!value) return std::nullopt;
    attrs[std::string(tokens[i].substr(0, eq))] = *value;
  }
  return attrs;
}

// Quote an attribute value when emitting it bare would not survive
// strip_comment/split_tokens/parse_attrs: whitespace splits tokens, '#'
// starts a comment, '=' before the real separator shifts the key, and
// quote/backslash collide with the escape syntax.
std::string quote_value(const std::string& v) {
  if (!v.empty() && v.find_first_of(" \t#\"\\=") == std::string::npos) return v;
  std::string out = "\"";
  for (const char c : v) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

Expected<Circuit> parse_circuit(std::string_view text) {
  std::string name = "unnamed";
  int phases = -1;
  std::optional<Circuit> circuit;

  // Accumulated element declarations, applied once `phases` is known.
  const auto require_circuit = [&]() -> Circuit& {
    if (!circuit) circuit.emplace(name, phases);
    return *circuit;
  };

  int line_no = 0;
  for (std::string_view raw : split(text, '\n')) {
    ++line_no;
    const std::string_view line = trim(strip_comment(raw));
    if (line.empty()) continue;
    const auto tokens = split_tokens(line);
    if (!tokens) return parse_error(line_no, "unterminated quote");
    const std::vector<std::string_view>& tok = *tokens;
    const std::string_view kw = tok[0];

    if (kw == "circuit") {
      if (tok.size() != 2) return parse_error(line_no, "usage: circuit <name>");
      if (circuit) return parse_error(line_no, "'circuit' must precede all elements");
      name = std::string(tok[1]);
    } else if (kw == "phases") {
      if (tok.size() != 2 || !parse_int(tok[1], phases) || phases < 1) {
        return parse_error(line_no, "usage: phases <k>, k >= 1");
      }
      if (circuit) return parse_error(line_no, "'phases' must precede all elements");
    } else if (kw == "latch" || kw == "flipflop") {
      if (phases < 1) return parse_error(line_no, "'phases' must come before elements");
      if (tok.size() < 2) return parse_error(line_no, "missing element name");
      const auto attrs = parse_attrs(tok, 2);
      if (!attrs) return parse_error(line_no, "malformed key=value attribute");
      Element e;
      e.name = std::string(tok[1]);
      e.kind = (kw == "latch") ? ElementKind::kLatch : ElementKind::kFlipFlop;
      const std::string dq_key = (kw == "latch") ? "dq" : "cq";
      for (const auto& [key, value] : *attrs) {
        double dv = 0.0;
        if (key == "phase") {
          if (!parse_int(value, e.phase)) return parse_error(line_no, "bad phase");
        } else if (key == dq_key) {
          if (!parse_finite(value, dv)) return parse_error(line_no, "bad " + dq_key);
          e.dq = dv;
        } else if (key == "setup") {
          if (!parse_finite(value, dv)) return parse_error(line_no, "bad setup");
          e.setup = dv;
        } else if (key == "hold") {
          if (!parse_finite(value, dv)) return parse_error(line_no, "bad hold");
          e.hold = dv;
        } else if (key == "dqmin") {
          if (!parse_finite(value, dv)) return parse_error(line_no, "bad dqmin");
          e.dq_min = dv;
        } else if (key == "skew") {
          if (!parse_finite(value, dv) || dv < 0.0) {
            return parse_error(line_no, "bad skew (must be finite and nonnegative)");
          }
          e.skew = dv;
        } else {
          return parse_error(line_no, "unknown attribute '" + key + "'");
        }
      }
      Circuit& c = require_circuit();
      if (c.find_element(e.name)) {
        return parse_error(line_no, "duplicate element '" + e.name + "'");
      }
      if (e.phase < 1 || e.phase > phases) {
        return parse_error(line_no, "element '" + e.name + "' phase out of range");
      }
      c.add_element(std::move(e));
    } else if (kw == "path") {
      if (!circuit) return parse_error(line_no, "'path' before any element");
      if (tok.size() < 3) return parse_error(line_no, "usage: path <from> <to> delay=<d> ...");
      const auto attrs = parse_attrs(tok, 3);
      if (!attrs) return parse_error(line_no, "malformed key=value attribute");
      const auto from = circuit->find_element(std::string(tok[1]));
      const auto to = circuit->find_element(std::string(tok[2]));
      if (!from) return parse_error(line_no, "unknown element '" + std::string(tok[1]) + "'");
      if (!to) return parse_error(line_no, "unknown element '" + std::string(tok[2]) + "'");
      double delay = -1.0;
      double min_delay = 0.0;
      std::string label;
      for (const auto& [key, value] : *attrs) {
        if (key == "delay") {
          if (!parse_finite(value, delay)) return parse_error(line_no, "bad delay");
        } else if (key == "min") {
          if (!parse_finite(value, min_delay)) return parse_error(line_no, "bad min");
        } else if (key == "label") {
          label = value;
        } else {
          return parse_error(line_no, "unknown attribute '" + key + "'");
        }
      }
      if (delay < 0.0) return parse_error(line_no, "path requires delay=<nonnegative>");
      if (min_delay > delay) {
        return parse_error(line_no, "path min=" + fmt_time(min_delay, 6) +
                                        " exceeds delay=" + fmt_time(delay, 6));
      }
      circuit->add_path(*from, *to, delay, min_delay, std::move(label));
    } else {
      return parse_error(line_no, "unknown keyword '" + std::string(kw) + "'");
    }
  }

  if (phases < 1) {
    return make_error(ErrorKind::kInvalidArgument, "file declares no 'phases' line");
  }
  return require_circuit();
}

Expected<Circuit> load_circuit(const std::string& path) {
  std::ifstream in(path);
  if (!in) return make_error(ErrorKind::kIo, "cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_circuit(buf.str());
}

std::string write_circuit(const Circuit& circuit) {
  std::ostringstream out;
  out << "circuit " << circuit.name() << "\n";
  out << "phases " << circuit.num_phases() << "\n";
  for (const Element& e : circuit.elements()) {
    out << (e.is_latch() ? "latch " : "flipflop ") << e.name << " phase=" << e.phase
        << " setup=" << fmt_time(e.setup, 6) << (e.is_latch() ? " dq=" : " cq=")
        << fmt_time(e.dq, 6);
    if (e.hold != 0.0) out << " hold=" << fmt_time(e.hold, 6);
    if (e.dq_min >= 0.0) out << " dqmin=" << fmt_time(e.dq_min, 6);
    if (e.skew != 0.0) out << " skew=" << fmt_time(e.skew, 6);
    out << "\n";
  }
  for (const CombPath& p : circuit.paths()) {
    out << "path " << circuit.element(p.from).name << " " << circuit.element(p.to).name
        << " delay=" << fmt_time(p.delay, 6);
    if (p.min_delay != 0.0) out << " min=" << fmt_time(p.min_delay, 6);
    if (!p.label.empty()) out << " label=" << quote_value(p.label);
    out << "\n";
  }
  return out.str();
}

Expected<bool> save_circuit(const Circuit& circuit, const std::string& path) {
  std::ofstream out(path);
  if (!out) return make_error(ErrorKind::kIo, "cannot write '" + path + "'");
  out << write_circuit(circuit);
  return true;
}

}  // namespace mintc::parser
