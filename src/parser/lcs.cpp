#include "parser/lcs.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "base/strings.h"

namespace mintc::parser {

namespace {
Error parse_error(int line, const std::string& what) {
  return make_error(ErrorKind::kInvalidArgument,
                    "line " + std::to_string(line) + ": " + what);
}

// Reject "nan"/"inf": strtod accepts them, but a non-finite cycle or edge
// position makes every shift S_ij non-finite.
bool parse_finite(std::string_view s, double& out) {
  return parse_double(s, out) && std::isfinite(out);
}
}  // namespace

Expected<ClockSchedule> parse_schedule(std::string_view text) {
  ClockSchedule sch;
  bool have_cycle = false;
  int line_no = 0;
  for (std::string_view raw : split(text, '\n')) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string_view::npos) raw = raw.substr(0, hash);
    const std::string_view line = trim(raw);
    if (line.empty()) continue;
    const std::vector<std::string_view> tok = split_ws(line);

    if (tok[0] == "cycle") {
      if (tok.size() != 2 || !parse_finite(tok[1], sch.cycle)) {
        return parse_error(line_no, "usage: cycle <Tc>");
      }
      have_cycle = true;
    } else if (tok[0] == "phase") {
      int idx = 0;
      if (tok.size() != 4 || !parse_int(tok[1], idx)) {
        return parse_error(line_no, "usage: phase <i> start=<s> width=<T>");
      }
      if (idx != static_cast<int>(sch.start.size()) + 1) {
        return parse_error(line_no, "phases must be declared 1..k in order");
      }
      double s = 0.0;
      double w = 0.0;
      bool got_s = false;
      bool got_w = false;
      for (size_t i = 2; i < tok.size(); ++i) {
        const auto eq = tok[i].find('=');
        if (eq == std::string_view::npos) return parse_error(line_no, "expected key=value");
        const std::string_view key = tok[i].substr(0, eq);
        const std::string_view value = tok[i].substr(eq + 1);
        if (key == "start" && parse_finite(value, s)) {
          got_s = true;
        } else if (key == "width" && parse_finite(value, w)) {
          got_w = true;
        } else {
          return parse_error(line_no, "unknown/bad attribute '" + std::string(key) + "'");
        }
      }
      if (!got_s || !got_w) return parse_error(line_no, "phase needs start= and width=");
      sch.start.push_back(s);
      sch.width.push_back(w);
    } else {
      return parse_error(line_no, "unknown keyword '" + std::string(tok[0]) + "'");
    }
  }
  if (!have_cycle) return make_error(ErrorKind::kInvalidArgument, "missing 'cycle' line");
  if (sch.start.empty()) return make_error(ErrorKind::kInvalidArgument, "no phases declared");
  return sch;
}

Expected<ClockSchedule> load_schedule(const std::string& path) {
  std::ifstream in(path);
  if (!in) return make_error(ErrorKind::kIo, "cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_schedule(buf.str());
}

std::string write_schedule(const ClockSchedule& schedule) {
  std::ostringstream out;
  out << "cycle " << fmt_time(schedule.cycle, 6) << "\n";
  for (int p = 1; p <= schedule.num_phases(); ++p) {
    out << "phase " << p << " start=" << fmt_time(schedule.s(p), 6)
        << " width=" << fmt_time(schedule.T(p), 6) << "\n";
  }
  return out.str();
}

Expected<bool> save_schedule(const ClockSchedule& schedule, const std::string& path) {
  std::ofstream out(path);
  if (!out) return make_error(ErrorKind::kIo, "cannot write '" + path + "'");
  out << write_schedule(schedule);
  return true;
}

}  // namespace mintc::parser
