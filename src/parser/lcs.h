// Reader/writer for the `.lcs` (latch clock schedule) format:
//
//   cycle <Tc>
//   phase <i> start=<s_i> width=<T_i>
//
// Phases must be declared 1..k in order.
#pragma once

#include <string>
#include <string_view>

#include "base/error.h"
#include "model/clock.h"

namespace mintc::parser {

Expected<ClockSchedule> parse_schedule(std::string_view text);
Expected<ClockSchedule> load_schedule(const std::string& path);
std::string write_schedule(const ClockSchedule& schedule);
Expected<bool> save_schedule(const ClockSchedule& schedule, const std::string& path);

}  // namespace mintc::parser
