// Parameterized gate-level design generators.
//
// Produce realistic multi-stage netlists (latch banks separated by
// adder/mixer gate clouds, with end-around feedback) for the large-scale
// extraction tests and benches — the gate-level counterpart of
// circuits/synthetic.h. Deterministic: same config -> same netlist.
#pragma once

#include <cstdint>

#include "model/circuit.h"
#include "netlist/netlist.h"

namespace mintc::netlist {

struct DatapathConfig {
  int bits = 8;        // datapath width (one latch per bit per stage)
  int stages = 4;      // pipeline stages; the last feeds back into the first
  int num_phases = 2;  // stage s is clocked by phase (s mod k) + 1
  double setup = 0.3;
  double dq = 0.5;
};

/// A ring pipeline of latch banks separated by ripple-carry adder clouds.
/// Stage s's cloud mixes each bit with a carry chain, so the worst path
/// through a stage grows with `bits` — useful for exercising the extractor's
/// longest/shortest path machinery at scale.
Netlist make_pipelined_datapath(const DatapathConfig& config);

// ---------------------------------------------------------------------------
// Large-scale timing-graph generators (10^5..10^6 latches).
//
// These produce Circuits directly — at a million latches a gate-level
// netlist plus extraction would dwarf the timing analysis being measured,
// and the paper's model lumps combinational clouds into single CombPath
// delays anyway. Deterministic: same config -> same circuit, element and
// path insertion order included (the parallel determinism suite depends on
// insertion order being reproducible, since it fixes the SCC member order).
// Every generator has a matching reference_schedule() that is provably
// convergent for eq. (17): with `slack` > 1 every feedback loop has strictly
// negative gain, so the fixpoint exists and all schemes terminate.
// ---------------------------------------------------------------------------

/// A `width`-lane, `depth`-stage pipeline: stage s lane w latches, each fed
/// by every lane of stage s-1 within a small `fanin` window. With `ring`
/// set, the last stage feeds stage 0 again (one big nontrivial SCC);
/// otherwise the circuit is acyclic and the SCC partition is all-trivial —
/// the two extremes of the parallel engine's scheduling spectrum.
struct DeepPipelineConfig {
  long depth = 1000;   // stages
  int width = 100;     // latches per stage (depth * width total)
  int fanin = 2;       // stage-to-stage fan-in window per latch (>= 1)
  int num_phases = 2;  // stage s clocked by phase (s mod k) + 1
  bool ring = false;   // close the pipeline into one giant loop
  double dq = 0.5;
  double delay = 1.0;  // every CombPath's max delay
  double setup = 0.3;
};

Circuit make_deep_pipeline(const DeepPipelineConfig& config);

/// A rows x cols 2-D mesh: latch (r, c) feeds (r+1, c) and (r, c+1), phases
/// striped by anti-diagonal. Acyclic, but with a wavefront-shaped dependency
/// DAG — the SCC scheduler's parallelism grows and shrinks as the wavefront
/// crosses the mesh, which is the interesting scheduling shape a plain
/// pipeline lacks.
struct MeshConfig {
  int rows = 316;
  int cols = 316;
  int num_phases = 2;
  double dq = 0.5;
  double delay = 1.0;
  double setup = 0.3;
};

Circuit make_mesh(const MeshConfig& config);

/// `num_sccs` independent feedback rings of `scc_size` latches each, plus
/// `cross_edges` random forward edges between rings (respecting a random
/// topological order, so the rings stay the only cycles). The SCC soup is
/// the parallel engine's best case — thousands of mutually independent
/// nontrivial components — and the topology the determinism suite uses to
/// maximize scheduling nondeterminism.
struct SccSoupConfig {
  int num_sccs = 1000;
  int scc_size = 100;      // latches per ring
  long cross_edges = 2000; // random inter-ring forward edges
  int num_phases = 2;
  std::uint64_t seed = 1;  // drives ring phases and cross-edge placement
  double dq = 0.5;
  double delay = 1.0;
  double setup = 0.3;
};

Circuit make_scc_soup(const SccSoupConfig& config);

/// A symmetric k-phase schedule convergent for any circuit built by the
/// generators above: cycle = slack * num_phases * (dq + delay) makes every
/// phase-stepping loop's gain negative by construction (a loop of m edges
/// accumulates m*(dq + delay) of delay against m/k full cycles of schedule
/// shift). `slack` must be > 1; smaller values mean more sweeps to converge
/// (the contraction per sweep shrinks), which the benches use to scale work.
ClockSchedule generator_schedule(int num_phases, double dq, double delay,
                                 double slack = 1.10);

}  // namespace mintc::netlist
