// Parameterized gate-level design generators.
//
// Produce realistic multi-stage netlists (latch banks separated by
// adder/mixer gate clouds, with end-around feedback) for the large-scale
// extraction tests and benches — the gate-level counterpart of
// circuits/synthetic.h. Deterministic: same config -> same netlist.
#pragma once

#include "netlist/netlist.h"

namespace mintc::netlist {

struct DatapathConfig {
  int bits = 8;        // datapath width (one latch per bit per stage)
  int stages = 4;      // pipeline stages; the last feeds back into the first
  int num_phases = 2;  // stage s is clocked by phase (s mod k) + 1
  double setup = 0.3;
  double dq = 0.5;
};

/// A ring pipeline of latch banks separated by ripple-carry adder clouds.
/// Stage s's cloud mixes each bit with a carry chain, so the worst path
/// through a stage grows with `bits` — useful for exercising the extractor's
/// longest/shortest path machinery at scale.
Netlist make_pipelined_datapath(const DatapathConfig& config);

}  // namespace mintc::netlist
