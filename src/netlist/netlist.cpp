#include "netlist/netlist.h"

#include <cassert>

namespace mintc::netlist {

const char* to_string(GateType type) {
  switch (type) {
    case GateType::kBuf: return "buf";
    case GateType::kInv: return "inv";
    case GateType::kAnd: return "and";
    case GateType::kNand: return "nand";
    case GateType::kOr: return "or";
    case GateType::kNor: return "nor";
    case GateType::kXor: return "xor";
    case GateType::kXnor: return "xnor";
    case GateType::kMux2: return "mux2";
    case GateType::kAoi21: return "aoi21";
  }
  return "?";
}

int gate_arity(GateType type) {
  switch (type) {
    case GateType::kBuf:
    case GateType::kInv:
      return 1;
    case GateType::kXor:
    case GateType::kXnor:
      return 2;
    case GateType::kMux2:
    case GateType::kAoi21:
      return 3;
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor:
      return 0;  // variadic, >= 2
  }
  return 0;
}

double DelayModel::parasitic(GateType type) const {
  // Normalized FO4-flavored parasitics (arbitrary time units).
  switch (type) {
    case GateType::kBuf: return 0.30;
    case GateType::kInv: return 0.15;
    case GateType::kAnd: return 0.45;
    case GateType::kNand: return 0.30;
    case GateType::kOr: return 0.50;
    case GateType::kNor: return 0.35;
    case GateType::kXor: return 0.70;
    case GateType::kXnor: return 0.70;
    case GateType::kMux2: return 0.60;
    case GateType::kAoi21: return 0.45;
  }
  return 0.3;
}

double DelayModel::effort(GateType type) const {
  switch (type) {
    case GateType::kBuf: return 1.0;
    case GateType::kInv: return 1.0;
    case GateType::kAnd: return 1.4;
    case GateType::kNand: return 1.3;
    case GateType::kOr: return 1.7;
    case GateType::kNor: return 1.6;
    case GateType::kXor: return 2.0;
    case GateType::kXnor: return 2.0;
    case GateType::kMux2: return 1.8;
    case GateType::kAoi21: return 1.5;
  }
  return 1.0;
}

double DelayModel::gate_delay(GateType type, int fanout) const {
  return parasitic(type) + effort(type) * load_per_fanout * std::max(1, fanout);
}

Netlist::Netlist(std::string name, int num_phases)
    : name_(std::move(name)), num_phases_(num_phases) {
  assert(num_phases >= 1);
}

int Netlist::add_net(std::string name) {
  assert(net_by_name_.find(name) == net_by_name_.end() && "duplicate net name");
  const int id = static_cast<int>(net_names_.size());
  net_by_name_.emplace(name, id);
  net_names_.push_back(std::move(name));
  driver_count_.push_back(0);
  reader_count_.push_back(0);
  return id;
}

std::optional<int> Netlist::find_net(const std::string& name) const {
  const auto it = net_by_name_.find(name);
  if (it == net_by_name_.end()) return std::nullopt;
  return it->second;
}

int Netlist::add_gate(std::string name, GateType type, std::vector<int> inputs, int output) {
  for (const int n : inputs) ++reader_count_.at(static_cast<size_t>(n));
  ++driver_count_.at(static_cast<size_t>(output));
  gates_.push_back(Gate{std::move(name), type, std::move(inputs), output});
  return static_cast<int>(gates_.size()) - 1;
}

int Netlist::add_latch(std::string name, int phase, int d_net, int q_net, double setup,
                       double dq) {
  ++reader_count_.at(static_cast<size_t>(d_net));
  ++driver_count_.at(static_cast<size_t>(q_net));
  Storage s;
  s.name = std::move(name);
  s.kind = ElementKind::kLatch;
  s.phase = phase;
  s.d_net = d_net;
  s.q_net = q_net;
  s.setup = setup;
  s.dq = dq;
  storages_.push_back(std::move(s));
  return static_cast<int>(storages_.size()) - 1;
}

int Netlist::add_flipflop(std::string name, int phase, int d_net, int q_net, double setup,
                          double clk_to_q) {
  const int id = add_latch(std::move(name), phase, d_net, q_net, setup, clk_to_q);
  storages_.back().kind = ElementKind::kFlipFlop;
  return id;
}

int Netlist::fanout_count(int net) const {
  return reader_count_.at(static_cast<size_t>(net));
}

std::vector<std::string> Netlist::validate() const {
  std::vector<std::string> problems;
  for (int n = 0; n < num_nets(); ++n) {
    if (driver_count_[static_cast<size_t>(n)] > 1) {
      problems.push_back("net '" + net_name(n) + "' has multiple drivers");
    }
  }
  if (storages_.empty()) problems.push_back("netlist has no storage elements");
  for (const Gate& g : gates_) {
    const int arity = gate_arity(g.type);
    if (arity > 0 && static_cast<int>(g.inputs.size()) != arity) {
      problems.push_back("gate '" + g.name + "' (" + to_string(g.type) + ") expects " +
                         std::to_string(arity) + " inputs, has " +
                         std::to_string(g.inputs.size()));
    }
    if (arity == 0 && g.inputs.size() < 2) {
      problems.push_back("gate '" + g.name + "' needs at least two inputs");
    }
  }
  for (const Storage& s : storages_) {
    if (s.phase < 1 || s.phase > num_phases_) {
      problems.push_back("storage '" + s.name + "' phase out of range");
    }
  }
  return problems;
}

}  // namespace mintc::netlist
