// Gate-level netlist substrate.
//
// The paper's GaAs example extracted its Δ_ij / setup parameters "from
// circuit simulations using SPICE". We do not have SPICE or the authors'
// transistor netlists, so this module provides the equivalent pipeline at
// the gate level (DESIGN.md §4): a structural netlist of gates and storage
// cells, a logical-effort-style delay calculator, and an extractor that
// computes worst/best-case block delays between storage elements and emits
// the SMO timing model (a Circuit) consumed by the rest of the library.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/element.h"

namespace mintc::netlist {

enum class GateType { kBuf, kInv, kAnd, kNand, kOr, kNor, kXor, kXnor, kMux2, kAoi21 };

const char* to_string(GateType type);

/// A combinational gate: inputs and one output, all net ids.
struct Gate {
  std::string name;
  GateType type = GateType::kBuf;
  std::vector<int> inputs;
  int output = -1;
};

/// A storage cell (level-sensitive latch or edge-triggered flip-flop)
/// breaking the combinational graph: Q is a source, D is a sink.
struct Storage {
  std::string name;
  ElementKind kind = ElementKind::kLatch;
  int phase = 1;
  int d_net = -1;
  int q_net = -1;
  double setup = 0.0;
  double dq = 0.0;
  double hold = 0.0;
  double dq_min = -1.0;
  double skew = 0.0;
};

/// Logical-effort-flavored delay calculator: a gate's delay is
///   parasitic(type) + effort(type) * load_per_fanout * fanout(output net)
/// and its best-case delay is `min_scale` times that.
struct DelayModel {
  double load_per_fanout = 0.2;
  double min_scale = 0.5;

  double parasitic(GateType type) const;
  double effort(GateType type) const;
  double gate_delay(GateType type, int fanout) const;
};

class Netlist {
 public:
  Netlist(std::string name, int num_phases);

  const std::string& name() const { return name_; }
  int num_phases() const { return num_phases_; }

  /// Nets are named wires; ids are dense.
  int add_net(std::string name);
  std::optional<int> find_net(const std::string& name) const;
  const std::string& net_name(int net) const { return net_names_.at(static_cast<size_t>(net)); }
  int num_nets() const { return static_cast<int>(net_names_.size()); }

  int add_gate(std::string name, GateType type, std::vector<int> inputs, int output);
  int add_latch(std::string name, int phase, int d_net, int q_net, double setup, double dq);
  int add_flipflop(std::string name, int phase, int d_net, int q_net, double setup,
                   double clk_to_q);

  const std::vector<Gate>& gates() const { return gates_; }
  const std::vector<Storage>& storages() const { return storages_; }
  Storage& storage(int i) { return storages_.at(static_cast<size_t>(i)); }

  /// Number of gate inputs plus storage D pins reading this net.
  int fanout_count(int net) const;

  /// Structural checks: single driver per net, pins in range, at least one
  /// storage, gate arity matches type.
  std::vector<std::string> validate() const;

 private:
  std::string name_;
  int num_phases_;
  std::vector<std::string> net_names_;
  std::unordered_map<std::string, int> net_by_name_;
  std::vector<Gate> gates_;
  std::vector<Storage> storages_;
  std::vector<int> driver_count_;   // per net
  std::vector<int> reader_count_;   // per net
};

/// Expected input arity of a gate type (0 = variadic >= 2).
int gate_arity(GateType type);

}  // namespace mintc::netlist
