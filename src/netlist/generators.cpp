#include "netlist/generators.h"

#include <cassert>
#include <string>

namespace mintc::netlist {

Netlist make_pipelined_datapath(const DatapathConfig& cfg) {
  assert(cfg.bits >= 1 && cfg.stages >= 2 && cfg.num_phases >= 1);
  Netlist n("datapath_b" + std::to_string(cfg.bits) + "_s" + std::to_string(cfg.stages),
            cfg.num_phases);

  // Latch banks: d/q nets per stage per bit.
  std::vector<std::vector<int>> d(static_cast<size_t>(cfg.stages));
  std::vector<std::vector<int>> q(static_cast<size_t>(cfg.stages));
  for (int s = 0; s < cfg.stages; ++s) {
    for (int b = 0; b < cfg.bits; ++b) {
      const std::string tag = "s" + std::to_string(s) + "b" + std::to_string(b);
      d[static_cast<size_t>(s)].push_back(n.add_net("d_" + tag));
      q[static_cast<size_t>(s)].push_back(n.add_net("q_" + tag));
    }
    for (int b = 0; b < cfg.bits; ++b) {
      n.add_latch("L_s" + std::to_string(s) + "b" + std::to_string(b),
                  (s % cfg.num_phases) + 1, d[static_cast<size_t>(s)][static_cast<size_t>(b)],
                  q[static_cast<size_t>(s)][static_cast<size_t>(b)], cfg.setup, cfg.dq);
    }
  }

  // Clouds: stage s outputs feed stage (s+1) mod stages through a
  // ripple-carry adder mixing each bit with the running carry.
  for (int s = 0; s < cfg.stages; ++s) {
    const int t = (s + 1) % cfg.stages;
    const std::string tag = "c" + std::to_string(s);
    int carry = q[static_cast<size_t>(s)][0];
    for (int b = 0; b < cfg.bits; ++b) {
      const int in = q[static_cast<size_t>(s)][static_cast<size_t>(b)];
      const std::string bit_tag = tag + "b" + std::to_string(b);
      // sum = in XOR carry  -> next stage bit b
      n.add_gate("xor_" + bit_tag, GateType::kXor, {in, carry},
                 d[static_cast<size_t>(t)][static_cast<size_t>(b)]);
      if (b + 1 < cfg.bits) {
        // carry' = AND(in, carry)
        const int next_carry = n.add_net("carry_" + bit_tag);
        n.add_gate("and_" + bit_tag, GateType::kAnd, {in, carry}, next_carry);
        carry = next_carry;
      }
    }
  }
  return n;
}

}  // namespace mintc::netlist
