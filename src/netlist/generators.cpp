#include "netlist/generators.h"

#include <cassert>
#include <random>
#include <string>
#include <vector>

namespace mintc::netlist {

Netlist make_pipelined_datapath(const DatapathConfig& cfg) {
  assert(cfg.bits >= 1 && cfg.stages >= 2 && cfg.num_phases >= 1);
  Netlist n("datapath_b" + std::to_string(cfg.bits) + "_s" + std::to_string(cfg.stages),
            cfg.num_phases);

  // Latch banks: d/q nets per stage per bit.
  std::vector<std::vector<int>> d(static_cast<size_t>(cfg.stages));
  std::vector<std::vector<int>> q(static_cast<size_t>(cfg.stages));
  for (int s = 0; s < cfg.stages; ++s) {
    for (int b = 0; b < cfg.bits; ++b) {
      const std::string tag = "s" + std::to_string(s) + "b" + std::to_string(b);
      d[static_cast<size_t>(s)].push_back(n.add_net("d_" + tag));
      q[static_cast<size_t>(s)].push_back(n.add_net("q_" + tag));
    }
    for (int b = 0; b < cfg.bits; ++b) {
      n.add_latch("L_s" + std::to_string(s) + "b" + std::to_string(b),
                  (s % cfg.num_phases) + 1, d[static_cast<size_t>(s)][static_cast<size_t>(b)],
                  q[static_cast<size_t>(s)][static_cast<size_t>(b)], cfg.setup, cfg.dq);
    }
  }

  // Clouds: stage s outputs feed stage (s+1) mod stages through a
  // ripple-carry adder mixing each bit with the running carry.
  for (int s = 0; s < cfg.stages; ++s) {
    const int t = (s + 1) % cfg.stages;
    const std::string tag = "c" + std::to_string(s);
    int carry = q[static_cast<size_t>(s)][0];
    for (int b = 0; b < cfg.bits; ++b) {
      const int in = q[static_cast<size_t>(s)][static_cast<size_t>(b)];
      const std::string bit_tag = tag + "b" + std::to_string(b);
      // sum = in XOR carry  -> next stage bit b
      n.add_gate("xor_" + bit_tag, GateType::kXor, {in, carry},
                 d[static_cast<size_t>(t)][static_cast<size_t>(b)]);
      if (b + 1 < cfg.bits) {
        // carry' = AND(in, carry)
        const int next_carry = n.add_net("carry_" + bit_tag);
        n.add_gate("and_" + bit_tag, GateType::kAnd, {in, carry}, next_carry);
        carry = next_carry;
      }
    }
  }
  return n;
}

namespace {

// Insertion-order-stable latch id: short names keep the by-name map cheap at
// a million elements.
std::string latch_name(long i) { return "l" + std::to_string(i); }

}  // namespace

Circuit make_deep_pipeline(const DeepPipelineConfig& cfg) {
  assert(cfg.depth >= 1 && cfg.width >= 1 && cfg.fanin >= 1 && cfg.num_phases >= 1);
  Circuit c("deep_pipeline_d" + std::to_string(cfg.depth) + "_w" + std::to_string(cfg.width) +
                (cfg.ring ? "_ring" : ""),
            cfg.num_phases);
  const long total = cfg.depth * cfg.width;
  for (long i = 0; i < total; ++i) {
    const long stage = i / cfg.width;
    c.add_latch(latch_name(i), static_cast<int>(stage % cfg.num_phases) + 1, cfg.setup, cfg.dq);
  }
  const auto id = [&](long stage, long lane) { return stage * cfg.width + lane; };
  const long last = cfg.depth - 1;
  for (long stage = 0; stage < cfg.depth; ++stage) {
    const bool wrap = stage == last;
    if (wrap && !cfg.ring) break;
    const long next = wrap ? 0 : stage + 1;
    for (long lane = 0; lane < cfg.width; ++lane) {
      for (int f = 0; f < cfg.fanin; ++f) {
        const long src_lane = (lane + f) % cfg.width;
        c.add_path(static_cast<int>(id(stage, src_lane)), static_cast<int>(id(next, lane)),
                   cfg.delay);
      }
    }
  }
  return c;
}

Circuit make_mesh(const MeshConfig& cfg) {
  assert(cfg.rows >= 1 && cfg.cols >= 1 && cfg.num_phases >= 1);
  Circuit c("mesh_" + std::to_string(cfg.rows) + "x" + std::to_string(cfg.cols),
            cfg.num_phases);
  const auto id = [&](int r, int col) { return static_cast<long>(r) * cfg.cols + col; };
  for (int r = 0; r < cfg.rows; ++r) {
    for (int col = 0; col < cfg.cols; ++col) {
      // Phase striped by anti-diagonal: every mesh edge advances the phase
      // by exactly one, like a pipeline stage boundary.
      c.add_latch(latch_name(id(r, col)), (r + col) % cfg.num_phases + 1, cfg.setup, cfg.dq);
    }
  }
  for (int r = 0; r < cfg.rows; ++r) {
    for (int col = 0; col < cfg.cols; ++col) {
      if (r + 1 < cfg.rows) {
        c.add_path(static_cast<int>(id(r, col)), static_cast<int>(id(r + 1, col)), cfg.delay);
      }
      if (col + 1 < cfg.cols) {
        c.add_path(static_cast<int>(id(r, col)), static_cast<int>(id(r, col + 1)), cfg.delay);
      }
    }
  }
  return c;
}

Circuit make_scc_soup(const SccSoupConfig& cfg) {
  assert(cfg.num_sccs >= 1 && cfg.scc_size >= 1 && cfg.num_phases >= 1);
  Circuit c("scc_soup_n" + std::to_string(cfg.num_sccs) + "_s" + std::to_string(cfg.scc_size) +
                "_seed" + std::to_string(cfg.seed),
            cfg.num_phases);
  std::mt19937_64 rng(cfg.seed);
  const auto id = [&](int ring, int pos) {
    return static_cast<long>(ring) * cfg.scc_size + pos;
  };
  // Each ring steps the phase by one per hop so its loop gain under
  // generator_schedule is negative (see the header note); a random phase
  // offset per ring varies the shift constants across components.
  for (int ring = 0; ring < cfg.num_sccs; ++ring) {
    const int offset = static_cast<int>(rng() % static_cast<unsigned>(cfg.num_phases));
    for (int pos = 0; pos < cfg.scc_size; ++pos) {
      c.add_latch(latch_name(id(ring, pos)), (offset + pos) % cfg.num_phases + 1, cfg.setup,
                  cfg.dq);
    }
  }
  for (int ring = 0; ring < cfg.num_sccs; ++ring) {
    for (int pos = 0; pos < cfg.scc_size; ++pos) {
      if (cfg.scc_size == 1) break;  // single latches stay trivial components
      c.add_path(static_cast<int>(id(ring, pos)),
                 static_cast<int>(id(ring, (pos + 1) % cfg.scc_size)), cfg.delay);
    }
  }
  // Cross edges only from a lower-numbered ring to a higher one, so the
  // rings remain the only cycles and the component DAG gets random depth.
  if (cfg.num_sccs >= 2) {
    for (long e = 0; e < cfg.cross_edges; ++e) {
      const int a = static_cast<int>(rng() % static_cast<unsigned>(cfg.num_sccs - 1));
      const int b =
          a + 1 + static_cast<int>(rng() % static_cast<unsigned>(cfg.num_sccs - a - 1));
      const int pa = static_cast<int>(rng() % static_cast<unsigned>(cfg.scc_size));
      const int pb = static_cast<int>(rng() % static_cast<unsigned>(cfg.scc_size));
      c.add_path(static_cast<int>(id(a, pa)), static_cast<int>(id(b, pb)), cfg.delay);
    }
  }
  return c;
}

ClockSchedule generator_schedule(int num_phases, double dq, double delay, double slack) {
  assert(slack > 1.0 && "a convergent schedule needs strictly negative loop gain");
  return symmetric_schedule(num_phases, slack * num_phases * (dq + delay), 1.0);
}

}  // namespace mintc::netlist
