// Timing-model extraction: gate-level netlist -> SMO Circuit.
//
// The combinational graph between storage elements must be acyclic (the
// paper's Fig. 1 decomposition into "stages of feedback-free combinational
// logic blocks"); feedback must go through storage. For every pair of
// storages (j, i) connected through gates, the extractor computes
//   Δ_ji = longest gate-delay path  from Q(j) to D(i)
//   δ_ji = shortest best-case path  from Q(j) to D(i)
// using the DelayModel, and emits one CombPath per connected pair. Storage
// timing parameters (setup, Δ_DQ, hold) carry over verbatim.
#pragma once

#include "base/error.h"
#include "model/circuit.h"
#include "netlist/netlist.h"

namespace mintc::netlist {

/// Extract the SMO timing model. Fails with kInvalidCircuit if the netlist
/// is structurally bad or has combinational feedback.
Expected<Circuit> extract_timing_model(const Netlist& netlist, const DelayModel& model = {});

}  // namespace mintc::netlist
