#include "netlist/extract.h"

#include <limits>
#include <sstream>

#include "graph/digraph.h"
#include "graph/topo.h"

namespace mintc::netlist {

Expected<Circuit> extract_timing_model(const Netlist& netlist, const DelayModel& model) {
  const std::vector<std::string> problems = netlist.validate();
  if (!problems.empty()) {
    std::ostringstream msg;
    msg << "netlist '" << netlist.name() << "' failed validation:";
    for (const std::string& p : problems) msg << "\n  " << p;
    return make_error(ErrorKind::kInvalidCircuit, msg.str());
  }

  // Net-level combinational graph: one node per net, one edge per gate input
  // -> gate output carrying the gate's delay. Storage cells do NOT connect
  // their D to their Q, so they break all sequential feedback.
  graph::Digraph g(netlist.num_nets());
  for (const Gate& gate : netlist.gates()) {
    const double d = model.gate_delay(gate.type, netlist.fanout_count(gate.output));
    for (const int in : gate.inputs) g.add_edge(in, gate.output, d);
  }
  if (!graph::topological_order(g)) {
    return make_error(ErrorKind::kInvalidCircuit,
                      "netlist '" + netlist.name() +
                          "' has combinational feedback (a gate loop not broken by storage)");
  }

  Circuit circuit(netlist.name(), netlist.num_phases());
  for (const Storage& s : netlist.storages()) {
    Element e;
    e.name = s.name;
    e.kind = s.kind;
    e.phase = s.phase;
    e.setup = s.setup;
    e.dq = s.dq;
    e.hold = s.hold;
    e.dq_min = s.dq_min;
    e.skew = s.skew;
    circuit.add_element(std::move(e));
  }

  // From each storage's Q net, a forward topological DP computes both the
  // longest (worst-case) and shortest (best-case) arrival at every net.
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const auto order = graph::topological_order(g);

  for (int j = 0; j < static_cast<int>(netlist.storages().size()); ++j) {
    const Storage& src = netlist.storages()[static_cast<size_t>(j)];
    std::vector<double> longest(static_cast<size_t>(netlist.num_nets()), kNegInf);
    std::vector<double> shortest(static_cast<size_t>(netlist.num_nets()), kInf);
    longest[static_cast<size_t>(src.q_net)] = 0.0;
    shortest[static_cast<size_t>(src.q_net)] = 0.0;
    for (const int n : *order) {
      if (longest[static_cast<size_t>(n)] == kNegInf) continue;
      for (const int e : g.out_edges(n)) {
        const graph::Edge& edge = g.edge(e);
        const size_t to = static_cast<size_t>(edge.to);
        longest[to] = std::max(longest[to], longest[static_cast<size_t>(n)] + edge.weight);
        shortest[to] = std::min(shortest[to], shortest[static_cast<size_t>(n)] +
                                                  edge.weight * model.min_scale);
      }
    }
    for (int i = 0; i < static_cast<int>(netlist.storages().size()); ++i) {
      const Storage& dst = netlist.storages()[static_cast<size_t>(i)];
      const double max_d = longest[static_cast<size_t>(dst.d_net)];
      if (max_d == kNegInf) continue;  // not connected
      const double min_d = shortest[static_cast<size_t>(dst.d_net)];
      circuit.add_path(j, i, max_d, min_d, src.name + "->" + dst.name);
    }
  }
  return circuit;
}

}  // namespace mintc::netlist
