// Vectorized inner loop of the eq. (17) relaxation.
//
// Both the scalar scheme and the parallel engine spend essentially all their
// time computing, for one destination latch i, the maximum over its
// contiguous fan-in CSR run of
//
//     departure[src[e]] + max_const[e] + shift_data[shift_index[e]]
//
// (max_const fuses Δ_DQ(src) + Δ_edge at view-build time, shift_index is the
// pre-flattened (p_src-1)*k + (p_dst-1) lookup). This header exposes that
// run-max as a kernel trait with two interchangeable implementations:
//
//   * kScalar — the portable loop, bit-for-bit the historical behavior;
//   * kAvx2   — 4-wide AVX2 gathers, compiled with a per-function target
//               attribute so the rest of the binary stays baseline-ISA, and
//               selected at runtime only when the CPU reports AVX2.
//
// Bit-identity contract: the AVX2 kernel keeps the scalar add order
// (d + c) + s within each lane (no FMA — there is no multiply), and `max` is
// exact in IEEE double, so the only reassociation is of the max reduction
// itself, which is associative and commutative for the finite values this
// kernel sees. Every kernel therefore returns the identical bit pattern, and
// the cross-kernel determinism suite (tests/sta/parallel_determinism_test)
// asserts exact == on the resulting departure vectors.
#pragma once

#include "model/timing_view.h"

namespace mintc::sta {

enum class RelaxKernelKind {
  kAuto,    // pick the fastest kernel this CPU supports at runtime
  kScalar,  // portable reference loop
  kAvx2,    // 4-wide gather kernel; falls back to kScalar off-AVX2 hosts
};

const char* to_string(RelaxKernelKind kind);

/// Run-max function: reduce edges [begin, end) of the CSR arrays into
/// max(seed, max_e departure[src[e]] + max_const[e] + shift_data[shift_index[e]]).
/// Callers seed with 0.0 to get eq. (17)'s outer max with zero for free.
using RelaxRunFn = double (*)(const double* departure, const int* src,
                              const double* max_const, const int* shift_index,
                              const double* shift_data, EdgeIndex begin,
                              EdgeIndex end, double seed);

/// The portable reference implementation (always available).
double relax_run_scalar(const double* departure, const int* src,
                        const double* max_const, const int* shift_index,
                        const double* shift_data, EdgeIndex begin, EdgeIndex end,
                        double seed);

/// Resolve kAuto to a concrete kernel for this host (kAvx2 when the CPU and
/// compiler support it, else kScalar). Returns `kind` unchanged otherwise,
/// except kAvx2 on a host without AVX2, which degrades to kScalar.
RelaxKernelKind resolve_relax_kernel(RelaxKernelKind kind);

/// Fetch the run-max function for a concrete kernel kind (resolves kAuto).
RelaxRunFn relax_run_fn(RelaxKernelKind kind);

/// Convenience: one eq. (17) update for element `i` through a chosen kernel.
/// Matches mintc::departure_update(view, shifts, departure, i) bit-for-bit.
inline double relax_element(RelaxRunFn fn, const TimingView& view,
                            const ShiftTable& shifts,
                            const std::vector<double>& departure, int i) {
  if (!view.is_latch(i)) return 0.0;
  return fn(departure.data(), view.edge_src_data(), view.edge_max_const_data(),
            view.edge_shift_data(), shifts.shift_data(), view.fanin_begin(i),
            view.fanin_end(i), 0.0);
}

}  // namespace mintc::sta
