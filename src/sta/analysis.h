// The analysis problem ("checkTc"): given a circuit AND a concrete clock
// schedule, decide whether all timing constraints are satisfied, and report
// per-latch slacks.
//
// This is the other half of the paper's problem statement (Section I): "The
// analysis problem seeks to determine if these constraints are indeed
// satisfied for a given circuit and a given clocking scheme."
//
// The engine computes the least-fixpoint departure times of eq. (17), then
// checks:
//   * clock constraints C1-C4 (+C3 against the circuit's K matrix),
//   * setup constraints L1 (departure-based, eq. 16; flip-flops checked
//     against their leading edge),
//   * optionally, exact short-path/hold constraints using earliest
//     departure times (a min-fixpoint over the circuit's min delays).
#pragma once

#include <string>
#include <vector>

#include "model/circuit.h"
#include "sta/fixpoint.h"
#include "sta/provenance.h"

namespace mintc::sta {

struct AnalysisOptions {
  FixpointOptions fixpoint;
  bool check_hold = false;
  /// Attach a constraint-provenance report (arg-max edges, tight
  /// constraints, named critical chain) to the TimingReport.
  bool provenance = false;
  /// Engine choice for the departure fixpoint. 0 keeps the scalar scheme
  /// selected by fixpoint.scheme; >= 1 routes the solve through the
  /// sta::ParallelFixpoint engine (SCC-parallel, SIMD-dispatched) with that
  /// many worker threads. Convergent results are bit-identical either way
  /// (see parallel_fixpoint.h), so this is purely a performance knob —
  /// check_schedule, AnalysisSession cold solves and the timing_tool
  /// --threads flag all honor it.
  int num_threads = 0;
  double eps = 1e-7;
};

/// Per-element timing summary.
struct ElementTiming {
  double departure = 0.0;    // D_i
  double arrival = 0.0;      // A_i (-inf if no fanin)
  double setup_slack = 0.0;  // >= 0 iff the setup constraint holds
  double hold_slack = 0.0;   // +inf when not checked / no fanin
};

struct TimingReport {
  bool feasible = false;          // everything below passed
  bool schedule_ok = false;       // clock constraints C1-C4
  bool converged = false;         // fixpoint reached (false => positive loop)
  bool setup_ok = false;
  bool hold_ok = true;

  std::vector<ElementTiming> elements;
  std::vector<ClockViolation> clock_violations;
  FixpointResult fixpoint;
  /// Filled when AnalysisOptions::provenance is set and the fixpoint
  /// converged; empty() otherwise.
  ProvenanceReport provenance;
  /// Whole-analysis stage accounting: view/shift builds, the departure
  /// fixpoint, and (when enabled) the hold-side min-fixpoint.
  EngineStats stats;

  double worst_setup_slack = 0.0;
  int worst_setup_element = -1;  // element index, -1 if no latches
  double worst_hold_slack = 0.0;
  int worst_hold_element = -1;

  /// Render a human-readable report table (used by the analyzer example).
  std::string to_string(const Circuit& circuit) const;
};

/// Run the full analysis of `circuit` under `schedule`.
TimingReport check_schedule(const Circuit& circuit, const ClockSchedule& schedule,
                            const AnalysisOptions& options = {});

/// Everything check_schedule does AFTER the departure fixpoint: clock
/// constraints, arrivals, setup/hold slacks, provenance, feasibility. The
/// caller supplies the solved fixpoint (cold or warm) and, optionally, a
/// precomputed early-departure min-fixpoint (`early`; pass nullptr to have
/// it computed here when options.check_hold). This is the shared back half
/// between check_schedule and the incremental AnalysisSession — keeping it
/// single-sourced is what makes warm results bit-identical to cold ones.
TimingReport assemble_report(const Circuit& circuit, const ClockSchedule& schedule,
                             const TimingView& view, const ShiftTable& shifts,
                             const AnalysisOptions& options, FixpointResult fixpoint,
                             const FixpointResult* early = nullptr);

/// Earliest departure times (min-fixpoint over min delays); used by the
/// exact hold check and exposed for tests.
FixpointResult compute_early_departures(const Circuit& circuit, const ClockSchedule& schedule,
                                        const FixpointOptions& options = {});
FixpointResult compute_early_departures(const TimingView& view, const ShiftTable& shifts,
                                        const FixpointOptions& options = {});

}  // namespace mintc::sta
