#include "sta/session.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <limits>

#include "base/approx.h"
#include "obs/export.h"
#include "obs/trace.h"

namespace mintc::sta {

namespace {

// Registry lookups hash the name under a mutex; the session increments these
// on every edit/analyze, so resolve each handle once (handles stay valid
// across MetricsRegistry::reset()).
obs::Counter& session_counter(const char* name) {
  return obs::MetricsRegistry::instance().counter(name);
}

obs::Counter& invalidations_counter() {
  static obs::Counter& c = session_counter("session.invalidations");
  return c;
}

obs::Counter& warm_hits_counter() {
  static obs::Counter& c = session_counter("session.warm_hits");
  return c;
}

obs::Counter& cold_fallbacks_counter() {
  static obs::Counter& c = session_counter("session.cold_fallbacks");
  return c;
}

}  // namespace

AnalysisSession::AnalysisSession(Circuit circuit)
    : circuit_(std::move(circuit)),
      pristine_elements_(circuit_.elements()),
      pristine_paths_(circuit_.paths()) {}

AnalysisSession::AnalysisSession(Circuit circuit, ClockSchedule schedule,
                                 AnalysisOptions options)
    : circuit_(std::move(circuit)),
      schedule_(std::move(schedule)),
      options_(options),
      has_schedule_(true),
      pristine_elements_(circuit_.elements()),
      pristine_paths_(circuit_.paths()) {}

void AnalysisSession::touch() {
  // Every state-changing applier funnels through here (label edits, which
  // are timing-neutral and skip touch(), call note_mutation() directly).
  note_mutation();
  if (report_valid_) {
    report_valid_ = false;
    ++counters_.invalidations;
    invalidations_counter().inc();
  }
}

void AnalysisSession::note_mutation() {
  ++generation_;
  fingerprint_generation_ = ~0ull;
}

std::uint64_t AnalysisSession::content_fingerprint() const {
  if (fingerprint_generation_ == generation_) return fingerprint_;
  obs::Fnv1a h;
  h.str(circuit_.name());
  h.i32(circuit_.num_phases());
  h.i32(circuit_.num_elements());
  for (const Element& e : circuit_.elements()) {
    h.str(e.name);
    h.i32(static_cast<std::int32_t>(e.kind));
    h.i32(e.phase);
    h.num(e.setup).num(e.hold).num(e.dq).num(e.dq_min).num(e.skew);
  }
  h.i32(circuit_.num_paths());
  for (const CombPath& p : circuit_.paths()) {
    h.i32(p.from).i32(p.to);
    h.num(p.delay).num(p.min_delay);
    h.str(p.label);  // labels render in reports, so they are content
  }
  h.u64(has_schedule_ ? 1 : 0);
  if (has_schedule_) {
    h.num(schedule_.cycle);
    for (const double s : schedule_.start) h.num(s);
    for (const double t : schedule_.width) h.num(t);
  }
  fingerprint_ = h.digest();
  fingerprint_generation_ = generation_;
  return fingerprint_;
}

// -- Appliers (no undo logging) ---------------------------------------------

void AnalysisSession::apply_path_delay(int p, double delay) {
  circuit_.set_path_delay(p, delay);
  if (view_) view_->set_path_delay(p, delay);
  touch();
}

void AnalysisSession::apply_path_min_delay(int p, double min_delay) {
  circuit_.set_path_min_delay(p, min_delay);
  if (view_) view_->set_path_min_delay(p, min_delay);
  early_valid_ = false;
  touch();
}

void AnalysisSession::apply_element_dq(int i, double dq) {
  Element& e = circuit_.element(i);
  e.dq = dq;
  if (view_) {
    view_->set_element_dq(i, dq);
    // A tracking dq_min (< 0) resolves to dq, so the short-path constants
    // move too.
    if (e.dq_min < 0.0) view_->set_element_min_dq(i, dq);
  }
  if (e.dq_min < 0.0) early_valid_ = false;
  touch();
}

void AnalysisSession::apply_element_dq_min(int i, double dq_min) {
  Element& e = circuit_.element(i);
  e.dq_min = dq_min;
  if (view_) view_->set_element_min_dq(i, e.min_dq());
  early_valid_ = false;
  touch();
}

void AnalysisSession::apply_element_setup(int i, double setup) {
  circuit_.element(i).setup = setup;
  if (view_) view_->set_element_setup(i, setup);
  touch();
}

void AnalysisSession::apply_element_hold(int i, double hold) {
  circuit_.element(i).hold = hold;
  if (view_) view_->set_element_hold(i, hold);
  touch();
}

void AnalysisSession::apply_element_skew(int i, double skew) {
  circuit_.element(i).skew = skew;
  if (view_) view_->set_element_skew(i, skew);
  touch();
}

void AnalysisSession::apply_schedule(const ClockSchedule& schedule) {
  schedule_ = schedule;
  has_schedule_ = true;
  if (shifts_) {
    const ShiftDelta delta = shifts_->update(schedule);
    if (!delta.changed) return;  // identical timing: nothing to invalidate
    schedule_changed_ = true;
    if (!delta.same_shape || !delta.shifts_nondecreasing) schedule_warm_ok_ = false;
  } else {
    schedule_changed_ = true;
    schedule_warm_ok_ = false;
  }
  early_valid_ = false;
  touch();
}

// -- Logged mutators ---------------------------------------------------------

void AnalysisSession::set_path_delay(int p, double delay) {
  const double old = circuit_.path(p).delay;
  if (delay == old) return;
  UndoRecord rec;
  rec.kind = UndoRecord::Kind::kPathDelay;
  rec.index = p;
  rec.value = old;
  undo_.push_back(std::move(rec));
  apply_path_delay(p, delay);
}

void AnalysisSession::set_path_min_delay(int p, double min_delay) {
  const double old = circuit_.path(p).min_delay;
  if (min_delay == old) return;
  UndoRecord rec;
  rec.kind = UndoRecord::Kind::kPathMinDelay;
  rec.index = p;
  rec.value = old;
  undo_.push_back(std::move(rec));
  apply_path_min_delay(p, min_delay);
}

void AnalysisSession::set_path_delays(int p, double delay, double min_delay) {
  assert(min_delay <= delay);
  // Order the two edits so delay >= min_delay holds at every step.
  if (delay >= circuit_.path(p).min_delay) {
    set_path_delay(p, delay);
    set_path_min_delay(p, min_delay);
  } else {
    set_path_min_delay(p, min_delay);
    set_path_delay(p, delay);
  }
}

void AnalysisSession::set_path_label(int p, std::string label) {
  if (circuit_.path(p).label == label) return;
  UndoRecord rec;
  rec.kind = UndoRecord::Kind::kPathLabel;
  rec.index = p;
  rec.label = circuit_.path(p).label;
  undo_.push_back(std::move(rec));
  circuit_.set_path_label(p, std::move(label));  // timing-neutral: no touch()
  note_mutation();  // ...but labels are rendered content: new fingerprint
}

void AnalysisSession::set_element_dq(int i, double dq) {
  const double old = circuit_.element(i).dq;
  if (dq == old) return;
  UndoRecord rec;
  rec.kind = UndoRecord::Kind::kElementDq;
  rec.index = i;
  rec.value = old;
  undo_.push_back(std::move(rec));
  apply_element_dq(i, dq);
}

void AnalysisSession::set_element_dq_min(int i, double dq_min) {
  const double old = circuit_.element(i).dq_min;
  if (dq_min == old) return;
  UndoRecord rec;
  rec.kind = UndoRecord::Kind::kElementDqMin;
  rec.index = i;
  rec.value = old;
  undo_.push_back(std::move(rec));
  apply_element_dq_min(i, dq_min);
}

void AnalysisSession::set_element_setup(int i, double setup) {
  const double old = circuit_.element(i).setup;
  if (setup == old) return;
  UndoRecord rec;
  rec.kind = UndoRecord::Kind::kElementSetup;
  rec.index = i;
  rec.value = old;
  undo_.push_back(std::move(rec));
  apply_element_setup(i, setup);
}

void AnalysisSession::set_element_hold(int i, double hold) {
  const double old = circuit_.element(i).hold;
  if (hold == old) return;
  UndoRecord rec;
  rec.kind = UndoRecord::Kind::kElementHold;
  rec.index = i;
  rec.value = old;
  undo_.push_back(std::move(rec));
  apply_element_hold(i, hold);
}

void AnalysisSession::set_element_skew(int i, double skew) {
  const double old = circuit_.element(i).skew;
  if (skew == old) return;
  UndoRecord rec;
  rec.kind = UndoRecord::Kind::kElementSkew;
  rec.index = i;
  rec.value = old;
  undo_.push_back(std::move(rec));
  apply_element_skew(i, skew);
}

void AnalysisSession::set_schedule(const ClockSchedule& schedule) {
  if (schedule.cycle == schedule_.cycle && schedule.start == schedule_.start &&
      schedule.width == schedule_.width && has_schedule_) {
    return;
  }
  UndoRecord rec;
  rec.kind = UndoRecord::Kind::kSchedule;
  rec.schedule = schedule_;
  undo_.push_back(std::move(rec));
  apply_schedule(schedule);
}

bool AnalysisSession::derating_allowed() const {
  return circuit_.num_elements() == static_cast<int>(pristine_elements_.size()) &&
         circuit_.num_paths() == static_cast<int>(pristine_paths_.size());
}

void AnalysisSession::apply_derating(double delay_scale, double min_scale) {
  assert(circuit_.num_elements() == static_cast<int>(pristine_elements_.size()) &&
         circuit_.num_paths() == static_cast<int>(pristine_paths_.size()) &&
         "derating requires an unmodified structure");
  // Same arithmetic as sta::derate (corners.cpp), applied to the pristine
  // reference, so a session corner is bit-identical to a cold analysis of
  // the derated copy. Clock skew is a clock-network property, not a silicon
  // delay: corners leave it unscaled (both here and in sta::derate).
  for (int i = 0; i < circuit_.num_elements(); ++i) {
    const Element& e = pristine_elements_[static_cast<size_t>(i)];
    const double setup = e.setup * delay_scale;
    const double dq = e.dq * delay_scale;
    double dq_min = (e.dq_min >= 0.0 ? e.dq_min : e.dq) * min_scale;
    if (dq_min > dq) dq_min = dq;
    set_element_setup(i, setup);
    set_element_dq(i, dq);
    set_element_dq_min(i, dq_min);
  }
  for (int p = 0; p < circuit_.num_paths(); ++p) {
    const CombPath& path = pristine_paths_[static_cast<size_t>(p)];
    const double max_d = path.delay * delay_scale;
    const double min_d = std::min(path.min_delay * min_scale, max_d);
    set_path_delays(p, max_d, min_d);
  }
}

// -- Structural edits --------------------------------------------------------

void AnalysisSession::remove_path(int p) {
  UndoRecord rec;
  rec.kind = UndoRecord::Kind::kPathRemoved;
  rec.index = p;
  rec.path = circuit_.remove_path(p);
  undo_.push_back(std::move(rec));
  structural_dirty_ = true;
  view_.reset();  // edge numbering is stale; analyze() rebuilds
  early_valid_ = false;
  touch();
}

void AnalysisSession::remove_element(int i) {
  std::vector<int> incident = circuit_.fanin(i);
  for (const int p : circuit_.fanout(i)) {
    if (circuit_.path(p).to != i) incident.push_back(p);  // self-loops once
  }
  std::sort(incident.begin(), incident.end(), std::greater<int>());
  for (const int p : incident) remove_path(p);
  UndoRecord rec;
  rec.kind = UndoRecord::Kind::kElementRemoved;
  rec.index = i;
  rec.element = circuit_.remove_element(i);
  undo_.push_back(std::move(rec));
  structural_dirty_ = true;
  view_.reset();
  early_valid_ = false;
  touch();
}

// -- Undo --------------------------------------------------------------------

void AnalysisSession::undo() {
  assert(!undo_.empty() && "undo with an empty log");
  UndoRecord rec = std::move(undo_.back());
  undo_.pop_back();
  switch (rec.kind) {
    case UndoRecord::Kind::kPathDelay:
      apply_path_delay(rec.index, rec.value);
      break;
    case UndoRecord::Kind::kPathMinDelay:
      apply_path_min_delay(rec.index, rec.value);
      break;
    case UndoRecord::Kind::kPathLabel:
      circuit_.set_path_label(rec.index, std::move(rec.label));
      note_mutation();
      break;
    case UndoRecord::Kind::kElementDq:
      apply_element_dq(rec.index, rec.value);
      break;
    case UndoRecord::Kind::kElementDqMin:
      apply_element_dq_min(rec.index, rec.value);
      break;
    case UndoRecord::Kind::kElementSetup:
      apply_element_setup(rec.index, rec.value);
      break;
    case UndoRecord::Kind::kElementHold:
      apply_element_hold(rec.index, rec.value);
      break;
    case UndoRecord::Kind::kElementSkew:
      apply_element_skew(rec.index, rec.value);
      break;
    case UndoRecord::Kind::kSchedule:
      apply_schedule(rec.schedule);
      break;
    case UndoRecord::Kind::kPathRemoved:
      circuit_.insert_path(rec.index, std::move(rec.path));
      structural_dirty_ = true;
      view_.reset();  // later undos may touch re-inserted indices
      early_valid_ = false;
      touch();
      break;
    case UndoRecord::Kind::kElementRemoved:
      circuit_.insert_element(rec.index, std::move(rec.element));
      structural_dirty_ = true;
      view_.reset();
      early_valid_ = false;
      touch();
      break;
  }
}

void AnalysisSession::undo_to(size_t mark) {
  assert(mark <= undo_.size() && "mark is ahead of the log");
  while (undo_.size() > mark) undo();
}

// -- Analysis ----------------------------------------------------------------

const TimingReport& AnalysisSession::analyze() {
  assert(has_schedule_ && "analyze() needs a schedule (use the two-arg ctor)");
  ++counters_.analyses;
  if (report_valid_) {
    // Nothing changed since the last analyze: serve the cached report.
    ++counters_.warm_hits;
    warm_hits_counter().inc();
    return report_;
  }
  // Tag the span with the session generation so a request trace pins which
  // edit state it analyzed; the string only builds when tracing records.
  const obs::TraceSpan span(
      "session.analyze", "sta",
      obs::Tracer::instance().enabled()
          ? "{\"generation\": " + std::to_string(generation_) + "}"
          : std::string());
  const bool had_report = have_report_;

  bool rebuilt = false;
  if (!view_ || structural_dirty_) {
    parallel_.reset();
    view_.emplace(circuit_);
    shifts_.emplace(schedule_);
    rebuilt = true;
  }
  const int l = circuit_.num_elements();

  // Cold solve through the engine AnalysisOptions selects: the scalar scheme
  // by default, the SCC-parallel engine when num_threads >= 1. Warm starts
  // stay on the scalar event-driven path — they touch a handful of latches,
  // far below the parallel engine's useful granularity.
  const auto cold_solve = [&]() -> FixpointResult {
    std::vector<double> zeros(static_cast<size_t>(l), 0.0);
    if (options_.num_threads >= 1) {
      if (!parallel_) {
        ParallelFixpointOptions popt;
        popt.num_threads = options_.num_threads;
        popt.fixpoint = options_.fixpoint;
        parallel_.emplace(*view_, popt);
      }
      return parallel_->solve(*shifts_, std::move(zeros));
    }
    return compute_departures(*view_, *shifts_, std::move(zeros), options_.fixpoint);
  };

  // Warm start is sound only for a monotone-nondecreasing perturbation of a
  // previously converged system on the same structure (see header) — and
  // only from an EXACT previous fixpoint. A cold solve may stop eps-short of
  // the exact least fixpoint on slowly (geometrically) converging feedback
  // loops; climbing from that point would settle above what a fresh cold
  // solve reports, breaking bit-identity.
  const bool warm_eligible = had_report && !rebuilt && report_.fixpoint.converged &&
                             fixpoint_exact_ && view_->max_nondecreasing() &&
                             (!schedule_changed_ || schedule_warm_ok_);
  FixpointResult fp;
  bool warm = false;
  if (warm_eligible) {
    seeds_.clear();
    if (schedule_changed_) {
      // Any latch's inputs may have shifted: seed everything. Still cheap —
      // one relaxation pass over an already-solved vector.
      for (int i = 0; i < l; ++i) seeds_.push_back(i);
    } else {
      for (const EdgeIndex e : view_->dirty_edges()) seeds_.push_back(view_->edge_dst(e));
    }
    // The previous departure vector is consumed (moved) as the warm start;
    // report_ is stale either way and gets rebuilt below.
    fp = warm_departures(*view_, *shifts_, std::move(report_.fixpoint.departure), seeds_,
                         options_.fixpoint);
    warm = fp.converged;
  }
  if (!warm) {
    fp = cold_solve();
    // One O(l+E) read-only pass decides whether future warm starts are
    // bit-identity-safe (see fixpoint_exact_ in the header). Warm solves
    // keep the previous (true) value.
    fixpoint_exact_ =
        fp.converged && fixpoint_residual(*view_, *shifts_, fp.departure) == 0.0;
    if (!fp.converged && !rebuilt) {
      // The incrementally maintained divergence bound can drift by ulps from
      // a fresh build's; on the (rare) non-converged path, rebuild and rerun
      // so even the divergence diagnostics match a cold analysis exactly.
      parallel_.reset();
      view_.emplace(circuit_);
      shifts_.emplace(schedule_);
      rebuilt = true;
      fp = cold_solve();
      fixpoint_exact_ =
          fp.converged && fixpoint_residual(*view_, *shifts_, fp.departure) == 0.0;
    }
  }

  // Warm fast path: parameter-only edits on an unchanged schedule rewrite the
  // cached report in place — same arithmetic as assemble_report, but without
  // reallocating it or re-deriving what provably did not move (clock
  // constraints, the early min-fixpoint). The per-analyze cost drops to the
  // event fixpoint plus one O(l+E) slack pass, which is what makes warm
  // re-analysis of small circuits several times faster than a cold one.
  if (warm && !schedule_changed_ && !options_.provenance &&
      (!options_.check_hold || early_valid_)) {
    if (options_.check_hold && had_report) ++counters_.hold_reuses;
    refresh_report_warm(std::move(fp));
  } else {
    const FixpointResult* early_ptr = nullptr;
    if (options_.check_hold) {
      if (!early_valid_) {
        early_ = compute_early_departures(*view_, *shifts_, options_.fixpoint);
        early_valid_ = true;
      } else if (had_report) {
        ++counters_.hold_reuses;
      }
      early_ptr = &early_;
    }
    report_ = assemble_report(circuit_, schedule_, *view_, *shifts_, options_,
                              std::move(fp), early_ptr);
  }

  if (warm) {
    ++counters_.warm_hits;
    warm_hits_counter().inc();
  } else if (had_report) {
    ++counters_.cold_fallbacks;
    cold_fallbacks_counter().inc();
  }

  view_->clear_dirty();
  schedule_changed_ = false;
  schedule_warm_ok_ = true;
  structural_dirty_ = false;
  report_valid_ = true;
  have_report_ = true;
  return report_;
}

void AnalysisSession::refresh_report_warm(FixpointResult fp) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  const StageTimer wall_timer;
  TimingReport& rep = report_;
  const TimingView& view = *view_;
  const ShiftTable& shifts = *shifts_;
  const int l = circuit_.num_elements();

  // Unchanged since the last full assembly: clock_violations / schedule_ok
  // (schedule untouched) and provenance (off on this path). Everything below
  // mirrors sta::assemble_report line for line — same update functions, same
  // iteration order, same tie-breaking — so the rewritten report is
  // bit-identical to a cold one.
  rep.fixpoint = std::move(fp);
  rep.converged = rep.fixpoint.converged;
  rep.stats = EngineStats{};
  rep.stats.sweeps = rep.fixpoint.sweeps;
  rep.stats.edge_relaxations = rep.fixpoint.stats.edge_relaxations;
  rep.stats.solve_seconds = rep.fixpoint.stats.solve_seconds;

  // Setup slacks (arrivals recomputed in place; arrival_update is the same
  // kernel compute_arrivals wraps).
  rep.setup_ok = true;
  rep.worst_setup_slack = kInf;
  rep.worst_setup_element = -1;
  for (int i = 0; i < l; ++i) {
    const Element& e = circuit_.element(i);
    ElementTiming& t = rep.elements[static_cast<size_t>(i)];
    t.departure = rep.fixpoint.departure[static_cast<size_t>(i)];
    t.arrival = arrival_update(view, shifts, rep.fixpoint.departure, i);
    if (e.is_latch()) {
      t.setup_slack = schedule_.T(e.phase) - view.setup_margin(i) - t.departure;
    } else {
      t.setup_slack = (t.arrival == kNegInf) ? kInf : (-view.setup_margin(i) - t.arrival);
    }
    if (t.setup_slack < rep.worst_setup_slack) {
      rep.worst_setup_slack = t.setup_slack;
      rep.worst_setup_element = i;
    }
    if (definitely_lt(t.setup_slack, 0.0, options_.eps)) rep.setup_ok = false;
  }
  if (l == 0) rep.worst_setup_slack = 0.0;

  // Hold slacks from the cached early min-fixpoint (valid by the caller's
  // guard; min constants and shifts have not moved since it was solved).
  rep.hold_ok = true;
  rep.worst_hold_slack = kInf;
  rep.worst_hold_element = -1;
  for (auto& t : rep.elements) t.hold_slack = kInf;
  if (options_.check_hold) {
    for (int i = 0; i < l; ++i) {
      const Element& e = circuit_.element(i);
      ElementTiming& t = rep.elements[static_cast<size_t>(i)];
      double earliest_next = kInf;
      const EdgeIndex fi_end = view.fanin_end(i);
      for (EdgeIndex fe = view.fanin_begin(i); fe < fi_end; ++fe) {
        const double a = early_.departure[static_cast<size_t>(view.edge_src(fe))] +
                         view.edge_min_const(fe) + shifts.at(view.edge_shift(fe));
        earliest_next = std::min(earliest_next, schedule_.cycle + a);
      }
      if (earliest_next == kInf) continue;  // no fanin: nothing to corrupt
      if (e.is_latch()) {
        t.hold_slack = earliest_next - (schedule_.T(e.phase) + view.hold_margin(i));
      } else {
        t.hold_slack = earliest_next - view.hold_margin(i);
      }
      if (t.hold_slack < rep.worst_hold_slack) {
        rep.worst_hold_slack = t.hold_slack;
        rep.worst_hold_element = i;
      }
      if (definitely_lt(t.hold_slack, 0.0, options_.eps)) rep.hold_ok = false;
    }
  }

  rep.feasible = rep.schedule_ok && rep.converged && rep.setup_ok && rep.hold_ok;
  rep.stats.wall_seconds = wall_timer.seconds();
}

}  // namespace mintc::sta
