// Incremental analysis sessions: one circuit, many nearly-identical queries.
//
// Every consumer that used to rebuild a Circuit copy + TimingView and
// cold-start the eq. 17 fixpoint per query (the fuzz shrinker, multi-corner
// signoff, sensitivity/parametric sweeps) instead drives ONE AnalysisSession:
//
//   sta::AnalysisSession session(circuit, schedule, options);
//   session.analyze();                    // cold: flatten + fixpoint from 0
//   session.set_path_delay(p, d + 0.1);   // patches the view in place
//   session.analyze();                    // warm: event-driven from old D_i
//
// Correctness contract: analyze() is bit-identical to a fresh
// sta::check_schedule(session.circuit(), session.schedule(), options) no
// matter how the session reached the current state. The warm path is only
// taken when it provably lands on the same least fixpoint (see below);
// everything after the fixpoint is shared code (sta::assemble_report).
//
// Warm-start safety (DESIGN 5.4): eq. 17 is a monotone max-plus operator F.
// If every edge constant is nondecreasing relative to the previously solved
// system (F_old <= F_new pointwise), the old least fixpoint d satisfies
// d = F_old(d) <= F_new(d), so iterating F_new upward from d is squeezed
// between the cold iteration from 0 and the new least fixpoint — and under
// strictly negative loop gains the iteration stabilizes EXACTLY in finitely
// many steps (each D_i is a max of finitely many affine path terms), which
// is why warm results can be compared bit-for-bit, not just within eps.
// When the loop gain is close to 1 the cold engines can instead stop
// eps-short of the exact fixpoint (FixpointOptions::eps deadband); a warm
// climb from such a base would settle above what a fresh cold solve reports,
// so warm starts additionally require the previous solve to have landed on
// an EXACT fixpoint (residual == 0.0, measured with one read-only pass after
// every cold solve — see fixpoint_exact_).
// Any decrease (TimingView::max_nondecreasing() false, a shrunk schedule
// shift, a structural edit) falls back to a cold solve.
//
// Mutations are logged; mark()/undo_to() rewind the circuit (and view)
// exactly, which is what the shrinker uses to try/reject candidates without
// per-candidate Circuit copies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/circuit.h"
#include "model/clock.h"
#include "model/timing_view.h"
#include "obs/metrics.h"
#include "sta/analysis.h"
#include "sta/parallel_fixpoint.h"

namespace mintc::sta {

class AnalysisSession {
 public:
  /// Mutate/undo-only session (no schedule): what the shrinker needs.
  /// analyze() asserts until set_schedule() is called.
  explicit AnalysisSession(Circuit circuit);
  AnalysisSession(Circuit circuit, ClockSchedule schedule, AnalysisOptions options = {});

  const Circuit& circuit() const { return circuit_; }
  const ClockSchedule& schedule() const { return schedule_; }
  const AnalysisOptions& options() const { return options_; }

  // -- Parameter edits ------------------------------------------------------
  // Each mirrors the edit into the Circuit and (once built) the TimingView,
  // invalidates the cached report, and appends an undo record. Setters are
  // no-ops when the value is unchanged.
  void set_path_delay(int p, double delay);
  void set_path_min_delay(int p, double min_delay);
  /// Set both delays, ordered so Circuit's delay >= min_delay invariant
  /// holds at every intermediate step. Requires delay >= min_delay.
  void set_path_delays(int p, double delay, double min_delay);
  void set_path_label(int p, std::string label);  // timing-neutral
  void set_element_dq(int i, double dq);
  /// Raw Element::dq_min semantics: < 0 means "track dq".
  void set_element_dq_min(int i, double dq_min);
  void set_element_setup(int i, double setup);
  void set_element_hold(int i, double hold);
  /// Local clock-edge uncertainty σ_i (>= 0, finite). A slack-only
  /// parameter: it never enters the eq. 17 propagation term, so editing it
  /// preserves the warm-start precondition (the fixpoint is untouched; only
  /// the setup/hold margins move).
  void set_element_skew(int i, double skew);

  /// Swap the clock schedule. Warm start survives iff the phase count is
  /// unchanged and no S_ij shrank (ShiftDelta::shifts_nondecreasing).
  void set_schedule(const ClockSchedule& schedule);

  /// Scale the circuit to a process corner, with arithmetic identical to
  /// sta::derate applied to the PRISTINE circuit (the state at session
  /// construction) — corners compose from the reference, not cumulatively.
  /// Requires no structural edits since construction.
  void apply_derating(double delay_scale, double min_scale);

  /// Whether apply_derating is still legal: true until a structural edit
  /// (remove_path/remove_element) changes the element/path counts away from
  /// the pristine snapshot. The serve layer checks this to reject `derate`
  /// edits with an error instead of tripping the assert.
  bool derating_allowed() const;

  // -- Structural edits (force a cold fallback + view rebuild) --------------
  void remove_path(int p);
  /// Removes the element's incident paths (descending index) first.
  void remove_element(int i);

  // -- State identity (serve-layer cache keys) ------------------------------

  /// Monotone mutation counter: bumped once per state-changing call —
  /// parameter edits, label edits, schedule swaps, derating, structural
  /// edits, and every undo step. It NEVER decreases (undo moves the state
  /// back but the generation forward), so (circuit key, generation) names a
  /// point in the session's edit history exactly once; the serve layer uses
  /// it for generation-based cache invalidation.
  std::uint64_t generation() const { return generation_; }

  /// FNV-1a 64 fingerprint of the session's CURRENT content: circuit name,
  /// phase count, every element parameter and name, every path (endpoints,
  /// delays, label) and the schedule. Two sessions fingerprint equal iff
  /// their analyses (and rendered reports) are bit-identical, so the
  /// fingerprint is a sound content-addressed cache key. Cached per
  /// generation — repeated calls between edits are O(1).
  std::uint64_t content_fingerprint() const;

  // -- Undo log -------------------------------------------------------------
  size_t mark() const { return undo_.size(); }
  void undo();                  // revert the most recent mutation
  void undo_to(size_t mark);    // revert everything after mark()

  /// Analyze the current state. Returns a cached report when nothing
  /// changed, warm-starts the fixpoint when the change was monotone, and
  /// cold-solves otherwise — always bit-identical to a fresh
  /// sta::check_schedule of the current circuit/schedule.
  const TimingReport& analyze();

  struct Counters {
    long analyses = 0;       // analyze() calls
    long warm_hits = 0;      // served from cache or a warm-started fixpoint
    long invalidations = 0;  // mutation batches that dirtied a valid report
    long cold_fallbacks = 0; // cold solves with prior state present
    long hold_reuses = 0;    // hold checks reusing the cached early vector
  };
  const Counters& counters() const { return counters_; }

 private:
  struct UndoRecord {
    enum class Kind {
      kPathDelay,
      kPathMinDelay,
      kPathLabel,
      kElementDq,
      kElementDqMin,
      kElementSetup,
      kElementHold,
      kElementSkew,
      kSchedule,
      kPathRemoved,
      kElementRemoved,
    };
    Kind kind;
    int index = 0;           // path/element id (also the re-insert position)
    double value = 0.0;      // previous scalar value
    std::string label;       // previous path label
    CombPath path;           // removed path
    Element element;         // removed element
    ClockSchedule schedule;  // previous schedule
  };

  // Non-logging appliers shared by the setters and undo().
  void apply_path_delay(int p, double delay);
  void apply_path_min_delay(int p, double min_delay);
  void apply_element_dq(int i, double dq);
  void apply_element_dq_min(int i, double dq_min);
  void apply_element_setup(int i, double setup);
  void apply_element_hold(int i, double hold);
  void apply_element_skew(int i, double skew);
  void apply_schedule(const ClockSchedule& schedule);
  void touch();  // invalidate the cached report (counted once per batch)
  void note_mutation();  // bump generation(), dirty the content fingerprint

  /// Allocation-free counterpart of sta::assemble_report for the warm path:
  /// rewrites report_ in place using the exact arithmetic and iteration
  /// order of the cold assembly, so the result stays bit-identical. Only
  /// valid when the schedule and structure are unchanged, provenance is off,
  /// and (when hold is checked) the cached early vector is still valid.
  void refresh_report_warm(FixpointResult fp);

  Circuit circuit_;
  ClockSchedule schedule_;
  AnalysisOptions options_;
  bool has_schedule_ = false;

  // Pristine parameter snapshot for apply_derating.
  std::vector<Element> pristine_elements_;
  std::vector<CombPath> pristine_paths_;

  std::optional<TimingView> view_;
  std::optional<ShiftTable> shifts_;
  // Lazily built when options_.num_threads >= 1 routes cold solves through
  // the SCC-parallel engine; tied to view_'s lifetime (reset on rebuild).
  std::optional<ParallelFixpoint> parallel_;

  TimingReport report_;
  bool report_valid_ = false;  // report_ matches the current state
  bool have_report_ = false;   // some analyze() has completed

  FixpointResult early_;     // cached hold-side min-fixpoint
  bool early_valid_ = false;

  std::vector<int> seeds_;   // scratch: warm fixpoint seed list

  bool structural_dirty_ = false;   // view numbering stale: rebuild + cold
  bool schedule_changed_ = false;   // shifts/starts/widths moved since analyze
  bool schedule_warm_ok_ = true;    // no S_ij shrank, shape kept
  // The last solve landed on an EXACT float fixpoint (residual == 0.0), not
  // merely an eps-converged one. Warm starts are only bit-identical to a
  // cold solve when climbing from an exact fixpoint, so this gates
  // warm_eligible: cold solves measure it with one read-only relaxation
  // pass, warm solves preserve it by construction (strict acceptance from an
  // exact base cannot introduce residual).
  bool fixpoint_exact_ = false;

  std::vector<UndoRecord> undo_;
  Counters counters_;

  std::uint64_t generation_ = 0;
  mutable std::uint64_t fingerprint_ = 0;
  mutable std::uint64_t fingerprint_generation_ = ~0ull;  // != 0: recompute
};

}  // namespace mintc::sta
