#include "sta/parallel_fixpoint.h"

#include <atomic>
#include <cassert>
#include <cmath>
#include <thread>

#include "obs/cost.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mintc::sta {

namespace {

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

ParallelFixpoint::ParallelFixpoint(const TimingView& view,
                                   const ParallelFixpointOptions& options)
    : view_(view),
      options_(options),
      kernel_(resolve_relax_kernel(options.kernel)),
      relax_fn_(relax_run_fn(options.kernel)),
      scc_(graph::strongly_connected_components(latch_graph_of(view))),
      pool_(resolve_threads(options.num_threads)) {
  const int nc = scc_.num_components;
  const EdgeIndex m = view.num_edges();
  pred_template_.assign(static_cast<size_t>(nc), 0);
  succ_offset_.assign(static_cast<size_t>(nc) + 1, 0);
  // Two-pass CSR build over the cross-component edges of the latch graph.
  EdgeIndex cross_edges = 0;
  for (EdgeIndex e = 0; e < m; ++e) {
    const int cs = scc_.component[static_cast<size_t>(view.edge_src(e))];
    const int cd = scc_.component[static_cast<size_t>(view.edge_dst(e))];
    if (cs == cd) continue;
    ++succ_offset_[static_cast<size_t>(cs) + 1];
    ++pred_template_[static_cast<size_t>(cd)];
    ++cross_edges;
  }
  for (int c = 0; c < nc; ++c) {
    succ_offset_[static_cast<size_t>(c) + 1] += succ_offset_[static_cast<size_t>(c)];
  }
  succ_.resize(static_cast<size_t>(cross_edges));
  std::vector<EdgeIndex> cursor(succ_offset_.begin(), succ_offset_.end() - 1);
  for (EdgeIndex e = 0; e < m; ++e) {
    const int cs = scc_.component[static_cast<size_t>(view.edge_src(e))];
    const int cd = scc_.component[static_cast<size_t>(view.edge_dst(e))];
    if (cs == cd) continue;
    succ_[static_cast<size_t>(cursor[static_cast<size_t>(cs)]++)] = cd;
  }
  for (int c = 0; c < nc; ++c) {
    if (pred_template_[static_cast<size_t>(c)] == 0) roots_.push_back(c);
  }
  stats_.sccs = nc;
  for (int c = 0; c < nc; ++c) {
    if (scc_.nontrivial[static_cast<size_t>(c)]) ++stats_.nontrivial_sccs;
  }
  stats_.threads = pool_.num_threads();
  stats_.kernel = kernel_;
}

// Everything one solve's tasks share. Plain members are written before the
// root submissions and read-only afterwards; the departure vector is written
// in disjoint per-component slices ordered by the pred-count release edges;
// the atomics do the rest.
struct ParallelFixpoint::SolveCtx {
  const ShiftTable& shifts;
  std::vector<double>& departure;
  double eps;
  double bound;
  int max_sweeps;
  std::vector<std::atomic<int>> pred;
  std::atomic<std::int64_t> updates{0};
  std::atomic<long> edge_relaxations{0};
  std::atomic<int> max_shard_sweeps{0};
  std::atomic<std::int64_t> tasks{0};
  std::atomic<bool> diverged{false};
  std::atomic<bool> sweep_limited{false};

  SolveCtx(const ShiftTable& s, std::vector<double>& d, size_t num_components)
      : shifts(s), departure(d), eps(0), bound(0), max_sweeps(0),
        pred(num_components) {}
};

void ParallelFixpoint::process_component(SolveCtx& ctx, int comp) {
  // Mirrors the kSccOrdered inner loop statement-for-statement (same member
  // order, same eps deadband, same trivial-component early break, same
  // "abort this component's sweep at the first divergent value") — the
  // bit-identity gate in the determinism suite compares against it exactly.
  const std::vector<int>& members = scc_.members[static_cast<size_t>(comp)];
  std::vector<double>& d = ctx.departure;
  std::int64_t local_updates = 0;
  long local_relaxations = 0;
  int local_sweeps = 0;
  bool comp_diverged = false;
  while (local_sweeps < ctx.max_sweeps) {
    bool changed = false;
    for (const int i : members) {
      ++local_updates;
      local_relaxations += static_cast<long>(view_.fanin_count(i));
      const double v = relax_element(relax_fn_, view_, ctx.shifts, d, i);
      if (std::fabs(v - d[static_cast<size_t>(i)]) > ctx.eps) changed = true;
      d[static_cast<size_t>(i)] = v;
      if (v > ctx.bound) {
        comp_diverged = true;
        break;
      }
    }
    if (comp_diverged) break;
    ++local_sweeps;
    if (!changed) break;
    if (!scc_.nontrivial[static_cast<size_t>(comp)]) break;
  }
  if (comp_diverged) ctx.diverged.store(true, std::memory_order_relaxed);
  if (local_sweeps >= ctx.max_sweeps) {
    ctx.sweep_limited.store(true, std::memory_order_relaxed);
  }
  ctx.updates.fetch_add(local_updates, std::memory_order_relaxed);
  ctx.edge_relaxations.fetch_add(local_relaxations, std::memory_order_relaxed);
  int seen = ctx.max_shard_sweeps.load(std::memory_order_relaxed);
  while (seen < local_sweeps &&
         !ctx.max_shard_sweeps.compare_exchange_weak(seen, local_sweeps,
                                                     std::memory_order_relaxed)) {
  }
}

void ParallelFixpoint::run_chain(SolveCtx& ctx, int comp) {
  // Charge this task's CPU slice to the requesting account (the pointer
  // rides in the propagated trace context). The submitting handler blocks
  // in pool_.wait() while shards run, so shard CPU would otherwise be
  // invisible to its own thread-CPU clock.
  const obs::ThreadCpuTimer cpu(obs::current_cost_account());
  // One span per task (a chain of components), nested under the request
  // span via the propagated trace context; no-op when tracing is off.
  const obs::TraceSpan span("parallel_fixpoint.shard", "sta");
  // Process `comp`, then chase one newly-ready successor inline and fork the
  // surplus. A linear dependency spine (deep pipeline) therefore runs as one
  // task; submissions happen only where the DAG genuinely widens.
  int c = comp;
  for (;;) {
    process_component(ctx, c);
    int next = -1;
    const EdgeIndex s_end = succ_offset_[static_cast<size_t>(c) + 1];
    for (EdgeIndex s = succ_offset_[static_cast<size_t>(c)]; s < s_end; ++s) {
      const int t = succ_[static_cast<size_t>(s)];
      // acq_rel: the final decrement observes every upstream component's
      // stores (their decrements released them), and releases our own to
      // whichever thread runs t.
      if (ctx.pred[static_cast<size_t>(t)].fetch_sub(
              1, std::memory_order_acq_rel) == 1) {
        if (next < 0) {
          next = t;
        } else {
          ctx.tasks.fetch_add(1, std::memory_order_relaxed);
          // Forked shards run on arbitrary workers: carry the sampling
          // request's trace context across the hop by value so shard spans
          // keep its id (an inactive context makes the scope a no-op).
          const obs::TraceContext trace = obs::current_trace_context();
          pool_.submit([this, &ctx, t, trace] {
            const obs::TraceContextScope scope(trace);
            run_chain(ctx, t);
          });
        }
      }
    }
    if (next < 0) return;
    c = next;
  }
}

FixpointResult ParallelFixpoint::solve(const ShiftTable& shifts,
                                       std::vector<double> initial) {
  const int l = view_.num_elements();
  assert(static_cast<int>(initial.size()) == l);
  assert(shifts.num_phases() >= view_.num_phases());
  const StageTimer timer;
  const obs::TraceSpan span("parallel_fixpoint.solve", "sta");
  FixpointResult res;
  res.departure = std::move(initial);

  SolveCtx ctx(shifts, res.departure, static_cast<size_t>(scc_.num_components));
  ctx.eps = options_.fixpoint.eps;
  ctx.bound = divergence_bound(view_, shifts);
  ctx.max_sweeps = options_.fixpoint.effective_max_sweeps(l);
  for (int c = 0; c < scc_.num_components; ++c) {
    ctx.pred[static_cast<size_t>(c)].store(pred_template_[static_cast<size_t>(c)],
                                           std::memory_order_relaxed);
  }

  const std::int64_t steals_before = pool_.steal_count();
  ctx.tasks.store(static_cast<std::int64_t>(roots_.size()),
                  std::memory_order_relaxed);
  const obs::TraceContext trace = obs::current_trace_context();
  for (const int root : roots_) {
    pool_.submit([this, &ctx, root, trace] {
      const obs::TraceContextScope scope(trace);
      run_chain(ctx, root);
    });
  }
  pool_.wait();

  res.updates = static_cast<int>(ctx.updates.load(std::memory_order_relaxed));
  res.stats.edge_relaxations = ctx.edge_relaxations.load(std::memory_order_relaxed);
  res.sweeps = ctx.max_shard_sweeps.load(std::memory_order_relaxed);
  res.diverged = ctx.diverged.load(std::memory_order_relaxed);
  // Same status priority as the scalar scheme's finish(): divergence trumps
  // the sweep budget, which trumps convergence.
  if (res.diverged) {
    res.status = FixpointStatus::kDiverged;
  } else if (ctx.sweep_limited.load(std::memory_order_relaxed)) {
    res.status = FixpointStatus::kSweepLimit;
    res.residual = fixpoint_residual(view_, shifts, res.departure);
  } else {
    res.converged = true;
    res.status = FixpointStatus::kConverged;
  }
  res.stats.sweeps = res.sweeps;
  res.stats.solve_seconds = timer.seconds();
  res.stats.wall_seconds = res.stats.solve_seconds;

  stats_.max_shard_sweeps = res.sweeps;
  stats_.tasks = ctx.tasks.load(std::memory_order_relaxed);
  stats_.steals = pool_.steal_count() - steals_before;

  auto& reg = obs::MetricsRegistry::instance();
  const char* kernel_name = to_string(kernel_);
  reg.counter("parallel.solves", {{"kernel", kernel_name}}).inc();
  reg.counter("parallel.sccs").inc(stats_.sccs);
  reg.counter("parallel.tasks").inc(stats_.tasks);
  reg.counter("parallel.steals").inc(stats_.steals);
  reg.gauge("parallel.threads").set(static_cast<double>(stats_.threads));
  reg.histogram("parallel.shard_sweeps").observe(static_cast<double>(res.sweeps));
  reg.counter("fixpoint.solves", {{"scheme", "parallel"}}).inc();
  reg.counter("fixpoint.sweeps", {{"scheme", "parallel"}}).inc(res.sweeps);
  reg.counter("fixpoint.edge_relaxations", {{"scheme", "parallel"}})
      .inc(res.stats.edge_relaxations);
  obs::charge_solve(res.stats.edge_relaxations, res.sweeps);
  return res;
}

FixpointResult compute_departures_parallel(const TimingView& view, const ShiftTable& shifts,
                                           std::vector<double> initial,
                                           const ParallelFixpointOptions& options) {
  ParallelFixpoint engine(view, options);
  return engine.solve(shifts, std::move(initial));
}

}  // namespace mintc::sta
