#include "sta/corners.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "base/strings.h"
#include "sta/session.h"

namespace mintc::sta {

std::vector<Corner> standard_corners(double spread) {
  return {
      {"slow", 1.0 + spread, 1.0 + spread},
      {"typical", 1.0, 1.0},
      {"fast", 1.0 - spread, 1.0 - spread},
  };
}

Circuit derate(const Circuit& circuit, const Corner& corner) {
  Circuit out(circuit.name() + "@" + corner.name, circuit.num_phases());
  for (const Element& e : circuit.elements()) {
    // `Element d = e` carries skew across unscaled: σ is a clock-network
    // budget, not a silicon delay, so corners do not derate it.
    Element d = e;
    d.setup = e.setup * corner.delay_scale;
    d.dq = e.dq * corner.delay_scale;
    if (e.dq_min >= 0.0) {
      d.dq_min = e.dq_min * corner.min_scale;
    } else {
      d.dq_min = e.dq * corner.min_scale;
    }
    // Keep min <= max even for unusual corner settings.
    if (d.dq_min > d.dq) d.dq_min = d.dq;
    out.add_element(std::move(d));
  }
  for (const CombPath& p : circuit.paths()) {
    const double max_d = p.delay * corner.delay_scale;
    const double min_d = std::min(p.min_delay * corner.min_scale, max_d);
    out.add_path(p.from, p.to, max_d, min_d, p.label);
  }
  return out;
}

CornerReport check_corners(const Circuit& circuit, const ClockSchedule& schedule,
                           const std::vector<Corner>& corners) {
  CornerReport report;
  report.all_pass = true;
  report.corners.resize(corners.size());
  AnalysisOptions options;
  options.check_hold = true;

  // One session serves every corner; per-corner deltas are applied via
  // apply_derating (arithmetic identical to derate() above). Visiting
  // corners in ascending delay_scale order makes each step after the first
  // a monotone-nondecreasing perturbation, so those corners warm-start from
  // the previous corner's fixpoint. Results land in caller order.
  std::vector<size_t> order(corners.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return corners[a].delay_scale < corners[b].delay_scale;
  });
  AnalysisSession session(circuit, schedule, options);
  for (const size_t idx : order) {
    const Corner& corner = corners[idx];
    session.apply_derating(corner.delay_scale, corner.min_scale);
    report.corners[idx] = CornerResult{corner, session.analyze()};
    report.all_pass = report.all_pass && report.corners[idx].report.feasible;
  }
  return report;
}

std::string CornerReport::to_string(const Circuit& circuit) const {
  std::ostringstream out;
  out << "corner analysis of '" << circuit.name() << "': " << (all_pass ? "PASS" : "FAIL")
      << "\n";
  for (const CornerResult& c : corners) {
    out << "  " << c.corner.name << " (x" << fmt_time(c.corner.delay_scale, 3)
        << "): " << (c.report.feasible ? "pass" : "FAIL");
    if (c.report.converged && circuit.num_elements() > 0) {
      out << "  worst setup slack " << fmt_time(c.report.worst_setup_slack, 4);
      if (c.report.worst_hold_element >= 0) {
        out << ", worst hold slack " << fmt_time(c.report.worst_hold_slack, 4);
      }
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace mintc::sta
