#include "sta/corners.h"

#include <sstream>

#include "base/strings.h"

namespace mintc::sta {

std::vector<Corner> standard_corners(double spread) {
  return {
      {"slow", 1.0 + spread, 1.0 + spread},
      {"typical", 1.0, 1.0},
      {"fast", 1.0 - spread, 1.0 - spread},
  };
}

Circuit derate(const Circuit& circuit, const Corner& corner) {
  Circuit out(circuit.name() + "@" + corner.name, circuit.num_phases());
  for (const Element& e : circuit.elements()) {
    Element d = e;
    d.setup = e.setup * corner.delay_scale;
    d.dq = e.dq * corner.delay_scale;
    if (e.dq_min >= 0.0) {
      d.dq_min = e.dq_min * corner.min_scale;
    } else {
      d.dq_min = e.dq * corner.min_scale;
    }
    // Keep min <= max even for unusual corner settings.
    if (d.dq_min > d.dq) d.dq_min = d.dq;
    out.add_element(std::move(d));
  }
  for (const CombPath& p : circuit.paths()) {
    const double max_d = p.delay * corner.delay_scale;
    const double min_d = std::min(p.min_delay * corner.min_scale, max_d);
    out.add_path(p.from, p.to, max_d, min_d, p.label);
  }
  return out;
}

CornerReport check_corners(const Circuit& circuit, const ClockSchedule& schedule,
                           const std::vector<Corner>& corners) {
  CornerReport report;
  report.all_pass = true;
  AnalysisOptions options;
  options.check_hold = true;
  for (const Corner& corner : corners) {
    const Circuit derated = derate(circuit, corner);
    CornerResult result{corner, check_schedule(derated, schedule, options)};
    report.all_pass = report.all_pass && result.report.feasible;
    report.corners.push_back(std::move(result));
  }
  return report;
}

std::string CornerReport::to_string(const Circuit& circuit) const {
  std::ostringstream out;
  out << "corner analysis of '" << circuit.name() << "': " << (all_pass ? "PASS" : "FAIL")
      << "\n";
  for (const CornerResult& c : corners) {
    out << "  " << c.corner.name << " (x" << fmt_time(c.corner.delay_scale, 3)
        << "): " << (c.report.feasible ? "pass" : "FAIL");
    if (c.report.converged && circuit.num_elements() > 0) {
      out << "  worst setup slack " << fmt_time(c.report.worst_setup_slack, 4);
      if (c.report.worst_hold_element >= 0) {
        out << ", worst hold slack " << fmt_time(c.report.worst_hold_slack, 4);
      }
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace mintc::sta
