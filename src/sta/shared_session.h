// Thread-safe facade over AnalysisSession: the one-writer-per-circuit lock.
//
// AnalysisSession is deliberately single-threaded — its warm-start machinery
// mutates a TimingView in place, so two concurrent writers would corrupt the
// incremental state. The serve layer (src/serve) holds many sessions, one
// per circuit key, and many worker threads race to use them; SharedSession
// is the boundary: it owns the session and a mutex, and the ONLY way to
// reach the session is through with(), which runs the callback under the
// lock. Requests for the same circuit key therefore serialize (edit batches
// are atomic with respect to concurrent analyzes), while requests for
// different keys proceed in parallel.
//
// The facade adds no caching or cleverness of its own — hit-rate and warm
// accounting live in AnalysisSession, cross-request result caching in
// serve::ResultCache.
#pragma once

#include <mutex>
#include <utility>

#include "sta/session.h"

namespace mintc::sta {

class SharedSession {
 public:
  /// Constructs the owned AnalysisSession in place (the session is
  /// non-movable once its parallel engine is built).
  template <typename... Args>
  explicit SharedSession(Args&&... args) : session_(std::forward<Args>(args)...) {}

  /// Run `fn(AnalysisSession&)` under the writer lock and return its result.
  /// Do not let references into the session escape the callback.
  template <typename Fn>
  auto with(Fn&& fn) -> decltype(fn(std::declval<AnalysisSession&>())) {
    const std::lock_guard<std::mutex> lk(mu_);
    return fn(session_);
  }

  /// Non-blocking variant for opportunistic work (LRU eviction probes):
  /// returns false without running `fn` when another writer holds the lock.
  template <typename Fn>
  bool try_with(Fn&& fn) {
    const std::unique_lock<std::mutex> lk(mu_, std::try_to_lock);
    if (!lk.owns_lock()) return false;
    fn(session_);
    return true;
  }

 private:
  std::mutex mu_;
  AnalysisSession session_;
};

}  // namespace mintc::sta
