#include "sta/analysis.h"

#include "sta/parallel_fixpoint.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "base/approx.h"
#include "base/strings.h"
#include "base/table.h"
#include "obs/cost.h"
#include "obs/trace.h"

namespace mintc::sta {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

FixpointResult compute_early_departures(const Circuit& circuit, const ClockSchedule& schedule,
                                        const FixpointOptions& options) {
  const TimingView view(circuit);
  const ShiftTable shifts(schedule);
  FixpointResult res = compute_early_departures(view, shifts, options);
  res.stats.view_build_seconds = view.build_seconds();
  res.stats.shift_build_seconds = shifts.build_seconds();
  return res;
}

FixpointResult compute_early_departures(const TimingView& view, const ShiftTable& shifts,
                                        const FixpointOptions& options) {
  const int l = view.num_elements();
  const StageTimer timer;
  FixpointResult res;
  res.departure.assign(static_cast<size_t>(l), 0.0);
  // The min-fixpoint iterated upward from zero is monotone nondecreasing and
  // bounded by the (max) departure fixpoint, so a plain Gauss-Seidel loop
  // suffices regardless of the configured scheme.
  const int max_sweeps = options.effective_max_sweeps(l);
  for (res.sweeps = 0; res.sweeps < max_sweeps; ++res.sweeps) {
    bool changed = false;
    for (int i = 0; i < l; ++i) {
      ++res.updates;
      res.stats.edge_relaxations += view.fanin_count(i);
      const double v = early_departure_update(view, shifts, res.departure, i);
      if (std::fabs(v - res.departure[static_cast<size_t>(i)]) > options.eps) changed = true;
      res.departure[static_cast<size_t>(i)] = v;
    }
    if (!changed) {
      res.converged = true;
      ++res.sweeps;
      break;
    }
  }
  if (res.converged) {
    res.status = FixpointStatus::kConverged;
  } else {
    res.status = FixpointStatus::kSweepLimit;
    double worst = 0.0;
    for (int i = 0; i < l; ++i) {
      const double v = early_departure_update(view, shifts, res.departure, i);
      worst = std::max(worst, std::fabs(v - res.departure[static_cast<size_t>(i)]));
    }
    res.residual = worst;
  }
  res.stats.sweeps = res.sweeps;
  res.stats.solve_seconds = timer.seconds();
  // The early fixpoint is a solve of its own: charge it so a request's
  // CostAccount reconciles with EngineStats.edge_relaxations (which sums the
  // departure AND early passes).
  obs::charge_solve(res.stats.edge_relaxations, res.sweeps);
  return res;
}

TimingReport check_schedule(const Circuit& circuit, const ClockSchedule& schedule,
                            const AnalysisOptions& options) {
  const StageTimer wall_timer;
  const obs::TraceSpan span("analysis.check_schedule", "sta");

  // One flattened view + shift table serves every stage below.
  const TimingView view(circuit);
  const ShiftTable shifts(schedule);
  const int l = circuit.num_elements();

  // Departure fixpoint from below (analysis direction).
  std::vector<double> zeros(static_cast<size_t>(l), 0.0);
  FixpointResult fixpoint;
  if (options.num_threads >= 1) {
    ParallelFixpointOptions popt;
    popt.num_threads = options.num_threads;
    popt.fixpoint = options.fixpoint;
    fixpoint = compute_departures_parallel(view, shifts, std::move(zeros), popt);
  } else {
    fixpoint = compute_departures(view, shifts, std::move(zeros), options.fixpoint);
  }

  TimingReport rep =
      assemble_report(circuit, schedule, view, shifts, options, std::move(fixpoint));
  rep.stats.view_build_seconds = view.build_seconds();
  rep.stats.shift_build_seconds = shifts.build_seconds();
  rep.stats.wall_seconds = wall_timer.seconds();
  return rep;
}

TimingReport assemble_report(const Circuit& circuit, const ClockSchedule& schedule,
                             const TimingView& view, const ShiftTable& shifts,
                             const AnalysisOptions& options, FixpointResult fixpoint,
                             const FixpointResult* early) {
  const StageTimer wall_timer;
  TimingReport rep;
  const int l = circuit.num_elements();
  rep.elements.resize(static_cast<size_t>(l));

  // Clock constraints.
  rep.clock_violations = check_clock_constraints(schedule, circuit.k_matrix(), options.eps);
  rep.schedule_ok = rep.clock_violations.empty();

  rep.fixpoint = std::move(fixpoint);
  rep.converged = rep.fixpoint.converged;
  rep.stats.sweeps = rep.fixpoint.sweeps;
  rep.stats.edge_relaxations = rep.fixpoint.stats.edge_relaxations;
  rep.stats.add_stage("departure-fixpoint", rep.fixpoint.stats.solve_seconds);

  const StageTimer setup_timer;
  const std::vector<double> arrival = compute_arrivals(view, shifts, rep.fixpoint.departure);

  // Setup slacks.
  rep.setup_ok = true;
  rep.worst_setup_slack = kInf;
  for (int i = 0; i < l; ++i) {
    const Element& e = circuit.element(i);
    ElementTiming& t = rep.elements[static_cast<size_t>(i)];
    t.departure = rep.fixpoint.departure[static_cast<size_t>(i)];
    t.arrival = arrival[static_cast<size_t>(i)];
    if (e.is_latch()) {
      // The capture margin is setup + local clock skew (the view's fused
      // setup_margin): the trailing edge may arrive up to σ_i early, so the
      // data must settle that much sooner.
      t.setup_slack = schedule.T(e.phase) - view.setup_margin(i) - t.departure;
    } else {
      // Flip-flop: arrival must precede the leading edge by setup + skew.
      t.setup_slack = (t.arrival == kNegInf) ? kInf : (-view.setup_margin(i) - t.arrival);
    }
    if (t.setup_slack < rep.worst_setup_slack) {
      rep.worst_setup_slack = t.setup_slack;
      rep.worst_setup_element = i;
    }
    if (definitely_lt(t.setup_slack, 0.0, options.eps)) rep.setup_ok = false;
  }
  if (l == 0) rep.worst_setup_slack = 0.0;
  rep.stats.add_stage("setup-slack", setup_timer.seconds());

  // Hold slacks (exact short-path check).
  rep.hold_ok = true;
  rep.worst_hold_slack = kInf;
  for (auto& t : rep.elements) t.hold_slack = kInf;
  if (options.check_hold) {
    FixpointResult early_local;
    if (early == nullptr) {
      early_local = compute_early_departures(view, shifts, options.fixpoint);
      early = &early_local;
    }
    rep.stats.edge_relaxations += early->stats.edge_relaxations;
    rep.stats.add_stage("early-fixpoint", early->stats.solve_seconds);
    const StageTimer hold_timer;
    for (int i = 0; i < l; ++i) {
      const Element& e = circuit.element(i);
      ElementTiming& t = rep.elements[static_cast<size_t>(i)];
      double earliest_next = kInf;
      const EdgeIndex fi_end = view.fanin_end(i);
      for (EdgeIndex fe = view.fanin_begin(i); fe < fi_end; ++fe) {
        const double a = early->departure[static_cast<size_t>(view.edge_src(fe))] +
                         view.edge_min_const(fe) + shifts.at(view.edge_shift(fe));
        earliest_next = std::min(earliest_next, schedule.cycle + a);
      }
      if (earliest_next == kInf) continue;  // no fanin: nothing to corrupt
      if (e.is_latch()) {
        // The next token must arrive at least hold + skew after the trailing
        // edge (the edge may arrive up to σ_i late).
        t.hold_slack = earliest_next - (schedule.T(e.phase) + view.hold_margin(i));
      } else {
        // ... or after the leading edge for a flip-flop.
        t.hold_slack = earliest_next - view.hold_margin(i);
      }
      if (t.hold_slack < rep.worst_hold_slack) {
        rep.worst_hold_slack = t.hold_slack;
        rep.worst_hold_element = i;
      }
      if (definitely_lt(t.hold_slack, 0.0, options.eps)) rep.hold_ok = false;
    }
    rep.stats.add_stage("hold-slack", hold_timer.seconds());
  }

  // Constraint provenance (which term produced each D_i, what is tight).
  if (options.provenance && rep.converged) {
    const StageTimer prov_timer;
    const obs::TraceSpan prov_span("analysis.provenance", "sta");
    rep.provenance =
        constraint_provenance(circuit, schedule, rep.fixpoint.departure, options.eps);
    rep.stats.add_stage("provenance", prov_timer.seconds());
  }

  rep.feasible = rep.schedule_ok && rep.converged && rep.setup_ok && rep.hold_ok;
  rep.stats.wall_seconds = wall_timer.seconds();
  return rep;
}

std::string TimingReport::to_string(const Circuit& circuit) const {
  std::ostringstream out;
  out << "circuit '" << circuit.name() << "': " << (feasible ? "PASS" : "FAIL") << "\n";
  if (!schedule_ok) {
    out << "clock constraint violations:\n";
    for (const ClockViolation& v : clock_violations) {
      out << "  " << v.constraint << " violated by " << fmt_time(v.amount) << "\n";
    }
  }
  if (!converged) {
    if (fixpoint.hit_sweep_limit()) {
      out << "departure fixpoint hit its sweep budget after " << fixpoint.sweeps
          << " sweeps (residual " << fmt_time(fixpoint.residual)
          << "); raise FixpointOptions::max_sweeps\n";
    } else {
      out << "departure fixpoint diverged (positive latch loop under "
             "this schedule)\n";
    }
    return out.str();
  }
  TextTable table({"element", "kind", "phase", "arrival", "departure", "setup slack",
                   "hold slack"});
  for (int i = 0; i < circuit.num_elements(); ++i) {
    const Element& e = circuit.element(i);
    const ElementTiming& t = elements[static_cast<size_t>(i)];
    const auto inf_fmt = [](double v) {
      if (v == kInf) return std::string("-");
      if (v == kNegInf) return std::string("-inf");
      return fmt_time(v);
    };
    table.add_row({e.name, mintc::to_string(e.kind), "phi" + std::to_string(e.phase),
                   inf_fmt(t.arrival), fmt_time(t.departure), inf_fmt(t.setup_slack),
                   inf_fmt(t.hold_slack)});
  }
  out << table.to_string();
  if (!provenance.empty()) out << provenance.to_string(circuit);
  return out.str();
}

}  // namespace mintc::sta
