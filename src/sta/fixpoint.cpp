#include "sta/fixpoint.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "graph/scc.h"

namespace mintc::sta {

const char* to_string(UpdateScheme scheme) {
  switch (scheme) {
    case UpdateScheme::kJacobi: return "jacobi";
    case UpdateScheme::kGaussSeidel: return "gauss-seidel";
    case UpdateScheme::kEventDriven: return "event-driven";
    case UpdateScheme::kSccOrdered: return "scc-ordered";
  }
  return "?";
}

double departure_update(const Circuit& circuit, const ClockSchedule& schedule,
                        const std::vector<double>& departure, int i) {
  const Element& e = circuit.element(i);
  if (!e.is_latch()) return 0.0;
  double best = 0.0;
  for (const int pi : circuit.fanin(i)) {
    const CombPath& path = circuit.path(pi);
    const Element& src = circuit.element(path.from);
    const double a = departure[static_cast<size_t>(path.from)] + src.dq + path.delay +
                     schedule.shift(src.phase, e.phase);
    best = std::max(best, a);
  }
  return best;
}

namespace {

// Any departure beyond this bound means a positive loop: in one period a
// signal cannot legitimately accumulate more than every delay in the circuit
// plus a full cycle of slack.
double divergence_bound(const Circuit& circuit, const ClockSchedule& schedule) {
  double total = std::fabs(schedule.cycle) * (circuit.num_phases() + 1) + 1.0;
  for (const CombPath& p : circuit.paths()) total += p.delay;
  for (const Element& e : circuit.elements()) total += e.dq;
  return total;
}

}  // namespace

FixpointResult compute_departures(const Circuit& circuit, const ClockSchedule& schedule,
                                  std::vector<double> initial, const FixpointOptions& options) {
  const int l = circuit.num_elements();
  assert(static_cast<int>(initial.size()) == l);
  FixpointResult res;
  res.departure = std::move(initial);
  const double bound = divergence_bound(circuit, schedule);

  const auto diverged = [&](double v) { return v > bound; };

  switch (options.scheme) {
    case UpdateScheme::kJacobi: {
      std::vector<double> next(static_cast<size_t>(l), 0.0);
      for (res.sweeps = 0; res.sweeps < options.max_sweeps; ++res.sweeps) {
        bool changed = false;
        for (int i = 0; i < l; ++i) {
          next[static_cast<size_t>(i)] = departure_update(circuit, schedule, res.departure, i);
          ++res.updates;
          if (std::fabs(next[static_cast<size_t>(i)] - res.departure[static_cast<size_t>(i)]) >
              options.eps) {
            changed = true;
          }
          if (diverged(next[static_cast<size_t>(i)])) {
            res.diverged = true;
            // Report a consistent state: this sweep's values up to i, the
            // previous sweep beyond. (`next` past i still holds the sweep
            // before last, so copying all of it would mix three sweeps.)
            std::copy(next.begin(), next.begin() + i + 1, res.departure.begin());
            return res;
          }
        }
        res.departure.swap(next);
        if (!changed) {
          res.converged = true;
          ++res.sweeps;
          return res;
        }
      }
      return res;
    }

    case UpdateScheme::kGaussSeidel: {
      for (res.sweeps = 0; res.sweeps < options.max_sweeps; ++res.sweeps) {
        bool changed = false;
        for (int i = 0; i < l; ++i) {
          const double v = departure_update(circuit, schedule, res.departure, i);
          ++res.updates;
          if (std::fabs(v - res.departure[static_cast<size_t>(i)]) > options.eps) changed = true;
          res.departure[static_cast<size_t>(i)] = v;
          if (diverged(v)) {
            res.diverged = true;
            return res;
          }
        }
        if (!changed) {
          res.converged = true;
          ++res.sweeps;
          return res;
        }
      }
      return res;
    }

    case UpdateScheme::kSccOrdered: {
      // Condense the latch graph into SCCs; Tarjan emits components in
      // reverse topological order, so walking them backwards visits sources
      // first. Each component is swept (Gauss-Seidel) to its own fixpoint
      // before any downstream component is touched.
      const graph::SccResult scc = graph::strongly_connected_components(circuit.latch_graph());
      for (int comp = scc.num_components - 1; comp >= 0; --comp) {
        const std::vector<int>& members = scc.members[static_cast<size_t>(comp)];
        int local_sweeps = 0;
        while (local_sweeps < options.max_sweeps) {
          bool changed = false;
          for (const int i : members) {
            const double v = departure_update(circuit, schedule, res.departure, i);
            ++res.updates;
            if (std::fabs(v - res.departure[static_cast<size_t>(i)]) > options.eps) {
              changed = true;
            }
            res.departure[static_cast<size_t>(i)] = v;
            if (diverged(v)) {
              res.diverged = true;
              return res;
            }
          }
          ++local_sweeps;
          if (!changed) break;
          // Acyclic components converge after one changing sweep.
          if (!scc.nontrivial[static_cast<size_t>(comp)]) break;
        }
        res.sweeps = std::max(res.sweeps, local_sweeps);
        if (local_sweeps >= options.max_sweeps) return res;  // not converged
      }
      res.converged = true;
      return res;
    }

    case UpdateScheme::kEventDriven: {
      // Worklist seeded with every element; a change to D_i re-enqueues the
      // elements fed by i. This is the paper's suggested enhancement.
      std::vector<bool> queued(static_cast<size_t>(l), true);
      std::vector<int> work;
      work.reserve(static_cast<size_t>(l));
      for (int i = 0; i < l; ++i) work.push_back(i);
      const long max_updates =
          static_cast<long>(options.max_sweeps) * std::max(1, l);
      size_t head = 0;
      while (head < work.size()) {
        if (static_cast<long>(res.updates) >= max_updates) return res;
        const int i = work[head++];
        queued[static_cast<size_t>(i)] = false;
        const double v = departure_update(circuit, schedule, res.departure, i);
        ++res.updates;
        if (std::fabs(v - res.departure[static_cast<size_t>(i)]) <= options.eps) continue;
        res.departure[static_cast<size_t>(i)] = v;
        if (diverged(v)) {
          res.diverged = true;
          return res;
        }
        for (const int pe : circuit.fanout(i)) {
          const int dst = circuit.path(pe).to;
          if (!queued[static_cast<size_t>(dst)]) {
            queued[static_cast<size_t>(dst)] = true;
            work.push_back(dst);
          }
        }
        // Compact the worklist occasionally to bound memory.
        if (head > 4096 && head * 2 > work.size()) {
          work.erase(work.begin(), work.begin() + static_cast<long>(head));
          head = 0;
        }
      }
      res.converged = true;
      res.sweeps = (res.updates + l - 1) / std::max(1, l);
      return res;
    }
  }
  return res;
}

FixpointResult incremental_update(const Circuit& circuit, const ClockSchedule& schedule,
                                  std::vector<double> departure, int changed_path,
                                  double old_delay, const FixpointOptions& options) {
  const CombPath& path = circuit.path(changed_path);
  if (path.delay < old_delay) {
    // A decrease can lower departures anywhere downstream of the old
    // critical support; recompute from scratch (event-driven, from zero —
    // the least fixpoint is the analysis answer).
    FixpointOptions full = options;
    full.scheme = UpdateScheme::kEventDriven;
    return compute_departures(circuit, schedule,
                              std::vector<double>(departure.size(), 0.0), full);
  }

  // Increase: the new least fixpoint dominates the old one, and the old
  // point satisfies every inequality except possibly at the changed path's
  // destination. Event-driven propagation seeded there converges upward to
  // the new fixpoint.
  const int l = circuit.num_elements();
  FixpointResult res;
  res.departure = std::move(departure);
  const double bound = divergence_bound(circuit, schedule);

  std::vector<bool> queued(static_cast<size_t>(l), false);
  std::vector<int> work;
  work.push_back(path.to);
  queued[static_cast<size_t>(path.to)] = true;
  const long max_updates = static_cast<long>(options.max_sweeps) * std::max(1, l);
  size_t head = 0;
  while (head < work.size()) {
    if (static_cast<long>(res.updates) >= max_updates) return res;
    const int i = work[head++];
    queued[static_cast<size_t>(i)] = false;
    const double v = departure_update(circuit, schedule, res.departure, i);
    ++res.updates;
    if (v <= res.departure[static_cast<size_t>(i)] + options.eps) continue;
    res.departure[static_cast<size_t>(i)] = v;
    if (v > bound) {
      res.diverged = true;
      return res;
    }
    for (const int pe : circuit.fanout(i)) {
      const int dst = circuit.path(pe).to;
      if (!queued[static_cast<size_t>(dst)]) {
        queued[static_cast<size_t>(dst)] = true;
        work.push_back(dst);
      }
    }
  }
  res.converged = true;
  res.sweeps = (res.updates + l - 1) / std::max(1, l);
  return res;
}

std::vector<double> compute_arrivals(const Circuit& circuit, const ClockSchedule& schedule,
                                     const std::vector<double>& departure) {
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> arrival(static_cast<size_t>(circuit.num_elements()), kNegInf);
  for (int i = 0; i < circuit.num_elements(); ++i) {
    const Element& e = circuit.element(i);
    for (const int pi : circuit.fanin(i)) {
      const CombPath& path = circuit.path(pi);
      const Element& src = circuit.element(path.from);
      const double a = departure[static_cast<size_t>(path.from)] + src.dq + path.delay +
                       schedule.shift(src.phase, e.phase);
      arrival[static_cast<size_t>(i)] = std::max(arrival[static_cast<size_t>(i)], a);
    }
  }
  return arrival;
}

}  // namespace mintc::sta
