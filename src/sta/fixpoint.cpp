#include "sta/fixpoint.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "graph/digraph.h"
#include "graph/scc.h"
#include "obs/cost.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mintc::sta {

const char* to_string(UpdateScheme scheme) {
  switch (scheme) {
    case UpdateScheme::kJacobi: return "jacobi";
    case UpdateScheme::kGaussSeidel: return "gauss-seidel";
    case UpdateScheme::kEventDriven: return "event-driven";
    case UpdateScheme::kSccOrdered: return "scc-ordered";
  }
  return "?";
}

const char* to_string(FixpointStatus status) {
  switch (status) {
    case FixpointStatus::kConverged: return "converged";
    case FixpointStatus::kDiverged: return "diverged";
    case FixpointStatus::kSweepLimit: return "sweep-limit";
  }
  return "?";
}

double fixpoint_residual(const TimingView& view, const ShiftTable& shifts,
                         const std::vector<double>& departure) {
  double residual = 0.0;
  for (int i = 0; i < view.num_elements(); ++i) {
    const double v = mintc::departure_update(view, shifts, departure, i);
    const double delta = std::fabs(v - departure[static_cast<size_t>(i)]);
    if (delta > residual) residual = delta;
  }
  return residual;
}

double divergence_bound(const TimingView& view, const ShiftTable& shifts) {
  // Any departure beyond this bound means a positive loop: in one period a
  // signal cannot legitimately accumulate more than every delay in the
  // circuit plus a full cycle of slack.
  return std::fabs(shifts.cycle()) * (view.num_phases() + 1) + 1.0 + view.divergence_base();
}

graph::Digraph latch_graph_of(const TimingView& view) {
  graph::Digraph g(view.num_elements());
  for (int p = 0; p < view.num_edges(); ++p) {
    const EdgeIndex e = view.edge_of_path(p);
    g.add_edge(view.edge_src(e), view.edge_dst(e), view.edge_max_const(e),
               static_cast<double>(view.edge_cross(e)), p);
  }
  return g;
}

double departure_update(const Circuit& circuit, const ClockSchedule& schedule,
                        const std::vector<double>& departure, int i) {
  const TimingView view(circuit);
  const ShiftTable shifts(schedule);
  return mintc::departure_update(view, shifts, departure, i);
}


FixpointResult compute_departures(const Circuit& circuit, const ClockSchedule& schedule,
                                  std::vector<double> initial, const FixpointOptions& options) {
  const TimingView view(circuit);
  const ShiftTable shifts(schedule);
  FixpointResult res = compute_departures(view, shifts, std::move(initial), options);
  res.stats.view_build_seconds = view.build_seconds();
  res.stats.shift_build_seconds = shifts.build_seconds();
  res.stats.wall_seconds += view.build_seconds() + shifts.build_seconds();
  return res;
}

FixpointResult compute_departures(const TimingView& view, const ShiftTable& shifts,
                                  std::vector<double> initial, const FixpointOptions& options) {
  const int l = view.num_elements();
  assert(static_cast<int>(initial.size()) == l);
  assert(shifts.num_phases() >= view.num_phases());
  const StageTimer timer;
  // Hoisted once per solve: with tracing disabled, the only cost the tracer
  // adds to the loops below is this relaxed atomic load.
  obs::Tracer& tracer = obs::Tracer::instance();
  const bool tracing = tracer.enabled();
  const obs::TraceSpan span("fixpoint.solve", "sta");
  FixpointResult res;
  res.departure = std::move(initial);
  const double bound = divergence_bound(view, shifts);
  // Hoisted into locals: a store through res.departure's double* may alias
  // FixpointOptions' double members under TBAA, so reading options.eps
  // inside the sweep forces a reload per latch (~3% on the overhead gate).
  const double eps = options.eps;
  const int max_sweeps = options.effective_max_sweeps(l);

  const auto diverged = [&](double v) { return v > bound; };
  const auto finish = [&]() -> FixpointResult&& {
    if (res.converged) {
      res.status = FixpointStatus::kConverged;
    } else if (res.diverged) {
      res.status = FixpointStatus::kDiverged;
    } else {
      // Sweep budget exhausted: attach the outstanding residual (one extra
      // read-only pass, negligible next to the sweeps already spent) so the
      // caller can distinguish "nearly there" from "nowhere close".
      res.status = FixpointStatus::kSweepLimit;
      res.residual = fixpoint_residual(view, shifts, res.departure);
    }
    res.stats.sweeps = res.sweeps;
    res.stats.solve_seconds = timer.seconds();
    res.stats.wall_seconds = res.stats.solve_seconds;
    const char* scheme = to_string(options.scheme);
    auto& reg = obs::MetricsRegistry::instance();
    reg.counter("fixpoint.solves", {{"scheme", scheme}}).inc();
    reg.counter("fixpoint.sweeps", {{"scheme", scheme}}).inc(res.sweeps);
    reg.counter("fixpoint.edge_relaxations", {{"scheme", scheme}})
        .inc(res.stats.edge_relaxations);
    reg.histogram("fixpoint.sweeps_per_solve", {{"scheme", scheme}})
        .observe(static_cast<double>(res.sweeps));
    // Attribute the solve's work to the requesting context (serve layer);
    // one pointer test when no account is installed.
    obs::charge_solve(res.stats.edge_relaxations, res.sweeps);
    if (tracing && res.diverged) tracer.instant("fixpoint.diverged", "sta");
    return std::move(res);
  };
  const auto relax = [&](int i) {
    ++res.updates;
    res.stats.edge_relaxations += view.fanin_count(i);
    return mintc::departure_update(view, shifts, res.departure, i);
  };

  // The solve loops are instantiated twice, kTracing on/off, so the
  // disabled-tracing path compiles with no residual tracking at all — the
  // bench_view_fixpoint --overhead-check gate holds it within 5% of the
  // pre-observability loop, which a runtime `if (tracing)` in the inner
  // loop measurably failed.
  const auto solve = [&]<bool kTracing>() -> FixpointResult {
  switch (options.scheme) {
    case UpdateScheme::kJacobi: {
      std::vector<double> next(static_cast<size_t>(l), 0.0);
      for (res.sweeps = 0; res.sweeps < max_sweeps; ++res.sweeps) {
        bool changed = false;
        [[maybe_unused]] double residual = 0.0;  // max |ΔD| this sweep
        for (int i = 0; i < l; ++i) {
          ++res.updates;
          res.stats.edge_relaxations += view.fanin_count(i);
          next[static_cast<size_t>(i)] =
              mintc::departure_update(view, shifts, res.departure, i);
          const double delta =
              std::fabs(next[static_cast<size_t>(i)] - res.departure[static_cast<size_t>(i)]);
          if (delta > eps) changed = true;
          if constexpr (kTracing) {
            if (delta > residual) residual = delta;
          }
          if (diverged(next[static_cast<size_t>(i)])) {
            res.diverged = true;
            // Report a consistent state: this sweep's values up to i, the
            // previous sweep beyond. (`next` past i still holds the sweep
            // before last, so copying all of it would mix three sweeps.)
            std::copy(next.begin(), next.begin() + i + 1, res.departure.begin());
            return finish();
          }
        }
        res.departure.swap(next);
        if constexpr (kTracing) tracer.counter("fixpoint.residual", residual, "sta");
        if (!changed) {
          res.converged = true;
          ++res.sweeps;
          return finish();
        }
      }
      return finish();
    }

    case UpdateScheme::kGaussSeidel: {
      for (res.sweeps = 0; res.sweeps < max_sweeps; ++res.sweeps) {
        bool changed = false;
        [[maybe_unused]] double residual = 0.0;  // max |ΔD| this sweep
        for (int i = 0; i < l; ++i) {
          const double v = relax(i);
          const double delta = std::fabs(v - res.departure[static_cast<size_t>(i)]);
          if (delta > eps) changed = true;
          if constexpr (kTracing) {
            if (delta > residual) residual = delta;
          }
          res.departure[static_cast<size_t>(i)] = v;
          if (diverged(v)) {
            res.diverged = true;
            return finish();
          }
        }
        if constexpr (kTracing) tracer.counter("fixpoint.residual", residual, "sta");
        if (!changed) {
          res.converged = true;
          ++res.sweeps;
          return finish();
        }
      }
      return finish();
    }

    case UpdateScheme::kSccOrdered: {
      // Condense the latch graph into SCCs; Tarjan emits components in
      // reverse topological order, so walking them backwards visits sources
      // first. Each component is swept (Gauss-Seidel) to its own fixpoint
      // before any downstream component is touched.
      const graph::SccResult scc = graph::strongly_connected_components(latch_graph_of(view));
      for (int comp = scc.num_components - 1; comp >= 0; --comp) {
        const std::vector<int>& members = scc.members[static_cast<size_t>(comp)];
        int local_sweeps = 0;
        while (local_sweeps < max_sweeps) {
          bool changed = false;
          [[maybe_unused]] double residual = 0.0;  // max |ΔD| this component sweep
          for (const int i : members) {
            const double v = relax(i);
            const double delta = std::fabs(v - res.departure[static_cast<size_t>(i)]);
            if (delta > eps) changed = true;
            if constexpr (kTracing) {
              if (delta > residual) residual = delta;
            }
            res.departure[static_cast<size_t>(i)] = v;
            if (diverged(v)) {
              res.diverged = true;
              return finish();
            }
          }
          if constexpr (kTracing) tracer.counter("fixpoint.residual", residual, "sta");
          ++local_sweeps;
          if (!changed) break;
          // Acyclic components converge after one changing sweep.
          if (!scc.nontrivial[static_cast<size_t>(comp)]) break;
        }
        res.sweeps = std::max(res.sweeps, local_sweeps);
        if (local_sweeps >= max_sweeps) return finish();  // not converged
      }
      res.converged = true;
      return finish();
    }

    case UpdateScheme::kEventDriven: {
      // Worklist seeded with every element; a change to D_i re-enqueues the
      // elements fed by i. This is the paper's suggested enhancement.
      std::vector<bool> queued(static_cast<size_t>(l), true);
      std::vector<int> work;
      work.reserve(static_cast<size_t>(l));
      for (int i = 0; i < l; ++i) work.push_back(i);
      const long max_updates = static_cast<long>(max_sweeps) * std::max(1, l);
      size_t head = 0;
      while (head < work.size()) {
        if (static_cast<long>(res.updates) >= max_updates) return finish();
        const int i = work[head++];
        queued[static_cast<size_t>(i)] = false;
        const double v = relax(i);
        const double delta = std::fabs(v - res.departure[static_cast<size_t>(i)]);
        if (delta <= eps) continue;
        // The event-driven scheme has no sweeps; the accepted-update ΔD
        // stream is its convergence record.
        if constexpr (kTracing) tracer.counter("fixpoint.residual", delta, "sta");
        res.departure[static_cast<size_t>(i)] = v;
        if (diverged(v)) {
          res.diverged = true;
          return finish();
        }
        const EdgeIndex fo_end = view.fanout_end(i);
        for (EdgeIndex f = view.fanout_begin(i); f < fo_end; ++f) {
          const int dst = view.edge_dst(view.fanout_edge(f));
          if (!queued[static_cast<size_t>(dst)]) {
            queued[static_cast<size_t>(dst)] = true;
            work.push_back(dst);
          }
        }
        // Compact the worklist occasionally to bound memory.
        if (head > 4096 && head * 2 > work.size()) {
          work.erase(work.begin(), work.begin() + static_cast<long>(head));
          head = 0;
        }
      }
      res.converged = true;
      res.sweeps = (res.updates + l - 1) / std::max(1, l);
      return finish();
    }
  }
  return finish();
  };  // solve
  return tracing ? solve.template operator()<true>() : solve.template operator()<false>();
}

FixpointResult warm_departures(const TimingView& view, const ShiftTable& shifts,
                               std::vector<double> departure, const std::vector<int>& seeds,
                               const FixpointOptions& options) {
  const int l = view.num_elements();
  assert(static_cast<int>(departure.size()) == l);
  const StageTimer timer;
  const obs::TraceSpan span("fixpoint.warm", "sta");
  FixpointResult res;
  res.departure = std::move(departure);
  const double bound = divergence_bound(view, shifts);

  std::vector<bool> queued(static_cast<size_t>(l), false);
  std::vector<int> work;
  work.reserve(seeds.size());
  for (const int i : seeds) {
    if (!queued[static_cast<size_t>(i)]) {
      queued[static_cast<size_t>(i)] = true;
      work.push_back(i);
    }
  }
  const long max_updates =
      static_cast<long>(options.effective_max_sweeps(l)) * std::max(1, l);
  size_t head = 0;
  while (head < work.size()) {
    if (static_cast<long>(res.updates) >= max_updates) break;
    const int i = work[head++];
    queued[static_cast<size_t>(i)] = false;
    ++res.updates;
    res.stats.edge_relaxations += view.fanin_count(i);
    const double v = mintc::departure_update(view, shifts, res.departure, i);
    // Strict acceptance: from an exact previous fixpoint under nondecreasing
    // weights, every genuine move is upward; an eps deadband here would stop
    // short of the exact least fixpoint the cold engines settle on.
    if (v <= res.departure[static_cast<size_t>(i)]) continue;
    res.departure[static_cast<size_t>(i)] = v;
    if (v > bound) {
      res.diverged = true;
      break;
    }
    const EdgeIndex fo_end = view.fanout_end(i);
    for (EdgeIndex f = view.fanout_begin(i); f < fo_end; ++f) {
      const int dst = view.edge_dst(view.fanout_edge(f));
      if (!queued[static_cast<size_t>(dst)]) {
        queued[static_cast<size_t>(dst)] = true;
        work.push_back(dst);
      }
    }
    if (head > 4096 && head * 2 > work.size()) {
      work.erase(work.begin(), work.begin() + static_cast<long>(head));
      head = 0;
    }
  }
  if (!res.diverged && head == work.size()) res.converged = true;
  if (res.converged) {
    res.status = FixpointStatus::kConverged;
  } else if (res.diverged) {
    res.status = FixpointStatus::kDiverged;
  } else {
    res.status = FixpointStatus::kSweepLimit;
    res.residual = fixpoint_residual(view, shifts, res.departure);
  }
  res.sweeps = (res.updates + l - 1) / std::max(1, l);
  res.stats.sweeps = res.sweeps;
  res.stats.solve_seconds = timer.seconds();
  res.stats.wall_seconds = res.stats.solve_seconds;
  // This runs once per warm analyze (the session's hot loop), so resolve the
  // registry handles once — each lookup builds a labeled key under a mutex.
  auto& reg = obs::MetricsRegistry::instance();
  static obs::Counter& solves = reg.counter("fixpoint.solves", {{"scheme", "event-warm"}});
  static obs::Counter& sweeps = reg.counter("fixpoint.sweeps", {{"scheme", "event-warm"}});
  static obs::Counter& relaxations =
      reg.counter("fixpoint.edge_relaxations", {{"scheme", "event-warm"}});
  static obs::Histogram& sweeps_hist =
      reg.histogram("fixpoint.sweeps_per_solve", {{"scheme", "event-warm"}});
  solves.inc();
  sweeps.inc(res.sweeps);
  relaxations.inc(res.stats.edge_relaxations);
  sweeps_hist.observe(static_cast<double>(res.sweeps));
  obs::charge_solve(res.stats.edge_relaxations, res.sweeps);
  return res;
}

FixpointResult incremental_update(const Circuit& circuit, const ClockSchedule& schedule,
                                  std::vector<double> departure, int changed_path,
                                  double old_delay, const FixpointOptions& options) {
  const CombPath& path = circuit.path(changed_path);
  if (path.delay < old_delay) {
    // A decrease can lower departures anywhere downstream of the old
    // critical support; recompute from scratch (event-driven, from zero —
    // the least fixpoint is the analysis answer).
    FixpointOptions full = options;
    full.scheme = UpdateScheme::kEventDriven;
    return compute_departures(circuit, schedule,
                              std::vector<double>(departure.size(), 0.0), full);
  }

  // Increase: the new least fixpoint dominates the old one, and the old
  // point satisfies every inequality except possibly at the changed path's
  // destination. Event-driven propagation seeded there converges upward to
  // the new fixpoint.
  const TimingView view(circuit);
  const ShiftTable shifts(schedule);
  const StageTimer timer;
  const int l = view.num_elements();
  FixpointResult res;
  res.departure = std::move(departure);
  res.stats.view_build_seconds = view.build_seconds();
  res.stats.shift_build_seconds = shifts.build_seconds();
  const double bound =
      std::fabs(shifts.cycle()) * (view.num_phases() + 1) + 1.0 + view.divergence_base();

  std::vector<bool> queued(static_cast<size_t>(l), false);
  std::vector<int> work;
  work.push_back(path.to);
  queued[static_cast<size_t>(path.to)] = true;
  const long max_updates =
      static_cast<long>(options.effective_max_sweeps(l)) * std::max(1, l);
  size_t head = 0;
  while (head < work.size()) {
    if (static_cast<long>(res.updates) >= max_updates) break;
    const int i = work[head++];
    queued[static_cast<size_t>(i)] = false;
    ++res.updates;
    res.stats.edge_relaxations += view.fanin_count(i);
    const double v = mintc::departure_update(view, shifts, res.departure, i);
    if (v <= res.departure[static_cast<size_t>(i)] + options.eps) continue;
    res.departure[static_cast<size_t>(i)] = v;
    if (v > bound) {
      res.diverged = true;
      res.status = FixpointStatus::kDiverged;
      res.stats.solve_seconds = timer.seconds();
      res.stats.wall_seconds =
          res.stats.solve_seconds + view.build_seconds() + shifts.build_seconds();
      return res;
    }
    const EdgeIndex fo_end = view.fanout_end(i);
    for (EdgeIndex f = view.fanout_begin(i); f < fo_end; ++f) {
      const int dst = view.edge_dst(view.fanout_edge(f));
      if (!queued[static_cast<size_t>(dst)]) {
        queued[static_cast<size_t>(dst)] = true;
        work.push_back(dst);
      }
    }
  }
  if (head == work.size()) res.converged = true;
  if (res.converged) {
    res.status = FixpointStatus::kConverged;
  } else if (res.diverged) {
    res.status = FixpointStatus::kDiverged;
  } else {
    res.status = FixpointStatus::kSweepLimit;
    res.residual = fixpoint_residual(view, shifts, res.departure);
  }
  res.sweeps = (res.updates + l - 1) / std::max(1, l);
  res.stats.sweeps = res.sweeps;
  res.stats.solve_seconds = timer.seconds();
  res.stats.wall_seconds =
      res.stats.solve_seconds + view.build_seconds() + shifts.build_seconds();
  return res;
}

std::vector<double> compute_arrivals(const Circuit& circuit, const ClockSchedule& schedule,
                                     const std::vector<double>& departure) {
  const TimingView view(circuit);
  const ShiftTable shifts(schedule);
  return compute_arrivals(view, shifts, departure);
}

std::vector<double> compute_arrivals(const TimingView& view, const ShiftTable& shifts,
                                     const std::vector<double>& departure) {
  std::vector<double> arrival(static_cast<size_t>(view.num_elements()));
  for (int i = 0; i < view.num_elements(); ++i) {
    arrival[static_cast<size_t>(i)] = arrival_update(view, shifts, departure, i);
  }
  return arrival;
}

}  // namespace mintc::sta
