// Multi-corner analysis.
//
// The paper's GaAs flow refined delays "from additional circuit simulations
// as well as actual measurements on prototype chips" and re-ran MLP
// "throughout the design process". Real sign-off additionally requires the
// schedule to survive process/voltage/temperature spread. This extension
// models a corner as a uniform derating of all delays (combinational and
// latch) and setup times, and checks a fixed schedule at every corner:
// slow corners stress setup (long paths), fast corners stress hold (short
// paths).
#pragma once

#include <string>
#include <vector>

#include "model/circuit.h"
#include "sta/analysis.h"

namespace mintc::sta {

struct Corner {
  std::string name;
  double delay_scale = 1.0;  // applied to all max delays, Δ_DQ, setup
  double min_scale = 1.0;    // applied to all min delays and min Δ_DQ
};

/// The classic slow/typical/fast triple around a +-spread fraction.
std::vector<Corner> standard_corners(double spread = 0.1);

/// Apply a corner's derating to a copy of the circuit.
Circuit derate(const Circuit& circuit, const Corner& corner);

struct CornerResult {
  Corner corner;
  TimingReport report;
};

struct CornerReport {
  bool all_pass = false;
  std::vector<CornerResult> corners;

  std::string to_string(const Circuit& circuit) const;
};

/// Analyze `schedule` at every corner (hold checking enabled: that is what
/// fast corners are for).
CornerReport check_corners(const Circuit& circuit, const ClockSchedule& schedule,
                           const std::vector<Corner>& corners = standard_corners());

}  // namespace mintc::sta
