// Departure-time fixpoint (eq. 17):
//
//   D_i = max(0, max_j (D_j + Δ_DQj + Δ_ji + S_{pj,pi}))     (latches)
//   D_i = 0                                                  (flip-flops)
//
// with the clock schedule held fixed. This is the nonlinear heart of the SMO
// model. The operator is monotone, so:
//   * iterating from below (D = 0) converges upward to the least fixpoint —
//     the true departure times for a feasible schedule (analysis problem);
//   * iterating from above (an LP solution of P2) converges downward to the
//     same fixpoint — steps 3–5 of Algorithm MLP ("sliding" departures
//     toward the time origin).
// If the schedule admits a positive loop (overlapping phases around a
// feedback loop), the upward iteration diverges; this is detected and
// reported instead of looping forever.
//
// Three update schemes are provided, matching the paper's Section IV
// discussion: Jacobi (the algorithm as printed), Gauss-Seidel ("obviously
// possible", usually fewer sweeps) and event-driven (the suggested
// "only calculate the departure times which have changed" mechanism).
//
// All schemes run on the flattened TimingView/ShiftTable kernel layer
// (model/timing_view.h). The Circuit-based overloads are thin wrappers that
// build the view (and record the build time in FixpointResult::stats); hot
// callers evaluating many schedules against one circuit should build the
// TimingView once and pass it in.
#pragma once

#include <algorithm>
#include <limits>
#include <vector>

#include "model/circuit.h"
#include "model/timing_view.h"

namespace mintc::sta {

// kSccOrdered is the LEADOUT-inspired scheme (paper Section II: LEADOUT
// "first partitioned [the circuit] into its strongest-connected
// components"): solve each SCC of the latch graph to its local fixpoint in
// topological order, so acyclic regions converge in a single pass and
// sweeps are confined to actual feedback loops.
enum class UpdateScheme { kJacobi, kGaussSeidel, kEventDriven, kSccOrdered };

const char* to_string(UpdateScheme scheme);

struct FixpointOptions {
  UpdateScheme scheme = UpdateScheme::kGaussSeidel;
  /// Sweep budget. <= 0 (the default) auto-scales with the element count via
  /// effective_max_sweeps(): the old fixed default of 100000 silently capped
  /// million-latch chains, whose Jacobi sweep count grows with depth.
  /// Hitting the budget is reported as FixpointStatus::kSweepLimit with the
  /// remaining residual — never as a plausible-looking converged result.
  int max_sweeps = 0;
  double eps = 1e-9;

  /// The sweep budget actually enforced for a circuit of `num_elements`
  /// elements: max_sweeps when explicitly set, otherwise
  /// max(100000, 4*l + 1024) so deep pipelines cannot exhaust it before
  /// Jacobi information has crossed the circuit at least once.
  int effective_max_sweeps(int num_elements) const {
    if (max_sweeps > 0) return max_sweeps;
    const long scaled = 4L * std::max(0, num_elements) + 1024L;
    const long capped = std::max(100000L, scaled);
    return static_cast<int>(std::min<long>(capped, std::numeric_limits<int>::max()));
  }
};

/// Terminal state of one fixpoint solve. kSweepLimit is the "ran out of
/// budget" outcome: NOT converged, NOT provably diverging — the caller must
/// treat the departure vector as unusable and either raise the budget or
/// report the failure (never silently accept it).
enum class FixpointStatus { kConverged, kDiverged, kSweepLimit };

const char* to_string(FixpointStatus status);

struct FixpointResult {
  std::vector<double> departure;  // D_i at the fixpoint
  int sweeps = 0;                 // full passes over the latch set
  int updates = 0;                // individual D_i recomputations
  bool converged = false;
  bool diverged = false;          // departures blew past the divergence bound
  /// Distinct terminal status; kSweepLimit means the sweep budget ran out
  /// with `residual` improvement still outstanding.
  FixpointStatus status = FixpointStatus::kSweepLimit;
  /// max_i |F(D)_i - D_i| measured at exit when the sweep budget was
  /// exhausted (one extra read-only relaxation pass); 0 otherwise.
  double residual = 0.0;
  EngineStats stats;              // per-stage timing + relaxation counts

  bool hit_sweep_limit() const { return status == FixpointStatus::kSweepLimit; }
};

/// Evaluate the right-hand side of eq. (17) for element `i` given current
/// departures. Returns 0 for flip-flops and for latches without fanin.
/// Convenience wrapper: builds a throwaway TimingView, so it costs O(l+E)
/// per call — use mintc::departure_update(view, shifts, d, i) in loops.
double departure_update(const Circuit& circuit, const ClockSchedule& schedule,
                        const std::vector<double>& departure, int i);

/// Iterate eq. (17) from `initial` until convergence, divergence or the
/// sweep limit. `initial` must have one entry per element; pass all-zeros
/// for analysis, or the LP departures for Algorithm MLP.
FixpointResult compute_departures(const Circuit& circuit, const ClockSchedule& schedule,
                                  std::vector<double> initial,
                                  const FixpointOptions& options = {});

/// The kernel-layer engine: same contract, but the caller owns the view and
/// shift table (amortizing their builds across many solves).
FixpointResult compute_departures(const TimingView& view, const ShiftTable& shifts,
                                  std::vector<double> initial,
                                  const FixpointOptions& options = {});

/// One read-only relaxation pass: max_i |F(D)_i - D_i| under eq. (17).
/// Cheap (O(l+E)) and allocation-free; used to attach the outstanding
/// residual to sweep-limited results, and by tests.
double fixpoint_residual(const TimingView& view, const ShiftTable& shifts,
                         const std::vector<double>& departure);

/// The divergence guard shared by every scheme: any departure beyond this
/// bound implies a positive loop (in one period a signal cannot legitimately
/// accumulate more than every delay in the circuit plus a cycle of slack).
double divergence_bound(const TimingView& view, const ShiftTable& shifts);

/// The latch connectivity graph rebuilt from the view, edge-for-edge
/// identical to Circuit::latch_graph() (insertion in path order keeps the
/// SCC decomposition — and therefore the kSccOrdered / parallel sweep
/// orders — unchanged).
graph::Digraph latch_graph_of(const TimingView& view);

/// Arrival times A_i (eq. 14) given fixed departures. Latches with no fanin
/// get -infinity (the paper's "Δ == -inf for unconnected" convention).
std::vector<double> compute_arrivals(const Circuit& circuit, const ClockSchedule& schedule,
                                     const std::vector<double>& departure);
std::vector<double> compute_arrivals(const TimingView& view, const ShiftTable& shifts,
                                     const std::vector<double>& departure);

/// Warm-start the eq. (17) iteration from a previous least fixpoint after a
/// batch of monotone-nondecreasing edge-constant changes. `departure` is the
/// old fixpoint; `seeds` are the element indices whose inputs changed (the
/// dirty edges' destinations — plus every latch when the shift table moved).
/// Event-driven propagation with STRICT acceptance (any increase, no eps)
/// converges upward to the new least fixpoint exactly: the old point
/// satisfies every inequality of the new system except possibly at the
/// seeds, and the max-plus operator stabilizes in finitely many exact steps
/// under strictly negative loop gains. The caller must ensure no edge
/// constant decreased (TimingView::max_nondecreasing); otherwise the result
/// can be a non-least fixpoint — fall back to a cold solve instead.
FixpointResult warm_departures(const TimingView& view, const ShiftTable& shifts,
                               std::vector<double> departure, const std::vector<int>& seeds,
                               const FixpointOptions& options = {});

/// Incremental re-analysis after one path's delay changed: starting from the
/// previous fixpoint `departure`, propagate only from the changed path's
/// destination (event-driven). Exact for delay INCREASES (the fixpoint moves
/// monotonically up from the old one); for decreases the result can be stale
/// upstream of clamps, so the implementation falls back to a full event-
/// driven solve when the new delay is smaller. Returns the updated fixpoint.
FixpointResult incremental_update(const Circuit& circuit, const ClockSchedule& schedule,
                                  std::vector<double> departure, int changed_path,
                                  double old_delay, const FixpointOptions& options = {});

}  // namespace mintc::sta
