#include "sta/relax_kernel.h"

#include <algorithm>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MINTC_HAVE_AVX2_KERNEL 1
#include <immintrin.h>
#else
#define MINTC_HAVE_AVX2_KERNEL 0
#endif

namespace mintc::sta {

const char* to_string(RelaxKernelKind kind) {
  switch (kind) {
    case RelaxKernelKind::kAuto:
      return "auto";
    case RelaxKernelKind::kScalar:
      return "scalar";
    case RelaxKernelKind::kAvx2:
      return "avx2";
  }
  return "?";
}

double relax_run_scalar(const double* departure, const int* src,
                        const double* max_const, const int* shift_index,
                        const double* shift_data, EdgeIndex begin, EdgeIndex end,
                        double seed) {
  double best = seed;
  for (EdgeIndex e = begin; e < end; ++e) {
    const size_t u = static_cast<size_t>(e);
    const double a =
        departure[src[u]] + max_const[u] + shift_data[shift_index[u]];
    if (a > best) best = a;
  }
  return best;
}

#if MINTC_HAVE_AVX2_KERNEL

__attribute__((target("avx2"))) static double relax_run_avx2(
    const double* departure, const int* src, const double* max_const,
    const int* shift_index, const double* shift_data, EdgeIndex begin,
    EdgeIndex end, double seed) {
  EdgeIndex e = begin;
  double best = seed;
  if (end - e >= 4) {
    // Four lanes of (d + c) + s, the scalar add order preserved per lane; the
    // lane/tail maxes reassociate only the exact max reduction.
    __m256d acc = _mm256_set1_pd(seed);
    // The all-lanes masked gather, not _mm256_i32gather_pd: the plain form
    // expands through _mm256_undefined_pd(), which GCC 12 flags as
    // maybe-uninitialized under -Werror.
    const __m256d gather_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    for (; e + 4 <= end; e += 4) {
      const size_t u = static_cast<size_t>(e);
      const __m128i src_idx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + u));
      const __m128i shift_idx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(shift_index + u));
      const __m256d d = _mm256_mask_i32gather_pd(_mm256_setzero_pd(), departure,
                                                 src_idx, gather_mask, 8);
      const __m256d c = _mm256_loadu_pd(max_const + u);
      const __m256d s = _mm256_mask_i32gather_pd(_mm256_setzero_pd(), shift_data,
                                                 shift_idx, gather_mask, 8);
      acc = _mm256_max_pd(acc, _mm256_add_pd(_mm256_add_pd(d, c), s));
    }
    const __m128d lo = _mm256_castpd256_pd128(acc);
    const __m128d hi = _mm256_extractf128_pd(acc, 1);
    const __m128d m2 = _mm_max_pd(lo, hi);
    const __m128d m1 = _mm_max_sd(m2, _mm_unpackhi_pd(m2, m2));
    best = _mm_cvtsd_f64(m1);
  }
  return relax_run_scalar(departure, src, max_const, shift_index, shift_data, e,
                          end, best);
}

static bool host_has_avx2() { return __builtin_cpu_supports("avx2") != 0; }

#else

static bool host_has_avx2() { return false; }

#endif  // MINTC_HAVE_AVX2_KERNEL

RelaxKernelKind resolve_relax_kernel(RelaxKernelKind kind) {
  if (kind == RelaxKernelKind::kAuto) {
    return host_has_avx2() ? RelaxKernelKind::kAvx2 : RelaxKernelKind::kScalar;
  }
  if (kind == RelaxKernelKind::kAvx2 && !host_has_avx2()) {
    return RelaxKernelKind::kScalar;
  }
  return kind;
}

RelaxRunFn relax_run_fn(RelaxKernelKind kind) {
#if MINTC_HAVE_AVX2_KERNEL
  if (resolve_relax_kernel(kind) == RelaxKernelKind::kAvx2) {
    return &relax_run_avx2;
  }
#else
  (void)kind;
#endif
  return &relax_run_scalar;
}

}  // namespace mintc::sta
