#include "sta/provenance.h"

#include <cmath>
#include <sstream>
#include <vector>

#include "base/strings.h"
#include "base/table.h"
#include "model/timing_view.h"

namespace mintc::sta {

namespace {

std::string path_label(const Circuit& circuit, int p) {
  const CombPath& path = circuit.path(p);
  if (!path.label.empty()) return path.label;
  return circuit.element(path.from).name + "->" + circuit.element(path.to).name;
}

std::string phase_name(int phase) { return "phi" + std::to_string(phase); }

}  // namespace

ProvenanceReport constraint_provenance(const Circuit& circuit, const ClockSchedule& schedule,
                                       const std::vector<double>& departure, double eps) {
  ProvenanceReport rep;
  const int l = circuit.num_elements();
  if (static_cast<int>(departure.size()) != l) return rep;
  const TimingView view(circuit);
  const ShiftTable shifts(schedule);
  rep.origins.resize(static_cast<size_t>(l));

  // Pass 1: per-element arg-max edge of eq. (17) + tight L1/L2/L3 records.
  for (int i = 0; i < l; ++i) {
    const double d = departure[static_cast<size_t>(i)];
    DepartureOrigin& origin = rep.origins[static_cast<size_t>(i)];
    origin.element = i;
    if (!view.is_latch(i)) continue;  // flip-flop departures are pinned to 0
    const EdgeIndex end = view.fanin_end(i);
    for (EdgeIndex e = view.fanin_begin(i); e < end; ++e) {
      const double term = departure[static_cast<size_t>(view.edge_src(e))] +
                          view.edge_max_const(e) + shifts.at(view.edge_shift(e));
      // The winning term: the largest one that reaches D_i (within eps).
      if (std::fabs(term - d) <= eps && term > origin.term) {
        origin.term = term;
        origin.via_path = view.edge_path(e);
        origin.from = view.edge_src(e);
      }
      if (std::fabs(term - d) <= eps) {
        rep.tight.push_back({"L2",
                             "L2[" + circuit.element(view.edge_src(e)).name + "->" +
                                 circuit.element(i).name + " via " +
                                 path_label(circuit, view.edge_path(e)) + "]",
                             d - term});
      }
    }
    if (std::fabs(d) <= eps) {
      // The 0-clamp dominates (or ties): the latch departs at its leading
      // edge, so L3 is tight and the chain ends here.
      rep.tight.push_back({"L3", "L3[" + circuit.element(i).name + "]", d});
      if (origin.via_path >= 0 && origin.term <= eps) {
        origin.via_path = -1;
        origin.from = -1;
        origin.term = 0.0;
      }
    }
    const double l1_slack = schedule.T(view.phase(i)) - view.setup_margin(i) - d;
    if (std::fabs(l1_slack) <= eps) {
      rep.tight.push_back({"L1", "L1[" + circuit.element(i).name + "]", l1_slack});
    }
  }

  // Pass 2: tight clock constraints, mirroring check_clock_constraints.
  const int k = schedule.num_phases();
  const KMatrix K = circuit.k_matrix();
  for (int p = 1; p <= k; ++p) {
    if (std::fabs(schedule.s(p)) <= eps) {
      rep.tight.push_back({"C4", "C4[s(" + phase_name(p) + ")=0]", schedule.s(p)});
    }
    if (std::fabs(schedule.T(p)) <= eps) {
      rep.tight.push_back({"C4", "C4[T(" + phase_name(p) + ")=0]", schedule.T(p)});
    }
    if (std::fabs(schedule.cycle - schedule.T(p)) <= eps) {
      rep.tight.push_back(
          {"C1", "C1[T(" + phase_name(p) + ")=Tc]", schedule.cycle - schedule.T(p)});
    }
    if (std::fabs(schedule.cycle - schedule.s(p)) <= eps) {
      rep.tight.push_back(
          {"C1", "C1[s(" + phase_name(p) + ")=Tc]", schedule.cycle - schedule.s(p)});
    }
  }
  for (int p = 1; p < k; ++p) {
    const double slack = schedule.s(p + 1) - schedule.s(p);
    if (std::fabs(slack) <= eps) {
      rep.tight.push_back(
          {"C2", "C2[s(" + phase_name(p) + ")=s(" + phase_name(p + 1) + ")]", slack});
    }
  }
  for (int i = 1; i <= k; ++i) {
    for (int j = 1; j <= k; ++j) {
      if (!K.at(i, j)) continue;
      // C3 (eq. 6): s_i >= s_j + T_j - C_ji*Tc.
      const double slack =
          schedule.s(i) - (schedule.s(j) + schedule.T(j) - c_flag(j, i) * schedule.cycle);
      if (std::fabs(slack) <= eps) {
        rep.tight.push_back(
            {"C3", "C3[" + phase_name(j) + " nonoverlap " + phase_name(i) + "]", slack});
      }
    }
  }

  // Pass 3: critical chain from the worst-setup-slack latch backwards along
  // arg-max edges. Ties (common at an LP optimum, where several latches sit
  // at slack 0) break towards the latest-departing latch: its chain is the
  // longest combinational walk and therefore the one a designer wants named.
  int worst = -1;
  double worst_slack = 0.0;
  for (int i = 0; i < l; ++i) {
    if (!view.is_latch(i)) continue;
    const double d = departure[static_cast<size_t>(i)];
    const double slack = schedule.T(view.phase(i)) - view.setup_margin(i) - d;
    if (worst < 0 || slack < worst_slack - eps) {
      worst = i;
      worst_slack = slack;
    } else if (slack <= worst_slack + eps) {
      if (slack < worst_slack) worst_slack = slack;
      if (d > departure[static_cast<size_t>(worst)]) worst = i;
    }
  }
  if (worst >= 0) {
    std::vector<char> on_chain(static_cast<size_t>(l), 0);
    int cur = worst;
    while (cur >= 0 && !on_chain[static_cast<size_t>(cur)]) {
      on_chain[static_cast<size_t>(cur)] = 1;
      rep.critical_chain.push_back(cur);
      const DepartureOrigin& origin = rep.origins[static_cast<size_t>(cur)];
      if (origin.via_path < 0) break;  // 0-clamped: the chain's source
      rep.critical_paths.push_back(origin.via_path);
      cur = origin.from;
    }
    // A revisit means the arg-max edges close a critical loop.
    rep.chain_is_loop = cur >= 0 && on_chain[static_cast<size_t>(cur)] &&
                        !rep.critical_paths.empty() &&
                        rep.critical_paths.size() == rep.critical_chain.size();
  }
  return rep;
}

std::string ProvenanceReport::chain_to_string(const Circuit& circuit) const {
  std::ostringstream out;
  for (size_t i = 0; i < critical_chain.size(); ++i) {
    const Element& e = circuit.element(critical_chain[i]);
    if (i > 0) out << " <- ";
    out << e.name << "(" << phase_name(e.phase) << ")";
    if (i < critical_paths.size()) out << " <- " << path_label(circuit, critical_paths[i]);
  }
  if (chain_is_loop) out << " <- (loop)";
  return out.str();
}

std::string ProvenanceReport::to_string(const Circuit& circuit) const {
  std::ostringstream out;
  out << "tight constraints (" << tight.size() << "):\n";
  TextTable table({"kind", "constraint", "slack"});
  for (const TightConstraint& t : tight) {
    table.add_row({t.kind, t.name, fmt_time(t.slack)});
  }
  out << table.to_string();
  out << "critical chain: " << chain_to_string(circuit) << "\n";
  return out.str();
}

}  // namespace mintc::sta
