// Parallel eq. (17) fixpoint engine: SCC partition + work-stealing topology
// scheduling + vectorized shard relaxation.
//
// The scalar kSccOrdered scheme (fixpoint.cpp) already exploits the key
// structural fact — eq. (17) only couples latches within a strongly
// connected component of the latch graph, so each SCC can be solved to its
// local fixpoint once its upstream SCCs are done. This engine is the same
// algorithm with the two sequential bottlenecks removed:
//
//   * independent SCCs run concurrently on a base::ThreadPool, released in
//     topological order by per-component predecessor counts (one task
//     "chains" down its dependency spine inline and only forks surplus
//     newly-ready components, so a deep pipeline costs O(fork points) task
//     submissions, not O(components));
//   * the per-latch fan-in reduction runs through the relax_kernel trait
//     (portable scalar or runtime-dispatched AVX2 gathers).
//
// Bit-identity contract (tested, not aspirational): for a CONVERGENT solve,
// the departure vector is bitwise identical to UpdateScheme::kSccOrdered at
// every thread count and kernel choice. The argument:
//
//   1. A component's relaxations read only departures of its own members
//      (same Gauss-Seidel member order as the scalar scheme) and of upstream
//      components, which are fully converged — and therefore hold exactly
//      the scalar run's values — before the component is released. The
//      release is the synchronization edge: the final predecessor-count
//      decrement (acq_rel) plus the pool's queue handoff order every
//      upstream store before every downstream load.
//   2. Components never share members, so concurrent shards write disjoint
//      slices of the departure vector.
//   3. The AVX2 kernel preserves the scalar per-lane add order and max is
//      exact (relax_kernel.h), so the shard-local arithmetic is identical.
//
// On DIVERGENCE the two engines legitimately differ in everything but the
// verdict: the scalar scheme abandons the whole solve at the first value
// over the bound, while this engine stops only the offending component and
// finishes the rest of the schedule (aborting siblings on a shared flag
// would make the final vector depend on thread timing). The resulting
// departure vector is still deterministic for a fixed circuit — every
// component's local solve is a deterministic function of its upstream
// values — but it is NOT the scalar scheme's vector; only status/diverged
// agree, which is what callers act on.
#pragma once

#include <cstdint>
#include <vector>

#include "base/thread_pool.h"
#include "graph/scc.h"
#include "model/timing_view.h"
#include "sta/fixpoint.h"
#include "sta/relax_kernel.h"

namespace mintc::sta {

struct ParallelFixpointOptions {
  /// Worker count. <= 0 picks std::thread::hardware_concurrency().
  int num_threads = 1;
  /// Inner-loop kernel; kAuto resolves to AVX2 when the host supports it.
  RelaxKernelKind kernel = RelaxKernelKind::kAuto;
  /// Sweep budget per component and convergence deadband, with exactly the
  /// FixpointOptions semantics (max_sweeps <= 0 auto-scales; see
  /// FixpointOptions::effective_max_sweeps). `scheme` is ignored — this
  /// engine is kSccOrdered by construction.
  FixpointOptions fixpoint;
};

/// Per-solve scheduler observability, also exported as obs metrics
/// (parallel.* counters/histograms) by solve().
struct ParallelSolveStats {
  int sccs = 0;             // components in the partition
  int nontrivial_sccs = 0;  // components containing a cycle
  int threads = 0;          // workers actually used
  int max_shard_sweeps = 0; // deepest local sweep count over all shards
  std::int64_t tasks = 0;   // pool submissions (roots + surplus forks)
  std::int64_t steals = 0;  // cross-deque takes during this solve
  RelaxKernelKind kernel = RelaxKernelKind::kScalar;  // resolved kernel
};

/// Reusable engine bound to one TimingView's STRUCTURE: the SCC partition
/// and its condensation CSR are built once in the constructor and amortized
/// across solves (delay/Tc edits change edge constants, not edges, so
/// sessions re-solve against the same plan). The view must outlive the
/// engine; structural invalidation (a different circuit) requires a new
/// ParallelFixpoint.
class ParallelFixpoint {
 public:
  ParallelFixpoint(const TimingView& view, const ParallelFixpointOptions& options = {});

  /// One full solve from `initial` (zeros for analysis, LP departures for
  /// MLP sliding). Same result contract as compute_departures with
  /// kSccOrdered — see the bit-identity notes above.
  FixpointResult solve(const ShiftTable& shifts, std::vector<double> initial);

  /// Scheduler counters of the most recent solve().
  const ParallelSolveStats& last_stats() const { return stats_; }

  int num_threads() const { return pool_.num_threads(); }
  int num_components() const { return scc_.num_components; }
  RelaxKernelKind kernel() const { return kernel_; }

 private:
  struct SolveCtx;

  void run_chain(SolveCtx& ctx, int comp);
  void process_component(SolveCtx& ctx, int comp);

  const TimingView& view_;
  ParallelFixpointOptions options_;
  RelaxKernelKind kernel_;
  RelaxRunFn relax_fn_;
  graph::SccResult scc_;
  // Condensation in CSR form: cross-component successor lists with edge
  // multiplicity preserved (pred counts use the same multiplicity, so the
  // component becomes ready exactly when its last cross edge resolves —
  // no dedup pass needed).
  std::vector<EdgeIndex> succ_offset_;
  std::vector<int> succ_;
  std::vector<int> pred_template_;
  std::vector<int> roots_;
  base::ThreadPool pool_;
  ParallelSolveStats stats_;
};

/// Convenience wrapper: build a throwaway engine and solve once. Prefer
/// owning a ParallelFixpoint when solving repeatedly against one view.
FixpointResult compute_departures_parallel(const TimingView& view, const ShiftTable& shifts,
                                           std::vector<double> initial,
                                           const ParallelFixpointOptions& options = {});

}  // namespace mintc::sta
