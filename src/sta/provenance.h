// Constraint provenance: explain WHERE an analysis answer came from.
//
// The departure fixpoint (eq. 17) gives each latch a number D_i; this module
// reconstructs the argument of the max that produced it — the arg-max fan-in
// edge (D_j + Δ_DQj + Δ_ji + S_pj,pi), or the 0-clamp when every propagation
// term is negative — and scans every SMO constraint for tightness:
//
//   L1  (eq. 16):  D_i + setup_i <= T_pi      tight => setup-critical latch
//   L2  (eq. 17):  D_i >= D_j + Δ + S         tight => the edge carries D_i
//   L3:            D_i >= 0                   tight => latch departs at the edge
//   C1-C4:         the clock constraints of check_clock_constraints
//
// From the arg-max edges it also extracts the critical chain: starting at
// the worst-setup-slack latch, follow arg-max predecessors until a latch is
// clamped at 0 (chain source) or a latch repeats (critical loop). The chain
// is rendered with element and phase names — the named latch→phase→slack
// walk a designer needs to know which path bounds the cycle time.
#pragma once

#include <string>
#include <vector>

#include "model/circuit.h"

namespace mintc::sta {

/// Which eq. (17) term produced D_i.
struct DepartureOrigin {
  int element = -1;   // destination element i
  int via_path = -1;  // Circuit path index of the arg-max edge; -1 => 0-clamp
  int from = -1;      // source element of that edge (-1 when clamped)
  double term = 0.0;  // winning propagation term (0.0 for the clamp)
};

/// One constraint satisfied with equality (within eps).
struct TightConstraint {
  std::string kind;  // "L1", "L2", "L3", "C1".."C4"
  std::string name;  // rendered, e.g. "L1[P2]" or "L2[P1->P2 via M12]"
  double slack = 0.0;
};

struct ProvenanceReport {
  std::vector<DepartureOrigin> origins;  // one per element, index-aligned
  std::vector<TightConstraint> tight;    // every tight constraint, L's then C's
  /// Worst-setup-slack latch first, then its arg-max predecessors; ends at a
  /// 0-clamped latch or closes a loop (`chain_is_loop`).
  std::vector<int> critical_chain;
  /// Path indices connecting consecutive chain elements (size - 1 entries,
  /// or size entries when the chain closes a loop).
  std::vector<int> critical_paths;
  bool chain_is_loop = false;

  bool empty() const { return origins.empty(); }

  /// "P2(phi2) <- M12 <- P1(phi1)" — destination first, like the chain walk.
  std::string chain_to_string(const Circuit& circuit) const;
  /// Full report: tight-constraint table plus the named critical chain.
  std::string to_string(const Circuit& circuit) const;
};

/// Reconstruct provenance for a converged departure vector under `schedule`.
/// `departure` must be the eq. (17) least fixpoint (e.g. from
/// compute_departures or MlpResult::departure); tightness uses `eps`.
ProvenanceReport constraint_provenance(const Circuit& circuit, const ClockSchedule& schedule,
                                       const std::vector<double>& departure, double eps = 1e-6);

}  // namespace mintc::sta
