#include "check/differential.h"

#include <cmath>
#include <random>
#include <sstream>

#include "base/strings.h"
#include "opt/graph_solver.h"
#include "opt/mlp.h"
#include "sim/token_sim.h"
#include "sta/analysis.h"
#include "sta/fixpoint.h"
#include "sta/parallel_fixpoint.h"
#include "sta/session.h"

namespace mintc::check {

const char* to_string(CheckKind kind) {
  switch (kind) {
    case CheckKind::kSolverAgreement: return "solver-agreement";
    case CheckKind::kP1Satisfaction: return "p1-satisfaction";
    case CheckKind::kSchemeAgreement: return "scheme-agreement";
    case CheckKind::kIncrementalAgreement: return "incremental-agreement";
    case CheckKind::kSimAgreement: return "sim-agreement";
    case CheckKind::kSessionAgreement: return "session-agreement";
    case CheckKind::kParallelAgreement: return "parallel-agreement";
    case CheckKind::kSkewAgreement: return "skew-agreement";
  }
  return "?";
}

bool DifferentialReport::has(CheckKind kind) const {
  for (const CheckFailure& f : failures) {
    if (f.kind == kind) return true;
  }
  return false;
}

std::string DifferentialReport::to_string() const {
  if (ok()) return "all engines agree";
  std::ostringstream out;
  for (const CheckFailure& f : failures) {
    out << "[" << check::to_string(f.kind) << "] " << f.detail << "\n";
  }
  return out.str();
}

namespace {

std::vector<double> zeros(const Circuit& circuit) {
  return std::vector<double>(static_cast<size_t>(circuit.num_elements()), 0.0);
}

// Largest per-element difference, with the index where it occurs.
struct VecDiff {
  double amount = 0.0;
  int element = -1;
};

VecDiff max_abs_diff(const std::vector<double>& a, const std::vector<double>& b) {
  VecDiff d;
  for (size_t i = 0; i < a.size(); ++i) {
    const double v = std::fabs(a[i] - b[i]);
    if (v > d.amount) {
      d.amount = v;
      d.element = static_cast<int>(i);
    }
  }
  return d;
}

std::string flag_string(const sta::FixpointResult& r) {
  if (r.converged) return "converged";
  if (r.diverged) return "diverged";
  return "hit the sweep limit (residual " + fmt_time(r.residual, 9) + ")";
}

// First bitwise difference between two timing reports (empty = identical).
// Exact comparison is the point: the session's correctness contract is
// bit-identity with a fresh check_schedule, not agreement within eps.
std::string diff_reports(const sta::TimingReport& a, const sta::TimingReport& b) {
  if (a.feasible != b.feasible || a.schedule_ok != b.schedule_ok ||
      a.converged != b.converged || a.setup_ok != b.setup_ok || a.hold_ok != b.hold_ok) {
    return "feasibility flags differ";
  }
  if (a.fixpoint.departure != b.fixpoint.departure) {
    const VecDiff d = max_abs_diff(a.fixpoint.departure, b.fixpoint.departure);
    return "departure vectors differ by " + fmt_time(d.amount, 12) + " at element " +
           std::to_string(d.element);
  }
  if (a.elements.size() != b.elements.size()) return "element counts differ";
  for (size_t i = 0; i < a.elements.size(); ++i) {
    const sta::ElementTiming& x = a.elements[i];
    const sta::ElementTiming& y = b.elements[i];
    if (x.departure != y.departure || x.arrival != y.arrival ||
        x.setup_slack != y.setup_slack || x.hold_slack != y.hold_slack) {
      return "slack record differs at element " + std::to_string(i);
    }
  }
  if (a.worst_setup_slack != b.worst_setup_slack ||
      a.worst_setup_element != b.worst_setup_element ||
      a.worst_hold_slack != b.worst_hold_slack ||
      a.worst_hold_element != b.worst_hold_element) {
    return "worst-slack summary differs";
  }
  return {};
}

}  // namespace

DifferentialReport check_circuit(const Circuit& circuit, uint64_t rng_seed,
                                 const DifferentialOptions& options) {
  DifferentialReport rep;
  const auto fail = [&rep](CheckKind kind, std::string detail) {
    rep.failures.push_back({kind, std::move(detail)});
  };

  // Engines 1 and 2: simplex MLP and the difference-constraint graph
  // solver. The graph solver optionally sees a skewed copy (fault
  // injection for the shrinker demo).
  opt::MlpOptions lp_opts;
  lp_opts.generator = options.generator;
  const auto lp = opt::minimize_cycle_time(circuit, lp_opts);
  Circuit graph_input = circuit;
  if (options.inject_solver_skew != 0.0 && circuit.num_paths() > 0) {
    graph_input.set_path_delay(0,
                               circuit.path(0).delay * (1.0 + options.inject_solver_skew));
  }
  opt::GraphSolveOptions bf_opts;
  bf_opts.generator = options.generator;
  const auto bf = opt::minimize_cycle_time_graph(graph_input, bf_opts);

  if (!lp || !bf) {
    if (lp.has_value() != bf.has_value()) {
      std::ostringstream out;
      out << "simplex " << (lp ? "found Tc*=" + fmt_time(lp->min_cycle, 6) : lp.error().to_string())
          << " but graph solver "
          << (bf ? "found Tc*=" + fmt_time(bf->min_cycle, 6) : bf.error().to_string());
      fail(CheckKind::kSolverAgreement, out.str());
    } else if (lp.error().kind != bf.error().kind) {
      fail(CheckKind::kSolverAgreement,
           std::string("error kinds differ: simplex ") + mintc::to_string(lp.error().kind) +
               " vs graph " + mintc::to_string(bf.error().kind));
    }
    return rep;  // no schedule to run the remaining checks against
  }

  rep.feasible = true;
  rep.min_cycle = lp->min_cycle;
  const double tc_scale = std::max(1.0, std::fabs(lp->min_cycle));
  if (std::fabs(lp->min_cycle - bf->min_cycle) > options.tc_tol * tc_scale) {
    fail(CheckKind::kSolverAgreement,
         "simplex Tc*=" + fmt_time(lp->min_cycle, 8) + " vs graph Tc*=" +
             fmt_time(bf->min_cycle, 8) + " (tol " + fmt_time(options.tc_tol * tc_scale, 8) + ")");
  }

  // Each engine's solution must satisfy the nonlinear problem P1 exactly —
  // not just the relaxed LP rows.
  if (!opt::satisfies_p1(circuit, lp->schedule, lp->departure, options.p1_eps)) {
    fail(CheckKind::kP1Satisfaction, "simplex (schedule, departures) violates P1");
  }
  if (!opt::satisfies_p1(graph_input, bf->schedule, bf->departure, options.p1_eps)) {
    fail(CheckKind::kP1Satisfaction, "graph-solver (schedule, departures) violates P1");
  }

  // One flattened view serves every fixpoint below (four schemes, the sim
  // cross-check and the perturbation baseline); only the shift tables differ
  // per schedule.
  const TimingView view(circuit);
  const ShiftTable opt_shifts(lp->schedule);

  // Engine 3, internal consistency: every UpdateScheme must reach the same
  // least fixpoint from zero under the optimal schedule.
  const sta::UpdateScheme schemes[] = {
      sta::UpdateScheme::kJacobi, sta::UpdateScheme::kGaussSeidel,
      sta::UpdateScheme::kEventDriven, sta::UpdateScheme::kSccOrdered};
  std::vector<double> scheme_ref;
  for (const sta::UpdateScheme scheme : schemes) {
    sta::FixpointOptions fo;
    fo.scheme = scheme;
    const sta::FixpointResult r = sta::compute_departures(view, opt_shifts, zeros(circuit), fo);
    if (!r.converged) {
      fail(CheckKind::kSchemeAgreement,
           std::string(sta::to_string(scheme)) + " " + flag_string(r) + " at the LP optimum");
      continue;
    }
    if (scheme_ref.empty()) {
      scheme_ref = r.departure;
      continue;
    }
    const VecDiff d = max_abs_diff(scheme_ref, r.departure);
    if (d.amount > options.departure_tol) {
      fail(CheckKind::kSchemeAgreement,
           std::string(sta::to_string(scheme)) + " differs from " +
               sta::to_string(schemes[0]) + " by " + fmt_time(d.amount, 9) + " at element '" +
               circuit.element(d.element).name + "'");
    }
  }

  // Engine 3b, parallel leg: the SCC-parallel engine must be BITWISE equal
  // to the scalar kSccOrdered scheme on a convergent solve — not within
  // departure_tol, exactly (that is its documented contract; see
  // parallel_fixpoint.h). Run it at a couple of thread counts so both the
  // single-worker and genuinely concurrent schedules are exercised.
  {
    sta::FixpointOptions fo;
    fo.scheme = sta::UpdateScheme::kSccOrdered;
    const sta::FixpointResult scalar_ref =
        sta::compute_departures(view, opt_shifts, zeros(circuit), fo);
    for (const int threads : {1, 4}) {
      sta::ParallelFixpointOptions po;
      po.num_threads = threads;
      po.fixpoint = fo;
      const sta::FixpointResult par =
          sta::compute_departures_parallel(view, opt_shifts, zeros(circuit), po);
      if (par.converged != scalar_ref.converged) {
        fail(CheckKind::kParallelAgreement,
             "parallel(" + std::to_string(threads) + ") " + flag_string(par) +
                 " but scc-ordered " + flag_string(scalar_ref));
      } else if (scalar_ref.converged && par.departure != scalar_ref.departure) {
        const VecDiff d = max_abs_diff(par.departure, scalar_ref.departure);
        fail(CheckKind::kParallelAgreement,
             "parallel(" + std::to_string(threads) + ") departures not bitwise equal: off by " +
                 fmt_time(d.amount, 12) + " at element '" +
                 circuit.element(d.element).name + "'");
      }
    }
  }

  // The token simulator re-derives the same steady state dynamically.
  // Simulate slightly above the optimum (as the sim tests do) so zero-slack
  // loops do not stretch the generation count.
  if (options.check_simulation) {
    const ClockSchedule sim_sch = lp->schedule.scaled(1.02);
    sim::SimOptions so;
    so.max_generations = options.sim_max_generations;
    const sim::SimResult sim = sim::simulate_tokens(circuit, sim_sch, so);
    const sta::FixpointResult fix =
        sta::compute_departures(view, ShiftTable(sim_sch), zeros(circuit));
    if (sim.converged != fix.converged) {
      fail(CheckKind::kSimAgreement,
           std::string("simulation ") + (sim.converged ? "reached" : "missed") +
               " steady state but the fixpoint " + flag_string(fix));
    } else if (sim.converged) {
      const VecDiff d = max_abs_diff(sim.departure, fix.departure);
      if (d.amount > options.departure_tol) {
        fail(CheckKind::kSimAgreement,
             "steady state differs from the fixpoint by " + fmt_time(d.amount, 9) +
                 " at element '" + circuit.element(d.element).name + "'");
      }
    }
  }

  // Incremental re-analysis vs from-scratch after a random perturbation,
  // at a relaxed schedule. With slack_factor > 1 + max_perturb every loop
  // keeps strictly negative gain (a path's delay is at most its loop's sum,
  // which the optimal Tc covers), so both routes must stay convergent.
  if (circuit.num_paths() > 0) {
    std::mt19937_64 rng(rng_seed);
    std::uniform_int_distribution<int> pick_path(0, circuit.num_paths() - 1);
    std::uniform_real_distribution<double> magnitude(0.05, options.max_perturb);
    const int p = pick_path(rng);
    const ClockSchedule relaxed = lp->schedule.scaled(options.slack_factor);
    const sta::FixpointResult before =
        sta::compute_departures(view, ShiftTable(relaxed), zeros(circuit));
    if (before.converged) {
      Circuit mutated = circuit;
      const double old_delay = circuit.path(p).delay;
      const double delta = magnitude(rng) * std::max(old_delay, 1.0);
      const bool increase = (rng() & 1) != 0;
      const double new_delay =
          increase ? old_delay + delta
                   : std::max(circuit.path(p).min_delay, old_delay - delta);
      mutated.set_path_delay(p, new_delay);
      const sta::FixpointResult inc =
          sta::incremental_update(mutated, relaxed, before.departure, p, old_delay);
      const sta::FixpointResult full = sta::compute_departures(mutated, relaxed, zeros(mutated));
      const std::string what = "path " + circuit.element(circuit.path(p).from).name + "->" +
                               circuit.element(circuit.path(p).to).name + " delay " +
                               fmt_time(old_delay, 6) + " -> " + fmt_time(new_delay, 6);
      if (inc.converged != full.converged || inc.diverged != full.diverged) {
        fail(CheckKind::kIncrementalAgreement,
             what + ": incremental " + flag_string(inc) + " but from-scratch " +
                 flag_string(full));
      } else if (inc.converged) {
        const VecDiff d = max_abs_diff(inc.departure, full.departure);
        if (d.amount > options.departure_tol) {
          fail(CheckKind::kIncrementalAgreement,
               what + ": departures differ by " + fmt_time(d.amount, 9) + " at element '" +
                   circuit.element(d.element).name + "'");
        }
      }

      // The same perturbation driven through an AnalysisSession: cold, warm
      // after the edit, cold again after the undo — each leg bit-identical
      // to a fresh check_schedule of the corresponding circuit.
      sta::AnalysisOptions an;
      an.check_hold = true;
      sta::AnalysisSession session(circuit, relaxed, an);
      std::string diff =
          diff_reports(session.analyze(), sta::check_schedule(circuit, relaxed, an));
      if (!diff.empty()) {
        fail(CheckKind::kSessionAgreement, what + ": cold session: " + diff);
      }
      const size_t mark = session.mark();
      session.set_path_delay(p, new_delay);
      diff = diff_reports(session.analyze(), sta::check_schedule(mutated, relaxed, an));
      if (!diff.empty()) {
        fail(CheckKind::kSessionAgreement, what + ": session after edit: " + diff);
      }
      session.undo_to(mark);
      diff = diff_reports(session.analyze(), sta::check_schedule(circuit, relaxed, an));
      if (!diff.empty()) {
        fail(CheckKind::kSessionAgreement, what + ": session after undo: " + diff);
      }
    }
  }

  // Skew leg: the whole agreement matrix again, on a copy with deterministic
  // random per-latch skews. Every engine reads Element::skew through its own
  // path (LP rows, difference constraints, the view's fused margins, the
  // simulator's setup checks), so any disagreement about what skew means
  // surfaces here. One level deep only: the inner run has check_skew off.
  if (options.check_skew && circuit.num_elements() > 0) {
    std::mt19937_64 skew_rng(rng_seed ^ 0x5ce3a11u);
    std::uniform_real_distribution<double> skew_mag(0.0, options.skew_magnitude * tc_scale);
    Circuit skewed = circuit;
    for (int i = 0; i < skewed.num_elements(); ++i) {
      skewed.element(i).skew = skew_mag(skew_rng);
    }
    DifferentialOptions inner = options;
    inner.check_skew = false;
    inner.inject_solver_skew = 0.0;
    const DifferentialReport inner_rep = check_circuit(skewed, rng_seed, inner);
    for (const CheckFailure& f : inner_rep.failures) {
      fail(CheckKind::kSkewAgreement,
           std::string("[skewed: ") + check::to_string(f.kind) + "] " + f.detail);
    }

    // AnalysisSession route to the same skewed circuit: cold on the base
    // circuit, per-latch set_element_skew edits (a warm, slack-only path),
    // then undo back — each state bit-identical to a fresh check_schedule.
    sta::AnalysisOptions an;
    an.check_hold = true;
    const ClockSchedule relaxed = lp->schedule.scaled(options.slack_factor);
    sta::AnalysisSession session(circuit, relaxed, an);
    std::string diff =
        diff_reports(session.analyze(), sta::check_schedule(circuit, relaxed, an));
    if (!diff.empty()) {
      fail(CheckKind::kSkewAgreement, "session before skew edits: " + diff);
    }
    const size_t mark = session.mark();
    for (int i = 0; i < circuit.num_elements(); ++i) {
      session.set_element_skew(i, skewed.element(i).skew);
    }
    diff = diff_reports(session.analyze(), sta::check_schedule(skewed, relaxed, an));
    if (!diff.empty()) {
      fail(CheckKind::kSkewAgreement, "session after skew edits: " + diff);
    }
    session.undo_to(mark);
    diff = diff_reports(session.analyze(), sta::check_schedule(circuit, relaxed, an));
    if (!diff.empty()) {
      fail(CheckKind::kSkewAgreement, "session after skew undo: " + diff);
    }
  }

  return rep;
}

}  // namespace mintc::check
