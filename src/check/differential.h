// Differential cross-checking of the library's independent Tc engines.
//
// The repo computes the optimal cycle time by three routes that share no
// machinery beyond the circuit model: Algorithm MLP over the simplex
// (opt/mlp.h), the difference-constraint/Bellman-Ford solver anticipated by
// the paper's Section VI (opt/graph_solver.h), and the eq. (17) departure
// fixpoint validated dynamically by the token simulator (sta/fixpoint.h,
// sim/token_sim.h). check_circuit() asserts the full agreement matrix on
// one circuit:
//
//   * the simplex and graph-solver optima agree on Tc* (or both report the
//     same infeasibility),
//   * each engine's (schedule, departures) satisfies the nonlinear problem
//     P1 exactly,
//   * all four UpdateSchemes converge to the same least fixpoint,
//   * incremental_update after a random delay perturbation matches a
//     from-scratch solve,
//   * an sta::AnalysisSession driven through the same perturbation (and its
//     undo) reproduces fresh check_schedule reports BIT-identically, and
//   * the token simulator's steady state matches the analytic fixpoint, and
//   * the whole matrix holds again under deterministic random per-latch
//     clock skews, reached both by construction and by AnalysisSession
//     set_element_skew edits (kSkewAgreement).
//
// This is the oracle behind the fuzzer (fuzzer.h) and the shrinker
// (shrink.h): any failure here is a bug in at least one engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/circuit.h"
#include "opt/constraints.h"

namespace mintc::check {

enum class CheckKind {
  kSolverAgreement,       // simplex Tc* vs graph-solver Tc* (or error kinds)
  kP1Satisfaction,        // an engine's (schedule, departures) violates P1
  kSchemeAgreement,       // the four UpdateSchemes disagree on the fixpoint
  kIncrementalAgreement,  // incremental_update != from-scratch recompute
  kSimAgreement,          // token-sim steady state != analytic fixpoint
  kSessionAgreement,      // AnalysisSession warm/undo != fresh check_schedule
  kParallelAgreement,     // ParallelFixpoint != scalar kSccOrdered bitwise
  kSkewAgreement,         // engines disagree under random per-latch skews
};

const char* to_string(CheckKind kind);

struct CheckFailure {
  CheckKind kind = CheckKind::kSolverAgreement;
  std::string detail;  // human-readable description of the disagreement
};

struct DifferentialOptions {
  /// Constraint-generation knobs (hold constraints, nonoverlap, skew, ...)
  /// handed identically to both optimizing engines.
  opt::GeneratorOptions generator;
  double tc_tol = 1e-4;         // |Tc_simplex - Tc_graph| tolerance
  double departure_tol = 1e-6;  // per-element departure tolerance
  double p1_eps = 1e-5;         // tolerance handed to satisfies_p1
  /// The perturbation checks run at the optimum scaled by this factor, so
  /// every loop has strictly negative gain and all schemes stay convergent.
  double slack_factor = 1.25;
  /// Relative size of the random delay perturbation. Must stay below
  /// slack_factor - 1 - margin or an increase on a tight loop could
  /// legitimately diverge incrementally (see differential.cpp).
  double max_perturb = 0.2;
  bool check_simulation = true;
  int sim_max_generations = 1024;
  /// Skew leg: re-run the whole agreement matrix on a copy of the circuit
  /// with deterministic random per-latch skews (drawn from rng_seed), plus
  /// an AnalysisSession leg that reaches the skewed circuit via
  /// set_element_skew edits (and returns via undo) demanding bit-identity
  /// with fresh analyses. Any inner disagreement reports as kSkewAgreement.
  bool check_skew = true;
  /// Per-latch skews are drawn uniformly from [0, skew_magnitude * Tc*].
  double skew_magnitude = 0.05;
  /// Fault injection for demos and shrinker tests: bump path 0's delay by
  /// this relative amount in the copy handed to the graph solver only, so
  /// the engines see different circuits and must disagree. 0 = off.
  double inject_solver_skew = 0.0;
};

struct DifferentialReport {
  std::vector<CheckFailure> failures;
  bool feasible = false;  // the engines produced a schedule (vs. infeasible)
  double min_cycle = 0.0; // simplex Tc* when feasible

  bool ok() const { return failures.empty(); }
  bool has(CheckKind kind) const;
  std::string to_string() const;
};

/// Run every cross-engine check on one circuit. `rng_seed` drives the
/// random delay perturbation of the incremental check; the same seed always
/// perturbs the same path by the same amount.
DifferentialReport check_circuit(const Circuit& circuit, uint64_t rng_seed,
                                 const DifferentialOptions& options = {});

}  // namespace mintc::check
