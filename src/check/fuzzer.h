// Seeded random-circuit fuzzer over the differential oracle.
//
// Each fuzz seed deterministically draws a circuit — a randomized
// multi-phase synthetic ring (circuits/synthetic.h), sometimes a gate-level
// datapath extracted into the timing model (netlist/generators.h +
// netlist/extract.h), sometimes with latches converted to flip-flops — and
// runs the full cross-engine agreement matrix of check_circuit() on it. On
// a failure the shrinker (shrink.h) reduces the circuit to a locally
// minimal repro that still fails the same check, and the repro is written
// out as a `.lct` file ready for a regression test.
//
// Everything is a pure function of (base_seed, seed index): a failing seed
// reported by CI replays bit-for-bit locally via fuzz_circuit(seed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/differential.h"
#include "check/shrink.h"
#include "model/circuit.h"

namespace mintc::check {

struct FuzzOptions {
  uint64_t base_seed = 1;
  int num_seeds = 100;
  DifferentialOptions diff;
  ShrinkOptions shrink;
  bool shrink_failures = true;
  /// Directory to write shrunk repros into ("" = keep them in memory only).
  std::string repro_dir;
  /// Stop fuzzing after this many failing seeds.
  int max_failures = 10;
};

struct FuzzFailure {
  uint64_t seed = 0;
  std::vector<CheckFailure> failures;  // from the unshrunk circuit
  std::string repro_lct;               // shrunk minimal repro as .lct text
  std::string repro_path;              // file written, if repro_dir was set
  /// Chrome trace + metrics dump of the failing check replayed on the
  /// shrunk circuit, written next to the repro (when repro_dir was set).
  std::string trace_path;
  std::string metrics_path;
  /// Signoff report (JSON SlackDB) of the shrunk circuit at its own MLP
  /// optimum — slack/borrow context for diagnosing the divergence. Empty
  /// when the shrunk circuit has no feasible schedule.
  std::string report_path;
  int original_elements = 0;
  int original_paths = 0;
  int shrunk_elements = 0;
  int shrunk_paths = 0;
  int shrink_attempts = 0;
};

struct FuzzResult {
  int circuits_checked = 0;
  int feasible = 0;  // circuits where the engines produced a schedule
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }
};

/// The deterministic circuit drawn for one fuzz seed.
Circuit fuzz_circuit(uint64_t seed);

/// Fuzz seeds [base_seed, base_seed + num_seeds) through the differential
/// oracle, shrinking and dumping every failure.
FuzzResult run_fuzz(const FuzzOptions& options);

}  // namespace mintc::check
