#include "check/fuzzer.h"

#include <random>
#include <utility>

#include "circuits/synthetic.h"
#include "netlist/extract.h"
#include "netlist/generators.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "opt/mlp.h"
#include "parser/lct.h"
#include "report/export.h"
#include "report/slackdb.h"

namespace mintc::check {

namespace {

constexpr uint64_t kSeedSalt = 0x9e3779b97f4a7c15ull;  // golden-ratio mix

}  // namespace

Circuit fuzz_circuit(uint64_t seed) {
  std::mt19937_64 rng(seed ^ kSeedSalt);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  Circuit c = [&]() -> Circuit {
    if (unit(rng) < 0.2) {
      // Gate-level route: a random datapath netlist, extracted into the
      // timing model. Generator netlists are feedback-free between latch
      // banks by construction, so extraction succeeds; fall through to the
      // synthetic generator defensively anyway.
      netlist::DatapathConfig cfg;
      cfg.bits = 2 + static_cast<int>(rng() % 5);
      cfg.stages = 2 + static_cast<int>(rng() % 4);
      cfg.num_phases = 2 + static_cast<int>(rng() % 2);
      auto extracted = netlist::extract_timing_model(netlist::make_pipelined_datapath(cfg));
      if (extracted) return std::move(extracted.value());
    }
    circuits::SyntheticParams p;
    p.num_phases = 1 + static_cast<int>(rng() % 3);
    p.num_stages = std::max(p.num_phases + 1, 3 + static_cast<int>(rng() % 5));
    p.latches_per_stage = 1 + static_cast<int>(rng() % 3);
    p.fanin = 1 + static_cast<int>(rng() % 3);
    p.extra_long_edges = static_cast<int>(rng() % 5);
    p.min_delay = 1.0 + 9.0 * unit(rng);
    p.max_delay = p.min_delay + 5.0 + 35.0 * unit(rng);
    p.setup = 0.5 + 2.5 * unit(rng);
    p.dq = 0.5 + 3.5 * unit(rng);
    return circuits::synthetic_circuit(p, rng());
  }();

  // Occasionally convert a few latches into flip-flops: pinned departures
  // exercise the engines' flip-flop rows, and a same-phase feed into a
  // flip-flop gives consistent-infeasibility coverage (both engines must
  // report kInfeasible).
  if (unit(rng) < 0.25 && c.num_elements() > 2) {
    const int conversions = 1 + static_cast<int>(rng() % 2);
    for (int i = 0; i < conversions; ++i) {
      const int victim = static_cast<int>(rng() % static_cast<uint64_t>(c.num_elements()));
      c.element(victim).kind = ElementKind::kFlipFlop;
    }
  }
  return c;
}

FuzzResult run_fuzz(const FuzzOptions& options) {
  FuzzResult res;
  for (int i = 0; i < options.num_seeds; ++i) {
    const uint64_t seed = options.base_seed + static_cast<uint64_t>(i);
    const Circuit c = fuzz_circuit(seed);
    const uint64_t perturb_seed = seed * kSeedSalt + 1;
    const DifferentialReport rep = check_circuit(c, perturb_seed, options.diff);
    ++res.circuits_checked;
    if (rep.feasible) ++res.feasible;
    if (rep.ok()) continue;

    FuzzFailure ff;
    ff.seed = seed;
    ff.failures = rep.failures;
    ff.original_elements = c.num_elements();
    ff.original_paths = c.num_paths();

    Circuit minimal = c;
    if (options.shrink_failures) {
      // Preserve the *first* failure kind through shrinking: requiring the
      // same kind keeps the minimizer from wandering onto a different bug.
      const CheckKind kind = rep.failures.front().kind;
      const auto still_fails = [&](const Circuit& cand) {
        return check_circuit(cand, perturb_seed, options.diff).has(kind);
      };
      ShrinkResult sr = shrink_circuit(c, still_fails, options.shrink);
      minimal = std::move(sr.circuit);
      ff.shrink_attempts = sr.attempts;
    }
    ff.shrunk_elements = minimal.num_elements();
    ff.shrunk_paths = minimal.num_paths();
    ff.repro_lct = parser::write_circuit(minimal);
    if (!options.repro_dir.empty()) {
      const std::string base = options.repro_dir + "/repro_seed" + std::to_string(seed);
      ff.repro_path = base + ".lct";
      if (!parser::save_circuit(minimal, ff.repro_path)) ff.repro_path.clear();
      // Replay the failing check on the minimal circuit with tracing forced
      // on, and dump exactly that slice of the trace (plus the metrics
      // state) next to the repro — the diagnosis starts from those files.
      obs::Tracer& tracer = obs::Tracer::instance();
      const bool was_enabled = tracer.enabled();
      const size_t mark = tracer.num_events();
      tracer.set_enabled(true);
      (void)check_circuit(minimal, perturb_seed, options.diff);
      tracer.set_enabled(was_enabled);
      ff.trace_path = base + ".trace.json";
      if (!obs::write_chrome_trace(ff.trace_path, tracer.snapshot(mark))) {
        ff.trace_path.clear();
      }
      ff.metrics_path = base + ".metrics.json";
      if (!obs::write_metrics_json(ff.metrics_path)) ff.metrics_path.clear();
      // A full slack/borrow report of the minimal circuit at its own
      // optimum: which endpoint is tight and who borrows is usually the
      // fastest route to the diverging engine.
      if (const auto mlp = opt::minimize_cycle_time(minimal)) {
        const report::SlackDB db = report::build_slackdb(minimal, mlp->schedule);
        ff.report_path = base + ".report.json";
        if (!report::write_report_file(ff.report_path, report::report_json(db))) {
          ff.report_path.clear();
        }
      }
    }
    res.failures.push_back(std::move(ff));
    if (static_cast<int>(res.failures.size()) >= options.max_failures) break;
  }
  return res;
}

}  // namespace mintc::check
