#include "check/shrink.h"

#include <cassert>
#include <cmath>
#include <functional>
#include <utility>
#include <vector>

#include "sta/session.h"

namespace mintc::check {

Circuit without_path(const Circuit& circuit, int skip) {
  Circuit out(circuit.name(), circuit.num_phases());
  for (const Element& e : circuit.elements()) out.add_element(e);
  for (int p = 0; p < circuit.num_paths(); ++p) {
    if (p == skip) continue;
    const CombPath& cp = circuit.path(p);
    out.add_path(cp.from, cp.to, cp.delay, cp.min_delay, cp.label);
  }
  return out;
}

Circuit without_element(const Circuit& circuit, int skip) {
  Circuit out(circuit.name(), circuit.num_phases());
  std::vector<int> remap(static_cast<size_t>(circuit.num_elements()), -1);
  for (int i = 0; i < circuit.num_elements(); ++i) {
    if (i == skip) continue;
    remap[static_cast<size_t>(i)] = out.add_element(circuit.element(i));
  }
  for (const CombPath& p : circuit.paths()) {
    if (p.from == skip || p.to == skip) continue;
    out.add_path(remap[static_cast<size_t>(p.from)], remap[static_cast<size_t>(p.to)], p.delay,
                 p.min_delay, p.label);
  }
  return out;
}

ShrinkResult shrink_circuit(const Circuit& failing, const FailurePredicate& still_fails,
                            const ShrinkOptions& options) {
  assert(still_fails(failing));
  ShrinkResult res{failing, 0, 0};

  // One mutate/undo session replaces the per-candidate full Circuit copy +
  // rebuild that used to dominate shrink wall time: each candidate is an
  // in-place edit, rolled back via the undo log when the predicate stops
  // failing.
  sta::AnalysisSession session(failing);
  const auto try_edit = [&](const std::function<void()>& edit) {
    const size_t mark = session.mark();
    edit();
    ++res.attempts;
    if (still_fails(session.circuit())) {
      ++res.accepted;
      return true;
    }
    session.undo_to(mark);
    return false;
  };

  for (int round = 0; round < options.max_rounds; ++round) {
    bool progress = false;

    // Drop paths, highest index first so lower indices survive an accepted
    // drop unchanged.
    for (int p = session.circuit().num_paths() - 1; p >= 0; --p) {
      progress |= try_edit([&] { session.remove_path(p); });
    }

    // Drop elements (with their incident paths).
    for (int e = session.circuit().num_elements() - 1; e >= 0; --e) {
      progress |= try_edit([&] { session.remove_element(e); });
    }

    // Round delays onto a coarse grid so the repro prints cleanly.
    for (int p = 0; p < session.circuit().num_paths(); ++p) {
      const CombPath& path = session.circuit().path(p);
      double rounded = std::round(path.delay / options.delay_grid) * options.delay_grid;
      rounded = std::max({rounded, path.min_delay, 0.0});
      if (std::fabs(rounded - path.delay) < 1e-12) continue;
      progress |= try_edit([&] { session.set_path_delay(p, rounded); });
    }

    // Labels are pure annotation; drop them all at once if possible.
    bool any_label = false;
    for (const CombPath& p : session.circuit().paths()) any_label |= !p.label.empty();
    if (any_label) {
      progress |= try_edit([&] {
        for (int p = 0; p < session.circuit().num_paths(); ++p) session.set_path_label(p, "");
      });
    }

    if (!progress) break;
  }
  res.circuit = session.circuit();
  return res;
}

}  // namespace mintc::check
