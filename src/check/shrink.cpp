#include "check/shrink.h"

#include <cassert>
#include <cmath>
#include <utility>
#include <vector>

namespace mintc::check {

Circuit without_path(const Circuit& circuit, int skip) {
  Circuit out(circuit.name(), circuit.num_phases());
  for (const Element& e : circuit.elements()) out.add_element(e);
  for (int p = 0; p < circuit.num_paths(); ++p) {
    if (p == skip) continue;
    const CombPath& cp = circuit.path(p);
    out.add_path(cp.from, cp.to, cp.delay, cp.min_delay, cp.label);
  }
  return out;
}

Circuit without_element(const Circuit& circuit, int skip) {
  Circuit out(circuit.name(), circuit.num_phases());
  std::vector<int> remap(static_cast<size_t>(circuit.num_elements()), -1);
  for (int i = 0; i < circuit.num_elements(); ++i) {
    if (i == skip) continue;
    remap[static_cast<size_t>(i)] = out.add_element(circuit.element(i));
  }
  for (const CombPath& p : circuit.paths()) {
    if (p.from == skip || p.to == skip) continue;
    out.add_path(remap[static_cast<size_t>(p.from)], remap[static_cast<size_t>(p.to)], p.delay,
                 p.min_delay, p.label);
  }
  return out;
}

namespace {

Circuit with_cleared_labels(const Circuit& circuit) {
  Circuit out(circuit.name(), circuit.num_phases());
  for (const Element& e : circuit.elements()) out.add_element(e);
  for (const CombPath& p : circuit.paths()) out.add_path(p.from, p.to, p.delay, p.min_delay);
  return out;
}

}  // namespace

ShrinkResult shrink_circuit(const Circuit& failing, const FailurePredicate& still_fails,
                            const ShrinkOptions& options) {
  assert(still_fails(failing));
  ShrinkResult res{failing, 0, 0};
  const auto try_candidate = [&](Circuit cand) {
    ++res.attempts;
    if (!still_fails(cand)) return false;
    res.circuit = std::move(cand);
    ++res.accepted;
    return true;
  };

  for (int round = 0; round < options.max_rounds; ++round) {
    bool progress = false;

    // Drop paths, highest index first so lower indices survive an accepted
    // drop unchanged.
    for (int p = res.circuit.num_paths() - 1; p >= 0; --p) {
      progress |= try_candidate(without_path(res.circuit, p));
    }

    // Drop elements (with their incident paths).
    for (int e = res.circuit.num_elements() - 1; e >= 0; --e) {
      progress |= try_candidate(without_element(res.circuit, e));
    }

    // Round delays onto a coarse grid so the repro prints cleanly.
    for (int p = 0; p < res.circuit.num_paths(); ++p) {
      const CombPath& path = res.circuit.path(p);
      double rounded = std::round(path.delay / options.delay_grid) * options.delay_grid;
      rounded = std::max({rounded, path.min_delay, 0.0});
      if (std::fabs(rounded - path.delay) < 1e-12) continue;
      Circuit cand = res.circuit;
      cand.set_path_delay(p, rounded);
      progress |= try_candidate(std::move(cand));
    }

    // Labels are pure annotation; drop them all at once if possible.
    for (const CombPath& p : res.circuit.paths()) {
      if (!p.label.empty()) {
        progress |= try_candidate(with_cleared_labels(res.circuit));
        break;
      }
    }

    if (!progress) break;
  }
  return res;
}

}  // namespace mintc::check
