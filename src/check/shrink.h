// Greedy test-case minimization for failing differential checks.
//
// Given a circuit on which some property holds (typically "check_circuit
// reports a failure of kind K"), shrink_circuit() repeatedly tries
// structure-reducing edits — dropping a path, dropping an element with its
// incident paths, rounding a delay to a coarse grid, clearing labels — and
// keeps an edit whenever the property still holds. The result is a locally
// minimal repro suitable for writing out as a `.lct` file
// (parser::write_circuit) and pasting into a regression test.
#pragma once

#include <functional>

#include "model/circuit.h"

namespace mintc::check {

/// Returns true when the candidate circuit still exhibits the failure being
/// minimized. Must be deterministic; it is called O(rounds * (paths +
/// elements)) times.
using FailurePredicate = std::function<bool(const Circuit&)>;

struct ShrinkOptions {
  int max_rounds = 12;      // full passes over all edit kinds
  double delay_grid = 1.0;  // round delays to multiples of this when possible
};

struct ShrinkResult {
  Circuit circuit;    // the minimized failing circuit
  int attempts = 0;   // candidate edits tried
  int accepted = 0;   // edits that preserved the failure
};

/// Greedily minimize `failing` while `still_fails` keeps returning true.
/// `still_fails(failing)` itself must be true on entry (asserted).
ShrinkResult shrink_circuit(const Circuit& failing, const FailurePredicate& still_fails,
                            const ShrinkOptions& options = {});

/// Rebuild the circuit without path `p` (exposed for the shrinker tests).
Circuit without_path(const Circuit& circuit, int p);

/// Rebuild the circuit without element `e` and every path touching it.
Circuit without_element(const Circuit& circuit, int e);

}  // namespace mintc::check
