#include "viz/dot.h"

#include <algorithm>
#include <sstream>

#include "base/strings.h"

namespace mintc::viz {

std::string dot_circuit(const Circuit& circuit, const DotOptions& options) {
  // A small qualitative palette, cycled per phase.
  static const char* kPhaseColor[] = {"#bcd4e6", "#f6d6ad", "#cdeac0", "#e8c6e0",
                                      "#f4bfbf", "#d9d2e9"};
  std::ostringstream out;
  out << "digraph \"" << circuit.name() << "\" {\n";
  out << "  rankdir=LR;\n  node [fontname=\"monospace\"];\n";
  for (int i = 0; i < circuit.num_elements(); ++i) {
    const Element& e = circuit.element(i);
    out << "  \"" << e.name << "\" [shape=" << (e.is_latch() ? "box" : "doubleoctagon")
        << ", style=filled, fillcolor=\"" << kPhaseColor[(e.phase - 1) % 6] << "\", label=\""
        << e.name << "\\nphi" << e.phase << " su=" << fmt_time(e.setup) << " dq="
        << fmt_time(e.dq) << "\"];\n";
  }
  for (int p = 0; p < circuit.num_paths(); ++p) {
    const CombPath& path = circuit.path(p);
    const bool hot = std::find(options.highlight_paths.begin(), options.highlight_paths.end(),
                               p) != options.highlight_paths.end();
    out << "  \"" << circuit.element(path.from).name << "\" -> \""
        << circuit.element(path.to).name << "\" [";
    if (options.show_delays) {
      out << "label=\"" << (path.label.empty() ? "" : path.label + ": ")
          << fmt_time(path.delay) << "\"";
    }
    if (hot) out << (options.show_delays ? ", " : "") << "color=red, penwidth=2.5";
    out << "];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace mintc::viz
