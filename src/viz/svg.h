// SVG timing-diagram output — the library's "graphical output routines"
// (paper Section V). Produces a standalone .svg with clock waveforms and
// per-element strips, same semantics as the ASCII renderer.
#pragma once

#include <string>
#include <vector>

#include "model/circuit.h"

namespace mintc::viz {

struct SvgOptions {
  double width = 900.0;
  double row_height = 26.0;
  int cycles = 2;
};

/// Render a full timing diagram (clock waveforms + element strips) as SVG.
std::string svg_timing_diagram(const Circuit& circuit, const ClockSchedule& schedule,
                               const std::vector<double>& departure,
                               const SvgOptions& options = {});

}  // namespace mintc::viz
