#include "viz/svg.h"

#include <algorithm>
#include <sstream>

#include "base/strings.h"

namespace mintc::viz {

namespace {

void rect(std::ostringstream& out, double x, double y, double w, double h,
          const std::string& fill, double opacity = 1.0) {
  if (w <= 0.0) return;
  out << "  <rect x=\"" << fmt_time(x, 2) << "\" y=\"" << fmt_time(y, 2) << "\" width=\""
      << fmt_time(w, 2) << "\" height=\"" << fmt_time(h, 2) << "\" fill=\"" << fill
      << "\" fill-opacity=\"" << fmt_time(opacity, 2) << "\"/>\n";
}

void text(std::ostringstream& out, double x, double y, const std::string& s) {
  out << "  <text x=\"" << fmt_time(x, 2) << "\" y=\"" << fmt_time(y, 2)
      << "\" font-family=\"monospace\" font-size=\"12\">" << s << "</text>\n";
}

void vline(std::ostringstream& out, double x, double y0, double y1) {
  out << "  <line x1=\"" << fmt_time(x, 2) << "\" y1=\"" << fmt_time(y0, 2) << "\" x2=\""
      << fmt_time(x, 2) << "\" y2=\"" << fmt_time(y1, 2)
      << "\" stroke=\"#999\" stroke-dasharray=\"4 3\"/>\n";
}

}  // namespace

std::string svg_timing_diagram(const Circuit& circuit, const ClockSchedule& schedule,
                               const std::vector<double>& departure,
                               const SvgOptions& options) {
  const double horizon = schedule.cycle * options.cycles;
  const double margin = 90.0;
  const double plot_w = options.width - margin - 10.0;
  const int rows = schedule.num_phases() + circuit.num_elements();
  const double height = (rows + 2) * options.row_height + 20.0;
  const auto x_of = [&](double t) { return margin + t / horizon * plot_w; };

  std::ostringstream out;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << fmt_time(options.width, 0)
      << "\" height=\"" << fmt_time(height, 0) << "\">\n";
  out << "  <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  if (horizon <= 0.0) {
    out << "</svg>\n";
    return out.str();
  }

  double y = 10.0;
  // Clock waveforms.
  for (int p = 1; p <= schedule.num_phases(); ++p) {
    text(out, 5.0, y + options.row_height * 0.7, "phi" + std::to_string(p));
    for (int cyc = 0; cyc < options.cycles + 1; ++cyc) {
      const double s = schedule.s(p) + cyc * schedule.cycle;
      const double e = std::min(s + schedule.T(p), horizon);
      if (s >= horizon) continue;
      rect(out, x_of(s), y + 4.0, x_of(e) - x_of(s), options.row_height - 10.0, "#4477aa");
    }
    y += options.row_height;
  }
  // Element strips.
  for (int i = 0; i < circuit.num_elements(); ++i) {
    const Element& e = circuit.element(i);
    text(out, 5.0, y + options.row_height * 0.7, e.name);
    for (int cyc = 0; cyc < options.cycles + 1; ++cyc) {
      const double dep =
          schedule.s(e.phase) + departure[static_cast<size_t>(i)] + cyc * schedule.cycle;
      if (dep > horizon) continue;
      const double edge = schedule.s(e.phase) + cyc * schedule.cycle;
      // Waiting gap (light), latch delay (dark shade), combinational (mid).
      rect(out, x_of(edge), y + 8.0, x_of(dep) - x_of(edge), options.row_height - 18.0,
           "#dddddd");
      rect(out, x_of(dep), y + 4.0, x_of(std::min(dep + e.dq, horizon)) - x_of(dep),
           options.row_height - 10.0, "#555555");
      double longest = 0.0;
      for (const int pe : circuit.fanout(i)) {
        longest = std::max(longest, circuit.path(pe).delay);
      }
      if (longest > 0.0 && dep + e.dq < horizon) {
        rect(out, x_of(dep + e.dq), y + 4.0,
             x_of(std::min(dep + e.dq + longest, horizon)) - x_of(dep + e.dq),
             options.row_height - 10.0, "#cc6677", 0.8);
      }
    }
    y += options.row_height;
  }
  // Cycle boundaries.
  for (int cyc = 0; cyc <= options.cycles; ++cyc) {
    vline(out, x_of(std::min(cyc * schedule.cycle, horizon)), 6.0, y);
  }
  text(out, margin, y + options.row_height * 0.7,
       "Tc = " + fmt_time(schedule.cycle) + "  (" + std::to_string(options.cycles) +
           " cycles)");
  out << "</svg>\n";
  return out.str();
}

}  // namespace mintc::viz
